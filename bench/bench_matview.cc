// Materialized-extent maintenance vs caching under a mixed read/write
// workload: every round writes one root object, then re-runs the same
// path-join query. The result cache (PR 8) is epoch-keyed, so each write
// invalidates it and the read pays a full re-execution; the materialized view
// re-derives only the written root's output rows and serves the stored
// extent. Asserts byte parity with the uncached oracle and that the
// delta-maintainable view never fell back to a full refresh.

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mv/matview.h"

using namespace mood;
using namespace mood::bench;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

double CounterOf(Database* db, const std::string& name) {
  return db->metrics()->Snapshot().ValueOf(name, -1);
}

constexpr uint64_t kScale = 600;
constexpr int kRounds = 80;

/// One root-extent write per round, deterministic, identical across modes.
void WriteRound(Database* db, int round) {
  Check(db->Execute("UPDATE Vehicle v SET weight = " +
                    std::to_string(900 + (round * 37) % 2000) +
                    " WHERE v.id = " + std::to_string((round * 3) % kScale))
            .status(),
        "write");
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = WantJson(argc, argv);
  JsonReport report_json("bench_matview");
  BenchDb scratch("matview");
  Database db;
  DatabaseOptions opts;
  opts.exec_threads = 1;
  Check(db.Open(scratch.Path("mood"), opts), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  auto report = CheckV(paperdb::PopulatePaperData(&db, kScale), "populate");
  Check(db.CollectAllStatistics(), "collect");
  std::printf("scale: %llu vehicles, %llu engines; %d write+read rounds/mode\n",
              (unsigned long long)report.vehicles,
              (unsigned long long)report.engines, kRounds);

  // A 2-hop path join over the whole vehicle hierarchy: re-execution chases
  // drivetrain -> engine for every root; delta maintenance chases it for the
  // one written root.
  const std::string sql =
      "SELECT v, v.weight, v.drivetrain.engine.cylinders FROM EVERY Vehicle v "
      "WHERE v.drivetrain.engine.cylinders > 4";
  QueryOptions uncached;
  uncached.use_cache = false;

  Checks checks;
  auto run_phase = [&](const char* label, const QueryOptions& qopts) {
    double total = 0;
    size_t rows = 0;
    for (int round = 0; round < kRounds; round++) {
      WriteRound(&db, round);
      auto start = std::chrono::steady_clock::now();
      auto qr = CheckV(db.Query(sql, qopts), label);
      total += MillisSince(start);
      rows = qr.rows.size();
    }
    std::printf("  %-22s %8.1f ms total  %8.0f us/read  (%zu rows)\n", label,
                total, total * 1000.0 / kRounds, rows);
    return total;
  };

  Banner("Mixed workload: 1 root write + 1 path-join read per round");

  // --- Mode 1: uncached re-execution (the oracle).
  const double uncached_ms = run_phase("uncached", uncached);
  report_json.Metric("read_ms_total", "uncached", uncached_ms);

  // --- Mode 2: PR-8 plan + result caches. Every write bumps the root
  // extent's epoch, so the result cache misses each round and pays a full
  // re-execution (the plan cache still skips parse/optimize).
  const double rhit0 = CounterOf(&db, "cache.result.hits");
  const double cached_ms = run_phase("result cache", QueryOptions{});
  report_json.Metric("read_ms_total", "result_cache", cached_ms);
  checks.Expect(CounterOf(&db, "cache.result.hits") == rhit0,
                "result cache never hits under per-round writes");

  // --- Mode 3: materialized view with dependency-driven delta maintenance.
  Check(db.Execute("CREATE MATERIALIZED VIEW mixed AS " + sql).status(),
        "create view");
  checks.Expect(db.matviews()->Views()[0].delta_maintainable,
                "path-join view is delta-maintainable (" +
                    db.matviews()->Views()[0].refusal + ")");
  const double full0 = CounterOf(&db, "mv.full_refreshes");
  const double mv_ms = run_phase("materialized view", QueryOptions{});
  report_json.Metric("read_ms_total", "matview", mv_ms);

  // Parity at the final state: the served rows must be byte-identical to
  // uncached re-execution of the same statement.
  auto served = CheckV(db.Query(sql), "served");
  auto oracle = CheckV(db.Query(sql, uncached), "oracle");
  checks.Expect(served.ToString() == oracle.ToString(),
                "MV-served result byte-identical to uncached execution");
  checks.Expect(CounterOf(&db, "mv.full_refreshes") == full0,
                "no full refreshes on the delta-maintainable view");
  const double speedup_uncached = uncached_ms / std::max(mv_ms, 0.001);
  const double speedup_cached = cached_ms / std::max(mv_ms, 0.001);
  report_json.Metric("speedup", "mv_vs_uncached", speedup_uncached);
  report_json.Metric("speedup", "mv_vs_result_cache", speedup_cached);
  report_json.Metric("mv_counters", "hits", CounterOf(&db, "mv.hits"));
  report_json.Metric("mv_counters", "maintenance_rows",
                     CounterOf(&db, "mv.maintenance_rows"));
  report_json.Metric("mv_counters", "full_refreshes",
                     CounterOf(&db, "mv.full_refreshes"));
  report_json.Metric("mv_counters", "rebuilds", CounterOf(&db, "mv.rebuilds"));
  std::printf("speedup: %.1fx vs uncached, %.1fx vs result cache\n",
              speedup_uncached, speedup_cached);
  checks.Expect(speedup_uncached >= 5.0,
                "MV rewrite >= 5x uncached re-execution under writes (" +
                    Fmt(speedup_uncached, 1) + "x)");

  AddMetricsSnapshot(&report_json, db.metrics());
  if (json) report_json.Emit(JsonPath(argc, argv));
  Check(db.Close(), "close");
  return checks.ExitCode();
}
