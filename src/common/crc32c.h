#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mood {

namespace crc32c_internal {

/// Reflected CRC-32C (Castagnoli) polynomial. Chosen over CRC-32 (IEEE) for its
/// better error-detection properties on storage-sized blocks; the same
/// polynomial RocksDB, LevelDB and iSCSI use.
inline constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0);
    t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; i++) {
    for (size_t j = 1; j < 8; j++) {
      t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xffu];
    }
  }
  return t;
}

inline constexpr auto kTables = MakeTables();

}  // namespace crc32c_internal

/// Incremental CRC-32C: Crc32cExtend(Crc32cExtend(0, a, n), b, m) equals the
/// checksum of the concatenation a+b. Slice-by-8 table lookup, ~1 byte/cycle.
inline uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& t = crc32c_internal::kTables;
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    uint32_t hi = static_cast<uint32_t>(p[4]) | static_cast<uint32_t>(p[5]) << 8 |
                  static_cast<uint32_t>(p[6]) << 16 |
                  static_cast<uint32_t>(p[7]) << 24;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  return ~crc;
}

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace mood
