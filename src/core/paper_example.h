#pragma once

#include "core/database.h"

namespace mood::paperdb {

/// Creates the paper's example schema (Section 3.1): Vehicle, VehicleDriveTrain,
/// VehicleEngine, Company, Employee, Automobile, JapaneseAuto — including the
/// lbweight()/weight() method declarations with interpretable bodies.
///
/// Note: the Section 3.1 DDL names the reference attribute `manufacturer` while
/// the Example 8.1 query and Table 15's hitprb row use `company`; we follow the
/// query and call it `company` (documented in DESIGN.md).
Status CreatePaperSchema(Database* db);

/// Injects the exact statistics of Tables 13-15 into the statistics manager, so
/// the optimizer reproduces the paper's worked examples without materializing
/// 260k objects (modeled mode).
void InstallPaperStatistics(StatisticsManager* stats);

/// Populates a scaled-down but structurally identical instance of the example
/// database (measured mode):
///   vehicles = scale, drivetrains = scale/2, engines = scale/2,
///   companies = 10 * scale, employees = scale/4.
/// Attribute value distributions mirror the paper's statistics (cylinders over
/// 16 distinct even values in [2,32]; unique company names; ~10% of companies
/// referenced). Deterministic for a given seed.
struct PopulateReport {
  uint64_t vehicles = 0;
  uint64_t drivetrains = 0;
  uint64_t engines = 0;
  uint64_t companies = 0;
  uint64_t employees = 0;
  uint64_t automobiles = 0;
  uint64_t japanese_autos = 0;
};
Result<PopulateReport> PopulatePaperData(Database* db, uint64_t scale,
                                         uint64_t seed = 42);

/// The two path predicates of Example 8.1 and the single-path query of
/// Example 8.2.
inline constexpr const char* kExample81Query =
    "SELECT v FROM Vehicle v "
    "WHERE v.company.name = 'BMW' AND v.drivetrain.engine.cylinders = 2";
inline constexpr const char* kExample82Query =
    "SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2";
inline constexpr const char* kSection31Query =
    "SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v "
    "WHERE c.drivetrain.transmission = 'AUTOMATIC' AND c.drivetrain.engine = v "
    "AND v.cylinders > 4";

}  // namespace mood::paperdb
