#pragma once

#include <string>

#include "objects/object_manager.h"

namespace mood {

/// Generic object presenter: "MoodView has a generic display algorithm for
/// displaying these object graphs and walking through the referenced objects"
/// (Section 9.3). The rendering is driven entirely by the persistent type
/// catalog, so it works for any class without per-type code.
class ObjectBrowser {
 public:
  explicit ObjectBrowser(ObjectManager* objects) : objects_(objects) {}

  /// Renders one object: attribute names from the catalog, nested values, and
  /// referenced objects expanded to `depth` levels (cycle-safe).
  Result<std::string> Render(Oid oid, int depth = 1) const;

  /// Renders every instance of a class (Figure 9.3(b)'s set browser).
  Result<std::string> RenderExtent(const std::string& class_name, int depth = 0,
                                   size_t limit = 10) const;

 private:
  Result<std::string> RenderValue(const MoodValue& v, int depth, int indent,
                                  std::vector<Oid>* trail) const;
  Result<std::string> RenderObject(Oid oid, int depth, int indent,
                                   std::vector<Oid>* trail) const;

  ObjectManager* objects_;
};

}  // namespace mood
