#include "exec/expr_compile.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// Paper database at a small scale, queried through both evaluation paths.
class ExprCompileFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 90));
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
  }

  /// The differential contract: compiled and interpreted execution produce
  /// byte-identical results and identical error statuses. Serial execution
  /// keeps row order (and thus first-error choice) deterministic.
  void ExpectDifferentialMatch(const std::string& sql) {
    QueryOptions interp_opts, comp_opts;
    interp_opts.compile_expressions = false;
    interp_opts.exec_threads = 1;
    comp_opts.compile_expressions = true;
    comp_opts.exec_threads = 1;
    auto interp = db_.Query(sql, interp_opts);
    auto comp = db_.Query(sql, comp_opts);
    ASSERT_EQ(interp.ok(), comp.ok())
        << sql << "\n interpreted: " << interp.status().ToString()
        << "\n compiled:    " << comp.status().ToString();
    if (!interp.ok()) {
      EXPECT_EQ(interp.status().ToString(), comp.status().ToString()) << sql;
      return;
    }
    EXPECT_EQ(interp.value().ToString(), comp.value().ToString()) << sql;
  }

  /// Parses `SELECT ... WHERE <pred>` and compiles the WHERE clause directly.
  ExprPtr ParseWhere(const std::string& sql) {
    auto stmt = Parser::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status().ToString();
    if (!stmt.ok()) return nullptr;
    return std::get<SelectStmt>(stmt.value()).where;
  }

  std::unique_ptr<ExprProgram> CompileWhere(const std::string& sql,
                                            const ExprCompileEnv& env) {
    ExprPtr where = ParseWhere(sql);
    if (where == nullptr) return nullptr;
    return ExprCompiler(db_.objects()).Compile(where, env);
  }

  static ExprCompileEnv EngineEnv() {
    ExprCompileEnv env;
    env.vars["e"] = {0, "VehicleEngine", true};
    return env;
  }

  static ExprCompileEnv VehicleEnv(bool single_class = true) {
    ExprCompileEnv env;
    env.vars["v"] = {0, "Vehicle", single_class};
    return env;
  }

  uint64_t CounterValue(const std::string& name) {
    return db_.metrics()->Counter(name)->value();
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
};

// ---------------------------------------------------------------------------
// Golden bytecode dumps
// ---------------------------------------------------------------------------

TEST_F(ExprCompileFixture, GoldenSimpleComparison) {
  auto prog = CompileWhere("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4",
                           EngineEnv());
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->ToString(),
            "0000 LoadAttr    s0 a0 (VehicleEngine.cylinders)\n"
            "0001 PushConst   c0 Integer(4)\n"
            "0002 Compare     =\n");
  EXPECT_EQ(prog->const_folded(), 0u);
}

TEST_F(ExprCompileFixture, GoldenConstantSubtreeFolds) {
  // `2 + 2` disappears at compile time; the dump is identical to `= 4`.
  auto prog = CompileWhere(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 + 2", EngineEnv());
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->ToString(),
            "0000 LoadAttr    s0 a0 (VehicleEngine.cylinders)\n"
            "0001 PushConst   c0 Integer(4)\n"
            "0002 Compare     =\n");
  EXPECT_EQ(prog->const_folded(), 1u);
}

TEST_F(ExprCompileFixture, GoldenWholePredicateFolds) {
  auto prog =
      CompileWhere("SELECT e FROM VehicleEngine e WHERE 1 + 1 = 2", EngineEnv());
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->ToString(), "0000 PushConst   c0 Boolean(true)\n");
  EXPECT_EQ(prog->const_folded(), 1u);
}

TEST_F(ExprCompileFixture, GoldenShortCircuitJumps) {
  auto prog = CompileWhere(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders > 2 AND e.size < 100",
      EngineEnv());
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->ToString(),
            "0000 LoadAttr    s0 a0 (VehicleEngine.cylinders)\n"
            "0001 PushConst   c0 Integer(2)\n"
            "0002 Compare     >\n"
            "0003 JumpIfFalse -> 0008\n"
            "0004 LoadAttr    s0 a1 (VehicleEngine.size)\n"
            "0005 PushConst   c1 Integer(100)\n"
            "0006 Compare     <\n"
            "0007 CoerceBool  \n");
}

TEST_F(ExprCompileFixture, GoldenMultiStepPath) {
  auto prog = CompileWhere(
      "SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2",
      VehicleEnv());
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->ToString(),
            "0000 LoadAttr    s0 a0 (Vehicle.drivetrain)\n"
            "0001 DerefAttr   a1 (VehicleDriveTrain.engine)\n"
            "0002 DerefAttr   a2 (VehicleEngine.cylinders)\n"
            "0003 PushConst   c0 Integer(2)\n"
            "0004 Compare     =\n");
}

TEST_F(ExprCompileFixture, NonDecidingConstLhsElides) {
  // `1 = 1 AND p` reduces to CoerceBool(p): the constant conjunct vanishes
  // but the node still coerces its result to Boolean like the interpreter.
  auto prog = CompileWhere(
      "SELECT e FROM VehicleEngine e WHERE 1 = 1 AND e.cylinders > 2",
      EngineEnv());
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->ToString(),
            "0000 LoadAttr    s0 a0 (VehicleEngine.cylinders)\n"
            "0001 PushConst   c0 Integer(2)\n"
            "0002 Compare     >\n"
            "0003 CoerceBool  \n");
  EXPECT_EQ(prog->const_folded(), 1u);
}

TEST_F(ExprCompileFixture, ErroringConstSubtreeStaysInBytecode) {
  // 1 / 0 must error at run time exactly like the interpreter, so the folder
  // abstains and the division survives into bytecode.
  auto prog = CompileWhere(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 1 / 0", EngineEnv());
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->const_folded(), 0u);
  EXPECT_NE(prog->ToString().find("Arith       /"), std::string::npos);
  ExpectDifferentialMatch("SELECT e FROM VehicleEngine e WHERE e.cylinders = 1 / 0");
}

// ---------------------------------------------------------------------------
// Compile-time refusals: dynamic constructs stay with the interpreter
// ---------------------------------------------------------------------------

TEST_F(ExprCompileFixture, RefusesMethodCalls) {
  EXPECT_EQ(CompileWhere("SELECT v FROM Vehicle v WHERE v.lbweight() > 0",
                         VehicleEnv()),
            nullptr);
}

TEST_F(ExprCompileFixture, RefusesUnknownAttribute) {
  // The name may resolve to a parameterless method at evaluation time.
  EXPECT_EQ(CompileWhere("SELECT v FROM Vehicle v WHERE v.lbweight > 0",
                         VehicleEnv()),
            nullptr);
}

TEST_F(ExprCompileFixture, RefusesUnboundRangeVar) {
  EXPECT_EQ(CompileWhere("SELECT e FROM VehicleEngine e WHERE x.cylinders = 4",
                         EngineEnv()),
            nullptr);
}

TEST_F(ExprCompileFixture, RefusesPolymorphicRootForAttributeAccess) {
  // EVERY over a class with subclasses: no single static layout to bind to.
  EXPECT_EQ(CompileWhere("SELECT v FROM Vehicle v WHERE v.weight > 0",
                         VehicleEnv(/*single_class=*/false)),
            nullptr);
}

TEST_F(ExprCompileFixture, BareVarCompilesEvenWhenPolymorphic) {
  // `v` (and `v.self`) need no layout — just the slot's reference.
  auto prog = CompileWhere("SELECT v FROM Vehicle v WHERE v = v.self",
                           VehicleEnv(/*single_class=*/false));
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->ToString(),
            "0000 LoadSlot    s0\n"
            "0001 LoadSlot    s0\n"
            "0002 Compare     =\n");
}

TEST_F(ExprCompileFixture, RefusesMidPathCollectionFanOut) {
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Garage TUPLE ("
                             "cars SET (REFERENCE (Vehicle)))")
                     .status());
  ExprCompileEnv env;
  env.vars["g"] = {0, "Garage", true};
  // Terminal collection access compiles (the value is just pushed)...
  EXPECT_NE(CompileWhere("SELECT g FROM Garage g WHERE g.cars = g.cars", env),
            nullptr);
  // ...but a step *through* the set would fan out mid-path: interpreter only.
  EXPECT_EQ(CompileWhere("SELECT g FROM Garage g WHERE g.cars.weight = 1", env),
            nullptr);
}

// ---------------------------------------------------------------------------
// Differential: fixed workload
// ---------------------------------------------------------------------------

TEST_F(ExprCompileFixture, PaperQueriesMatch) {
  ExpectDifferentialMatch(paperdb::kExample81Query);
  ExpectDifferentialMatch(paperdb::kExample82Query);
  ExpectDifferentialMatch(paperdb::kSection31Query);
}

TEST_F(ExprCompileFixture, ScalarAndProjectionQueriesMatch) {
  ExpectDifferentialMatch("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4");
  ExpectDifferentialMatch(
      "SELECT e.size, e.cylinders * 2 + 1 FROM VehicleEngine e "
      "WHERE e.cylinders >= 2 AND NOT (e.cylinders = 6)");
  ExpectDifferentialMatch(
      "SELECT e.cylinders FROM VehicleEngine e WHERE 8 < e.cylinders OR "
      "e.size % 7 = 3");
  ExpectDifferentialMatch(
      "SELECT DISTINCT e.cylinders FROM VehicleEngine e ORDER BY e.cylinders");
  ExpectDifferentialMatch("SELECT v.weight, v.lbweight() FROM Vehicle v");
  ExpectDifferentialMatch("SELECT v FROM EVERY Vehicle - JapaneseAuto v "
                          "WHERE v.weight > 1000");
}

TEST_F(ExprCompileFixture, ErrorStatusesMatch) {
  // Type errors and arithmetic errors must surface identically.
  ExpectDifferentialMatch(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 'four'");
  ExpectDifferentialMatch(
      "SELECT e FROM VehicleEngine e WHERE e.size / (e.cylinders - e.cylinders) = 1");
  ExpectDifferentialMatch(
      "SELECT v FROM Vehicle v WHERE v.id.cylinders = 2");  // step on non-ref
}

// ---------------------------------------------------------------------------
// Differential: fixed-seed randomized expressions
// ---------------------------------------------------------------------------

TEST_F(ExprCompileFixture, RandomizedExpressionsMatch) {
  std::mt19937 rng(20260807);  // fixed seed: failures must reproduce
  auto pick = [&](int n) { return static_cast<int>(rng() % static_cast<uint32_t>(n)); };
  const char* arith[] = {"+", "-", "*", "/", "%"};
  const char* cmp[] = {"=", "<>", "<", "<=", ">", ">="};

  std::function<std::string(int)> term = [&](int depth) -> std::string {
    int c = pick(depth > 0 ? 6 : 4);
    switch (c) {
      case 0: return "e.cylinders";
      case 1: return "e.size";
      case 2: return std::to_string(pick(40) - 5);
      case 3: return "'BMW'";  // type-error fodder
      case 4:
        return "(" + term(depth - 1) + " " + arith[pick(5)] + " " +
               term(depth - 1) + ")";
      default: return "(-" + term(depth - 1) + ")";
    }
  };
  std::function<std::string(int)> pred = [&](int depth) -> std::string {
    if (depth == 0 || pick(3) == 0) {
      return "(" + term(depth) + " " + cmp[pick(6)] + " " + term(depth) + ")";
    }
    switch (pick(3)) {
      case 0: return "(" + pred(depth - 1) + " AND " + pred(depth - 1) + ")";
      case 1: return "(" + pred(depth - 1) + " OR " + pred(depth - 1) + ")";
      default: return "NOT " + pred(depth - 1);
    }
  };

  for (int i = 0; i < 120; i++) {
    std::string sql = "SELECT e FROM VehicleEngine e WHERE " + pred(3);
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + sql);
    ExpectDifferentialMatch(sql);
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Metrics and EXPLAIN VERBOSE
// ---------------------------------------------------------------------------

TEST_F(ExprCompileFixture, MetricsCountCompilationNotFallback) {
  uint64_t compiled0 = CounterValue("exec.expr.compiled");
  uint64_t fallback0 = CounterValue("exec.expr.fallback");
  uint64_t folded0 = CounterValue("exec.expr.const_folded");
  QueryOptions opts;
  opts.exec_threads = 1;
  // WHERE constants are pre-folded by the optimizer's DNF normalization, so
  // the compiler's own folding shows up in SELECT-list programs.
  MOOD_ASSERT_OK(
      db_.Query("SELECT e.cylinders + 2 * 3 FROM VehicleEngine e "
                "WHERE e.cylinders = 4",
                opts)
          .status());
  EXPECT_GT(CounterValue("exec.expr.compiled"), compiled0);
  EXPECT_GT(CounterValue("exec.expr.const_folded"), folded0);
  EXPECT_EQ(CounterValue("exec.expr.fallback"), fallback0);

  // Method calls cannot compile: the fallback counter moves instead.
  uint64_t fb1 = CounterValue("exec.expr.fallback");
  MOOD_ASSERT_OK(
      db_.Query("SELECT v FROM Vehicle v WHERE v.lbweight() > 0", opts).status());
  EXPECT_GT(CounterValue("exec.expr.fallback"), fb1);
}

TEST_F(ExprCompileFixture, ExplainVerboseAnnotatesOperators) {
  ExplainOptions eo;
  eo.verbose = true;
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto res,
      db_.Explain("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4", eo));
  EXPECT_NE(res.Render().find("[exprs: compiled]"), std::string::npos)
      << res.Render();

  MOOD_ASSERT_OK_AND_ASSIGN(
      auto interp_res,
      db_.Explain("SELECT v FROM Vehicle v WHERE v.lbweight() > 0", eo));
  EXPECT_NE(interp_res.Render().find("[exprs: interpreted]"), std::string::npos)
      << interp_res.Render();

  // With compilation off the annotation disappears entirely.
  eo.query.compile_expressions = false;
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto off_res,
      db_.Explain("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4", eo));
  EXPECT_EQ(off_res.Render().find("[exprs:"), std::string::npos)
      << off_res.Render();
}

TEST_F(ExprCompileFixture, ExplainAnalyzeIdenticalAcrossThreadCounts) {
  // The acceptance bar: EXPLAIN ANALYZE output (modulo timings, which the
  // renderer embeds — so compare the query *results*, byte for byte) is
  // identical at 1/2/8 threads with compilation on.
  QueryOptions base;
  base.exec_threads = 1;
  auto serial = db_.Query(paperdb::kExample81Query, base);
  MOOD_ASSERT_OK(serial.status());
  for (size_t threads : {2u, 8u}) {
    QueryOptions opts;
    opts.exec_threads = threads;
    auto par = db_.Query(paperdb::kExample81Query, opts);
    MOOD_ASSERT_OK(par.status());
    EXPECT_EQ(serial.value().ToString(), par.value().ToString()) << threads;
  }
}

// ---------------------------------------------------------------------------
// Layout cache invalidation on DDL
// ---------------------------------------------------------------------------

TEST_F(ExprCompileFixture, SchemaEpochBumpsOnDdl) {
  uint64_t e0 = db_.catalog()->schema_epoch();
  MOOD_ASSERT_OK(db_.catalog()->AddAttribute(
      "VehicleEngine", {"extra", TypeDesc::Basic(BasicType::kFloat)}));
  EXPECT_GT(db_.catalog()->schema_epoch(), e0);
}

TEST_F(ExprCompileFixture, AddAttributeInvalidatesLayouts) {
  QueryOptions opts;
  opts.exec_threads = 1;
  // Warm the layout cache through a compiled query.
  MOOD_ASSERT_OK(
      db_.Query("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4", opts)
          .status());
  MOOD_ASSERT_OK(db_.catalog()->AddAttribute(
      "VehicleEngine", {"extra", TypeDesc::Basic(BasicType::kFloat)}));
  // Existing objects predate the attribute: both paths serve the default.
  ExpectDifferentialMatch(
      "SELECT e.extra FROM VehicleEngine e WHERE e.cylinders >= 2");
  ExpectDifferentialMatch("SELECT e FROM VehicleEngine e WHERE e.extra = 0.0");
}

TEST_F(ExprCompileFixture, RenameAttributeInvalidatesLayouts) {
  QueryOptions opts;
  opts.exec_threads = 1;
  MOOD_ASSERT_OK(
      db_.Query("SELECT e FROM VehicleEngine e WHERE e.size > 0", opts).status());
  MOOD_ASSERT_OK(
      db_.catalog()->RenameAttribute("VehicleEngine", "size", "displacement"));
  ExpectDifferentialMatch(
      "SELECT e.displacement FROM VehicleEngine e WHERE e.displacement > 0");
  // The old name fails the same way in both modes.
  ExpectDifferentialMatch("SELECT e FROM VehicleEngine e WHERE e.size > 0");
}

// ---------------------------------------------------------------------------
// Subclass instances behind statically-typed references
// ---------------------------------------------------------------------------

TEST_F(ExprCompileFixture, SubclassInstanceResolvesByName) {
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS TurboEngine INHERITS FROM "
                             "VehicleEngine TUPLE (boost Integer)")
                     .status());
  ObjectManager* om = db_.objects();
  // A TurboEngine behind a REFERENCE(VehicleEngine): the compiled ordinal was
  // bound against VehicleEngine's layout and must re-resolve by name.
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid turbo,
      om->CreateObject("TurboEngine",
                       MoodValue::Tuple({MoodValue::Integer(9999),
                                         MoodValue::Integer(12),
                                         MoodValue::Integer(5)})));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid dt, om->CreateObject(
                  "VehicleDriveTrain",
                  MoodValue::Tuple({MoodValue::Reference(turbo),
                                    MoodValue::String("MANUAL")})));
  Oid company{};
  MOOD_ASSERT_OK(om->ScanExtent("Company", false, {},
                                [&](Oid oid, const MoodValue&) {
                                  company = oid;
                                  return Status::OK();
                                }));
  MOOD_ASSERT_OK(
      om->CreateObject("Vehicle", MoodValue::Tuple({MoodValue::Integer(777),
                                                    MoodValue::Integer(1000),
                                                    MoodValue::Reference(dt),
                                                    MoodValue::Reference(company)}))
          .status());

  // Direct ordinal access against the *base* layout.
  MOOD_ASSERT_OK_AND_ASSIGN(AttributeLayoutPtr layout, om->LayoutOf("VehicleEngine"));
  int ord = layout->OrdinalOf("cylinders");
  ASSERT_GE(ord, 0);
  MOOD_ASSERT_OK_AND_ASSIGN(
      MoodValue cyl, om->GetAttributeByOrdinal(
                         turbo, *layout, static_cast<uint32_t>(ord), nullptr));
  EXPECT_EQ(cyl.AsInteger(), 12);

  // The WHERE form may plan as a pointer join over the now-polymorphic engine
  // extent (which compiles conservatively); parity still must hold.
  ExpectDifferentialMatch(
      "SELECT v.id FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 12");

  // The projection form compiles against Vehicle's single-class root and hits
  // the TurboEngine instance through kDerefAttr: name re-resolution succeeds,
  // so no interpreter fallback is needed.
  uint64_t fallback0 = CounterValue("exec.expr.fallback");
  QueryOptions opts;
  opts.exec_threads = 1;
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto proj,
      db_.Query("SELECT v.id, v.drivetrain.engine.cylinders FROM Vehicle v", opts));
  EXPECT_EQ(CounterValue("exec.expr.fallback"), fallback0);
  bool saw_turbo = false;
  for (const auto& row : proj.rows) {
    if (row.size() == 2 && row[0].ToString() == "777") {
      saw_turbo = true;
      EXPECT_EQ(row[1].ToString(), "12");
    }
  }
  EXPECT_TRUE(saw_turbo);
  ExpectDifferentialMatch(
      "SELECT v.id, v.drivetrain.engine.cylinders FROM Vehicle v");
}

}  // namespace
}  // namespace mood
