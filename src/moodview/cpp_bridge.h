#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace mood {

/// The modified-cfront substitute (Section 2 / Figure 9.1(b)): extracts catalog
/// information from C++ class declarations, and generates C++ headers back from
/// the catalog ("MoodView also can convert graphically designed class hierarchy
/// graph into C++ code").
///
/// Supported declaration subset — the shape of the paper's own examples:
///
///   class Vehicle : public Base {
///    public:
///     int id;
///     char name[32];            // -> String(32)
///     Company* manufacturer;    // -> REFERENCE (Company)
///     Set<VehicleEngine*> spares;   // -> SET (REFERENCE (VehicleEngine))
///     int lbweight();
///     int scale(int factor);
///   };
///   int Vehicle::lbweight() { return weight * 2; }   // body captured
class CppBridge {
 public:
  /// Parses class declarations and out-of-line member definitions; returns the
  /// definitions in declaration order (supers before subs is the caller's
  /// responsibility, matching real header order).
  static Result<std::vector<Catalog::ClassDef>> ParseHeader(const std::string& source);

  /// Generates a C++ header for one catalog class.
  static Result<std::string> GenerateHeader(const Catalog& catalog,
                                            const std::string& class_name);

  /// Maps a C++ type spelling to a MOOD type.
  static Result<TypeDescPtr> CppTypeToMood(const std::string& spelling);
  /// Maps a MOOD type to a C++ spelling.
  static std::string MoodTypeToCpp(const TypeDesc& type, const std::string& member);
};

}  // namespace mood
