#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/status.h"

namespace mood::testing {

/// Creates a unique scratch directory for a test and removes it afterwards.
class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "mood_test";
    if (info != nullptr) {
      name = std::string(info->test_suite_name()) + "_" + info->name();
    }
    for (auto& c : name) {
      if (c == '/' || c == '\\') c = '_';
    }
    path_ = std::filesystem::temp_directory_path() / (name + "_XXXXXX");
    std::string tmpl = path_.string();
    char* made = mkdtemp(tmpl.data());
    path_ = made != nullptr ? std::filesystem::path(made) : std::filesystem::path(tmpl);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  std::string Path(const std::string& file) const { return (path_ / file).string(); }

 private:
  std::filesystem::path path_;
};

#define MOOD_ASSERT_OK(expr)                                 \
  do {                                                       \
    auto _st = (expr);                                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (0)

#define MOOD_EXPECT_OK(expr)                                 \
  do {                                                       \
    auto _st = (expr);                                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (0)

#define MOOD_ASSERT_OK_AND_ASSIGN(lhs, expr)                         \
  MOOD_ASSERT_OK_AND_ASSIGN_IMPL_(                                   \
      MOOD_TEST_CONCAT_(_res, __LINE__), lhs, expr)

#define MOOD_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                     \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();      \
  lhs = std::move(tmp).value()

#define MOOD_TEST_CONCAT_(a, b) MOOD_TEST_CONCAT_IMPL_(a, b)
#define MOOD_TEST_CONCAT_IMPL_(a, b) a##b

}  // namespace mood::testing
