// Section 4.1 — validates the selectivity machinery:
//   (a) the c(n,m,r) color approximation against Yao's exact formula and the
//       Cardenas formula (the paper: "it has been validated that c(n,m,r) well
//       serves our purposes");
//   (b) estimated vs actual selectivity of atomic and path predicates on real
//       generated data with collected statistics.

#include <cmath>

#include "bench/bench_util.h"
#include "sql/binder.h"
#include "stats/approx.h"
#include "stats/selectivity.h"

using namespace mood;
using namespace mood::bench;

int main() {
  Banner("c(n,m,r) vs Yao (exact) vs Cardenas  [n = 20000 links, m = 2000 targets]");
  {
    Table t({"r", "c(n,m,r)", "Yao exact", "Cardenas", "c rel.err vs Yao"});
    const double n = 20000, m = 2000;
    for (double r : {10.0, 500.0, 1000.0, 2000.0, 3000.0, 4000.0, 8000.0, 20000.0}) {
      double c = CApprox(n, m, r);
      double yao = YaoExact(static_cast<uint64_t>(n), static_cast<uint64_t>(m),
                            static_cast<uint64_t>(r));
      double card = Cardenas(m, r);
      t.AddRow({Fmt(r, 0), Fmt(c, 1), Fmt(yao, 1), Fmt(card, 1),
                Fmt(std::abs(c - yao) / std::max(yao, 1.0), 3)});
    }
    t.Print();
  }

  BenchDb scratch("selectivity");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  auto report = CheckV(paperdb::PopulatePaperData(&db, 600), "populate");
  Check(db.CollectAllStatistics(), "collect");
  SelectivityEstimator est(db.stats());
  Binder binder(db.catalog());

  auto count = [&](const std::string& sql) {
    return CheckV(db.Query(sql), sql.c_str()).rows.size();
  };

  Checks checks;
  Banner("Estimated vs actual selectivity (scale = 600, collected statistics)");
  {
    Table t({"predicate", "estimated", "actual", "abs err"});
    struct Case {
      std::string label;
      std::string cls;  // extent counted against
      std::string sql;
      double estimated;
    };
    std::vector<Case> cases;

    // Atomic equality: e.cylinders = 4.
    double est_eq = CheckV(est.AtomicSelectivity("VehicleEngine", "cylinders",
                                                 BinaryOp::kEq, MoodValue::Integer(4)),
                           "eq");
    cases.push_back({"e.cylinders = 4", "VehicleEngine",
                     "SELECT e FROM VehicleEngine e WHERE e.cylinders = 4", est_eq});
    // Atomic range: e.cylinders > 16.
    double est_gt = CheckV(est.AtomicSelectivity("VehicleEngine", "cylinders",
                                                 BinaryOp::kGt, MoodValue::Integer(16)),
                           "gt");
    cases.push_back({"e.cylinders > 16", "VehicleEngine",
                     "SELECT e FROM VehicleEngine e WHERE e.cylinders > 16", est_gt});
    // Path: v.drivetrain.engine.cylinders = 4 (two reference hops).
    BoundPath p1 = CheckV(binder.ResolvePathFromClass(
                              "Vehicle", {"drivetrain", "engine", "cylinders"}),
                          "p1");
    double est_p1 =
        CheckV(est.PathSelectivity(p1, BinaryOp::kEq, MoodValue::Integer(4)), "ps1");
    cases.push_back({"v.drivetrain.engine.cylinders = 4", "Vehicle",
                     "SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 4",
                     est_p1});
    // Path: v.company.name = 'BMW' (one hop, highly selective terminal).
    BoundPath p2 = CheckV(binder.ResolvePathFromClass("Vehicle", {"company", "name"}),
                          "p2");
    double est_p2 =
        CheckV(est.PathSelectivity(p2, BinaryOp::kEq, MoodValue::String("BMW")), "ps2");
    cases.push_back({"v.company.name = 'BMW'", "Vehicle",
                     "SELECT v FROM Vehicle v WHERE v.company.name = 'BMW'", est_p2});

    double max_path_err = 0;
    for (const auto& c : cases) {
      size_t extent = count("SELECT x FROM " + c.cls + " x");
      size_t hits = count(c.sql);
      double actual = extent == 0 ? 0 : static_cast<double>(hits) / extent;
      double err = std::abs(actual - c.estimated);
      if (c.label[0] == 'v') max_path_err = std::max(max_path_err, err);
      t.AddRow({c.label, FmtSci(c.estimated), FmtSci(actual), FmtSci(err)});
    }
    t.Print();
    std::printf("  (vehicles=%llu engines=%llu companies=%llu)\n",
                (unsigned long long)report.vehicles, (unsigned long long)report.engines,
                (unsigned long long)report.companies);
    checks.Expect(max_path_err < 0.15,
                  "path selectivity estimates within 0.15 absolute error");
  }

  Banner("Shape checks on the approximation");
  {
    // c() must hug Yao in the saturated regime and stay within ~45% elsewhere
    // (it is a piecewise-linear surrogate for a concave curve).
    double worst = 0;
    for (double r = 100; r <= 20000; r += 100) {
      double c = CApprox(20000, 2000, r);
      double yao = YaoExact(20000, 2000, static_cast<uint64_t>(r));
      worst = std::max(worst, std::abs(c - yao) / std::max(yao, 1.0));
    }
    std::printf("  worst relative error of c() vs Yao over the sweep: %.3f\n", worst);
    checks.Expect(worst < 0.45, "c(n,m,r) tracks Yao within 45% everywhere");
    checks.Expect(CApprox(20000, 2000, 20000) == 2000,
                  "c() saturates at m for r >= 2m");
  }
  return checks.ExitCode();
}
