#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace mood {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 13; c++) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::IOError("disk on fire");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

Result<int> Doubler(Result<int> in) {
  MOOD_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = Doubler(Status::Internal("bad"));
  EXPECT_FALSE(err.ok());
}

TEST(SliceTest, CompareAndEquality) {
  Slice a("abc"), b("abd"), c("abc"), d("ab");
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
  EXPECT_EQ(a.compare(c), 0);
  EXPECT_GT(a.compare(d), 0);
  EXPECT_TRUE(a == c);
  EXPECT_TRUE(a != b);
}

TEST(SliceTest, RemovePrefix) {
  Slice s("hello world");
  s.remove_prefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  PutDouble(&buf, 3.14159);
  Decoder dec((Slice(buf)));
  uint16_t a = 0;
  uint32_t b = 0;
  uint64_t c = 0;
  double d = 0;
  ASSERT_TRUE(dec.GetFixed16(&a).ok());
  ASSERT_TRUE(dec.GetFixed32(&b).ok());
  ASSERT_TRUE(dec.GetFixed64(&c).ok());
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(dec.Empty());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "hello");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, std::string(1000, 'x'));
  Decoder dec((Slice(buf)));
  std::string a, b, c;
  ASSERT_TRUE(dec.GetString(&a).ok());
  ASSERT_TRUE(dec.GetString(&b).ok());
  ASSERT_TRUE(dec.GetString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(CodingTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder dec(Slice(buf.data(), 2));
  uint32_t v = 0;
  EXPECT_TRUE(dec.GetFixed32(&v).IsCorruption());
  std::string bogus;
  PutFixed32(&bogus, 100);  // claims 100 bytes follow, none do
  Decoder dec2((Slice(bogus)));
  Slice out;
  EXPECT_TRUE(dec2.GetLengthPrefixedSlice(&out).IsCorruption());
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Hash64(Slice("abc")), Hash64(Slice("abc")));
  EXPECT_NE(Hash64(Slice("abc")), Hash64(Slice("abd")));
  EXPECT_NE(Hash64(Slice("abc"), 1), Hash64(Slice("abc"), 2));
}

TEST(RandomTest, DeterministicBySeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(123);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t r = rng.Range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace mood
