#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mood {

class MetricsRegistry;

/// Buffer-pool statistics snapshot consumed by benches and the concurrency
/// tests. Counters are per-shard atomics inside the pool; stats() aggregates
/// them coherently while other threads fetch pages. `prefetches` counts pages
/// brought in by readahead (Prefetch); a later demand FetchPage of such a page
/// is a hit, so hits + misses == FetchPage calls always holds.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t prefetches = 0;
  void Clear() { *this = BufferPoolStats{}; }
};

/// Sharded, lock-striped buffer pool over a DiskManager. Fulfils the "storage
/// management" kernel function the paper delegates to the Exodus Storage
/// Manager.
///
/// The pool's frames are split across N shards (power of two); a page id is
/// hashed to its owning shard, which holds its own mutex, page table, frames
/// and clock-sweep eviction state. Parallel morsel workers touching different
/// pages therefore contend only when their pages hash to the same shard,
/// instead of serializing on one pool-wide mutex.
///
/// Pages are pinned by Fetch/New and must be unpinned; pinned pages are never
/// evicted. Eviction is clock-sweep (second chance): each frame has a ref bit
/// set on placement and on every hit; the sweep clears ref bits and evicts the
/// first unpinned frame whose bit is already clear. An optional flush hook
/// implements the WAL rule: before a dirty page is written back, the hook is
/// invoked so the log can be forced first (the hook must be internally
/// thread-safe — evictions in different shards may invoke it concurrently).
///
/// Thread safety: every public entry point takes only the owning shard's
/// mutex. Pin counts keep a resident page's frame stable, so holding a pinned
/// Page* across the call boundary remains valid under concurrency. Statistics
/// are atomics and may be read or cleared at any time without tearing.
class BufferPool {
 public:
  /// `shards` = 0 picks a default: max(4, hardware_concurrency), capped so
  /// each shard keeps at least kMinAutoFramesPerShard frames (tiny pools
  /// degenerate to one shard and behave like the old single-mutex pool).
  /// An explicit `shards` is honored after rounding down to a power of two
  /// and clamping to at most one shard per frame.
  BufferPool(DiskManager* disk, size_t pool_size, size_t shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, reading it from disk on a miss. The returned page is pinned.
  /// A page whose on-disk frame fails checksum verification surfaces as
  /// Status::Corruption.
  Result<Page*> FetchPage(PageId page_id);

  /// Recovery-mode fetch: like FetchPage, but a page whose frame fails
  /// checksum verification is installed as a zeroed frame (page LSN 0, not
  /// dirty) with `*corrupted` set, so WAL replay re-creates its contents from
  /// the logged full image — and a page id beyond the end of the file (its
  /// allocating write was lost in the crash) is allocated on the spot. Only
  /// RecoveryManager and the torn-page-tolerant directory load use this; the
  /// zeroed frame is never marked dirty, so if no log record covers the page
  /// its on-disk corruption is preserved and detected by later reads.
  Result<Page*> FetchPageTolerant(PageId page_id, bool* corrupted);

  /// Allocates a fresh page on disk and returns it pinned.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the page as modified.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Best-effort readahead: brings `page_id` into its shard unpinned with the
  /// ref bit set, so the demand fetch that follows is a hit. A no-op when the
  /// page is already resident or the shard has no evictable frame (readahead
  /// must never fail a query); only a failed disk read reports an error.
  Status Prefetch(PageId page_id);

  /// Writes one page back if dirty. The page stays cached.
  Status FlushPage(PageId page_id);

  /// Writes back every dirty page.
  Status FlushAll();

  /// Set a hook invoked with the page about to be flushed (WAL rule). Must be
  /// set while no other thread uses the pool; the hook itself may be invoked
  /// concurrently from different shards.
  void SetPreFlushHook(std::function<Status(const Page&)> hook) {
    pre_flush_hook_ = std::move(hook);
  }

  size_t pool_size() const { return pool_size_; }
  size_t shard_count() const { return shards_.size(); }

  /// Which shard owns `page_id` (exposed so tests can pick same-shard or
  /// cross-shard page sets deliberately).
  size_t ShardOf(PageId page_id) const;

  /// Readahead depth used by HeapFile scans (0 disables). Stored here so every
  /// scan path sees one knob; set at open time, read from scan threads.
  void set_readahead(size_t pages) { readahead_.store(pages, std::memory_order_relaxed); }
  size_t readahead() const { return readahead_.load(std::memory_order_relaxed); }

  /// Coherent aggregate snapshot of all shards (safe under concurrent
  /// fetches). Evictions are read before misses per shard so a lagging
  /// snapshot can never show more evictions than the misses that caused them.
  BufferPoolStats stats() const;

  /// Counters of one shard (for eviction-accounting tests and bench output).
  BufferPoolStats ShardStats(size_t shard) const;

  void ResetStats();

  /// Number of currently pinned pages (used by concurrency tests to assert no
  /// lost pins).
  size_t PinnedPageCount() const;

  /// Registers a `bufferpool.*` probe: aggregate hits/misses/evictions/
  /// prefetches, pinned-page and capacity gauges, and per-shard
  /// `bufferpool.shard<i>.*` counters (DESIGN.md §8 naming scheme).
  void RegisterMetrics(MetricsRegistry* registry) const;

  DiskManager* disk() const { return disk_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<Page> frames;
    std::vector<uint8_t> ref;       // clock-sweep second-chance bits
    std::list<size_t> free_frames;  // never-used frames
    size_t clock_hand = 0;
    std::unordered_map<PageId, size_t> page_table;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> prefetches{0};
  };

  /// Finds a frame for a new resident page: free list first, else clock-sweep
  /// victim. Requires `shard.mu` held; the victim is written back if dirty and
  /// unhooked from the shard's page table.
  Result<size_t> GetVictimFrame(Shard& shard);

  /// Places `page_id` into `idx` of `shard` after reading it from disk. On a
  /// read error the frame is left unhooked; the caller recycles it. Requires
  /// mu held.
  Status ReadIntoFrame(Shard& shard, size_t idx, PageId page_id);

  DiskManager* disk_;
  size_t pool_size_;
  size_t shard_mask_ = 0;  // shard count is a power of two
  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<Status(const Page&)> pre_flush_hook_;
  std::atomic<size_t> readahead_{0};
};

/// RAII pin guard: unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this == &other) return *this;
    Release();
    pool_ = other.pool_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.dirty_ = false;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  bool valid() const { return page_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace mood
