#include "optimizer/plan.h"

#include <set>

namespace mood {

namespace {
void CollectVars(const PlanNode& node, std::set<std::string>* out) {
  switch (node.op) {
    case PlanOp::kBindClass:
    case PlanOp::kIndexSelect:
      out->insert(node.from.var);
      break;
    case PlanOp::kFilter:
      CollectVars(*node.child, out);
      break;
    case PlanOp::kPointerJoin:
    case PlanOp::kNestedLoopJoin:
      CollectVars(*node.left, out);
      CollectVars(*node.right, out);
      break;
    case PlanOp::kUnion:
      for (const auto& c : node.children) CollectVars(*c, out);
      break;
  }
}

std::string JoinPathString(const PlanNode& node) {
  std::string p = node.ref_var;
  for (const auto& step : node.ref_path) p += "." + step;
  return p + " = " + node.target_var + ".self";
}
}  // namespace

std::vector<std::string> PlanNode::BoundVars() const {
  std::set<std::string> vars;
  CollectVars(*this, &vars);
  return {vars.begin(), vars.end()};
}

std::string PlanNode::ToString() const {
  switch (op) {
    case PlanOp::kBindClass: {
      std::string out = "BIND(";
      if (from.every) out += "EVERY ";
      out += from.class_name;
      for (const auto& ex : from.excludes) out += " - " + ex;
      out += ", " + from.var + ")";
      return out;
    }
    case PlanOp::kIndexSelect: {
      std::string out = "INDSEL(" + from.class_name;
      for (const auto& probe : probes) {
        out += ", " + probe.index.name + ": " + from.var + "." + probe.index.attribute +
               " " + std::string(BinaryOpName(probe.cmp)) + " " +
               (probe.param >= 0 ? "?" + std::to_string(probe.param + 1)
                                 : probe.constant.ToString());
      }
      out += ")";
      return out;
    }
    case PlanOp::kFilter: {
      std::string out = "SELECT(" + child->ToString() + ", ";
      for (size_t i = 0; i < predicates.size(); i++) {
        if (i > 0) out += " AND ";
        out += predicates[i]->ToString();
      }
      out += ")";
      return out;
    }
    case PlanOp::kPointerJoin:
      return "JOIN(" + left->ToString() + ", " + right->ToString() + ", " +
             std::string(JoinMethodName(method)) + ", " + JoinPathString(*this) + ")";
    case PlanOp::kNestedLoopJoin:
      return "JOIN(" + left->ToString() + ", " + right->ToString() + ", NESTED_LOOP, " +
             (join_pred ? join_pred->ToString() : "true") + ")";
    case PlanOp::kUnion: {
      std::string out = "UNION(";
      for (size_t i = 0; i < children.size(); i++) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

std::string PlanNode::Describe() const {
  switch (op) {
    case PlanOp::kBindClass:
    case PlanOp::kIndexSelect:
      return ToString();
    case PlanOp::kFilter: {
      std::string preds;
      for (size_t i = 0; i < predicates.size(); i++) {
        if (i > 0) preds += " AND ";
        preds += predicates[i]->ToString();
      }
      return "SELECT " + preds;
    }
    case PlanOp::kPointerJoin:
      return "JOIN[" + std::string(JoinMethodName(method)) + "] " +
             JoinPathString(*this);
    case PlanOp::kNestedLoopJoin:
      return "JOIN[NESTED_LOOP] " + (join_pred ? join_pred->ToString() : "true");
    case PlanOp::kUnion:
      return "UNION";
  }
  return "?";
}

std::string PlanNode::Explain(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  [cost=%.3f rows=%.2f]", est_cost, est_rows);
  std::string out = pad + Describe() + buf;
  if (!note.empty()) out += "  [" + note + "]";
  out += "\n";
  switch (op) {
    case PlanOp::kBindClass:
    case PlanOp::kIndexSelect:
      break;
    case PlanOp::kFilter:
      out += child->Explain(indent + 1);
      break;
    case PlanOp::kPointerJoin:
    case PlanOp::kNestedLoopJoin:
      out += left->Explain(indent + 1);
      out += right->Explain(indent + 1);
      break;
    case PlanOp::kUnion:
      for (const auto& c : children) out += c->Explain(indent + 1);
      break;
  }
  return out;
}

PlanPtr PlanNode::Bind(FromEntry from) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kBindClass;
  n->from = std::move(from);
  return n;
}

PlanPtr PlanNode::IndexSel(FromEntry from, std::vector<IndexProbe> probes) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kIndexSelect;
  n->from = std::move(from);
  n->probes = std::move(probes);
  return n;
}

PlanPtr PlanNode::Filter(PlanPtr child, std::vector<ExprPtr> preds) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kFilter;
  n->child = std::move(child);
  n->predicates = std::move(preds);
  return n;
}

PlanPtr PlanNode::PointerJoin(PlanPtr left, PlanPtr right, JoinMethod method,
                              std::string ref_var, std::vector<std::string> ref_path,
                              std::string target_var) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kPointerJoin;
  n->left = std::move(left);
  n->right = std::move(right);
  n->method = method;
  n->ref_var = std::move(ref_var);
  n->ref_path = std::move(ref_path);
  n->target_var = std::move(target_var);
  return n;
}

PlanPtr PlanNode::NestedLoop(PlanPtr left, PlanPtr right, ExprPtr pred) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kNestedLoopJoin;
  n->left = std::move(left);
  n->right = std::move(right);
  n->join_pred = std::move(pred);
  return n;
}

PlanPtr PlanNode::Union(std::vector<PlanPtr> children) {
  auto n = std::make_shared<PlanNode>();
  n->op = PlanOp::kUnion;
  n->children = std::move(children);
  return n;
}

}  // namespace mood
