#include "stats/histogram.h"

#include <algorithm>

namespace mood {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             size_t target_buckets) {
  EquiDepthHistogram h;
  if (values.empty() || target_buckets == 0) return h;
  std::sort(values.begin(), values.end());
  h.total_ = values.size();
  const size_t depth =
      std::max<size_t>(1, (values.size() + target_buckets - 1) / target_buckets);

  Bucket cur;
  cur.lo = values[0];
  for (size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (cur.count == 0) {
      cur.lo = v;
      cur.distinct = 1;
    } else if (v != values[i - 1]) {
      cur.distinct++;
    }
    cur.count++;
    cur.hi = v;
    const bool last = i + 1 == values.size();
    // Close the bucket once it is deep enough, but only at a value boundary:
    // an equal-value run always lands in a single bucket.
    if (!last && cur.count >= depth && values[i + 1] != v) {
      h.buckets_.push_back(cur);
      cur = Bucket{};
    }
  }
  if (cur.count > 0) h.buckets_.push_back(cur);
  return h;
}

double EquiDepthHistogram::FractionLE(double c) const {
  if (empty()) return 0.0;
  if (c < buckets_.front().lo) return 0.0;
  if (c >= buckets_.back().hi) return 1.0;
  uint64_t below = 0;
  for (const Bucket& b : buckets_) {
    if (c >= b.hi) {
      below += b.count;
      continue;
    }
    if (c >= b.lo) {
      // Linear interpolation inside the bucket.
      const double width = b.hi - b.lo;
      const double frac = width > 0 ? (c - b.lo) / width : 1.0;
      below += static_cast<uint64_t>(frac * static_cast<double>(b.count));
    }
    break;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double EquiDepthHistogram::FractionEq(double c) const {
  if (empty()) return 0.0;
  for (const Bucket& b : buckets_) {
    if (c < b.lo) break;
    if (c <= b.hi) {
      const uint64_t d = std::max<uint64_t>(1, b.distinct);
      return static_cast<double>(b.count) / static_cast<double>(d) /
             static_cast<double>(total_);
    }
  }
  // Value falls outside every bucket (or in a gap between buckets): present
  // rows would have landed in a bucket, so estimate "about half a row".
  return 0.5 / static_cast<double>(total_);
}

}  // namespace mood
