#include "txn/version_store.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mood {

uint64_t VersionStore::BeginBatch() {
  return next_batch_.fetch_add(1, std::memory_order_relaxed);
}

void VersionStore::CapturePending(uint64_t batch, Oid oid, bool absent_before,
                                  uint32_t type_id,
                                  std::shared_ptr<const MoodValue> pre_image,
                                  bool live_after) {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t packed = oid.Pack();
  auto [it, inserted] = chains_.try_emplace(packed);
  Chain& chain = it->second;
  if (inserted) {
    file_counts_[oid.file % kFileSlots].fetch_add(1, std::memory_order_release);
  }
  // The heap-liveness flag always tracks the latest physical state, even when
  // the capture itself is a first-write-wins duplicate.
  chain.live_in_heap = live_after;
  for (const Entry& e : chain.entries) {
    if (e.superseded_csn == kPendingCsn && e.batch == batch) return;
  }
  Entry e;
  e.batch = batch;
  e.absent = absent_before;
  e.type_id = type_id;
  e.tuple = std::move(pre_image);
  chain.entries.push_back(std::move(e));
  pending_counts_[oid.file % kFileSlots].fetch_add(1, std::memory_order_release);
  batch_oids_[batch].push_back(packed);
  captures_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t VersionStore::CommitBatch(uint64_t batch) {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t csn = last_csn_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto it = batch_oids_.find(batch);
  if (it != batch_oids_.end()) {
    for (uint64_t packed : it->second) {
      auto cit = chains_.find(packed);
      if (cit == chains_.end()) continue;
      for (Entry& e : cit->second.entries) {
        if (e.superseded_csn == kPendingCsn && e.batch == batch) {
          e.superseded_csn = csn;
          pending_counts_[Oid::Unpack(packed).file % kFileSlots].fetch_sub(
              1, std::memory_order_release);
        }
      }
    }
    batch_oids_.erase(it);
    commits_.fetch_add(1, std::memory_order_relaxed);
  }
  CollectGarbageLocked();
  return csn;
}

void VersionStore::AbortBatch(uint64_t batch) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = batch_oids_.find(batch);
  if (it == batch_oids_.end()) return;
  for (uint64_t packed : it->second) {
    auto cit = chains_.find(packed);
    if (cit == chains_.end()) continue;
    Chain& chain = cit->second;
    for (auto eit = chain.entries.begin(); eit != chain.entries.end();) {
      if (eit->superseded_csn == kPendingCsn && eit->batch == batch) {
        // The caller is rolling the heap back to this entry's pre-state.
        chain.live_in_heap = !eit->absent;
        pending_counts_[Oid::Unpack(packed).file % kFileSlots].fetch_sub(
            1, std::memory_order_release);
        eit = chain.entries.erase(eit);
      } else {
        ++eit;
      }
    }
    if (chain.entries.empty()) {
      chains_.erase(cit);
      file_counts_[Oid::Unpack(packed).file % kFileSlots].fetch_sub(
          1, std::memory_order_release);
    }
  }
  batch_oids_.erase(it);
}

uint64_t VersionStore::PinSnapshot() { return PinSnapshot(nullptr); }

uint64_t VersionStore::PinSnapshot(std::array<bool, 64>* pending_slots) {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t snap = last_csn_.load(std::memory_order_relaxed);
  pins_.insert(snap);
  if (pending_slots != nullptr) {
    // Captured under the same mutex that CommitBatch holds while stamping, so
    // "pending at pin" is exact with respect to the pinned CSN: a commit either
    // finished before the pin (slot clean, heap visible) or starts after it
    // (slot still pending here).
    static_assert(kFileSlots == 64, "pending_slots size mismatch");
    for (size_t i = 0; i < kFileSlots; i++) {
      (*pending_slots)[i] =
          pending_counts_[i].load(std::memory_order_relaxed) > 0;
    }
  }
  return snap;
}

void VersionStore::UnpinSnapshot(uint64_t snap) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = pins_.find(snap);
  if (it != pins_.end()) pins_.erase(it);
  CollectGarbageLocked();
}

bool VersionStore::VisibleVersion(Oid oid, uint64_t snap, Version* out) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = chains_.find(oid.Pack());
  if (it == chains_.end()) return false;
  const Entry* best = nullptr;
  for (const Entry& e : it->second.entries) {
    if (e.superseded_csn <= snap) continue;  // superseded at or before S
    if (best == nullptr || e.superseded_csn < best->superseded_csn) best = &e;
  }
  if (best == nullptr) return false;
  out->absent = best->absent;
  out->type_id = best->type_id;
  out->tuple = best->tuple;
  return true;
}

std::vector<Oid> VersionStore::HeapAbsentOids(uint16_t file) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<Oid> out;
  for (const auto& [packed, chain] : chains_) {
    if (chain.live_in_heap) continue;
    Oid oid = Oid::Unpack(packed);
    if (oid.file == file) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Oid> VersionStore::TrackedOids(uint16_t file) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<Oid> out;
  for (const auto& [packed, chain] : chains_) {
    Oid oid = Oid::Unpack(packed);
    if (oid.file == file) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void VersionStore::CollectGarbageLocked() {
  uint64_t min_snap = MinActiveSnapshotLocked();
  for (auto it = chains_.begin(); it != chains_.end();) {
    Chain& chain = it->second;
    size_t before = chain.entries.size();
    chain.entries.erase(
        std::remove_if(chain.entries.begin(), chain.entries.end(),
                       [&](const Entry& e) {
                         return e.superseded_csn != kPendingCsn &&
                                e.superseded_csn <= min_snap;
                       }),
        chain.entries.end());
    gc_dropped_.fetch_add(before - chain.entries.size(), std::memory_order_relaxed);
    if (chain.entries.empty()) {
      file_counts_[Oid::Unpack(it->first).file % kFileSlots].fetch_sub(
          1, std::memory_order_release);
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
}

void VersionStore::RegisterMetrics(MetricsRegistry* registry) {
  registry->RegisterProbe("versionstore", [this](auto* out) {
    uint64_t chains, entries, pinned;
    {
      std::lock_guard<std::mutex> l(mu_);
      chains = chains_.size();
      entries = 0;
      for (const auto& [_, c] : chains_) entries += c.entries.size();
      pinned = pins_.size();
    }
    out->emplace_back("txn.snapshot.captures",
                      static_cast<double>(captures_.load(std::memory_order_relaxed)));
    out->emplace_back("txn.snapshot.commits",
                      static_cast<double>(commits_.load(std::memory_order_relaxed)));
    out->emplace_back("txn.snapshot.gc_dropped",
                      static_cast<double>(gc_dropped_.load(std::memory_order_relaxed)));
    out->emplace_back("txn.snapshot.injected",
                      static_cast<double>(injected_.load(std::memory_order_relaxed)));
    out->emplace_back("txn.snapshot.pinned", static_cast<double>(pinned));
    out->emplace_back("txn.snapshot.chains", static_cast<double>(chains));
    out->emplace_back("txn.snapshot.entries", static_cast<double>(entries));
    out->emplace_back("txn.snapshot.csn",
                      static_cast<double>(last_csn_.load(std::memory_order_relaxed)));
  });
}

}  // namespace mood
