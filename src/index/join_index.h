#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/bptree.h"
#include "types/oid.h"

namespace mood {

/// Binary Join Index (Valduriez-style): a materialized set of (oid_c, oid_d)
/// pairs for one reference attribute C.A -> D, indexed in both directions. The
/// optimizer's "index-based join" strategy (Section 8.3) probes it with whichever
/// side is smaller; its access cost is INDCOST(k) (Section 6.3).
class BinaryJoinIndex {
 public:
  static Result<std::unique_ptr<BinaryJoinIndex>> Create(BufferPool* pool,
                                                         FileDirectory* alloc);
  static Result<std::unique_ptr<BinaryJoinIndex>> Open(BufferPool* pool,
                                                       FileDirectory* alloc,
                                                       PageId forward_meta,
                                                       PageId backward_meta);

  PageId forward_meta() const { return forward_->meta_page(); }
  PageId backward_meta() const { return backward_->meta_page(); }

  Status Add(Oid from, Oid to);
  Status Remove(Oid from, Oid to);

  /// D-side objects referenced by `from` (forward direction).
  Result<std::vector<Oid>> Targets(Oid from) const;
  /// C-side objects referencing `to` (backward direction).
  Result<std::vector<Oid>> Sources(Oid to) const;

  uint64_t pair_count() const { return forward_->stats().entries; }
  const BPlusTree& forward_tree() const { return *forward_; }
  const BPlusTree& backward_tree() const { return *backward_; }

 private:
  BinaryJoinIndex(std::unique_ptr<BPlusTree> fwd, std::unique_ptr<BPlusTree> bwd)
      : forward_(std::move(fwd)), backward_(std::move(bwd)) {}

  static std::string OidKey(Oid oid);

  std::unique_ptr<BPlusTree> forward_;
  std::unique_ptr<BPlusTree> backward_;
};

/// Path index (Kemper/Moerkotte access support): maps the atomic value at the end
/// of a path C1.A1...Am directly to the Oids of the C1 root objects, collapsing
/// the whole chain of implicit joins into one lookup.
class PathIndex {
 public:
  static Result<std::unique_ptr<PathIndex>> Create(BufferPool* pool,
                                                   FileDirectory* alloc);
  static Result<std::unique_ptr<PathIndex>> Open(BufferPool* pool, FileDirectory* alloc,
                                                 PageId meta_page);

  PageId meta_page() const { return tree_->meta_page(); }

  /// Registers that root object `root` reaches terminal value `key` (encoded with
  /// key_codec).
  Status Add(Slice key, Oid root);
  Status Remove(Slice key, Oid root);

  Result<std::vector<Oid>> Lookup(Slice key) const;
  /// Range lookup [lo, hi]; null bound = unbounded.
  Result<std::vector<Oid>> LookupRange(const std::string* lo, const std::string* hi) const;

  const BPlusTree& tree() const { return *tree_; }

 private:
  explicit PathIndex(std::unique_ptr<BPlusTree> tree) : tree_(std::move(tree)) {}

  std::unique_ptr<BPlusTree> tree_;
};

}  // namespace mood
