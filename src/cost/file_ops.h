#pragma once

#include "common/status.h"
#include "cost/disk_params.h"

namespace mood {

/// B+-tree parameters as the cost model consumes them (paper Table 9).
struct BTreeCostParams {
  double order = 100;     ///< v(I)
  double levels = 2;      ///< level(I)
  double leaves = 100;    ///< leaves(I)
  double keysize = 8;     ///< keysize(I)
  bool unique = false;    ///< unique(I)
};

/// Section 5 — cost analysis of basic file operations. All results in ms.

/// SEQCOST(b) = s + r + b * ebt  (or RNDCOST(b) under the ESM B+-tree-file regime).
double SeqCost(double b, const DiskParameters& p);

/// RNDCOST(b) = b * (s + r + btt).
double RndCost(double b, const DiskParameters& p);

/// INDCOST(k): cost of accessing object identifiers for k random keys through a
/// secondary B+-tree index:
///   INDCOST(k) = (sum_{i=1..level} ceil(c(n_i, m_i, r_i))) * RNDCOST(1)
/// with n_i = leaves/(2v ln2)^{i-2}, m_i = leaves/(2v ln2)^{i-1},
/// r_1 = k and r_i = c(n_{i-1}, m_{i-1}, r_{i-1}).
double IndCost(double k, const BTreeCostParams& index, const DiskParameters& p);

/// RNGXCOST(fract) = fract * leaves(I) * (s + r + btt).
double RngxCost(double fract, const BTreeCostParams& index, const DiskParameters& p);

}  // namespace mood
