#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mood {

class MetricsRegistry;

enum class LockMode : uint8_t { kShared, kExclusive };

/// A lockable resource: a (space, key) pair. Spaces keep file-level and
/// object-level locks from colliding.
struct LockKey {
  uint32_t space = 0;
  uint64_t key = 0;
  friend bool operator==(const LockKey&, const LockKey&) = default;
  friend auto operator<=>(const LockKey&, const LockKey&) = default;
};

/// Strict two-phase-locking lock manager with waits-for-graph deadlock detection.
/// This supplies the "controlling data access and concurrency" kernel function the
/// paper delegates to the Exodus Storage Manager.
///
/// Deadlocks are resolved by aborting the requester: Acquire returns
/// Status::Deadlock and the caller is expected to abort its transaction.
class LockManager {
 public:
  /// Blocks until granted, the deadlock detector picks this request as victim, or
  /// upgrade conflicts make the request impossible.
  Status Acquire(uint64_t txn_id, LockKey key, LockMode mode);

  /// Releases every lock held by `txn_id` (strict 2PL: called at commit/abort).
  void ReleaseAll(uint64_t txn_id);

  /// True if the transaction currently holds the lock in a mode at least as strong.
  bool Holds(uint64_t txn_id, LockKey key, LockMode mode) const;

  /// Number of distinct locked resources (for tests).
  size_t LockedResourceCount() const;

  /// Registers the `lockman.*` probe: acquire/wait/deadlock counters plus the
  /// live locked-resource gauge.
  void RegisterMetrics(MetricsRegistry* registry) const;

 private:
  struct Request {
    uint64_t txn_id;
    LockMode mode;
    bool granted;
  };
  struct Queue {
    std::list<Request> requests;
  };

  bool Compatible(const Queue& q, uint64_t txn_id, LockMode mode) const;
  /// True if granting order admits the first ungranted requests.
  void PromoteLocked(Queue& q);
  /// Detects whether txn `start` can reach itself through the waits-for graph.
  bool WouldDeadlockLocked(uint64_t start) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<LockKey, Queue> queues_;
  std::unordered_map<uint64_t, std::set<LockKey>> held_;
  /// waiting txn -> set of txns it waits for.
  std::unordered_map<uint64_t, std::set<uint64_t>> waits_for_;
  /// Contention counters, sampled by the metrics probe. Relaxed atomics: they
  /// are monotonic event counts with no ordering relation to the lock state.
  mutable std::atomic<uint64_t> acquires_{0};
  mutable std::atomic<uint64_t> wait_blocks_{0};
  mutable std::atomic<uint64_t> deadlocks_{0};
};

}  // namespace mood
