#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "types/oid.h"
#include "types/value.h"

namespace mood {

/// The collection kinds of the MOOD algebra (Section 3.2): objects are accessed
/// through extents, sets of object identifiers, lists of object identifiers, or
/// named objects.
enum class CollKind : uint8_t {
  kExtent = 0,
  kSet = 1,
  kList = 2,
  kNamedObject = 3,
};

std::string_view CollKindName(CollKind k);

/// A runtime algebra collection. Extents may be *object* extents (element = Oid
/// into a class extent) or *value* extents (materialized tuple values — the
/// result of Project, which produces "the extent of the tuple type values").
/// Sets and lists carry object identifiers; a named object is a single-element
/// collection.
class Collection {
 public:
  Collection() : kind_(CollKind::kSet) {}

  static Collection Extent(std::string class_name, std::vector<Oid> oids);
  static Collection ValueExtent(std::vector<MoodValue> values);
  static Collection Set(std::vector<Oid> oids);        // deduplicates
  static Collection List(std::vector<Oid> oids);
  static Collection NamedObject(std::string name, Oid oid);
  /// Pair collections produced by the Join operator: kind per Table 2, elements
  /// are <left, right> value tuples.
  static Collection Pairs(CollKind kind, std::vector<MoodValue> pair_values);

  CollKind kind() const { return kind_; }
  bool materialized() const { return materialized_; }
  const std::string& class_name() const { return class_name_; }
  const std::string& object_name() const { return object_name_; }

  const std::vector<Oid>& oids() const { return oids_; }
  std::vector<Oid>& mutable_oids() { return oids_; }
  const std::vector<MoodValue>& values() const { return values_; }
  std::vector<MoodValue>& mutable_values() { return values_; }

  size_t size() const { return materialized_ ? values_.size() : oids_.size(); }
  bool empty() const { return size() == 0; }

  std::string ToString() const;

 private:
  CollKind kind_;
  bool materialized_ = false;
  std::string class_name_;   // extent source class ("" for derived)
  std::string object_name_;  // named object
  std::vector<Oid> oids_;
  std::vector<MoodValue> values_;
};

}  // namespace mood
