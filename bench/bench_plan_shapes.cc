// Figures 7.1 / 7.2 — the fixed execution order of MOODSQL clauses and of the
// algebraic operators within a WHERE clause. Prints the orders and verifies the
// generated plans obey the SELECT -> JOIN -> (PROJECT) -> UNION layering by
// construction, plus the Figure 2.1 architecture as a component inventory.

#include "bench/bench_util.h"

using namespace mood;
using namespace mood::bench;

namespace {

/// Verifies Figure 7.2's layering inside a plan tree: below a JOIN there may be
/// SELECTs/leaves/JOINs, but never a UNION; a UNION appears only at the root.
bool CheckLayering(const PlanPtr& node, bool under_join, std::string* why) {
  switch (node->op) {
    case PlanOp::kUnion:
      if (under_join) {
        *why = "UNION below a JOIN";
        return false;
      }
      for (const auto& c : node->children) {
        if (!CheckLayering(c, false, why)) return false;
      }
      return true;
    case PlanOp::kPointerJoin:
    case PlanOp::kNestedLoopJoin:
      return CheckLayering(node->left, true, why) &&
             CheckLayering(node->right, true, why);
    case PlanOp::kFilter:
      return CheckLayering(node->child, under_join, why);
    default:
      return true;
  }
}

}  // namespace

int main() {
  Banner("Figure 7.1: the sequence of execution of a MOODSQL query");
  std::printf(
      "  FROM -> WHERE -> GROUP BY -> HAVING -> SELECT (projection) -> ORDER BY\n"
      "  (enforced by Executor::FinishSelect)\n");

  Banner("Figure 7.2: order of algebraic operators in a WHERE clause");
  std::printf(
      "  UNION\n    ^\n  PROJECT\n    ^\n  JOIN\n    ^\n  SELECT\n"
      "  (enforced by plan construction: selections at the leaves, joins above\n"
      "  them, the projection in the clause pipeline, UNION across AND-terms)\n");

  BenchDb scratch("plan_shapes");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  paperdb::InstallPaperStatistics(db.stats());

  Checks checks;
  Banner("Representative plans");
  struct Q {
    const char* label;
    std::string sql;
  };
  std::vector<Q> queries = {
      {"immediate selection", "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2"},
      {"path selection (Example 8.2)", paperdb::kExample82Query},
      {"two paths (Example 8.1)", paperdb::kExample81Query},
      {"disjunction",
       "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR e.size > 3000"},
      {"explicit join + EVERY/minus (Section 3.1)", paperdb::kSection31Query},
  };
  for (const auto& q : queries) {
    auto optimized = CheckV(db.Explain(q.sql, {}), q.label).optimized;
    std::printf("\n-- %s\n%s", q.label, optimized.plan->Explain(1).c_str());
    std::string why;
    checks.Expect(CheckLayering(optimized.plan, false, &why),
                  std::string(q.label) + ": Figure 7.2 layering holds" +
                      (why.empty() ? "" : " (" + why + ")"));
  }

  Banner("Figure 2.1: component inventory of the running system");
  {
    Table t({"paper component", "implementation", "live"});
    t.AddRow({"Exodus Storage Manager", "StorageManager + BufferPool + WAL",
              db.storage()->is_open() ? "yes" : "no"});
    t.AddRow({"CATALOG", "Catalog (heap file 1)",
              std::to_string(db.catalog()->AllTypes().size()) + " types"});
    t.AddRow({"MOODSQL interpreter", "Parser + Binder + Optimizer + Executor", "yes"});
    t.AddRow({"Function Manager", "FunctionManager (signature registry)",
              std::to_string(db.functions()->registered_count()) + " compiled"});
    t.AddRow({"C++ compiler (cfront)", "CppBridge (declaration parser/generator)",
              "yes"});
    t.AddRow({"MoodView", "SchemaBrowser + ObjectBrowser + QueryManager", "yes"});
    t.Print();
  }
  return checks.ExitCode();
}
