#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace mood {

struct StorageOptions {
  /// Buffer-pool capacity in pages.
  size_t pool_pages = 256;
  /// Buffer-pool shard count (0 = auto: max(4, hardware threads), capped so
  /// small pools stay one shard). Rounded down to a power of two.
  size_t pool_shards = 0;
  /// Sequential-scan readahead depth in pages (0 disables prefetching).
  size_t readahead_pages = 4;
  /// When set (the WAL-enabled configuration), the directory load after a
  /// crash tolerates torn pages: a directory page failing checksum
  /// verification is read as a zeroed frame (decoding as an empty end-of-chain
  /// page) instead of failing Open, and WAL replay then rebuilds it before
  /// ReloadDirectory re-reads the real chain. Without a WAL there is nothing
  /// to rebuild from, so corruption stays a hard error.
  bool tolerate_torn_pages = false;
};

/// The storage facade replacing the Exodus Storage Manager: one database file
/// multiplexing many heap files (class extents, catalog, index backing files)
/// behind a shared buffer pool.
///
/// Page 0 starts the file directory, a chain of pages holding FileInfo entries:
///   [0..8)   LSN
///   [8..12)  next directory page (kInvalidPageId terminates)
///   [12..16) entry count
///   entries of 24 bytes: file_id, first_page, last_page, page_count (u32 each),
///   record_count (u64)
class StorageManager : public FileDirectory {
 public:
  StorageManager() = default;
  ~StorageManager() override;

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  Status Open(const std::string& path, const StorageOptions& options = {});
  Status Close();

  /// Creates a new empty heap file and returns its id.
  Result<FileId> CreateFile(PageWriteLogger* wal = nullptr);

  /// Returns the heap file handle (owned by the manager).
  Result<HeapFile*> GetFile(FileId id);

  bool HasFile(FileId id) const { return files_.count(id) > 0; }

  /// Flushes all dirty pages and syncs the disk file.
  Status Checkpoint();

  /// Re-reads the file directory from the (possibly recovered) pages, replacing
  /// the in-memory file handles. Call after WAL recovery.
  Status ReloadDirectory();

  // FileDirectory:
  Status UpdateFileInfo(const FileInfo& info, PageWriteLogger* wal) override;
  Result<PageId> AllocatePage() override;

  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  bool is_open() const { return disk_ != nullptr && disk_->is_open(); }

  /// Registers a `storage.*` probe (file/page/record gauges plus the heap
  /// files' aggregated operation counters) and the buffer pool's
  /// `bufferpool.*` probe. Sampling walks the open file table, so snapshots
  /// must not race DDL that creates or drops files (queries are fine).
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  struct DirSlot {
    PageId dir_page;
    uint32_t index;
  };

  static constexpr size_t kDirHeader = 16;
  static constexpr size_t kDirEntrySize = 24;
  static constexpr size_t kDirCapacity = (kPageSize - kDirHeader) / kDirEntrySize;

  Status LoadDirectory();
  Status WriteDirEntry(const FileInfo& info, const DirSlot& slot, PageWriteLogger* wal);
  Status AppendDirEntry(const FileInfo& info, PageWriteLogger* wal, DirSlot* out);

  bool tolerate_torn_pages_ = false;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unordered_map<FileId, std::unique_ptr<HeapFile>> files_;
  std::unordered_map<FileId, DirSlot> dir_slots_;
  PageId last_dir_page_ = kInvalidPageId;
  FileId next_file_id_ = 1;
};

}  // namespace mood
