#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"

namespace mood {

namespace {

/// Range-variable declarations reachable from a plan subtree (kBindClass /
/// kIndexSelect leaves). Used when a caller hands us a bare plan without the
/// BoundQuery that produced it.
void CollectRangeVars(const PlanNode& node, std::map<std::string, FromEntry>* out) {
  switch (node.op) {
    case PlanOp::kBindClass:
    case PlanOp::kIndexSelect:
      out->emplace(node.from.var, node.from);
      return;
    default:
      break;
  }
  if (node.child != nullptr) CollectRangeVars(*node.child, out);
  if (node.left != nullptr) CollectRangeVars(*node.left, out);
  if (node.right != nullptr) CollectRangeVars(*node.right, out);
  for (const auto& c : node.children) CollectRangeVars(*c, out);
}

/// Scoped profiling span: null node = profiling off, every hook degenerates to
/// one pointer test. Timing is taken only when the node exists.
struct StageSpan {
  QueryProfile* node = nullptr;
  uint64_t start = 0;

  static StageSpan Begin(QueryProfile* parent, const char* label, size_t rows_in) {
    StageSpan s;
    if (parent != nullptr) {
      s.node = parent->AddChild(label);
      s.node->rows_in = rows_in;
      s.start = ProfileNowNs();
    }
    return s;
  }
  void End(size_t rows_out) {
    if (node != nullptr) {
      node->rows_out = rows_out;
      node->wall_ns = ProfileNowNs() - start;
    }
  }
};

}  // namespace

std::string QueryResult::ToString(size_t limit) const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < columns.size(); c++) widths[c] = columns[c].size();
  size_t n = rows.size();
  if (limit > 0 && limit < n) n = limit;
  for (size_t r = 0; r < n; r++) {
    std::vector<std::string> line;
    for (size_t c = 0; c < rows[r].size(); c++) {
      std::string cell = rows[r][c].ToString();
      if (c < widths.size()) widths[c] = std::max(widths[c], cell.size());
      line.push_back(std::move(cell));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto pad = [&](const std::string& s, size_t w) {
    out += s;
    out.append(w > s.size() ? w - s.size() : 0, ' ');
    out += "  ";
  };
  for (size_t c = 0; c < columns.size(); c++) pad(columns[c], widths[c]);
  out += "\n";
  for (size_t c = 0; c < columns.size(); c++) {
    out += std::string(widths[c], '-');
    out += "  ";
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); c++) pad(line[c], c < widths.size() ? widths[c] : 0);
    out += "\n";
  }
  if (limit > 0 && rows.size() > limit) {
    out += "... (" + std::to_string(rows.size() - limit) + " more rows)\n";
  }
  return out;
}

Evaluator::Env Executor::EnvOf(const RowSet& rs, const std::vector<Oid>& row,
                               DerefCache* cache) const {
  Evaluator::Env env;
  env.deref = cache;
  for (size_t i = 0; i < rs.vars.size(); i++) env.vars[rs.vars[i]] = row[i];
  return env;
}

ExprCompileEnv Executor::CompileEnvOf(
    const std::vector<std::string>& vars,
    const std::map<std::string, FromEntry>* range_vars) const {
  ExprCompileEnv env;
  for (size_t i = 0; i < vars.size(); i++) {
    ExprCompileEnv::VarInfo vi;
    vi.slot = static_cast<uint32_t>(i);
    if (range_vars != nullptr) {
      auto it = range_vars->find(vars[i]);
      if (it != range_vars->end()) {
        const FromEntry& fe = it->second;
        if (!fe.every) {
          // A plain FROM scans one extent: every instance is exactly this class.
          vi.class_name = fe.class_name;
          vi.single_class = true;
        } else {
          // EVERY is polymorphic unless the exclusions prune the subtree to a
          // single class (e.g. `EVERY Automobile - JapaneseAuto` with exactly
          // one remaining extent).
          auto classes = objects_->ScanClasses(fe.class_name, true, fe.excludes);
          if (classes.ok() && classes.value().size() == 1) {
            vi.class_name = classes.value()[0];
            vi.single_class = true;
          }
        }
      }
    }
    env.vars.emplace(vars[i], vi);
  }
  return env;
}

ExprProgramPtr Executor::CompileExpr(const ExprPtr& expr,
                                     const std::vector<std::string>& vars,
                                     const Ctx& ctx) const {
  if (!ctx.compile || expr == nullptr) return nullptr;
  ExprCompileEnv cenv = CompileEnvOf(vars, ctx.range_vars);
  ExprCompiler compiler(objects_);
  std::unique_ptr<ExprProgram> prog = compiler.Compile(expr, cenv);
  if (prog == nullptr) {
    if (expr_fallback_ != nullptr) expr_fallback_->Add(1);
    return nullptr;
  }
  if (expr_compiled_ != nullptr) expr_compiled_->Add(1);
  if (expr_folded_ != nullptr && prog->const_folded() > 0) {
    expr_folded_->Add(prog->const_folded());
  }
  return ExprProgramPtr(std::move(prog));
}

void Executor::CountRuntimeFallback() const {
  if (expr_fallback_ != nullptr) expr_fallback_->Add(1);
}

Status Executor::ChaseRefs(Oid from, const std::vector<std::string>& path,
                           DerefCache* cache,
                           const std::function<Status(Oid)>& fn) const {
  if (path.empty()) return fn(from);
  MOOD_ASSIGN_OR_RETURN(MoodValue v, objects_->GetAttribute(from, path[0], cache));
  std::vector<std::string> rest(path.begin() + 1, path.end());
  auto handle = [&](const MoodValue& r) -> Status {
    if (r.is_null()) return Status::OK();
    if (r.kind() != ValueKind::kReference) {
      return Status::TypeError("reference path step '" + path[0] +
                               "' reached a non-reference value");
    }
    return ChaseRefs(r.AsReference(), rest, cache, fn);
  };
  if (v.IsCollection()) {
    for (const auto& e : v.elements()) MOOD_RETURN_IF_ERROR(handle(e));
    return Status::OK();
  }
  return handle(v);
}

Result<RowSet> Executor::ExecBind(const PlanNode& node, Ctx& ctx) const {
  RowSet rs;
  rs.vars = {node.from.var};
  if (ctx.threads <= 1) {
    MOOD_RETURN_IF_ERROR(objects_->ScanExtent(node.from.class_name, node.from.every,
                                              node.from.excludes,
                                              [&](Oid oid, const MoodValue&) {
                                                rs.rows.push_back({oid});
                                                return Status::OK();
                                              }));
    if (ctx.profile != nullptr) {
      // Report the page-task count the parallel path would partition into, so
      // the profile's morsel column is identical across thread counts.
      MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                            objects_->ScanClasses(node.from.class_name, node.from.every,
                                                  node.from.excludes));
      size_t pages = 0;
      for (const std::string& cls : classes) {
        MOOD_ASSIGN_OR_RETURN(std::vector<PageId> ids, objects_->ExtentPageIds(cls));
        pages += ids.size();
      }
      ctx.profile->morsels = pages;
    }
    return rs;
  }
  // Parallel extent scan: one morsel per extent page, in (class, chain) order —
  // the exact sequence ScanExtent visits — so the in-order merge reproduces the
  // serial result.
  MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                        objects_->ScanClasses(node.from.class_name, node.from.every,
                                              node.from.excludes));
  struct PageTask {
    const std::string* class_name;
    PageId page;
    HeapFile::ScanCursor* cursor;
  };
  std::vector<PageTask> tasks;
  // One readahead cursor per class: workers advancing through a class's chain
  // share the scan front, so prefetches run ahead of the fastest worker.
  std::vector<std::unique_ptr<HeapFile::ScanCursor>> cursors;
  for (const std::string& cls : classes) {
    MOOD_ASSIGN_OR_RETURN(std::vector<PageId> pages, objects_->ExtentPageIds(cls));
    cursors.push_back(std::make_unique<HeapFile::ScanCursor>());
    for (PageId p : pages) tasks.push_back({&cls, p, cursors.back().get()});
  }
  if (ctx.profile != nullptr) ctx.profile->morsels = tasks.size();
  std::vector<std::vector<std::vector<Oid>>> partial(tasks.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, tasks.size(), [&](size_t t) {
    return objects_->ScanExtentPage(*tasks[t].class_name, tasks[t].page,
                                    tasks[t].cursor,
                                    [&](Oid oid, const MoodValue&) {
                                      partial[t].push_back({oid});
                                      return Status::OK();
                                    });
  }));
  for (auto& part : partial) {
    for (auto& row : part) rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<RowSet> Executor::ExecIndexSelect(const PlanNode& node, Ctx& ctx) const {
  RowSet rs;
  rs.vars = {node.from.var};
  if (ctx.profile != nullptr) ctx.profile->morsels = node.probes.size();
  // Probes run in parallel (each is an independent index lookup); the
  // intersection then folds them in probe order, preserving the first probe's
  // oid order exactly as the serial loop does.
  std::vector<std::vector<Oid>> selected(node.probes.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, node.probes.size(), [&](size_t p) {
    const IndexProbe& probe = node.probes[p];
    MOOD_ASSIGN_OR_RETURN(
        Collection sel,
        algebra_->IndSel(node.from.class_name, probe.index, probe.cmp, probe.constant));
    selected[p] = sel.oids();
    return Status::OK();
  }));
  std::vector<Oid> current;
  for (size_t p = 0; p < selected.size(); p++) {
    if (p == 0) {
      current = std::move(selected[p]);
    } else {
      std::unordered_set<uint64_t> keep;
      for (Oid o : selected[p]) keep.insert(o.Pack());
      std::vector<Oid> next;
      for (Oid o : current) {
        if (keep.count(o.Pack())) next.push_back(o);
      }
      current = std::move(next);
    }
  }
  for (Oid o : current) rs.rows.push_back({o});
  return rs;
}

Result<RowSet> Executor::ExecFilter(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(RowSet child, Exec(node.child, ctx));
  RowSet rs;
  rs.vars = child.vars;
  // Compile each predicate once per operator (slots bound to child.vars order);
  // the read-only programs are shared by every morsel worker. A null program
  // means that predicate stays interpreted.
  std::vector<ExprProgramPtr> programs(node.predicates.size());
  for (size_t p = 0; p < node.predicates.size(); p++) {
    programs[p] = CompileExpr(node.predicates[p], child.vars, ctx);
  }
  // Each morsel of child rows evaluates the predicate chain independently; the
  // kept rows merge back in morsel order, matching the serial scan.
  std::vector<Morsel> morsels = MakeMorsels(child.rows.size());
  if (ctx.profile != nullptr) ctx.profile->morsels = morsels.size();
  std::vector<std::vector<std::vector<Oid>>> partial(morsels.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, morsels.size(), [&](size_t m) {
    ExprProgram::Scratch scratch;
    for (size_t i = morsels[m].begin; i < morsels[m].end; i++) {
      auto& row = child.rows[i];
      // The interpreter env (a per-row string map) is built only when some
      // predicate actually needs the interpreted path.
      std::optional<Evaluator::Env> env;
      bool keep = true;
      for (size_t p = 0; p < node.predicates.size(); p++) {
        if (programs[p] != nullptr) {
          bool need_fallback = false;
          auto r = programs[p]->EvalPredicate(row.data(), row.size(), ctx.cache,
                                              &scratch, &need_fallback);
          MOOD_RETURN_IF_ERROR(r.status());
          if (!need_fallback) {
            keep = r.value();
            if (!keep) break;  // short-circuit: predicates are selectivity-ordered
            continue;
          }
          CountRuntimeFallback();
        }
        if (!env.has_value()) env = EnvOf(child, row, ctx.cache);
        MOOD_ASSIGN_OR_RETURN(keep, evaluator_->EvalPredicate(node.predicates[p], *env));
        if (!keep) break;
      }
      if (keep) partial[m].push_back(std::move(row));
    }
    return Status::OK();
  }));
  for (auto& part : partial) {
    for (auto& row : part) rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<RowSet> Executor::ExecPointerJoin(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(RowSet left, Exec(node.left, ctx));
  MOOD_ASSIGN_OR_RETURN(RowSet right, Exec(node.right, ctx));
  int ref_idx = left.VarIndex(node.ref_var);
  int tgt_idx = right.VarIndex(node.target_var);
  if (ref_idx < 0 || tgt_idx < 0) {
    return Status::Internal("pointer join variables not bound by children");
  }
  RowSet rs;
  rs.vars = left.vars;
  rs.vars.insert(rs.vars.end(), right.vars.begin(), right.vars.end());

  // Right rows indexed by target oid.
  std::unordered_map<uint64_t, std::vector<size_t>> right_by_oid;
  for (size_t i = 0; i < right.rows.size(); i++) {
    right_by_oid[right.rows[i][static_cast<size_t>(tgt_idx)].Pack()].push_back(i);
  }

  auto emit = [&](const std::vector<Oid>& lrow, size_t rrow) {
    std::vector<Oid> combined = lrow;
    combined.insert(combined.end(), right.rows[rrow].begin(), right.rows[rrow].end());
    rs.rows.push_back(std::move(combined));
  };

  if (node.method == JoinMethod::kIndexed && node.ref_path.size() == 1) {
    auto desc = objects_->catalog()->FindIndex(
        node.left ? node.left->from.class_name : "", node.ref_path[0],
        IndexKind::kBinaryJoin);
    // Fall through to chasing when the index is missing (plans stay executable
    // even if an index was dropped after optimization).
    if (desc.has_value()) {
      MOOD_ASSIGN_OR_RETURN(BinaryJoinIndex * bji, objects_->OpenJoinIndex(*desc));
      std::unordered_map<uint64_t, std::vector<size_t>> left_by_ref;
      for (size_t i = 0; i < left.rows.size(); i++) {
        left_by_ref[left.rows[i][static_cast<size_t>(ref_idx)].Pack()].push_back(i);
      }
      std::set<std::pair<size_t, size_t>> emitted;
      for (size_t r = 0; r < right.rows.size(); r++) {
        Oid target = right.rows[r][static_cast<size_t>(tgt_idx)];
        MOOD_ASSIGN_OR_RETURN(auto sources, bji->Sources(target));
        for (Oid src : sources) {
          auto it = left_by_ref.find(src.Pack());
          if (it == left_by_ref.end()) continue;
          for (size_t l : it->second) {
            if (emitted.insert({l, r}).second) emit(left.rows[l], r);
          }
        }
      }
      return rs;
    }
  }

  // Forward / backward / hash-partition: in memory they all chase the stored
  // references and probe the inner side; the strategies differ in the disk
  // access pattern the cost model prices (Section 6). The chase side (the probe)
  // fans out across workers in left-row morsels; right_by_oid is read-only here.
  std::vector<Morsel> morsels = MakeMorsels(left.rows.size());
  if (ctx.profile != nullptr) ctx.profile->morsels = morsels.size();
  std::vector<std::vector<std::vector<Oid>>> partial(morsels.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, morsels.size(), [&](size_t m) {
    for (size_t i = morsels[m].begin; i < morsels[m].end; i++) {
      const auto& lrow = left.rows[i];
      Oid from = lrow[static_cast<size_t>(ref_idx)];
      MOOD_RETURN_IF_ERROR(ChaseRefs(from, node.ref_path, ctx.cache, [&](Oid reached) {
        auto it = right_by_oid.find(reached.Pack());
        if (it != right_by_oid.end()) {
          for (size_t r : it->second) {
            std::vector<Oid> combined = lrow;
            combined.insert(combined.end(), right.rows[r].begin(),
                            right.rows[r].end());
            partial[m].push_back(std::move(combined));
          }
        }
        return Status::OK();
      }));
    }
    return Status::OK();
  }));
  for (auto& part : partial) {
    for (auto& row : part) rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<RowSet> Executor::ExecNestedLoop(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(RowSet left, Exec(node.left, ctx));
  MOOD_ASSIGN_OR_RETURN(RowSet right, Exec(node.right, ctx));
  RowSet rs;
  rs.vars = left.vars;
  rs.vars.insert(rs.vars.end(), right.vars.begin(), right.vars.end());
  // Join predicate compiled against the combined (left ++ right) slot layout.
  ExprProgramPtr join_prog = CompileExpr(node.join_pred, rs.vars, ctx);
  // The outer (left) side partitions into morsels; every worker loops the full
  // inner side, so merged morsels reproduce the serial (lrow, rrow) order.
  std::vector<Morsel> morsels = MakeMorsels(left.rows.size());
  if (ctx.profile != nullptr) ctx.profile->morsels = morsels.size();
  std::vector<std::vector<std::vector<Oid>>> partial(morsels.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, morsels.size(), [&](size_t m) {
    ExprProgram::Scratch scratch;
    for (size_t i = morsels[m].begin; i < morsels[m].end; i++) {
      const auto& lrow = left.rows[i];
      for (const auto& rrow : right.rows) {
        std::vector<Oid> combined = lrow;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        if (node.join_pred != nullptr) {
          bool match = false;
          bool interpreted = join_prog == nullptr;
          if (join_prog != nullptr) {
            bool need_fallback = false;
            auto r = join_prog->EvalPredicate(combined.data(), combined.size(),
                                              ctx.cache, &scratch, &need_fallback);
            MOOD_RETURN_IF_ERROR(r.status());
            if (need_fallback) {
              CountRuntimeFallback();
              interpreted = true;
            } else {
              match = r.value();
            }
          }
          if (interpreted) {
            Evaluator::Env env = EnvOf(rs, combined, ctx.cache);
            MOOD_ASSIGN_OR_RETURN(match,
                                  evaluator_->EvalPredicate(node.join_pred, env));
          }
          if (!match) continue;
        }
        partial[m].push_back(std::move(combined));
      }
    }
    return Status::OK();
  }));
  for (auto& part : partial) {
    for (auto& row : part) rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<RowSet> Executor::ExecUnion(const PlanNode& node, Ctx& ctx) const {
  if (node.children.empty()) return RowSet{};
  MOOD_ASSIGN_OR_RETURN(RowSet first, Exec(node.children[0], ctx));
  // Align every child on the first child's variable order and deduplicate
  // (DNF AND-terms overlap, so the UNION needs set semantics).
  std::set<std::vector<uint64_t>> seen;
  RowSet rs;
  rs.vars = first.vars;
  auto add = [&](const RowSet& child) -> Status {
    std::vector<int> mapping(rs.vars.size());
    for (size_t i = 0; i < rs.vars.size(); i++) {
      mapping[i] = child.VarIndex(rs.vars[i]);
      if (mapping[i] < 0) {
        return Status::Internal("UNION children bind different range variables");
      }
    }
    for (const auto& row : child.rows) {
      std::vector<Oid> aligned(rs.vars.size());
      std::vector<uint64_t> key(rs.vars.size());
      for (size_t i = 0; i < rs.vars.size(); i++) {
        aligned[i] = row[static_cast<size_t>(mapping[i])];
        key[i] = aligned[i].Pack();
      }
      if (seen.insert(key).second) rs.rows.push_back(std::move(aligned));
    }
    return Status::OK();
  };
  MOOD_RETURN_IF_ERROR(add(first));
  for (size_t c = 1; c < node.children.size(); c++) {
    MOOD_ASSIGN_OR_RETURN(RowSet child, Exec(node.children[c], ctx));
    MOOD_RETURN_IF_ERROR(add(child));
  }
  return rs;
}

Result<RowSet> Executor::Dispatch(const PlanNode& node, Ctx& ctx) const {
  switch (node.op) {
    case PlanOp::kBindClass: return ExecBind(node, ctx);
    case PlanOp::kIndexSelect: return ExecIndexSelect(node, ctx);
    case PlanOp::kFilter: return ExecFilter(node, ctx);
    case PlanOp::kPointerJoin: return ExecPointerJoin(node, ctx);
    case PlanOp::kNestedLoopJoin: return ExecNestedLoop(node, ctx);
    case PlanOp::kUnion: return ExecUnion(node, ctx);
  }
  return Status::Internal("unknown plan operator");
}

Result<RowSet> Executor::Exec(const PlanPtr& plan, Ctx& ctx) const {
  if (ctx.profile == nullptr) return Dispatch(*plan, ctx);

  // Profiling on: mirror the plan node into the profile tree, then dispatch
  // with the mirrored node as the attach point so children nest underneath.
  QueryProfile* node = ctx.profile->AddChild(plan->Describe());
  node->est_rows = plan->est_rows;
  node->est_cost = plan->est_cost;
  node->has_estimates = true;
  BufferPoolStats before;
  if (ctx.pool != nullptr) before = ctx.pool->stats();
  uint64_t start = ProfileNowNs();
  Ctx sub = ctx;
  sub.profile = node;
  Result<RowSet> result = Dispatch(*plan, sub);
  node->wall_ns = ProfileNowNs() - start;  // inclusive of children
  if (ctx.pool != nullptr) {
    BufferPoolStats after = ctx.pool->stats();
    node->pool.hits = after.hits - before.hits;
    node->pool.misses = after.misses - before.misses;
    node->pool.evictions = after.evictions - before.evictions;
    node->pool.prefetches = after.prefetches - before.prefetches;
  }
  if (result.ok()) {
    node->rows_out = result.value().rows.size();
    uint64_t in = 0;
    for (const auto& c : node->children) in += c->rows_out;
    node->rows_in = in;
  }
  return result;
}

Executor::Ctx Executor::MakeCtx(const ExecOptions& options) const {
  Ctx ctx;
  ctx.threads = options.threads == 0 ? threads_ : options.threads;
  ctx.profile = options.profile;
  ctx.compile = options.compile_expressions;
  if (options.profile != nullptr && objects_->storage() != nullptr) {
    ctx.pool = objects_->storage()->buffer_pool();
  }
  return ctx;
}

Result<RowSet> Executor::ExecutePlan(const PlanPtr& plan) const {
  return ExecutePlan(plan, ExecOptions{});
}

Result<RowSet> Executor::ExecutePlan(const PlanPtr& plan,
                                     const ExecOptions& options) const {
  size_t capacity = options.deref_cache_entries == ExecOptions::kInheritCache
                        ? deref_cache_capacity_
                        : options.deref_cache_entries;
  Ctx ctx = MakeCtx(options);
  // Bare-plan entry point: recover the range-variable declarations from the
  // plan's leaves so expressions still compile against static classes.
  std::map<std::string, FromEntry> range_vars;
  CollectRangeVars(*plan, &range_vars);
  ctx.range_vars = &range_vars;
  DerefCache cache(capacity);
  ctx.cache = capacity > 0 ? &cache : nullptr;
  Result<RowSet> result = Exec(plan, ctx);
  objects_->AccumulateDerefStats(cache.hits(), cache.misses());
  return result;
}

Result<QueryResult> Executor::FinishSelect(const SelectStmt& stmt, RowSet rows) const {
  DerefCache cache(deref_cache_capacity_);
  Ctx ctx;
  ctx.threads = threads_;
  ctx.cache = deref_cache_capacity_ > 0 ? &cache : nullptr;
  std::map<std::string, FromEntry> range_vars;
  for (const FromEntry& fe : stmt.from) range_vars.emplace(fe.var, fe);
  ctx.range_vars = &range_vars;
  Result<QueryResult> result = Finish(stmt, std::move(rows), ctx);
  objects_->AccumulateDerefStats(cache.hits(), cache.misses());
  return result;
}

Result<QueryResult> Executor::Finish(const SelectStmt& stmt, RowSet rows,
                                     Ctx& ctx) const {
  QueryProfile* prof = ctx.profile;
  // Compile the clause expressions once against the row layout; a null program
  // (or a runtime fallback) routes that expression through the interpreter.
  std::vector<ExprProgramPtr> group_progs(stmt.group_by.size());
  for (size_t g = 0; g < stmt.group_by.size(); g++) {
    group_progs[g] = CompileExpr(stmt.group_by[g], rows.vars, ctx);
  }
  ExprProgramPtr having_prog = CompileExpr(stmt.having, rows.vars, ctx);
  std::vector<ExprProgramPtr> order_progs(stmt.order_by.size());
  for (size_t o = 0; o < stmt.order_by.size(); o++) {
    order_progs[o] = CompileExpr(stmt.order_by[o].expr, rows.vars, ctx);
  }
  std::vector<ExprProgramPtr> proj_progs(stmt.projection.size());
  for (size_t p = 0; p < stmt.projection.size(); p++) {
    proj_progs[p] = CompileExpr(stmt.projection[p], rows.vars, ctx);
  }
  ExprProgram::Scratch scratch;
  auto eval_value = [&](const ExprPtr& e, const ExprProgramPtr& prog,
                        const RowSet& rset, const std::vector<Oid>& row,
                        std::optional<Evaluator::Env>& env) -> Result<MoodValue> {
    if (prog != nullptr) {
      bool need_fallback = false;
      auto r = prog->Eval(row.data(), row.size(), ctx.cache, &scratch, &need_fallback);
      if (!r.ok() || !need_fallback) return r;
      CountRuntimeFallback();
    }
    if (!env.has_value()) env = EnvOf(rset, row, ctx.cache);
    return evaluator_->Eval(e, env.value());
  };
  auto eval_pred = [&](const ExprPtr& e, const ExprProgramPtr& prog,
                       const RowSet& rset, const std::vector<Oid>& row,
                       std::optional<Evaluator::Env>& env) -> Result<bool> {
    if (prog != nullptr) {
      bool need_fallback = false;
      auto r = prog->EvalPredicate(row.data(), row.size(), ctx.cache, &scratch,
                                   &need_fallback);
      if (!r.ok() || !need_fallback) return r;
      CountRuntimeFallback();
    }
    if (!env.has_value()) env = EnvOf(rset, row, ctx.cache);
    return evaluator_->EvalPredicate(e, env.value());
  };

  // GROUP BY: keep one representative row per group key (MOODSQL has no
  // aggregate functions; grouping exposes one row per partition, matching the
  // algebra's Partition operator).
  if (!stmt.group_by.empty()) {
    StageSpan span = StageSpan::Begin(prof, "GROUP BY", rows.rows.size());
    std::map<std::string, std::vector<Oid>> groups;
    for (const auto& row : rows.rows) {
      std::optional<Evaluator::Env> env;
      std::string key;
      for (size_t g = 0; g < stmt.group_by.size(); g++) {
        MOOD_ASSIGN_OR_RETURN(
            MoodValue v, eval_value(stmt.group_by[g], group_progs[g], rows, row, env));
        v.EncodeTo(&key);
      }
      groups.emplace(std::move(key), row);
    }
    RowSet grouped;
    grouped.vars = rows.vars;
    for (auto& [key, row] : groups) grouped.rows.push_back(row);
    rows = std::move(grouped);
    span.End(rows.rows.size());
    if (stmt.having != nullptr) {
      StageSpan hspan = StageSpan::Begin(prof, "HAVING", rows.rows.size());
      RowSet kept;
      kept.vars = rows.vars;
      for (auto& row : rows.rows) {
        std::optional<Evaluator::Env> env;
        MOOD_ASSIGN_OR_RETURN(bool keep,
                              eval_pred(stmt.having, having_prog, rows, row, env));
        if (keep) kept.rows.push_back(std::move(row));
      }
      rows = std::move(kept);
      hspan.End(rows.rows.size());
    }
  }

  // ORDER BY before projection (keys may not be projected).
  if (!stmt.order_by.empty()) {
    StageSpan span = StageSpan::Begin(prof, "ORDER BY", rows.rows.size());
    struct Keyed {
      std::vector<MoodValue> keys;
      std::vector<Oid> row;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(rows.rows.size());
    for (auto& row : rows.rows) {
      std::optional<Evaluator::Env> env;
      Keyed k;
      for (size_t o = 0; o < stmt.order_by.size(); o++) {
        MOOD_ASSIGN_OR_RETURN(
            MoodValue v,
            eval_value(stmt.order_by[o].expr, order_progs[o], rows, row, env));
        k.keys.push_back(std::move(v));
      }
      k.row = std::move(row);
      keyed.push_back(std::move(k));
    }
    Status cmp_error;
    std::stable_sort(keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
      for (size_t i = 0; i < stmt.order_by.size(); i++) {
        auto c = a.keys[i].Compare(b.keys[i]);
        if (!c.ok()) {
          if (cmp_error.ok()) cmp_error = c.status();
          return false;
        }
        if (c.value() != 0) {
          return stmt.order_by[i].ascending ? c.value() < 0 : c.value() > 0;
        }
      }
      return false;
    });
    MOOD_RETURN_IF_ERROR(cmp_error);
    rows.rows.clear();
    for (auto& k : keyed) rows.rows.push_back(std::move(k.row));
    span.End(rows.rows.size());
  }

  // Projection.
  StageSpan pspan = StageSpan::Begin(prof, "PROJECT", rows.rows.size());
  QueryResult result;
  for (const auto& p : stmt.projection) result.columns.push_back(p->ToString());
  for (const auto& row : rows.rows) {
    std::optional<Evaluator::Env> env;
    std::vector<MoodValue> out;
    out.reserve(stmt.projection.size());
    for (size_t p = 0; p < stmt.projection.size(); p++) {
      MOOD_ASSIGN_OR_RETURN(
          MoodValue v, eval_value(stmt.projection[p], proj_progs[p], rows, row, env));
      out.push_back(std::move(v));
    }
    result.rows.push_back(std::move(out));
  }
  pspan.End(result.rows.size());

  if (stmt.distinct) {
    StageSpan span = StageSpan::Begin(prof, "DISTINCT", result.rows.size());
    std::vector<std::vector<MoodValue>> dedup;
    for (auto& row : result.rows) {
      bool seen = false;
      for (const auto& d : dedup) {
        bool all = d.size() == row.size();
        for (size_t i = 0; all && i < d.size(); i++) all = d[i].Equals(row[i]);
        if (all) {
          seen = true;
          break;
        }
      }
      if (!seen) dedup.push_back(std::move(row));
    }
    result.rows = std::move(dedup);
    span.End(result.rows.size());
  }
  return result;
}

Result<QueryResult> Executor::ExecuteSelect(
    const QueryOptimizer::Optimized& optimized) const {
  return ExecuteSelect(optimized, ExecOptions{});
}

Result<QueryResult> Executor::ExecuteSelect(const QueryOptimizer::Optimized& optimized,
                                            const ExecOptions& options) const {
  size_t capacity = options.deref_cache_entries == ExecOptions::kInheritCache
                        ? deref_cache_capacity_
                        : options.deref_cache_entries;
  Ctx ctx = MakeCtx(options);
  // Compile against the plan's own leaves, not just the query's FROM list:
  // path-expansion plans introduce synthetic range variables (_t1, _t2, ...)
  // whose filters are exactly the hot predicates worth compiling.
  std::map<std::string, FromEntry> range_vars = optimized.bound.range_vars;
  if (optimized.plan != nullptr) CollectRangeVars(*optimized.plan, &range_vars);
  ctx.range_vars = &range_vars;
  // One Deref cache per query: objects dereferenced while executing the plan
  // stay warm for the projection/ORDER BY passes in Finish. Its hit/miss tally
  // folds into the engine-wide objects.deref_cache.* metrics when it dies.
  DerefCache cache(capacity);
  ctx.cache = capacity > 0 ? &cache : nullptr;
  Result<RowSet> rows = Exec(optimized.plan, ctx);
  if (!rows.ok()) {
    objects_->AccumulateDerefStats(cache.hits(), cache.misses());
    return rows.status();
  }
  Result<QueryResult> result = Finish(optimized.bound.stmt, std::move(rows).value(), ctx);
  objects_->AccumulateDerefStats(cache.hits(), cache.misses());
  return result;
}

void Executor::AnnotateCompilation(
    PlanNode* plan, const std::map<std::string, FromEntry>& bound_vars) const {
  if (plan == nullptr) return;
  // Execution compiles against the plan's leaves too (synthetic _tN vars from
  // path expansion); annotate with the same environment.
  std::map<std::string, FromEntry> range_vars = bound_vars;
  CollectRangeVars(*plan, &range_vars);
  // Dry-run compiles only: no programs are kept and no exec.expr.* counters
  // move (EXPLAIN must not skew execution metrics).
  auto annotate = [&](const std::vector<ExprPtr>& exprs,
                      const std::vector<std::string>& vars) -> std::string {
    if (exprs.empty()) return "";
    ExprCompileEnv cenv = CompileEnvOf(vars, &range_vars);
    ExprCompiler compiler(objects_);
    size_t ok = 0;
    for (const auto& e : exprs) {
      if (compiler.Compile(e, cenv) != nullptr) ok++;
    }
    if (ok == exprs.size()) return "exprs: compiled";
    if (ok == 0) return "exprs: interpreted";
    return "exprs: mixed";
  };
  switch (plan->op) {
    case PlanOp::kFilter:
      plan->note = annotate(plan->predicates, plan->child->BoundVars());
      AnnotateCompilation(plan->child.get(), range_vars);
      break;
    case PlanOp::kNestedLoopJoin:
      if (plan->join_pred != nullptr) {
        plan->note = annotate({plan->join_pred}, plan->BoundVars());
      }
      AnnotateCompilation(plan->left.get(), range_vars);
      AnnotateCompilation(plan->right.get(), range_vars);
      break;
    case PlanOp::kPointerJoin:
      AnnotateCompilation(plan->left.get(), range_vars);
      AnnotateCompilation(plan->right.get(), range_vars);
      break;
    case PlanOp::kUnion:
      for (auto& c : plan->children) AnnotateCompilation(c.get(), range_vars);
      break;
    case PlanOp::kBindClass:
    case PlanOp::kIndexSelect:
      break;
  }
}

}  // namespace mood
