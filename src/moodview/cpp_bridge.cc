#include "moodview/cpp_bridge.h"

#include <cctype>

namespace mood {

namespace {

/// Minimal C++-declaration tokenizer: identifiers, numbers, punctuation.
struct CppTok {
  std::string text;
  size_t pos;
};

std::vector<CppTok> CppTokenize(const std::string& src) {
  std::vector<CppTok> out;
  size_t i = 0;
  while (i < src.size()) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') i++;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) i++;
      i += 2;
      continue;
    }
    size_t start = i;
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        i++;
      }
      out.push_back({src.substr(start, i - start), start});
      continue;
    }
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      out.push_back({"::", start});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), start});
    i++;
  }
  return out;
}

bool IsBalancedBodyStart(const std::vector<CppTok>& toks, size_t i) {
  return i < toks.size() && toks[i].text == "{";
}

/// Skips a balanced {...} block, returning the index after the closing brace and
/// the raw body text.
size_t SkipBody(const std::string& src, const std::vector<CppTok>& toks, size_t i,
                std::string* body) {
  size_t depth = 0;
  size_t start_pos = toks[i].pos;
  for (; i < toks.size(); i++) {
    if (toks[i].text == "{") depth++;
    if (toks[i].text == "}") {
      depth--;
      if (depth == 0) {
        if (body != nullptr) {
          *body = src.substr(start_pos, toks[i].pos - start_pos + 1);
        }
        return i + 1;
      }
    }
  }
  return i;
}

}  // namespace

Result<TypeDescPtr> CppBridge::CppTypeToMood(const std::string& spelling) {
  if (spelling == "int") return TypeDesc::Basic(BasicType::kInteger);
  if (spelling == "long") return TypeDesc::Basic(BasicType::kLongInteger);
  if (spelling == "float" || spelling == "double") {
    return TypeDesc::Basic(BasicType::kFloat);
  }
  if (spelling == "char") return TypeDesc::Basic(BasicType::kChar);
  if (spelling == "bool") return TypeDesc::Basic(BasicType::kBoolean);
  if (spelling == "String" || spelling == "string") {
    return TypeDesc::Basic(BasicType::kString);
  }
  return Status::NotSupported("unsupported C++ type '" + spelling + "'");
}

std::string CppBridge::MoodTypeToCpp(const TypeDesc& type, const std::string& member) {
  switch (type.kind()) {
    case ConstructorKind::kBasic:
      switch (type.basic()) {
        case BasicType::kInteger: return "int " + member;
        case BasicType::kLongInteger: return "long " + member;
        case BasicType::kFloat: return "double " + member;
        case BasicType::kChar: return "char " + member;
        case BasicType::kBoolean: return "bool " + member;
        case BasicType::kString:
          if (type.string_capacity() > 0) {
            return "char " + member + "[" + std::to_string(type.string_capacity()) + "]";
          }
          return "String " + member;
      }
      return "int " + member;
    case ConstructorKind::kReference:
      return type.referenced_class() + "* " + member;
    case ConstructorKind::kSet:
      return "Set<" + MoodTypeToCpp(*type.element(), "") + "> " + member;
    case ConstructorKind::kList:
      return "List<" + MoodTypeToCpp(*type.element(), "") + "> " + member;
    case ConstructorKind::kTuple:
      return "struct { /* tuple */ } " + member;
  }
  return member;
}

Result<std::vector<Catalog::ClassDef>> CppBridge::ParseHeader(const std::string& src) {
  auto toks = CppTokenize(src);
  std::vector<Catalog::ClassDef> defs;
  auto find_def = [&](const std::string& name) -> Catalog::ClassDef* {
    for (auto& d : defs) {
      if (d.name == name) return &d;
    }
    return nullptr;
  };

  size_t i = 0;
  auto expect = [&](const std::string& t) -> Status {
    if (i < toks.size() && toks[i].text == t) {
      i++;
      return Status::OK();
    }
    return Status::ParseError("expected '" + t + "' in C++ declaration near offset " +
                              std::to_string(i < toks.size() ? toks[i].pos : src.size()));
  };

  while (i < toks.size()) {
    if (toks[i].text == "class" || toks[i].text == "struct") {
      i++;
      if (i >= toks.size()) return Status::ParseError("class name missing");
      Catalog::ClassDef def;
      def.is_class = true;
      def.name = toks[i++].text;
      if (i < toks.size() && toks[i].text == ";") {
        i++;  // forward declaration
        continue;
      }
      if (i < toks.size() && toks[i].text == ":") {
        i++;
        while (i < toks.size() && toks[i].text != "{") {
          if (toks[i].text == "public" || toks[i].text == "private" ||
              toks[i].text == "protected" || toks[i].text == ",") {
            i++;
            continue;
          }
          def.supers.push_back(toks[i++].text);
        }
      }
      MOOD_RETURN_IF_ERROR(expect("{"));
      while (i < toks.size() && toks[i].text != "}") {
        // Access specifiers.
        if ((toks[i].text == "public" || toks[i].text == "private" ||
             toks[i].text == "protected") &&
            i + 1 < toks.size() && toks[i + 1].text == ":") {
          i += 2;
          continue;
        }
        // Member: TYPE [*] NAME [\[N\]] (';' | '(' params ')' ';').
        std::string base = toks[i++].text;
        TypeDescPtr type;
        if ((base == "Set" || base == "List") && i < toks.size() &&
            toks[i].text == "<") {
          i++;
          std::string elem = toks[i++].text;
          bool ptr = false;
          if (i < toks.size() && toks[i].text == "*") {
            ptr = true;
            i++;
          }
          MOOD_RETURN_IF_ERROR(expect(">"));
          TypeDescPtr elem_type;
          if (ptr) {
            elem_type = TypeDesc::Reference(elem);
          } else {
            MOOD_ASSIGN_OR_RETURN(elem_type, CppTypeToMood(elem));
          }
          type = base == "Set" ? TypeDesc::Set(elem_type) : TypeDesc::List(elem_type);
        } else if (i < toks.size() && toks[i].text == "*") {
          i++;
          type = TypeDesc::Reference(base);
        } else {
          auto basic = CppTypeToMood(base);
          if (basic.ok()) {
            type = basic.value();
          } else {
            // Embedded object by value: treat as reference (MOOD identity model).
            type = TypeDesc::Reference(base);
          }
        }
        if (i >= toks.size()) return Status::ParseError("truncated member");
        std::string member = toks[i++].text;
        // char name[32] -> String(32).
        if (i < toks.size() && toks[i].text == "[") {
          i++;
          uint32_t cap = 0;
          if (i < toks.size()) cap = static_cast<uint32_t>(std::atoi(toks[i].text.c_str()));
          i++;
          MOOD_RETURN_IF_ERROR(expect("]"));
          if (type->kind() == ConstructorKind::kBasic &&
              type->basic() == BasicType::kChar) {
            type = TypeDesc::SizedString(cap);
          }
        }
        if (i < toks.size() && toks[i].text == "(") {
          // Method declaration.
          i++;
          MoodsFunction fn;
          fn.name = member;
          fn.return_type = type;
          while (i < toks.size() && toks[i].text != ")") {
            if (toks[i].text == ",") {
              i++;
              continue;
            }
            std::string ptype = toks[i++].text;
            bool ptr = i < toks.size() && toks[i].text == "*";
            if (ptr) i++;
            std::string pname =
                (i < toks.size() && toks[i].text != ")" && toks[i].text != ",")
                    ? toks[i++].text
                    : "arg" + std::to_string(fn.params.size());
            MoodsAttribute p;
            p.name = pname;
            if (ptr) {
              p.type = TypeDesc::Reference(ptype);
            } else {
              MOOD_ASSIGN_OR_RETURN(p.type, CppTypeToMood(ptype));
            }
            fn.params.push_back(std::move(p));
          }
          MOOD_RETURN_IF_ERROR(expect(")"));
          if (IsBalancedBodyStart(toks, i)) {
            i = SkipBody(src, toks, i, &fn.body_source);  // inline body
          } else {
            MOOD_RETURN_IF_ERROR(expect(";"));
          }
          def.methods.push_back(std::move(fn));
        } else {
          MOOD_RETURN_IF_ERROR(expect(";"));
          def.attributes.push_back(MoodsAttribute{member, type});
        }
      }
      MOOD_RETURN_IF_ERROR(expect("}"));
      if (i < toks.size() && toks[i].text == ";") i++;
      defs.push_back(std::move(def));
      continue;
    }
    // Out-of-line member definition: RET Class::name(...) { body }.
    if (i + 2 < toks.size() && toks[i + 2].text == "::") {
      std::string cls = toks[i + 1].text;
      size_t j = i + 3;
      if (j < toks.size()) {
        std::string fname = toks[j].text;
        // Find the body.
        while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") j++;
        if (j < toks.size() && toks[j].text == "{") {
          std::string body;
          j = SkipBody(src, toks, j, &body);
          if (Catalog::ClassDef* def = find_def(cls)) {
            for (auto& fn : def->methods) {
              if (fn.name == fname) fn.body_source = body;
            }
          }
          i = j;
          continue;
        }
      }
    }
    i++;  // skip anything unrecognized at file scope
  }
  return defs;
}

Result<std::string> CppBridge::GenerateHeader(const Catalog& catalog,
                                              const std::string& class_name) {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* t, catalog.Lookup(class_name));
  std::string out = "class " + t->name;
  if (!t->supers.empty()) {
    out += " : ";
    for (size_t i = 0; i < t->supers.size(); i++) {
      if (i > 0) out += ", ";
      out += "public " + t->supers[i];
    }
  }
  out += " {\n public:\n";
  for (const auto& a : t->own_attributes) {
    out += "  " + MoodTypeToCpp(*a.type, a.name) + ";\n";
  }
  for (const auto& f : t->functions) {
    out += "  " + MoodTypeToCpp(*f.return_type, f.name) + "(";
    for (size_t p = 0; p < f.params.size(); p++) {
      if (p > 0) out += ", ";
      out += MoodTypeToCpp(*f.params[p].type, f.params[p].name);
    }
    out += ");\n";
  }
  out += "};\n";
  return out;
}

}  // namespace mood
