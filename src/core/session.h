#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"

namespace mood {

/// One client's conversational state against a Database (DESIGN.md §14): the
/// session-default QueryOptions, at most one active transaction — a
/// read-write TxnHandle or a pinned read-only snapshot — and the statement
/// entry points the wire server and embedded callers share.
///
/// Database::CreateSession() mints sessions; Database's own
/// Execute/Query/Prepare/Begin delegate to an implicit session, so
/// single-connection embedded code keeps its historical behavior unchanged.
///
/// Threading contract: one session serves one client conversation, so
/// statements on the SAME session must not run concurrently. Statements on
/// DIFFERENT sessions may: SELECTs run at per-statement (or session-pinned)
/// snapshots under the commit gate's shared side, writers serialize through
/// 2PL extent/object locks and the gate's exclusive sections.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes one MOODSQL statement with this session's defaults,
  /// transaction and snapshot scope.
  Result<ExecResult> Execute(const std::string& sql, const QueryOptions& options = {});
  /// Convenience: SELECT statements only.
  Result<QueryResult> Query(const std::string& sql, const QueryOptions& options = {});
  /// Executes a ';'-separated script; returns the last statement's result.
  Result<ExecResult> ExecuteScript(const std::string& sql);

  /// Parses/normalizes a SELECT once (shared plan/result caches; see
  /// Database::Prepare). The handle itself is session-agnostic — run it with
  /// this session's context through ExecutePrepared.
  Result<PreparedStatement> Prepare(const std::string& sql);
  /// Executes a prepared handle under this session's defaults, transaction
  /// and snapshot scope.
  Result<ExecResult> ExecutePrepared(const PreparedStatement& stmt,
                                     const std::vector<MoodValue>& params = {},
                                     const QueryOptions& options = {});

  /// Begins a read-write transaction on this session (2PL + WAL). One
  /// transaction (of either kind) per session at a time.
  Result<TxnHandle> Begin();
  bool in_transaction() const { return txn_ != nullptr; }

  /// Pins the current commit point: until EndSnapshot, every SELECT on this
  /// session reads the same consistent snapshot, takes no 2PL locks, and
  /// never waits on writer *transactions* (only on the short exclusive
  /// sections of in-flight object mutations). DML/DDL are rejected while
  /// pinned — the snapshot transaction is read-only by construction.
  Status BeginSnapshot();
  Status EndSnapshot();
  bool in_snapshot() const { return snapshot_pinned_; }
  /// CSN this session's SELECTs read at: the pinned snapshot while one is
  /// active, otherwise 0 (each statement pins a fresh snapshot of its own).
  uint64_t snapshot_csn() const { return snapshot_pinned_ ? snap_csn_ : 0; }

  /// Session-default QueryOptions: each per-call field that is unset inherits
  /// these, then the Open-time DatabaseOptions behavior.
  void SetDefaultQueryOptions(const QueryOptions& options) { defaults_ = options; }
  const QueryOptions& default_query_options() const { return defaults_; }

  Database* database() const { return db_; }

 private:
  friend class Database;
  friend class TxnHandle;

  Session(Database* db, std::shared_ptr<const bool> db_alive)
      : db_(db), db_alive_(std::move(db_alive)) {}

  /// Finishes this session's transaction (TxnHandle's backend). Rejects
  /// handles whose transaction is no longer the session's active one.
  Status FinishTxn(Transaction* txn, bool commit);
  bool DbAlive() const { return db_alive_ != nullptr && *db_alive_; }

  Database* db_;
  /// True while db_ is safe to dereference (see Database::alive_).
  std::shared_ptr<const bool> db_alive_;
  /// Liveness flag shared with TxnHandles minted by this session; flipped to
  /// false by the destructor so a handle outliving the session stays inert.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  QueryOptions defaults_;
  /// Active read-write transaction (owned by the TransactionManager).
  Transaction* txn_ = nullptr;
  /// Read-only snapshot transaction state (see BeginSnapshot).
  bool snapshot_pinned_ = false;
  uint64_t snap_csn_ = 0;
  /// Write-epoch view captured at BeginSnapshot under the shared gate: the
  /// epochs a result-cache entry must match to be served at the pinned
  /// snapshot (entries tagged with newer epochs reflect later commits).
  std::array<uint64_t, ObjectManager::kEpochSlots> pinned_epochs_{};
  /// Slots that carried PENDING version chains at pin time. For such a slot
  /// the pinned view's epoch was already bumped by an uncommitted mutation
  /// while this session reads the pre-image, so the epoch does not identify
  /// the content this session sees — the result cache must be bypassed for
  /// queries touching a dirty slot (both probe and fill).
  std::array<bool, ObjectManager::kEpochSlots> pinned_dirty_{};
};

}  // namespace mood
