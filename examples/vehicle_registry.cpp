// The paper's own domain: the vehicle registry of Section 3.1, exercising
// inheritance (EVERY / minus), path expressions, indexes, compiled methods and
// the MoodView text front end.

#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "core/paper_example.h"

using namespace mood;

namespace {
void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto dir = std::filesystem::temp_directory_path() / "mood_vehicles";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Database db;
  Die(db.Open((dir / "vehicles").string()), "open");
  Die(paperdb::CreatePaperSchema(&db), "schema");
  auto report = paperdb::PopulatePaperData(&db, 150).value();
  std::printf("populated: %llu vehicles (%llu automobiles, %llu japanese), "
              "%llu engines, %llu companies\n",
              (unsigned long long)report.vehicles,
              (unsigned long long)report.automobiles,
              (unsigned long long)report.japanese_autos,
              (unsigned long long)report.engines,
              (unsigned long long)report.companies);
  Die(db.CollectAllStatistics(), "stats");

  // A compiled method: register a native body for lbweight (overrides the
  // interpreted `return weight * 2.2075;` source).
  {
    MoodsFunction decl;
    decl.name = "lbweight";
    decl.return_type = TypeDesc::Basic(BasicType::kInteger);
    Die(db.RegisterMethod("Vehicle", decl,
                          [](const MethodContext& ctx, const std::vector<MoodValue>&)
                              -> Result<MoodValue> {
                            MOOD_ASSIGN_OR_RETURN(MoodValue w, ctx.Attr("weight"));
                            return MoodValue::Integer(
                                static_cast<int32_t>(w.AsInteger() * 2.2075));
                          }),
        "register lbweight");
  }

  // Indexes accelerate the selections the optimizer picks per Section 8.1.
  Die(db.Execute("CREATE INDEX eng_cyl ON VehicleEngine(cylinders) USING BTREE")
          .status(),
      "index");
  Die(db.Execute("CREATE INDEX v_company ON Vehicle(company) USING JOININDEX")
          .status(),
      "join index");
  Die(db.CollectAllStatistics(), "restats");

  // The paper's Section 3.1 query: non-Japanese automobiles with automatic
  // transmission and more than 4 cylinders.
  std::printf("\n-- %s\n", paperdb::kSection31Query);
  auto q1 = db.Query(paperdb::kSection31Query);
  Die(q1.status(), "section 3.1 query");
  std::printf("%zu automobiles match\n", q1.value().rows.size());

  // Example 8.1 with EXPLAIN first.
  std::printf("\n-- EXPLAIN %s\n", paperdb::kExample81Query);
  mood::ExplainOptions explain_opts;
  explain_opts.verbose = true;
  std::printf("%s",
              db.Explain(paperdb::kExample81Query, explain_opts).value().Render().c_str());
  auto q2 = db.Query(paperdb::kExample81Query);
  Die(q2.status(), "example 8.1 query");
  std::printf("BMW 2-cylinder vehicles: %zu\n", q2.value().rows.size());

  // Methods in projections.
  auto q3 = db.Query(
      "SELECT v.weight, v.lbweight() FROM EVERY Vehicle v WHERE v.weight > 2500");
  Die(q3.status(), "method query");
  std::printf("\n-- heavy vehicles (kg vs lb, compiled method)\n%s",
              q3.value().ToString(5).c_str());

  // MoodView, text mode: the class hierarchy and an object graph.
  std::printf("\n%s", db.schema_browser()->RenderHierarchy().value().c_str());
  Oid sample;
  db.objects()->ScanExtent("JapaneseAuto", false, {},
                           [&](Oid oid, const MoodValue&) {
                             sample = oid;
                             return Status::OK();
                           });
  if (sample.valid()) {
    std::printf("\n-- generic object presentation (2 levels)\n%s",
                db.object_browser()->Render(sample, 2).value().c_str());
  }

  // Query-manager session with history.
  auto session = db.MakeQuerySession();
  session->Run("SELECT c FROM Company c WHERE c.name = 'BMW'");
  session->Run("SELECT e FROM VehicleEngine e WHERE e.cylinders > 12");
  std::printf("\n%s", session->RenderHistory().c_str());

  Die(db.Close(), "close");
  std::filesystem::remove_all(dir);
  std::printf("vehicle registry example finished.\n");
  return 0;
}
