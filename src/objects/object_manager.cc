#include "objects/object_manager.h"

#include <algorithm>
#include <set>

#include "common/coding.h"
#include "index/key_codec.h"
#include "obs/metrics.h"
#include "txn/version_store.h"

namespace mood {

namespace {

/// Resolves the VersionStore batch a write's pre-image capture belongs to and
/// self-commits single-write batches. An explicit batch (a transaction's or an
/// autocommit statement's) is used as-is and left open for its owner; with no
/// batch in scope the write gets a private one, committed on success and
/// dropped if the write never reached the heap.
class BatchScope {
 public:
  BatchScope(VersionStore* versions, PageWriteLogger* wal, uint64_t explicit_batch)
      : versions_(versions) {
    if (versions_ == nullptr) return;
    if (explicit_batch != 0) {
      batch_ = explicit_batch;
    } else if (wal != nullptr && wal->version_batch() != 0) {
      batch_ = wal->version_batch();
    } else {
      batch_ = versions_->BeginBatch();
      own_ = true;
    }
  }
  ~BatchScope() {
    if (versions_ == nullptr || !own_) return;
    // Once the heap write happened the capture must commit even if index
    // maintenance failed afterwards — the record change is visible, matching
    // the non-versioned autocommit contract for partial failures.
    if (wrote_) {
      versions_->CommitBatch(batch_);
    } else {
      versions_->AbortBatch(batch_);
    }
  }
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

  uint64_t batch() const { return batch_; }
  void NoteHeapWrite() { wrote_ = true; }

 private:
  VersionStore* versions_;
  uint64_t batch_ = 0;
  bool own_ = false;
  bool wrote_ = false;
};

}  // namespace

void EncodeObjectRecord(TypeId type_id, const MoodValue& tuple, std::string* dst) {
  PutFixed32(dst, type_id);
  tuple.EncodeTo(dst);
}

Result<std::pair<TypeId, MoodValue>> DecodeObjectRecord(Slice record) {
  if (record.size() < 4) return Status::Corruption("short object record");
  TypeId id = DecodeFixed32(record.data());
  record.remove_prefix(4);
  MOOD_ASSIGN_OR_RETURN(MoodValue v, MoodValue::DecodeAll(record));
  return std::make_pair(id, std::move(v));
}

bool DerefCache::Lookup(Oid oid, uint64_t epoch, Snapshot* out) {
  if (capacity_ == 0) return false;
  uint64_t key = oid.Pack();
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second.epoch != epoch) {
    stripe.map.erase(it);  // stale: a write landed since this was cached
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *out = it->second.snap;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void DerefCache::Insert(Oid oid, uint64_t epoch, const Snapshot& snap) {
  if (capacity_ == 0) return;
  uint64_t key = oid.Pack();
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  size_t per_stripe = capacity_ / kStripes;
  if (per_stripe == 0) per_stripe = 1;
  if (stripe.map.size() >= per_stripe && stripe.map.find(key) == stripe.map.end()) {
    // Arbitrary-entry eviction: per-query lifetime makes recency tracking not
    // worth its bookkeeping.
    stripe.map.erase(stripe.map.begin());
  }
  stripe.map[key] = Entry{epoch, snap};
}

Result<HeapFile*> ObjectManager::ExtentOf(const std::string& class_name) const {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  if (!type->is_class) {
    return Status::InvalidArgument("'" + class_name + "' is a value type (no extent)");
  }
  return storage_->GetFile(type->extent_file);
}

Result<MoodValue> ObjectManager::PadToSchema(const std::string& class_name,
                                             MoodValue tuple) const {
  MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(class_name));
  if (tuple.kind() != ValueKind::kTuple) {
    return Status::TypeError("object value must be a Tuple");
  }
  if (tuple.size() > attrs.size()) {
    return Status::TypeError("tuple has more fields than class '" + class_name +
                             "' has attributes");
  }
  if (tuple.size() < attrs.size()) {
    auto& elems = tuple.mutable_elements();
    for (size_t i = elems.size(); i < attrs.size(); i++) {
      elems.push_back(attrs[i].type->DefaultValue());
    }
  }
  for (size_t i = 0; i < attrs.size(); i++) {
    Status st = attrs[i].type->CheckValue(tuple.elements()[i]);
    if (!st.ok()) {
      return Status::TypeError("attribute '" + attrs[i].name + "': " + st.message());
    }
  }
  return tuple;
}

Result<Oid> ObjectManager::CreateObject(const std::string& class_name, MoodValue tuple,
                                        PageWriteLogger* wal, uint64_t version_batch) {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  MOOD_ASSIGN_OR_RETURN(tuple, PadToSchema(class_name, std::move(tuple)));
  MOOD_ASSIGN_OR_RETURN(HeapFile* extent, ExtentOf(class_name));
  std::string rec;
  EncodeObjectRecord(type->id, tuple, &rec);
  BatchScope batch(versions_, wal, version_batch);
  // The exclusive gate section makes heap write + pre-image capture + index
  // maintenance + epoch bump one atomic unit against snapshot readers.
  CommitGate::ExclusiveGuard gate(versions_ ? &versions_->gate() : nullptr);
  MOOD_ASSIGN_OR_RETURN(RecordId rid, extent->Insert(rec, wal));
  batch.NoteHeapWrite();
  Oid oid;
  oid.file = static_cast<uint16_t>(type->extent_file);
  oid.page = rid.page;
  oid.slot = rid.slot;
  if (versions_ != nullptr) {
    versions_->CapturePending(batch.batch(), oid, /*absent_before=*/true, 0, nullptr,
                              /*live_after=*/true);
  }
  MOOD_RETURN_IF_ERROR(MaintainIndexes(class_name, oid, nullptr, &tuple));
  BumpWriteEpoch(oid.file);
  if (write_observer_) write_observer_(oid.file, oid);
  objects_created_.fetch_add(1, std::memory_order_relaxed);
  return oid;
}

Result<DerefCache::Snapshot> ObjectManager::FetchSnapshot(Oid oid,
                                                          DerefCache* cache) const {
  if (!oid.valid()) return Status::InvalidArgument("null object identifier");
  // Epoch before the read: a write racing the read can at worst tag a fresh
  // value with a pre-write epoch, which later lookups treat as stale.
  uint64_t epoch = WriteEpochOf(oid.file);
  DerefCache::Snapshot snap;
  if (cache != nullptr && cache->Lookup(oid, epoch, &snap)) return snap;
  // Version store first: it decides visibility for deleted objects (the heap
  // read below would report NotFound) and supplies pre-images of objects
  // written after the reader's snapshot.
  if (cache != nullptr && cache->snapshot().active()) {
    const SnapshotView& view = cache->snapshot();
    if (view.versions->FileHasVersions(oid.file)) {
      VersionStore::Version v;
      if (view.versions->VisibleVersion(oid, view.csn, &v)) {
        if (v.absent) {
          return Status::NotFound("object " + oid.ToString() +
                                  " not visible at reader snapshot");
        }
        snap.type_id = v.type_id;
        snap.tuple = std::move(v.tuple);
        cache->Insert(oid, epoch, snap);
        return snap;
      }
    }
  }
  MOOD_ASSIGN_OR_RETURN(HeapFile* file, storage_->GetFile(oid.file));
  MOOD_ASSIGN_OR_RETURN(std::string rec, file->Get(RecordId{oid.page, oid.slot}));
  MOOD_ASSIGN_OR_RETURN(auto decoded, DecodeObjectRecord(rec));
  snap.type_id = decoded.first;
  snap.tuple = std::make_shared<const MoodValue>(std::move(decoded.second));
  if (cache != nullptr) cache->Insert(oid, epoch, snap);
  return snap;
}

Result<MoodValue> ObjectManager::Fetch(Oid oid, DerefCache* cache) const {
  if (cache == nullptr) {
    // Uncached fast path: skip the shared_ptr allocation.
    if (!oid.valid()) return Status::InvalidArgument("null object identifier");
    MOOD_ASSIGN_OR_RETURN(HeapFile* file, storage_->GetFile(oid.file));
    MOOD_ASSIGN_OR_RETURN(std::string rec, file->Get(RecordId{oid.page, oid.slot}));
    MOOD_ASSIGN_OR_RETURN(auto decoded, DecodeObjectRecord(rec));
    return std::move(decoded.second);
  }
  MOOD_ASSIGN_OR_RETURN(DerefCache::Snapshot snap, FetchSnapshot(oid, cache));
  return *snap.tuple;
}

Result<std::string> ObjectManager::ClassOf(Oid oid) const {
  MOOD_ASSIGN_OR_RETURN(HeapFile* file, storage_->GetFile(oid.file));
  MOOD_ASSIGN_OR_RETURN(std::string rec, file->Get(RecordId{oid.page, oid.slot}));
  if (rec.size() < 4) return Status::Corruption("short object record");
  TypeId id = DecodeFixed32(rec.data());
  std::string name = catalog_->typeName(id);
  if (name.empty()) return Status::CatalogError("object has unknown type id");
  return name;
}

Result<std::string> ObjectManager::ClassOf(Oid oid, DerefCache* cache) const {
  if (cache == nullptr) return ClassOf(oid);
  if (!oid.valid()) return Status::InvalidArgument("null object identifier");
  MOOD_ASSIGN_OR_RETURN(DerefCache::Snapshot snap, FetchSnapshot(oid, cache));
  std::string name = catalog_->typeName(snap.type_id);
  if (name.empty()) return Status::CatalogError("object has unknown type id");
  return name;
}

Status ObjectManager::UpdateObject(Oid oid, MoodValue tuple, PageWriteLogger* wal,
                                   uint64_t version_batch) {
  MOOD_ASSIGN_OR_RETURN(std::string class_name, ClassOf(oid));
  MOOD_ASSIGN_OR_RETURN(MoodValue old_tuple, Fetch(oid));
  MOOD_ASSIGN_OR_RETURN(tuple, PadToSchema(class_name, std::move(tuple)));
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  MOOD_ASSIGN_OR_RETURN(HeapFile* extent, ExtentOf(class_name));
  std::string rec;
  EncodeObjectRecord(type->id, tuple, &rec);
  BatchScope batch(versions_, wal, version_batch);
  CommitGate::ExclusiveGuard gate(versions_ ? &versions_->gate() : nullptr);
  MOOD_RETURN_IF_ERROR(extent->Update(RecordId{oid.page, oid.slot}, rec, wal));
  batch.NoteHeapWrite();
  if (versions_ != nullptr) {
    // Capture only after the page write succeeded, inside the exclusive gate
    // section — readers cannot observe the gap between write and capture.
    versions_->CapturePending(batch.batch(), oid, /*absent_before=*/false, type->id,
                              std::make_shared<const MoodValue>(old_tuple),
                              /*live_after=*/true);
  }
  Status st = MaintainIndexes(class_name, oid, &old_tuple, &tuple);
  // After the write so a concurrent reader cannot cache the old value under
  // the new epoch.
  BumpWriteEpoch(oid.file);
  if (write_observer_) write_observer_(oid.file, oid);
  return st;
}

Result<int> ObjectManager::AttrIndex(const std::string& class_name,
                                     const std::string& attr) const {
  MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(class_name));
  for (size_t i = 0; i < attrs.size(); i++) {
    if (attrs[i].name == attr) return static_cast<int>(i);
  }
  return Status::NotFound("class '" + class_name + "' has no attribute '" + attr + "'");
}

Status ObjectManager::SetAttribute(Oid oid, const std::string& attr, MoodValue value,
                                   PageWriteLogger* wal, uint64_t version_batch) {
  MOOD_ASSIGN_OR_RETURN(std::string class_name, ClassOf(oid));
  MOOD_ASSIGN_OR_RETURN(int idx, AttrIndex(class_name, attr));
  MOOD_ASSIGN_OR_RETURN(MoodValue tuple, Fetch(oid));
  MOOD_ASSIGN_OR_RETURN(tuple, PadToSchema(class_name, std::move(tuple)));
  tuple.mutable_elements()[static_cast<size_t>(idx)] = std::move(value);
  return UpdateObject(oid, std::move(tuple), wal, version_batch);
}

Status ObjectManager::DeleteObject(Oid oid, PageWriteLogger* wal,
                                   uint64_t version_batch) {
  MOOD_ASSIGN_OR_RETURN(std::string class_name, ClassOf(oid));
  MOOD_ASSIGN_OR_RETURN(MoodValue old_tuple, Fetch(oid));
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  MOOD_ASSIGN_OR_RETURN(HeapFile* extent, ExtentOf(class_name));
  BatchScope batch(versions_, wal, version_batch);
  CommitGate::ExclusiveGuard gate(versions_ ? &versions_->gate() : nullptr);
  MOOD_RETURN_IF_ERROR(extent->Delete(RecordId{oid.page, oid.slot}, wal));
  batch.NoteHeapWrite();
  if (versions_ != nullptr) {
    versions_->CapturePending(batch.batch(), oid, /*absent_before=*/false, type->id,
                              std::make_shared<const MoodValue>(old_tuple),
                              /*live_after=*/false);
  }
  Status st = MaintainIndexes(class_name, oid, &old_tuple, nullptr);
  BumpWriteEpoch(oid.file);
  if (write_observer_) write_observer_(oid.file, oid);
  objects_deleted_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Result<MoodValue> ObjectManager::GetAttribute(Oid oid, const std::string& attr,
                                              DerefCache* cache) const {
  if (cache == nullptr) {
    MOOD_ASSIGN_OR_RETURN(std::string class_name, ClassOf(oid));
    MOOD_ASSIGN_OR_RETURN(int idx, AttrIndex(class_name, attr));
    MOOD_ASSIGN_OR_RETURN(MoodValue tuple, Fetch(oid));
    if (static_cast<size_t>(idx) >= tuple.size()) {
      // Object predates a schema change; the attribute takes its default.
      MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(class_name));
      return attrs[static_cast<size_t>(idx)].type->DefaultValue();
    }
    MOOD_ASSIGN_OR_RETURN(const MoodValue* f, tuple.Field(static_cast<size_t>(idx)));
    return *f;
  }
  // Cached path: one snapshot serves both the class lookup and the tuple, so
  // even a cache miss costs one heap read where the uncached path needs two.
  MOOD_ASSIGN_OR_RETURN(DerefCache::Snapshot snap, FetchSnapshot(oid, cache));
  std::string class_name = catalog_->typeName(snap.type_id);
  if (class_name.empty()) return Status::CatalogError("object has unknown type id");
  MOOD_ASSIGN_OR_RETURN(int idx, AttrIndex(class_name, attr));
  if (static_cast<size_t>(idx) >= snap.tuple->size()) {
    MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(class_name));
    return attrs[static_cast<size_t>(idx)].type->DefaultValue();
  }
  MOOD_ASSIGN_OR_RETURN(const MoodValue* f, snap.tuple->Field(static_cast<size_t>(idx)));
  return *f;
}

Result<AttributeLayoutPtr> ObjectManager::LayoutOf(const std::string& class_name) const {
  TypeId id = catalog_->typeId(class_name);
  if (id == kInvalidTypeId) {
    return Status::NotFound("no class or type named '" + class_name + "'");
  }
  return LayoutOf(id);
}

Result<AttributeLayoutPtr> ObjectManager::LayoutOf(TypeId type_id) const {
  uint64_t epoch = catalog_->schema_epoch();
  {
    std::lock_guard<std::mutex> lock(layout_mu_);
    if (layout_epoch_ != epoch) {
      layouts_.clear();
      layout_epoch_ = epoch;
    } else {
      auto it = layouts_.find(type_id);
      if (it != layouts_.end()) return it->second;
    }
  }
  // Build outside the lock: AllAttributes walks the IS-A DAG and allocates.
  std::string name = catalog_->typeName(type_id);
  if (name.empty()) return Status::CatalogError("object has unknown type id");
  auto layout = std::make_shared<AttributeLayout>();
  layout->type_id = type_id;
  layout->class_name = name;
  MOOD_ASSIGN_OR_RETURN(layout->attrs, catalog_->AllAttributes(name));
  layout->names.reserve(layout->attrs.size());
  layout->ordinal_by_name.reserve(layout->attrs.size());
  for (uint32_t i = 0; i < layout->attrs.size(); i++) {
    layout->names.push_back(layout->attrs[i].name);
    layout->ordinal_by_name.emplace(layout->attrs[i].name, i);
  }
  std::lock_guard<std::mutex> lock(layout_mu_);
  if (layout_epoch_ != epoch) {
    // A DDL slipped in while we built; serve the (still-correct-at-`epoch`)
    // layout to this caller without caching it.
    return AttributeLayoutPtr(layout);
  }
  auto [it, inserted] = layouts_.emplace(type_id, std::move(layout));
  return it->second;
}

Result<MoodValue> ObjectManager::GetAttributeByOrdinal(Oid oid,
                                                       const AttributeLayout& expected,
                                                       uint32_t ordinal,
                                                       DerefCache* cache) const {
  MOOD_ASSIGN_OR_RETURN(DerefCache::Snapshot snap, FetchSnapshot(oid, cache));
  size_t idx = ordinal;
  const AttributeLayout* layout = &expected;
  AttributeLayoutPtr actual;  // keepalive when the instance is a subclass
  if (snap.type_id != expected.type_id) {
    // Subclass instance behind a statically-typed reference: its flattened
    // layout may order inherited attributes differently, so re-resolve by name.
    MOOD_ASSIGN_OR_RETURN(actual, LayoutOf(snap.type_id));
    int pos = actual->OrdinalOf(expected.attrs[ordinal].name);
    if (pos < 0) {
      return Status::NotFound("class '" + actual->class_name + "' has no attribute '" +
                              expected.attrs[ordinal].name + "'");
    }
    idx = static_cast<size_t>(pos);
    layout = actual.get();
  }
  if (idx >= snap.tuple->size()) {
    // Object predates a schema change; the attribute takes its default.
    return layout->attrs[idx].type->DefaultValue();
  }
  MOOD_ASSIGN_OR_RETURN(const MoodValue* f, snap.tuple->Field(idx));
  return *f;
}

Result<std::vector<std::string>> ObjectManager::ScanClasses(
    const std::string& class_name, bool include_subclasses,
    const std::vector<std::string>& exclude) const {
  std::vector<std::string> classes;
  if (include_subclasses) {
    MOOD_ASSIGN_OR_RETURN(classes, catalog_->SubtreeClasses(class_name));
  } else {
    classes.push_back(class_name);
  }
  // The `-` operator removes whole subtrees of the excluded subclasses.
  std::set<std::string> excluded;
  for (const auto& ex : exclude) {
    MOOD_ASSIGN_OR_RETURN(auto sub, catalog_->SubtreeClasses(ex));
    excluded.insert(sub.begin(), sub.end());
  }
  std::vector<std::string> kept;
  kept.reserve(classes.size());
  for (auto& cls : classes) {
    if (excluded.count(cls)) continue;
    kept.push_back(std::move(cls));
  }
  return kept;
}

Result<std::vector<PageId>> ObjectManager::ExtentPageIds(
    const std::string& class_name) const {
  MOOD_ASSIGN_OR_RETURN(HeapFile* extent, ExtentOf(class_name));
  return extent->PageIds();
}

Status ObjectManager::ScanExtentPage(
    const std::string& class_name, PageId page,
    const std::function<Status(Oid, const MoodValue&)>& fn) const {
  return ScanExtentPage(class_name, page, nullptr, fn);
}

namespace {

/// Applies the snapshot visibility rule to one scanned record: skip it (object
/// born after the snapshot), substitute its visible pre-image, or pass the
/// heap value through. `emit` receives the value to produce, or nothing.
Status EmitVisible(const SnapshotView& snap, Oid oid, const MoodValue& heap_value,
                   const std::function<Status(Oid, const MoodValue&)>& fn) {
  if (snap.active() && snap.versions->FileHasVersions(oid.file)) {
    VersionStore::Version v;
    if (snap.versions->VisibleVersion(oid, snap.csn, &v)) {
      if (v.absent) return Status::OK();  // created after the snapshot
      return fn(oid, *v.tuple);           // updated since: serve the pre-image
    }
  }
  return fn(oid, heap_value);
}

}  // namespace

Status ObjectManager::ScanExtentPage(
    const std::string& class_name, PageId page, HeapFile::ScanCursor* cursor,
    const SnapshotView& snap,
    const std::function<Status(Oid, const MoodValue&)>& fn) const {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  MOOD_ASSIGN_OR_RETURN(HeapFile* extent, storage_->GetFile(type->extent_file));
  return extent->ScanPage(page, cursor, [&](RecordId rid, const std::string& rec) -> Status {
    MOOD_ASSIGN_OR_RETURN(auto decoded, DecodeObjectRecord(rec));
    Oid oid;
    oid.file = static_cast<uint16_t>(type->extent_file);
    oid.page = rid.page;
    oid.slot = rid.slot;
    return EmitVisible(snap, oid, decoded.second, fn);
  });
}

Status ObjectManager::ScanExtent(
    const std::string& class_name, bool include_subclasses,
    const std::vector<std::string>& exclude, const SnapshotView& snap,
    const std::function<Status(Oid, const MoodValue&)>& fn) const {
  MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                        ScanClasses(class_name, include_subclasses, exclude));
  for (const auto& cls : classes) {
    MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(cls));
    MOOD_ASSIGN_OR_RETURN(HeapFile* extent, storage_->GetFile(type->extent_file));
    auto it = extent->Begin();
    for (; it.Valid(); it.Next()) {
      MOOD_ASSIGN_OR_RETURN(auto decoded, DecodeObjectRecord(it.record()));
      Oid oid;
      oid.file = static_cast<uint16_t>(type->extent_file);
      oid.page = it.rid().page;
      oid.slot = it.rid().slot;
      MOOD_RETURN_IF_ERROR(EmitVisible(snap, oid, decoded.second, fn));
    }
    MOOD_RETURN_IF_ERROR(it.status());
    MOOD_RETURN_IF_ERROR(SnapshotLeftovers(cls, snap, fn));
  }
  return Status::OK();
}

Status ObjectManager::SnapshotLeftovers(
    const std::string& class_name, const SnapshotView& snap,
    const std::function<Status(Oid, const MoodValue&)>& fn) const {
  if (!snap.active()) return Status::OK();
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  uint16_t file = static_cast<uint16_t>(type->extent_file);
  if (!snap.versions->FileHasVersions(file)) return Status::OK();
  uint64_t emitted = 0;
  for (Oid oid : snap.versions->HeapAbsentOids(file)) {
    VersionStore::Version v;
    if (!snap.versions->VisibleVersion(oid, snap.csn, &v) || v.absent) continue;
    emitted++;
    MOOD_RETURN_IF_ERROR(fn(oid, *v.tuple));
  }
  if (emitted > 0) snap.versions->NoteInjected(emitted);
  return Status::OK();
}

Result<uint64_t> ObjectManager::ExtentCount(const std::string& class_name,
                                            bool include_subclasses) const {
  std::vector<std::string> classes;
  if (include_subclasses) {
    MOOD_ASSIGN_OR_RETURN(classes, catalog_->SubtreeClasses(class_name));
  } else {
    classes.push_back(class_name);
  }
  uint64_t total = 0;
  for (const auto& cls : classes) {
    MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(cls));
    MOOD_ASSIGN_OR_RETURN(HeapFile* extent, storage_->GetFile(type->extent_file));
    total += extent->record_count();
  }
  return total;
}

Result<uint32_t> ObjectManager::ExtentPages(const std::string& class_name) const {
  MOOD_ASSIGN_OR_RETURN(HeapFile* extent, ExtentOf(class_name));
  return extent->page_count();
}

Result<bool> ObjectManager::DeepEquals(const MoodValue& a, const MoodValue& b) const {
  std::vector<std::pair<uint64_t, uint64_t>> visiting;
  return DeepEqualsRec(a, b, &visiting);
}

Result<bool> ObjectManager::DeepEqualsRec(
    const MoodValue& a, const MoodValue& b,
    std::vector<std::pair<uint64_t, uint64_t>>* visiting) const {
  if (a.kind() == ValueKind::kReference && b.kind() == ValueKind::kReference) {
    Oid oa = a.AsReference(), ob = b.AsReference();
    if (oa == ob) return true;
    auto pair = std::make_pair(oa.Pack(), ob.Pack());
    if (std::find(visiting->begin(), visiting->end(), pair) != visiting->end()) {
      return true;  // cycle: assume equal along this path
    }
    visiting->push_back(pair);
    MOOD_ASSIGN_OR_RETURN(MoodValue va, Fetch(oa));
    MOOD_ASSIGN_OR_RETURN(MoodValue vb, Fetch(ob));
    MOOD_ASSIGN_OR_RETURN(bool eq, DeepEqualsRec(va, vb, visiting));
    visiting->pop_back();
    return eq;
  }
  if (a.kind() != b.kind()) return a.Equals(b);  // numeric cross-kind etc.
  switch (a.kind()) {
    case ValueKind::kTuple:
    case ValueKind::kList: {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); i++) {
        MOOD_ASSIGN_OR_RETURN(bool eq,
                              DeepEqualsRec(a.elements()[i], b.elements()[i], visiting));
        if (!eq) return false;
      }
      return true;
    }
    case ValueKind::kSet: {
      if (a.size() != b.size()) return false;
      std::vector<bool> used(b.size(), false);
      for (const auto& ea : a.elements()) {
        bool matched = false;
        for (size_t j = 0; j < b.size(); j++) {
          if (used[j]) continue;
          MOOD_ASSIGN_OR_RETURN(bool eq, DeepEqualsRec(ea, b.elements()[j], visiting));
          if (eq) {
            used[j] = true;
            matched = true;
            break;
          }
        }
        if (!matched) return false;
      }
      return true;
    }
    default:
      return a.Equals(b);
  }
}

Status ObjectManager::MaintainIndexes(const std::string& class_name, Oid oid,
                                      const MoodValue* old_tuple,
                                      const MoodValue* new_tuple) {
  auto descs = catalog_->IndexesOn(class_name);
  if (descs.empty()) return Status::OK();
  MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(class_name));
  auto attr_value = [&](const MoodValue* tuple, const std::string& attr)
      -> const MoodValue* {
    if (tuple == nullptr) return nullptr;
    for (size_t i = 0; i < attrs.size(); i++) {
      if (attrs[i].name == attr) {
        return i < tuple->size() ? &tuple->elements()[i] : nullptr;
      }
    }
    return nullptr;
  };

  for (const auto& d : descs) {
    switch (d.kind) {
      case IndexKind::kBTree: {
        MOOD_ASSIGN_OR_RETURN(BPlusTree * tree, OpenBTree(d));
        const MoodValue* ov = attr_value(old_tuple, d.attribute);
        const MoodValue* nv = attr_value(new_tuple, d.attribute);
        if (ov != nullptr && nv != nullptr && ov->Equals(*nv)) break;
        if (ov != nullptr) {
          MOOD_RETURN_IF_ERROR(tree->Delete(MakeIndexKey(*ov), oid.Pack()));
        }
        if (nv != nullptr) {
          MOOD_RETURN_IF_ERROR(tree->Insert(MakeIndexKey(*nv), oid.Pack()));
        }
        break;
      }
      case IndexKind::kHash: {
        MOOD_ASSIGN_OR_RETURN(HashIndex * hash, OpenHash(d));
        const MoodValue* ov = attr_value(old_tuple, d.attribute);
        const MoodValue* nv = attr_value(new_tuple, d.attribute);
        if (ov != nullptr && nv != nullptr && ov->Equals(*nv)) break;
        if (ov != nullptr) {
          MOOD_RETURN_IF_ERROR(hash->Delete(MakeIndexKey(*ov), oid.Pack()));
        }
        if (nv != nullptr) {
          MOOD_RETURN_IF_ERROR(hash->Insert(MakeIndexKey(*nv), oid.Pack()));
        }
        break;
      }
      case IndexKind::kBinaryJoin: {
        MOOD_ASSIGN_OR_RETURN(BinaryJoinIndex * bji, OpenJoinIndex(d));
        const MoodValue* ov = attr_value(old_tuple, d.attribute);
        const MoodValue* nv = attr_value(new_tuple, d.attribute);
        auto each_ref = [](const MoodValue* v,
                           const std::function<Status(Oid)>& cb) -> Status {
          if (v == nullptr || v->is_null()) return Status::OK();
          if (v->kind() == ValueKind::kReference) return cb(v->AsReference());
          if (v->IsCollection()) {
            for (const auto& e : v->elements()) {
              if (e.kind() == ValueKind::kReference) MOOD_RETURN_IF_ERROR(cb(e.AsReference()));
            }
          }
          return Status::OK();
        };
        if (ov != nullptr && nv != nullptr && ov->Equals(*nv)) break;
        MOOD_RETURN_IF_ERROR(
            each_ref(ov, [&](Oid target) { return bji->Remove(oid, target); }));
        MOOD_RETURN_IF_ERROR(
            each_ref(nv, [&](Oid target) { return bji->Add(oid, target); }));
        break;
      }
      case IndexKind::kRTree:
      case IndexKind::kPath:
        // Spatial and path indexes are maintained by their builders / the
        // application layer (matching the paper's standalone indexing tools).
        break;
    }
  }
  return Status::OK();
}

Status ObjectManager::CreateAttributeIndex(const std::string& index_name,
                                           const std::string& class_name,
                                           const std::string& attribute,
                                           IndexKind kind, bool unique) {
  if (kind != IndexKind::kBTree && kind != IndexKind::kHash) {
    return Status::InvalidArgument("CreateAttributeIndex supports BTree/Hash only");
  }
  MOOD_RETURN_IF_ERROR(AttrIndex(class_name, attribute).status());
  IndexDesc desc;
  desc.name = index_name;
  desc.class_name = class_name;
  desc.attribute = attribute;
  desc.kind = kind;
  desc.unique = unique;
  if (kind == IndexKind::kBTree) {
    MOOD_ASSIGN_OR_RETURN(auto tree,
                          BPlusTree::Create(storage_->buffer_pool(), storage_, unique));
    desc.meta1 = tree->meta_page();
    btrees_[index_name] = std::move(tree);
  } else {
    MOOD_ASSIGN_OR_RETURN(auto hash, HashIndex::Create(storage_->buffer_pool(), storage_));
    desc.meta1 = hash->meta_page();
    hashes_[index_name] = std::move(hash);
  }
  MOOD_RETURN_IF_ERROR(catalog_->RegisterIndex(desc));
  // Bulk load existing instances (own extent only: subclass instances live in
  // their own extents and need their own indexes).
  MOOD_ASSIGN_OR_RETURN(int idx, AttrIndex(class_name, attribute));
  return ScanExtent(class_name, false, {}, [&](Oid oid, const MoodValue& tuple) {
    if (static_cast<size_t>(idx) >= tuple.size()) return Status::OK();
    const MoodValue& v = tuple.elements()[static_cast<size_t>(idx)];
    if (kind == IndexKind::kBTree) {
      return btrees_[index_name]->Insert(MakeIndexKey(v), oid.Pack());
    }
    return hashes_[index_name]->Insert(MakeIndexKey(v), oid.Pack());
  });
}

Status ObjectManager::CreateBinaryJoinIndex(const std::string& index_name,
                                            const std::string& class_name,
                                            const std::string& attribute) {
  MOOD_ASSIGN_OR_RETURN(int idx, AttrIndex(class_name, attribute));
  MOOD_ASSIGN_OR_RETURN(auto bji,
                        BinaryJoinIndex::Create(storage_->buffer_pool(), storage_));
  IndexDesc desc;
  desc.name = index_name;
  desc.class_name = class_name;
  desc.attribute = attribute;
  desc.kind = IndexKind::kBinaryJoin;
  desc.meta1 = bji->forward_meta();
  desc.meta2 = bji->backward_meta();
  BinaryJoinIndex* raw = bji.get();
  bjis_[index_name] = std::move(bji);
  MOOD_RETURN_IF_ERROR(catalog_->RegisterIndex(desc));
  return ScanExtent(class_name, false, {}, [&](Oid oid, const MoodValue& tuple) {
    if (static_cast<size_t>(idx) >= tuple.size()) return Status::OK();
    const MoodValue& v = tuple.elements()[static_cast<size_t>(idx)];
    if (v.kind() == ValueKind::kReference) return raw->Add(oid, v.AsReference());
    if (v.IsCollection()) {
      for (const auto& e : v.elements()) {
        if (e.kind() == ValueKind::kReference) {
          MOOD_RETURN_IF_ERROR(raw->Add(oid, e.AsReference()));
        }
      }
    }
    return Status::OK();
  });
}

Status ObjectManager::CreatePathIndex(const std::string& index_name,
                                      const std::string& class_name,
                                      const std::string& path) {
  // Split the dotted path.
  std::vector<std::string> steps;
  size_t start = 0;
  while (start <= path.size()) {
    size_t dot = path.find('.', start);
    if (dot == std::string::npos) {
      steps.push_back(path.substr(start));
      break;
    }
    steps.push_back(path.substr(start, dot - start));
    start = dot + 1;
  }
  if (steps.empty()) return Status::InvalidArgument("empty path");

  MOOD_ASSIGN_OR_RETURN(auto pidx, PathIndex::Create(storage_->buffer_pool(), storage_));
  IndexDesc desc;
  desc.name = index_name;
  desc.class_name = class_name;
  desc.attribute = path;
  desc.kind = IndexKind::kPath;
  desc.meta1 = pidx->meta_page();
  PathIndex* raw = pidx.get();
  path_indexes_[index_name] = std::move(pidx);
  MOOD_RETURN_IF_ERROR(catalog_->RegisterIndex(desc));
  return ScanExtent(class_name, false, {}, [&](Oid oid, const MoodValue&) {
    return TraversePath(oid, steps, [&](const MoodValue& terminal) {
      return raw->Add(MakeIndexKey(terminal), oid);
    });
  });
}

Status ObjectManager::TraversePath(
    Oid root, const std::vector<std::string>& path, DerefCache* cache,
    const std::function<Status(const MoodValue&)>& fn) const {
  std::function<Status(Oid, size_t)> step = [&](Oid oid, size_t depth) -> Status {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, GetAttribute(oid, path[depth], cache));
    auto handle = [&](const MoodValue& val) -> Status {
      if (depth + 1 == path.size()) return fn(val);
      if (val.is_null()) return Status::OK();  // broken path: no terminal value
      if (val.kind() != ValueKind::kReference) {
        return Status::TypeError("path step '" + path[depth] +
                                 "' is not a reference but the path continues");
      }
      return step(val.AsReference(), depth + 1);
    };
    if (v.IsCollection()) {
      for (const auto& e : v.elements()) MOOD_RETURN_IF_ERROR(handle(e));
      return Status::OK();
    }
    return handle(v);
  };
  return step(root, 0);
}

Result<BPlusTree*> ObjectManager::OpenBTree(const IndexDesc& desc) {
  std::lock_guard<std::mutex> lock(index_cache_mu_);
  auto it = btrees_.find(desc.name);
  if (it != btrees_.end()) return it->second.get();
  MOOD_ASSIGN_OR_RETURN(auto tree,
                        BPlusTree::Open(storage_->buffer_pool(), storage_, desc.meta1));
  BPlusTree* raw = tree.get();
  btrees_[desc.name] = std::move(tree);
  return raw;
}

Result<HashIndex*> ObjectManager::OpenHash(const IndexDesc& desc) {
  std::lock_guard<std::mutex> lock(index_cache_mu_);
  auto it = hashes_.find(desc.name);
  if (it != hashes_.end()) return it->second.get();
  MOOD_ASSIGN_OR_RETURN(auto hash,
                        HashIndex::Open(storage_->buffer_pool(), storage_, desc.meta1));
  HashIndex* raw = hash.get();
  hashes_[desc.name] = std::move(hash);
  return raw;
}

Result<BinaryJoinIndex*> ObjectManager::OpenJoinIndex(const IndexDesc& desc) {
  std::lock_guard<std::mutex> lock(index_cache_mu_);
  auto it = bjis_.find(desc.name);
  if (it != bjis_.end()) return it->second.get();
  MOOD_ASSIGN_OR_RETURN(auto bji, BinaryJoinIndex::Open(storage_->buffer_pool(),
                                                        storage_, desc.meta1, desc.meta2));
  BinaryJoinIndex* raw = bji.get();
  bjis_[desc.name] = std::move(bji);
  return raw;
}

Result<PathIndex*> ObjectManager::OpenPathIndex(const IndexDesc& desc) {
  std::lock_guard<std::mutex> lock(index_cache_mu_);
  auto it = path_indexes_.find(desc.name);
  if (it != path_indexes_.end()) return it->second.get();
  MOOD_ASSIGN_OR_RETURN(auto pidx,
                        PathIndex::Open(storage_->buffer_pool(), storage_, desc.meta1));
  PathIndex* raw = pidx.get();
  path_indexes_[desc.name] = std::move(pidx);
  return raw;
}

void ObjectManager::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterProbe(
      "objects", [this](std::vector<std::pair<std::string, double>>* out) {
        uint64_t epochs = 0;
        for (const auto& e : write_epochs_) {
          epochs += e.load(std::memory_order_relaxed);
        }
        out->emplace_back("objects.created",
                          static_cast<double>(
                              objects_created_.load(std::memory_order_relaxed)));
        out->emplace_back("objects.deleted",
                          static_cast<double>(
                              objects_deleted_.load(std::memory_order_relaxed)));
        out->emplace_back(
            "objects.deref_cache.hits",
            static_cast<double>(deref_hits_.load(std::memory_order_relaxed)));
        out->emplace_back(
            "objects.deref_cache.misses",
            static_cast<double>(deref_misses_.load(std::memory_order_relaxed)));
        out->emplace_back("objects.write_epochs", static_cast<double>(epochs));
        {
          std::lock_guard<std::mutex> lock(index_cache_mu_);
          out->emplace_back("objects.open_indexes",
                            static_cast<double>(btrees_.size() + hashes_.size() +
                                                bjis_.size() + path_indexes_.size()));
        }
      });
}

}  // namespace mood
