#include "catalog/catalog.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/coding.h"

namespace mood {

namespace {

/// Catalog records live in heap file id 1 (the first file ever created in a
/// database). Record tags:
constexpr char kTagType = 'T';
constexpr char kTagIndexes = 'X';
constexpr char kTagNames = 'N';
constexpr char kTagViews = 'V';
constexpr FileId kCatalogFileId = 1;

}  // namespace

std::string_view IndexKindName(IndexKind k) {
  switch (k) {
    case IndexKind::kBTree: return "BTree";
    case IndexKind::kHash: return "Hash";
    case IndexKind::kRTree: return "RTree";
    case IndexKind::kPath: return "Path";
    case IndexKind::kBinaryJoin: return "BinaryJoin";
  }
  return "?";
}

std::string MoodsFunction::Signature(const std::string& class_name) const {
  std::string sig = class_name + "::" + name + "(";
  for (size_t i = 0; i < params.size(); i++) {
    if (i > 0) sig += ",";
    sig += params[i].type->ToString();
  }
  sig += ")";
  return sig;
}

const MoodsFunction* MoodsType::FindFunction(const std::string& fname) const {
  for (const auto& f : functions) {
    if (f.name == fname) return &f;
  }
  return nullptr;
}

void Catalog::EncodeType(const MoodsType& t, std::string* dst) {
  dst->push_back(kTagType);
  PutFixed32(dst, t.id);
  dst->push_back(t.is_class ? 1 : 0);
  PutLengthPrefixedSlice(dst, t.name);
  PutFixed32(dst, static_cast<uint32_t>(t.supers.size()));
  for (const auto& s : t.supers) PutLengthPrefixedSlice(dst, s);
  PutFixed32(dst, static_cast<uint32_t>(t.own_attributes.size()));
  for (const auto& a : t.own_attributes) {
    PutLengthPrefixedSlice(dst, a.name);
    a.type->EncodeTo(dst);
  }
  PutFixed32(dst, static_cast<uint32_t>(t.functions.size()));
  for (const auto& f : t.functions) {
    PutLengthPrefixedSlice(dst, f.name);
    f.return_type->EncodeTo(dst);
    PutFixed32(dst, static_cast<uint32_t>(f.params.size()));
    for (const auto& p : f.params) {
      PutLengthPrefixedSlice(dst, p.name);
      p.type->EncodeTo(dst);
    }
    PutLengthPrefixedSlice(dst, f.body_source);
  }
  PutFixed32(dst, t.extent_file);
}

Result<MoodsType> Catalog::DecodeType(Slice in) {
  if (in.empty() || in[0] != kTagType) return Status::Corruption("not a type record");
  in.remove_prefix(1);
  MoodsType t;
  Decoder dec(in);
  uint32_t n = 0;
  MOOD_RETURN_IF_ERROR(dec.GetFixed32(&t.id));
  {
    Slice rest = dec.rest();
    if (rest.empty()) return Status::Corruption("truncated type record");
    t.is_class = rest[0] != 0;
    dec = Decoder(Slice(rest.data() + 1, rest.size() - 1));
  }
  MOOD_RETURN_IF_ERROR(dec.GetString(&t.name));
  MOOD_RETURN_IF_ERROR(dec.GetFixed32(&n));
  for (uint32_t i = 0; i < n; i++) {
    std::string s;
    MOOD_RETURN_IF_ERROR(dec.GetString(&s));
    t.supers.push_back(std::move(s));
  }
  MOOD_RETURN_IF_ERROR(dec.GetFixed32(&n));
  for (uint32_t i = 0; i < n; i++) {
    MoodsAttribute a;
    MOOD_RETURN_IF_ERROR(dec.GetString(&a.name));
    Slice rest = dec.rest();
    MOOD_ASSIGN_OR_RETURN(a.type, TypeDesc::Decode(&rest));
    dec = Decoder(rest);
    t.own_attributes.push_back(std::move(a));
  }
  MOOD_RETURN_IF_ERROR(dec.GetFixed32(&n));
  for (uint32_t i = 0; i < n; i++) {
    MoodsFunction f;
    MOOD_RETURN_IF_ERROR(dec.GetString(&f.name));
    Slice rest = dec.rest();
    MOOD_ASSIGN_OR_RETURN(f.return_type, TypeDesc::Decode(&rest));
    dec = Decoder(rest);
    uint32_t np = 0;
    MOOD_RETURN_IF_ERROR(dec.GetFixed32(&np));
    for (uint32_t j = 0; j < np; j++) {
      MoodsAttribute p;
      MOOD_RETURN_IF_ERROR(dec.GetString(&p.name));
      Slice prest = dec.rest();
      MOOD_ASSIGN_OR_RETURN(p.type, TypeDesc::Decode(&prest));
      dec = Decoder(prest);
      f.params.push_back(std::move(p));
    }
    MOOD_RETURN_IF_ERROR(dec.GetString(&f.body_source));
    t.functions.push_back(std::move(f));
  }
  MOOD_RETURN_IF_ERROR(dec.GetFixed32(&t.extent_file));
  return t;
}

Status Catalog::Open(StorageManager* storage) {
  storage_ = storage;
  if (!storage_->HasFile(kCatalogFileId)) {
    MOOD_ASSIGN_OR_RETURN(FileId id, storage_->CreateFile());
    if (id != kCatalogFileId) {
      return Status::Internal("catalog file must be the first file created");
    }
  }
  MOOD_ASSIGN_OR_RETURN(file_, storage_->GetFile(kCatalogFileId));
  return LoadAll();
}

Status Catalog::LoadAll() {
  by_name_.clear();
  by_id_.clear();
  indexes_.clear();
  named_objects_.clear();
  views_.clear();
  index_record_rid_ = RecordId{};
  names_record_rid_ = RecordId{};
  views_record_rid_ = RecordId{};
  next_type_id_ = kFirstUserTypeId;

  for (auto it = file_->Begin(); it.Valid(); it.Next()) {
    const std::string& rec = it.record();
    if (rec.empty()) continue;
    switch (rec[0]) {
      case kTagType: {
        MOOD_ASSIGN_OR_RETURN(MoodsType t, DecodeType(rec));
        auto st = std::make_unique<StoredType>();
        st->type = std::move(t);
        st->rid = it.rid();
        if (st->type.id >= next_type_id_) next_type_id_ = st->type.id + 1;
        by_id_[st->type.id] = st.get();
        by_name_[st->type.name] = std::move(st);
        break;
      }
      case kTagIndexes: {
        index_record_rid_ = it.rid();
        Decoder dec(Slice(rec.data() + 1, rec.size() - 1));
        uint32_t n = 0;
        MOOD_RETURN_IF_ERROR(dec.GetFixed32(&n));
        for (uint32_t i = 0; i < n; i++) {
          IndexDesc d;
          MOOD_RETURN_IF_ERROR(dec.GetString(&d.name));
          MOOD_RETURN_IF_ERROR(dec.GetString(&d.class_name));
          MOOD_RETURN_IF_ERROR(dec.GetString(&d.attribute));
          uint32_t kind = 0, uniq = 0;
          MOOD_RETURN_IF_ERROR(dec.GetFixed32(&kind));
          MOOD_RETURN_IF_ERROR(dec.GetFixed32(&uniq));
          MOOD_RETURN_IF_ERROR(dec.GetFixed32(&d.meta1));
          MOOD_RETURN_IF_ERROR(dec.GetFixed32(&d.meta2));
          d.kind = static_cast<IndexKind>(kind);
          d.unique = uniq != 0;
          indexes_[d.name] = std::move(d);
        }
        break;
      }
      case kTagNames: {
        names_record_rid_ = it.rid();
        Decoder dec(Slice(rec.data() + 1, rec.size() - 1));
        uint32_t n = 0;
        MOOD_RETURN_IF_ERROR(dec.GetFixed32(&n));
        for (uint32_t i = 0; i < n; i++) {
          std::string name;
          uint64_t packed = 0;
          MOOD_RETURN_IF_ERROR(dec.GetString(&name));
          MOOD_RETURN_IF_ERROR(dec.GetFixed64(&packed));
          named_objects_[name] = Oid::Unpack(packed);
        }
        break;
      }
      case kTagViews: {
        views_record_rid_ = it.rid();
        Decoder dec(Slice(rec.data() + 1, rec.size() - 1));
        uint32_t n = 0;
        MOOD_RETURN_IF_ERROR(dec.GetFixed32(&n));
        for (uint32_t i = 0; i < n; i++) {
          MatViewDef d;
          MOOD_RETURN_IF_ERROR(dec.GetString(&d.name));
          MOOD_RETURN_IF_ERROR(dec.GetString(&d.select_sql));
          views_[d.name] = std::move(d);
        }
        break;
      }
      default:
        return Status::Corruption("unknown catalog record tag");
    }
  }
  return Status::OK();
}

Status Catalog::PersistType(StoredType* st) {
  // Every schema mutation (Define + the MoodView class-designer operations)
  // lands here; derived layout caches revalidate against the epoch.
  BumpSchemaEpoch();
  std::string rec;
  EncodeType(st->type, &rec);
  if (st->rid.valid()) {
    return file_->Update(st->rid, rec);
  }
  MOOD_ASSIGN_OR_RETURN(st->rid, file_->Insert(rec));
  return Status::OK();
}

Status Catalog::PersistIndexes() {
  std::string rec(1, kTagIndexes);
  PutFixed32(&rec, static_cast<uint32_t>(indexes_.size()));
  for (const auto& [name, d] : indexes_) {
    PutLengthPrefixedSlice(&rec, d.name);
    PutLengthPrefixedSlice(&rec, d.class_name);
    PutLengthPrefixedSlice(&rec, d.attribute);
    PutFixed32(&rec, static_cast<uint32_t>(d.kind));
    PutFixed32(&rec, d.unique ? 1 : 0);
    PutFixed32(&rec, d.meta1);
    PutFixed32(&rec, d.meta2);
  }
  if (index_record_rid_.valid()) return file_->Update(index_record_rid_, rec);
  MOOD_ASSIGN_OR_RETURN(index_record_rid_, file_->Insert(rec));
  return Status::OK();
}

Status Catalog::PersistNames() {
  std::string rec(1, kTagNames);
  PutFixed32(&rec, static_cast<uint32_t>(named_objects_.size()));
  for (const auto& [name, oid] : named_objects_) {
    PutLengthPrefixedSlice(&rec, name);
    PutFixed64(&rec, oid.Pack());
  }
  if (names_record_rid_.valid()) return file_->Update(names_record_rid_, rec);
  MOOD_ASSIGN_OR_RETURN(names_record_rid_, file_->Insert(rec));
  return Status::OK();
}

Status Catalog::PersistViews() {
  std::string rec(1, kTagViews);
  PutFixed32(&rec, static_cast<uint32_t>(views_.size()));
  for (const auto& [name, d] : views_) {
    PutLengthPrefixedSlice(&rec, d.name);
    PutLengthPrefixedSlice(&rec, d.select_sql);
  }
  if (views_record_rid_.valid()) return file_->Update(views_record_rid_, rec);
  MOOD_ASSIGN_OR_RETURN(views_record_rid_, file_->Insert(rec));
  return Status::OK();
}

Status Catalog::RegisterView(const MatViewDef& def) {
  if (def.name.empty()) return Status::InvalidArgument("empty view name");
  if (views_.count(def.name) > 0) {
    return Status::AlreadyExists("materialized view '" + def.name +
                                 "' already defined");
  }
  if (Exists(def.name)) {
    return Status::AlreadyExists("'" + def.name + "' already names a class or type");
  }
  views_[def.name] = def;
  Status s = PersistViews();
  if (!s.ok()) {
    views_.erase(def.name);
    return s;
  }
  BumpSchemaEpoch();
  return Status::OK();
}

Status Catalog::UnregisterView(const std::string& view_name) {
  auto it = views_.find(view_name);
  if (it == views_.end()) {
    return Status::NotFound("no materialized view '" + view_name + "'");
  }
  MatViewDef saved = it->second;
  views_.erase(it);
  Status s = PersistViews();
  if (!s.ok()) {
    views_[view_name] = std::move(saved);
    return s;
  }
  BumpSchemaEpoch();
  return Status::OK();
}

std::vector<MatViewDef> Catalog::AllViews() const {
  std::vector<MatViewDef> out;
  out.reserve(views_.size());
  for (const auto& [name, d] : views_) out.push_back(d);
  return out;
}

std::optional<MatViewDef> Catalog::FindView(const std::string& view_name) const {
  auto it = views_.find(view_name);
  if (it == views_.end()) return std::nullopt;
  return it->second;
}

Status Catalog::ValidateDef(const ClassDef& def) const {
  if (def.name.empty()) return Status::InvalidArgument("empty class name");
  if (Exists(def.name)) {
    return Status::AlreadyExists("type '" + def.name + "' already defined");
  }
  std::set<std::string> seen;
  for (const auto& s : def.supers) {
    auto it = by_name_.find(s);
    if (it == by_name_.end()) {
      return Status::CatalogError("unknown superclass '" + s + "'");
    }
    if (!it->second->type.is_class) {
      return Status::CatalogError("cannot inherit from value type '" + s + "'");
    }
    MOOD_ASSIGN_OR_RETURN(auto inherited, AllAttributes(s));
    for (const auto& a : inherited) {
      if (!seen.insert(a.name).second) {
        return Status::CatalogError("attribute '" + a.name +
                                    "' inherited from multiple superclasses");
      }
    }
  }
  for (const auto& a : def.attributes) {
    if (!seen.insert(a.name).second) {
      return Status::CatalogError("duplicate attribute '" + a.name + "'");
    }
  }
  return Status::OK();
}

Result<TypeId> Catalog::Define(const ClassDef& def) {
  MOOD_RETURN_IF_ERROR(ValidateDef(def));
  auto st = std::make_unique<StoredType>();
  st->type.id = next_type_id_++;
  st->type.name = def.name;
  st->type.is_class = def.is_class;
  st->type.supers = def.supers;
  st->type.own_attributes = def.attributes;
  st->type.functions = def.methods;
  if (def.is_class) {
    MOOD_ASSIGN_OR_RETURN(st->type.extent_file, storage_->CreateFile());
  }
  MOOD_RETURN_IF_ERROR(PersistType(st.get()));
  TypeId id = st->type.id;
  by_id_[id] = st.get();
  by_name_[def.name] = std::move(st);
  return id;
}

Status Catalog::Drop(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no type '" + name + "'");
  // Refuse when subclasses exist.
  for (const auto& [other, st] : by_name_) {
    for (const auto& s : st->type.supers) {
      if (s == name) {
        return Status::CatalogError("class '" + name + "' has subclass '" + other + "'");
      }
    }
  }
  MOOD_RETURN_IF_ERROR(file_->Delete(it->second->rid));
  by_id_.erase(it->second->type.id);
  by_name_.erase(it);
  BumpSchemaEpoch();  // Drop bypasses PersistType; invalidate layouts here too.
  return Status::OK();
}

Result<const MoodsType*> Catalog::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no class or type named '" + name + "'");
  }
  return &it->second->type;
}

Result<const MoodsType*> Catalog::Lookup(TypeId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("no type with id " + std::to_string(id));
  }
  return &it->second->type;
}

TypeId Catalog::typeId(const std::string& type_name) const {
  // Basic types have reserved ids 1..6.
  for (int b = 0; b < 6; b++) {
    if (type_name == BasicTypeName(static_cast<BasicType>(b))) {
      return static_cast<TypeId>(b + 1);
    }
  }
  auto it = by_name_.find(type_name);
  return it == by_name_.end() ? kInvalidTypeId : it->second->type.id;
}

std::string Catalog::typeName(TypeId id) const {
  if (id >= 1 && id <= 6) {
    return std::string(BasicTypeName(static_cast<BasicType>(id - 1)));
  }
  auto it = by_id_.find(id);
  return it == by_id_.end() ? std::string() : it->second->type.name;
}

std::vector<const MoodsType*> Catalog::AllTypes() const {
  std::vector<const MoodsType*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, st] : by_name_) out.push_back(&st->type);
  std::sort(out.begin(), out.end(),
            [](const MoodsType* a, const MoodsType* b) { return a->id < b->id; });
  return out;
}

Result<std::vector<MoodsAttribute>> Catalog::AllAttributes(
    const std::string& name) const {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* t, Lookup(name));
  std::vector<MoodsAttribute> out;
  std::set<std::string> seen;
  std::function<Status(const MoodsType*)> visit =
      [&](const MoodsType* type) -> Status {
    for (const auto& s : type->supers) {
      MOOD_ASSIGN_OR_RETURN(const MoodsType* super, Lookup(s));
      MOOD_RETURN_IF_ERROR(visit(super));
    }
    for (const auto& a : type->own_attributes) {
      if (seen.insert(a.name).second) out.push_back(a);
    }
    return Status::OK();
  };
  MOOD_RETURN_IF_ERROR(visit(t));
  return out;
}

Result<std::vector<MoodsFunction>> Catalog::AllFunctions(
    const std::string& name) const {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* t, Lookup(name));
  std::vector<MoodsFunction> out;
  std::set<std::string> seen;
  // Own functions first (they override), then supers depth-first.
  std::function<Status(const MoodsType*)> visit =
      [&](const MoodsType* type) -> Status {
    for (const auto& f : type->functions) {
      if (seen.insert(f.name).second) out.push_back(f);
    }
    for (const auto& s : type->supers) {
      MOOD_ASSIGN_OR_RETURN(const MoodsType* super, Lookup(s));
      MOOD_RETURN_IF_ERROR(visit(super));
    }
    return Status::OK();
  };
  MOOD_RETURN_IF_ERROR(visit(t));
  return out;
}

Result<std::pair<std::string, const MoodsFunction*>> Catalog::ResolveFunction(
    const std::string& class_name, const std::string& fname) const {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* t, Lookup(class_name));
  if (const MoodsFunction* f = t->FindFunction(fname)) {
    return std::make_pair(class_name, f);
  }
  for (const auto& s : t->supers) {
    auto res = ResolveFunction(s, fname);
    if (res.ok()) return res;
  }
  return Status::NotFound("no method '" + fname + "' on class '" + class_name + "'");
}

Result<std::vector<std::string>> Catalog::Subclasses(const std::string& name) const {
  MOOD_RETURN_IF_ERROR(Lookup(name).status());
  std::vector<std::string> out;
  for (const auto& [other, st] : by_name_) {
    for (const auto& s : st->type.supers) {
      if (s == name) {
        out.push_back(other);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> Catalog::SubtreeClasses(const std::string& name) const {
  MOOD_RETURN_IF_ERROR(Lookup(name).status());
  std::vector<std::string> out{name};
  std::set<std::string> seen{name};
  for (size_t i = 0; i < out.size(); i++) {
    MOOD_ASSIGN_OR_RETURN(auto subs, Subclasses(out[i]));
    for (auto& s : subs) {
      if (seen.insert(s).second) out.push_back(std::move(s));
    }
  }
  return out;
}

bool Catalog::IsSubclassOf(const std::string& sub, const std::string& super) const {
  if (sub == super) return true;
  auto it = by_name_.find(sub);
  if (it == by_name_.end()) return false;
  for (const auto& s : it->second->type.supers) {
    if (IsSubclassOf(s, super)) return true;
  }
  return false;
}

Status Catalog::AddAttribute(const std::string& class_name, MoodsAttribute attr) {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return Status::NotFound("no class '" + class_name + "'");
  MOOD_ASSIGN_OR_RETURN(auto all, AllAttributes(class_name));
  for (const auto& a : all) {
    if (a.name == attr.name) {
      return Status::AlreadyExists("attribute '" + attr.name + "' already exists");
    }
  }
  it->second->type.own_attributes.push_back(std::move(attr));
  return PersistType(it->second.get());
}

Status Catalog::DropAttribute(const std::string& class_name, const std::string& attr) {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return Status::NotFound("no class '" + class_name + "'");
  auto& attrs = it->second->type.own_attributes;
  auto pos = std::find_if(attrs.begin(), attrs.end(),
                          [&](const MoodsAttribute& a) { return a.name == attr; });
  if (pos == attrs.end()) {
    return Status::NotFound("class '" + class_name + "' has no own attribute '" +
                            attr + "'");
  }
  attrs.erase(pos);
  return PersistType(it->second.get());
}

Status Catalog::RenameAttribute(const std::string& class_name, const std::string& from,
                                const std::string& to) {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return Status::NotFound("no class '" + class_name + "'");
  for (auto& a : it->second->type.own_attributes) {
    if (a.name == from) {
      a.name = to;
      return PersistType(it->second.get());
    }
  }
  return Status::NotFound("no own attribute '" + from + "'");
}

Status Catalog::AddFunction(const std::string& class_name, MoodsFunction fn) {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return Status::NotFound("no class '" + class_name + "'");
  if (it->second->type.FindFunction(fn.name) != nullptr) {
    return Status::AlreadyExists("method '" + fn.name + "' already defined");
  }
  it->second->type.functions.push_back(std::move(fn));
  return PersistType(it->second.get());
}

Status Catalog::DropFunction(const std::string& class_name, const std::string& fname) {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return Status::NotFound("no class '" + class_name + "'");
  auto& fns = it->second->type.functions;
  auto pos = std::find_if(fns.begin(), fns.end(),
                          [&](const MoodsFunction& f) { return f.name == fname; });
  if (pos == fns.end()) return Status::NotFound("no method '" + fname + "'");
  fns.erase(pos);
  return PersistType(it->second.get());
}

Status Catalog::UpdateFunctionBody(const std::string& class_name,
                                   const std::string& fname, std::string body) {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return Status::NotFound("no class '" + class_name + "'");
  for (auto& f : it->second->type.functions) {
    if (f.name == fname) {
      f.body_source = std::move(body);
      return PersistType(it->second.get());
    }
  }
  return Status::NotFound("no method '" + fname + "'");
}

Status Catalog::RegisterIndex(const IndexDesc& desc) {
  if (indexes_.count(desc.name)) {
    return Status::AlreadyExists("index '" + desc.name + "' already exists");
  }
  MOOD_RETURN_IF_ERROR(Lookup(desc.class_name).status());
  indexes_[desc.name] = desc;
  // A new index changes which plans are possible; epoch-stamped caches
  // (layouts, feedback, cached plans) must re-derive.
  BumpSchemaEpoch();
  return PersistIndexes();
}

Status Catalog::UnregisterIndex(const std::string& index_name) {
  if (indexes_.erase(index_name) == 0) {
    return Status::NotFound("no index '" + index_name + "'");
  }
  BumpSchemaEpoch();
  return PersistIndexes();
}

std::vector<IndexDesc> Catalog::IndexesOn(const std::string& class_name) const {
  std::vector<IndexDesc> out;
  for (const auto& [name, d] : indexes_) {
    if (d.class_name == class_name) out.push_back(d);
  }
  return out;
}

std::optional<IndexDesc> Catalog::FindIndex(const std::string& class_name,
                                            const std::string& attribute,
                                            IndexKind kind) const {
  for (const auto& [name, d] : indexes_) {
    if (d.class_name == class_name && d.attribute == attribute && d.kind == kind) {
      return d;
    }
  }
  return std::nullopt;
}

std::optional<IndexDesc> Catalog::FindIndexByName(const std::string& index_name) const {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) return std::nullopt;
  return it->second;
}

Status Catalog::BindName(const std::string& name, Oid oid) {
  named_objects_[name] = oid;
  return PersistNames();
}

Status Catalog::UnbindName(const std::string& name) {
  if (named_objects_.erase(name) == 0) {
    return Status::NotFound("no named object '" + name + "'");
  }
  return PersistNames();
}

Result<Oid> Catalog::LookupName(const std::string& name) const {
  auto it = named_objects_.find(name);
  if (it == named_objects_.end()) {
    return Status::NotFound("no named object '" + name + "'");
  }
  return it->second;
}

std::vector<std::pair<std::string, Oid>> Catalog::AllNamedObjects() const {
  return {named_objects_.begin(), named_objects_.end()};
}

}  // namespace mood
