#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace mood {

/// 2-D axis-aligned rectangle used by the spatial index.
struct Rect {
  double xmin = 0, ymin = 0, xmax = 0, ymax = 0;

  static Rect Point(double x, double y) { return Rect{x, y, x, y}; }

  double Area() const { return (xmax - xmin) * (ymax - ymin); }

  bool Intersects(const Rect& o) const {
    return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax && o.ymin <= ymax;
  }
  bool Contains(const Rect& o) const {
    return xmin <= o.xmin && o.xmax <= xmax && ymin <= o.ymin && o.ymax <= ymax;
  }

  /// Smallest rectangle covering both.
  Rect Union(const Rect& o) const {
    return Rect{std::min(xmin, o.xmin), std::min(ymin, o.ymin), std::max(xmax, o.xmax),
                std::max(ymax, o.ymax)};
  }

  /// Area growth needed to cover `o`.
  double Enlargement(const Rect& o) const { return Union(o).Area() - Area(); }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Guttman R-tree (quadratic split) over the buffer pool — the index behind
/// MoodView's "graphical indexing tool for the spatial data, i.e., R Trees".
/// Payloads are 64-bit (packed Oids). Deletion removes the entry without
/// rebalancing (lazy condensation), which keeps the tree valid.
class RTree {
 public:
  static Result<std::unique_ptr<RTree>> Create(BufferPool* pool, FileDirectory* alloc);
  static Result<std::unique_ptr<RTree>> Open(BufferPool* pool, FileDirectory* alloc,
                                             PageId meta_page);

  PageId meta_page() const { return meta_page_; }

  Status Insert(const Rect& rect, uint64_t value);
  Status Delete(const Rect& rect, uint64_t value);

  /// All payloads whose rectangle intersects `window`.
  Result<std::vector<std::pair<Rect, uint64_t>>> Search(const Rect& window) const;

  uint64_t entries() const { return entries_; }
  uint32_t height() const { return height_; }

  /// Validates containment invariants (every child MBR inside its parent entry).
  Status CheckInvariants() const;

 private:
  RTree(BufferPool* pool, FileDirectory* alloc, PageId meta)
      : pool_(pool), alloc_(alloc), meta_page_(meta) {}

  struct Entry {
    Rect rect;
    uint64_t value = 0;      // leaf payload
    PageId child = kInvalidPageId;  // internal child
  };
  struct Node {
    PageId id = kInvalidPageId;
    bool leaf = true;
    std::vector<Entry> entries;
  };

  static constexpr size_t kMaxEntries = 32;
  static constexpr size_t kMinEntries = 13;  // ~40% of max, per Guttman

  Status LoadMeta();
  Status StoreMeta() const;
  Result<Node> LoadNode(PageId id) const;
  Status StoreNode(const Node& node) const;

  struct SplitResult {
    bool split = false;
    PageId new_page = kInvalidPageId;
    Rect new_mbr;
    Rect old_mbr;
  };
  Result<SplitResult> InsertRec(PageId page, const Rect& rect, uint64_t value,
                                uint32_t level);
  /// Quadratic split of an overflowing entry list into two groups.
  static void QuadraticSplit(std::vector<Entry>& all, std::vector<Entry>* left,
                             std::vector<Entry>* right);
  static Rect Mbr(const std::vector<Entry>& entries);

  Status CheckRec(PageId page, uint32_t depth) const;

  BufferPool* pool_;
  FileDirectory* alloc_;
  PageId meta_page_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;
  uint64_t entries_ = 0;
};

}  // namespace mood
