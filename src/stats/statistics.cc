#include "stats/statistics.h"

#include <unordered_set>

#include "stats/sketch.h"

namespace mood {

Status StatisticsManager::Collect(const std::string& class_name) {
  Catalog* catalog = objects_->catalog();
  MOOD_ASSIGN_OR_RETURN(auto attrs, catalog->AllAttributes(class_name));

  ClassStats cls;
  MOOD_ASSIGN_OR_RETURN(cls.cardinality, objects_->ExtentCount(class_name, false));
  MOOD_ASSIGN_OR_RETURN(cls.nbpages, objects_->ExtentPages(class_name));

  struct AttrAcc {
    uint64_t notnull = 0;
    DistinctSketch distinct;  // over encoded values
    std::vector<double> values;  // numeric values, feed the histogram
    double max_val = -1e308;
    double min_val = 1e308;
    bool numeric = true;
    bool is_atomic = false;
  };
  struct RefAcc {
    uint64_t links = 0;              // total references
    uint64_t notnull = 0;
    std::unordered_set<uint64_t> targets;  // distinct referenced oids
    std::string target_class;
  };
  std::vector<AttrAcc> attr_acc(attrs.size());
  std::vector<RefAcc> ref_acc(attrs.size());
  for (size_t i = 0; i < attrs.size(); i++) {
    auto k = attrs[i].type->kind();
    attr_acc[i].is_atomic = (k == ConstructorKind::kBasic);
    if (k == ConstructorKind::kReference) {
      ref_acc[i].target_class = attrs[i].type->referenced_class();
    } else if ((k == ConstructorKind::kSet || k == ConstructorKind::kList) &&
               attrs[i].type->element()->kind() == ConstructorKind::kReference) {
      ref_acc[i].target_class = attrs[i].type->element()->referenced_class();
    }
  }

  uint64_t count = 0;
  uint64_t total_bytes = 0;
  MOOD_RETURN_IF_ERROR(objects_->ScanExtent(
      class_name, false, {}, [&](Oid, const MoodValue& tuple) {
        count++;
        std::string enc;
        tuple.EncodeTo(&enc);
        total_bytes += enc.size();
        for (size_t i = 0; i < attrs.size() && i < tuple.size(); i++) {
          const MoodValue& v = tuple.elements()[i];
          if (v.is_null()) continue;
          if (attr_acc[i].is_atomic) {
            attr_acc[i].notnull++;
            std::string venc;
            v.EncodeTo(&venc);
            attr_acc[i].distinct.Add(venc);
            auto d = v.ToDouble();
            if (d.ok()) {
              attr_acc[i].max_val = std::max(attr_acc[i].max_val, d.value());
              attr_acc[i].min_val = std::min(attr_acc[i].min_val, d.value());
              attr_acc[i].values.push_back(d.value());
            } else {
              attr_acc[i].numeric = false;
            }
          } else if (!ref_acc[i].target_class.empty()) {
            auto note = [&](const MoodValue& r) {
              if (r.kind() == ValueKind::kReference && r.AsReference().valid()) {
                ref_acc[i].links++;
                ref_acc[i].targets.insert(r.AsReference().Pack());
              }
            };
            if (v.kind() == ValueKind::kReference) {
              ref_acc[i].notnull++;
              note(v);
            } else if (v.IsCollection()) {
              ref_acc[i].notnull++;
              for (const auto& e : v.elements()) note(e);
            }
          }
        }
        return Status::OK();
      }));

  cls.size = count == 0 ? 0 : static_cast<uint32_t>(total_bytes / count);
  classes_[class_name] = cls;

  for (size_t i = 0; i < attrs.size(); i++) {
    if (attr_acc[i].is_atomic) {
      AttributeStats s;
      s.notnull = count == 0 ? 1.0
                             : static_cast<double>(attr_acc[i].notnull) /
                                   static_cast<double>(count);
      s.dist = attr_acc[i].distinct.Estimate();
      s.has_range = attr_acc[i].numeric && attr_acc[i].notnull > 0;
      if (s.has_range) {
        s.max_val = attr_acc[i].max_val;
        s.min_val = attr_acc[i].min_val;
        if (histogram_buckets_ > 0 && !attr_acc[i].values.empty()) {
          s.histogram = std::make_shared<const EquiDepthHistogram>(
              EquiDepthHistogram::Build(std::move(attr_acc[i].values),
                                        histogram_buckets_));
        }
      }
      attributes_[{class_name, attrs[i].name}] = s;
    } else if (!ref_acc[i].target_class.empty()) {
      ReferenceStats s;
      s.target_class = ref_acc[i].target_class;
      s.fan = count == 0 ? 0.0
                         : static_cast<double>(ref_acc[i].links) /
                               static_cast<double>(count);
      s.totref = ref_acc[i].targets.size();
      references_[{class_name, attrs[i].name}] = s;
    }
  }

  CollectEpochs ep;
  ep.schema_epoch = catalog->schema_epoch();
  if (ExtentEpoch(class_name, &ep.file, &ep.write_epoch)) {
    collected_[class_name] = ep;
  }
  BumpPlansVersion();
  return Status::OK();
}

void StatisticsManager::Configure(size_t histogram_buckets,
                                  const FeedbackOptions& feedback) {
  histogram_buckets_ = histogram_buckets;
  feedback_opts_ = feedback;
  feedback_.Configure(feedback);
}

bool StatisticsManager::ExtentEpoch(const std::string& cls, uint16_t* file,
                                    uint64_t* write_epoch) const {
  auto type = objects_->catalog()->Lookup(cls);
  if (!type.ok()) return false;
  *file = static_cast<uint16_t>(type.value()->extent_file);
  *write_epoch = objects_->WriteEpochOf(*file);
  return true;
}

void StatisticsManager::RecordFeedback(const std::string& sig,
                                       double selectivity,
                                       const std::string& cls) {
  uint16_t file = 0;
  uint64_t write_epoch = 0;
  if (!ExtentEpoch(cls, &file, &write_epoch)) return;
  feedback_.Record(sig, selectivity, objects_->catalog()->schema_epoch(), file,
                   write_epoch);
  if (feedback_writes_) feedback_writes_->Add();
  BumpPlansVersion();
}

bool StatisticsManager::LookupFeedback(const std::string& sig,
                                       const std::string& cls,
                                       double* selectivity) {
  uint16_t file = 0;
  uint64_t write_epoch = 0;
  if (!ExtentEpoch(cls, &file, &write_epoch)) return false;
  const uint64_t before = feedback_.invalidations();
  const bool hit = feedback_.Lookup(sig, objects_->catalog()->schema_epoch(),
                                    file, write_epoch, selectivity);
  const uint64_t dropped = feedback_.invalidations() - before;
  if (dropped > 0 && feedback_invalidations_) feedback_invalidations_->Add(dropped);
  if (hit && feedback_hits_) feedback_hits_->Add();
  return hit;
}

void StatisticsManager::MaybeAutoRefresh(const std::string& cls) {
  auto it = collected_.find(cls);
  if (it == collected_.end()) return;  // injected stats: never auto-refresh
  uint16_t file = 0;
  uint64_t write_epoch = 0;
  if (!ExtentEpoch(cls, &file, &write_epoch)) return;
  const uint64_t schema = objects_->catalog()->schema_epoch();
  const uint64_t churn = write_epoch >= it->second.write_epoch
                             ? write_epoch - it->second.write_epoch
                             : 0;
  if (schema == it->second.schema_epoch &&
      churn <= feedback_opts_.refresh_epoch_delta) {
    return;
  }
  if (Collect(cls).ok() && refreshes_) refreshes_->Add();
}

Result<ClassStats> StatisticsManager::Class(const std::string& cls) const {
  auto it = classes_.find(cls);
  if (it == classes_.end()) {
    return Status::NotFound("no statistics for class '" + cls + "'");
  }
  return it->second;
}

Result<AttributeStats> StatisticsManager::Attribute(const std::string& cls,
                                                    const std::string& attr) const {
  auto it = attributes_.find({cls, attr});
  if (it == attributes_.end()) {
    return Status::NotFound("no statistics for " + cls + "." + attr);
  }
  return it->second;
}

Result<ReferenceStats> StatisticsManager::Reference(const std::string& cls,
                                                    const std::string& attr) const {
  auto it = references_.find({cls, attr});
  if (it == references_.end()) {
    return Status::NotFound("no reference statistics for " + cls + "." + attr);
  }
  return it->second;
}

Result<double> StatisticsManager::TotLinks(const std::string& cls,
                                           const std::string& attr) const {
  MOOD_ASSIGN_OR_RETURN(ReferenceStats ref, Reference(cls, attr));
  MOOD_ASSIGN_OR_RETURN(ClassStats c, Class(cls));
  return ref.fan * static_cast<double>(c.cardinality);
}

Result<double> StatisticsManager::HitPrb(const std::string& cls,
                                         const std::string& attr) const {
  MOOD_ASSIGN_OR_RETURN(ReferenceStats ref, Reference(cls, attr));
  MOOD_ASSIGN_OR_RETURN(ClassStats d, Class(ref.target_class));
  if (d.cardinality == 0) return 0.0;
  return static_cast<double>(ref.totref) / static_cast<double>(d.cardinality);
}

std::vector<std::string> StatisticsManager::Classes() const {
  std::vector<std::string> out;
  for (const auto& [name, s] : classes_) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, std::string>>
StatisticsManager::ReferenceAttributes() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, s] : references_) out.push_back(key);
  return out;
}

std::vector<std::pair<std::string, std::string>>
StatisticsManager::AtomicAttributes() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, s] : attributes_) out.push_back(key);
  return out;
}

}  // namespace mood
