#include "stats/feedback.h"

namespace mood {

namespace {
void RunningMean(double* mean, uint64_t* n, double sample) {
  *n += 1;
  *mean += (sample - *mean) / static_cast<double>(*n);
}
}  // namespace

void CostCalibration::AddPage(double ms_per_page) {
  std::lock_guard<std::mutex> lock(mu_);
  RunningMean(&page_ms_, &pages_, ms_per_page);
}

void CostCalibration::AddDeref(double ms_per_deref) {
  std::lock_guard<std::mutex> lock(mu_);
  RunningMean(&deref_ms_, &derefs_, ms_per_deref);
}

void CostCalibration::AddPredicate(double ms_per_predicate) {
  std::lock_guard<std::mutex> lock(mu_);
  RunningMean(&pred_ms_, &preds_, ms_per_predicate);
}

bool CostCalibration::Valid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_ > 0 && derefs_ > 0;
}

double CostCalibration::MsPerPage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_ms_;
}

double CostCalibration::MsPerDeref() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deref_ms_;
}

double CostCalibration::MsPerPredicate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pred_ms_;
}

void CostCalibration::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  page_ms_ = deref_ms_ = pred_ms_ = 0;
  pages_ = derefs_ = preds_ = 0;
}

void FeedbackStore::Configure(const FeedbackOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_ = opts;
  while (lru_.size() > opts_.max_entries && !lru_.empty()) {
    index_.erase(lru_.back().sig);
    lru_.pop_back();
  }
}

void FeedbackStore::Record(const std::string& sig, double selectivity,
                           uint64_t schema_epoch, uint16_t file,
                           uint64_t write_epoch) {
  if (opts_.max_entries == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sig);
  if (it != index_.end()) {
    it->second->entry = Entry{selectivity, schema_epoch, write_epoch, file};
    Touch(it->second);
    return;
  }
  lru_.push_front(Node{sig, Entry{selectivity, schema_epoch, write_epoch, file}});
  index_[sig] = lru_.begin();
  if (lru_.size() > opts_.max_entries) {
    index_.erase(lru_.back().sig);
    lru_.pop_back();
  }
}

bool FeedbackStore::Lookup(const std::string& sig, uint64_t cur_schema_epoch,
                           uint16_t file, uint64_t cur_write_epoch,
                           double* selectivity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sig);
  if (it == index_.end()) return false;
  const Entry& e = it->second->entry;
  const uint64_t churn =
      cur_write_epoch >= e.write_epoch ? cur_write_epoch - e.write_epoch : 0;
  if (e.schema_epoch != cur_schema_epoch || e.file != file ||
      churn > opts_.refresh_epoch_delta) {
    lru_.erase(it->second);
    index_.erase(it);
    invalidations_++;
    return false;
  }
  Touch(it->second);
  *selectivity = e.selectivity;
  return true;
}

void FeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t FeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void FeedbackStore::Touch(std::list<Node>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

}  // namespace mood
