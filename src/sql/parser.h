#pragma once

#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace mood {

/// Hand-written recursive-descent parser for MOODSQL (Section 3.1 grammar plus
/// the DDL shown in the paper's examples and the update statements MoodView
/// issues).
class Parser {
 public:
  /// Parses one statement (an optional trailing ';' is consumed).
  static Result<Statement> Parse(const std::string& sql);

  /// Parses a script of ';'-separated statements.
  static Result<std::vector<Statement>> ParseScript(const std::string& sql);

  /// Parses a standalone expression (used by the kernel's interpreted method
  /// fallback on `return <expr>;` bodies).
  static Result<ExprPtr> ParseExpression(const std::string& text);

 private:
  Parser(std::vector<Token> tokens, const std::string* source)
      : tokens_(std::move(tokens)), source_(source) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKeyword(const std::string& kw) const;
  bool Match(TokenType t);
  bool MatchKeyword(const std::string& kw);
  Status Expect(TokenType t, const std::string& what);
  Status ExpectKeyword(const std::string& kw);
  Result<std::string> ExpectIdentifier(const std::string& what);

  Result<Statement> ParseStatement();
  Result<SelectStmt> ParseSelect();
  Result<ExplainStmt> ParseExplain();
  Result<Statement> ParseCreate();
  Result<CreateClassStmt> ParseCreateClass();
  Result<CreateIndexStmt> ParseCreateIndex(bool unique);
  Result<NewObjectStmt> ParseNew();
  Result<UpdateStmt> ParseUpdate();
  Result<DeleteStmt> ParseDelete();
  Result<Statement> ParseDrop();
  Result<AnalyzeStmt> ParseAnalyze();
  Result<CreateMatViewStmt> ParseCreateMatView();

  Result<FromEntry> ParseFromEntry();
  Result<TypeDescPtr> ParseType();
  Result<MoodsFunction> ParseMethodDecl();

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParsePathFrom(std::string first);

  std::vector<Token> tokens_;
  const std::string* source_ = nullptr;  // for CREATE MATERIALIZED VIEW text capture
  size_t pos_ = 0;
  uint32_t param_counter_ = 0;  // `?` placeholders numbered left to right
};

}  // namespace mood
