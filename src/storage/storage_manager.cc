#include "storage/storage_manager.h"

#include "common/coding.h"
#include "obs/metrics.h"

namespace mood {

namespace {

void EncodeDirEntry(char* p, const FileInfo& info) {
  EncodeFixed32(p, info.id);
  EncodeFixed32(p + 4, info.first_page);
  EncodeFixed32(p + 8, info.last_page);
  EncodeFixed32(p + 12, info.page_count);
  EncodeFixed64(p + 16, info.record_count);
}

FileInfo DecodeDirEntry(const char* p) {
  FileInfo info;
  info.id = DecodeFixed32(p);
  info.first_page = DecodeFixed32(p + 4);
  info.last_page = DecodeFixed32(p + 8);
  info.page_count = DecodeFixed32(p + 12);
  info.record_count = DecodeFixed64(p + 16);
  return info;
}

}  // namespace

StorageManager::~StorageManager() {
  if (is_open()) Close();
}

Status StorageManager::Open(const std::string& path, const StorageOptions& options) {
  if (is_open()) return Status::InvalidArgument("StorageManager already open");
  disk_ = std::make_unique<DiskManager>();
  MOOD_RETURN_IF_ERROR(disk_->Open(path));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options.pool_pages, options.pool_shards);
  pool_->set_readahead(options.readahead_pages);
  tolerate_torn_pages_ = options.tolerate_torn_pages;
  if (disk_->num_pages() == 0) {
    // Fresh database: format the first directory page.
    MOOD_ASSIGN_OR_RETURN(Page* page, pool_->NewPage());
    PageGuard guard(pool_.get(), page);
    guard.MarkDirty();
    EncodeFixed64(page->data(), kInvalidLsn);
    EncodeFixed32(page->data() + 8, kInvalidPageId);
    EncodeFixed32(page->data() + 12, 0);
    last_dir_page_ = page->page_id();
    return Status::OK();
  }
  return LoadDirectory();
}

Status StorageManager::Close() {
  if (!is_open()) return Status::OK();
  MOOD_RETURN_IF_ERROR(Checkpoint());
  files_.clear();
  dir_slots_.clear();
  pool_.reset();
  MOOD_RETURN_IF_ERROR(disk_->Close());
  disk_.reset();
  next_file_id_ = 1;
  last_dir_page_ = kInvalidPageId;
  return Status::OK();
}

Status StorageManager::Checkpoint() {
  MOOD_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_->Sync();
}

Status StorageManager::ReloadDirectory() {
  files_.clear();
  dir_slots_.clear();
  next_file_id_ = 1;
  last_dir_page_ = kInvalidPageId;
  return LoadDirectory();
}

Status StorageManager::LoadDirectory() {
  PageId dir = 0;
  while (dir != kInvalidPageId) {
    Page* page = nullptr;
    if (tolerate_torn_pages_) {
      // A torn directory page comes back zeroed (count 0, next 0 → treated as
      // end-of-chain below); redo restores it, then ReloadDirectory re-reads.
      bool corrupted = false;
      MOOD_ASSIGN_OR_RETURN(page, pool_->FetchPageTolerant(dir, &corrupted));
    } else {
      MOOD_ASSIGN_OR_RETURN(page, pool_->FetchPage(dir));
    }
    PageGuard guard(pool_.get(), page);
    uint32_t count = DecodeFixed32(page->data() + 12);
    if (count > kDirCapacity) return Status::Corruption("directory entry count");
    for (uint32_t i = 0; i < count; i++) {
      FileInfo info = DecodeDirEntry(page->data() + kDirHeader + i * kDirEntrySize);
      dir_slots_[info.id] = DirSlot{dir, i};
      files_[info.id] = std::make_unique<HeapFile>(pool_.get(), this, info);
      if (info.id >= next_file_id_) next_file_id_ = info.id + 1;
    }
    last_dir_page_ = dir;
    PageId next = DecodeFixed32(page->data() + 8);
    // Page 0 is always the directory head, so a next pointer of 0 can only come
    // from an unformatted (crashed-before-flush) page: treat it as the end. The
    // WAL replay restores the real chain, after which ReloadDirectory() is
    // called.
    if (next == 0 || next == dir) next = kInvalidPageId;
    dir = next;
  }
  return Status::OK();
}

Status StorageManager::WriteDirEntry(const FileInfo& info, const DirSlot& slot,
                                     PageWriteLogger* wal) {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(slot.dir_page));
  PageGuard guard(pool_.get(), page);
  guard.MarkDirty();
  std::string before;
  if (wal != nullptr) before.assign(page->data(), kPageSize);
  EncodeDirEntry(page->data() + kDirHeader + slot.index * kDirEntrySize, info);
  if (wal != nullptr) {
    MOOD_ASSIGN_OR_RETURN(Lsn lsn,
                          wal->LogPageWrite(page->page_id(), Slice(before.data(), kPageSize),
                                            Slice(page->data(), kPageSize)));
    EncodeFixed64(page->data(), lsn);
  }
  return Status::OK();
}

Status StorageManager::AppendDirEntry(const FileInfo& info, PageWriteLogger* wal,
                                      DirSlot* out) {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(last_dir_page_));
  PageGuard guard(pool_.get(), page);
  guard.MarkDirty();
  uint32_t count = DecodeFixed32(page->data() + 12);
  if (count >= kDirCapacity) {
    // Chain a new directory page.
    MOOD_ASSIGN_OR_RETURN(Page* fresh, pool_->NewPage());
    PageGuard fresh_guard(pool_.get(), fresh);
    fresh_guard.MarkDirty();
    EncodeFixed64(fresh->data(), kInvalidLsn);
    EncodeFixed32(fresh->data() + 8, kInvalidPageId);
    EncodeFixed32(fresh->data() + 12, 0);
    std::string before;
    if (wal != nullptr) before.assign(page->data(), kPageSize);
    EncodeFixed32(page->data() + 8, fresh->page_id());
    if (wal != nullptr) {
      MOOD_ASSIGN_OR_RETURN(Lsn lsn,
                            wal->LogPageWrite(page->page_id(), Slice(before.data(), kPageSize),
                                              Slice(page->data(), kPageSize)));
      EncodeFixed64(page->data(), lsn);
    }
    last_dir_page_ = fresh->page_id();
    guard.Release();
    fresh_guard.Release();
    return AppendDirEntry(info, wal, out);
  }
  std::string before;
  if (wal != nullptr) before.assign(page->data(), kPageSize);
  EncodeDirEntry(page->data() + kDirHeader + count * kDirEntrySize, info);
  EncodeFixed32(page->data() + 12, count + 1);
  if (wal != nullptr) {
    MOOD_ASSIGN_OR_RETURN(Lsn lsn,
                          wal->LogPageWrite(page->page_id(), Slice(before.data(), kPageSize),
                                            Slice(page->data(), kPageSize)));
    EncodeFixed64(page->data(), lsn);
  }
  *out = DirSlot{page->page_id(), count};
  return Status::OK();
}

Result<FileId> StorageManager::CreateFile(PageWriteLogger* wal) {
  if (!is_open()) return Status::InvalidArgument("storage not open");
  FileInfo info;
  info.id = next_file_id_++;
  DirSlot slot;
  MOOD_RETURN_IF_ERROR(AppendDirEntry(info, wal, &slot));
  dir_slots_[info.id] = slot;
  files_[info.id] = std::make_unique<HeapFile>(pool_.get(), this, info);
  return info.id;
}

Result<HeapFile*> StorageManager::GetFile(FileId id) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no heap file with id " + std::to_string(id));
  }
  return it->second.get();
}

Status StorageManager::UpdateFileInfo(const FileInfo& info, PageWriteLogger* wal) {
  auto it = dir_slots_.find(info.id);
  if (it == dir_slots_.end()) return Status::NotFound("file not in directory");
  return WriteDirEntry(info, it->second, wal);
}

Result<PageId> StorageManager::AllocatePage() {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->NewPage());
  PageId id = page->page_id();
  MOOD_RETURN_IF_ERROR(pool_->UnpinPage(id, true));
  return id;
}

void StorageManager::RegisterMetrics(MetricsRegistry* registry) {
  pool_->RegisterMetrics(registry);
  registry->RegisterProbe(
      "storage", [this](std::vector<std::pair<std::string, double>>* out) {
        uint64_t pages = 0, records = 0;
        HeapFile::OpStats ops;
        for (const auto& [id, file] : files_) {
          pages += file->page_count();
          records += file->record_count();
          HeapFile::OpStats s = file->op_stats();
          ops.inserts += s.inserts;
          ops.updates += s.updates;
          ops.deletes += s.deletes;
          ops.record_reads += s.record_reads;
          ops.forward_chases += s.forward_chases;
          ops.scan_pages += s.scan_pages;
        }
        out->emplace_back("storage.files", static_cast<double>(files_.size()));
        out->emplace_back("storage.pages", static_cast<double>(pages));
        out->emplace_back("storage.records", static_cast<double>(records));
        out->emplace_back("storage.inserts", static_cast<double>(ops.inserts));
        out->emplace_back("storage.updates", static_cast<double>(ops.updates));
        out->emplace_back("storage.deletes", static_cast<double>(ops.deletes));
        out->emplace_back("storage.record_reads",
                          static_cast<double>(ops.record_reads));
        out->emplace_back("storage.forward_chases",
                          static_cast<double>(ops.forward_chases));
        out->emplace_back("storage.scan_pages",
                          static_cast<double>(ops.scan_pages));
        const DiskStats& disk = disk_->stats();
        out->emplace_back("storage.disk_reads", static_cast<double>(disk.reads));
        out->emplace_back("storage.disk_writes", static_cast<double>(disk.writes));
        out->emplace_back("storage.checksum_failures",
                          static_cast<double>(disk.checksum_failures));
      });
}

}  // namespace mood
