#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/session.h"
#include "net/client.h"
#include "net/server.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using net::ClientOptions;
using net::MoodClient;
using net::MoodServer;
using net::ServerOptions;
using net::WirePrepared;
using net::WireResult;
using testing::TempDir;

double MetricOf(Database* db, const std::string& name) {
  return db->metrics()->Snapshot().ValueOf(name, -1);
}

class NetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(db_.ExecuteScript("CREATE CLASS Acc TUPLE (id Integer, val Integer);")
                       .status());
    for (int i = 0; i < 8; i++) {
      MOOD_ASSERT_OK(
          db_.Execute("NEW Acc <" + std::to_string(i) + ", 0>").status());
    }
  }
  void TearDown() override { server_.Stop(); }

  void StartServer(ServerOptions opts = {}) {
    MOOD_ASSERT_OK(server_.Start(&db_, opts));
    ASSERT_NE(server_.port(), 0);
  }
  void ConnectClient(MoodClient* c) {
    MOOD_ASSERT_OK(c->Connect("127.0.0.1", server_.port()));
  }

  TempDir dir_;
  Database db_;
  MoodServer server_;
};

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST_F(NetFixture, ExecuteRoundTripsQueriesDdlAndDml) {
  StartServer();
  MoodClient c;
  ConnectClient(&c);
  EXPECT_GT(c.session_id(), 0u);

  MOOD_ASSERT_OK_AND_ASSIGN(WireResult qr,
                            c.Execute("SELECT a.id, a.val FROM Acc a"));
  EXPECT_EQ(qr.columns.size(), 2u);
  ASSERT_EQ(qr.rows.size(), 8u);
  EXPECT_EQ(qr.rows[0][1].AsInteger(), 0);
  EXPECT_EQ(qr.fetch_round_trips, 0u);

  MOOD_ASSERT_OK_AND_ASSIGN(WireResult up, c.Execute("UPDATE Acc a SET val = 7"));
  EXPECT_EQ(up.affected, 8u);

  MOOD_ASSERT_OK_AND_ASSIGN(
      WireResult made, c.Execute("NEW Acc <100, 7>"));
  EXPECT_TRUE(made.created_oid.has_value());

  MOOD_ASSERT_OK_AND_ASSIGN(WireResult ddl,
                            c.Execute("CREATE CLASS Side TUPLE (x Integer)"));
  EXPECT_GT(ddl.schema_epoch, 0u);

  // The server-side state is the database's state.
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult local,
                            db_.Query("SELECT a.val FROM Acc a"));
  EXPECT_EQ(local.rows.size(), 9u);
  for (const auto& row : local.rows) EXPECT_EQ(row[0].AsInteger(), 7);
}

/// Server errors come back as the original numeric StatusCode, not as a string
/// guess (the stable-wire-codes satellite).
TEST_F(NetFixture, ErrorFramesRoundTripStatusCodes) {
  StartServer();
  MoodClient c;
  ConnectClient(&c);

  // The wire code must equal whatever the engine reports locally.
  Status local_parse = db_.Execute("SELEKT nonsense").status();
  ASSERT_FALSE(local_parse.ok());
  auto parse_err = c.Execute("SELEKT nonsense");
  ASSERT_FALSE(parse_err.ok());
  EXPECT_EQ(parse_err.status().code(), local_parse.code());

  auto missing = c.Execute("SELECT z.q FROM NoSuchClass z");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  Status bad_opt = c.SetOption("no_such_option", 1);
  ASSERT_FALSE(bad_opt.ok());
  EXPECT_EQ(bad_opt.code(), StatusCode::kInvalidArgument);

  // The connection survives errors: the next statement works.
  MOOD_ASSERT_OK(c.Execute("SELECT a.id FROM Acc a").status());
}

TEST_F(NetFixture, PreparedStatementsBindOverTheWire) {
  StartServer();
  MoodClient c;
  ConnectClient(&c);
  MOOD_ASSERT_OK_AND_ASSIGN(
      WirePrepared ps, c.Prepare("SELECT a.id FROM Acc a WHERE a.val = ?"));
  EXPECT_EQ(ps.param_count, 1u);

  MOOD_ASSERT_OK_AND_ASSIGN(WireResult hit,
                            c.ExecutePrepared(ps, {MoodValue::Integer(0)}));
  EXPECT_EQ(hit.rows.size(), 8u);
  MOOD_ASSERT_OK_AND_ASSIGN(WireResult miss,
                            c.ExecutePrepared(ps, {MoodValue::Integer(42)}));
  EXPECT_TRUE(miss.rows.empty());

  // Param-count mismatch is client-side; unknown ids are server-side.
  EXPECT_FALSE(c.ExecutePrepared(ps, {}).ok());
  MOOD_ASSERT_OK(c.ClosePrepared(ps));
  auto closed = c.ExecutePrepared(ps, {MoodValue::Integer(0)});
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kInvalidArgument);
}

/// chunk_rows forces kResultSet to carry a cursor; the client folds kFetch
/// rounds until the cursor drains and still yields the full result.
TEST_F(NetFixture, ChunkedResultsFoldViaFetch) {
  StartServer();
  MoodClient c;
  ConnectClient(&c);
  MOOD_ASSERT_OK_AND_ASSIGN(
      WireResult qr, c.Execute("SELECT a.id FROM Acc a", /*deadline_ms=*/0,
                               /*chunk_rows=*/3));
  EXPECT_EQ(qr.rows.size(), 8u);
  EXPECT_GE(qr.fetch_round_trips, 1u);

  // Session-default chunking via SetOption behaves the same.
  MOOD_ASSERT_OK(c.SetOption("chunk_rows", 2));
  MOOD_ASSERT_OK_AND_ASSIGN(WireResult qr2, c.Execute("SELECT a.id FROM Acc a"));
  EXPECT_EQ(qr2.rows.size(), 8u);
  EXPECT_GE(qr2.fetch_round_trips, 1u);
}

// ---------------------------------------------------------------------------
// Transactions and snapshots over the wire
// ---------------------------------------------------------------------------

TEST_F(NetFixture, WireTransactionsCommitAndAbort) {
  StartServer();
  MoodClient c;
  ConnectClient(&c);

  MOOD_ASSERT_OK(c.Begin());
  MOOD_ASSERT_OK(c.Execute("UPDATE Acc a SET val = 5").status());
  MOOD_ASSERT_OK(c.Abort());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult after_abort,
                            db_.Query("SELECT a.val FROM Acc a"));
  for (const auto& row : after_abort.rows) EXPECT_EQ(row[0].AsInteger(), 0);

  MOOD_ASSERT_OK(c.Begin());
  MOOD_ASSERT_OK(c.Execute("UPDATE Acc a SET val = 5").status());
  MOOD_ASSERT_OK(c.Commit());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult after_commit,
                            db_.Query("SELECT a.val FROM Acc a"));
  for (const auto& row : after_commit.rows) EXPECT_EQ(row[0].AsInteger(), 5);

  EXPECT_FALSE(c.Commit().ok());  // no open transaction
}

TEST_F(NetFixture, WireSnapshotPinsAcrossAnotherClientsCommit) {
  StartServer();
  MoodClient reader, writer;
  ConnectClient(&reader);
  ConnectClient(&writer);

  MOOD_ASSERT_OK(reader.BeginSnapshot());
  MOOD_ASSERT_OK_AND_ASSIGN(WireResult before,
                            reader.Execute("SELECT a.val FROM Acc a"));
  EXPECT_EQ(before.rows[0][0].AsInteger(), 0);

  MOOD_ASSERT_OK(writer.Begin());
  MOOD_ASSERT_OK(writer.Execute("UPDATE Acc a SET val = a.val + 1").status());
  MOOD_ASSERT_OK(writer.Commit());

  MOOD_ASSERT_OK_AND_ASSIGN(WireResult pinned,
                            reader.Execute("SELECT a.val FROM Acc a"));
  for (const auto& row : pinned.rows) EXPECT_EQ(row[0].AsInteger(), 0);
  // Writes on a pinned session bounce with a typed error.
  auto rejected = reader.Execute("UPDATE Acc a SET val = 9");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  MOOD_ASSERT_OK(reader.EndSnapshot());
  MOOD_ASSERT_OK_AND_ASSIGN(WireResult latest,
                            reader.Execute("SELECT a.val FROM Acc a"));
  for (const auto& row : latest.rows) EXPECT_EQ(row[0].AsInteger(), 1);
}

// ---------------------------------------------------------------------------
// Session reaping
// ---------------------------------------------------------------------------

/// A client killed mid-flight (socket closed with a transaction open and a
/// request just sent, reply never read) must not wedge the database: the
/// server reaps the connection, destroying its session, which aborts the
/// transaction and frees its locks for other clients.
TEST_F(NetFixture, KilledClientMidQueryIsReapedAndItsLocksFreed) {
  StartServer();
  {
    // Raw doomed connection so we can vanish with replies unread.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    // Pipeline handshake + BEGIN + a lock-taking UPDATE + one more query, then
    // slam the socket shut without reading a single reply: the server is still
    // executing when the peer dies.
    std::string burst, p;
    PutFixed32(&p, net::kProtocolVersion);
    net::AppendFrame(&burst, net::FrameType::kHello, p);
    net::AppendFrame(&burst, net::FrameType::kBegin, {});
    p.clear();
    PutFixed32(&p, 0);
    PutFixed32(&p, 0);
    PutLengthPrefixedSlice(&p, "UPDATE Acc a SET val = 99");
    net::AppendFrame(&burst, net::FrameType::kExecute, p);
    p.clear();
    PutFixed32(&p, 0);
    PutFixed32(&p, 0);
    PutLengthPrefixedSlice(&p, "SELECT a.id FROM Acc a");
    net::AppendFrame(&burst, net::FrameType::kExecute, p);
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));
    ::close(fd);
  }
  // The doomed session held the extent X lock. Another client's write must go
  // through once the server notices the dead peer (EOF on next epoll round).
  MoodClient c;
  ConnectClient(&c);
  Status up = Status::Unavailable("not tried");
  for (int attempt = 0; attempt < 50; attempt++) {
    up = c.Execute("UPDATE Acc a SET val = 1").status();
    if (up.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  MOOD_ASSERT_OK(up);
  // The abort rolled the doomed write back before ours applied.
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult qr, db_.Query("SELECT a.val FROM Acc a"));
  for (const auto& row : qr.rows) EXPECT_EQ(row[0].AsInteger(), 1);
}

/// Idle connections past the timeout are reaped: the session dies server-side
/// and the client's next call fails cleanly.
TEST_F(NetFixture, IdleSessionsAreReaped) {
  ServerOptions opts;
  opts.idle_timeout_ms = 100;
  StartServer(opts);
  MoodClient c;
  ConnectClient(&c);
  MOOD_ASSERT_OK(c.Execute("SELECT a.id FROM Acc a").status());

  // Go quiet past the timeout (the reaper ticks at 500ms) and the next call
  // must find the connection gone. No polling: polling resets the idle clock.
  Status st = Status::OK();
  for (int attempt = 0; attempt < 30 && st.ok(); attempt++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    st = c.Execute("SELECT a.id FROM Acc a").status();
  }
  EXPECT_FALSE(st.ok()) << "connection was never reaped";
  EXPECT_GE(MetricOf(&db_, "net.sessions_reaped"), 1.0);
}

// ---------------------------------------------------------------------------
// Protocol discipline
// ---------------------------------------------------------------------------

/// Raw socket, no handshake: the first non-Hello frame gets a typed error.
TEST_F(NetFixture, RequestsBeforeHandshakeAreRejected) {
  StartServer();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string frame, payload;
  PutFixed32(&payload, 0);
  PutFixed32(&payload, 0);
  PutLengthPrefixedSlice(&payload, "SELECT a.id FROM Acc a");
  net::AppendFrame(&frame, net::FrameType::kExecute, payload);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  std::string in;
  net::Frame reply;
  Status ferr;
  char buf[4096];
  while (!net::ExtractFrame(&in, &reply, net::kDefaultMaxFrameBytes, &ferr)) {
    ASSERT_TRUE(ferr.ok());
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    in.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(reply.type, net::FrameType::kError);
  Slice p(reply.payload);
  uint32_t code = 0;
  MOOD_ASSERT_OK(net::GetU32(&p, &code));
  EXPECT_EQ(code, static_cast<uint32_t>(StatusCode::kInvalidArgument));
  ::close(fd);
}

/// Many clients with pipelined traffic: everyone gets their own answers.
TEST_F(NetFixture, ConcurrentClientsSeeConsistentSnapshots) {
  StartServer();
  constexpr int kClients = 6;
  std::atomic<size_t> torn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      MoodClient c;
      if (!c.Connect("127.0.0.1", server_.port()).ok()) {
        torn.fetch_add(1);
        return;
      }
      if (t == 0) {
        // One writer commits increments; the rest read consistent states.
        for (int round = 0; round < 10; round++) {
          if (!c.Begin().ok()) continue;
          if (c.Execute("UPDATE Acc a SET val = a.val + 1").ok()) {
            (void)c.Commit();
          } else {
            (void)c.Abort();
          }
        }
        return;
      }
      for (int i = 0; i < 25; i++) {
        auto qr = c.Execute("SELECT a.val FROM Acc a");
        if (!qr.ok() || qr.value().rows.size() != 8u) {
          torn.fetch_add(1);
          continue;
        }
        int32_t common = qr.value().rows[0][0].AsInteger();
        for (const auto& row : qr.value().rows) {
          if (row[0].AsInteger() != common) torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace mood
