#include "optimizer/feedback.h"

#include <algorithm>
#include <string>
#include <vector>

namespace mood {

namespace {

/// Class whose extent epoch keys the feedback entry: the leftmost scan leaf of
/// the subtree (the root variable's class for a path chain).
const std::string* LeafClass(const PlanNode* plan) {
  while (plan != nullptr) {
    if (plan->op == PlanOp::kBindClass || plan->op == PlanOp::kIndexSelect) {
      return &plan->from.class_name;
    }
    if (plan->child) {
      plan = plan->child.get();
    } else if (plan->left) {
      plan = plan->left.get();
    } else if (!plan->children.empty()) {
      plan = plan->children[0].get();
    } else {
      return nullptr;
    }
  }
  return nullptr;
}

struct Walker {
  StatisticsManager* stats;
  size_t recorded = 0;

  void Visit(const PlanNode* plan, const QueryProfile* prof) {
    // Children of a profiled node mirror the plan node's children one-for-one
    // (Executor::Exec adds a child per Describe() label), but execution order
    // depends on the join strategy — pair by label, first unused match.
    std::vector<const PlanNode*> kids;
    if (plan->child) kids.push_back(plan->child.get());
    if (plan->left) kids.push_back(plan->left.get());
    if (plan->right) kids.push_back(plan->right.get());
    for (const auto& c : plan->children) kids.push_back(c.get());

    std::vector<const QueryProfile*> paired(kids.size(), nullptr);
    std::vector<bool> used(prof->children.size(), false);
    for (size_t i = 0; i < kids.size(); i++) {
      const std::string want = kids[i]->Describe();
      for (size_t j = 0; j < prof->children.size(); j++) {
        if (!used[j] && prof->children[j]->label == want) {
          paired[i] = prof->children[j].get();
          used[j] = true;
          break;
        }
      }
    }

    // Observed selectivity: rows_out over the stamped base (or this node's
    // input when no base was stamped — a single-predicate filter).
    if (!plan->feedback_sig.empty()) {
      double base = plan->feedback_base_rows > 0
                        ? plan->feedback_base_rows
                        : static_cast<double>(prof->rows_in);
      if (base > 0) {
        const double observed = std::clamp(
            std::max(static_cast<double>(prof->rows_out), 0.5) / base, 0.0, 1.0);
        if (const std::string* cls = LeafClass(plan)) {
          stats->RecordFeedback(plan->feedback_sig, observed, *cls);
          recorded++;
        }
      }
    }

    // Cost calibration samples.
    const double excl_ms =
        prof->wall_ns > prof->ChildWallNs()
            ? static_cast<double>(prof->wall_ns - prof->ChildWallNs()) / 1e6
            : 0.0;
    switch (plan->op) {
      case PlanOp::kBindClass:
        if (plan->feedback_pages > 0 && prof->rows_out > 0 && prof->wall_ns > 0) {
          stats->calibration().AddPage(static_cast<double>(prof->wall_ns) / 1e6 /
                                       static_cast<double>(plan->feedback_pages));
        }
        break;
      case PlanOp::kFilter:
        if (prof->rows_in > 0 && excl_ms > 0 && !plan->predicates.empty()) {
          stats->calibration().AddPredicate(
              excl_ms / (static_cast<double>(prof->rows_in) *
                         static_cast<double>(plan->predicates.size())));
        }
        break;
      case PlanOp::kPointerJoin: {
        // One dereference per left-input row per hop of the chased path.
        const QueryProfile* left = paired.empty() ? nullptr : paired[0];
        const double hops = std::max<size_t>(1, plan->ref_path.size());
        if (left != nullptr && left->rows_out > 0 && excl_ms > 0) {
          stats->calibration().AddDeref(
              excl_ms / (static_cast<double>(left->rows_out) * hops));
        }
        break;
      }
      default:
        break;
    }

    for (size_t i = 0; i < kids.size(); i++) {
      if (paired[i] != nullptr) Visit(kids[i], paired[i]);
    }
  }
};

}  // namespace

size_t AbsorbProfile(const QueryOptimizer::Optimized& optimized,
                     const QueryProfile& root, StatisticsManager* stats) {
  if (optimized.plan == nullptr || stats == nullptr) return 0;
  Walker w{stats};
  const std::string want = optimized.plan->Describe();
  if (root.label == want) {
    w.Visit(optimized.plan.get(), &root);
    // Calibration samples move cost constants even when no selectivity was
    // recorded; make sure cached plans notice either way.
    stats->BumpPlansVersion();
    return w.recorded;
  }
  // The profile root is the RESULT node; the plan root is one of its children
  // (next to Finish stages such as PROJECT or ORDER BY).
  for (const auto& c : root.children) {
    if (c->label == want) {
      w.Visit(optimized.plan.get(), c.get());
      stats->BumpPlansVersion();
      return w.recorded;
    }
  }
  return 0;
}

}  // namespace mood
