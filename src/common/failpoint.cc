#include "common/failpoint.h"

#include <cstdlib>

namespace mood {

std::atomic<int> FailPoints::armed_count_{0};

FailPoints& FailPoints::Instance() {
  static FailPoints instance;
  return instance;
}

FailPoints::FailPoints() {
  const char* env = std::getenv("MOOD_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string all(env);
  size_t pos = 0;
  while (pos < all.size()) {
    size_t comma = all.find(',', pos);
    if (comma == std::string::npos) comma = all.size();
    std::string entry = all.substr(pos, comma - pos);
    size_t eq = entry.find('=');
    if (eq != std::string::npos) {
      // Malformed env entries are ignored rather than failing process start.
      (void)Arm(entry.substr(0, eq), entry.substr(eq + 1));
    }
    pos = comma + 1;
  }
}

Status FailPoints::Arm(const std::string& name, const std::string& spec) {
  std::string mode_str = spec;
  uint64_t trigger_at = 1;
  size_t at = spec.find('@');
  if (at != std::string::npos) {
    mode_str = spec.substr(0, at);
    char* end = nullptr;
    trigger_at = std::strtoull(spec.c_str() + at + 1, &end, 10);
    if (end == nullptr || *end != '\0' || trigger_at == 0) {
      return Status::InvalidArgument("failpoint spec '" + spec +
                                     "': trigger count must be a positive integer");
    }
  }
  Point p;
  p.trigger_at = trigger_at;
  if (mode_str == "error") {
    p.mode = FailPointMode::kError;
  } else if (mode_str == "torn") {
    p.mode = FailPointMode::kTorn;
  } else if (mode_str == "crash") {
    p.mode = FailPointMode::kCrash;
  } else if (mode_str == "torn-crash") {
    p.mode = FailPointMode::kTornCrash;
  } else {
    return Status::InvalidArgument("failpoint spec '" + spec +
                                   "': mode must be error|torn|crash|torn-crash");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, existing] : points_) {
    if (n == name) {
      existing = p;
      return Status::OK();
    }
  }
  points_.emplace_back(name, p);
  armed_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void FailPoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    if (it->first == name) {
      points_.erase(it);
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void FailPoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

std::optional<FailPointAction> FailPoints::Check(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, p] : points_) {
    if (n != name) continue;
    p.hits++;
    if (p.hits < p.trigger_at) return std::nullopt;
    return FailPointAction{p.mode};
  }
  return std::nullopt;
}

uint64_t FailPoints::Hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, p] : points_) {
    if (n == name) return p.hits;
  }
  return 0;
}

}  // namespace mood
