#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <thread>
#include <vector>

#include "storage/storage_manager.h"
#include "tests/test_util.h"
#include "txn/lock_manager.h"
#include "txn/log_manager.h"
#include "txn/transaction.h"

namespace mood {
namespace {

using testing::TempDir;

TEST(LogManagerTest, AppendFlushReadAll) {
  TempDir dir;
  LogManager log;
  MOOD_ASSERT_OK(log.Open(dir.Path("wal")));
  MOOD_ASSERT_OK(log.AppendBegin(1).status());
  std::string before(kPageSize, 'b');
  std::string after(kPageSize, 'a');
  MOOD_ASSERT_OK(log.AppendPageWrite(1, 7, before, after).status());
  MOOD_ASSERT_OK(log.AppendCommit(1).status());
  MOOD_ASSERT_OK(log.Flush());
  std::vector<LogRecord> records;
  MOOD_ASSERT_OK(log.ReadAll(&records));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, LogRecordType::kBegin);
  EXPECT_EQ(records[1].type, LogRecordType::kPageWrite);
  EXPECT_EQ(records[1].page_id, 7u);
  EXPECT_EQ(records[1].before, before);
  EXPECT_EQ(records[1].after, after);
  EXPECT_EQ(records[2].type, LogRecordType::kCommit);
  EXPECT_LT(records[0].lsn, records[1].lsn);
  EXPECT_LT(records[1].lsn, records[2].lsn);
}

TEST(LogManagerTest, LsnsSurviveReopen) {
  TempDir dir;
  Lsn last = 0;
  {
    LogManager log;
    MOOD_ASSERT_OK(log.Open(dir.Path("wal")));
    MOOD_ASSERT_OK_AND_ASSIGN(last, log.AppendBegin(1));
    MOOD_ASSERT_OK(log.Flush());
  }
  LogManager log;
  MOOD_ASSERT_OK(log.Open(dir.Path("wal")));
  MOOD_ASSERT_OK_AND_ASSIGN(Lsn next, log.AppendBegin(2));
  EXPECT_GT(next, last);
}

TEST(LogManagerTest, TornTailIsIgnored) {
  TempDir dir;
  {
    LogManager log;
    MOOD_ASSERT_OK(log.Open(dir.Path("wal")));
    MOOD_ASSERT_OK(log.AppendBegin(1).status());
    MOOD_ASSERT_OK(log.AppendCommit(1).status());
    MOOD_ASSERT_OK(log.Flush());
  }
  // Simulate a torn write: append garbage length prefix.
  {
    FILE* f = fopen(dir.Path("wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t bogus_len = 100000;
    fwrite(&bogus_len, sizeof(bogus_len), 1, f);
    fwrite("junk", 4, 1, f);
    fclose(f);
  }
  LogManager log;
  MOOD_ASSERT_OK(log.Open(dir.Path("wal")));
  std::vector<LogRecord> records;
  MOOD_ASSERT_OK(log.ReadAll(&records));
  EXPECT_EQ(records.size(), 2u);
}

TEST(LogManagerTest, CommitsAfterTornTailRecoverySurviveSecondRecovery) {
  TempDir dir;
  const std::string path = dir.Path("wal");
  {
    LogManager log;
    MOOD_ASSERT_OK(log.Open(path));
    MOOD_ASSERT_OK(log.AppendBegin(1).status());
    MOOD_ASSERT_OK(log.AppendCommit(1).status());
    MOOD_ASSERT_OK(log.Flush());
  }
  // Crash 1: a torn write leaves garbage at the tail.
  {
    FILE* f = fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t bogus_len = 100000;
    fwrite(&bogus_len, sizeof(bogus_len), 1, f);
    fwrite("junk", 4, 1, f);
    fclose(f);
  }
  struct stat st_torn;
  ASSERT_EQ(::stat(path.c_str(), &st_torn), 0);
  // Recovery 1 must physically truncate the torn tail so the records appended
  // below land contiguously after the valid prefix, not behind the garbage.
  {
    LogManager log;
    MOOD_ASSERT_OK(log.Open(path));
    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    EXPECT_LT(st.st_size, st_torn.st_size);
    MOOD_ASSERT_OK(log.AppendBegin(2).status());
    MOOD_ASSERT_OK(log.AppendCommit(2).status());
    MOOD_ASSERT_OK(log.Flush());
  }
  // Crash 2 (before any checkpoint): recovery 2 must still see txn 2 — the
  // commit acknowledged as durable after the first recovery cannot vanish.
  LogManager log;
  MOOD_ASSERT_OK(log.Open(path));
  std::vector<LogRecord> records;
  MOOD_ASSERT_OK(log.ReadAll(&records));
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[2].txn_id, 2u);
  EXPECT_EQ(records[2].type, LogRecordType::kBegin);
  EXPECT_EQ(records[3].txn_id, 2u);
  EXPECT_EQ(records[3].type, LogRecordType::kCommit);
}

TEST(LogManagerTest, TruncateEmptiesLog) {
  TempDir dir;
  LogManager log;
  MOOD_ASSERT_OK(log.Open(dir.Path("wal")));
  MOOD_ASSERT_OK(log.AppendBegin(1).status());
  MOOD_ASSERT_OK(log.Flush());
  MOOD_ASSERT_OK(log.Truncate());
  std::vector<LogRecord> records;
  MOOD_ASSERT_OK(log.ReadAll(&records));
  EXPECT_TRUE(records.empty());
}

class TxnFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(storage_.Open(dir_.Path("db")));
    MOOD_ASSERT_OK(log_.Open(dir_.Path("wal")));
    txns_ = std::make_unique<TransactionManager>(storage_.buffer_pool(), &log_,
                                                 &locks_);
    MOOD_ASSERT_OK_AND_ASSIGN(FileId fid, storage_.CreateFile());
    MOOD_ASSERT_OK_AND_ASSIGN(file_, storage_.GetFile(fid));
    file_id_ = fid;
  }
  TempDir dir_;
  StorageManager storage_;
  LogManager log_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> txns_;
  HeapFile* file_ = nullptr;
  FileId file_id_ = kInvalidFileId;
};

TEST_F(TxnFixture, CommitMakesChangesDurable) {
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * txn, txns_->Begin());
  MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert("committed", txn));
  MOOD_ASSERT_OK(txns_->Commit(txn));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file_->Get(rid));
  EXPECT_EQ(rec, "committed");
}

TEST_F(TxnFixture, AbortRollsBackInBuffer) {
  MOOD_ASSERT_OK_AND_ASSIGN(RecordId keep, file_->Insert("keep"));
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * txn, txns_->Begin());
  MOOD_ASSERT_OK(file_->Update(keep, "clobbered", txn));
  MOOD_ASSERT_OK(txns_->Abort(txn));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file_->Get(keep));
  EXPECT_EQ(rec, "keep");
}

TEST_F(TxnFixture, WriteAfterCommitRejected) {
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * txn, txns_->Begin());
  MOOD_ASSERT_OK(txns_->Commit(txn));
  std::string img(kPageSize, 'x');
  EXPECT_TRUE(txn->LogPageWrite(0, img, img).status().IsTxnAborted());
}

TEST_F(TxnFixture, RecoveryRedoesCommittedAndUndoesLosers) {
  // Committed insert, then a loser update that reaches disk (steal).
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * t1, txns_->Begin());
  MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert("v1", t1));
  MOOD_ASSERT_OK(txns_->Commit(t1));

  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * t2, txns_->Begin());
  MOOD_ASSERT_OK(file_->Update(rid, "v2-uncommitted", t2));
  // Force the dirty page to disk before the crash (steal policy).
  MOOD_ASSERT_OK(storage_.buffer_pool()->FlushAll());
  // Crash: no commit/abort for t2; reopen the storage from disk.
  MOOD_ASSERT_OK(log_.Flush());
  std::string path = dir_.Path("db");
  // Simulate restart: new storage manager + recovery.
  StorageManager restarted;
  MOOD_ASSERT_OK(restarted.Open(path));
  RecoveryManager recovery(restarted.buffer_pool(), &log_);
  MOOD_ASSERT_OK_AND_ASSIGN(auto report, recovery.Recover());
  EXPECT_GE(report.undo_applied, 1u);
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, restarted.GetFile(file_id_));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file->Get(rid));
  EXPECT_EQ(rec, "v1");
}

TEST_F(TxnFixture, RecoveryRedoesCommittedChangesLostFromBuffer) {
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * t1, txns_->Begin());
  MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert("durable", t1));
  MOOD_ASSERT_OK(txns_->Commit(t1));
  // Crash WITHOUT flushing data pages: only the log survives. Open the disk
  // file fresh (old StorageManager's buffer contents are dropped).
  StorageManager restarted;
  MOOD_ASSERT_OK(restarted.Open(dir_.Path("db")));
  RecoveryManager recovery(restarted.buffer_pool(), &log_);
  MOOD_ASSERT_OK_AND_ASSIGN(auto report, recovery.Recover());
  EXPECT_GE(report.redo_applied, 1u);
  MOOD_ASSERT_OK(restarted.ReloadDirectory());
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, restarted.GetFile(file_id_));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file->Get(rid));
  EXPECT_EQ(rec, "durable");
}

TEST_F(TxnFixture, RecoveryIsIdempotent) {
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * t1, txns_->Begin());
  MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert("idem", t1));
  MOOD_ASSERT_OK(txns_->Commit(t1));
  StorageManager restarted;
  MOOD_ASSERT_OK(restarted.Open(dir_.Path("db")));
  RecoveryManager recovery(restarted.buffer_pool(), &log_);
  MOOD_ASSERT_OK(recovery.Recover().status());
  MOOD_ASSERT_OK(recovery.Recover().status());  // run twice
  MOOD_ASSERT_OK(restarted.ReloadDirectory());
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, restarted.GetFile(file_id_));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file->Get(rid));
  EXPECT_EQ(rec, "idem");
}

TEST_F(TxnFixture, AbortRestoresBeforeImagesAcrossPages) {
  // Seed enough ~1 KiB records to span several pages, capture their values,
  // then mutate every one of them inside a single transaction and abort.
  std::vector<RecordId> rids;
  for (int i = 0; i < 24; i++) {
    std::string payload = "orig-" + std::to_string(i) + std::string(1000, 'o');
    MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert(payload));
    rids.push_back(rid);
  }
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * txn, txns_->Begin());
  for (int i = 0; i < 24; i++) {
    MOOD_ASSERT_OK(file_->Update(
        rids[i], "clob-" + std::to_string(i) + std::string(1000, 'c'), txn));
  }
  // Steal: push some of the partially-mutated pages to disk mid-transaction.
  MOOD_ASSERT_OK(storage_.buffer_pool()->FlushAll());
  MOOD_ASSERT_OK(txns_->Abort(txn));
  for (int i = 0; i < 24; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file_->Get(rids[i]));
    EXPECT_EQ(rec, "orig-" + std::to_string(i) + std::string(1000, 'o'))
        << "record " << i;
  }
}

TEST_F(TxnFixture, DoubleReplayYieldsByteIdenticalPages) {
  // A committed multi-page history followed by a loser, lost from the buffer.
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * t1, txns_->Begin());
  std::vector<RecordId> rids;
  for (int i = 0; i < 12; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(
        RecordId rid, file_->Insert("r" + std::to_string(i) + std::string(900, 'd'), t1));
    rids.push_back(rid);
  }
  MOOD_ASSERT_OK(txns_->Commit(t1));
  MOOD_ASSERT_OK_AND_ASSIGN(Transaction * t2, txns_->Begin());
  MOOD_ASSERT_OK(file_->Update(rids[0], std::string(900, 'L'), t2));
  MOOD_ASSERT_OK(storage_.buffer_pool()->FlushAll());
  MOOD_ASSERT_OK(log_.Flush());

  auto replay_and_snapshot = [&]() -> std::string {
    StorageManager restarted;
    MOOD_EXPECT_OK(restarted.Open(dir_.Path("db")));
    RecoveryManager recovery(restarted.buffer_pool(), &log_);
    MOOD_EXPECT_OK(recovery.Recover().status());
    MOOD_EXPECT_OK(restarted.buffer_pool()->FlushAll());
    MOOD_EXPECT_OK(restarted.disk()->Sync());
    std::ifstream in(dir_.Path("db"), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  std::string first = replay_and_snapshot();
  std::string second = replay_and_snapshot();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "second replay changed on-disk page bytes";
}

TEST_F(TxnFixture, MidLogCorruptionStopsReplayAtTornRecord) {
  MOOD_ASSERT_OK(log_.AppendBegin(1).status());
  MOOD_ASSERT_OK(log_.AppendCommit(1).status());
  MOOD_ASSERT_OK(log_.AppendBegin(2).status());
  MOOD_ASSERT_OK(log_.AppendCommit(2).status());
  MOOD_ASSERT_OK(log_.Flush());
  // Flip a byte inside the third record's body: its CRC no longer matches, so
  // the scan must treat it as the torn tail and surface only the first two.
  off_t third_off;
  {
    std::vector<LogRecord> all;
    MOOD_ASSERT_OK(log_.ReadAll(&all));
    ASSERT_EQ(all.size(), 4u);
    third_off = 0;
  }
  std::string path = dir_.Path("wal");
  {
    int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    // Records are fixed-framing [len][crc][body]; the two Begin/Commit pairs
    // are identical sizes, so record 3 starts at half the file.
    off_t size = ::lseek(fd, 0, SEEK_END);
    third_off = size / 2 + 12;  // somewhere inside record 3's body
    char b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, third_off), 1);
    b ^= 0x1;
    ASSERT_EQ(::pwrite(fd, &b, 1, third_off), 1);
    ::close(fd);
  }
  LogManager reopened;
  MOOD_ASSERT_OK(reopened.Open(path));
  std::vector<LogRecord> records;
  MOOD_ASSERT_OK(reopened.ReadAll(&records));
  EXPECT_EQ(records.size(), 2u) << "scan must stop at the corrupt record";
}

TEST(GroupCommitTest, ConcurrentCommittersShareFsyncs) {
  TempDir dir;
  StorageManager storage;
  MOOD_ASSERT_OK(storage.Open(dir.Path("db")));
  LogManager log;
  WalOptions wopts;
  wopts.fsync_mode = WalFsync::kGroup;
  wopts.group_commit_window_us = 200;
  MOOD_ASSERT_OK(log.Open(dir.Path("wal"), wopts));
  LockManager locks;
  TransactionManager txns(storage.buffer_pool(), &log, &locks);
  MOOD_ASSERT_OK_AND_ASSIGN(FileId fid, storage.CreateFile());
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetFile(fid));

  constexpr int kThreads = 8;
  constexpr int kCommitsEach = 12;
  std::atomic<int> committed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kCommitsEach; i++) {
        auto txn = txns.Begin();
        if (!txn.ok()) return;
        std::string payload = "w" + std::to_string(t) + "-" + std::to_string(i);
        if (!file->Insert(payload, txn.value()).ok()) return;
        if (!txns.Commit(txn.value()).ok()) return;
        committed.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(committed.load(), kThreads * kCommitsEach);
  // Every commit is durable once Commit returns...
  EXPECT_GE(log.durable_lsn(), log.last_lsn());
  // ...but committers shared fsyncs: strictly fewer syncs than commits shows
  // batching happened (the window is generous relative to commit latency).
  EXPECT_LE(log.fsyncs(), static_cast<uint64_t>(kThreads * kCommitsEach));
  EXPECT_GT(log.group_commit_batches(), 0u);
  MOOD_ASSERT_OK(log.Close());
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  LockKey key{1, 100};
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kShared));
  MOOD_ASSERT_OK(lm.Acquire(2, key, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, key, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, key, LockMode::kShared));
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.LockedResourceCount(), 0u);
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  LockKey key{1, 100};
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kExclusive));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status st = lm.Acquire(2, key, LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st.ToString();
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReentrantAcquireIsNoop) {
  LockManager lm;
  LockKey key{1, 5};
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kExclusive));
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kExclusive));
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kShared));  // weaker: still ok
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, UpgradeSharedToExclusive) {
  LockManager lm;
  LockKey key{1, 5};
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kShared));
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, key, LockMode::kExclusive));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager lm;
  LockKey a{1, 1}, b{1, 2};
  MOOD_ASSERT_OK(lm.Acquire(1, a, LockMode::kExclusive));
  MOOD_ASSERT_OK(lm.Acquire(2, b, LockMode::kExclusive));
  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    Status st = lm.Acquire(1, b, LockMode::kExclusive);  // waits for txn 2
    if (st.IsDeadlock()) deadlocks++;
    if (st.ok()) lm.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread t2([&] {
    Status st = lm.Acquire(2, a, LockMode::kExclusive);  // completes the cycle
    if (st.IsDeadlock()) deadlocks++;
    if (st.ok()) lm.ReleaseAll(2);
  });
  t2.join();
  lm.ReleaseAll(2);
  t1.join();
  lm.ReleaseAll(1);
  EXPECT_GE(deadlocks.load(), 1);
}

TEST(LockManagerTest, ReleaseWakesFifoWaiters) {
  LockManager lm;
  LockKey key{2, 9};
  MOOD_ASSERT_OK(lm.Acquire(1, key, LockMode::kExclusive));
  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> threads;
  for (int i = 2; i <= 4; i++) {
    threads.emplace_back([&, i] {
      MOOD_EXPECT_OK(lm.Acquire(static_cast<uint64_t>(i), key, LockMode::kShared));
      {
        std::lock_guard<std::mutex> g(order_mu);
        order.push_back(i);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  lm.ReleaseAll(1);
  for (auto& t : threads) t.join();
  EXPECT_EQ(order.size(), 3u);  // all shared waiters granted together
  for (int i = 2; i <= 4; i++) lm.ReleaseAll(static_cast<uint64_t>(i));
}

}  // namespace
}  // namespace mood
