#include "core/paper_example.h"

#include "common/random.h"

namespace mood::paperdb {

Status CreatePaperSchema(Database* db) {
  const char* ddl = R"SQL(
CREATE CLASS VehicleEngine
  TUPLE (
    size Integer,
    cylinders Integer
  );

CREATE CLASS VehicleDriveTrain
  TUPLE (
    engine REFERENCE (VehicleEngine),
    transmission String(32)
  );

CREATE CLASS Employee
  TUPLE (
    ssno Integer,
    name String(32),
    age Integer
  );

CREATE CLASS Company
  TUPLE (
    name String(32),
    location String(32),
    president REFERENCE (Employee)
  );

CREATE CLASS Vehicle
  TUPLE (
    id Integer,
    weight Integer,
    drivetrain REFERENCE (VehicleDriveTrain),
    company REFERENCE (Company)
  )
  METHODS:
    lbweight () Integer;

CREATE CLASS Automobile
  INHERITS FROM Vehicle;

CREATE CLASS JapaneseAuto
  INHERITS FROM Automobile;
)SQL";
  MOOD_RETURN_IF_ERROR(db->ExecuteScript(ddl).status());
  // int Vehicle::lbweight() { return weight * 2.2075; } — stored as processed
  // source; interpreted by the kernel fallback, or overridable with a compiled
  // body via RegisterMethod.
  MOOD_RETURN_IF_ERROR(db->catalog()->UpdateFunctionBody(
      "Vehicle", "lbweight", "{ return weight * 2.2075; }"));
  return Status::OK();
}

void InstallPaperStatistics(StatisticsManager* stats) {
  // Table 13.
  stats->SetClassStats("Vehicle", ClassStats{20000, 2000, 400});
  stats->SetClassStats("VehicleDriveTrain", ClassStats{10000, 750, 300});
  stats->SetClassStats("VehicleEngine", ClassStats{10000, 5000, 2000});
  stats->SetClassStats("Company", ClassStats{200000, 2500, 500});

  // Table 14.
  {
    AttributeStats cyl;
    cyl.dist = 16;
    cyl.max_val = 32;
    cyl.min_val = 2;
    cyl.has_range = true;
    stats->SetAttributeStats("VehicleEngine", "cylinders", cyl);
    AttributeStats name;
    name.dist = 200000;
    name.has_range = false;
    stats->SetAttributeStats("Company", "name", name);
  }

  // Table 15 (fan / totref; totlinks and hitprb are derived).
  stats->SetReferenceStats("Vehicle", "drivetrain",
                           ReferenceStats{"VehicleDriveTrain", 1.0, 10000});
  stats->SetReferenceStats("Vehicle", "company",
                           ReferenceStats{"Company", 1.0, 20000});
  stats->SetReferenceStats("VehicleDriveTrain", "engine",
                           ReferenceStats{"VehicleEngine", 1.0, 10000});
}

Result<PopulateReport> PopulatePaperData(Database* db, uint64_t scale, uint64_t seed) {
  Random rng(seed);
  PopulateReport report;
  ObjectManager* om = db->objects();

  const uint64_t n_engines = std::max<uint64_t>(1, scale / 2);
  const uint64_t n_drivetrains = std::max<uint64_t>(1, scale / 2);
  const uint64_t n_companies = std::max<uint64_t>(1, scale * 10);
  const uint64_t n_employees = std::max<uint64_t>(1, scale / 4);

  std::vector<Oid> engines, drivetrains, companies, employees;
  for (uint64_t i = 0; i < n_engines; i++) {
    // cylinders: 16 distinct even values in [2, 32] (Table 14).
    int32_t cyl = static_cast<int32_t>(2 + 2 * rng.Uniform(16));
    MOOD_ASSIGN_OR_RETURN(
        Oid oid, om->CreateObject("VehicleEngine",
                                  MoodValue::Tuple({MoodValue::Integer(
                                                        static_cast<int32_t>(1000 + i)),
                                                    MoodValue::Integer(cyl)})));
    engines.push_back(oid);
    report.engines++;
  }
  for (uint64_t i = 0; i < n_drivetrains; i++) {
    const char* trans = rng.OneIn(2) ? "AUTOMATIC" : "MANUAL";
    MOOD_ASSIGN_OR_RETURN(
        Oid oid,
        om->CreateObject("VehicleDriveTrain",
                         MoodValue::Tuple(
                             {MoodValue::Reference(engines[rng.Uniform(engines.size())]),
                              MoodValue::String(trans)})));
    drivetrains.push_back(oid);
    report.drivetrains++;
  }
  for (uint64_t i = 0; i < n_employees; i++) {
    MOOD_ASSIGN_OR_RETURN(
        Oid oid,
        om->CreateObject("Employee",
                         MoodValue::Tuple({MoodValue::Integer(static_cast<int32_t>(i)),
                                           MoodValue::String("emp" + std::to_string(i)),
                                           MoodValue::Integer(static_cast<int32_t>(
                                               25 + rng.Uniform(40)))})));
    employees.push_back(oid);
    report.employees++;
  }
  for (uint64_t i = 0; i < n_companies; i++) {
    // Unique names (dist == |Company| in Table 14). Company 0 is 'BMW' so the
    // Example 8.1 literal matches exactly one company.
    std::string name = i == 0 ? "BMW" : "company" + std::to_string(i);
    MOOD_ASSIGN_OR_RETURN(
        Oid oid,
        om->CreateObject(
            "Company",
            MoodValue::Tuple({MoodValue::String(name),
                              MoodValue::String("city" + std::to_string(i % 50)),
                              MoodValue::Reference(
                                  employees[rng.Uniform(employees.size())])})));
    companies.push_back(oid);
    report.companies++;
  }
  // Vehicles reference ~10% of the companies (hitprb = 0.1 in Table 15).
  const uint64_t company_pool = std::max<uint64_t>(1, n_companies / 10);
  for (uint64_t i = 0; i < scale; i++) {
    MoodValue tuple = MoodValue::Tuple(
        {MoodValue::Integer(static_cast<int32_t>(i)),
         MoodValue::Integer(static_cast<int32_t>(800 + rng.Uniform(2000))),
         MoodValue::Reference(drivetrains[rng.Uniform(drivetrains.size())]),
         MoodValue::Reference(companies[rng.Uniform(company_pool)])});
    // One third plain vehicles, one third automobiles, one third Japanese autos
    // (exercising the EVERY / minus semantics).
    const char* cls = (i % 3 == 0) ? "Vehicle" : (i % 3 == 1) ? "Automobile"
                                                              : "JapaneseAuto";
    MOOD_RETURN_IF_ERROR(om->CreateObject(cls, std::move(tuple)).status());
    report.vehicles++;
    if (i % 3 == 1) report.automobiles++;
    if (i % 3 == 2) report.japanese_autos++;
  }
  return report;
}

}  // namespace mood::paperdb
