#include <gtest/gtest.h>

#include <atomic>
#include <regex>
#include <sstream>
#include <thread>

#include "core/database.h"
#include "core/paper_example.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

// ---------------------------------------------------------------------------
// MetricsRegistry unit behavior
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry reg;
  MetricCounter* c = reg.Counter("test.count");
  c->Add(3);
  c->Add(2);
  EXPECT_EQ(c->value(), 5u);
  // Same name returns the same instrument.
  EXPECT_EQ(reg.Counter("test.count"), c);

  MetricGauge* g = reg.Gauge("test.gauge");
  g->Set(10);
  g->Add(5);
  g->Sub(3);
  EXPECT_EQ(g->value(), 12);

  MetricHistogram* h = reg.Histogram("test.lat");
  h->Record(1);
  h->Record(100);
  h->Record(100000);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 100101u);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.ValueOf("test.count", -1), 5);
  EXPECT_DOUBLE_EQ(snap.ValueOf("test.gauge", -1), 12);
  EXPECT_DOUBLE_EQ(snap.ValueOf("test.lat.count", -1), 3);
  EXPECT_DOUBLE_EQ(snap.ValueOf("test.lat.sum", -1), 100101);
  EXPECT_TRUE(snap.Has("test.lat.p99"));
  // Snapshots are sorted by name so exports are diffable.
  for (size_t i = 1; i < snap.values.size(); i++) {
    EXPECT_LT(snap.values[i - 1].first, snap.values[i].first);
  }
  // Text/JSON exports carry every entry.
  std::string text = snap.ToText();
  std::string json = snap.ToJson();
  EXPECT_NE(text.find("test.count"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\""), std::string::npos);
}

TEST(MetricsRegistry, ProbesFoldIntoSnapshot) {
  MetricsRegistry reg;
  reg.RegisterProbe("widget", [](std::vector<std::pair<std::string, double>>* out) {
    out->emplace_back("widget.live", 7);
  });
  EXPECT_DOUBLE_EQ(reg.Snapshot().ValueOf("widget.live", -1), 7);
  reg.UnregisterProbe("widget");
  EXPECT_FALSE(reg.Snapshot().Has("widget.live"));
}

// Concurrent instrument lookup, updates and snapshots must not tear or race.
TEST(MetricsRegistry, SnapshotHammer) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([&reg, &go, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kIters; i++) {
        reg.Counter("hammer.c" + std::to_string(t % 4))->Add(1);
        reg.Histogram("hammer.h")->Record(static_cast<uint64_t>(i));
        if (i % 64 == 0) {
          MetricsSnapshot snap = reg.Snapshot();
          EXPECT_GE(snap.ValueOf("hammer.h.count", 0), 0);
        }
      }
    });
  }
  go.store(true);
  for (auto& w : workers) w.join();
  MetricsSnapshot snap = reg.Snapshot();
  double total = 0;
  for (int c = 0; c < 4; c++) {
    total += snap.ValueOf("hammer.c" + std::to_string(c), 0);
  }
  EXPECT_DOUBLE_EQ(total, kThreads * kIters);
  EXPECT_DOUBLE_EQ(snap.ValueOf("hammer.h.count", 0), kThreads * kIters);
}

// ---------------------------------------------------------------------------
// Engine wiring: component probes and invariants over a real workload
// ---------------------------------------------------------------------------

class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.slow_query_ms = 0.000001;  // everything is "slow"
    options.slow_query_log_size = 4;
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood"), options));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 80));
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
};

TEST_F(ObsFixture, BufferPoolInvariantHitsPlusMissesIsFetches) {
  MOOD_ASSERT_OK(db_.Query(paperdb::kExample81Query).status());
  MetricsSnapshot snap = db_.metrics()->Snapshot();
  double hits = snap.ValueOf("bufferpool.hits", -1);
  double misses = snap.ValueOf("bufferpool.misses", -1);
  double fetches = snap.ValueOf("bufferpool.fetches", -1);
  EXPECT_GE(hits, 0);
  EXPECT_GE(misses, 0);
  EXPECT_GT(fetches, 0);
  EXPECT_DOUBLE_EQ(fetches, hits + misses);
  // Per-shard counters sum to the totals.
  double shard_hits = 0, shard_misses = 0;
  size_t shards = static_cast<size_t>(snap.ValueOf("bufferpool.shards", 0));
  ASSERT_GT(shards, 0u);
  for (size_t s = 0; s < shards; s++) {
    shard_hits += snap.ValueOf("bufferpool.shard" + std::to_string(s) + ".hits", 0);
    shard_misses +=
        snap.ValueOf("bufferpool.shard" + std::to_string(s) + ".misses", 0);
  }
  EXPECT_DOUBLE_EQ(shard_hits, hits);
  EXPECT_DOUBLE_EQ(shard_misses, misses);
}

TEST_F(ObsFixture, ComponentProbesReport) {
  MOOD_ASSERT_OK(db_.Query(paperdb::kExample81Query).status());
  MetricsSnapshot snap = db_.metrics()->Snapshot();
  EXPECT_GT(snap.ValueOf("storage.records", 0), 0);
  EXPECT_GT(snap.ValueOf("storage.record_reads", 0), 0);
  EXPECT_GT(snap.ValueOf("objects.created", 0), 0);
  EXPECT_GT(snap.ValueOf("exec.statements", 0), 0);
  EXPECT_GT(snap.ValueOf("exec.queries", 0), 0);
  EXPECT_GT(snap.ValueOf("exec.query_us.count", 0), 0);
  EXPECT_TRUE(snap.Has("funcman.cold_loads"));
  EXPECT_TRUE(snap.Has("lockman.acquires"));
  EXPECT_TRUE(snap.Has("objects.deref_cache.hits"));
}

TEST_F(ObsFixture, SlowQueryRingBuffer) {
  for (int i = 0; i < 6; i++) {
    MOOD_ASSERT_OK(db_.Query("SELECT v FROM Vehicle v").status());
  }
  std::vector<SlowQueryRecord> slow = db_.SlowQueries();
  // Ring capacity is 4; the oldest entries fell out.
  ASSERT_EQ(slow.size(), 4u);
  for (const auto& rec : slow) {
    EXPECT_EQ(rec.sql, "SELECT v FROM Vehicle v");
    EXPECT_GT(rec.elapsed_ms, 0);
    EXPECT_GT(rec.threads, 0u);
  }
  MetricsSnapshot snap = db_.metrics()->Snapshot();
  EXPECT_GE(snap.ValueOf("exec.slow_queries", 0), 6);
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

TEST_F(ObsFixture, ExplainStatementPlanOnly) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult res, db_.Execute(std::string("EXPLAIN ") + paperdb::kExample81Query));
  EXPECT_EQ(res.kind, ExecResult::Kind::kExplain);
  EXPECT_NE(res.message.find("Plan:"), std::string::npos);
  EXPECT_NE(res.message.find("cost="), std::string::npos);
  EXPECT_NE(res.message.find("rows="), std::string::npos);
  EXPECT_EQ(res.message.find("actual rows="), std::string::npos);
  EXPECT_EQ(res.profile, nullptr);
}

TEST_F(ObsFixture, ExplainAnalyzeStatementHasActuals) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult res,
      db_.Execute(std::string("EXPLAIN ANALYZE ") + paperdb::kExample81Query));
  EXPECT_EQ(res.kind, ExecResult::Kind::kExplain);
  EXPECT_NE(res.message.find("EXPLAIN ANALYZE:"), std::string::npos);
  EXPECT_NE(res.message.find("actual rows="), std::string::npos);
  EXPECT_NE(res.message.find("time="), std::string::npos);
  EXPECT_NE(res.message.find("pool hits="), std::string::npos);
  ASSERT_NE(res.profile, nullptr);
  EXPECT_EQ(res.profile->label, "RESULT");
}

// Golden shape: every plan operator line carries estimates and actuals, and
// the deterministic rendering is identical across worker-thread counts, in
// both row-at-a-time (batch_size = 0) and batched execution.
TEST_F(ObsFixture, ExplainAnalyzeGoldenShapeAndThreadDeterminism) {
  for (const char* sql : {paperdb::kExample81Query, paperdb::kExample82Query}) {
    for (size_t batch : {size_t{0}, size_t{1024}}) {
      QueryProfile::RenderOptions stable;
      stable.timing = false;
      stable.buffer = false;
      std::string baseline;
      for (size_t threads : {1u, 2u, 8u}) {
        ExplainOptions options;
        options.analyze = true;
        // Feedback writeback would change the plan between profiled runs;
        // this test is about render determinism, not plan evolution.
        options.query.feedback = false;
        options.query.exec_threads = threads;
        options.query.batch_size = batch;
        MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult res, db_.Explain(sql, options));
        ASSERT_TRUE(res.analyzed);
        ASSERT_NE(res.profile, nullptr);
        // Optimizer temp-variable names (_tN) come from a counter that advances
        // across queries; normalize them so only real shape differences count.
        std::string rendered = std::regex_replace(res.profile->Render(stable),
                                                  std::regex("_t[0-9]+"), "_t#");
        // Each operator line pairs (est ...) with (actual ...); the batches=
        // field appears only in batch mode (row-mode renderings are unchanged).
        size_t lines = 0;
        bool saw_batches = false;
        std::istringstream in(rendered);
        std::string line;
        while (std::getline(in, line)) {
          lines++;
          EXPECT_NE(line.find("actual rows="), std::string::npos) << line;
          if (line.find("batches=") != std::string::npos) saw_batches = true;
          if (line.find("RESULT") == std::string::npos &&
              line.find("PROJECT") == std::string::npos &&
              line.find("ORDER BY") == std::string::npos &&
              line.find("GROUP BY") == std::string::npos &&
              line.find("HAVING") == std::string::npos &&
              line.find("DISTINCT") == std::string::npos) {
            EXPECT_NE(line.find("est rows="), std::string::npos) << line;
          }
        }
        EXPECT_GE(lines, 3u) << rendered;
        EXPECT_EQ(saw_batches, batch > 0) << rendered;
        if (baseline.empty()) {
          baseline = rendered;
        } else {
          EXPECT_EQ(rendered, baseline)
              << sql << " render differs at threads=" << threads << " batch=" << batch;
        }
        // The analyzed run also returns the query's rows.
        EXPECT_EQ(res.result.rows.size(), res.profile->rows_out);
      }
    }
  }
}

TEST_F(ObsFixture, ExplainJsonFormat) {
  ExplainOptions options;
  options.analyze = true;
  options.format = ExplainOptions::Format::kJson;
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult res,
                            db_.Explain(paperdb::kExample82Query, options));
  std::string json = res.Render();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"label\":\"RESULT\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"est_rows\":"), std::string::npos);

  // Plan-only JSON renders the estimate skeleton.
  ExplainOptions plain;
  plain.format = ExplainOptions::Format::kJson;
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult res2,
                            db_.Explain(paperdb::kExample82Query, plain));
  std::string json2 = res2.Render();
  EXPECT_EQ(json2.front(), '{');
  EXPECT_NE(json2.find("\"est_cost\":"), std::string::npos);
  EXPECT_EQ(json2.find("time_ms"), std::string::npos);
}

TEST_F(ObsFixture, ConsolidatedExplainCoversLegacyShapes) {
  // The verbose rendering carries the historical "dictionaries + plan" text...
  ExplainOptions verbose;
  verbose.verbose = true;
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult res,
                            db_.Explain(paperdb::kExample81Query, verbose));
  std::string text = res.Render();
  EXPECT_NE(text.find("Plan:"), std::string::npos);
  EXPECT_NE(text.find("PathSelInfo"), std::string::npos);
  // ...and the plain result exposes the raw optimizer output.
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult plain,
                            db_.Explain(paperdb::kExample81Query, ExplainOptions{}));
  EXPECT_NE(plain.optimized.plan, nullptr);
  EXPECT_FALSE(plain.analyzed);
}

// ---------------------------------------------------------------------------
// Per-call QueryOptions and ExecResult shape
// ---------------------------------------------------------------------------

TEST_F(ObsFixture, QueryOptionsPerCallThreadsMatchDefault) {
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult base, db_.Query(paperdb::kExample81Query));
  for (size_t threads : {1u, 2u, 8u}) {
    QueryOptions options;
    options.exec_threads = threads;
    MOOD_ASSERT_OK_AND_ASSIGN(QueryResult got,
                              db_.Query(paperdb::kExample81Query, options));
    ASSERT_EQ(got.rows.size(), base.rows.size()) << "threads=" << threads;
    EXPECT_EQ(got.ToString(), base.ToString()) << "threads=" << threads;
  }
  // Disabling the deref cache per call must not change results either.
  QueryOptions nocache;
  nocache.deref_cache_entries = 0;
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult raw,
                            db_.Query(paperdb::kExample81Query, nocache));
  EXPECT_EQ(raw.ToString(), base.ToString());
}

TEST_F(ObsFixture, CollectProfileAttachesProfile) {
  QueryOptions options;
  options.collect_profile = true;
  MOOD_ASSERT_OK_AND_ASSIGN(ExecResult res,
                            db_.Execute(paperdb::kExample82Query, options));
  EXPECT_EQ(res.kind, ExecResult::Kind::kQuery);
  ASSERT_NE(res.profile, nullptr);
  EXPECT_EQ(res.profile->rows_out, res.query.rows.size());
  EXPECT_FALSE(res.profile->children.empty());
  // Off by default.
  MOOD_ASSERT_OK_AND_ASSIGN(ExecResult plain, db_.Execute(paperdb::kExample82Query));
  EXPECT_EQ(plain.profile, nullptr);
}

TEST_F(ObsFixture, CreatedOidIsOptional) {
  MOOD_ASSERT_OK_AND_ASSIGN(ExecResult sel, db_.Execute("SELECT v FROM Vehicle v"));
  EXPECT_FALSE(sel.created_oid.has_value());
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult created,
      db_.Execute("NEW Employee <998, 'Obs Person', 44>"));
  ASSERT_TRUE(created.created_oid.has_value());
  EXPECT_TRUE(created.created_oid->valid());
}

}  // namespace
}  // namespace mood
