#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "types/oid.h"

namespace mood {

/// Fixed-capacity, column-major batch of range-variable bindings: the unit of
/// work batch-at-a-time operators exchange (DESIGN.md §11). Slot `s` of row
/// `i` lives at `cols[s * capacity + i]`, so an expression reading one slot
/// streams a contiguous Oid column instead of hopping across per-row heap
/// vectors.
///
/// Liveness is a selection vector: `sel` holds live row indices in ascending
/// order and is honored iff `sel_active`. Filters narrow a batch by rewriting
/// `sel`, never by copying columns; `sel_active == false` means all `nrows`
/// rows are live. Batch order plus sel order *is* the serial row order — the
/// deterministic merge contract for batched execution rests on it.
struct RowBatch {
  size_t nslots = 0;
  size_t capacity = 0;
  size_t nrows = 0;
  std::vector<Oid> cols;      ///< nslots * capacity entries, column-major
  std::vector<uint32_t> sel;  ///< ascending live rows; honored iff sel_active
  bool sel_active = false;

  RowBatch() = default;
  RowBatch(size_t slots, size_t cap) { Reset(slots, cap); }

  /// Re-shapes the batch to `slots` columns of `cap` rows, dropping contents.
  void Reset(size_t slots, size_t cap);
  /// Drops rows and selection, keeping the column storage.
  void Clear();

  Oid* col(size_t s) { return cols.data() + s * capacity; }
  const Oid* col(size_t s) const { return cols.data() + s * capacity; }

  size_t ActiveRows() const { return sel_active ? sel.size() : nrows; }
  /// Row index of the k-th live row (k < ActiveRows()).
  uint32_t RowAt(size_t k) const {
    return sel_active ? sel[k] : static_cast<uint32_t>(k);
  }

  bool Full() const { return nrows == capacity; }
  /// Appends one row (row-major, `n == nslots`); the batch must not be full.
  void PushRow(const Oid* row, size_t n);
  /// Copies row `row` into `out[0..nslots)` in slot order.
  void GatherRow(uint32_t row, Oid* out) const;
};

/// A materialized operator result in batch form — the batch-mode analogue of
/// RowSet. Batches may be ragged (joins emit one run of batches per input
/// batch); the row order is batch order, then selection order within a batch.
struct BatchSet {
  std::vector<std::string> vars;
  std::vector<RowBatch> batches;

  int VarIndex(const std::string& var) const {
    for (size_t i = 0; i < vars.size(); i++) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }

  size_t ActiveRows() const;

  /// Flat (batch, row) coordinates of every live row, in row order. Joins use
  /// this to address the build side globally regardless of batch raggedness.
  std::vector<std::pair<uint32_t, uint32_t>> LiveIndex() const;
};

/// Append-side helper: packs row-major rows into fixed-capacity batches at the
/// tail of a BatchSet (opening a new batch whenever the last one fills).
class BatchAppender {
 public:
  BatchAppender(BatchSet* out, size_t nslots, size_t capacity)
      : out_(out), nslots_(nslots), capacity_(capacity == 0 ? 1 : capacity) {}

  void Push(const Oid* row, size_t n);

 private:
  BatchSet* out_;
  size_t nslots_;
  size_t capacity_;
};

}  // namespace mood
