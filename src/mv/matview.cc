#include "mv/matview.h"

#include <algorithm>
#include <functional>

#include "exec/plan_cache.h"
#include "obs/metrics.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace mood {

namespace {

/// A delta set larger than this collapses into one full refresh: re-deriving
/// that many roots one by one would cost more than re-running the view, and it
/// bounds the dirty-set memory of a write-heavy period with no reads.
constexpr size_t kMaxDeltaObjects = 4096;

}  // namespace

Status MvManager::Create(const std::string& name, const std::string& select_sql,
                         const SelectStmt& stmt) {
  if (ParamCount(stmt) > 0) {
    return Status::NotSupported(
        "materialized view definitions cannot use ? parameters");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.count(name) > 0) {
    return Status::AlreadyExists("materialized view '" + name + "' already exists");
  }
  auto v = std::make_unique<MatView>();
  v->name = name;
  v->select_sql = select_sql;
  v->normalized_sql = NormalizeSql(select_sql);
  if (v->normalized_sql.empty()) {
    return Status::InvalidArgument("view definition failed to normalize");
  }
  if (by_sql_.count(v->normalized_sql) > 0) {
    return Status::AlreadyExists(
        "another materialized view matches the same normalized query");
  }
  v->stmt = stmt;
  MOOD_RETURN_IF_ERROR(Setup(v.get()));
  MOOD_RETURN_IF_ERROR(RebuildLocked(v.get()));
  if (rebuilds_ != nullptr) rebuilds_->Add();
  by_sql_[v->normalized_sql] = v.get();
  views_[name] = std::move(v);
  ReindexDeps();
  return Status::OK();
}

Status MvManager::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no materialized view '" + name + "'");
  }
  by_sql_.erase(it->second->normalized_sql);
  views_.erase(it);
  ReindexDeps();
  return Status::OK();
}

Status MvManager::Load(const std::vector<MatViewDef>& defs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MatViewDef& d : defs) {
    MOOD_ASSIGN_OR_RETURN(Statement st, Parser::Parse(d.select_sql));
    auto* sel = std::get_if<SelectStmt>(&st);
    if (sel == nullptr) {
      return Status::Corruption("materialized view '" + d.name +
                                "' definition is not a SELECT");
    }
    auto v = std::make_unique<MatView>();
    v->name = d.name;
    v->select_sql = d.select_sql;
    v->normalized_sql = NormalizeSql(d.select_sql);
    v->stmt = std::move(*sel);
    v->needs_setup = true;  // bind + materialize lazily on first serve
    by_sql_[v->normalized_sql] = v.get();
    views_[d.name] = std::move(v);
  }
  // Dependency routing stays empty until a view's first setup; any write that
  // lands before then is covered by the initial full rebuild.
  return Status::OK();
}

void MvManager::OnWrite(uint16_t file, Oid oid) {
  if (dep_count_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_dep_.find(file);
  if (it == by_dep_.end()) return;
  for (MatView* v : it->second) {
    if (v->delta_maintainable && v->root_files.count(file) > 0) {
      v->dirty_roots.insert(oid.Pack());
      if (v->dirty_roots.size() >= kMaxDeltaObjects) {
        v->dirty_roots.clear();
        v->full_dirty = true;
      }
    } else {
      // A hop extent changed (or the view is full-refresh anyway): per-object
      // re-derivation cannot localize the affected roots.
      v->full_dirty = true;
    }
  }
}

Status MvManager::Setup(MatView* v) {
  v->schema_epoch = catalog_->schema_epoch();
  MOOD_ASSIGN_OR_RETURN(v->optimized,
                        optimizer_->Optimize(v->stmt, /*use_feedback=*/false));
  bool method_free = false;
  std::vector<TouchedExtent> extents;
  MOOD_RETURN_IF_ERROR(CollectTouchedExtents(catalog_, objects_, v->optimized.bound,
                                             &extents, &method_free));
  if (!method_free) {
    return Status::NotSupported("materialized view '" + v->name +
                                "' calls methods; dependency tracking is unsound");
  }
  v->dep_files.clear();
  for (const TouchedExtent& te : extents) v->dep_files.push_back(te.file);
  v->root_files.clear();
  v->root_var = v->stmt.from.empty() ? "" : v->stmt.from[0].var;
  if (v->stmt.from.size() == 1) {
    const FromEntry& fe = v->stmt.from[0];
    MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                          objects_->ScanClasses(fe.class_name, fe.every, fe.excludes));
    for (const std::string& cls : classes) {
      auto t = catalog_->Lookup(cls);
      if (t.ok() && t.value()->is_class && t.value()->extent_file != kInvalidFileId) {
        v->root_files.insert(static_cast<uint16_t>(t.value()->extent_file));
      }
    }
  }
  AnalyzeMaintainability(v);
  v->delta_plan = nullptr;
  if (v->delta_maintainable) {
    PlanPtr leaf = PlanNode::Bind(v->stmt.from[0]);
    v->delta_plan = v->stmt.where != nullptr
                        ? PlanNode::Filter(std::move(leaf), {v->stmt.where})
                        : std::move(leaf);
  }
  v->needs_setup = false;
  v->broken = false;
  return Status::OK();
}

void MvManager::AnalyzeMaintainability(MatView* v) {
  v->delta_maintainable = false;
  v->refusal.clear();
  const SelectStmt& stmt = v->stmt;
  // The per-root bucket model needs output rows that (a) derive from exactly
  // one root object each and (b) group by root in root-scan order. Each
  // refusal below breaks one of those properties; the view still works via
  // flagged full refresh.
  if (stmt.from.size() != 1) {
    v->refusal = "multiple range variables";
    return;
  }
  if (!stmt.group_by.empty() || stmt.having != nullptr) {
    v->refusal = "GROUP BY/HAVING aggregates across roots";
    return;
  }
  if (!stmt.order_by.empty()) {
    v->refusal = "ORDER BY reorders across roots";
    return;
  }
  if (stmt.distinct) {
    v->refusal = "DISTINCT deduplicates across roots";
    return;
  }
  // Plan shape: the root variable must come from exactly one extent-scan leaf
  // on the left-driving spine — that is the leaf delta restriction replaces.
  std::string refusal;
  int root_binds = 0;
  std::function<void(const PlanNode*, bool)> walk = [&](const PlanNode* n,
                                                        bool under_right) {
    if (n == nullptr || !refusal.empty()) return;
    switch (n->op) {
      case PlanOp::kBindClass:
        if (n->from.var == v->root_var) {
          root_binds++;
          if (under_right) refusal = "root variable is not left-driving";
        }
        return;
      case PlanOp::kIndexSelect:
        if (n->from.var == v->root_var) {
          // An index probe reflects the whole extent; restricting it to delta
          // OIDs would need per-probe compensation.
          refusal = "root variable bound by index selection";
        }
        return;
      case PlanOp::kFilter:
        walk(n->child.get(), under_right);
        return;
      case PlanOp::kPointerJoin:
      case PlanOp::kNestedLoopJoin:
        walk(n->left.get(), under_right);
        walk(n->right.get(), true);
        return;
      case PlanOp::kUnion:
        // DNF OR-terms union with cross-term dedup: output rows interleave
        // across roots in first-term-first order, not root-scan order.
        refusal = "OR predicate (UNION plan)";
        return;
    }
  };
  walk(v->optimized.plan.get(), false);
  if (refusal.empty() && root_binds != 1) {
    refusal = "root variable bound by " + std::to_string(root_binds) + " leaves";
  }
  // Self-referencing paths: a hop through the root's own extent means a root
  // write can change *other* roots' output rows, which per-root re-derivation
  // would miss.
  if (refusal.empty()) {
    Binder binder(catalog_);
    std::function<void(const ExprPtr&)> check = [&](const ExprPtr& e) {
      if (e == nullptr || !refusal.empty()) return;
      switch (e->kind) {
        case ExprKind::kLiteral:
        case ExprKind::kParameter:
          return;
        case ExprKind::kUnary:
          check(e->operand);
          return;
        case ExprKind::kBinary:
          check(e->lhs);
          check(e->rhs);
          return;
        case ExprKind::kPath: {
          auto bp = binder.ResolvePath(v->optimized.bound, *e);
          if (bp.ok()) {
            if (bp.value().fans_out) {
              // A set-valued hop makes output multiplicity per root depend on
              // the join, which the per-root maintenance plan cannot mirror.
              refusal = "set-valued path fans out";
              return;
            }
            const auto& classes = bp.value().classes;
            for (size_t i = 1; i < classes.size() && refusal.empty(); i++) {
              auto subtree = catalog_->SubtreeClasses(classes[i]);
              if (!subtree.ok()) continue;
              for (const std::string& cls : subtree.value()) {
                auto t = catalog_->Lookup(cls);
                if (t.ok() && t.value()->is_class &&
                    t.value()->extent_file != kInvalidFileId &&
                    v->root_files.count(
                        static_cast<uint16_t>(t.value()->extent_file)) > 0) {
                  refusal = "self-referencing path through the root extent";
                  break;
                }
              }
            }
          }
          for (const PathStep& step : e->steps) {
            for (const ExprPtr& a : step.args) check(a);
          }
          return;
        }
      }
    };
    for (const ExprPtr& e : stmt.projection) check(e);
    check(stmt.where);
  }
  if (!refusal.empty()) {
    v->refusal = std::move(refusal);
    return;
  }
  v->delta_maintainable = true;
}

Status MvManager::ExecuteIntoBuckets(MatView* v, const std::vector<Oid>* delta) {
  ExecOptions eo;
  eo.threads = 1;  // deltas are small; skip morsel dispatch overhead
  if (delta != nullptr) {
    eo.bind_var = &v->root_var;
    eo.bind_oids = delta;
  }
  // Deltas run the per-root maintenance plan (restricted bind + WHERE filter,
  // no hop-extent scans); the initial/full build runs the optimizer's plan.
  MOOD_ASSIGN_OR_RETURN(
      RowSet rows,
      executor_->ExecutePlan(delta != nullptr ? v->delta_plan : v->optimized.plan,
                             eo));
  int ri = rows.VarIndex(v->root_var);
  if (ri < 0) return Status::Internal("root variable missing from view row set");
  std::vector<uint64_t> roots;
  roots.reserve(rows.rows.size());
  for (const auto& r : rows.rows) roots.push_back(r[static_cast<size_t>(ri)].Pack());
  MOOD_ASSIGN_OR_RETURN(QueryResult qr,
                        executor_->FinishSelect(v->stmt, std::move(rows)));
  // No GROUP BY / DISTINCT / ORDER BY (delta-maintainable precondition), so
  // the projection maps plan rows to output rows 1:1 in order.
  if (qr.rows.size() != roots.size()) {
    return Status::Internal("view projection did not map rows 1:1");
  }
  if (delta == nullptr) v->rows_by_root.clear();
  for (size_t i = 0; i < qr.rows.size(); i++) {
    v->rows_by_root[roots[i]].push_back(std::move(qr.rows[i]));
  }
  v->columns = std::move(qr.columns);
  if (delta != nullptr && maintenance_rows_ != nullptr) {
    maintenance_rows_->Add(roots.size());
  }
  return Status::OK();
}

Status MvManager::RebuildLocked(MatView* v) {
  v->dirty_roots.clear();
  v->full_dirty = false;
  if (v->delta_maintainable) return ExecuteIntoBuckets(v, nullptr);
  ExecOptions eo;
  eo.threads = 1;
  MOOD_ASSIGN_OR_RETURN(RowSet rows, executor_->ExecutePlan(v->optimized.plan, eo));
  MOOD_ASSIGN_OR_RETURN(v->flat, executor_->FinishSelect(v->stmt, std::move(rows)));
  v->columns = v->flat.columns;
  return Status::OK();
}

Status MvManager::MaintainDeltaLocked(MatView* v) {
  std::vector<Oid> live;
  live.reserve(v->dirty_roots.size());
  for (uint64_t packed : v->dirty_roots) {
    v->rows_by_root.erase(packed);
    Oid oid = Oid::Unpack(packed);
    auto f = objects_->Fetch(oid);
    if (f.ok()) {
      live.push_back(oid);
    } else if (f.status().code() != StatusCode::kNotFound) {
      return f.status();
    }
    // NotFound: the root was deleted (or its insert aborted) — its bucket is
    // gone, which is exactly the maintained state.
  }
  v->dirty_roots.clear();
  if (live.empty()) return Status::OK();
  return ExecuteIntoBuckets(v, &live);
}

Result<MvManager::Outcome> MvManager::TryServe(
    const std::string& normalized_sql,
    const std::function<bool(const std::vector<uint16_t>&)>& fresh,
    QueryResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_sql_.find(normalized_sql);
  if (it == by_sql_.end()) return Outcome::kNoView;
  MatView* v = it->second;
  const uint64_t epoch = catalog_->schema_epoch();
  if (v->needs_setup || v->schema_epoch != epoch) {
    // DDL moved the schema (or the view was just loaded): re-bind, re-plan,
    // and rematerialize before serving anything — never serve stale rows
    // across a schema change.
    Status s = Setup(v);
    if (s.ok()) {
      ReindexDeps();
      s = RebuildLocked(v);
      if (s.ok() && rebuilds_ != nullptr) rebuilds_->Add();
    }
    if (!s.ok()) {
      // Unusable at this epoch (e.g. a base class was dropped). Stay broken
      // until the schema moves again; matching queries execute normally and
      // surface their own errors.
      v->broken = true;
      v->needs_setup = true;
      v->schema_epoch = epoch;
      return Outcome::kDeclined;
    }
  }
  if (v->broken) return Outcome::kDeclined;
  if (!fresh(v->dep_files)) return Outcome::kDeclined;
  if (v->full_dirty) {
    Status s = RebuildLocked(v);
    if (!s.ok()) {
      v->full_dirty = true;  // self-heal: retry the rebuild on the next serve
      return Outcome::kDeclined;
    }
    if (full_refreshes_ != nullptr) full_refreshes_->Add();
  } else if (!v->dirty_roots.empty()) {
    Status s = MaintainDeltaLocked(v);
    if (!s.ok()) {
      v->full_dirty = true;
      return Outcome::kDeclined;
    }
  }
  out->columns = v->columns;
  out->rows.clear();
  if (v->delta_maintainable) {
    // Root-scan order groups output rows exactly as normal execution does
    // (the plan is root-driving), so concatenating buckets in extent-scan
    // order reproduces the byte-identical result.
    const FromEntry& fe = v->stmt.from[0];
    Status scan = objects_->ScanExtent(
        fe.class_name, fe.every, fe.excludes, [&](Oid oid, const MoodValue&) {
          auto bit = v->rows_by_root.find(oid.Pack());
          if (bit != v->rows_by_root.end()) {
            for (const auto& row : bit->second) out->rows.push_back(row);
          }
          return Status::OK();
        });
    if (!scan.ok()) {
      v->full_dirty = true;
      return Outcome::kDeclined;
    }
  } else {
    *out = v->flat;
  }
  if (hits_ != nullptr) hits_->Add();
  return Outcome::kServed;
}

bool MvManager::WouldServe(const std::string& normalized_sql) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_sql_.find(normalized_sql);
  return it != by_sql_.end() && !it->second->broken;
}

std::vector<MvManager::ViewInfo> MvManager::Views() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ViewInfo> out;
  out.reserve(views_.size());
  for (const auto& [name, v] : views_) {
    out.push_back(ViewInfo{name, v->select_sql, v->delta_maintainable, v->refusal});
  }
  return out;
}

size_t MvManager::view_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

void MvManager::ReindexDeps() {
  by_dep_.clear();
  for (const auto& [name, v] : views_) {
    for (uint16_t f : v->dep_files) by_dep_[f].push_back(v.get());
  }
  dep_count_.store(by_dep_.size(), std::memory_order_release);
}

}  // namespace mood
