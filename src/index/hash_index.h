#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/heap_file.h"
#include "storage/storage_manager.h"

namespace mood {

/// Static hash index with overflow chains: the "hash indexing supported through
/// the Exodus Storage Manager" used by IndSel for equality predicates.
///
/// Layout: a meta page holding the bucket directory (bucket count fixed at
/// creation), each bucket a chain of pages of {key, payload} entries.
class HashIndex {
 public:
  static Result<std::unique_ptr<HashIndex>> Create(BufferPool* pool,
                                                   FileDirectory* alloc,
                                                   uint32_t num_buckets = 64);
  static Result<std::unique_ptr<HashIndex>> Open(BufferPool* pool, FileDirectory* alloc,
                                                 PageId meta_page);

  PageId meta_page() const { return meta_page_; }

  Status Insert(Slice key, uint64_t value);
  /// Removes one matching (key, value) pair; NotFound if absent.
  Status Delete(Slice key, uint64_t value);
  Result<std::vector<uint64_t>> SearchEqual(Slice key) const;

  uint64_t entries() const { return entries_; }
  uint32_t num_buckets() const { return static_cast<uint32_t>(buckets_.size()); }

  /// Average overflow-chain length (for tests / bench reporting).
  Result<double> AverageChainLength() const;

 private:
  HashIndex(BufferPool* pool, FileDirectory* alloc, PageId meta_page)
      : pool_(pool), alloc_(alloc), meta_page_(meta_page) {}

  struct Entry {
    std::string key;
    uint64_t value;
  };
  struct BucketPage {
    PageId id = kInvalidPageId;
    PageId next = kInvalidPageId;
    std::vector<Entry> entries;
    size_t SerializedSize() const;
  };

  Status LoadMeta();
  Status StoreMeta() const;
  Result<BucketPage> LoadBucketPage(PageId id) const;
  Status StoreBucketPage(const BucketPage& bp) const;

  uint32_t BucketOf(Slice key) const;

  static constexpr size_t kBucketCapacity = kPageSize - 64;

  BufferPool* pool_;
  FileDirectory* alloc_;
  PageId meta_page_;
  std::vector<PageId> buckets_;
  uint64_t entries_ = 0;
};

}  // namespace mood
