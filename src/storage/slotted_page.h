#pragma once

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace mood {

/// Slot index within a page.
using SlotId = uint16_t;
inline constexpr SlotId kInvalidSlot = 0xFFFF;

/// Per-record flags stored in the slot directory.
enum SlotFlags : uint8_t {
  kSlotNormal = 0,
  /// The record moved to another page; the slot body holds the forwarding RID.
  kSlotForward = 1,
  /// The record lives here but its home slot is elsewhere; scans skip it.
  kSlotMovedIn = 2,
};

/// View over one page formatted as a slotted record page.
///
/// Layout:
///   [0..8)    page LSN (recovery idempotence)
///   [8..12)   next page id in the heap-file chain (kInvalidPageId if none)
///   [12..14)  slot count
///   [14..16)  free-space pointer: offset of the lowest used record byte
///   [16..)    slot directory: 6 bytes per slot {offset u16, length u16, flags u8, pad}
/// Records are allocated from the end of the page downward.
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats a fresh page.
  void Init();

  Lsn lsn() const;
  void set_lsn(Lsn lsn);
  PageId next_page() const;
  void set_next_page(PageId id);

  uint16_t slot_count() const;

  /// Bytes available for a new record including its slot entry.
  size_t FreeSpace() const;

  /// Inserts a record; compacts the page if fragmented. Fails with NotFound-free
  /// semantics: returns InvalidArgument when the record cannot fit even after
  /// compaction.
  Result<SlotId> Insert(Slice record, uint8_t flags = kSlotNormal);

  /// Places a record into a specific dead slot (used by record forwarding, which
  /// must keep the home slot id stable).
  Status InsertAt(SlotId slot, Slice record, uint8_t flags);

  /// Marks a slot deleted. The slot id is never reused (so RIDs stay stable) but
  /// its space is reclaimed by compaction.
  Status Delete(SlotId slot);

  /// Replaces the record in `slot`. Fails if it cannot fit after compaction.
  Status Update(SlotId slot, Slice record);

  /// Returns the stored bytes. The slice points into the page; copy before unpin.
  Result<Slice> Get(SlotId slot) const;

  Result<uint8_t> GetFlags(SlotId slot) const;
  Status SetFlags(SlotId slot, uint8_t flags);

  bool IsLive(SlotId slot) const;

  /// Number of non-deleted slots.
  uint16_t LiveCount() const;

 private:
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kSlotSize = 6;

  char* SlotPtr(SlotId slot) const {
    return page_->data() + kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  }
  uint16_t SlotOffset(SlotId slot) const;
  uint16_t SlotLength(SlotId slot) const;
  uint8_t SlotFlagsAt(SlotId slot) const;
  void WriteSlot(SlotId slot, uint16_t offset, uint16_t length, uint8_t flags);

  /// Moves live records to the end of the page, squeezing out holes.
  void Compact();

  Page* page_;
};

}  // namespace mood
