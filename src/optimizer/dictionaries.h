#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/plan.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "stats/selectivity.h"

namespace mood {

/// Entry of the ImmSelInfo dictionary (paper Table 11): immediate selections
/// "s.A theta c" on an atomic attribute or parameterless method.
struct ImmSelEntry {
  std::string range_var;
  ExprPtr pred;
  std::string attribute;
  bool is_method = false;
  BinaryOp op = BinaryOp::kEq;
  MoodValue constant;
  int param = -1;  ///< >= 0: comparison against the `?` parameter at this position
  double selectivity = 1.0;
  double indexed_access_cost = -1;  ///< -1: no usable index
  double sequential_access_cost = 0;
  std::string access_type;  ///< "indexed" or "sequential"
  std::optional<IndexDesc> index;
  SelSource sel_source = SelSource::kDefault;
  std::string feedback_sig;  ///< normalized signature for the feedback store
};

/// Entry of the PathSelInfo dictionary (paper Table 12, extended with the
/// F/(1-s) ordering rank of Algorithm 8.1).
struct PathSelEntry {
  std::string range_var;
  ExprPtr pred;
  BoundPath path;
  BinaryOp op = BinaryOp::kEq;
  MoodValue constant;
  int param = -1;  ///< >= 0: comparison against the `?` parameter at this position
  double selectivity = 1.0;
  double forward_traversal_cost = 0;  ///< F_i
  SelSource sel_source = SelSource::kDefault;
  std::string feedback_sig;

  double Rank() const {
    double denom = 1.0 - selectivity;
    if (denom <= 1e-12) return 1e308;
    return forward_traversal_cost / denom;
  }
};

/// Entry of the OtherSelInfo dictionary: predicates whose selectivity is hard to
/// estimate (methods with arguments, complex predicates). Same structure as
/// ImmSelInfo per the paper; we keep the default selectivity explicit.
struct OtherSelEntry {
  std::string range_var;  ///< empty when the predicate spans several variables
  ExprPtr pred;
  double selectivity = 1.0 / 3.0;
  SelSource sel_source = SelSource::kDefault;
  std::string feedback_sig;
};

/// An explicit join predicate connecting two range variables, e.g.
/// "c.drivetrain.engine = v" or "v.company = c.self".
struct JoinPredEntry {
  ExprPtr pred;
  /// Referencing side: a path terminating in a reference.
  std::string ref_var;
  BoundPath ref_path;
  /// Referenced side: a bare variable or var.self.
  std::string target_var;
  /// False when the predicate is a general theta join (nested loop only).
  bool pointer_form = true;
};

/// Everything the optimizer derived for one AND-term — the dictionaries of
/// Section 7 plus the chosen subplan. Exposed so EXPLAIN and the benches can
/// print Tables 11/12/16/17 from live optimizer state.
struct AndTermInfo {
  std::vector<ImmSelEntry> imm;
  std::vector<PathSelEntry> paths;  ///< in chosen execution order (Algorithm 8.1)
  std::vector<OtherSelEntry> other;
  std::vector<JoinPredEntry> joins;
  PlanPtr plan;
};

}  // namespace mood
