#pragma once

#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace mood {

/// Constant folding: evaluates literal subtrees ("The expressions are
/// simplified", Section 7). Non-constant parts are left untouched.
Result<ExprPtr> FoldConstants(const ExprPtr& expr);

/// Pushes NOT down to the comparison leaves (De Morgan; comparison negation).
/// NOT over a non-comparison leaf stays in place.
ExprPtr PushNotDown(const ExprPtr& expr, bool negate = false);

/// An AND-term: conjunction of predicates (Section 7's p_i1 AND p_i2 AND ...).
using AndTerm = std::vector<ExprPtr>;

/// Transforms a (NOT-normalized) predicate into disjunctive normal form: the
/// result is an OR over AND-terms. The UNION operation combines the AND-term
/// subplans afterwards.
std::vector<AndTerm> ToDnf(const ExprPtr& expr);

/// Convenience: fold + push-not + DNF.
Result<std::vector<AndTerm>> NormalizePredicate(const ExprPtr& expr);

}  // namespace mood
