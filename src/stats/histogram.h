#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mood {

/// Equi-depth histogram over one numeric attribute. Buckets hold roughly
/// equal row counts, so skewed distributions get narrow buckets where the
/// data is dense — exactly where the paper's flat (max-c)/(max-min) range
/// formula is most wrong. Build() never splits a run of equal values across
/// buckets; a heavy value therefore sits alone in a deep bucket and
/// FractionEq reports its true weight instead of 1/dist.
class EquiDepthHistogram {
 public:
  struct Bucket {
    double lo = 0;        ///< inclusive lower bound
    double hi = 0;        ///< inclusive upper bound
    uint64_t count = 0;   ///< rows in [lo, hi]
    uint64_t distinct = 0;///< distinct values in [lo, hi]
  };

  /// Builds from the sampled values (consumed; sorted internally). Returns an
  /// empty histogram when values is empty or target_buckets is zero.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  size_t target_buckets);

  bool empty() const { return buckets_.empty(); }
  uint64_t total() const { return total_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Fraction of rows with value <= c (linear interpolation inside a bucket).
  double FractionLE(double c) const;
  /// Fraction of rows with value == c (bucket depth spread over its distinct
  /// values; values outside every bucket get a small floor, not zero).
  double FractionEq(double c) const;

 private:
  std::vector<Bucket> buckets_;
  uint64_t total_ = 0;
};

}  // namespace mood
