#pragma once

#include <string>

#include "catalog/catalog.h"
#include "moodview/dag_layout.h"

namespace mood {

/// Text-mode schema browser: the catalog-driven half of MoodView (Section 9.2).
/// Renders the class-hierarchy DAG, per-class presentations (Figure 9.2(b)),
/// attribute designer tables (Figure 9.2(c)) and method presentations
/// (Figure 9.2(a)).
class SchemaBrowser {
 public:
  explicit SchemaBrowser(Catalog* catalog) : catalog_(catalog) {}

  /// Class-hierarchy browser: DAG placement with crossing minimization.
  Result<std::string> RenderHierarchy() const;

  /// Class presentation: type name/id, super/sub classes, methods, attributes.
  Result<std::string> RenderClass(const std::string& class_name) const;

  /// Type-designer table: FIELD NAME / DATA TYPE rows.
  Result<std::string> RenderAttributeTable(const std::string& class_name) const;

  /// Method presentation: name, return type, parameters, applicable classes.
  Result<std::string> RenderMethod(const std::string& class_name,
                                   const std::string& method) const;

  /// Regenerates MOODSQL DDL for a class (used to round-trip schemas).
  Result<std::string> GenerateDdl(const std::string& class_name) const;

  /// Builds the layout object (exposed for crossing-count tests).
  Result<DagLayout> BuildLayout() const;

 private:
  Catalog* catalog_;
};

}  // namespace mood
