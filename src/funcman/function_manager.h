#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "types/value.h"

namespace mood {

class MetricsRegistry;

/// Context passed to an invoked member function: the receiver object and a
/// dereferencing hook so method bodies can chase references.
struct MethodContext {
  Oid self;
  /// The receiver's attribute tuple (attribute order = Catalog::AllAttributes).
  const MoodValue* self_value = nullptr;
  /// Attribute names matching self_value's positions.
  const std::vector<std::string>* attr_names = nullptr;
  /// Dereferences an Oid into the referenced object's value.
  std::function<Result<MoodValue>(Oid)> deref;

  /// Convenience: receiver attribute by name.
  Result<MoodValue> Attr(const std::string& name) const;
};

/// A compiled member-function body. In the original system this is native code in
/// a per-class shared object produced by C++ compilation and opened through dld;
/// here it is a registered C++ callable — the signature-keyed lookup, lazy load
/// and late binding are identical (see DESIGN.md, substitution table).
using NativeFunction =
    std::function<Result<MoodValue>(const MethodContext&, const std::vector<MoodValue>&)>;

/// The paper's Function Manager: "responsible for adding, updating, deleting and
/// invoking the member functions of the classes". Functions are located by the
/// signature built from the class name the function is applied to and its
/// parameter list; once loaded they stay in memory until evicted (the paper keeps
/// them "until the scope changes" — we expose an explicit UnloadAll for that).
class FunctionManager {
 public:
  explicit FunctionManager(Catalog* catalog) : catalog_(catalog) {}

  /// Registers the compiled body for `class_name::fname`. Also declares the
  /// function in the catalog when absent (AddFunction path of Section 2): the
  /// signature information is extracted and inserted into the CATALOG.
  Status Register(const std::string& class_name, const MoodsFunction& decl,
                  NativeFunction body);

  /// Replaces an existing compiled body (UpdateFunction). Holds the class latch,
  /// mirroring "the shared library of the class will be unavailable only during
  /// the time it takes to write the new function".
  Status Update(const std::string& class_name, const std::string& fname,
                NativeFunction body);

  /// Removes the compiled body and the catalog entry.
  Status Remove(const std::string& class_name, const std::string& fname);

  /// Invokes a member function with late binding: the method is resolved
  /// bottom-up from the receiver's class, its signature is built and looked up,
  /// the body is loaded (cold) or reused (warm), arguments are type-checked
  /// against the declared parameters and the result against the return type.
  /// All failures surface as FunctionError — "although the functions are
  /// compiled, their error messages are handled as if they are interpreted".
  Result<MoodValue> Invoke(const std::string& class_name, const std::string& fname,
                           const MethodContext& ctx, std::vector<MoodValue> args);

  /// Evicts loaded function bodies (scope change in the paper's model).
  void UnloadAll();

  /// Fallback used when a declared method has no registered native body: the
  /// kernel may interpret simple `return <expr>;` bodies. Installed by the
  /// Database facade once the expression evaluator exists.
  using InterpretedFallback = std::function<Result<MoodValue>(
      const std::string& class_name, const MoodsFunction& decl, const MethodContext&,
      const std::vector<MoodValue>& args)>;
  void SetInterpretedFallback(InterpretedFallback fb) { fallback_ = std::move(fb); }

  /// Snapshot of the invocation counters. Counters are atomics internally, so
  /// parallel query workers invoking methods keep them coherent.
  struct InvokeStats {
    uint64_t cold_loads = 0;   ///< signature resolved + body loaded
    uint64_t warm_calls = 0;   ///< body already in memory
    uint64_t fallback_calls = 0;
    uint64_t errors = 0;
  };
  InvokeStats stats() const {
    InvokeStats s;
    s.cold_loads = cold_loads_.load(std::memory_order_relaxed);
    s.warm_calls = warm_calls_.load(std::memory_order_relaxed);
    s.fallback_calls = fallback_calls_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    cold_loads_.store(0, std::memory_order_relaxed);
    warm_calls_.store(0, std::memory_order_relaxed);
    fallback_calls_.store(0, std::memory_order_relaxed);
    errors_.store(0, std::memory_order_relaxed);
  }

  size_t registered_count() const { return registry_.size(); }
  size_t loaded_count() const { return loaded_.size(); }

  /// Registers the `funcman.*` probe: invoke counters plus registered/loaded
  /// body gauges.
  void RegisterMetrics(MetricsRegistry* registry) const;

 private:
  std::mutex& ClassLatch(const std::string& class_name);

  Catalog* catalog_;
  /// signature -> compiled body (the per-class shared-object file contents).
  /// Mutated only by Register/Update/Remove (DDL, externally synchronized);
  /// Invoke reads it under loaded_mu_ so lookups and lazy loads are safe from
  /// parallel query workers.
  std::map<std::string, NativeFunction> registry_;
  /// signature -> body currently "loaded into memory". Guarded by loaded_mu_:
  /// concurrent Invoke calls race to load the same body.
  std::map<std::string, const NativeFunction*> loaded_;
  std::mutex loaded_mu_;
  std::map<std::string, std::mutex> class_latches_;
  std::mutex latch_map_mu_;
  InterpretedFallback fallback_;
  std::atomic<uint64_t> cold_loads_{0};
  std::atomic<uint64_t> warm_calls_{0};
  std::atomic<uint64_t> fallback_calls_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace mood
