#include "cost/file_ops.h"

#include <cmath>

#include "stats/approx.h"

namespace mood {

double SeqCost(double b, const DiskParameters& p) {
  if (p.esm_btree_files) return RndCost(b, p);
  return p.s + p.r + b * p.ebt;
}

double RndCost(double b, const DiskParameters& p) { return b * (p.s + p.r + p.btt); }

double IndCost(double k, const BTreeCostParams& index, const DiskParameters& p) {
  if (k <= 0) return 0;
  const double base = 2.0 * index.order * std::log(2.0);  // 2v ln2: avg fanout
  double total_accesses = 0;
  double r_i = k;
  double prev_c = k;
  for (int i = 1; i <= static_cast<int>(index.levels); i++) {
    double n_i = index.leaves / std::pow(base, i - 2);
    double m_i = index.leaves / std::pow(base, i - 1);
    if (m_i < 1) m_i = 1;
    if (n_i < 1) n_i = 1;
    r_i = (i == 1) ? k : prev_c;
    double c_i = CApprox(n_i, m_i, r_i);
    total_accesses += std::ceil(c_i);
    prev_c = c_i;
  }
  return total_accesses * RndCost(1, p);
}

double RngxCost(double fract, const BTreeCostParams& index, const DiskParameters& p) {
  return fract * index.leaves * (p.s + p.r + p.btt);
}

}  // namespace mood
