#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "types/value.h"

namespace mood {

/// The four type constructors of the MOOD data model plus "basic".
enum class ConstructorKind : uint8_t {
  kBasic = 0,
  kTuple = 1,
  kSet = 2,
  kList = 3,
  kReference = 4,
};

std::string_view ConstructorKindName(ConstructorKind k);

/// A static type description: a basic type, or a constructor applied recursively
/// (Section 2: "A complex type may be created by using basic types and recursive
/// application of the type constructors").
class TypeDesc;
using TypeDescPtr = std::shared_ptr<const TypeDesc>;

class TypeDesc {
 public:
  /// Named tuple field.
  struct Field {
    std::string name;
    TypeDescPtr type;
  };

  static TypeDescPtr Basic(BasicType t);
  /// String with a declared capacity, e.g. String(32) in the paper's DDL. The
  /// capacity is advisory (used for size estimates); 0 means unbounded.
  static TypeDescPtr SizedString(uint32_t capacity);
  static TypeDescPtr Tuple(std::vector<Field> fields);
  static TypeDescPtr Set(TypeDescPtr elem);
  static TypeDescPtr List(TypeDescPtr elem);
  static TypeDescPtr Reference(std::string class_name);

  ConstructorKind kind() const { return kind_; }
  BasicType basic() const { return basic_; }
  uint32_t string_capacity() const { return string_capacity_; }
  const std::string& referenced_class() const { return class_name_; }
  const TypeDescPtr& element() const { return elem_; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Position of a tuple field; -1 if absent.
  int FieldIndex(const std::string& name) const;

  /// Checks that a runtime value conforms to this type. Numeric widening
  /// (Integer -> LongInteger -> Float) is accepted; everything else is strict.
  Status CheckValue(const MoodValue& v) const;

  /// Default value of this type (zero / empty / null reference).
  MoodValue DefaultValue() const;

  /// Rough per-instance size in bytes, used for nbpages/size statistics.
  size_t EstimateSize() const;

  bool Equals(const TypeDesc& other) const;

  /// Rendering used in DDL output and MoodView, e.g.
  /// "TUPLE (id Integer, refs SET (REFERENCE (Company)))".
  std::string ToString() const;

  void EncodeTo(std::string* dst) const;
  static Result<TypeDescPtr> Decode(Slice* input);

 private:
  TypeDesc() = default;

  ConstructorKind kind_ = ConstructorKind::kBasic;
  BasicType basic_ = BasicType::kInteger;
  uint32_t string_capacity_ = 0;
  std::string class_name_;
  TypeDescPtr elem_;
  std::vector<Field> fields_;
};

}  // namespace mood
