#include "exec/plan_cache.h"

#include <set>

#include "sql/lexer.h"

namespace mood {

std::string NormalizeSql(const std::string& sql) {
  auto tokens = Lexer::Tokenize(sql);
  if (!tokens.ok()) return "";
  std::string out;
  size_t start = 0;
  // Strip the EXPLAIN prefix so EXPLAIN <select> keys like its bare SELECT.
  while (start < tokens.value().size() &&
         tokens.value()[start].type == TokenType::kKeyword &&
         (tokens.value()[start].text == "EXPLAIN" ||
          tokens.value()[start].text == "ANALYZE" ||
          tokens.value()[start].text == "VERBOSE")) {
    start++;
  }
  for (size_t i = start; i < tokens.value().size(); i++) {
    const Token& t = tokens.value()[i];
    if (t.type == TokenType::kEof) break;
    // A trailing ';' (possibly repeated) is not part of the statement.
    if (t.type == TokenType::kSemicolon) {
      bool only_semis = true;
      for (size_t j = i + 1; j < tokens.value().size(); j++) {
        if (tokens.value()[j].type != TokenType::kSemicolon &&
            tokens.value()[j].type != TokenType::kEof) {
          only_semis = false;
          break;
        }
      }
      if (only_semis) break;
    }
    if (!out.empty()) out += ' ';
    if (t.type == TokenType::kStringLiteral) {
      out += '\'';
      for (char c : t.text) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += '\'';
    } else {
      out += t.text;
    }
  }
  return out;
}

std::string ParamTypeSignature(const std::vector<MoodValue>& params) {
  std::string out;
  for (const MoodValue& v : params) {
    if (!out.empty()) out += ',';
    out += ValueKindName(v.kind());
  }
  return out;
}

std::string ParamValueKey(const std::vector<MoodValue>& params) {
  std::string out;
  std::string enc;
  for (const MoodValue& v : params) {
    enc.clear();
    v.EncodeTo(&enc);
    out += std::to_string(enc.size());
    out += ':';
    out += enc;
  }
  return out;
}

// --- PlanCache -----------------------------------------------------------------

void PlanCache::Configure(size_t max_entries, uint64_t churn_delta) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = max_entries;
  churn_delta_ = churn_delta;
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

CachedPlanPtr PlanCache::Lookup(const std::string& key, uint64_t cur_schema_epoch,
                                uint64_t cur_plans_version,
                                const WriteEpochFn& epoch_of) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (misses_) misses_->Add();
    return nullptr;
  }
  const CachedPlanPtr& plan = it->second->plan;
  bool valid = plan->schema_epoch == cur_schema_epoch &&
               plan->plans_version == cur_plans_version;
  for (size_t i = 0; valid && i < plan->extents.size(); i++) {
    const TouchedExtent& te = plan->extents[i];
    const uint64_t cur = epoch_of(te.file);
    // Backwards movement (file dropped and re-created) is unbounded churn.
    valid = cur >= te.write_epoch && cur - te.write_epoch <= churn_delta_;
  }
  if (!valid) {
    lru_.erase(it->second);
    index_.erase(it);
    if (invalidations_) invalidations_->Add();
    if (misses_) misses_->Add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  if (hits_) hits_->Add();
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key, CachedPlanPtr plan) {
  if (plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (max_entries_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    return;
  }
  lru_.push_front(Node{key, std::move(plan)});
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    if (evictions_) evictions_->Add();
  }
}

bool PlanCache::ContainsSql(const std::string& normalized_sql) const {
  const std::string prefix = normalized_sql + '\x1f';
  std::lock_guard<std::mutex> lock(mu_);
  for (const Node& n : lru_) {
    if (n.key.size() >= prefix.size() &&
        n.key.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

// --- ResultCache ---------------------------------------------------------------

namespace {
size_t ApproxValueBytes(const MoodValue& v) {
  size_t bytes = sizeof(MoodValue);
  switch (v.kind()) {
    case ValueKind::kString:
      bytes += v.AsString().size();
      break;
    case ValueKind::kTuple:
    case ValueKind::kSet:
    case ValueKind::kList:
      for (const MoodValue& e : v.elements()) bytes += ApproxValueBytes(e);
      break;
    default:
      break;
  }
  return bytes;
}
}  // namespace

size_t ApproxResultBytes(const QueryResult& result) {
  size_t bytes = sizeof(QueryResult);
  for (const auto& c : result.columns) bytes += c.size() + sizeof(std::string);
  for (const auto& row : result.rows) {
    bytes += sizeof(row);
    for (const MoodValue& v : row) bytes += ApproxValueBytes(v);
  }
  return bytes;
}

void ResultCache::Configure(size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = max_bytes;
  EvictToFitLocked(0);
}

bool ResultCache::Lookup(const std::string& key, uint64_t cur_schema_epoch,
                         const WriteEpochFn& epoch_of, QueryResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (misses_) misses_->Add();
    return false;
  }
  bool valid = it->second->schema_epoch == cur_schema_epoch;
  for (size_t i = 0; valid && i < it->second->extents.size(); i++) {
    const TouchedExtent& te = it->second->extents[i];
    valid = epoch_of(te.file) == te.write_epoch;
  }
  if (!valid) {
    used_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    if (invalidations_) invalidations_->Add();
    if (misses_) misses_->Add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  *out = it->second->result;
  if (hits_) hits_->Add();
  return true;
}

void ResultCache::Insert(const std::string& key, const QueryResult& result,
                         uint64_t schema_epoch,
                         const std::vector<TouchedExtent>& extents,
                         const WriteEpochFn& epoch_of) {
  // Staleness-never: a writer that committed while this query ran moved some
  // extent's epoch past the captured value — the result may mix before/after
  // states, so it must not be admitted. (A writer landing after this check is
  // harmless: Lookup re-validates against then-current epochs and misses.)
  for (const TouchedExtent& te : extents) {
    if (epoch_of(te.file) != te.write_epoch) return;
  }
  const size_t bytes = ApproxResultBytes(result) + key.size();
  std::lock_guard<std::mutex> lock(mu_);
  if (max_bytes_ == 0 || bytes > max_bytes_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    used_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  EvictToFitLocked(bytes);
  lru_.push_front(Node{key, result, schema_epoch, extents, bytes});
  index_[key] = lru_.begin();
  used_bytes_ += bytes;
}

void ResultCache::EvictToFitLocked(size_t incoming) {
  while (!lru_.empty() && used_bytes_ + incoming > max_bytes_) {
    used_bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    if (evictions_) evictions_->Add();
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  used_bytes_ = 0;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

// --- Touched extents -----------------------------------------------------------

Status CollectTouchedExtents(Catalog* catalog, ObjectManager* objects,
                             const BoundQuery& bound,
                             std::vector<TouchedExtent>* extents,
                             bool* method_free) {
  *method_free = true;
  std::set<std::string> classes;
  auto add_subtree = [&](const std::string& cls) -> Status {
    // References can point at subclass instances and EVERY scans cover them,
    // so a class always pulls in its whole subtree (conservative superset —
    // the only risk of over-approximating is an extra invalidation).
    MOOD_ASSIGN_OR_RETURN(auto subtree, catalog->SubtreeClasses(cls));
    for (auto& c : subtree) classes.insert(std::move(c));
    return Status::OK();
  };
  for (const auto& [var, fe] : bound.range_vars) {
    (void)var;
    MOOD_RETURN_IF_ERROR(add_subtree(fe.class_name));
  }

  Binder binder(catalog);
  std::function<Status(const ExprPtr&)> walk = [&](const ExprPtr& e) -> Status {
    if (e == nullptr) return Status::OK();
    switch (e->kind) {
      case ExprKind::kLiteral:
      case ExprKind::kParameter:
        return Status::OK();
      case ExprKind::kUnary:
        return walk(e->operand);
      case ExprKind::kBinary:
        MOOD_RETURN_IF_ERROR(walk(e->lhs));
        return walk(e->rhs);
      case ExprKind::kPath: {
        auto bp = binder.ResolvePath(bound, *e);
        if (!bp.ok()) {
          // The query bound once already; if the path no longer resolves,
          // stay safe by refusing result caching rather than failing.
          *method_free = false;
        } else {
          for (const auto& cls : bp.value().classes) {
            MOOD_RETURN_IF_ERROR(add_subtree(cls));
          }
          for (bool m : bp.value().step_is_method) {
            if (m) *method_free = false;
          }
        }
        for (const auto& step : e->steps) {
          for (const auto& a : step.args) MOOD_RETURN_IF_ERROR(walk(a));
        }
        return Status::OK();
      }
    }
    return Status::OK();
  };
  const SelectStmt& stmt = bound.stmt;
  for (const auto& e : stmt.projection) MOOD_RETURN_IF_ERROR(walk(e));
  MOOD_RETURN_IF_ERROR(walk(stmt.where));
  for (const auto& e : stmt.group_by) MOOD_RETURN_IF_ERROR(walk(e));
  MOOD_RETURN_IF_ERROR(walk(stmt.having));
  for (const auto& k : stmt.order_by) MOOD_RETURN_IF_ERROR(walk(k.expr));

  extents->clear();
  std::set<uint16_t> files;
  for (const auto& cls : classes) {
    auto t = catalog->Lookup(cls);
    if (!t.ok() || !t.value()->is_class) continue;
    if (t.value()->extent_file == kInvalidFileId) continue;
    files.insert(static_cast<uint16_t>(t.value()->extent_file));
  }
  for (uint16_t f : files) {
    extents->push_back(TouchedExtent{f, objects->WriteEpochOf(f)});
  }
  return Status::OK();
}

}  // namespace mood
