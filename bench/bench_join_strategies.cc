// Section 6 — cost of the implicit join under the four strategies.
// Sweeps k_c (selected objects of the referencing class) on the paper's example
// statistics and prints each strategy's modeled cost and the winner, under both
// the Salzberg-default and the paper-calibrated disk profiles. The paper's
// qualitative claims to hold: forward traversal wins at tiny k_c (if the source
// objects are in memory), hash-partition wins at large k_c, the binary join
// index wins in between when present, and backward traversal only pays off when
// the D side is tiny and CPU is cheap.
// A measured section executes the same join through the storage engine and
// reports actual page reads per strategy.

#include <chrono>

#include "bench/bench_util.h"
#include "cost/join_costs.h"

using namespace mood;
using namespace mood::bench;

namespace {

void ModelSweep(StatisticsManager* stats, const DiskParameters& disk,
                const char* profile, bool c_accessed) {
  Banner(std::string("Model sweep (") + profile + ", join Vehicle.drivetrain -> "
         "VehicleDriveTrain, k_d = |D|, source " +
         (c_accessed ? "in memory" : "on disk") + ")");
  ClassStats cs = CheckV(stats->Class("Vehicle"), "c");
  ClassStats ds = CheckV(stats->Class("VehicleDriveTrain"), "d");
  ReferenceStats rs = CheckV(stats->Reference("Vehicle", "drivetrain"), "ref");
  BTreeCostParams bji;  // a plausible two-level join index over 20000 pairs
  bji.order = 200;
  bji.levels = 2;
  bji.leaves = 100;

  Table t({"k_c", "forward", "backward", "hash-partition", "join-index", "winner"});
  for (double k_c : {1.0, 10.0, 100.0, 1000.0, 5000.0, 20000.0}) {
    ImplicitJoinInput in;
    in.k_c = k_c;
    in.k_d = static_cast<double>(ds.cardinality);
    in.card_c = static_cast<double>(cs.cardinality);
    in.card_d = static_cast<double>(ds.cardinality);
    in.nbpages_c = cs.nbpages;
    in.nbpages_d = ds.nbpages;
    in.fan = rs.fan;
    in.totref = static_cast<double>(rs.totref);
    in.c_accessed_previously = c_accessed;
    double ftc = ForwardTraversalCost(in, disk);
    double btc = BackwardTraversalCost(in, disk);
    double hhc = HashPartitionJoinCost(in, disk);
    double bjc = BinaryJoinIndexCost(std::min(in.k_c, in.k_d), bji, disk);
    double best = std::min({ftc, btc, hhc, bjc});
    const char* winner = best == ftc   ? "forward"
                         : best == bjc ? "join-index"
                         : best == hhc ? "hash-partition"
                                       : "backward";
    t.AddRow({Fmt(k_c, 0), Fmt(ftc, 1), Fmt(btc, 1), Fmt(hhc, 1), Fmt(bjc, 1),
              winner});
  }
  t.Print();
}

}  // namespace

int main() {
  BenchDb scratch("join_strategies");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  paperdb::InstallPaperStatistics(db.stats());

  DiskParameters salzberg;  // textbook defaults
  DiskParameters calibrated = PaperCalibratedDiskParameters();
  ModelSweep(db.stats(), calibrated, "paper-calibrated", true);
  ModelSweep(db.stats(), calibrated, "paper-calibrated", false);
  ModelSweep(db.stats(), salzberg, "salzberg-defaults", false);

  Checks checks;
  Banner("Shape checks (who wins where)");
  {
    ClassStats cs = CheckV(db.stats()->Class("Vehicle"), "c");
    ClassStats ds = CheckV(db.stats()->Class("VehicleDriveTrain"), "d");
    ReferenceStats rs = CheckV(db.stats()->Reference("Vehicle", "drivetrain"), "ref");
    auto costs = [&](double k_c, bool accessed) {
      ImplicitJoinInput in;
      in.k_c = k_c;
      in.k_d = static_cast<double>(ds.cardinality);
      in.card_c = static_cast<double>(cs.cardinality);
      in.card_d = static_cast<double>(ds.cardinality);
      in.nbpages_c = cs.nbpages;
      in.nbpages_d = ds.nbpages;
      in.fan = rs.fan;
      in.totref = static_cast<double>(rs.totref);
      in.c_accessed_previously = accessed;
      return std::make_tuple(ForwardTraversalCost(in, calibrated),
                             BackwardTraversalCost(in, calibrated),
                             HashPartitionJoinCost(in, calibrated));
    };
    auto [f1, b1, h1] = costs(1, true);
    checks.Expect(f1 < h1 && f1 < b1, "k_c = 1 (in memory): forward traversal wins");
    auto [f2, b2, h2] = costs(20000, false);
    checks.Expect(h2 < f2 && h2 < b2, "k_c = |C|: hash-partition wins");
    // Crossover exists somewhere in between.
    bool crossover = false;
    const char* prev = nullptr;
    for (double k : {1.0, 10.0, 100.0, 1000.0, 5000.0, 20000.0}) {
      auto [f, b, h] = costs(k, true);
      const char* w = f <= h && f <= b ? "f" : (h <= b ? "h" : "b");
      if (prev != nullptr && w != prev) crossover = true;
      prev = w;
    }
    checks.Expect(crossover, "a forward/hash crossover exists as k_c grows");
  }

  // Measured: actual page reads through the executor's pointer join.
  Banner("Measured page reads (scale = 400, buffer pool 64 pages)");
  {
    BenchDb scratch2("join_measured");
    Database mdb;
    DatabaseOptions opts;
    opts.pool_pages = 64;  // small pool so I/O differences show
    Check(mdb.Open(scratch2.Path("mood"), opts), "open measured");
    Check(paperdb::CreatePaperSchema(&mdb), "schema");
    Check(paperdb::PopulatePaperData(&mdb, 400).status(), "populate");
    Check(mdb.CollectAllStatistics(), "collect");
    Check(mdb.objects()->CreateBinaryJoinIndex("v_dt", "Vehicle", "drivetrain"),
          "bji");

    Table t({"strategy", "pairs", "disk reads", "pool hits", "pool misses"});
    for (JoinMethod m : {JoinMethod::kForwardTraversal, JoinMethod::kHashPartition,
                         JoinMethod::kBackwardTraversal, JoinMethod::kIndexed}) {
      auto vehicles = CheckV(mdb.algebra()->BindClass("Vehicle", false), "bind v");
      auto dts = CheckV(mdb.algebra()->BindClass("VehicleDriveTrain", false), "bind d");
      mdb.storage()->disk()->ResetStats();
      mdb.storage()->buffer_pool()->ResetStats();
      auto joined = CheckV(
          mdb.algebra()->Join(vehicles, dts, m, nullptr, "v", "d", "drivetrain"),
          "join");
      t.AddRow({std::string(JoinMethodName(m)), std::to_string(joined.size()),
                std::to_string(mdb.storage()->disk()->stats().reads),
                std::to_string(mdb.storage()->buffer_pool()->stats().hits),
                std::to_string(mdb.storage()->buffer_pool()->stats().misses)});
    }
    t.Print();
    std::printf(
        "note: the in-memory executor realizes all pointer strategies by chasing\n"
        "stored references; the modeled costs above price the 1994 disk behaviour\n"
        "(Section 6), which is what the optimizer decides on.\n");

    // Probe-side parallelism: the same implicit join end-to-end through the
    // executor at 1/2/4 worker threads. The probe (reference-chasing) side
    // partitions into row morsels; results must match serial exactly.
    Banner("Parallel probe scaling (implicit join via executor)");
    const std::string join_sql =
        "SELECT v FROM Vehicle v, VehicleDriveTrain d WHERE v.drivetrain = d";
    QueryOptions serial_opts;
    serial_opts.exec_threads = 1;
    auto serial = CheckV(mdb.Query(join_sql, serial_opts), "serial join");
    Table pt({"threads", "ms", "pairs"});
    for (size_t threads : {1u, 2u, 4u}) {
      QueryOptions opts;
      opts.exec_threads = threads;
      auto start = std::chrono::steady_clock::now();
      auto qr = CheckV(mdb.Query(join_sql, opts), "parallel join");
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      checks.Expect(qr.ToString() == serial.ToString(),
                    "parallel probe identical at " + std::to_string(threads) +
                        " threads");
      pt.AddRow({std::to_string(threads), Fmt(ms, 2),
                 std::to_string(qr.rows.size())});
    }
    pt.Print();
  }
  return checks.ExitCode();
}
