#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "stats/approx.h"

namespace mood {

namespace {

/// Collects the range variables referenced by an expression.
void CollectRangeVars(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return;
    case ExprKind::kPath:
      out->insert(e->range_var);
      for (const auto& s : e->steps) {
        for (const auto& arg : s.args) CollectRangeVars(arg, out);
      }
      return;
    case ExprKind::kUnary:
      CollectRangeVars(e->operand, out);
      return;
    case ExprKind::kBinary:
      CollectRangeVars(e->lhs, out);
      CollectRangeVars(e->rhs, out);
      return;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // = and <> are symmetric
  }
}

bool HasMethodStep(const BoundPath& path) {
  for (bool m : path.step_is_method) {
    if (m) return true;
  }
  return false;
}

/// Normalized feedback signature for an immediate selection. Class-qualified
/// and range-var-free, so the synthetic `_tN` terminal predicate of an
/// expanded path chain aliases the same entry as a user-written predicate on
/// that class.
std::string ImmSig(const std::string& cls, const std::string& attr, BinaryOp op,
                   const MoodValue& constant) {
  return cls + "." + attr + " " + std::string(BinaryOpName(op)) + " " +
         constant.ToString();
}

/// Normalized signature for a path-expression predicate, rooted at the class
/// rather than the range variable.
std::string PathSig(const BoundPath& path, BinaryOp op, const MoodValue& constant) {
  std::string sig = path.classes[0];
  for (const auto& s : path.steps) sig += "." + s.name;
  sig += ": " + std::string(BinaryOpName(op)) + " " + constant.ToString();
  return sig;
}

/// Signature for a single-variable Other predicate: the class plus the
/// predicate text with the range variable stripped.
std::string OtherSig(const std::string& cls, const std::string& var,
                     const ExprPtr& pred) {
  std::string text = pred->ToString();
  const std::string needle = var + ".";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    text.erase(pos, needle.size());
  }
  return cls + ": " + text;
}

}  // namespace

QueryOptimizer::QueryOptimizer(Catalog* catalog, ObjectManager* objects,
                               StatisticsManager* stats, OptimizerOptions options)
    : catalog_(catalog),
      objects_(objects),
      stats_(stats),
      options_(options),
      estimator_(stats),
      binder_(catalog),
      active_disk_(options_.disk) {}

std::vector<size_t> QueryOptimizer::OrderByRank(const std::vector<double>& cost,
                                                const std::vector<double>& selectivity) {
  std::vector<size_t> order(cost.size());
  std::iota(order.begin(), order.end(), 0);
  auto rank = [&](size_t i) {
    double denom = 1.0 - selectivity[i];
    if (denom <= 1e-12) return 1e308;
    return cost[i] / denom;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return rank(a) < rank(b); });
  return order;
}

double QueryOptimizer::OrderingObjective(const std::vector<double>& cost,
                                         const std::vector<double>& selectivity,
                                         const std::vector<size_t>& perm) {
  double f = 0;
  double running = 1.0;
  for (size_t idx : perm) {
    f += running * cost[idx];
    running *= selectivity[idx];
  }
  return f;
}

Result<ClassStats> QueryOptimizer::ClassStatsOrLive(const std::string& cls) const {
  auto s = stats_->Class(cls);
  if (s.ok()) return s;
  // Fall back to live extent metadata.
  ClassStats live;
  MOOD_ASSIGN_OR_RETURN(live.cardinality, objects_->ExtentCount(cls, false));
  MOOD_ASSIGN_OR_RETURN(live.nbpages, objects_->ExtentPages(cls));
  MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(cls));
  size_t sz = 0;
  for (const auto& a : attrs) sz += a.type->EstimateSize();
  live.size = static_cast<uint32_t>(sz);
  return live;
}

Result<double> QueryOptimizer::AtomicSelectivityOrDefault(
    const std::string& cls, const std::string& attr, BinaryOp op,
    const MoodValue& constant) const {
  auto s = estimator_.AtomicSelectivity(cls, attr, op, constant);
  if (s.ok()) return s;
  // No statistics: textbook defaults.
  if (op == BinaryOp::kEq) return 0.1;
  if (op == BinaryOp::kNe) return 0.9;
  return options_.default_selectivity;
}

Result<QueryOptimizer::Classified> QueryOptimizer::Classify(const BoundQuery& query,
                                                            const AndTerm& term) const {
  Classified out;
  for (const ExprPtr& pred : term) {
    // Default: the Other dictionary.
    auto push_other = [&](const ExprPtr& p) {
      std::set<std::string> vars;
      CollectRangeVars(p, &vars);
      OtherSelEntry e;
      e.pred = p;
      e.selectivity = options_.default_selectivity;
      if (vars.size() == 1) {
        e.range_var = *vars.begin();
        auto it = query.range_vars.find(e.range_var);
        if (it != query.range_vars.end()) {
          e.feedback_sig = OtherSig(it->second.class_name, e.range_var, p);
          double measured = 0;
          if (use_feedback_ && stats_->LookupFeedback(e.feedback_sig,
                                                      it->second.class_name,
                                                      &measured)) {
            e.selectivity = measured;
            e.sel_source = SelSource::kFeedback;
          }
        }
      }
      out.other.push_back(std::move(e));
    };

    if (pred->kind != ExprKind::kBinary || !IsComparison(pred->op)) {
      push_other(pred);
      continue;
    }

    ExprPtr lhs = pred->lhs;
    ExprPtr rhs = pred->rhs;
    BinaryOp op = pred->op;
    auto is_const_operand = [](const ExprPtr& e) {
      return e->kind == ExprKind::kLiteral || e->kind == ExprKind::kParameter;
    };
    if (is_const_operand(lhs) && rhs->kind == ExprKind::kPath) {
      std::swap(lhs, rhs);
      op = FlipComparison(op);
    }

    if (lhs->kind == ExprKind::kPath && is_const_operand(rhs)) {
      auto bound = binder_.ResolvePath(query, *lhs);
      if (!bound.ok()) return bound.status();
      const BoundPath& path = bound.value();
      if (!path.IsTerminalAtomic() || path.steps.empty()) {
        push_other(pred);
        continue;
      }
      if (path.steps.size() == 1) {
        // Immediate selection: atomic attribute or parameterless method.
        ImmSelEntry e;
        e.range_var = path.range_var;
        e.pred = pred;
        e.attribute = path.steps[0].name;
        e.is_method = path.step_is_method[0];
        e.op = op;
        if (rhs->kind == ExprKind::kParameter) {
          e.param = static_cast<int>(rhs->param_index);
        } else {
          e.constant = rhs->literal;
        }
        out.imm.push_back(std::move(e));
        continue;
      }
      if (HasMethodStep(path)) {
        push_other(pred);
        continue;
      }
      PathSelEntry e;
      e.range_var = path.range_var;
      e.pred = pred;
      e.path = path;
      e.op = op;
      if (rhs->kind == ExprKind::kParameter) {
        e.param = static_cast<int>(rhs->param_index);
      } else {
        e.constant = rhs->literal;
      }
      out.paths.push_back(std::move(e));
      continue;
    }

    if (lhs->kind == ExprKind::kPath && rhs->kind == ExprKind::kPath) {
      auto bl = binder_.ResolvePath(query, *lhs);
      auto br = binder_.ResolvePath(query, *rhs);
      if (!bl.ok()) return bl.status();
      if (!br.ok()) return br.status();
      const BoundPath& pl = bl.value();
      const BoundPath& pr = br.value();
      if (pl.range_var == pr.range_var) {
        push_other(pred);
        continue;
      }
      // Pointer form: one side denotes the object itself, the other terminates
      // in a reference — the implicit join C.A = D.self.
      auto pointer_form = [&](const BoundPath& ref, const BoundPath& self) {
        return op == BinaryOp::kEq && self.is_self && ref.IsTerminalRef() &&
               !HasMethodStep(ref) && !ref.fans_out &&
               catalog_->IsSubclassOf(self.classes[0], ref.TerminalClass());
      };
      JoinPredEntry e;
      e.pred = pred;
      if (pointer_form(pl, pr)) {
        e.ref_var = pl.range_var;
        e.ref_path = pl;
        e.target_var = pr.range_var;
        e.pointer_form = true;
      } else if (pointer_form(pr, pl)) {
        e.ref_var = pr.range_var;
        e.ref_path = pr;
        e.target_var = pl.range_var;
        e.pointer_form = true;
      } else {
        e.ref_var = pl.range_var;
        e.target_var = pr.range_var;
        e.pointer_form = false;
      }
      out.joins.push_back(std::move(e));
      continue;
    }
    push_other(pred);
  }
  return out;
}

Result<QueryOptimizer::VarPlan> QueryOptimizer::BuildVarLeaf(
    const BoundQuery& query, const std::string& var, std::vector<ImmSelEntry*> imm,
    std::vector<OtherSelEntry*> other) const {
  const FromEntry& from = query.range_vars.at(var);
  MOOD_ASSIGN_OR_RETURN(ClassStats cls, ClassStatsOrLive(from.class_name));
  const double seq = SeqCost(cls.nbpages, active_disk_);

  // Fill in selectivities and access costs (Table 11 columns).
  for (ImmSelEntry* e : imm) {
    e->sequential_access_cost = seq;
    e->access_type = "sequential";
    if (e->is_method) {
      e->selectivity = options_.default_selectivity;
      continue;
    }
    if (e->param >= 0) {
      // Parameterized comparison: the value is unknown until execution, so the
      // estimate must be value-independent (the plan may be cached and reused
      // for any value of the same type). Textbook defaults; no feedback
      // signature, because a measured selectivity for one binding would
      // mispredict the next.
      e->selectivity = e->op == BinaryOp::kEq   ? 0.1
                       : e->op == BinaryOp::kNe ? 0.9
                                                : options_.default_selectivity;
    } else {
      e->feedback_sig = ImmSig(from.class_name, e->attribute, e->op, e->constant);
      double measured = 0;
      if (use_feedback_ &&
          stats_->LookupFeedback(e->feedback_sig, from.class_name, &measured)) {
        e->selectivity = measured;
        e->sel_source = SelSource::kFeedback;
      } else {
        SelSource src = SelSource::kDefault;
        auto sel = estimator_.AtomicSelectivity(from.class_name, e->attribute,
                                                e->op, e->constant, &src);
        if (sel.ok()) {
          e->selectivity = sel.value();
          e->sel_source = src;
        } else {
          // No statistics: textbook defaults.
          e->selectivity = e->op == BinaryOp::kEq   ? 0.1
                           : e->op == BinaryOp::kNe ? 0.9
                                                    : options_.default_selectivity;
        }
      }
    }
    // Usable index?
    auto btree = catalog_->FindIndex(from.class_name, e->attribute, IndexKind::kBTree);
    auto hash = catalog_->FindIndex(from.class_name, e->attribute, IndexKind::kHash);
    if (btree.has_value()) {
      auto tree = objects_->OpenBTree(*btree);
      if (tree.ok()) {
        BPlusTreeStats ts = tree.value()->stats();
        BTreeCostParams bt;
        bt.order = std::max<uint32_t>(ts.order, 2);
        bt.levels = std::max<uint32_t>(ts.levels, 1);
        bt.leaves = std::max<uint64_t>(ts.leaves, 1);
        bt.keysize = ts.keysize;
        bt.unique = ts.unique;
        e->indexed_access_cost = e->op == BinaryOp::kEq
                                     ? IndCost(1, bt, active_disk_)
                                     : RngxCost(e->selectivity, bt, active_disk_);
        e->index = btree;
      }
    } else if (hash.has_value() && e->op == BinaryOp::kEq) {
      // Bucket page + object page.
      e->indexed_access_cost = RndCost(2, active_disk_);
      e->index = hash;
    }
  }

  // Section 8.1: pick the number of indexes to use — the maximum k with
  //   sum_{i<=k} cost_i + RNDCOST(|C| * prod_{i<=k} f_i) < SEQCOST(nbpages(C)).
  std::vector<ImmSelEntry*> indexed;
  for (ImmSelEntry* e : imm) {
    if (e->indexed_access_cost >= 0 && e->index.has_value()) indexed.push_back(e);
  }
  std::sort(indexed.begin(), indexed.end(), [](const ImmSelEntry* a, const ImmSelEntry* b) {
    return a->indexed_access_cost < b->indexed_access_cost;
  });
  size_t chosen = 0;
  {
    double cost_sum = 0;
    double sel_prod = 1.0;
    for (size_t k = 0; k < indexed.size(); k++) {
      cost_sum += indexed[k]->indexed_access_cost;
      sel_prod *= indexed[k]->selectivity;
      double total = cost_sum +
                     RndCost(static_cast<double>(cls.cardinality) * sel_prod, active_disk_);
      if (total < seq) chosen = k + 1;
    }
  }

  PlanPtr leaf;
  double leaf_cost = seq;
  if (chosen > 0) {
    std::vector<IndexProbe> probes;
    double cost_sum = 0;
    double sel_prod = 1.0;
    for (size_t k = 0; k < chosen; k++) {
      indexed[k]->access_type = "indexed";
      probes.push_back(IndexProbe{*indexed[k]->index, indexed[k]->op,
                                  indexed[k]->constant, indexed[k]->param});
      cost_sum += indexed[k]->indexed_access_cost;
      sel_prod *= indexed[k]->selectivity;
    }
    leaf = PlanNode::IndexSel(from, std::move(probes));
    leaf_cost = cost_sum +
                RndCost(static_cast<double>(cls.cardinality) * sel_prod, active_disk_);
    if (chosen == 1 && !indexed[0]->feedback_sig.empty()) {
      // Single probe: its output count over |C| IS the predicate's
      // selectivity, so the profiled run can write it back.
      leaf->feedback_sig = indexed[0]->feedback_sig;
      leaf->feedback_base_rows = static_cast<double>(cls.cardinality);
    }
  } else {
    leaf = PlanNode::Bind(from);
  }
  if (auto type = catalog_->Lookup(from.class_name); type.ok()) {
    leaf->feedback_file = static_cast<uint16_t>(type.value()->extent_file);
    if (leaf->op == PlanOp::kBindClass) leaf->feedback_pages = cls.nbpages;
  }

  // Residual predicates: everything not enforced by the chosen probes, applied
  // in ascending selectivity order (short-circuit heuristic of Section 8.1).
  struct Residual {
    ExprPtr pred;
    double selectivity;
    std::string sig;
  };
  std::vector<Residual> residual;
  for (ImmSelEntry* e : imm) {
    bool used = false;
    for (size_t k = 0; k < chosen; k++) {
      if (indexed[k] == e) {
        used = true;
        break;
      }
    }
    if (!used) residual.push_back(Residual{e->pred, e->selectivity, e->feedback_sig});
  }
  for (OtherSelEntry* e : other) {
    residual.push_back(Residual{e->pred, e->selectivity, e->feedback_sig});
  }
  std::stable_sort(residual.begin(), residual.end(),
                   [](const Residual& a, const Residual& b) {
                     return a.selectivity < b.selectivity;
                   });

  VarPlan vp;
  double sel_all = 1.0;
  for (ImmSelEntry* e : imm) sel_all *= e->selectivity;
  for (OtherSelEntry* e : other) sel_all *= e->selectivity;
  vp.k = static_cast<double>(cls.cardinality) * sel_all;
  vp.accessed = chosen > 0 || !residual.empty();
  if (residual.empty()) {
    vp.plan = leaf;
  } else {
    std::vector<ExprPtr> preds;
    for (const auto& r : residual) preds.push_back(r.pred);
    vp.plan = PlanNode::Filter(leaf, std::move(preds));
    if (residual.size() == 1 && !residual[0].sig.empty()) {
      // One predicate: rows_out / rows_in of this filter is its selectivity.
      vp.plan->feedback_sig = residual[0].sig;
    }
  }
  vp.plan->est_cost = leaf_cost;
  vp.plan->est_rows = vp.k;
  return vp;
}

Result<QueryOptimizer::HopCost> QueryOptimizer::BestJoinStrategy(
    const std::string& c_class, const std::string& attr, const std::string& d_class,
    double k_c, double k_d, bool c_accessed, bool d_accessed) const {
  MOOD_ASSIGN_OR_RETURN(ClassStats cs, ClassStatsOrLive(c_class));
  MOOD_ASSIGN_OR_RETURN(ClassStats ds, ClassStatsOrLive(d_class));
  ImplicitJoinInput in;
  in.k_c = k_c;
  in.k_d = k_d;
  in.card_c = static_cast<double>(cs.cardinality);
  in.card_d = static_cast<double>(ds.cardinality);
  in.nbpages_c = cs.nbpages;
  in.nbpages_d = ds.nbpages;
  in.c_accessed_previously = c_accessed;
  in.d_accessed_previously = d_accessed;
  auto ref = stats_->Reference(c_class, attr);
  if (ref.ok()) {
    in.fan = ref.value().fan;
    in.totref = static_cast<double>(ref.value().totref);
  } else {
    in.fan = 1.0;
    in.totref = std::min(in.card_c, in.card_d);
  }

  // The paper's join formulas price disk only — right for 1994, where CPU
  // vanished next to 25ms pages. Under a measured calibration the page/deref
  // costs are microseconds and per-row CPU (hashing, probing, matching)
  // becomes a first-order term, so surcharge each strategy by the rows it
  // actually touches. Backward traversal already carries the paper's own
  // k_c*fan*k_d*cpu term, so it is left alone; paper mode (cpu_surcharge=0)
  // reproduces every worked example bit-exactly.
  const double cpu_surcharge = calibrated_ ? active_disk_.cpu_cost : 0.0;
  HopCost best;
  best.jc = ForwardTraversalCost(in, active_disk_) +
            (in.k_c * in.fan + in.k_d) * cpu_surcharge;
  best.method = JoinMethod::kForwardTraversal;
  double btc = BackwardTraversalCost(in, active_disk_);
  if (btc < best.jc) {
    best.jc = btc;
    best.method = JoinMethod::kBackwardTraversal;
  }
  double hhc = HashPartitionJoinCost(in, active_disk_) +
               (in.k_c + in.k_d) * cpu_surcharge;
  if (hhc < best.jc) {
    best.jc = hhc;
    best.method = JoinMethod::kHashPartition;
  }
  auto bji = catalog_->FindIndex(c_class, attr, IndexKind::kBinaryJoin);
  if (bji.has_value()) {
    auto idx = objects_->OpenJoinIndex(*bji);
    if (idx.ok()) {
      BPlusTreeStats ts = idx.value()->forward_tree().stats();
      BTreeCostParams bt;
      bt.order = std::max<uint32_t>(ts.order, 2);
      bt.levels = std::max<uint32_t>(ts.levels, 1);
      bt.leaves = std::max<uint64_t>(ts.leaves, 1);
      double bjc = BinaryJoinIndexCost(std::min(k_c, k_d), bt, active_disk_) +
                   std::min(k_c, k_d) * cpu_surcharge;
      if (bjc < best.jc) {
        best.jc = bjc;
        best.method = JoinMethod::kIndexed;
      }
    }
  }
  double card_d = std::max(in.card_d, 1.0);
  best.js = std::min(0.99, in.fan * k_d / card_d);
  return best;
}

Result<QueryOptimizer::VarPlan> QueryOptimizer::ExpandPathSelection(
    const BoundQuery& query, VarPlan current, const PathSelEntry& entry) const {
  const BoundPath& path = entry.path;
  const size_t hops = path.classes.size() - 1;  // reference hops
  if (hops == 0) return Status::Internal("path selection without reference hops");

  struct ChainNode {
    PlanPtr plan;
    size_t left_class;   // index into path.classes
    size_t right_class;
    double k_left;
    double k_right;
    bool accessed;
  };
  std::vector<std::string> class_vars(path.classes.size());
  class_vars[0] = entry.range_var;

  std::vector<ChainNode> nodes;
  nodes.push_back(ChainNode{current.plan, 0, 0, current.k, current.k, current.accessed});
  for (size_t i = 1; i < path.classes.size(); i++) {
    const std::string& cls = path.classes[i];
    class_vars[i] = "_t" + std::to_string(++temp_var_counter_);
    FromEntry fe;
    fe.class_name = cls;
    fe.var = class_vars[i];
    MOOD_ASSIGN_OR_RETURN(ClassStats cs, ClassStatsOrLive(cls));
    ChainNode node;
    node.left_class = node.right_class = i;
    node.k_left = node.k_right = static_cast<double>(cs.cardinality);
    node.accessed = false;
    if (i + 1 == path.classes.size()) {
      // Terminal class: apply the atomic selection A_m theta c here, reusing the
      // Section 8.1 machinery (index choice + residual ordering).
      const std::string& am = path.steps.back().name;
      ExprPtr term_pred = Expr::Binary(
          entry.op, Expr::Path(class_vars[i], {PathStep{am, false, {}}}),
          entry.param >= 0 ? Expr::Parameter(static_cast<uint32_t>(entry.param))
                           : Expr::Literal(entry.constant));
      ImmSelEntry imm;
      imm.range_var = class_vars[i];
      imm.pred = term_pred;
      imm.attribute = am;
      imm.op = entry.op;
      imm.constant = entry.constant;
      imm.param = entry.param;
      // Temporary bound query view providing the synthetic range variable.
      BoundQuery sub = query;
      sub.range_vars[class_vars[i]] = fe;
      MOOD_ASSIGN_OR_RETURN(VarPlan term,
                            BuildVarLeaf(sub, class_vars[i], {&imm}, {}));
      node.plan = term.plan;
      node.k_left = node.k_right = term.k;
      node.accessed = true;
    } else {
      node.plan = PlanNode::Bind(fe);
      if (auto type = catalog_->Lookup(cls); type.ok()) {
        node.plan->feedback_file = static_cast<uint16_t>(type.value()->extent_file);
        node.plan->feedback_pages = cs.nbpages;
      }
    }
    nodes.push_back(std::move(node));
  }

  // Algorithm 8.2: greedily merge the adjacent pair minimizing jc / (1 - js).
  while (nodes.size() > 1) {
    double best_rank = 1e308;
    size_t best_i = 0;
    HopCost best_cost;
    for (size_t i = 0; i + 1 < nodes.size(); i++) {
      size_t hop = nodes[i].right_class;  // ref from classes[hop] to classes[hop+1]
      MOOD_ASSIGN_OR_RETURN(
          HopCost hc,
          BestJoinStrategy(path.classes[hop], path.steps[hop].name,
                           path.classes[hop + 1], nodes[i].k_right,
                           nodes[i + 1].k_left, nodes[i].accessed,
                           nodes[i + 1].accessed));
      if (hc.Rank() < best_rank) {
        best_rank = hc.Rank();
        best_i = i;
        best_cost = hc;
      }
    }
    ChainNode& a = nodes[best_i];
    ChainNode& b = nodes[best_i + 1];
    size_t hop = a.right_class;
    MOOD_ASSIGN_OR_RETURN(ClassStats ds, ClassStatsOrLive(path.classes[hop + 1]));
    double fan = 1.0, totref = std::max(1.0, static_cast<double>(ds.cardinality));
    double totlinks = totref;
    {
      auto ref = stats_->Reference(path.classes[hop], path.steps[hop].name);
      if (ref.ok()) {
        fan = ref.value().fan;
        totref = static_cast<double>(ref.value().totref);
        MOOD_ASSIGN_OR_RETURN(ClassStats cs, ClassStatsOrLive(path.classes[hop]));
        totlinks = fan * static_cast<double>(cs.cardinality);
      }
    }
    double card_d = std::max(1.0, static_cast<double>(ds.cardinality));
    ChainNode merged;
    merged.plan =
        PlanNode::PointerJoin(a.plan, b.plan, best_cost.method, class_vars[hop],
                              {path.steps[hop].name}, class_vars[hop + 1]);
    merged.left_class = a.left_class;
    merged.right_class = b.right_class;
    merged.k_left = a.k_left * std::min(1.0, fan * b.k_left / card_d);
    double reached = CApprox(totlinks, totref, a.k_right * fan);
    merged.k_right = b.k_right * std::min(1.0, reached / card_d);
    merged.accessed = true;
    merged.plan->est_cost = a.plan->est_cost + b.plan->est_cost + best_cost.jc;
    merged.plan->est_rows = merged.k_left;
    nodes[best_i] = merged;
    nodes.erase(nodes.begin() + best_i + 1);
  }

  VarPlan out;
  out.plan = nodes[0].plan;
  out.k = nodes[0].k_left;
  out.accessed = true;
  if (!entry.feedback_sig.empty()) {
    // Observed selectivity of the whole path predicate = top join's output
    // over the root extent's cardinality.
    MOOD_ASSIGN_OR_RETURN(ClassStats root_cs, ClassStatsOrLive(path.classes[0]));
    out.plan->feedback_sig = entry.feedback_sig;
    out.plan->feedback_base_rows = static_cast<double>(root_cs.cardinality);
  }

  // Residual-filter alternative: instead of expanding the chain of implicit
  // joins, evaluate the path expression per root candidate (hops dereferences
  // + one comparison each). Under the paper's 1994 disk this never wins — a
  // dereference costs a 25.1ms random access — but under a measured
  // calibration it prices honestly and beats chain expansion whenever the
  // root candidate set is small or the chain must bind large extents
  // (example81's 20x regression). Gated on an actually-measured calibration so
  // paper-mode and first-run plans are bit-identical; the chain above is
  // always built first so temp-variable numbering does not depend on the
  // choice.
  if (calibrated_) {
    const double filter_cost =
        current.plan->est_cost +
        current.k * (static_cast<double>(hops) * RndCost(1, active_disk_) +
                     active_disk_.cpu_cost);
    if (filter_cost < out.plan->est_cost) {
      VarPlan alt;
      alt.plan = PlanNode::Filter(current.plan, {entry.pred});
      alt.plan->est_cost = filter_cost;
      alt.plan->est_rows = current.k * entry.selectivity;
      alt.plan->feedback_sig = entry.feedback_sig;
      alt.k = current.k * entry.selectivity;
      alt.accessed = true;
      return alt;
    }
  }
  return out;
}

Result<QueryOptimizer::Optimized> QueryOptimizer::Optimize(const SelectStmt& stmt,
                                                           bool use_feedback) {
  std::lock_guard<std::mutex> optimize_lock(optimize_mu_);
  use_feedback_ = use_feedback;
  calibrated_ = false;
  active_disk_ = options_.disk;
  if (use_feedback_) {
    CostCalibration& cal = stats_->calibration();
    if (cal.Valid()) {
      // Measured per-operation costs replace the paper's 1994 disk constants:
      // no seek/rotation term, one "block transfer" = one object dereference,
      // sequential transfer = one extent page, CPU = one predicate evaluation.
      DiskParameters measured;
      measured.s = 0;
      measured.r = 0;
      measured.btt = cal.MsPerDeref();
      measured.ebt = cal.MsPerPage();
      measured.cpu_cost =
          cal.MsPerPredicate() > 0 ? cal.MsPerPredicate() : measured.btt;
      measured.esm_btree_files = false;
      active_disk_ = measured;
      calibrated_ = true;
    }
  }

  Optimized result;
  MOOD_ASSIGN_OR_RETURN(result.bound, binder_.Bind(stmt));
  const BoundQuery& bound = result.bound;

  if (use_feedback_) {
    // Stats gone stale from write churn? Refresh before estimating.
    for (const auto& [var, fe] : bound.range_vars) {
      stats_->MaybeAutoRefresh(fe.class_name);
    }
  }

  std::vector<AndTerm> terms = bound.where_dnf;
  if (terms.empty()) terms.push_back(AndTerm{});

  std::vector<PlanPtr> term_plans;
  for (const AndTerm& term : terms) {
    MOOD_ASSIGN_OR_RETURN(Classified cls, Classify(bound, term));
    AndTermInfo info;
    info.imm = cls.imm;
    info.other = cls.other;
    info.joins = cls.joins;

    // Group dictionary entries per range variable.
    std::map<std::string, std::vector<ImmSelEntry*>> imm_by_var;
    for (auto& e : info.imm) imm_by_var[e.range_var].push_back(&e);
    std::map<std::string, std::vector<OtherSelEntry*>> other_by_var;
    std::vector<OtherSelEntry*> multi_var_other;
    for (auto& e : info.other) {
      if (e.range_var.empty()) {
        multi_var_other.push_back(&e);
      } else {
        other_by_var[e.range_var].push_back(&e);
      }
    }

    // Per-variable leaves (Section 8.1).
    std::map<std::string, VarPlan> var_plans;
    for (const auto& var : bound.var_order) {
      MOOD_ASSIGN_OR_RETURN(
          VarPlan vp, BuildVarLeaf(bound, var, imm_by_var[var], other_by_var[var]));
      var_plans[var] = vp;
    }

    // Path-expression ordering (Algorithm 8.1): rank by F/(1-s) per variable.
    // Missing statistics fall back to defaults (OtherSelInfo-style treatment).
    for (auto& e : cls.paths) {
      if (e.param >= 0) {
        // Parameterized terminal comparison: value-independent default, no
        // feedback signature (same reasoning as immediate selections).
        e.selectivity = e.op == BinaryOp::kEq   ? 0.1
                        : e.op == BinaryOp::kNe ? 0.9
                                                : options_.default_selectivity;
      } else {
        e.feedback_sig = PathSig(e.path, e.op, e.constant);
        double measured = 0;
        if (use_feedback_ && stats_->LookupFeedback(e.feedback_sig,
                                                    e.path.classes[0], &measured)) {
          e.selectivity = measured;
          e.sel_source = SelSource::kFeedback;
        } else {
          SelSource src = SelSource::kDefault;
          auto sel = estimator_.PathSelectivity(e.path, e.op, e.constant, &src);
          e.selectivity = sel.ok() ? sel.value() : options_.default_selectivity;
          if (sel.ok()) e.sel_source = src;
        }
      }
      auto fc = ForwardPathCost(e.path, options_.path_rank_root_objects, estimator_,
                                active_disk_);
      const double hops = static_cast<double>(e.path.classes.size() - 1);
      e.forward_traversal_cost =
          fc.ok() ? fc.value()
                  : active_disk_.s + active_disk_.r +
                        RndCost(options_.path_rank_root_objects * (1.0 + hops),
                                active_disk_);
    }
    std::stable_sort(cls.paths.begin(), cls.paths.end(),
                     [](const PathSelEntry& a, const PathSelEntry& b) {
                       return a.Rank() < b.Rank();
                     });
    info.paths = cls.paths;
    for (const auto& e : info.paths) {
      MOOD_ASSIGN_OR_RETURN(var_plans[e.range_var],
                            ExpandPathSelection(bound, var_plans[e.range_var], e));
    }

    // Explicit joins between range variables: greedy connection by jc/(1-js).
    struct Component {
      PlanPtr plan;
      std::set<std::string> vars;
      double k;
      bool accessed;
    };
    std::vector<Component> components;
    for (const auto& var : bound.var_order) {
      Component c;
      c.plan = var_plans[var].plan;
      c.vars = {var};
      c.k = var_plans[var].k;
      c.accessed = var_plans[var].accessed;
      components.push_back(std::move(c));
    }
    auto comp_of = [&](const std::string& var) -> size_t {
      for (size_t i = 0; i < components.size(); i++) {
        if (components[i].vars.count(var)) return i;
      }
      return components.size();
    };

    std::vector<JoinPredEntry*> pending;
    for (auto& e : info.joins) pending.push_back(&e);
    while (!pending.empty()) {
      double best_rank = 1e308;
      size_t best_idx = SIZE_MAX;
      HopCost best_cost;
      for (size_t i = 0; i < pending.size(); i++) {
        JoinPredEntry* e = pending[i];
        size_t ca = comp_of(e->ref_var);
        size_t cb = comp_of(e->target_var);
        if (ca == cb) {
          // Both sides already joined: apply as a residual filter.
          components[ca].plan = PlanNode::Filter(components[ca].plan, {e->pred});
          components[ca].k *= options_.default_selectivity;
          pending.erase(pending.begin() + i);
          best_idx = SIZE_MAX;
          i = SIZE_MAX;  // restart scan
          break;
        }
        HopCost hc;
        if (e->pointer_form) {
          // Price the final hop of the reference path.
          const BoundPath& rp = e->ref_path;
          size_t hop_idx = rp.classes.size() - 2;
          MOOD_ASSIGN_OR_RETURN(
              hc, BestJoinStrategy(rp.classes[hop_idx], rp.steps[hop_idx].name,
                                   rp.classes[hop_idx + 1], components[ca].k,
                                   components[cb].k, components[ca].accessed,
                                   components[cb].accessed));
        } else {
          // Nested-loop theta join.
          hc.method = JoinMethod::kNestedLoop;
          hc.jc = components[ca].k * components[cb].k * active_disk_.cpu_cost;
          hc.js = options_.default_selectivity;
        }
        if (hc.Rank() < best_rank) {
          best_rank = hc.Rank();
          best_idx = i;
          best_cost = hc;
        }
      }
      if (best_idx == SIZE_MAX) continue;  // a filter application restarted the loop
      JoinPredEntry* e = pending[best_idx];
      pending.erase(pending.begin() + best_idx);
      size_t ca = comp_of(e->ref_var);
      size_t cb = comp_of(e->target_var);
      Component merged;
      if (e->pointer_form) {
        std::vector<std::string> steps;
        for (const auto& s : e->ref_path.steps) {
          if (s.name == "self") continue;
          steps.push_back(s.name);
        }
        merged.plan = PlanNode::PointerJoin(components[ca].plan, components[cb].plan,
                                            best_cost.method, e->ref_var, steps,
                                            e->target_var);
      } else {
        merged.plan =
            PlanNode::NestedLoop(components[ca].plan, components[cb].plan, e->pred);
      }
      merged.vars = components[ca].vars;
      merged.vars.insert(components[cb].vars.begin(), components[cb].vars.end());
      merged.k = std::max(1.0, components[ca].k * std::min(1.0, best_cost.js) *
                                   (e->pointer_form ? 1.0 : components[cb].k));
      merged.accessed = true;
      merged.plan->est_cost = components[ca].plan->est_cost +
                              components[cb].plan->est_cost + best_cost.jc;
      merged.plan->est_rows = merged.k;
      size_t lo = std::min(ca, cb), hi = std::max(ca, cb);
      components[lo] = std::move(merged);
      components.erase(components.begin() + hi);
    }

    // Unconnected components: cross product.
    while (components.size() > 1) {
      Component merged;
      merged.plan =
          PlanNode::NestedLoop(components[0].plan, components[1].plan, nullptr);
      merged.vars = components[0].vars;
      merged.vars.insert(components[1].vars.begin(), components[1].vars.end());
      merged.k = components[0].k * components[1].k;
      merged.accessed = true;
      merged.plan->est_cost =
          components[0].plan->est_cost + components[1].plan->est_cost;
      merged.plan->est_rows = merged.k;
      components[0] = std::move(merged);
      components.erase(components.begin() + 1);
    }

    PlanPtr term_plan = components[0].plan;
    // Multi-variable Other predicates run after all joins.
    for (OtherSelEntry* e : multi_var_other) {
      term_plan = PlanNode::Filter(term_plan, {e->pred});
      term_plan->est_rows = components[0].k * e->selectivity;
      term_plan->est_cost = components[0].plan->est_cost;
    }
    info.plan = term_plan;
    result.terms.push_back(std::move(info));
    term_plans.push_back(term_plan);
  }

  if (term_plans.size() == 1) {
    result.plan = term_plans[0];
  } else {
    result.plan = PlanNode::Union(term_plans);
    for (const auto& t : term_plans) {
      result.plan->est_cost += t->est_cost;
      result.plan->est_rows += t->est_rows;
    }
  }
  return result;
}

std::string QueryOptimizer::Optimized::Explain() const {
  std::string out;
  char buf[256];
  for (size_t t = 0; t < terms.size(); t++) {
    out += "AND-term " + std::to_string(t + 1) + ":\n";
    if (!terms[t].imm.empty()) {
      out += "  ImmSelInfo:\n";
      for (const auto& e : terms[t].imm) {
        std::snprintf(buf, sizeof(buf),
                      "    %-4s %-40s sel=%-10.4g idx=%-10.4g seq=%-10.4g %s [sel: %s]\n",
                      e.range_var.c_str(), e.pred->ToString().c_str(), e.selectivity,
                      e.indexed_access_cost, e.sequential_access_cost,
                      e.access_type.c_str(), SelSourceName(e.sel_source));
        out += buf;
      }
    }
    if (!terms[t].paths.empty()) {
      out += "  PathSelInfo (ordered by F/(1-s)):\n";
      for (const auto& e : terms[t].paths) {
        std::snprintf(buf, sizeof(buf),
                      "    %-4s %-40s sel=%-10.4g F=%-10.4f F/(1-s)=%-10.4f [sel: %s]\n",
                      e.range_var.c_str(), e.pred->ToString().c_str(), e.selectivity,
                      e.forward_traversal_cost, e.Rank(), SelSourceName(e.sel_source));
        out += buf;
      }
    }
    if (!terms[t].other.empty()) {
      out += "  OtherSelInfo:\n";
      for (const auto& e : terms[t].other) {
        std::snprintf(buf, sizeof(buf), "    %-4s %-40s sel=%-10.4g [sel: %s]\n",
                      e.range_var.c_str(), e.pred->ToString().c_str(), e.selectivity,
                      SelSourceName(e.sel_source));
        out += buf;
      }
    }
    out += "  Plan:\n" + terms[t].plan->Explain(2);
  }
  return out;
}

}  // namespace mood
