#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mood {

/// Buffer-pool statistics snapshot (hits/misses/evictions) consumed by
/// bench_file_ops. Counters are maintained as atomics inside the pool so
/// stats()/ResetStats() are coherent while other threads fetch pages.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  void Clear() { *this = BufferPoolStats{}; }
};

/// LRU buffer pool over a DiskManager. Fulfils the "storage management" kernel
/// function the paper delegates to the Exodus Storage Manager.
///
/// Pages are pinned by Fetch/New and must be unpinned; pinned pages are never
/// evicted. An optional flush hook implements the WAL rule: before a dirty page is
/// written back, the hook is invoked so the log can be forced first.
///
/// Thread safety: every public entry point takes the pool mutex, so concurrent
/// FetchPage/UnpinPage/FlushPage callers (the parallel executor's workers) are
/// safe. Pin counts keep a resident page's frame stable, so holding a pinned
/// Page* across the call boundary remains valid under concurrency. Statistics
/// are atomics and may be read or cleared at any time without tearing.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t pool_size);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, reading it from disk on a miss. The returned page is pinned.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocates a fresh page on disk and returns it pinned.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the page as modified.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes one page back if dirty. The page stays cached.
  Status FlushPage(PageId page_id);

  /// Writes back every dirty page.
  Status FlushAll();

  /// Set a hook invoked with the page about to be flushed (WAL rule).
  void SetPreFlushHook(std::function<Status(const Page&)> hook) {
    pre_flush_hook_ = std::move(hook);
  }

  size_t pool_size() const { return frames_.size(); }

  /// Coherent snapshot of the counters (safe under concurrent fetches).
  BufferPoolStats stats() const {
    BufferPoolStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

  /// Number of currently pinned pages (used by concurrency tests to assert no
  /// lost pins).
  size_t PinnedPageCount() const;

  DiskManager* disk() const { return disk_; }

 private:
  /// Finds a frame for a new resident page: free list first, else LRU victim.
  Result<size_t> GetVictimFrame();

  DiskManager* disk_;
  std::vector<Page> frames_;
  std::list<size_t> free_frames_;
  /// LRU list of evictable frame indexes; most recently used at the back.
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::unordered_map<PageId, size_t> page_table_;
  std::function<Status(const Page&)> pre_flush_hook_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  mutable std::mutex mu_;
};

/// RAII pin guard: unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  bool valid() const { return page_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace mood
