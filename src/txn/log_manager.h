#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace mood {

class MetricsRegistry;

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kPageWrite = 4,
  kCheckpoint = 5,
};

/// A decoded log record. Page-write records carry full before/after page images
/// (physical logging): redo/undo stay trivially correct and idempotent when paired
/// with page LSNs.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kBegin;
  PageId page_id = kInvalidPageId;
  std::string before;
  std::string after;
};

/// Commit-durability policy (DatabaseOptions::wal_fsync).
enum class WalFsync : uint8_t {
  /// Every commit forces its own write + fsync before returning. Strongest
  /// latency guarantee, one fsync per commit.
  kAlways = 0,
  /// Commits hand their LSN to a background flusher and block until it is
  /// durable; the flusher collects committers for a short window so N of them
  /// share one fsync (group commit).
  kGroup = 1,
  /// Commits return without forcing the log. Durability only at checkpoints
  /// and clean close — a crash loses recent commits but never corrupts.
  kOff = 2,
};

struct WalOptions {
  WalFsync fsync_mode = WalFsync::kAlways;
  /// How long the group-commit flusher waits to collect committers before
  /// issuing the shared fsync. Only meaningful for WalFsync::kGroup.
  uint32_t group_commit_window_us = 100;
};

/// Append-only write-ahead log backed by one file. Provides the "backup and
/// recovery" kernel function the paper obtains from the Exodus Storage Manager.
///
/// On-disk record framing: [u32 len][u32 CRC-32C of body][body]. The CRC is
/// verified on every read; the first record that fails (length overruns the
/// file or checksum mismatch) is treated as the torn tail of an interrupted
/// write — scanning stops there and the remainder is discarded, which is
/// exactly the prefix-durability contract commits rely on. Open() physically
/// ftruncates the torn tail away before accepting appends, so the valid
/// prefix is always contiguous: records written after a recovery can never
/// hide behind leftover garbage and be dropped by the *next* recovery.
///
/// Failure model: a flush that fails after bytes may have reached the file
/// or page cache (short write, failed fsync, torn failpoint) leaves the log
/// suffix indeterminate. Such failures are sticky in every fsync mode —
/// all further Append/Flush/SyncCommit calls return the original error and
/// Close() drops (never rewrites) the unacknowledged buffer — until the log
/// is reopened and recovery re-derives the durable prefix.
///
/// Failpoints (common/failpoint.h): `log.append` (record construction),
/// `log.flush` (buffer write + fsync; torn mode persists only the first half
/// of the pending buffer, modelling a crash mid-write).
class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Status Open(const std::string& path, const WalOptions& options = {});
  Status Close();

  Result<Lsn> AppendBegin(uint64_t txn_id);
  Result<Lsn> AppendCommit(uint64_t txn_id);
  Result<Lsn> AppendAbort(uint64_t txn_id);
  Result<Lsn> AppendPageWrite(uint64_t txn_id, PageId page, Slice before, Slice after);
  Result<Lsn> AppendCheckpoint();

  /// Forces buffered log records to stable storage unconditionally (the WAL
  /// rule and checkpoints use this regardless of fsync mode).
  Status Flush();

  /// Makes the commit record at `lsn` durable per the configured fsync mode:
  /// kAlways forces immediately, kGroup blocks on the shared flusher until
  /// durable_lsn() covers `lsn`, kOff returns at once. A failed group flush is
  /// sticky: every subsequent SyncCommit reports it.
  Status SyncCommit(Lsn lsn);

  /// Reads every record currently in the log, in LSN order. Stops at the first
  /// torn/corrupt record (counted in the `wal.torn_tail_drops` metric).
  Status ReadAll(std::vector<LogRecord>* out);

  /// Discards the log contents (after a checkpoint has flushed all data pages).
  Status Truncate();

  Lsn last_lsn() const { return next_lsn_ - 1; }
  /// Highest LSN known to be on stable storage.
  Lsn durable_lsn() const { return durable_lsn_.load(std::memory_order_acquire); }
  bool is_open() const { return fd_ >= 0; }
  WalFsync fsync_mode() const { return options_.fsync_mode; }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  /// Commit batches the flusher has retired (0 outside kGroup mode).
  uint64_t group_commit_batches() const { return batch_hist_.count(); }

  /// Registers the `wal.*` probe: appends/flushes/fsyncs/torn_tail_drops
  /// counters and the group-commit batch-size histogram (count/sum/p50/p99).
  /// The LogManager owns its instruments — Database destroys the registry
  /// before the log, so a probe (unregisterable by component) is the only
  /// lifetime-safe wiring.
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  Result<Lsn> Append(LogRecordType type, uint64_t txn_id, PageId page, Slice before,
                     Slice after);
  /// Writes the pending buffer and fsyncs. Requires mu_ held; carries the
  /// `log.flush` failpoint and advances durable_lsn_ on success.
  Status FlushLocked();
  void FlusherLoop();

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  Lsn next_lsn_ = 1;
  std::string buffer_;  // unflushed tail
  mutable std::mutex mu_;

  // Group-commit state (all under mu_ except the atomics).
  std::atomic<Lsn> durable_lsn_{0};
  Lsn requested_lsn_ = 0;       // highest LSN a committer asked to be made durable
  size_t commit_waiters_ = 0;   // committers currently blocked in SyncCommit
  Status flusher_error_;        // sticky: first error from the background flush
  /// First indeterminate flush failure (short write / failed fsync / torn
  /// failpoint): bytes may be durable without acknowledgment, so every
  /// subsequent append/flush refuses with this status until reopen.
  Status sticky_error_;
  bool stop_flusher_ = false;
  std::thread flusher_;
  std::condition_variable work_cv_;     // wakes the flusher
  std::condition_variable durable_cv_;  // wakes committers

  // wal.* instruments (owned; see RegisterMetrics).
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> torn_tail_drops_{0};
  MetricHistogram batch_hist_;
};

}  // namespace mood
