// Section 5 — basic file operations: the modeled access costs vs the *measured*
// page-access behaviour of our storage substrate (the ESM replacement):
//   - sequential extent scan: page reads classified sequential vs random,
//   - random object fetches: expected distinct pages (Cardenas/Yao) vs measured,
//   - B+-tree probes: INDCOST's predicted page accesses vs measured reads.

#include "bench/bench_util.h"
#include "common/random.h"
#include "cost/file_ops.h"
#include "index/bptree.h"
#include "index/key_codec.h"
#include "stats/approx.h"

using namespace mood;
using namespace mood::bench;

int main() {
  BenchDb scratch("file_ops");
  Database db;
  DatabaseOptions opts;
  opts.pool_pages = 32;  // small pool: most accesses hit the disk layer
  Check(db.Open(scratch.Path("mood"), opts), "open");
  Check(db.Execute("CREATE CLASS Blob TUPLE (id Integer, payload String(512))")
            .status(),
        "ddl");
  const int kObjects = 2000;
  std::vector<Oid> oids;
  for (int i = 0; i < kObjects; i++) {
    oids.push_back(CheckV(
        db.objects()->CreateObject(
            "Blob", MoodValue::Tuple({MoodValue::Integer(i),
                                      MoodValue::String(std::string(400, 'x'))})),
        "create"));
  }
  Check(db.Checkpoint(), "checkpoint");
  uint32_t pages = CheckV(db.objects()->ExtentPages("Blob"), "pages");
  std::printf("extent: %d objects over %u pages, pool = 32 pages\n", kObjects, pages);

  Checks checks;
  Banner("Sequential scan: measured access pattern");
  {
    db.storage()->disk()->ResetStats();
    db.storage()->buffer_pool()->ResetStats();
    size_t n = 0;
    Check(db.objects()->ScanExtent("Blob", false, {},
                                   [&](Oid, const MoodValue&) {
                                     n++;
                                     return Status::OK();
                                   }),
          "scan");
    const DiskStats& ds = db.storage()->disk()->stats();
    Table t({"metric", "value"});
    t.AddRow({"objects scanned", std::to_string(n)});
    t.AddRow({"disk reads", std::to_string(ds.reads)});
    t.AddRow({"sequential reads", std::to_string(ds.sequential_reads)});
    t.AddRow({"random reads", std::to_string(ds.random_reads)});
    t.Print();
    checks.Expect(ds.reads >= pages, "scan touches every extent page");
    checks.Expect(ds.sequential_reads > ds.random_reads,
                  "extent pages are read mostly sequentially (non-ESM regime)");
  }

  Banner("Random fetches: expected distinct pages vs measured");
  {
    Random rng(5);
    Table t({"k fetches", "Cardenas expected", "Yao exact", "measured distinct reads"});
    for (size_t k : {10u, 50u, 200u, 1000u}) {
      Check(db.Checkpoint(), "checkpoint");
      // Re-open to drop the buffer pool cache.
      Check(db.Close(), "close");
      Check(db.Open(scratch.Path("mood"), opts), "reopen");
      db.storage()->disk()->ResetStats();
      for (size_t i = 0; i < k; i++) {
        Check(db.objects()->Fetch(oids[rng.Uniform(oids.size())]).status(), "fetch");
      }
      double cardenas = Cardenas(pages, static_cast<double>(k));
      double yao = YaoExact(static_cast<uint64_t>(kObjects), pages,
                            static_cast<uint64_t>(k));
      t.AddRow({std::to_string(k), Fmt(cardenas, 1), Fmt(yao, 1),
                std::to_string(db.storage()->disk()->stats().reads)});
    }
    t.Print();
    std::printf(
        "measured reads track the expected distinct-page curves (small pool:\n"
        "nearly every distinct page is one read; repeats may hit the pool).\n");
  }

  Banner("B+-tree probes: INDCOST prediction vs measured reads");
  {
    auto tree = CheckV(
        BPlusTree::Create(db.storage()->buffer_pool(), db.storage(), false), "tree");
    for (int i = 0; i < 20000; i++) {
      Check(tree->Insert(MakeIndexKey(MoodValue::Integer(i)),
                         static_cast<uint64_t>(i)),
            "insert");
    }
    BPlusTreeStats ts = tree->stats();
    BTreeCostParams bt;
    bt.order = ts.order;
    bt.levels = ts.levels;
    bt.leaves = ts.leaves;
    DiskParameters unit;  // s+r+btt = 25.14 per access; divide out to get accesses
    double per_access = RndCost(1, unit);
    Check(db.Checkpoint(), "checkpoint");

    Table t({"k probes", "INDCOST accesses", "measured disk reads (cold)"});
    Random rng(17);
    for (size_t k : {1u, 10u, 100u, 1000u}) {
      Check(db.Close(), "close");
      Check(db.Open(scratch.Path("mood"), opts), "reopen");
      auto reopened = CheckV(
          BPlusTree::Open(db.storage()->buffer_pool(), db.storage(), tree->meta_page()),
          "reopen tree");
      db.storage()->disk()->ResetStats();
      for (size_t i = 0; i < k; i++) {
        int key = static_cast<int>(rng.Uniform(20000));
        Check(reopened->SearchEqual(MakeIndexKey(MoodValue::Integer(key))).status(),
              "probe");
      }
      double predicted = IndCost(static_cast<double>(k), bt, unit) / per_access;
      t.AddRow({std::to_string(k), Fmt(predicted, 1),
                std::to_string(db.storage()->disk()->stats().reads)});
    }
    t.Print();
    std::printf(
        "(tree: order=%u levels=%u leaves=%llu; the model assumes no buffering,\n"
        "so it upper-bounds the warm-pool measurement at large k)\n",
        ts.order, ts.levels, (unsigned long long)ts.leaves);
  }
  return checks.ExitCode();
}
