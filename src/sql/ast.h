#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "catalog/catalog.h"
#include "types/value.h"

namespace mood {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

std::string_view BinaryOpName(BinaryOp op);
bool IsComparison(BinaryOp op);

/// One step of a path expression: an attribute access or a method call.
struct PathStep {
  std::string name;
  bool is_call = false;
  std::vector<ExprPtr> args;
};

enum class ExprKind { kLiteral, kPath, kBinary, kUnary, kParameter };

/// MOODSQL expression tree. A path expression `v.a.b.c()` is one kPath node with
/// range variable "v" and steps [a, b, c()].
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  MoodValue literal;

  // kParameter: 0-based position of a `?` placeholder, bound at execution
  uint32_t param_index = 0;

  // kPath
  std::string range_var;
  std::vector<PathStep> steps;  // may be empty: the bare range variable

  // kBinary
  BinaryOp op = BinaryOp::kAnd;
  ExprPtr lhs, rhs;

  // kUnary
  UnaryOp uop = UnaryOp::kNot;
  ExprPtr operand;

  static ExprPtr Literal(MoodValue v);
  static ExprPtr Path(std::string var, std::vector<PathStep> steps);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Parameter(uint32_t index);

  /// Textual rendering (used by EXPLAIN and the optimizer dictionaries).
  std::string ToString() const;
};

/// Number of `?` placeholders in an expression tree (max param_index + 1).
uint32_t ParamCount(const ExprPtr& expr);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// One FROM-clause entry: [EVERY] Class [- Sub1 - Sub2 ...] var
struct FromEntry {
  std::string class_name;
  bool every = false;                  // include subclass extents
  std::vector<std::string> excludes;   // the `-` operator
  std::string var;
};

struct OrderKey {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  std::vector<ExprPtr> projection;
  std::vector<FromEntry> from;
  ExprPtr where;                    // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                   // may be null
  std::vector<OrderKey> order_by;
  bool distinct = false;
};

/// Number of `?` placeholders anywhere in a SELECT statement.
uint32_t ParamCount(const SelectStmt& stmt);

struct CreateClassStmt {
  Catalog::ClassDef def;
};

/// new ClassName <v1, v2, ...> [AS name]
struct NewObjectStmt {
  std::string class_name;
  std::vector<ExprPtr> values;
  std::string bind_name;  // optional persistent name (Bind operator)
};

/// UPDATE Class var SET attr = expr, ... [WHERE ...]
struct UpdateStmt {
  std::string class_name;
  std::string var;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

/// DELETE FROM Class var [WHERE ...]
struct DeleteStmt {
  std::string class_name;
  std::string var;
  ExprPtr where;
};

/// CREATE [UNIQUE] INDEX name ON Class(attr-or-path) USING BTREE|HASH|PATH|JOININDEX
struct CreateIndexStmt {
  std::string index_name;
  std::string class_name;
  std::string attribute;  // dotted path for USING PATH
  IndexKind kind = IndexKind::kBTree;
  bool unique = false;
};

struct DropClassStmt {
  std::string class_name;
};

/// CREATE MATERIALIZED VIEW name AS <select>. `select_sql` preserves the
/// SELECT's source text verbatim so the definition can be persisted in the
/// catalog and re-parsed on reopen.
struct CreateMatViewStmt {
  std::string name;
  SelectStmt select;
  std::string select_sql;
};

/// DROP MATERIALIZED VIEW name
struct DropMatViewStmt {
  std::string name;
};

/// EXPLAIN [ANALYZE] [VERBOSE] <select>. Plain EXPLAIN optimizes and renders
/// the plan; ANALYZE also executes it and annotates each operator with actuals.
struct ExplainStmt {
  SelectStmt select;
  bool analyze = false;
  bool verbose = false;
};

/// ANALYZE [<class>]: collect optimizer statistics (Table 8 plus histograms
/// and distinct sketches) for one class, or for every class when none is
/// named.
struct AnalyzeStmt {
  std::string class_name;  ///< empty: all classes
};

using Statement = std::variant<SelectStmt, CreateClassStmt, NewObjectStmt, UpdateStmt,
                               DeleteStmt, CreateIndexStmt, DropClassStmt, ExplainStmt,
                               AnalyzeStmt, CreateMatViewStmt, DropMatViewStmt>;

}  // namespace mood
