#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "objects/object_manager.h"
#include "stats/feedback.h"
#include "stats/histogram.h"

namespace mood {

/// Per-class statistics (paper Table 8, class-level rows).
struct ClassStats {
  uint64_t cardinality = 0;  ///< |C|
  uint32_t nbpages = 0;      ///< nbpages(C)
  uint32_t size = 0;         ///< size(C), bytes per instance
};

/// Per-atomic-attribute statistics (Table 8): notnull, dist, max, min.
/// max/min are kept as doubles (numeric attributes); for strings only dist and
/// notnull are meaningful.
struct AttributeStats {
  double notnull = 1.0;
  uint64_t dist = 0;
  double max_val = 0;
  double min_val = 0;
  bool has_range = false;  ///< max/min meaningful (numeric attribute)
  /// Equi-depth histogram over the attribute's numeric values. Only present
  /// after Collect() on a numeric attribute; injected (modeled-mode) stats
  /// never carry one, so paper-mode selectivity formulas stay byte-exact.
  std::shared_ptr<const EquiDepthHistogram> histogram;
};

/// Per-reference-attribute statistics for A: C -> D (Table 8): fan, totref.
/// totlinks and hitprb are derived:
///   totlinks(A,C,D) = fan(A,C,D) * |C|
///   hitprb(A,C,D)   = totref(A,C,D) / |D|
struct ReferenceStats {
  std::string target_class;  ///< D
  double fan = 1.0;          ///< fan(A,C,D)
  uint64_t totref = 0;       ///< totref(A,C,D)
};

/// Holds and computes the cost-model parameters of Section 4. Statistics can be
/// *collected* by scanning extents (measured mode) or *injected* directly
/// (modeled mode — how bench_example81 reproduces the paper's Tables 13–15
/// without materializing 260k objects).
class StatisticsManager {
 public:
  explicit StatisticsManager(ObjectManager* objects) : objects_(objects) {}

  /// Scans the class extent and recomputes class, attribute and reference stats.
  Status Collect(const std::string& class_name);

  /// Histogram bucket target + feedback-store sizing, set once at Open.
  void Configure(size_t histogram_buckets, const FeedbackOptions& feedback);
  /// Metrics hookup (nullptrs allowed; detach with nullptrs before registry
  /// teardown, matching the executor's pattern).
  void SetMetrics(MetricCounter* feedback_hits, MetricCounter* feedback_writes,
                  MetricCounter* feedback_invalidations,
                  MetricCounter* refreshes) {
    feedback_hits_ = feedback_hits;
    feedback_writes_ = feedback_writes;
    feedback_invalidations_ = feedback_invalidations;
    refreshes_ = refreshes;
  }

  FeedbackStore& feedback() { return feedback_; }
  CostCalibration& calibration() { return calibration_; }

  /// Monotone counter bumped whenever anything that shapes plans changes:
  /// collected/injected statistics, a recorded feedback selectivity, or the
  /// measured cost calibration. Cached plans stamp it and re-optimize on
  /// mismatch, so the feedback loop keeps improving hot queries instead of
  /// freezing their first plan.
  uint64_t plans_version() const {
    return plans_version_.load(std::memory_order_acquire);
  }
  void BumpPlansVersion() {
    plans_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  uint64_t feedback_refresh_delta() const {
    return feedback_opts_.refresh_epoch_delta;
  }

  /// Records one measured selectivity under `sig`, stamped with the current
  /// schema epoch and the extent file's write epoch.
  void RecordFeedback(const std::string& sig, double selectivity,
                      const std::string& cls);
  /// Looks up a still-valid measured selectivity for `sig` on class `cls`.
  bool LookupFeedback(const std::string& sig, const std::string& cls,
                      double* selectivity);

  /// Re-collects stats for `cls` when its extent file's write epoch moved more
  /// than the refresh threshold since the last Collect. No-op for classes
  /// whose stats were injected rather than collected.
  void MaybeAutoRefresh(const std::string& cls);

  // Injection (modeled mode).
  void SetClassStats(const std::string& cls, ClassStats s) {
    classes_[cls] = s;
    BumpPlansVersion();
  }
  void SetAttributeStats(const std::string& cls, const std::string& attr,
                         AttributeStats s) {
    attributes_[{cls, attr}] = s;
    BumpPlansVersion();
  }
  void SetReferenceStats(const std::string& cls, const std::string& attr,
                         ReferenceStats s) {
    references_[{cls, attr}] = s;
    BumpPlansVersion();
  }

  Result<ClassStats> Class(const std::string& cls) const;
  Result<AttributeStats> Attribute(const std::string& cls,
                                   const std::string& attr) const;
  Result<ReferenceStats> Reference(const std::string& cls,
                                   const std::string& attr) const;

  /// Derived parameters.
  Result<double> TotLinks(const std::string& cls, const std::string& attr) const;
  Result<double> HitPrb(const std::string& cls, const std::string& attr) const;

  bool HasClass(const std::string& cls) const { return classes_.count(cls) > 0; }

  /// All classes with stats (for the Table 13–15 printers).
  std::vector<std::string> Classes() const;
  std::vector<std::pair<std::string, std::string>> ReferenceAttributes() const;
  std::vector<std::pair<std::string, std::string>> AtomicAttributes() const;

 private:
  struct CollectEpochs {
    uint64_t schema_epoch = 0;
    uint64_t write_epoch = 0;
    uint16_t file = 0;
  };

  /// Extent file + current write epoch for `cls`; false when unknown.
  bool ExtentEpoch(const std::string& cls, uint16_t* file,
                   uint64_t* write_epoch) const;

  ObjectManager* objects_;
  std::map<std::string, ClassStats> classes_;
  std::map<std::pair<std::string, std::string>, AttributeStats> attributes_;
  std::map<std::pair<std::string, std::string>, ReferenceStats> references_;
  /// Epochs at the time of the last Collect(), only for collected classes.
  std::map<std::string, CollectEpochs> collected_;
  size_t histogram_buckets_ = 32;
  FeedbackOptions feedback_opts_;
  FeedbackStore feedback_;
  CostCalibration calibration_;
  MetricCounter* feedback_hits_ = nullptr;
  MetricCounter* feedback_writes_ = nullptr;
  MetricCounter* feedback_invalidations_ = nullptr;
  MetricCounter* refreshes_ = nullptr;
  std::atomic<uint64_t> plans_version_{0};
};

}  // namespace mood
