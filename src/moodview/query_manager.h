#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"

namespace mood {

/// MoodView's SQL-based query manager (Section 9.3): a query editor session
/// "with facilities for accessing previous queries". All database operations go
/// through SQL strings interpreted by the kernel — the standard communication
/// protocol between the GUI and the kernel (Section 9.4).
class QueryManager {
 public:
  using ExecuteFn = std::function<Result<QueryResult>(const std::string& sql)>;

  explicit QueryManager(ExecuteFn execute) : execute_(std::move(execute)) {}

  /// Runs a query, recording it (and its outcome) in the session history.
  Result<QueryResult> Run(const std::string& sql);

  /// Re-runs history entry `index` (0 = oldest).
  Result<QueryResult> Rerun(size_t index);

  struct HistoryEntry {
    std::string sql;
    bool succeeded = false;
    size_t result_rows = 0;
  };
  const std::vector<HistoryEntry>& history() const { return history_; }
  const QueryResult& last_result() const { return last_result_; }

  std::string RenderHistory() const;

 private:
  ExecuteFn execute_;
  std::vector<HistoryEntry> history_;
  QueryResult last_result_;
};

}  // namespace mood
