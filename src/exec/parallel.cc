#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace mood {

size_t DefaultExecThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ClampBatchSize(size_t requested) {
  if (requested == 0) return 0;
  return std::min(requested, kMaxBatchRows);
}

std::vector<Morsel> MakeMorsels(size_t n, size_t morsel_size) {
  if (morsel_size == 0) morsel_size = 1;
  std::vector<Morsel> morsels;
  morsels.reserve((n + morsel_size - 1) / morsel_size);
  for (size_t begin = 0; begin < n; begin += morsel_size) {
    morsels.push_back({begin, std::min(begin + morsel_size, n)});
  }
  return morsels;
}

Status ParallelFor(size_t threads, size_t num_tasks,
                   const std::function<Status(size_t)>& task) {
  if (threads <= 1 || num_tasks <= 1) {
    for (size_t i = 0; i < num_tasks; i++) MOOD_RETURN_IF_ERROR(task(i));
    return Status::OK();
  }

  std::atomic<size_t> cursor{0};
  // Smallest failing task index so far; workers skip tasks above it.
  std::atomic<size_t> first_error{num_tasks};
  std::mutex error_mu;
  Status error_status;  // status of the task at first_error; guarded by error_mu

  auto worker = [&] {
    for (;;) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      if (i > first_error.load(std::memory_order_acquire)) continue;
      Status st = task(i);
      if (st.ok()) continue;
      size_t prev = first_error.load(std::memory_order_relaxed);
      while (i < prev &&
             !first_error.compare_exchange_weak(prev, i, std::memory_order_release)) {
      }
      if (i <= prev) {
        std::lock_guard<std::mutex> lock(error_mu);
        // Re-check under the lock: another worker may have claimed a smaller
        // index between the CAS and here.
        if (i <= first_error.load(std::memory_order_relaxed)) error_status = st;
      }
    }
  };

  size_t spawn = std::min(threads, num_tasks) - 1;  // caller thread also works
  std::vector<std::thread> pool;
  pool.reserve(spawn);
  for (size_t t = 0; t < spawn; t++) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();

  if (first_error.load(std::memory_order_acquire) < num_tasks) return error_status;
  return Status::OK();
}

}  // namespace mood
