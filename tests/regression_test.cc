#include <gtest/gtest.h>

#include <set>

#include "core/database.h"
#include "core/paper_example.h"
#include "index/key_codec.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// The paper's Section 3.1 DDL, verbatim — including its trailing commas after
/// the last tuple attribute and the METHODS colon syntax.
TEST(PaperVerbatimTest, Section31DdlParsesAndDefines) {
  TempDir dir;
  Database db;
  MOOD_ASSERT_OK(db.Open(dir.Path("mood")));
  MOOD_ASSERT_OK(db.ExecuteScript(R"SQL(
CREATE CLASS VehicleDriveTrain
TUPLE (
    engine REFERENCE (VehicleEngine),
    transmission String(32)
);
CREATE CLASS VehicleEngine
TUPLE (
    size Integer,
    cylinders Integer
);
CREATE CLASS Employee
TUPLE (
    ssno Integer,
    name String(32),
    age Integer
);
CREATE CLASS Company
TUPLE (
    name String(32),
    location String(32),
    president REFERENCE (Employee)
);
CREATE CLASS Vehicle
TUPLE (
    id Integer,
    weight Integer,
    drivetrain REFERENCE (VehicleDriveTrain),
    manufacturer REFERENCE (Company)
)
METHODS:
    lbweight () Integer,
    weightkg () Integer;
CREATE CLASS Automobile
    INHERITS FROM Vehicle;
CREATE CLASS JapaneseAuto
    INHERITS FROM Automobile;
)SQL").status());
  // Note: forward reference VehicleDriveTrain -> VehicleEngine is allowed at
  // definition time; the binder checks it at query time.
  MOOD_ASSERT_OK_AND_ASSIGN(auto attrs, db.catalog()->AllAttributes("JapaneseAuto"));
  EXPECT_EQ(attrs.size(), 4u);
  MOOD_ASSERT_OK_AND_ASSIGN(auto fns, db.catalog()->AllFunctions("JapaneseAuto"));
  EXPECT_EQ(fns.size(), 2u);
  // The paper's query over this schema parses and binds.
  MOOD_ASSERT_OK(db.Explain(
                       "SELECT c FROM EVERY Automobile - JapaneseAuto c, "
                       "VehicleEngine v WHERE c.drivetrain.transmission = "
                       "'AUTOMATIC' AND c.drivetrain.engine = v AND v.cylinders > 4",
                       ExplainOptions{})
                     .status());
}

class RegressionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK(paperdb::PopulatePaperData(&db_, 60).status());
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
  }
  TempDir dir_;
  Database db_;
};

TEST_F(RegressionFixture, GroupByMultipleKeys) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult qr,
      db_.Query("SELECT d.transmission, d.engine.cylinders FROM VehicleDriveTrain d "
                "GROUP BY d.transmission, d.engine.cylinders"));
  std::set<std::pair<std::string, int32_t>> keys;
  for (const auto& row : qr.rows) {
    EXPECT_TRUE(keys.emplace(row[0].AsString(), row[1].AsInteger()).second)
        << "duplicate group";
  }
}

TEST_F(RegressionFixture, OrderByPathAndMultipleKeys) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult qr,
      db_.Query("SELECT v.drivetrain.engine.cylinders, v.weight FROM Vehicle v "
                "ORDER BY v.drivetrain.engine.cylinders, v.weight DESC"));
  for (size_t i = 1; i < qr.rows.size(); i++) {
    int32_t c_prev = qr.rows[i - 1][0].AsInteger();
    int32_t c_cur = qr.rows[i][0].AsInteger();
    EXPECT_LE(c_prev, c_cur);
    if (c_prev == c_cur) {
      EXPECT_GE(qr.rows[i - 1][1].AsInteger(), qr.rows[i][1].AsInteger());
    }
  }
}

TEST_F(RegressionFixture, DistinctOverReferences) {
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult all,
                            db_.Query("SELECT v.drivetrain FROM Vehicle v"));
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult distinct,
                            db_.Query("SELECT DISTINCT v.drivetrain FROM Vehicle v"));
  EXPECT_LE(distinct.rows.size(), all.rows.size());
  std::set<uint64_t> seen;
  for (const auto& row : distinct.rows) {
    EXPECT_TRUE(seen.insert(row[0].AsReference().Pack()).second);
  }
}

TEST_F(RegressionFixture, UpdateGrowingStringKeepsIndexConsistent) {
  MOOD_ASSERT_OK(db_.Execute("CREATE INDEX comp_name ON Company(name) USING BTREE")
                     .status());
  // Grow one company's name so its record is forwarded; the index must follow.
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult up,
      db_.Execute("UPDATE Company c SET name = 'renamed-company-zero' "
                  "WHERE c.name = 'BMW'"));
  EXPECT_EQ(up.affected, 1u);
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult old_name,
                            db_.Query("SELECT c FROM Company c WHERE c.name = 'BMW'"));
  EXPECT_TRUE(old_name.rows.empty());
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult new_name,
      db_.Query("SELECT c FROM Company c WHERE c.name = 'renamed-company-zero'"));
  EXPECT_EQ(new_name.rows.size(), 1u);
}

TEST_F(RegressionFixture, ExplainOnDisjunctionShowsBothTerms) {
  ExplainOptions verbose;
  verbose.verbose = true;
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExplainResult res,
      db_.Explain("SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR "
                  "e.cylinders = 30",
                  verbose));
  std::string text = res.Render();
  EXPECT_NE(text.find("AND-term 1"), std::string::npos);
  EXPECT_NE(text.find("AND-term 2"), std::string::npos);
}

TEST_F(RegressionFixture, ConstantFoldingInWhere) {
  // 2 + 2 folds; the predicate reduces to cylinders = 4.
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult folded,
      db_.Query("SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 + 2"));
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult direct,
      db_.Query("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4"));
  EXPECT_EQ(folded.rows.size(), direct.rows.size());
}

TEST_F(RegressionFixture, ComparisonWithPathOnRightSide) {
  // Literal-on-left comparisons are normalized by the classifier.
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult a, db_.Query("SELECT e FROM VehicleEngine e WHERE 8 < e.cylinders"));
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult b, db_.Query("SELECT e FROM VehicleEngine e WHERE e.cylinders > 8"));
  EXPECT_EQ(a.rows.size(), b.rows.size());
}

TEST_F(RegressionFixture, EsmRegimeChangesIndexChoice) {
  // Under the ESM B+-tree-file regime the sequential scan loses its edge, so
  // indexes become attractive earlier (SEQCOST == RNDCOST).
  MOOD_ASSERT_OK(db_.Execute("CREATE INDEX eng_size ON VehicleEngine(size) USING BTREE")
                     .status());
  MOOD_ASSERT_OK(db_.CollectStatistics("VehicleEngine"));
  OptimizerOptions esm_opts;
  esm_opts.disk = PaperCalibratedDiskParameters();
  esm_opts.disk.esm_btree_files = true;
  QueryOptimizer esm_opt(db_.catalog(), db_.objects(), db_.stats(), esm_opts);
  auto stmt = Parser::Parse("SELECT e FROM VehicleEngine e WHERE e.size = 1001");
  MOOD_ASSERT_OK(stmt.status());
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized,
                            esm_opt.Optimize(std::get<SelectStmt>(stmt.value())));
  // With only ~30 engines over a couple of pages both choices are legal, but
  // the inequality must be computed with SEQCOST == RNDCOST.
  ASSERT_EQ(optimized.terms[0].imm.size(), 1u);
  MOOD_ASSERT_OK_AND_ASSIGN(ClassStats cls, db_.stats()->Class("VehicleEngine"));
  EXPECT_DOUBLE_EQ(optimized.terms[0].imm[0].sequential_access_cost,
                   RndCost(cls.nbpages, esm_opts.disk));
}

TEST_F(RegressionFixture, NamedObjectsSurviveReopen) {
  MOOD_ASSERT_OK(db_.Execute("NEW Employee <1, 'boss', 50> AS the_boss").status());
  MOOD_ASSERT_OK(db_.Close());
  Database db2;
  MOOD_ASSERT_OK(db2.Open(dir_.Path("mood")));
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, db2.catalog()->LookupName("the_boss"));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue name, db2.objects()->GetAttribute(oid, "name"));
  EXPECT_EQ(name.AsString(), "boss");
}

TEST_F(RegressionFixture, SelfReferenceJoinForm) {
  // v.drivetrain = d.self with an explicit .self suffix parses and joins.
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult with_self,
      db_.Query("SELECT v FROM Vehicle v, VehicleDriveTrain d "
                "WHERE v.drivetrain = d.self"));
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult bare,
      db_.Query("SELECT v FROM Vehicle v, VehicleDriveTrain d "
                "WHERE v.drivetrain = d"));
  EXPECT_EQ(with_self.rows.size(), bare.rows.size());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult vehicles, db_.Query("SELECT v FROM Vehicle v"));
  EXPECT_EQ(with_self.rows.size(), vehicles.rows.size());  // fan = 1
}

TEST_F(RegressionFixture, SubclassObjectSatisfiesSuperclassReference) {
  // A REFERENCE (Vehicle) attribute may point at an Automobile (IS-A).
  MOOD_ASSERT_OK(
      db_.Execute("CREATE CLASS Garage TUPLE (slot REFERENCE (Vehicle))").status());
  Oid any_auto;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent("Automobile", false, {},
                                           [&](Oid oid, const MoodValue&) {
                                             any_auto = oid;
                                             return Status::OK();
                                           }));
  ASSERT_TRUE(any_auto.valid());
  MOOD_ASSERT_OK(db_.objects()
                     ->CreateObject("Garage",
                                    MoodValue::Tuple({MoodValue::Reference(any_auto)}))
                     .status());
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult qr, db_.Query("SELECT g.slot.weight FROM Garage g"));
  ASSERT_EQ(qr.rows.size(), 1u);
  EXPECT_GT(qr.rows[0][0].AsInteger(), 0);
}

}  // namespace
}  // namespace mood
