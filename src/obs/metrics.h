#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mood {

/// Monotone event counter. Updates are single relaxed atomic adds — safe and
/// lock-free from any thread, including the executor's morsel workers.
class MetricCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (open transactions, pinned pages, ...).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative samples (e.g. query latencies in
/// microseconds). Bucket i counts samples in [2^(i-1), 2^i); bucket 0 counts
/// zeros and ones. Recording is two relaxed atomic adds, lock-free.
class MetricHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t sample) {
    buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper-bound estimate of the p-th percentile (0 < p <= 100): the exclusive
  /// upper edge of the bucket holding that rank.
  uint64_t PercentileUpperBound(double p) const;

  static size_t BucketOf(uint64_t sample) {
    size_t b = 0;
    while (sample > 1 && b + 1 < kBuckets) {
      sample >>= 1;
      b++;
    }
    return b;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// One coherent sample of every registered metric, sorted by name. Counter and
/// gauge values appear under their registered names; a histogram `h` expands to
/// `h.count`, `h.sum`, `h.p50`, `h.p99`.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> values;

  /// Value by exact name; `fallback` when absent.
  double ValueOf(const std::string& name, double fallback = 0) const;
  bool Has(const std::string& name) const;

  /// `name value` lines, one per metric (the text exposition format).
  std::string ToText() const;
  /// One flat JSON object {"name": value, ...}.
  std::string ToJson() const;
};

/// Registry of named engine metrics (DESIGN.md §8 documents the naming
/// scheme: dotted lowercase `component.metric`, e.g. `bufferpool.hits`).
///
/// Two registration styles:
///  - Owned instruments (Counter/Gauge/Histogram): the registry allocates and
///    returns a stable pointer the component updates lock-free on its hot
///    path. Registering the same name twice returns the same instrument.
///  - Probes: a callback sampled at Snapshot() time, for components that
///    already maintain their own atomic counters (BufferPool's per-shard
///    stats, FunctionManager's invoke counters, ...). Probes must be
///    thread-safe and non-blocking.
///
/// Registration takes a mutex; instrument updates never do. Snapshot() may be
/// called from any thread at any time and sees a coherent name set (individual
/// values are relaxed-atomic samples; cross-counter invariants hold only up to
/// in-flight updates).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter* Counter(const std::string& name);
  MetricGauge* Gauge(const std::string& name);
  MetricHistogram* Histogram(const std::string& name);

  /// Sampled at Snapshot(): append (name, value) pairs to `out`. `component`
  /// names the owner (re-registering a component replaces its probe, so a
  /// reopened subsystem doesn't leave a dangling callback).
  using Probe = std::function<void(std::vector<std::pair<std::string, double>>* out)>;
  void RegisterProbe(const std::string& component, Probe probe);
  void UnregisterProbe(const std::string& component);

  MetricsSnapshot Snapshot() const;

  size_t instrument_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
  std::map<std::string, Probe> probes_;
};

}  // namespace mood
