#include <gtest/gtest.h>

#include "core/database.h"
#include "core/paper_example.h"
#include "moodview/cpp_bridge.h"
#include "moodview/dag_layout.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

TEST(DagLayoutTest, LayersFollowInheritanceDepth) {
  DagLayout layout;
  layout.AddEdge("Vehicle", "Automobile");
  layout.AddEdge("Automobile", "JapaneseAuto");
  layout.AddEdge("Vehicle", "Truck");
  MOOD_ASSERT_OK(layout.Compute());
  const auto& pos = layout.positions();
  EXPECT_EQ(pos.at("Vehicle").layer, 0);
  EXPECT_EQ(pos.at("Automobile").layer, 1);
  EXPECT_EQ(pos.at("Truck").layer, 1);
  EXPECT_EQ(pos.at("JapaneseAuto").layer, 2);
  EXPECT_EQ(layout.layer_count(), 3);
}

TEST(DagLayoutTest, MultipleInheritanceUsesLongestPath) {
  DagLayout layout;
  layout.AddEdge("A", "B");
  layout.AddEdge("B", "C");
  layout.AddEdge("A", "C");  // diamond shortcut
  MOOD_ASSERT_OK(layout.Compute());
  EXPECT_EQ(layout.positions().at("C").layer, 2);
}

TEST(DagLayoutTest, CycleDetected) {
  DagLayout layout;
  layout.AddEdge("A", "B");
  layout.AddEdge("B", "A");
  EXPECT_FALSE(layout.Compute().ok());
}

TEST(DagLayoutTest, BarycenterReducesCrossings) {
  // A two-layer graph deliberately ordered to cross: parents A,B with children
  // placed in reverse. Barycenter ordering removes all crossings.
  DagLayout layout;
  layout.AddNode("A");
  layout.AddNode("B");
  layout.AddEdge("A", "a2");
  layout.AddEdge("B", "b1");
  layout.AddEdge("A", "a1");
  layout.AddEdge("B", "b2");
  MOOD_ASSERT_OK(layout.Compute());
  EXPECT_EQ(layout.CountCrossings(), 0) << layout.Render();
}

TEST(DagLayoutTest, RenderShowsLayersAndEdges) {
  DagLayout layout;
  layout.AddEdge("Vehicle", "Automobile");
  MOOD_ASSERT_OK(layout.Compute());
  std::string out = layout.Render();
  EXPECT_NE(out.find("[Vehicle]"), std::string::npos);
  EXPECT_NE(out.find("Vehicle -> Automobile"), std::string::npos);
}

class MoodViewFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
  }
  TempDir dir_;
  Database db_;
};

TEST_F(MoodViewFixture, HierarchyBrowserRendersAllClasses) {
  MOOD_ASSERT_OK_AND_ASSIGN(std::string out, db_.schema_browser()->RenderHierarchy());
  EXPECT_NE(out.find("[Vehicle]"), std::string::npos);
  EXPECT_NE(out.find("[JapaneseAuto]"), std::string::npos);
  EXPECT_NE(out.find("Automobile -> JapaneseAuto"), std::string::npos);
}

TEST_F(MoodViewFixture, ClassPresentationMatchesFigure92b) {
  MOOD_ASSERT_OK_AND_ASSIGN(std::string out, db_.schema_browser()->RenderClass("Automobile"));
  EXPECT_NE(out.find("Type Name : Automobile"), std::string::npos);
  EXPECT_NE(out.find("Superclasses: Vehicle"), std::string::npos);
  EXPECT_NE(out.find("Subclasses: JapaneseAuto"), std::string::npos);
  EXPECT_NE(out.find("lbweight"), std::string::npos);  // inherited method visible
  EXPECT_NE(out.find("drivetrain"), std::string::npos);
}

TEST_F(MoodViewFixture, MethodPresentation) {
  MOOD_ASSERT_OK_AND_ASSIGN(std::string out,
                            db_.schema_browser()->RenderMethod("JapaneseAuto", "lbweight"));
  EXPECT_NE(out.find("Defined By : Vehicle"), std::string::npos);
  EXPECT_NE(out.find("Applicable Classes: Vehicle Automobile JapaneseAuto"),
            std::string::npos);
  EXPECT_NE(out.find("weight * 2.2075"), std::string::npos);
}

TEST_F(MoodViewFixture, DdlRoundTrip) {
  // GenerateDdl output re-parses into an equivalent class definition.
  MOOD_ASSERT_OK_AND_ASSIGN(std::string ddl, db_.schema_browser()->GenerateDdl("Vehicle"));
  Database db2;
  TempDir dir2;
  MOOD_ASSERT_OK(db2.Open(dir2.Path("mood")));
  // Dependencies first.
  MOOD_ASSERT_OK(db2.Execute("CREATE CLASS VehicleEngine TUPLE (size Integer, "
                             "cylinders Integer)")
                     .status());
  MOOD_ASSERT_OK(db2.Execute("CREATE CLASS VehicleDriveTrain TUPLE (engine REFERENCE "
                             "(VehicleEngine), transmission String(32))")
                     .status());
  MOOD_ASSERT_OK(db2.Execute("CREATE CLASS Employee TUPLE (ssno Integer, name "
                             "String(32), age Integer)")
                     .status());
  MOOD_ASSERT_OK(db2.Execute("CREATE CLASS Company TUPLE (name String(32), location "
                             "String(32), president REFERENCE (Employee))")
                     .status());
  MOOD_ASSERT_OK(db2.Execute(ddl).status());
  MOOD_ASSERT_OK_AND_ASSIGN(auto attrs, db2.catalog()->AllAttributes("Vehicle"));
  MOOD_ASSERT_OK_AND_ASSIGN(auto orig, db_.catalog()->AllAttributes("Vehicle"));
  ASSERT_EQ(attrs.size(), orig.size());
  for (size_t i = 0; i < attrs.size(); i++) {
    EXPECT_EQ(attrs[i].name, orig[i].name);
    EXPECT_TRUE(attrs[i].type->Equals(*orig[i].type));
  }
}

TEST_F(MoodViewFixture, ObjectBrowserWalksReferences) {
  MOOD_ASSERT_OK(paperdb::PopulatePaperData(&db_, 9).status());
  Oid some_vehicle;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent("Vehicle", false, {},
                                           [&](Oid oid, const MoodValue&) {
                                             some_vehicle = oid;
                                             return Status::OK();
                                           }));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string out, db_.object_browser()->Render(some_vehicle, 2));
  EXPECT_NE(out.find("Vehicle oid("), std::string::npos);
  EXPECT_NE(out.find("drivetrain:"), std::string::npos);
  EXPECT_NE(out.find("VehicleDriveTrain"), std::string::npos);  // expanded reference
  EXPECT_NE(out.find("cylinders:"), std::string::npos);         // two levels deep
  MOOD_ASSERT_OK_AND_ASSIGN(std::string extent,
                            db_.object_browser()->RenderExtent("VehicleEngine", 0, 3));
  EXPECT_NE(extent.find("Extent of VehicleEngine"), std::string::npos);
}

TEST_F(MoodViewFixture, ObjectBrowserHandlesCycles) {
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Node TUPLE (label String(8), next "
                             "REFERENCE (Node))")
                     .status());
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid a, db_.objects()->CreateObject(
                 "Node", MoodValue::Tuple({MoodValue::String("a"), MoodValue::Null()})));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid b, db_.objects()->CreateObject(
                 "Node", MoodValue::Tuple({MoodValue::String("b"),
                                           MoodValue::Reference(a)})));
  MOOD_ASSERT_OK(db_.objects()->SetAttribute(a, "next", MoodValue::Reference(b)));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string out, db_.object_browser()->Render(a, 5));
  EXPECT_NE(out.find("<cycle to"), std::string::npos);
}

TEST_F(MoodViewFixture, QueryManagerKeepsHistory) {
  MOOD_ASSERT_OK(paperdb::PopulatePaperData(&db_, 9).status());
  auto session = db_.MakeQuerySession();
  MOOD_ASSERT_OK(session->Run("SELECT e FROM VehicleEngine e").status());
  EXPECT_FALSE(session->Run("SELECT nope FROM Nothing n").ok());
  MOOD_ASSERT_OK(session->Rerun(0).status());
  ASSERT_EQ(session->history().size(), 3u);
  EXPECT_TRUE(session->history()[0].succeeded);
  EXPECT_FALSE(session->history()[1].succeeded);
  EXPECT_GT(session->history()[0].result_rows, 0u);
  std::string hist = session->RenderHistory();
  EXPECT_NE(hist.find("[ok] SELECT e FROM VehicleEngine e"), std::string::npos);
  EXPECT_NE(hist.find("[ERR]"), std::string::npos);
}

TEST(CppBridgeTest, ParsesClassDeclarations) {
  const char* src = R"cpp(
    class Company;
    class Vehicle {
     public:
      int id;
      int weight;
      Company* manufacturer;
      char name[32];
      Set<Vehicle*> related;
      int lbweight();
      int scale(int factor, double rate);
    };
    int Vehicle::lbweight() { return weight * 2; }
    class Automobile : public Vehicle {
     public:
      bool sporty;
    };
  )cpp";
  MOOD_ASSERT_OK_AND_ASSIGN(auto defs, CppBridge::ParseHeader(src));
  ASSERT_EQ(defs.size(), 2u);
  const auto& v = defs[0];
  EXPECT_EQ(v.name, "Vehicle");
  ASSERT_EQ(v.attributes.size(), 5u);
  EXPECT_EQ(v.attributes[2].type->ToString(), "REFERENCE (Company)");
  EXPECT_EQ(v.attributes[3].type->ToString(), "String(32)");
  EXPECT_EQ(v.attributes[4].type->ToString(), "SET (REFERENCE (Vehicle))");
  ASSERT_EQ(v.methods.size(), 2u);
  EXPECT_EQ(v.methods[0].name, "lbweight");
  EXPECT_NE(v.methods[0].body_source.find("weight * 2"), std::string::npos);
  ASSERT_EQ(v.methods[1].params.size(), 2u);
  EXPECT_EQ(v.methods[1].params[1].type->ToString(), "Float");
  EXPECT_EQ(defs[1].supers, std::vector<std::string>{"Vehicle"});
}

TEST(CppBridgeTest, GeneratedHeaderReparses) {
  TempDir dir;
  Database db;
  MOOD_ASSERT_OK(db.Open(dir.Path("mood")));
  MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string header,
                            CppBridge::GenerateHeader(*db.catalog(), "Vehicle"));
  EXPECT_NE(header.find("class Vehicle"), std::string::npos);
  EXPECT_NE(header.find("VehicleDriveTrain* drivetrain;"), std::string::npos);
  MOOD_ASSERT_OK_AND_ASSIGN(auto defs, CppBridge::ParseHeader(header));
  ASSERT_EQ(defs.size(), 1u);
  MOOD_ASSERT_OK_AND_ASSIGN(auto attrs, db.catalog()->AllAttributes("Vehicle"));
  ASSERT_EQ(defs[0].attributes.size(), attrs.size());
  for (size_t i = 0; i < attrs.size(); i++) {
    EXPECT_TRUE(defs[0].attributes[i].type->Equals(*attrs[i].type))
        << attrs[i].name << ": " << defs[0].attributes[i].type->ToString() << " vs "
        << attrs[i].type->ToString();
  }
}

TEST(CppBridgeTest, CatalogFromParsedHeader) {
  // The "data definition in C++" path: declarations land in the catalog exactly
  // like DDL (the modified-cfront flow of Figure 2.1).
  TempDir dir;
  Database db;
  MOOD_ASSERT_OK(db.Open(dir.Path("mood")));
  MOOD_ASSERT_OK_AND_ASSIGN(auto defs, CppBridge::ParseHeader(R"cpp(
    class Engine {
     public:
      int cylinders;
    };
    class Car {
     public:
      Engine* engine;
      int doors();
    };
    int Car::doors() { return 4; }
  )cpp"));
  for (const auto& def : defs) MOOD_ASSERT_OK(db.catalog()->Define(def).status());
  MOOD_ASSERT_OK_AND_ASSIGN(const MoodsType* car, db.catalog()->Lookup("Car"));
  EXPECT_NE(car->FindFunction("doors"), nullptr);
  // The interpreted fallback executes the captured body.
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid engine, db.objects()->CreateObject(
                      "Engine", MoodValue::Tuple({MoodValue::Integer(6)})));
  MOOD_ASSERT_OK(db.objects()
                     ->CreateObject("Car", MoodValue::Tuple({MoodValue::Reference(engine)}))
                     .status());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult qr, db.Query("SELECT c.doors() FROM Car c"));
  ASSERT_EQ(qr.rows.size(), 1u);
  EXPECT_EQ(qr.rows[0][0].AsInteger(), 4);
}

}  // namespace
}  // namespace mood
