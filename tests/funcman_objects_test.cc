#include <gtest/gtest.h>

#include "funcman/function_manager.h"
#include "index/key_codec.h"
#include "objects/object_manager.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

class KernelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(storage_.Open(dir_.Path("db")));
    MOOD_ASSERT_OK(catalog_.Open(&storage_));
    objects_ = std::make_unique<ObjectManager>(&storage_, &catalog_);
    funcman_ = std::make_unique<FunctionManager>(&catalog_);

    Catalog::ClassDef vehicle;
    vehicle.name = "Vehicle";
    vehicle.attributes.push_back({"id", TypeDesc::Basic(BasicType::kInteger)});
    vehicle.attributes.push_back({"weight", TypeDesc::Basic(BasicType::kInteger)});
    MOOD_ASSERT_OK(catalog_.Define(vehicle).status());

    Catalog::ClassDef company;
    company.name = "Company";
    company.attributes.push_back({"name", TypeDesc::SizedString(32)});
    MOOD_ASSERT_OK(catalog_.Define(company).status());

    Catalog::ClassDef car;
    car.name = "Car";
    car.supers = {"Vehicle"};
    car.attributes.push_back({"maker", TypeDesc::Reference("Company")});
    MOOD_ASSERT_OK(catalog_.Define(car).status());
  }

  Result<Oid> NewVehicle(int32_t id, int32_t weight) {
    return objects_->CreateObject(
        "Vehicle", MoodValue::Tuple({MoodValue::Integer(id), MoodValue::Integer(weight)}));
  }

  TempDir dir_;
  StorageManager storage_;
  Catalog catalog_;
  std::unique_ptr<ObjectManager> objects_;
  std::unique_ptr<FunctionManager> funcman_;
};

TEST_F(KernelFixture, CreateFetchUpdateDelete) {
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(1, 1200));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v, objects_->Fetch(oid));
  EXPECT_EQ(v.elements()[0].AsInteger(), 1);
  MOOD_ASSERT_OK_AND_ASSIGN(std::string cls, objects_->ClassOf(oid));
  EXPECT_EQ(cls, "Vehicle");
  MOOD_ASSERT_OK(objects_->SetAttribute(oid, "weight", MoodValue::Integer(1500)));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue w, objects_->GetAttribute(oid, "weight"));
  EXPECT_EQ(w.AsInteger(), 1500);
  MOOD_ASSERT_OK(objects_->DeleteObject(oid));
  EXPECT_FALSE(objects_->Fetch(oid).ok());
}

TEST_F(KernelFixture, TypeCheckingOnCreate) {
  // Wrong type for weight.
  auto bad = objects_->CreateObject(
      "Vehicle", MoodValue::Tuple({MoodValue::Integer(1), MoodValue::String("x")}));
  EXPECT_TRUE(bad.status().IsTypeError());
  // Too many fields.
  auto too_many = objects_->CreateObject(
      "Vehicle", MoodValue::Tuple({MoodValue::Integer(1), MoodValue::Integer(2),
                                   MoodValue::Integer(3)}));
  EXPECT_FALSE(too_many.ok());
}

TEST_F(KernelFixture, ShortTuplePaddedWithDefaults) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid oid, objects_->CreateObject("Vehicle",
                                      MoodValue::Tuple({MoodValue::Integer(7)})));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue w, objects_->GetAttribute(oid, "weight"));
  EXPECT_EQ(w.AsInteger(), 0);
}

TEST_F(KernelFixture, SchemaEvolutionOldObjectsStillReadable) {
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(1, 100));
  MOOD_ASSERT_OK(
      catalog_.AddAttribute("Vehicle", {"color", TypeDesc::SizedString(16)}));
  // Old object: new attribute reads as default.
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue c, objects_->GetAttribute(oid, "color"));
  EXPECT_EQ(c.AsString(), "");
  // Update writes the padded shape.
  MOOD_ASSERT_OK(objects_->SetAttribute(oid, "color", MoodValue::String("red")));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue c2, objects_->GetAttribute(oid, "color"));
  EXPECT_EQ(c2.AsString(), "red");
}

TEST_F(KernelFixture, SubclassInstancesInheritedAttributes) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid company, objects_->CreateObject(
                       "Company", MoodValue::Tuple({MoodValue::String("BMW")})));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid car, objects_->CreateObject(
                   "Car", MoodValue::Tuple({MoodValue::Integer(1), MoodValue::Integer(900),
                                            MoodValue::Reference(company)})));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue w, objects_->GetAttribute(car, "weight"));
  EXPECT_EQ(w.AsInteger(), 900);
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue m, objects_->GetAttribute(car, "maker"));
  EXPECT_EQ(m.AsReference(), company);
}

TEST_F(KernelFixture, ExtentScansWithSubclassesAndExclusion) {
  MOOD_ASSERT_OK(NewVehicle(1, 100).status());
  MOOD_ASSERT_OK(NewVehicle(2, 200).status());
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid company, objects_->CreateObject(
                       "Company", MoodValue::Tuple({MoodValue::String("X")})));
  MOOD_ASSERT_OK(objects_
                     ->CreateObject("Car", MoodValue::Tuple({MoodValue::Integer(3),
                                                             MoodValue::Integer(300),
                                                             MoodValue::Reference(company)}))
                     .status());
  MOOD_ASSERT_OK_AND_ASSIGN(uint64_t own, objects_->ExtentCount("Vehicle", false));
  EXPECT_EQ(own, 2u);
  MOOD_ASSERT_OK_AND_ASSIGN(uint64_t all, objects_->ExtentCount("Vehicle", true));
  EXPECT_EQ(all, 3u);
  // EVERY Vehicle - Car.
  size_t count = 0;
  MOOD_ASSERT_OK(objects_->ScanExtent("Vehicle", true, {"Car"},
                                      [&](Oid, const MoodValue&) {
                                        count++;
                                        return Status::OK();
                                      }));
  EXPECT_EQ(count, 2u);
}

TEST_F(KernelFixture, DeepEqualsFollowsReferences) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid c1, objects_->CreateObject("Company",
                                     MoodValue::Tuple({MoodValue::String("Acme")})));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid c2, objects_->CreateObject("Company",
                                     MoodValue::Tuple({MoodValue::String("Acme")})));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid c3, objects_->CreateObject("Company",
                                     MoodValue::Tuple({MoodValue::String("Other")})));
  // Different oids, deep-equal values.
  MOOD_ASSERT_OK_AND_ASSIGN(
      bool eq, objects_->DeepEquals(MoodValue::Reference(c1), MoodValue::Reference(c2)));
  EXPECT_TRUE(eq);
  MOOD_ASSERT_OK_AND_ASSIGN(
      bool ne, objects_->DeepEquals(MoodValue::Reference(c1), MoodValue::Reference(c3)));
  EXPECT_FALSE(ne);
}

TEST_F(KernelFixture, AttributeIndexMaintainedAcrossDml) {
  MOOD_ASSERT_OK(objects_->CreateAttributeIndex("v_by_weight", "Vehicle", "weight",
                                                IndexKind::kBTree));
  MOOD_ASSERT_OK_AND_ASSIGN(Oid a, NewVehicle(1, 100));
  MOOD_ASSERT_OK_AND_ASSIGN(Oid b, NewVehicle(2, 200));
  (void)b;
  auto desc = catalog_.FindIndex("Vehicle", "weight", IndexKind::kBTree);
  ASSERT_TRUE(desc.has_value());
  MOOD_ASSERT_OK_AND_ASSIGN(BPlusTree * tree, objects_->OpenBTree(*desc));
  auto find = [&](int32_t w) {
    auto r = tree->SearchEqual(MakeIndexKey(MoodValue::Integer(w)));
    return r.ok() ? r.value().size() : size_t(999);
  };
  EXPECT_EQ(find(100), 1u);
  EXPECT_EQ(find(200), 1u);
  MOOD_ASSERT_OK(objects_->SetAttribute(a, "weight", MoodValue::Integer(150)));
  EXPECT_EQ(find(100), 0u);
  EXPECT_EQ(find(150), 1u);
  MOOD_ASSERT_OK(objects_->DeleteObject(a));
  EXPECT_EQ(find(150), 0u);
}

TEST_F(KernelFixture, BulkLoadedIndexSeesExistingObjects) {
  for (int i = 0; i < 20; i++) MOOD_ASSERT_OK(NewVehicle(i, i * 10).status());
  MOOD_ASSERT_OK(objects_->CreateAttributeIndex("v_by_id", "Vehicle", "id",
                                                IndexKind::kHash));
  auto desc = catalog_.FindIndex("Vehicle", "id", IndexKind::kHash);
  ASSERT_TRUE(desc.has_value());
  MOOD_ASSERT_OK_AND_ASSIGN(HashIndex * idx, objects_->OpenHash(*desc));
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, idx->SearchEqual(MakeIndexKey(MoodValue::Integer(7))));
  EXPECT_EQ(hits.size(), 1u);
}

TEST_F(KernelFixture, PathTraversalFansOut) {
  // Car -> Company references; traverse car.maker.name.
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid company, objects_->CreateObject(
                       "Company", MoodValue::Tuple({MoodValue::String("BMW")})));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Oid car, objects_->CreateObject(
                   "Car", MoodValue::Tuple({MoodValue::Integer(1), MoodValue::Integer(900),
                                            MoodValue::Reference(company)})));
  std::vector<std::string> names;
  MOOD_ASSERT_OK(objects_->TraversePath(car, {"maker", "name"},
                                        [&](const MoodValue& v) {
                                          names.push_back(v.AsString());
                                          return Status::OK();
                                        }));
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "BMW");
}

// --- Function Manager -------------------------------------------------------------

TEST_F(KernelFixture, RegisterAndInvokeCompiledMethod) {
  MoodsFunction decl;
  decl.name = "lbweight";
  decl.return_type = TypeDesc::Basic(BasicType::kInteger);
  MOOD_ASSERT_OK(funcman_->Register(
      "Vehicle", decl,
      [](const MethodContext& ctx, const std::vector<MoodValue>&) -> Result<MoodValue> {
        MOOD_ASSIGN_OR_RETURN(MoodValue w, ctx.Attr("weight"));
        return MoodValue::Integer(static_cast<int32_t>(w.AsInteger() * 2.2075));
      }));
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(1, 1000));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue self, objects_->Fetch(oid));
  std::vector<std::string> attr_names = {"id", "weight"};
  MethodContext ctx;
  ctx.self = oid;
  ctx.self_value = &self;
  ctx.attr_names = &attr_names;
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue out,
                            funcman_->Invoke("Vehicle", "lbweight", ctx, {}));
  EXPECT_EQ(out.AsInteger(), 2207);
  EXPECT_EQ(funcman_->stats().cold_loads, 1u);
  MOOD_ASSERT_OK(funcman_->Invoke("Vehicle", "lbweight", ctx, {}).status());
  EXPECT_EQ(funcman_->stats().warm_calls, 1u);
  funcman_->UnloadAll();
  MOOD_ASSERT_OK(funcman_->Invoke("Vehicle", "lbweight", ctx, {}).status());
  EXPECT_EQ(funcman_->stats().cold_loads, 2u);
}

TEST_F(KernelFixture, LateBindingThroughSubclass) {
  MoodsFunction decl;
  decl.name = "describe";
  decl.return_type = TypeDesc::Basic(BasicType::kString);
  MOOD_ASSERT_OK(funcman_->Register(
      "Vehicle", decl,
      [](const MethodContext&, const std::vector<MoodValue>&) {
        return Result<MoodValue>(MoodValue::String("vehicle"));
      }));
  // Invoke on the subclass: resolves to the Vehicle body.
  MethodContext ctx;
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue out, funcman_->Invoke("Car", "describe", ctx, {}));
  EXPECT_EQ(out.AsString(), "vehicle");
  // Override on Car and re-invoke: the subclass body wins (late binding).
  MOOD_ASSERT_OK(funcman_->Register(
      "Car", decl,
      [](const MethodContext&, const std::vector<MoodValue>&) {
        return Result<MoodValue>(MoodValue::String("car"));
      }));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue out2, funcman_->Invoke("Car", "describe", ctx, {}));
  EXPECT_EQ(out2.AsString(), "car");
}

TEST_F(KernelFixture, ArgumentTypeCheckingAtRunTime) {
  MoodsFunction decl;
  decl.name = "scale";
  decl.return_type = TypeDesc::Basic(BasicType::kInteger);
  decl.params.push_back({"factor", TypeDesc::Basic(BasicType::kInteger)});
  MOOD_ASSERT_OK(funcman_->Register(
      "Vehicle", decl,
      [](const MethodContext&, const std::vector<MoodValue>& args) {
        return Result<MoodValue>(MoodValue::Integer(args[0].AsInteger() * 2));
      }));
  MethodContext ctx;
  // Wrong arity.
  auto r1 = funcman_->Invoke("Vehicle", "scale", ctx, {});
  EXPECT_EQ(r1.status().code(), StatusCode::kFunctionError);
  // Wrong type.
  auto r2 = funcman_->Invoke("Vehicle", "scale", ctx, {MoodValue::String("x")});
  EXPECT_EQ(r2.status().code(), StatusCode::kFunctionError);
  // Correct.
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue out,
                            funcman_->Invoke("Vehicle", "scale", ctx, {MoodValue::Integer(21)}));
  EXPECT_EQ(out.AsInteger(), 42);
}

TEST_F(KernelFixture, CompiledErrorsSurfaceAsInterpreterErrors) {
  MoodsFunction decl;
  decl.name = "explode";
  decl.return_type = TypeDesc::Basic(BasicType::kInteger);
  MOOD_ASSERT_OK(funcman_->Register(
      "Vehicle", decl,
      [](const MethodContext&, const std::vector<MoodValue>&) -> Result<MoodValue> {
        return Status::Internal("segfault-equivalent caught by Exception class");
      }));
  MethodContext ctx;
  auto r = funcman_->Invoke("Vehicle", "explode", ctx, {});
  EXPECT_EQ(r.status().code(), StatusCode::kFunctionError);
  EXPECT_NE(r.status().message().find("Vehicle::explode"), std::string::npos);
}

TEST_F(KernelFixture, IllTypedReturnRejected) {
  MoodsFunction decl;
  decl.name = "liar";
  decl.return_type = TypeDesc::Basic(BasicType::kInteger);
  MOOD_ASSERT_OK(funcman_->Register(
      "Vehicle", decl,
      [](const MethodContext&, const std::vector<MoodValue>&) {
        return Result<MoodValue>(MoodValue::String("not an int"));
      }));
  MethodContext ctx;
  EXPECT_EQ(funcman_->Invoke("Vehicle", "liar", ctx, {}).status().code(),
            StatusCode::kFunctionError);
}

TEST_F(KernelFixture, UpdateAndRemoveFunction) {
  MoodsFunction decl;
  decl.name = "ver";
  decl.return_type = TypeDesc::Basic(BasicType::kInteger);
  MOOD_ASSERT_OK(funcman_->Register(
      "Vehicle", decl, [](const MethodContext&, const std::vector<MoodValue>&) {
        return Result<MoodValue>(MoodValue::Integer(1));
      }));
  MethodContext ctx;
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v1, funcman_->Invoke("Vehicle", "ver", ctx, {}));
  EXPECT_EQ(v1.AsInteger(), 1);
  // "The shared library of the class will be unavailable only during the time it
  // takes to write the new function": Update replaces the loaded body.
  MOOD_ASSERT_OK(funcman_->Update(
      "Vehicle", "ver", [](const MethodContext&, const std::vector<MoodValue>&) {
        return Result<MoodValue>(MoodValue::Integer(2));
      }));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v2, funcman_->Invoke("Vehicle", "ver", ctx, {}));
  EXPECT_EQ(v2.AsInteger(), 2);
  MOOD_ASSERT_OK(funcman_->Remove("Vehicle", "ver"));
  EXPECT_EQ(funcman_->Invoke("Vehicle", "ver", ctx, {}).status().code(),
            StatusCode::kFunctionError);
}

}  // namespace
}  // namespace mood
