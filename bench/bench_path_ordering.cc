// Algorithm 8.1 / the Appendix lemma — the value of ordering path expressions by
// ascending F/(1-s):
//   (a) model: optimal vs random vs worst permutation of the objective
//       f = F_{i1} + s_{i1} F_{i2} + ... over random instances;
//   (b) exhaustive optimality check for m <= 7;
//   (c) measured: evaluating Example 8.1's two predicates in the chosen order
//       vs the reverse order over real data, counting predicate evaluations
//       (the short-circuit work the ordering minimizes).

#include <algorithm>
#include <numeric>

#include "bench/bench_util.h"
#include "common/random.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"

using namespace mood;
using namespace mood::bench;

int main() {
  Checks checks;
  Random rng(7777);

  Banner("Model: objective f for optimal / random / worst orderings");
  {
    Table t({"m", "f(optimal)", "f(random avg)", "f(worst)", "worst/optimal"});
    for (size_t m : {2, 3, 4, 5, 6, 7}) {
      std::vector<double> F(m), s(m);
      for (size_t i = 0; i < m; i++) {
        F[i] = 10 + rng.NextDouble() * 1000;
        s[i] = rng.NextDouble() * 0.95;
      }
      auto order = QueryOptimizer::OrderByRank(F, s);
      double best = QueryOptimizer::OrderingObjective(F, s, order);
      // Exhaustive worst + check optimality.
      std::vector<size_t> perm(m);
      std::iota(perm.begin(), perm.end(), 0);
      double worst = 0, sum = 0;
      size_t n_perms = 0;
      bool optimal = true;
      do {
        double f = QueryOptimizer::OrderingObjective(F, s, perm);
        worst = std::max(worst, f);
        sum += f;
        n_perms++;
        if (f < best - 1e-9) optimal = false;
      } while (std::next_permutation(perm.begin(), perm.end()));
      t.AddRow({std::to_string(m), Fmt(best, 1), Fmt(sum / n_perms, 1), Fmt(worst, 1),
                Fmt(worst / best, 2)});
      if (!optimal) checks.Expect(false, "sort order optimal for m=" + std::to_string(m));
    }
    t.Print();
    checks.Expect(true, "F/(1-s) ordering optimal for every m in 2..7 (exhaustive)");
  }

  Banner("Measured: Example 8.1 predicate order on real data (scale = 500)");
  {
    BenchDb scratch("path_ordering");
    Database db;
    Check(db.Open(scratch.Path("mood")), "open");
    Check(paperdb::CreatePaperSchema(&db), "schema");
    Check(paperdb::PopulatePaperData(&db, 500).status(), "populate");
    Check(db.CollectAllStatistics(), "collect");

    // Count traversal work: evaluating P-first means every vehicle pays P's
    // traversal, and only survivors pay the second predicate.
    auto traversals = [&](const std::string& first, const std::string& second,
                          size_t* out_result) -> size_t {
      size_t work = 0;
      size_t result = 0;
      Check(db.objects()->ScanExtent(
                "Vehicle", false, {},
                [&](Oid oid, const MoodValue&) -> Status {
                  Evaluator::Env env;
                  env.vars["v"] = oid;
                  work++;  // first predicate traversal
                  auto p1 = Parser::ParseExpression(first).value();
                  auto r1 = db.evaluator()->EvalPredicate(p1, env);
                  MOOD_RETURN_IF_ERROR(r1.status());
                  if (!r1.value()) return Status::OK();
                  work++;  // second predicate traversal
                  auto p2 = Parser::ParseExpression(second).value();
                  auto r2 = db.evaluator()->EvalPredicate(p2, env);
                  MOOD_RETURN_IF_ERROR(r2.status());
                  if (r2.value()) result++;
                  return Status::OK();
                }),
            "scan");
      *out_result = result;
      return work;
    };
    const std::string kP2 = "v.company.name = 'BMW'";
    const std::string kP1 = "v.drivetrain.engine.cylinders = 2";
    size_t res_a = 0, res_b = 0;
    size_t selective_first = traversals(kP2, kP1, &res_a);   // optimizer's order
    size_t unselective_first = traversals(kP1, kP2, &res_b); // reverse order
    Table t({"order", "predicate traversals", "result rows"});
    t.AddRow({"P2 first (chosen by Algorithm 8.1)", std::to_string(selective_first),
              std::to_string(res_a)});
    t.AddRow({"P1 first (reverse)", std::to_string(unselective_first),
              std::to_string(res_b)});
    t.Print();
    checks.Expect(res_a == res_b, "both orders return the same result");
    checks.Expect(selective_first <= unselective_first,
                  "the chosen order does no more traversal work");
    checks.Expect(selective_first < unselective_first,
                  "and strictly less on this data (P2 filters almost everything)");
  }
  return checks.ExitCode();
}
