#include "index/rtree.h"

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "common/coding.h"

namespace mood {

namespace {
constexpr uint32_t kMetaMagic = 0x47757474;  // "Gutt"

void EncodeRect(char* p, const Rect& r) {
  std::memcpy(p, &r.xmin, 8);
  std::memcpy(p + 8, &r.ymin, 8);
  std::memcpy(p + 16, &r.xmax, 8);
  std::memcpy(p + 24, &r.ymax, 8);
}
Rect DecodeRect(const char* p) {
  Rect r;
  std::memcpy(&r.xmin, p, 8);
  std::memcpy(&r.ymin, p + 8, 8);
  std::memcpy(&r.xmax, p + 16, 8);
  std::memcpy(&r.ymax, p + 24, 8);
  return r;
}
}  // namespace

Result<std::unique_ptr<RTree>> RTree::Create(BufferPool* pool, FileDirectory* alloc) {
  MOOD_ASSIGN_OR_RETURN(Page* meta_pg, pool->NewPage());
  PageId meta_id = meta_pg->page_id();
  MOOD_RETURN_IF_ERROR(pool->UnpinPage(meta_id, true));
  auto tree = std::unique_ptr<RTree>(new RTree(pool, alloc, meta_id));
  MOOD_ASSIGN_OR_RETURN(PageId root_id, alloc->AllocatePage());
  Node root;
  root.id = root_id;
  root.leaf = true;
  MOOD_RETURN_IF_ERROR(tree->StoreNode(root));
  tree->root_ = root_id;
  MOOD_RETURN_IF_ERROR(tree->StoreMeta());
  return tree;
}

Result<std::unique_ptr<RTree>> RTree::Open(BufferPool* pool, FileDirectory* alloc,
                                           PageId meta_page) {
  auto tree = std::unique_ptr<RTree>(new RTree(pool, alloc, meta_page));
  MOOD_RETURN_IF_ERROR(tree->LoadMeta());
  return tree;
}

Status RTree::LoadMeta() {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(meta_page_));
  PageGuard guard(pool_, page);
  const char* p = page->data();
  if (DecodeFixed32(p + 8) != kMetaMagic) return Status::Corruption("not an R-tree meta page");
  root_ = DecodeFixed32(p + 12);
  height_ = DecodeFixed32(p + 16);
  entries_ = DecodeFixed64(p + 20);
  return Status::OK();
}

Status RTree::StoreMeta() const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(meta_page_));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  char* p = page->data();
  EncodeFixed64(p, kInvalidLsn);
  EncodeFixed32(p + 8, kMetaMagic);
  EncodeFixed32(p + 12, root_);
  EncodeFixed32(p + 16, height_);
  EncodeFixed64(p + 20, entries_);
  return Status::OK();
}

Result<RTree::Node> RTree::LoadNode(PageId id) const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(id));
  PageGuard guard(pool_, page);
  const char* p = page->data();
  Node node;
  node.id = id;
  node.leaf = p[8] != 0;
  uint16_t count = DecodeFixed16(p + 9);
  size_t off = 11;
  node.entries.reserve(count);
  for (uint16_t i = 0; i < count; i++) {
    Entry e;
    e.rect = DecodeRect(p + off);
    off += 32;
    if (node.leaf) {
      e.value = DecodeFixed64(p + off);
      off += 8;
    } else {
      e.child = DecodeFixed32(p + off);
      off += 4;
    }
    node.entries.push_back(e);
  }
  if (off > kPageSize) return Status::Corruption("R-tree node overruns page");
  return node;
}

Status RTree::StoreNode(const Node& node) const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(node.id));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  char* p = page->data();
  std::memset(p, 0, kPageSize);
  EncodeFixed64(p, kInvalidLsn);
  p[8] = node.leaf ? 1 : 0;
  EncodeFixed16(p + 9, static_cast<uint16_t>(node.entries.size()));
  size_t off = 11;
  for (const auto& e : node.entries) {
    EncodeRect(p + off, e.rect);
    off += 32;
    if (node.leaf) {
      EncodeFixed64(p + off, e.value);
      off += 8;
    } else {
      EncodeFixed32(p + off, e.child);
      off += 4;
    }
  }
  return Status::OK();
}

Rect RTree::Mbr(const std::vector<Entry>& entries) {
  Rect mbr = entries.front().rect;
  for (size_t i = 1; i < entries.size(); i++) mbr = mbr.Union(entries[i].rect);
  return mbr;
}

void RTree::QuadraticSplit(std::vector<Entry>& all, std::vector<Entry>* left,
                           std::vector<Entry>* right) {
  // Pick seeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1;
  for (size_t i = 0; i < all.size(); i++) {
    for (size_t j = i + 1; j < all.size(); j++) {
      double waste = all[i].rect.Union(all[j].rect).Area() - all[i].rect.Area() -
                     all[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  left->clear();
  right->clear();
  left->push_back(all[seed_a]);
  right->push_back(all[seed_b]);
  Rect lmbr = all[seed_a].rect, rmbr = all[seed_b].rect;
  for (size_t i = 0; i < all.size(); i++) {
    if (i == seed_a || i == seed_b) continue;
    size_t remaining = all.size() - i;  // coarse bound on what's left (incl. this)
    // Force assignment when one side must take all remaining to reach the minimum.
    if (left->size() + remaining <= kMinEntries) {
      left->push_back(all[i]);
      lmbr = lmbr.Union(all[i].rect);
      continue;
    }
    if (right->size() + remaining <= kMinEntries) {
      right->push_back(all[i]);
      rmbr = rmbr.Union(all[i].rect);
      continue;
    }
    double dl = lmbr.Enlargement(all[i].rect);
    double dr = rmbr.Enlargement(all[i].rect);
    bool to_left = dl < dr || (dl == dr && lmbr.Area() <= rmbr.Area());
    if (to_left) {
      left->push_back(all[i]);
      lmbr = lmbr.Union(all[i].rect);
    } else {
      right->push_back(all[i]);
      rmbr = rmbr.Union(all[i].rect);
    }
  }
}

Result<RTree::SplitResult> RTree::InsertRec(PageId page_id, const Rect& rect,
                                            uint64_t value, uint32_t level) {
  MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(page_id));
  if (node.leaf) {
    node.entries.push_back(Entry{rect, value, kInvalidPageId});
  } else {
    // ChooseLeaf: child needing least enlargement (ties: smaller area).
    size_t best = 0;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); i++) {
      double enl = node.entries[i].rect.Enlargement(rect);
      double area = node.entries[i].rect.Area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = i;
        best_enl = enl;
        best_area = area;
      }
    }
    MOOD_ASSIGN_OR_RETURN(SplitResult child,
                          InsertRec(node.entries[best].child, rect, value, level + 1));
    node.entries[best].rect = child.old_mbr;
    if (child.split) {
      node.entries.push_back(Entry{child.new_mbr, 0, child.new_page});
    }
  }

  if (node.entries.size() <= kMaxEntries) {
    MOOD_RETURN_IF_ERROR(StoreNode(node));
    SplitResult res;
    res.old_mbr = Mbr(node.entries);
    return res;
  }

  // Overflow: quadratic split.
  std::vector<Entry> left, right;
  QuadraticSplit(node.entries, &left, &right);
  Node sibling;
  MOOD_ASSIGN_OR_RETURN(sibling.id, alloc_->AllocatePage());
  sibling.leaf = node.leaf;
  sibling.entries = std::move(right);
  node.entries = std::move(left);
  MOOD_RETURN_IF_ERROR(StoreNode(node));
  MOOD_RETURN_IF_ERROR(StoreNode(sibling));
  SplitResult res;
  res.split = true;
  res.new_page = sibling.id;
  res.new_mbr = Mbr(sibling.entries);
  res.old_mbr = Mbr(node.entries);
  return res;
}

Status RTree::Insert(const Rect& rect, uint64_t value) {
  MOOD_ASSIGN_OR_RETURN(SplitResult res, InsertRec(root_, rect, value, 0));
  if (res.split) {
    Node new_root;
    MOOD_ASSIGN_OR_RETURN(new_root.id, alloc_->AllocatePage());
    new_root.leaf = false;
    new_root.entries.push_back(Entry{res.old_mbr, 0, root_});
    new_root.entries.push_back(Entry{res.new_mbr, 0, res.new_page});
    MOOD_RETURN_IF_ERROR(StoreNode(new_root));
    root_ = new_root.id;
    height_++;
  }
  entries_++;
  return StoreMeta();
}

Status RTree::Delete(const Rect& rect, uint64_t value) {
  // Depth-first search for the entry; remove it and tighten ancestor MBRs.
  std::function<Result<bool>(PageId)> rec = [&](PageId pid) -> Result<bool> {
    MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(pid));
    if (node.leaf) {
      for (size_t i = 0; i < node.entries.size(); i++) {
        if (node.entries[i].value == value && node.entries[i].rect == rect) {
          node.entries.erase(node.entries.begin() + i);
          MOOD_RETURN_IF_ERROR(StoreNode(node));
          return true;
        }
      }
      return false;
    }
    for (size_t i = 0; i < node.entries.size(); i++) {
      if (!node.entries[i].rect.Intersects(rect)) continue;
      MOOD_ASSIGN_OR_RETURN(bool removed, rec(node.entries[i].child));
      if (removed) {
        MOOD_ASSIGN_OR_RETURN(Node child, LoadNode(node.entries[i].child));
        if (!child.entries.empty()) {
          node.entries[i].rect = Mbr(child.entries);
        }
        MOOD_RETURN_IF_ERROR(StoreNode(node));
        return true;
      }
    }
    return false;
  };
  MOOD_ASSIGN_OR_RETURN(bool removed, rec(root_));
  if (!removed) return Status::NotFound("rect/value pair not in R-tree");
  entries_--;
  return StoreMeta();
}

Result<std::vector<std::pair<Rect, uint64_t>>> RTree::Search(const Rect& window) const {
  std::vector<std::pair<Rect, uint64_t>> out;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    PageId pid = stack.back();
    stack.pop_back();
    MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(pid));
    for (const auto& e : node.entries) {
      if (!e.rect.Intersects(window)) continue;
      if (node.leaf) {
        out.emplace_back(e.rect, e.value);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

Status RTree::CheckRec(PageId pid, uint32_t depth) const {
  MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(pid));
  if (node.leaf) {
    if (depth + 1 != height_) {
      return Status::Corruption("leaf at wrong depth");
    }
    return Status::OK();
  }
  for (const auto& e : node.entries) {
    MOOD_ASSIGN_OR_RETURN(Node child, LoadNode(e.child));
    if (!child.entries.empty() && !e.rect.Contains(Mbr(child.entries))) {
      return Status::Corruption("child MBR escapes parent entry");
    }
    MOOD_RETURN_IF_ERROR(CheckRec(e.child, depth + 1));
  }
  return Status::OK();
}

Status RTree::CheckInvariants() const { return CheckRec(root_, 0); }

}  // namespace mood
