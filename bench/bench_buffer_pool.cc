// Buffer-pool sharding bench: threads x shards sweep over a working set 4x the
// pool size, measuring fetch throughput and checking that the sharded pool's
// accounting stays coherent under contention.
//
// The throughput table (and the 8-thread 8-shard vs 1-shard speedup) is
// informative, not pass/fail — it depends on how many cores the host grants
// (mirrors bench_query_e2e's parallel table). The hard checks are the
// correctness invariants: every fetched byte matches the written pattern,
// hits + misses == fetches, per-shard counters sum to the aggregate, and no
// pin is leaked.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace mood::bench {
namespace {

constexpr size_t kNumPages = 1024;     // working set
constexpr size_t kPoolFrames = 256;    // pool = 1/4 of working set -> constant eviction
constexpr size_t kFetchesPerThread = 20000;

struct RunResult {
  double secs = 0;
  uint64_t fetches = 0;
  uint64_t errors = 0;
  uint64_t bad_bytes = 0;
  BufferPoolStats stats;
  uint64_t shard_sum_hits = 0;
  uint64_t shard_sum_misses = 0;
  size_t pinned_after = 0;
  size_t shard_count = 0;
};

RunResult RunSweep(DiskManager* disk, const std::vector<PageId>& pages,
                   size_t shards, size_t threads) {
  BufferPool pool(disk, kPoolFrames, shards);
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> bad_bytes{0};

  auto worker = [&](size_t tid) {
    std::mt19937_64 rng(0x5eed + tid * 7919);
    std::uniform_int_distribution<size_t> pick(0, pages.size() - 1);
    for (size_t i = 0; i < kFetchesPerThread; i++) {
      PageId id = pages[pick(rng)];
      auto page = pool.FetchPage(id);
      if (!page.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (static_cast<uint8_t>(page.value()->data()[0]) !=
          static_cast<uint8_t>(id & 0xFF)) {
        bad_bytes.fetch_add(1, std::memory_order_relaxed);
      }
      if (!pool.UnpinPage(id, false).ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool_threads;
  for (size_t t = 1; t < threads; t++) pool_threads.emplace_back(worker, t);
  worker(0);
  for (auto& th : pool_threads) th.join();
  auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.secs = std::chrono::duration<double>(end - start).count();
  r.fetches = static_cast<uint64_t>(threads) * kFetchesPerThread;
  r.errors = errors.load();
  r.bad_bytes = bad_bytes.load();
  r.stats = pool.stats();
  r.shard_count = pool.shard_count();
  for (size_t s = 0; s < pool.shard_count(); s++) {
    BufferPoolStats ss = pool.ShardStats(s);
    r.shard_sum_hits += ss.hits;
    r.shard_sum_misses += ss.misses;
  }
  r.pinned_after = pool.PinnedPageCount();
  return r;
}

int Main(int argc, char** argv) {
  const bool json = WantJson(argc, argv);
  BenchDb db("buffer_pool");
  DiskManager disk;
  Check(disk.Open(db.Path("pool.mood")), "open disk");

  // Working set: kNumPages pages whose first byte encodes the page id.
  std::vector<PageId> pages;
  pages.reserve(kNumPages);
  std::vector<char> buf(kPageSize, 0);
  for (size_t i = 0; i < kNumPages; i++) {
    PageId id = CheckV(disk.AllocatePage(), "allocate page");
    buf[0] = static_cast<char>(id & 0xFF);
    Check(disk.WritePage(id, buf.data()), "write pattern page");
    pages.push_back(id);
  }

  Banner("Sharded buffer pool: random fetch throughput");
  std::printf("pool %zu frames, working set %zu pages (%.0fx pool), %zu fetches/thread\n",
              kPoolFrames, kNumPages,
              static_cast<double>(kNumPages) / kPoolFrames, kFetchesPerThread);

  const std::vector<size_t> shard_counts = {1, 4, 8};
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  Checks checks;
  JsonReport report("bench_buffer_pool");
  Table table({"threads", "shards", "fetches/s", "hit rate", "evictions"});
  // [threads][shards] -> throughput, for the ratio lines below.
  std::map<std::pair<size_t, size_t>, double> tput;

  for (size_t threads : thread_counts) {
    for (size_t shards : shard_counts) {
      RunResult r = RunSweep(&disk, pages, shards, threads);
      double per_sec = static_cast<double>(r.fetches) / r.secs;
      tput[{threads, shards}] = per_sec;
      std::string label = std::to_string(threads) + "t/" + std::to_string(shards) + "s";

      table.AddRow({std::to_string(threads), std::to_string(r.shard_count),
                    FmtSci(per_sec),
                    Fmt(static_cast<double>(r.stats.hits) / r.fetches, 3),
                    std::to_string(r.stats.evictions)});
      report.Metric("fetches_per_sec", label, per_sec);

      checks.Expect(r.shard_count == shards,
                    label + ": pool honors explicit shard count");
      checks.Expect(r.errors == 0, label + ": zero fetch/unpin errors");
      checks.Expect(r.bad_bytes == 0, label + ": every fetched page matches its pattern");
      checks.Expect(r.stats.hits + r.stats.misses == r.fetches,
                    label + ": hits + misses == fetches");
      checks.Expect(r.shard_sum_hits == r.stats.hits &&
                        r.shard_sum_misses == r.stats.misses,
                    label + ": per-shard counters sum to aggregate");
      checks.Expect(r.stats.evictions <= r.stats.misses,
                    label + ": evictions bounded by misses");
      checks.Expect(r.pinned_after == 0, label + ": no leaked pins");
    }
  }
  table.Print();

  Banner("Sharding speedup (informative — depends on host cores)");
  for (size_t threads : {static_cast<size_t>(4), static_cast<size_t>(8)}) {
    double ratio = tput[{threads, 8}] / tput[{threads, 1}];
    std::printf("  %zu threads: 8 shards vs 1 shard = %.2fx\n", threads, ratio);
    report.Metric("speedup_8_shards_vs_1", std::to_string(threads) + "t", ratio);
  }
  std::printf("  (hardware_concurrency here: %u)\n",
              std::thread::hardware_concurrency());

  Check(disk.Close(), "close disk");
  if (json) report.Emit(JsonPath(argc, argv));
  return checks.ExitCode();
}

}  // namespace
}  // namespace mood::bench

int main(int argc, char** argv) { return mood::bench::Main(argc, argv); }
