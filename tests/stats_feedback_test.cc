#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "obs/query_profile.h"
#include "stats/feedback.h"
#include "stats/histogram.h"
#include "stats/selectivity.h"
#include "stats/sketch.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

// --- DistinctSketch ---------------------------------------------------------------

TEST(DistinctSketchTest, SparseModeIsExact) {
  DistinctSketch sk;
  for (int i = 0; i < 1000; i++) sk.Add("value-" + std::to_string(i));
  // Duplicates must not inflate the count.
  for (int i = 0; i < 1000; i++) sk.Add("value-" + std::to_string(i % 100));
  EXPECT_TRUE(sk.sparse());
  EXPECT_EQ(sk.Estimate(), 1000u);
}

TEST(DistinctSketchTest, DenseModeWithinErrorBound) {
  DistinctSketch sk;
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; i++) sk.Add("key-" + std::to_string(i));
  EXPECT_FALSE(sk.sparse());
  double est = static_cast<double>(sk.Estimate());
  // 1024 registers -> ~3.2% standard error; allow 4 sigma.
  EXPECT_NEAR(est, static_cast<double>(n), 0.13 * n);
}

TEST(DistinctSketchTest, DensifyPreservesCount) {
  // Straddle the sparse->dense transition: the converted estimate must stay
  // near the exact count at the crossover point.
  DistinctSketch sk;
  const uint64_t n = DistinctSketch::kSparseLimit + 500;
  for (uint64_t i = 0; i < n; i++) sk.Add(std::to_string(i * 2654435761u));
  EXPECT_FALSE(sk.sparse());
  double est = static_cast<double>(sk.Estimate());
  EXPECT_NEAR(est, static_cast<double>(n), 0.13 * n);
}

// --- EquiDepthHistogram -----------------------------------------------------------

TEST(EquiDepthHistogramTest, EmptyAndDegenerate) {
  EXPECT_TRUE(EquiDepthHistogram::Build({}, 8).empty());
  EXPECT_TRUE(EquiDepthHistogram::Build({1.0, 2.0}, 0).empty());
  // A single value: one bucket, FractionEq == 1.
  auto h = EquiDepthHistogram::Build(std::vector<double>(50, 7.0), 8);
  ASSERT_FALSE(h.empty());
  EXPECT_DOUBLE_EQ(h.FractionEq(7.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionLE(7.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionLE(6.9), 0.0);
}

TEST(EquiDepthHistogramTest, SkewedEqualityBeatsUniformity) {
  // 90% of rows carry the value 1; the rest spread over 2..101. The paper's
  // 1/dist formula would estimate ~1/101 for every equality predicate; the
  // histogram must report ~0.9 for the heavy value and a small fraction for a
  // light one.
  std::vector<double> values;
  for (int i = 0; i < 900; i++) values.push_back(1.0);
  for (int i = 0; i < 100; i++) values.push_back(2.0 + i);
  auto h = EquiDepthHistogram::Build(std::move(values), 16);
  ASSERT_FALSE(h.empty());
  double heavy = h.FractionEq(1.0);
  EXPECT_NEAR(heavy, 0.9, 0.05);
  double light = h.FractionEq(50.0);
  EXPECT_LT(light, 0.05);
  // The uniformity estimate is off by ~90x for the heavy value.
  double uniform = 1.0 / 101.0;
  EXPECT_GT(heavy / uniform, 50.0);
}

TEST(EquiDepthHistogramTest, FractionLEInterpolatesAndIsMonotone) {
  std::vector<double> values;
  for (int i = 0; i < 1000; i++) values.push_back(static_cast<double>(i));
  auto h = EquiDepthHistogram::Build(std::move(values), 10);
  EXPECT_DOUBLE_EQ(h.FractionLE(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionLE(999.0), 1.0);
  EXPECT_NEAR(h.FractionLE(499.0), 0.5, 0.05);
  double prev = 0;
  for (double c = 0; c <= 1000; c += 37) {
    double f = h.FractionLE(c);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

// --- FeedbackStore ----------------------------------------------------------------

TEST(FeedbackStoreTest, RecordLookupAndLRUEviction) {
  FeedbackStore store;
  FeedbackOptions opts;
  opts.max_entries = 3;
  store.Configure(opts);
  store.Record("a", 0.1, /*schema=*/1, /*file=*/5, /*write=*/10);
  store.Record("b", 0.2, 1, 5, 10);
  store.Record("c", 0.3, 1, 5, 10);
  double sel = 0;
  ASSERT_TRUE(store.Lookup("a", 1, 5, 10, &sel));
  EXPECT_DOUBLE_EQ(sel, 0.1);
  // "b" is now least-recently-used; inserting "d" evicts it.
  store.Record("d", 0.4, 1, 5, 10);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_FALSE(store.Lookup("b", 1, 5, 10, &sel));
  ASSERT_TRUE(store.Lookup("a", 1, 5, 10, &sel));
  ASSERT_TRUE(store.Lookup("d", 1, 5, 10, &sel));
}

TEST(FeedbackStoreTest, SchemaEpochMismatchInvalidates) {
  FeedbackStore store;
  store.Configure({});
  store.Record("sig", 0.5, /*schema=*/7, /*file=*/1, /*write=*/0);
  double sel = 0;
  EXPECT_FALSE(store.Lookup("sig", /*cur schema=*/8, 1, 0, &sel));
  EXPECT_EQ(store.invalidations(), 1u);
  EXPECT_EQ(store.size(), 0u);  // stale entry erased, not retried
}

TEST(FeedbackStoreTest, WriteEpochChurnInvalidates) {
  FeedbackStore store;
  FeedbackOptions opts;
  opts.refresh_epoch_delta = 16;
  store.Configure(opts);
  store.Record("sig", 0.5, 1, /*file=*/3, /*write=*/100);
  double sel = 0;
  // Within the churn budget: still valid.
  ASSERT_TRUE(store.Lookup("sig", 1, 3, 100 + 16, &sel));
  // Past it: dropped.
  EXPECT_FALSE(store.Lookup("sig", 1, 3, 100 + 17, &sel));
  EXPECT_EQ(store.invalidations(), 1u);
}

TEST(CostCalibrationTest, RunningMeansAndValidity) {
  CostCalibration cal;
  EXPECT_FALSE(cal.Valid());
  cal.AddPage(2.0);
  cal.AddPage(4.0);
  EXPECT_FALSE(cal.Valid());  // no deref samples yet
  cal.AddDeref(0.5);
  EXPECT_TRUE(cal.Valid());
  EXPECT_DOUBLE_EQ(cal.MsPerPage(), 3.0);
  EXPECT_DOUBLE_EQ(cal.MsPerDeref(), 0.5);
  cal.Reset();
  EXPECT_FALSE(cal.Valid());
}

// --- End-to-end: histograms, ANALYZE, feedback convergence ------------------------

class FeedbackFixture : public ::testing::Test {
 protected:
  void SetUp() override { Reopen({}); }

  void Reopen(DatabaseOptions options) {
    if (db_.is_open()) MOOD_ASSERT_OK(db_.Close());
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood"), options));
  }

  double Metric(const std::string& name) {
    return db_.metrics()->Snapshot().ValueOf(name, 0);
  }

  /// Max q-error over all profiled operators that carry estimates.
  static double MaxQError(const QueryProfile& p) {
    double q = 1.0;
    if (p.has_estimates && p.est_rows > 0) {
      double actual = std::max<double>(p.rows_out, 0.5);
      double est = std::max(p.est_rows, 0.5);
      q = std::max(q, std::max(actual / est, est / actual));
    }
    for (const auto& c : p.children) q = std::max(q, MaxQError(*c));
    return q;
  }

  TempDir dir_;
  Database db_;
};

TEST_F(FeedbackFixture, AnalyzeStatementCollectsStatistics) {
  MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
  MOOD_ASSERT_OK(paperdb::PopulatePaperData(&db_, /*scale=*/64).status());
  // Named class.
  MOOD_ASSERT_OK_AND_ASSIGN(ExecResult r1, db_.Execute("ANALYZE Vehicle"));
  EXPECT_NE(r1.message.find("Vehicle"), std::string::npos);
  MOOD_ASSERT_OK_AND_ASSIGN(ClassStats cs, db_.stats()->Class("Vehicle"));
  EXPECT_GT(cs.cardinality, 0u);
  // All classes.
  MOOD_ASSERT_OK(db_.Execute("ANALYZE").status());
  MOOD_ASSERT_OK(db_.stats()->Class("Company").status());
  // Unknown class is an error.
  EXPECT_FALSE(db_.Execute("ANALYZE NoSuchClass").status().ok());
}

TEST_F(FeedbackFixture, HistogramBeatsUniformityOnSkewedExtent) {
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Reading TUPLE (sensor Integer)").status());
  // 90% of readings come from sensor 1.
  for (int i = 0; i < 180; i++) {
    MOOD_ASSERT_OK(db_.Execute("NEW Reading <1>").status());
  }
  for (int i = 0; i < 20; i++) {
    MOOD_ASSERT_OK(
        db_.Execute("NEW Reading <" + std::to_string(2 + i) + ">").status());
  }
  MOOD_ASSERT_OK(db_.Execute("ANALYZE Reading").status());

  SelectivityEstimator est(db_.stats());
  SelSource src = SelSource::kDefault;
  MOOD_ASSERT_OK_AND_ASSIGN(
      double sel, est.AtomicSelectivity("Reading", "sensor", BinaryOp::kEq,
                                        MoodValue::Integer(1), &src));
  EXPECT_EQ(src, SelSource::kHistogram);
  EXPECT_NEAR(sel, 0.9, 0.05);
  // The uniformity fallback would say 1/dist = 1/21 — off by ~19x.
  MOOD_ASSERT_OK_AND_ASSIGN(AttributeStats as,
                            db_.stats()->Attribute("Reading", "sensor"));
  EXPECT_GT(sel * as.dist, 10.0);
  // Provenance surfaces in EXPLAIN VERBOSE.
  ExplainOptions eo;
  eo.verbose = true;
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExplainResult ex,
      db_.Explain("SELECT r FROM Reading r WHERE r.sensor = 1", eo));
  EXPECT_NE(ex.Render().find("[sel: histogram]"), std::string::npos) << ex.Render();
}

TEST_F(FeedbackFixture, FeedbackConvergesQErrorWithinTwoRuns) {
  MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
  MOOD_ASSERT_OK(paperdb::PopulatePaperData(&db_, /*scale=*/128).status());
  MOOD_ASSERT_OK(db_.CollectAllStatistics());

  ExplainOptions eo;
  eo.analyze = true;  // profiled run; feedback defaults on
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult run1,
                            db_.Explain(paperdb::kExample82Query, eo));
  ASSERT_NE(run1.profile, nullptr);
  EXPECT_GT(Metric("stats.feedback_writes"), 0);
  EXPECT_GT(Metric("stats.feedback_absorbed"), 0);

  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult run2,
                            db_.Explain(paperdb::kExample82Query, eo));
  ASSERT_NE(run2.profile, nullptr);
  // The second optimization consults the measured selectivities...
  EXPECT_GT(Metric("stats.feedback_hits"), 0);
  // ...and its estimates now track the observed cardinalities.
  EXPECT_LE(MaxQError(*run2.profile), 2.0)
      << run2.profile->Render();
}

TEST_F(FeedbackFixture, SchemaEpochBumpDropsFeedbackEntries) {
  MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
  MOOD_ASSERT_OK(paperdb::PopulatePaperData(&db_, /*scale=*/64).status());
  MOOD_ASSERT_OK(db_.CollectAllStatistics());

  ExplainOptions eo;
  eo.analyze = true;
  MOOD_ASSERT_OK(db_.Explain(paperdb::kExample82Query, eo).status());
  ASSERT_GT(db_.stats()->feedback().size(), 0u);

  // DDL bumps the catalog schema epoch; the next lookup must refuse the
  // now-stale measurements instead of steering the plan with them.
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS EpochBump TUPLE (x Integer)").status());
  double before = Metric("stats.feedback_invalidations");
  MOOD_ASSERT_OK(db_.Explain(paperdb::kExample82Query, eo).status());
  EXPECT_GT(Metric("stats.feedback_invalidations"), before);
}

TEST_F(FeedbackFixture, WriteEpochChurnTriggersAutoRefresh) {
  DatabaseOptions options;
  options.stats_refresh_epoch_delta = 4;  // refresh after a handful of writes
  Reopen(options);
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Hot TUPLE (x Integer)").status());
  for (int i = 0; i < 8; i++) {
    MOOD_ASSERT_OK(
        db_.Execute("NEW Hot <" + std::to_string(i) + ">").status());
  }
  MOOD_ASSERT_OK(db_.Execute("ANALYZE Hot").status());
  // Churn the extent well past the refresh threshold.
  for (int i = 0; i < 32; i++) {
    MOOD_ASSERT_OK(
        db_.Execute("NEW Hot <" + std::to_string(100 + i) + ">").status());
  }
  double before = Metric("stats.refreshes");
  // A feedback-enabled optimization notices the churn and re-collects.
  MOOD_ASSERT_OK(db_.Query("SELECT h FROM Hot h WHERE h.x = 1", {}).status());
  EXPECT_GT(Metric("stats.refreshes"), before);
  // The refreshed statistics see the full extent.
  MOOD_ASSERT_OK_AND_ASSIGN(ClassStats cs, db_.stats()->Class("Hot"));
  EXPECT_EQ(cs.cardinality, 40u);
}

}  // namespace
}  // namespace mood
