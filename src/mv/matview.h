#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/executor.h"
#include "objects/object_manager.h"
#include "optimizer/optimizer.h"
#include "sql/ast.h"

namespace mood {

class MetricCounter;

/// One materialized extent: a SELECT whose result is stored, maintained
/// incrementally from base-extent deltas, and served in place of re-executing
/// the query (see DESIGN.md §15).
struct MatView {
  std::string name;
  std::string select_sql;      ///< definition text (persisted in the catalog)
  std::string normalized_sql;  ///< rewrite match key (NormalizeSql of the text)
  SelectStmt stmt;             ///< parsed definition

  // Compiled state, re-derived whenever the catalog schema epoch moves.
  QueryOptimizer::Optimized optimized;
  uint64_t schema_epoch = 0;
  bool needs_setup = true;  ///< loaded from catalog; bind/build on first serve
  bool broken = false;      ///< setup or maintenance failed at this epoch

  // Dependency-graph edges: every base extent file feeding the view, split
  // into the files the root variable's scan visits (deltas there are
  // per-object maintainable) and the rest (hop extents -> full refresh).
  std::vector<uint16_t> dep_files;
  std::set<uint16_t> root_files;
  std::string root_var;

  // Maintenance mode decided by the refusal matrix (DESIGN.md §15.4).
  bool delta_maintainable = false;
  std::string refusal;  ///< why the view fell back to full refresh
  /// Maintenance plan for delta re-derivation: Filter(where, Bind(root)) with
  /// the bind restricted to the delta OIDs. Unlike the optimizer's join plan,
  /// it never scans the hop extents — path predicates and projections chase
  /// references from each delta root directly. Null unless delta-maintainable.
  PlanPtr delta_plan;

  // Materialized rows. Delta-maintainable views bucket output rows by the
  // packed root OID they derive from; serving concatenates buckets in root
  // extent-scan order, reproducing normal execution's row order. Fallback
  // views store the finished result as-is.
  std::vector<std::string> columns;
  std::unordered_map<uint64_t, std::vector<std::vector<MoodValue>>> rows_by_root;
  QueryResult flat;

  // Dirt captured by the write observer, consumed by serve-time maintenance.
  std::unordered_set<uint64_t> dirty_roots;
  bool full_dirty = false;
};

/// Registry and maintenance engine for materialized extents.
///
/// Locking: one mutex guards all registry and view state. The write observer
/// runs inside the commit gate's exclusive section; serves run inside a shared
/// section — the gate already excludes observer/serve overlap, so the mutex
/// only serializes concurrent serves (and never nests inside a gate
/// acquisition, keeping the gate -> mv-mutex order acyclic).
class MvManager {
 public:
  MvManager(Catalog* catalog, ObjectManager* objects, QueryOptimizer* optimizer,
            Executor* executor)
      : catalog_(catalog), objects_(objects), optimizer_(optimizer),
        executor_(executor) {}

  void SetMetrics(MetricCounter* hits, MetricCounter* maintenance_rows,
                  MetricCounter* full_refreshes, MetricCounter* rebuilds) {
    hits_ = hits;
    maintenance_rows_ = maintenance_rows;
    full_refreshes_ = full_refreshes;
    rebuilds_ = rebuilds;
  }

  /// CREATE MATERIALIZED VIEW: validates the shape, binds + optimizes the
  /// definition, materializes it, and registers the dependency edges. The
  /// caller holds the exclusive gate and has already registered the
  /// definition in the catalog.
  Status Create(const std::string& name, const std::string& select_sql,
                const SelectStmt& stmt);

  Status Drop(const std::string& name);

  /// Re-registers persisted definitions at open. Binding and materialization
  /// happen lazily on first serve, so opening never fails on a definition
  /// the current schema can no longer satisfy (it just never serves).
  Status Load(const std::vector<MatViewDef>& defs);

  /// Write observer (ObjectManager::SetWriteObserver): called after every
  /// object write, inside the exclusive gate section. Routes the delta to the
  /// views depending on `file`.
  void OnWrite(uint16_t file, Oid oid);

  enum class Outcome { kNoView, kDeclined, kServed };

  /// The transparent rewrite: if a registered view's normalized SQL equals
  /// `normalized_sql`, bring it up to date (delta maintenance, or flagged
  /// full refresh) and copy its rows into `out`. `fresh` is consulted with
  /// the view's dependency files after any schema-epoch re-setup and may veto
  /// the serve — the caller checks MVCC pin/pending freshness there.
  /// kDeclined and kNoView both mean "execute normally"; they differ only for
  /// observability. Call under a shared commit-gate section.
  Result<Outcome> TryServe(
      const std::string& normalized_sql,
      const std::function<bool(const std::vector<uint16_t>&)>& fresh,
      QueryResult* out);

  /// EXPLAIN support: a usable (registered, not known-broken) view matches.
  bool WouldServe(const std::string& normalized_sql);

  /// Introspection (tests, diagnostics).
  struct ViewInfo {
    std::string name;
    std::string select_sql;
    bool delta_maintainable = false;
    std::string refusal;
  };
  std::vector<ViewInfo> Views();

  size_t view_count();

 private:
  /// Bind + optimize + dependency/maintainability analysis; stamps the
  /// current schema epoch. Registry maps are refreshed by the caller.
  Status Setup(MatView* v);
  /// Full rematerialization by executing the definition.
  Status RebuildLocked(MatView* v);
  /// Re-derives the output rows of the dirty root objects only.
  Status MaintainDeltaLocked(MatView* v);
  /// Decides delta maintainability (the refusal matrix); fills root/hop
  /// metadata. Never fails — refusals downgrade to full refresh.
  void AnalyzeMaintainability(MatView* v);
  /// Executes the view's plan (optionally restricted to `delta` root OIDs)
  /// and buckets the finished rows by root OID.
  Status ExecuteIntoBuckets(MatView* v, const std::vector<Oid>* delta);
  void ReindexDeps();

  Catalog* catalog_;
  ObjectManager* objects_;
  QueryOptimizer* optimizer_;
  Executor* executor_;
  MetricCounter* hits_ = nullptr;
  MetricCounter* maintenance_rows_ = nullptr;
  MetricCounter* full_refreshes_ = nullptr;
  MetricCounter* rebuilds_ = nullptr;

  std::mutex mu_;
  /// Lock-free guard for the hot write path: writes skip the mutex entirely
  /// while no view depends on any extent.
  std::atomic<size_t> dep_count_{0};
  std::map<std::string, std::unique_ptr<MatView>> views_;
  std::unordered_map<std::string, MatView*> by_sql_;
  std::unordered_map<uint16_t, std::vector<MatView*>> by_dep_;
};

}  // namespace mood
