#include "sql/ast.h"

#include <algorithm>

namespace mood {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::Literal(MoodValue v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Path(std::string var, std::vector<PathStep> steps) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kPath;
  e->range_var = std::move(var);
  e->steps = std::move(steps);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->operand = std::move(operand);
  return e;
}

ExprPtr Expr::Parameter(uint32_t index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kParameter;
  e->param_index = index;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kPath: {
      std::string out = range_var;
      for (const auto& s : steps) {
        out += "." + s.name;
        if (s.is_call) {
          out += "(";
          for (size_t i = 0; i < s.args.size(); i++) {
            if (i > 0) out += ", ";
            out += s.args[i]->ToString();
          }
          out += ")";
        }
      }
      return out;
    }
    case ExprKind::kBinary:
      return "(" + lhs->ToString() + " " + std::string(BinaryOpName(op)) + " " +
             rhs->ToString() + ")";
    case ExprKind::kUnary:
      return uop == UnaryOp::kNot ? "NOT (" + operand->ToString() + ")"
                                  : "-(" + operand->ToString() + ")";
    case ExprKind::kParameter:
      return "?" + std::to_string(param_index + 1);
  }
  return "?";
}

uint32_t ParamCount(const ExprPtr& expr) {
  if (expr == nullptr) return 0;
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return 0;
    case ExprKind::kParameter:
      return expr->param_index + 1;
    case ExprKind::kPath: {
      uint32_t count = 0;
      for (const auto& s : expr->steps) {
        for (const auto& a : s.args) count = std::max(count, ParamCount(a));
      }
      return count;
    }
    case ExprKind::kBinary:
      return std::max(ParamCount(expr->lhs), ParamCount(expr->rhs));
    case ExprKind::kUnary:
      return ParamCount(expr->operand);
  }
  return 0;
}

uint32_t ParamCount(const SelectStmt& stmt) {
  uint32_t count = 0;
  for (const auto& e : stmt.projection) count = std::max(count, ParamCount(e));
  count = std::max(count, ParamCount(stmt.where));
  for (const auto& e : stmt.group_by) count = std::max(count, ParamCount(e));
  count = std::max(count, ParamCount(stmt.having));
  for (const auto& k : stmt.order_by) count = std::max(count, ParamCount(k.expr));
  return count;
}

}  // namespace mood
