#include "types/type_desc.h"

#include "common/coding.h"

namespace mood {

std::string_view ConstructorKindName(ConstructorKind k) {
  switch (k) {
    case ConstructorKind::kBasic: return "Basic";
    case ConstructorKind::kTuple: return "Tuple";
    case ConstructorKind::kSet: return "Set";
    case ConstructorKind::kList: return "List";
    case ConstructorKind::kReference: return "Reference";
  }
  return "?";
}

TypeDescPtr TypeDesc::Basic(BasicType t) {
  auto d = std::shared_ptr<TypeDesc>(new TypeDesc());
  d->kind_ = ConstructorKind::kBasic;
  d->basic_ = t;
  return d;
}

TypeDescPtr TypeDesc::SizedString(uint32_t capacity) {
  auto d = std::shared_ptr<TypeDesc>(new TypeDesc());
  d->kind_ = ConstructorKind::kBasic;
  d->basic_ = BasicType::kString;
  d->string_capacity_ = capacity;
  return d;
}

TypeDescPtr TypeDesc::Tuple(std::vector<Field> fields) {
  auto d = std::shared_ptr<TypeDesc>(new TypeDesc());
  d->kind_ = ConstructorKind::kTuple;
  d->fields_ = std::move(fields);
  return d;
}

TypeDescPtr TypeDesc::Set(TypeDescPtr elem) {
  auto d = std::shared_ptr<TypeDesc>(new TypeDesc());
  d->kind_ = ConstructorKind::kSet;
  d->elem_ = std::move(elem);
  return d;
}

TypeDescPtr TypeDesc::List(TypeDescPtr elem) {
  auto d = std::shared_ptr<TypeDesc>(new TypeDesc());
  d->kind_ = ConstructorKind::kList;
  d->elem_ = std::move(elem);
  return d;
}

TypeDescPtr TypeDesc::Reference(std::string class_name) {
  auto d = std::shared_ptr<TypeDesc>(new TypeDesc());
  d->kind_ = ConstructorKind::kReference;
  d->class_name_ = std::move(class_name);
  return d;
}

int TypeDesc::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); i++) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status TypeDesc::CheckValue(const MoodValue& v) const {
  if (v.is_null()) return Status::OK();  // any attribute may be null (notnull stats)
  switch (kind_) {
    case ConstructorKind::kBasic: {
      switch (basic_) {
        case BasicType::kInteger:
          if (v.kind() == ValueKind::kInteger) return Status::OK();
          break;
        case BasicType::kLongInteger:
          if (v.kind() == ValueKind::kLongInteger || v.kind() == ValueKind::kInteger) {
            return Status::OK();
          }
          break;
        case BasicType::kFloat:
          if (v.IsNumeric()) return Status::OK();
          break;
        case BasicType::kString:
          if (v.kind() == ValueKind::kString) {
            if (string_capacity_ > 0 && v.AsString().size() > string_capacity_) {
              return Status::TypeError("string exceeds declared capacity String(" +
                                       std::to_string(string_capacity_) + ")");
            }
            return Status::OK();
          }
          break;
        case BasicType::kChar:
          if (v.kind() == ValueKind::kChar) return Status::OK();
          break;
        case BasicType::kBoolean:
          if (v.kind() == ValueKind::kBoolean) return Status::OK();
          break;
      }
      return Status::TypeError(std::string("expected ") +
                               std::string(BasicTypeName(basic_)) + ", got " +
                               std::string(ValueKindName(v.kind())));
    }
    case ConstructorKind::kTuple: {
      if (v.kind() != ValueKind::kTuple) {
        return Status::TypeError("expected Tuple, got " +
                                 std::string(ValueKindName(v.kind())));
      }
      if (v.size() != fields_.size()) {
        return Status::TypeError("tuple arity mismatch: expected " +
                                 std::to_string(fields_.size()) + ", got " +
                                 std::to_string(v.size()));
      }
      for (size_t i = 0; i < fields_.size(); i++) {
        Status st = fields_[i].type->CheckValue(v.elements()[i]);
        if (!st.ok()) {
          return Status::TypeError("field '" + fields_[i].name + "': " + st.message());
        }
      }
      return Status::OK();
    }
    case ConstructorKind::kSet:
    case ConstructorKind::kList: {
      ValueKind want = kind_ == ConstructorKind::kSet ? ValueKind::kSet : ValueKind::kList;
      if (v.kind() != want) {
        return Status::TypeError(std::string("expected ") +
                                 std::string(ConstructorKindName(kind_)) + ", got " +
                                 std::string(ValueKindName(v.kind())));
      }
      for (const auto& e : v.elements()) MOOD_RETURN_IF_ERROR(elem_->CheckValue(e));
      return Status::OK();
    }
    case ConstructorKind::kReference: {
      if (v.kind() == ValueKind::kReference) return Status::OK();
      return Status::TypeError("expected Reference, got " +
                               std::string(ValueKindName(v.kind())));
    }
  }
  return Status::Internal("unhandled constructor kind");
}

MoodValue TypeDesc::DefaultValue() const {
  switch (kind_) {
    case ConstructorKind::kBasic:
      switch (basic_) {
        case BasicType::kInteger: return MoodValue::Integer(0);
        case BasicType::kFloat: return MoodValue::Float(0.0);
        case BasicType::kLongInteger: return MoodValue::LongInteger(0);
        case BasicType::kString: return MoodValue::String("");
        case BasicType::kChar: return MoodValue::Char('\0');
        case BasicType::kBoolean: return MoodValue::Boolean(false);
      }
      return MoodValue::Null();
    case ConstructorKind::kTuple: {
      MoodValue::ValueList fields;
      for (const auto& f : fields_) fields.push_back(f.type->DefaultValue());
      return MoodValue::Tuple(std::move(fields));
    }
    case ConstructorKind::kSet: return MoodValue::Set({});
    case ConstructorKind::kList: return MoodValue::List({});
    case ConstructorKind::kReference: return MoodValue::Null();
  }
  return MoodValue::Null();
}

size_t TypeDesc::EstimateSize() const {
  switch (kind_) {
    case ConstructorKind::kBasic:
      switch (basic_) {
        case BasicType::kInteger: return 4;
        case BasicType::kFloat: return 8;
        case BasicType::kLongInteger: return 8;
        case BasicType::kString: return string_capacity_ > 0 ? string_capacity_ : 24;
        case BasicType::kChar: return 1;
        case BasicType::kBoolean: return 1;
      }
      return 8;
    case ConstructorKind::kTuple: {
      size_t total = 0;
      for (const auto& f : fields_) total += f.type->EstimateSize() + 1;
      return total;
    }
    case ConstructorKind::kSet:
    case ConstructorKind::kList:
      return 8 + 4 * elem_->EstimateSize();  // assume small average cardinality
    case ConstructorKind::kReference:
      return 8;
  }
  return 8;
}

bool TypeDesc::Equals(const TypeDesc& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ConstructorKind::kBasic:
      return basic_ == other.basic_ && string_capacity_ == other.string_capacity_;
    case ConstructorKind::kReference:
      return class_name_ == other.class_name_;
    case ConstructorKind::kSet:
    case ConstructorKind::kList:
      return elem_->Equals(*other.elem_);
    case ConstructorKind::kTuple: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); i++) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
  }
  return false;
}

std::string TypeDesc::ToString() const {
  switch (kind_) {
    case ConstructorKind::kBasic: {
      std::string out(BasicTypeName(basic_));
      if (basic_ == BasicType::kString && string_capacity_ > 0) {
        out += "(" + std::to_string(string_capacity_) + ")";
      }
      return out;
    }
    case ConstructorKind::kTuple: {
      std::string out = "TUPLE (";
      for (size_t i = 0; i < fields_.size(); i++) {
        if (i > 0) out += ", ";
        out += fields_[i].name + " " + fields_[i].type->ToString();
      }
      out += ")";
      return out;
    }
    case ConstructorKind::kSet: return "SET (" + elem_->ToString() + ")";
    case ConstructorKind::kList: return "LIST (" + elem_->ToString() + ")";
    case ConstructorKind::kReference: return "REFERENCE (" + class_name_ + ")";
  }
  return "?";
}

void TypeDesc::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(kind_));
  switch (kind_) {
    case ConstructorKind::kBasic:
      dst->push_back(static_cast<char>(basic_));
      PutFixed32(dst, string_capacity_);
      break;
    case ConstructorKind::kReference:
      PutLengthPrefixedSlice(dst, class_name_);
      break;
    case ConstructorKind::kSet:
    case ConstructorKind::kList:
      elem_->EncodeTo(dst);
      break;
    case ConstructorKind::kTuple:
      PutFixed32(dst, static_cast<uint32_t>(fields_.size()));
      for (const auto& f : fields_) {
        PutLengthPrefixedSlice(dst, f.name);
        f.type->EncodeTo(dst);
      }
      break;
  }
}

Result<TypeDescPtr> TypeDesc::Decode(Slice* input) {
  if (input->empty()) return Status::Corruption("empty type encoding");
  auto kind = static_cast<ConstructorKind>((*input)[0]);
  input->remove_prefix(1);
  switch (kind) {
    case ConstructorKind::kBasic: {
      if (input->size() < 5) return Status::Corruption("truncated basic type");
      auto basic = static_cast<BasicType>((*input)[0]);
      input->remove_prefix(1);
      uint32_t cap = DecodeFixed32(input->data());
      input->remove_prefix(4);
      if (basic == BasicType::kString && cap > 0) return SizedString(cap);
      return Basic(basic);
    }
    case ConstructorKind::kReference: {
      Decoder dec(*input);
      std::string name;
      size_t start = dec.Remaining();
      MOOD_RETURN_IF_ERROR(dec.GetString(&name));
      input->remove_prefix(start - dec.Remaining());
      return Reference(std::move(name));
    }
    case ConstructorKind::kSet: {
      MOOD_ASSIGN_OR_RETURN(TypeDescPtr elem, Decode(input));
      return Set(std::move(elem));
    }
    case ConstructorKind::kList: {
      MOOD_ASSIGN_OR_RETURN(TypeDescPtr elem, Decode(input));
      return List(std::move(elem));
    }
    case ConstructorKind::kTuple: {
      if (input->size() < 4) return Status::Corruption("truncated tuple type");
      uint32_t n = DecodeFixed32(input->data());
      input->remove_prefix(4);
      std::vector<Field> fields;
      fields.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        Decoder dec(*input);
        std::string name;
        size_t start = dec.Remaining();
        MOOD_RETURN_IF_ERROR(dec.GetString(&name));
        input->remove_prefix(start - dec.Remaining());
        MOOD_ASSIGN_OR_RETURN(TypeDescPtr ft, Decode(input));
        fields.push_back(Field{std::move(name), std::move(ft)});
      }
      return Tuple(std::move(fields));
    }
  }
  return Status::Corruption("unknown type constructor tag");
}

}  // namespace mood
