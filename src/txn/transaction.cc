#include "txn/transaction.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/coding.h"
#include "txn/version_store.h"

namespace mood {

Result<Lsn> Transaction::LogPageWrite(PageId page, Slice before, Slice after) {
  if (state_.load(std::memory_order_acquire) != TxnState::kActive) {
    return Status::TxnAborted("write in non-active transaction");
  }
  MOOD_ASSIGN_OR_RETURN(Lsn lsn, mgr_->log()->AppendPageWrite(id_, page, before, after));
  undo_.push_back(UndoEntry{page, lsn, before.ToString()});
  return lsn;
}

Status Transaction::Lock(LockKey key, LockMode mode) {
  return mgr_->locks()->Acquire(id_, key, mode);
}

TransactionManager::TransactionManager(BufferPool* pool, LogManager* log,
                                       LockManager* locks)
    : pool_(pool), log_(log), locks_(locks) {
  // WAL rule: before any dirty page reaches disk, force the log.
  pool_->SetPreFlushHook([this](const Page&) { return log_->Flush(); });
}

TransactionManager::~TransactionManager() { pool_->SetPreFlushHook(nullptr); }

bool TransactionManager::HasActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(live_.begin(), live_.end(), [](const auto& t) {
    return t->state() == TxnState::kActive;
  });
}

void TransactionManager::PruneCompleted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(live_, [](const auto& t) { return t->state() != TxnState::kActive; });
}

Result<Transaction*> TransactionManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_txn_id_++;
  MOOD_RETURN_IF_ERROR(log_->AppendBegin(id).status());
  auto txn = std::unique_ptr<Transaction>(new Transaction(id, this));
  if (versions_ != nullptr) txn->version_batch_ = versions_->BeginBatch();
  Transaction* ptr = txn.get();
  live_.push_back(std::move(txn));
  return ptr;
}

Status TransactionManager::RollbackInBuffer(Transaction* txn) {
  Status first;
  {
    // Exclusive gate section: snapshot readers must see the page restores as
    // one atomic step, never a half-rolled-back heap.
    CommitGate::ExclusiveGuard gate(versions_ ? &versions_->gate() : nullptr);
    for (auto it = txn->undo_.rbegin(); it != txn->undo_.rend(); ++it) {
      auto page = pool_->FetchPage(it->page);
      if (!page.ok()) {
        if (first.ok()) first = page.status();
        continue;
      }
      std::memcpy(page.value()->data(), it->before.data(), kPageSize);
      Status up = pool_->UnpinPage(it->page, /*dirty=*/true);
      if (!up.ok() && first.ok()) first = up;
    }
    // Drop the pending captures only after the heap is restored: in between,
    // a reader served the pending pre-image — the same bytes the restore just
    // put back.
    if (versions_ != nullptr && txn->version_batch_ != 0) {
      versions_->AbortBatch(txn->version_batch_);
    }
  }
  txn->state_.store(TxnState::kAborted, std::memory_order_release);
  txn->undo_.clear();
  locks_->ReleaseAll(txn->id_);
  return first;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->state_.load(std::memory_order_acquire) != TxnState::kActive) {
    return Status::InvalidArgument("commit of non-active transaction");
  }
  Status durable = [&]() -> Status {
    MOOD_ASSIGN_OR_RETURN(Lsn commit_lsn, log_->AppendCommit(txn->id_));
    return log_->SyncCommit(commit_lsn);
  }();
  if (!durable.ok()) {
    // The commit record may not have reached stable storage, so the commit
    // cannot be acknowledged. Roll back and release the locks — otherwise one
    // log failure wedges every later transaction behind orphaned locks.
    //
    // If the failure was indeterminate (bytes may have reached the file or
    // page cache), the LogManager has made it sticky: every further append
    // and flush — including the buffer pool's pre-flush hook — returns the
    // same error, so neither this in-buffer rollback nor any later write can
    // reach disk. On reopen, recovery decides the transaction's true fate
    // from whatever prefix of the log actually persisted; either outcome is
    // internally consistent, and the caller was told only that durability
    // could not be confirmed.
    (void)RollbackInBuffer(txn);
    return durable;
  }
  // Stamp the version batch only after the commit record is durable: until
  // this point snapshot readers treat the transaction's writes as uncommitted
  // (pending pre-images), which is exactly right if we crash before here.
  if (versions_ != nullptr && txn->version_batch_ != 0) {
    versions_->CommitBatch(txn->version_batch_);
  }
  txn->state_.store(TxnState::kCommitted, std::memory_order_release);
  txn->undo_.clear();
  locks_->ReleaseAll(txn->id_);
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state_.load(std::memory_order_acquire) != TxnState::kActive) {
    return Status::InvalidArgument("abort of non-active transaction");
  }
  Status undone = RollbackInBuffer(txn);
  // Log the abort so recovery can skip the undo it just performed. Best
  // effort: if this fails the transaction is a loser in the log and the next
  // recovery undoes it again (idempotent), but the rollback above already
  // released its locks.
  Status logged = [&]() -> Status {
    MOOD_ASSIGN_OR_RETURN(Lsn abort_lsn, log_->AppendAbort(txn->id_));
    return log_->SyncCommit(abort_lsn);
  }();
  return undone.ok() ? logged : undone;
}

Result<RecoveryManager::Report> RecoveryManager::Recover() {
  std::vector<LogRecord> records;
  MOOD_RETURN_IF_ERROR(log_->ReadAll(&records));

  Report report;
  std::set<uint64_t> committed;
  std::set<uint64_t> aborted;
  std::set<uint64_t> seen;
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn_id);
    if (rec.type == LogRecordType::kAbort) aborted.insert(rec.txn_id);
    if (rec.type == LogRecordType::kBegin) seen.insert(rec.txn_id);
  }
  report.committed_txns = committed.size();
  for (uint64_t id : seen) {
    if (!committed.count(id) && !aborted.count(id)) report.loser_txns++;
  }

  // Redo phase: apply every page write (committed, aborted and loser alike) whose
  // LSN is newer than the page. Aborted transactions' abort-time restores were
  // buffer-level only, so their writes are re-applied here and rolled back again
  // by the undo phase below, which also covers losers.
  for (const LogRecord& rec : records) {
    if (rec.type != LogRecordType::kPageWrite) continue;
    // Tolerant fetch: a torn/corrupt frame arrives zeroed (page LSN 0), so the
    // `current < rec.lsn` test below always re-applies the logged full image —
    // this is how checksum failures heal instead of failing recovery.
    bool corrupted = false;
    MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPageTolerant(rec.page_id, &corrupted));
    if (corrupted) report.corrupt_pages_rebuilt++;
    Lsn current = DecodeFixed64(page->data());
    if (current < rec.lsn) {
      std::memcpy(page->data(), rec.after.data(), kPageSize);
      EncodeFixed64(page->data(), rec.lsn);
      MOOD_RETURN_IF_ERROR(pool_->UnpinPage(rec.page_id, true));
      report.redo_applied++;
    } else {
      MOOD_RETURN_IF_ERROR(pool_->UnpinPage(rec.page_id, corrupted));
    }
  }

  // Undo phase: restore before-images of non-committed transactions, newest first.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const LogRecord& rec = *it;
    if (rec.type != LogRecordType::kPageWrite) continue;
    if (committed.count(rec.txn_id)) continue;
    bool corrupted = false;
    MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPageTolerant(rec.page_id, &corrupted));
    if (corrupted) report.corrupt_pages_rebuilt++;
    std::memcpy(page->data(), rec.before.data(), kPageSize);
    EncodeFixed64(page->data(), rec.lsn);
    MOOD_RETURN_IF_ERROR(pool_->UnpinPage(rec.page_id, true));
    report.undo_applied++;
  }

  MOOD_RETURN_IF_ERROR(pool_->FlushAll());
  return report;
}

}  // namespace mood
