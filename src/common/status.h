#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace mood {

/// Error categories used across the MOOD system. Mirrors the failure surface of the
/// original system: storage-level failures (ESM in the paper), catalog lookups, SQL
/// front-end errors, function-manager errors, and transaction aborts.
///
/// The numeric values are a stable wire contract: protocol error frames carry the
/// integer and clients rebuild an equivalent Status with Status::FromCode. Never
/// renumber an existing entry; append new codes at the end.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kParseError = 7,
  kTypeError = 8,
  kCatalogError = 9,
  kFunctionError = 10,
  kTxnAborted = 11,
  kDeadlock = 12,
  kInternal = 13,
  kTimeout = 14,      // request deadline exceeded (wire server)
  kUnavailable = 15,  // server shutting down / session reaped
};

/// Human-readable name of a status code ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// RocksDB-style status object: cheap to pass by value, OK status carries no
/// allocation. All public MOOD APIs that can fail return Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status CatalogError(std::string msg) {
    return Status(StatusCode::kCatalogError, std::move(msg));
  }
  static Status FunctionError(std::string msg) {
    return Status(StatusCode::kFunctionError, std::move(msg));
  }
  static Status TxnAborted(std::string msg) {
    return Status(StatusCode::kTxnAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// Rebuild a Status from a (code, message) pair that crossed the wire. Unknown
  /// integer codes (a newer server talking to an older client) degrade to kInternal
  /// so the error is still surfaced rather than silently dropped.
  static Status FromCode(int code, std::string msg) {
    if (code == 0) return OK();
    if (code < 0 || code > static_cast<int>(StatusCode::kUnavailable)) {
      return Status(StatusCode::kInternal,
                    "unknown wire status code " + std::to_string(code) +
                        (msg.empty() ? "" : ": " + msg));
    }
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsTxnAborted() const { return code_ == StatusCode::kTxnAborted; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> couples a Status with a value; exactly one of the two is meaningful.
/// Usage:
///   Result<int> r = Compute();
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(google-explicit-*)
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mood

/// Propagate a non-OK Status out of the current function.
#define MOOD_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::mood::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluate a Result<T>-returning expression; on error return its Status, otherwise
/// bind the value to `lhs`. `lhs` may be a declaration ("auto x").
#define MOOD_ASSIGN_OR_RETURN(lhs, expr)                   \
  MOOD_ASSIGN_OR_RETURN_IMPL_(                             \
      MOOD_STATUS_CONCAT_(_res, __LINE__), lhs, expr)

#define MOOD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define MOOD_STATUS_CONCAT_(a, b) MOOD_STATUS_CONCAT_IMPL_(a, b)
#define MOOD_STATUS_CONCAT_IMPL_(a, b) a##b
