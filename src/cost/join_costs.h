#pragma once

#include "common/status.h"
#include "cost/file_ops.h"
#include "sql/binder.h"
#include "stats/selectivity.h"

namespace mood {

/// Section 6 — costs of realizing the implicit join C.A = D.self, joining k_c
/// selected objects of C with k_d selected objects of D. All results in ms.
/// Inputs come from the statistics manager (Table 8 parameters).

struct ImplicitJoinInput {
  double k_c = 0;          ///< selected objects of C
  double k_d = 0;          ///< selected objects of D
  double card_c = 0;       ///< |C|
  double card_d = 0;       ///< |D|
  double nbpages_c = 0;    ///< nbpages(C)
  double nbpages_d = 0;    ///< nbpages(D)
  double fan = 1;          ///< fan(A,C,D)
  double totref = 0;       ///< totref(A,C,D)
  bool d_accessed_previously = false;
  /// The k_c source objects are already in memory (a prior selection or join
  /// produced them), so forward traversal does not pay to fetch their pages.
  bool c_accessed_previously = false;
};

/// Section 6.1, forward traversal:
///   ftc = RNDCOST(nbpg_c) + RNDCOST(k_c * fan)
///   nbpg_c = nbpages(C) * (1 - (1 - 1/nbpages(C))^{k_c})
/// (worst case: no buffer hits on D's pages).
double ForwardTraversalCost(const ImplicitJoinInput& in, const DiskParameters& p);

/// Section 6.2, backward traversal (no stored back-references: sequential scan of
/// C testing each reference against the k_d selected D objects):
///   btc = SEQCOST(nbpages(C)) + k_c * fan * k_d * CPUCOST
///         + (0 if D accessed previously else SEQCOST(nbpages(D)))
double BackwardTraversalCost(const ImplicitJoinInput& in, const DiskParameters& p);

/// Section 6.3, binary join index: bjc = INDCOST(k) probed with the smaller side.
double BinaryJoinIndexCost(double k, const BTreeCostParams& index,
                           const DiskParameters& p);

/// Section 6.4, pointer-based hash-partition join:
///   hhc = 3 * (k_c / |C|) * SEQCOST(nbpages(C)) + RNDCOST(nbpg)
///   nbpg = nbpages(D) * (1 - (1 - 1/nbpages(D))^alpha)
///   alpha = c(|C| * fan, totref, k_c * fan)
/// Applicable only when A's constructor is Reference.
double HashPartitionJoinCost(const ImplicitJoinInput& in, const DiskParameters& p);

/// Expected number of distinct pages of a class touched by k random object
/// fetches (the nbpg_c / nbpg term): nbpages * (1 - (1 - 1/nbpages)^k).
double ExpectedPages(double nbpages, double k);

/// Forward traversal cost of a whole path expression starting from k root
/// objects (the F_i of Algorithm 8.1): the root pages are fetched once, then each
/// reference hop chases the expected number of distinct references.
///   F = RNDCOST(nbpg_{C1}(k)) + sum_i RNDCOST(fref_i * fan_i)
Result<double> ForwardPathCost(const BoundPath& path, double k,
                               const SelectivityEstimator& est,
                               const DiskParameters& p);

}  // namespace mood
