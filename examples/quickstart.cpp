// Quickstart: open a database, define classes through MOODSQL DDL, create
// objects, and query them — the minimal end-to-end tour of the public API.

#include <cstdio>
#include <filesystem>

#include "core/database.h"

using namespace mood;

namespace {
void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto dir = std::filesystem::temp_directory_path() / "mood_quickstart";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // 1. Open (or create) a database. The data file and write-ahead log live
  //    under the given path prefix.
  Database db;
  Die(db.Open((dir / "demo").string()), "open");

  // 2. Define a schema with the MOODSQL data definition language.
  Die(db.ExecuteScript(R"SQL(
      CREATE CLASS Person
        TUPLE (
          name String(64),
          age Integer
        );
      CREATE CLASS Book
        TUPLE (
          title String(128),
          pages Integer,
          author REFERENCE (Person)
        )
        METHODS:
          thick () Boolean;
  )SQL").status(),
      "schema");
  // Method bodies are C++ source stored in the catalog; simple `return <expr>;`
  // bodies are interpreted by the kernel, or register a compiled body with
  // db.RegisterMethod(...).
  Die(db.catalog()->UpdateFunctionBody("Book", "thick", "{ return pages > 500; }"),
      "method body");

  // 3. Create objects with the `new` statement (Section 9.4's protocol).
  Die(db.Execute("NEW Person <'Asuman Dogac', 45> AS asuman").status(), "new person");
  Die(db.Execute("NEW Book <'MOOD Internals', 620>").status(), "new book");
  Die(db.Execute("NEW Book <'Short Stories', 120>").status(), "new book 2");
  // Wire the author reference through the object API.
  Oid author = db.catalog()->LookupName("asuman").value();
  db.objects()->ScanExtent("Book", false, {}, [&](Oid oid, const MoodValue&) {
    return db.objects()->SetAttribute(oid, "author", MoodValue::Reference(author));
  });

  // 4. Query with MOODSQL: path expressions chase references, methods dispatch
  //    through the Function Manager.
  auto result = db.Query(
      "SELECT b.title, b.pages, b.author.name, b.thick() "
      "FROM Book b WHERE b.pages > 50 ORDER BY b.pages DESC");
  Die(result.status(), "query");
  std::printf("%s\n", result.value().ToString().c_str());

  // 5. EXPLAIN shows the optimizer's dictionaries and the chosen plan.
  mood::ExplainOptions explain_opts;
  explain_opts.verbose = true;
  auto plan = db.Explain("SELECT b FROM Book b WHERE b.author.name = 'Asuman Dogac'",
                         explain_opts);
  Die(plan.status(), "explain");
  std::printf("%s\n", plan.value().Render().c_str());

  // 6. Transactions: the RAII handle aborts on destruction unless committed.
  auto txn = db.Begin();
  Die(txn.status(), "begin");
  Die(db.Execute("NEW Book <'Uncommitted', 10>").status(), "new in txn");
  Die(txn.value().Abort(), "abort");
  auto count = db.Query("SELECT b FROM Book b");
  std::printf("books after abort: %zu (still 2)\n", count.value().rows.size());

  Die(db.Close(), "close");
  std::filesystem::remove_all(dir);
  std::printf("quickstart finished.\n");
  return 0;
}
