#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "core/database.h"
#include "core/paper_example.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// Plan-only optimization through the consolidated Explain API.
Result<QueryOptimizer::Optimized> Optimize(Database& db, const std::string& sql) {
  MOOD_ASSIGN_OR_RETURN(ExplainResult res, db.Explain(sql, {}));
  return std::move(res.optimized);
}

// --- Algorithm 8.1 / Appendix lemma: pure ordering properties --------------------

TEST(OrderingLemmaTest, TwoExpressionBaseCase) {
  // F1 + s1 F2 < F2 + s2 F1 iff F1/(1-s1) < F2/(1-s2).
  std::vector<double> F = {100, 50};
  std::vector<double> s = {0.9, 0.1};
  // Ranks: 100/0.1 = 1000; 50/0.9 = 55.6 -> order {1, 0}.
  auto order = QueryOptimizer::OrderByRank(F, s);
  EXPECT_EQ(order, (std::vector<size_t>{1, 0}));
  double best = QueryOptimizer::OrderingObjective(F, s, order);
  double other = QueryOptimizer::OrderingObjective(F, s, {0, 1});
  EXPECT_LT(best, other);
}

TEST(OrderingLemmaTest, SortOrderMinimizesObjectiveExhaustively) {
  // The Appendix lemma: the F/(1-s) sort minimizes f over ALL permutations.
  Random rng(31337);
  for (int trial = 0; trial < 200; trial++) {
    size_t m = 2 + rng.Uniform(5);  // up to 6 path expressions
    std::vector<double> F(m), s(m);
    for (size_t i = 0; i < m; i++) {
      F[i] = 1.0 + rng.NextDouble() * 1000;
      s[i] = rng.NextDouble() * 0.999;
    }
    auto order = QueryOptimizer::OrderByRank(F, s);
    double best = QueryOptimizer::OrderingObjective(F, s, order);
    std::vector<size_t> perm(m);
    std::iota(perm.begin(), perm.end(), 0);
    do {
      double f = QueryOptimizer::OrderingObjective(F, s, perm);
      ASSERT_GE(f + 1e-9 * std::abs(f), best)
          << "sorted order not optimal at trial " << trial;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

TEST(OrderingLemmaTest, ObjectiveFormula) {
  // f = F1 + s1*F2 + s1*s2*F3 for identity permutation.
  std::vector<double> F = {10, 20, 30};
  std::vector<double> s = {0.5, 0.1, 0.7};
  double f = QueryOptimizer::OrderingObjective(F, s, {0, 1, 2});
  EXPECT_DOUBLE_EQ(f, 10 + 0.5 * 20 + 0.5 * 0.1 * 30);
}

// --- Optimizer behaviour on the paper's example database --------------------------

class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    paperdb::InstallPaperStatistics(db_.stats());
  }
  TempDir dir_;
  Database db_;
};

TEST_F(OptimizerFixture, Example81PathOrderingMatchesTable16) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized, Optimize(db_, paperdb::kExample81Query));
  ASSERT_EQ(optimized.terms.size(), 1u);
  const auto& paths = optimized.terms[0].paths;
  ASSERT_EQ(paths.size(), 2u);
  // P2 (company.name) is ordered first: smaller F/(1-s).
  EXPECT_EQ(paths[0].path.ToString(), "v.company.name");
  EXPECT_EQ(paths[1].path.ToString(), "v.drivetrain.engine.cylinders");
  // Table 16 numbers reproduce exactly.
  EXPECT_NEAR(paths[0].selectivity, 5.00e-5, 1e-12);
  EXPECT_NEAR(paths[1].selectivity, 6.25e-2, 1e-9);
  EXPECT_NEAR(paths[0].forward_traversal_cost, 520.825, 1e-6);
  EXPECT_NEAR(paths[1].forward_traversal_cost, 771.825, 1e-6);
  EXPECT_NEAR(paths[1].Rank(), 823.28, 1e-2);
}

TEST_F(OptimizerFixture, Example81PlanShapeMatchesPaper) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized, Optimize(db_, paperdb::kExample81Query));
  std::string plan = optimized.plan->ToString();
  // The first subplan (T1): hash-partition join of Vehicle with the selected
  // Company — JOIN(BIND(Vehicle, v), SELECT(BIND(Company, ...), name='BMW'),
  // HASH_PARTITION, v.company = c.self).
  EXPECT_NE(plan.find("BIND(Vehicle, v)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HASH_PARTITION, v.company ="), std::string::npos) << plan;
  EXPECT_NE(plan.find("= 'BMW'"), std::string::npos) << plan;
  // Then the P1 chain: forward traversals for v.drivetrain and d.engine.
  EXPECT_NE(plan.find("FORWARD_TRAVERSAL, v.drivetrain ="), std::string::npos) << plan;
  EXPECT_NE(plan.find("FORWARD_TRAVERSAL"), plan.rfind("FORWARD_TRAVERSAL")) << plan;
  EXPECT_NE(plan.find("cylinders = 2"), std::string::npos) << plan;
}

TEST_F(OptimizerFixture, Example82PlanShapeMatchesPaper) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized, Optimize(db_, paperdb::kExample82Query));
  std::string plan = optimized.plan->ToString();
  // T1 = JOIN(BIND(VehicleDriveTrain, d), SELECT(BIND(VehicleEngine, e),
  // cylinders=2), HASH_PARTITION, d.engine = e.self) — the drivetrain/engine pair
  // is joined first (greedy jc/(1-js)), by hash partitioning.
  size_t dt_join = plan.find("HASH_PARTITION, _t");
  ASSERT_NE(dt_join, std::string::npos) << plan;
  // The inner-most JOIN pairs VehicleDriveTrain with the engine selection.
  size_t bind_dt = plan.find("BIND(VehicleDriveTrain");
  size_t bind_v = plan.find("BIND(Vehicle,");
  ASSERT_NE(bind_dt, std::string::npos);
  ASSERT_NE(bind_v, std::string::npos);
  // Final plan: JOIN(BIND(Vehicle, v), T1, HASH_PARTITION, v.drivetrain = d.self).
  EXPECT_NE(plan.find("HASH_PARTITION, v.drivetrain ="), std::string::npos) << plan;
  // Both joins use HASH_PARTITION; no forward traversal at 20000 roots.
  EXPECT_EQ(plan.find("FORWARD_TRAVERSAL"), std::string::npos) << plan;
}

TEST_F(OptimizerFixture, ImmediateSelectionDictionary) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto optimized,
      Optimize(db_, "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 AND "
                       "e.size > 2000"));
  ASSERT_EQ(optimized.terms.size(), 1u);
  const auto& imm = optimized.terms[0].imm;
  ASSERT_EQ(imm.size(), 2u);
  // Both sequential (no index registered); selectivity of cylinders = 1/16.
  for (const auto& e : imm) {
    EXPECT_EQ(e.access_type, "sequential");
    EXPECT_GT(e.sequential_access_cost, 0);
  }
  // Residual predicates are ordered ascending by selectivity: cylinders=2
  // (0.0625) before size>2000 (no stats for size -> default 1/3).
  const auto& plan = optimized.terms[0].plan;
  ASSERT_EQ(plan->op, PlanOp::kFilter);
  ASSERT_EQ(plan->predicates.size(), 2u);
  EXPECT_NE(plan->predicates[0]->ToString().find("cylinders"), std::string::npos);
}

TEST_F(OptimizerFixture, DisjunctionBecomesUnionOfAndTerms) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto optimized,
      Optimize(db_, "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR "
                       "e.cylinders = 4"));
  EXPECT_EQ(optimized.terms.size(), 2u);
  EXPECT_EQ(optimized.plan->op, PlanOp::kUnion);
  EXPECT_EQ(optimized.plan->children.size(), 2u);
}

TEST_F(OptimizerFixture, ExplicitJoinPredicateClassified) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized, Optimize(db_, paperdb::kSection31Query));
  ASSERT_EQ(optimized.terms.size(), 1u);
  const auto& term = optimized.terms[0];
  // c.drivetrain.engine = v is a pointer-form join predicate.
  ASSERT_EQ(term.joins.size(), 1u);
  EXPECT_TRUE(term.joins[0].pointer_form);
  EXPECT_EQ(term.joins[0].ref_var, "c");
  EXPECT_EQ(term.joins[0].target_var, "v");
  // c.drivetrain.transmission = 'AUTOMATIC' is a path selection; v.cylinders > 4
  // is an immediate selection on v.
  EXPECT_EQ(term.paths.size(), 1u);
  ASSERT_EQ(term.imm.size(), 1u);
  EXPECT_EQ(term.imm[0].range_var, "v");
}

TEST_F(OptimizerFixture, NoWherePlanIsBareScan) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized, Optimize(db_, "SELECT v FROM Vehicle v"));
  EXPECT_EQ(optimized.plan->op, PlanOp::kBindClass);
}

TEST_F(OptimizerFixture, CrossProductWhenNoJoinPredicate) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto optimized,
      Optimize(db_, "SELECT v FROM Vehicle v, Company c"));
  EXPECT_EQ(optimized.plan->op, PlanOp::kNestedLoopJoin);
  EXPECT_EQ(optimized.plan->join_pred, nullptr);
}

TEST_F(OptimizerFixture, ExplainRendersDictionariesAndPlan) {
  ExplainOptions verbose;
  verbose.verbose = true;
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult res,
                            db_.Explain(paperdb::kExample81Query, verbose));
  std::string text = res.Render();
  EXPECT_NE(text.find("PathSelInfo"), std::string::npos);
  EXPECT_NE(text.find("F/(1-s)"), std::string::npos);
  EXPECT_NE(text.find("Plan:"), std::string::npos);
}

class IndexChoiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Item TUPLE (id Integer, grade Integer, "
                               "label String(64))")
                       .status());
    // Large enough extent that a two-level index probe beats the sequential
    // scan under the Section 8.1 inequality.
    for (int i = 0; i < 2500; i++) {
      MOOD_ASSERT_OK(db_.objects()
                         ->CreateObject("Item", MoodValue::Tuple(
                                                    {MoodValue::Integer(i),
                                                     MoodValue::Integer(i % 10),
                                                     MoodValue::String(
                                                         "label-with-some-padding-" +
                                                         std::to_string(i))}))
                         .status());
    }
    MOOD_ASSERT_OK(db_.Execute("CREATE INDEX item_id ON Item(id) USING BTREE").status());
    MOOD_ASSERT_OK(db_.CollectStatistics("Item"));
  }
  TempDir dir_;
  Database db_;
};

TEST_F(IndexChoiceFixture, EqualityUsesIndexWhenCheaper) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized,
                            Optimize(db_, "SELECT i FROM Item i WHERE i.id = 5"));
  const auto& imm = optimized.terms[0].imm;
  ASSERT_EQ(imm.size(), 1u);
  EXPECT_EQ(imm[0].access_type, "indexed");
  EXPECT_GE(imm[0].indexed_access_cost, 0);
  EXPECT_LT(imm[0].indexed_access_cost, imm[0].sequential_access_cost);
  EXPECT_EQ(optimized.plan->op, PlanOp::kIndexSelect);
}

TEST_F(IndexChoiceFixture, UnselectiveRangeFallsBackToScan) {
  // id > 0 selects ~everything: the Section 8.1 inequality rejects the index.
  MOOD_ASSERT_OK_AND_ASSIGN(auto optimized,
                            Optimize(db_, "SELECT i FROM Item i WHERE i.id >= 0"));
  const auto& imm = optimized.terms[0].imm;
  ASSERT_EQ(imm.size(), 1u);
  EXPECT_EQ(imm[0].access_type, "sequential");
  EXPECT_EQ(optimized.plan->op, PlanOp::kFilter);
  EXPECT_EQ(optimized.plan->child->op, PlanOp::kBindClass);
}

TEST_F(IndexChoiceFixture, SelectiveRangeUsesIndex) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto optimized, Optimize(db_, "SELECT i FROM Item i WHERE i.id < 3"));
  const auto& imm = optimized.terms[0].imm;
  ASSERT_EQ(imm.size(), 1u);
  EXPECT_EQ(imm[0].access_type, "indexed");
}

TEST_F(IndexChoiceFixture, UnindexedPredicateStaysResidual) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto optimized,
      Optimize(db_, "SELECT i FROM Item i WHERE i.id = 5 AND i.grade = 3"));
  // id=5 via index, grade=3 residual filter on top.
  ASSERT_EQ(optimized.plan->op, PlanOp::kFilter);
  EXPECT_EQ(optimized.plan->child->op, PlanOp::kIndexSelect);
  ASSERT_EQ(optimized.plan->predicates.size(), 1u);
  EXPECT_NE(optimized.plan->predicates[0]->ToString().find("grade"), std::string::npos);
}

}  // namespace
}  // namespace mood
