#include "moodview/schema_browser.h"

namespace mood {

Result<DagLayout> SchemaBrowser::BuildLayout() const {
  DagLayout layout;
  for (const MoodsType* t : catalog_->AllTypes()) {
    if (!t->is_class) continue;
    layout.AddNode(t->name);
    for (const auto& s : t->supers) layout.AddEdge(s, t->name);
  }
  MOOD_RETURN_IF_ERROR(layout.Compute());
  return layout;
}

Result<std::string> SchemaBrowser::RenderHierarchy() const {
  MOOD_ASSIGN_OR_RETURN(DagLayout layout, BuildLayout());
  std::string out = "=== MoodView Class Hierarchy Browser ===\n";
  out += layout.Render();
  out += "(edge crossings: " + std::to_string(layout.CountCrossings()) + ")\n";
  return out;
}

Result<std::string> SchemaBrowser::RenderClass(const std::string& class_name) const {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* t, catalog_->Lookup(class_name));
  std::string out = "=== MoodView Class Presentation ===\n";
  out += "Type Name : " + t->name + "\n";
  out += "Type Id   : " + std::to_string(t->id) + "\n";
  out += "Class Type: " + std::string(t->is_class ? "User Class" : "User Type") + "\n";
  out += "Superclasses:";
  for (const auto& s : t->supers) out += " " + s;
  out += "\nSubclasses:";
  MOOD_ASSIGN_OR_RETURN(auto subs, catalog_->Subclasses(class_name));
  for (const auto& s : subs) out += " " + s;
  out += "\nMethods:\n";
  MOOD_ASSIGN_OR_RETURN(auto fns, catalog_->AllFunctions(class_name));
  for (const auto& f : fns) {
    out += "  " + f.name + "(";
    for (size_t i = 0; i < f.params.size(); i++) {
      if (i > 0) out += ", ";
      out += f.params[i].name + " " + f.params[i].type->ToString();
    }
    out += ") " + f.return_type->ToString() + "\n";
  }
  out += "Attributes:\n";
  MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(class_name));
  for (const auto& a : attrs) {
    out += "  " + a.name + " " + a.type->ToString() + "\n";
  }
  return out;
}

Result<std::string> SchemaBrowser::RenderAttributeTable(
    const std::string& class_name) const {
  MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(class_name));
  std::string out = "=== MoodView Type Designer: " + class_name + " ===\n";
  size_t width = 10;
  for (const auto& a : attrs) width = std::max(width, a.name.size());
  out += "FIELD NAME";
  out.append(width > 10 ? width - 10 : 0, ' ');
  out += "  DATA TYPE\n";
  for (const auto& a : attrs) {
    out += a.name;
    out.append(width - a.name.size(), ' ');
    out += "  " + a.type->ToString() + "\n";
  }
  return out;
}

Result<std::string> SchemaBrowser::RenderMethod(const std::string& class_name,
                                                const std::string& method) const {
  MOOD_ASSIGN_OR_RETURN(auto resolved, catalog_->ResolveFunction(class_name, method));
  const auto& [defining, fn] = resolved;
  std::string out = "=== MoodView Method Presentation ===\n";
  out += "Method     : " + fn->name + "\n";
  out += "Return Type: " + fn->return_type->ToString() + "\n";
  out += "Parameters :\n";
  for (const auto& p : fn->params) {
    out += "  " + p.type->ToString() + " " + p.name + "\n";
  }
  out += "Defined By : " + defining + "\n";
  out += "Applicable Classes:";
  MOOD_ASSIGN_OR_RETURN(auto subtree, catalog_->SubtreeClasses(defining));
  for (const auto& c : subtree) out += " " + c;
  out += "\n";
  if (!fn->body_source.empty()) {
    out += "Body:\n" + fn->body_source + "\n";
  }
  return out;
}

Result<std::string> SchemaBrowser::GenerateDdl(const std::string& class_name) const {
  MOOD_ASSIGN_OR_RETURN(const MoodsType* t, catalog_->Lookup(class_name));
  std::string out = t->is_class ? "CREATE CLASS " : "CREATE TYPE ";
  out += t->name;
  if (!t->supers.empty()) {
    out += "\n  INHERITS FROM ";
    for (size_t i = 0; i < t->supers.size(); i++) {
      if (i > 0) out += ", ";
      out += t->supers[i];
    }
  }
  if (!t->own_attributes.empty()) {
    out += "\n  TUPLE (\n";
    for (size_t i = 0; i < t->own_attributes.size(); i++) {
      out += "    " + t->own_attributes[i].name + " " +
             t->own_attributes[i].type->ToString();
      if (i + 1 < t->own_attributes.size()) out += ",";
      out += "\n";
    }
    out += "  )";
  }
  if (!t->functions.empty()) {
    out += "\n  METHODS:\n";
    for (size_t i = 0; i < t->functions.size(); i++) {
      const auto& f = t->functions[i];
      out += "    " + f.name + " (";
      for (size_t p = 0; p < f.params.size(); p++) {
        if (p > 0) out += ", ";
        out += f.params[p].name + " " + f.params[p].type->ToString();
      }
      out += ") " + f.return_type->ToString();
      if (i + 1 < t->functions.size()) out += ",";
      out += "\n";
    }
  }
  out += "\n";
  return out;
}

}  // namespace mood
