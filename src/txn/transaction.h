#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/wal_interface.h"
#include "txn/lock_manager.h"
#include "txn/log_manager.h"

namespace mood {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

class TransactionManager;
class VersionStore;

/// A transaction context. Implements PageWriteLogger so storage structures can
/// report page mutations: each mutation is logged with before/after images, and
/// the before images double as the in-memory undo chain for Abort.
class Transaction : public PageWriteLogger {
 public:
  uint64_t id() const { return id_; }
  TxnState state() const { return state_.load(std::memory_order_acquire); }

  Result<Lsn> LogPageWrite(PageId page, Slice before, Slice after) override;

  /// VersionStore batch collecting this transaction's pre-image captures;
  /// stamped with one CSN at commit (0 when the manager has no version store).
  uint64_t version_batch() const override { return version_batch_; }

  /// Acquires a lock through the owning manager's lock manager (strict 2PL: held
  /// until commit/abort).
  Status Lock(LockKey key, LockMode mode);

 private:
  friend class TransactionManager;

  struct UndoEntry {
    PageId page;
    Lsn lsn;
    std::string before;
  };

  Transaction(uint64_t id, TransactionManager* mgr) : id_(id), mgr_(mgr) {}

  uint64_t id_;
  TransactionManager* mgr_;
  /// Atomic: the owning session's thread writes at commit/abort while other
  /// sessions' threads observe it through HasActive()/PruneCompleted().
  std::atomic<TxnState> state_{TxnState::kActive};
  uint64_t version_batch_ = 0;
  std::vector<UndoEntry> undo_;
};

/// Creates, commits and aborts transactions; wires the WAL rule into the buffer
/// pool and applies in-memory undo on abort.
class TransactionManager {
 public:
  TransactionManager(BufferPool* pool, LogManager* log, LockManager* locks);
  /// Uninstalls the WAL-rule hook (the buffer pool may outlive this manager).
  ~TransactionManager();

  /// Wires snapshot versioning in (Database::Open). Each transaction then
  /// carries a VersionStore batch: stamped with a CSN after a durable commit,
  /// dropped on abort; in-buffer rollback runs under the store's exclusive
  /// CommitGate so snapshot readers never see half-restored pages.
  void SetVersionStore(VersionStore* versions) { versions_ = versions; }

  /// Begins a transaction; the returned object stays owned by the manager until
  /// Commit/Abort.
  Result<Transaction*> Begin();

  /// Commit: append + flush the commit record, release locks. If making the
  /// commit record durable fails, the transaction is rolled back in-buffer and
  /// its locks are released before the error is returned — a failed Commit
  /// never leaves the transaction active or its locks orphaned.
  Status Commit(Transaction* txn);

  /// Abort: restore before-images in reverse order, append abort record, release
  /// locks. Locks are released even when logging the abort fails (recovery
  /// treats the transaction as a loser and undoes it again from the log).
  Status Abort(Transaction* txn);

  /// Frees committed/aborted transaction objects. Completed transactions stay
  /// valid (their pointers may still be observed) until this is called.
  void PruneCompleted();

  /// True while any transaction is still active (Checkpoint's log-truncation
  /// guard: truncating under an active transaction would lose its undo).
  bool HasActive() const;

  LogManager* log() { return log_; }
  LockManager* locks() { return locks_; }
  BufferPool* pool() { return pool_; }

 private:
  friend class Transaction;

  /// Restores before-images newest-first, marks the transaction aborted and
  /// releases its locks. Best-effort: keeps going past page errors and returns
  /// the first one (locks are always released).
  Status RollbackInBuffer(Transaction* txn);

  BufferPool* pool_;
  LogManager* log_;
  LockManager* locks_;
  VersionStore* versions_ = nullptr;
  uint64_t next_txn_id_ = 1;
  std::vector<std::unique_ptr<Transaction>> live_;
  mutable std::mutex mu_;
};

/// Crash recovery: replays the write-ahead log against the database file.
/// Redo applies committed page images where the page LSN is older; undo restores
/// before-images of loser transactions in reverse LSN order. Both passes are
/// idempotent, so an interrupted recovery can simply run again.
class RecoveryManager {
 public:
  RecoveryManager(BufferPool* pool, LogManager* log) : pool_(pool), log_(log) {}

  struct Report {
    size_t committed_txns = 0;
    size_t loser_txns = 0;
    size_t redo_applied = 0;
    size_t undo_applied = 0;
    /// Pages whose on-disk frame failed checksum verification and were rebuilt
    /// from logged full images (torn writes healed by redo).
    size_t corrupt_pages_rebuilt = 0;
  };

  Result<Report> Recover();

 private:
  BufferPool* pool_;
  LogManager* log_;
};

}  // namespace mood
