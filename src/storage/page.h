#pragma once

#include <cstdint>
#include <cstring>

namespace mood {

/// Fixed page size for all storage structures. 4 KiB matches the block-size
/// granularity assumed by the paper's cost model (Table 10 parameter B).
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

/// An in-memory frame holding one disk page. The first 8 bytes of `data` are
/// reserved by users that need a page LSN (see SlottedPage); the Page struct itself
/// only tracks buffer-management state.
class Page {
 public:
  Page() { Reset(kInvalidPageId); }

  void Reset(PageId id) {
    page_id_ = id;
    pin_count_ = 0;
    dirty_ = false;
    std::memset(data_, 0, kPageSize);
  }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  void set_page_id(PageId id) { page_id_ = id; }

  int pin_count() const { return pin_count_; }
  void Pin() { pin_count_++; }
  void Unpin() { pin_count_--; }

  bool dirty() const { return dirty_; }
  void set_dirty(bool d) { dirty_ = d; }

 private:
  char data_[kPageSize];
  PageId page_id_;
  int pin_count_;
  bool dirty_;
};

}  // namespace mood
