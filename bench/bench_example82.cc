// Reproduces Example 8.2 (Algorithm 8.2, implicit join ordering):
//   Table 17's role — the initial per-pair cost and selectivity estimations for
//   all four join strategies — and the paper's two-step plan:
//     T1    = JOIN(BIND(VehicleDriveTrain,d), SELECT(BIND(VehicleEngine,e),
//             cylinders=2), HASH_PARTITION, d.engine = e.self)
//     final = JOIN(BIND(Vehicle,v), T1, HASH_PARTITION, v.drivetrain = d.self)

#include "bench/bench_util.h"
#include "cost/join_costs.h"

using namespace mood;
using namespace mood::bench;

namespace {

struct PairCosts {
  double ftc, btc, hhc;
};

PairCosts CostPair(const Database& db, StatisticsManager* stats,
                   const std::string& c_cls, const std::string& attr,
                   const std::string& d_cls, double k_c, double k_d, bool c_acc,
                   bool d_acc, const DiskParameters& disk) {
  ImplicitJoinInput in;
  ClassStats cs = CheckV(stats->Class(c_cls), "cs");
  ClassStats ds = CheckV(stats->Class(d_cls), "ds");
  ReferenceStats rs = CheckV(stats->Reference(c_cls, attr), "rs");
  in.k_c = k_c;
  in.k_d = k_d;
  in.card_c = static_cast<double>(cs.cardinality);
  in.card_d = static_cast<double>(ds.cardinality);
  in.nbpages_c = cs.nbpages;
  in.nbpages_d = ds.nbpages;
  in.fan = rs.fan;
  in.totref = static_cast<double>(rs.totref);
  in.c_accessed_previously = c_acc;
  in.d_accessed_previously = d_acc;
  (void)db;
  return PairCosts{ForwardTraversalCost(in, disk), BackwardTraversalCost(in, disk),
                   HashPartitionJoinCost(in, disk)};
}

}  // namespace

int main() {
  BenchDb scratch("example82");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  paperdb::InstallPaperStatistics(db.stats());
  DiskParameters disk = PaperCalibratedDiskParameters();

  std::printf("Query (Example 8.2):\n  %s\n", paperdb::kExample82Query);

  Banner("Table 17 (reconstructed): initial jc / js estimations per adjacent pair");
  {
    // Initial candidate pairs of the path v.drivetrain.engine with the terminal
    // selection cylinders=2 applied to VehicleEngine (k = 10000/16 = 625).
    Table t({"pair <C_i, C_i+1>", "k_c", "k_d", "ftc", "btc", "hhc", "min jc",
             "js", "jc/(1-js)"});
    struct Row {
      const char* label;
      const char* c_cls;
      const char* attr;
      const char* d_cls;
      double k_c, k_d;
      bool c_acc, d_acc;
    };
    Row rows[] = {
        {"<Vehicle, DriveTrain>", "Vehicle", "drivetrain", "VehicleDriveTrain", 20000,
         10000, false, false},
        {"<DriveTrain, Engine(sel)>", "VehicleDriveTrain", "engine", "VehicleEngine",
         10000, 625, false, true},
    };
    for (const Row& r : rows) {
      PairCosts c = CostPair(db, db.stats(), r.c_cls, r.attr, r.d_cls, r.k_c, r.k_d,
                             r.c_acc, r.d_acc, disk);
      double jc = std::min({c.ftc, c.btc, c.hhc});
      ClassStats ds = CheckV(db.stats()->Class(r.d_cls), "d");
      ReferenceStats rs = CheckV(db.stats()->Reference(r.c_cls, r.attr), "r");
      double js = std::min(0.99, rs.fan * r.k_d / static_cast<double>(ds.cardinality));
      t.AddRow({r.label, Fmt(r.k_c, 0), Fmt(r.k_d, 0), Fmt(c.ftc, 1), Fmt(c.btc, 1),
                Fmt(c.hhc, 1), Fmt(jc, 1), Fmt(js, 4), Fmt(jc / (1 - js), 1)});
    }
    t.Print();
    std::printf(
        "greedy pick: the <DriveTrain, Engine(sel)> pair has the lower jc/(1-js)\n"
        "(the Vehicle pair's js ~ 1 makes it useless as a filter), matching the\n"
        "paper's T1.\n");
  }

  auto optimized = CheckV(db.Explain(paperdb::kExample82Query, {}), "optimize").optimized;
  Banner("Access plan (paper: both joins HASH_PARTITION, engine selection first)");
  std::printf("%s\n", optimized.plan->Explain().c_str());
  std::printf("compact: %s\n", optimized.plan->ToString().c_str());

  Checks checks;
  Banner("Paper conformance checks");
  std::string plan = optimized.plan->ToString();
  checks.Expect(plan.find("SELECT(BIND(VehicleEngine") != std::string::npos,
                "engine selection (cylinders=2) pushed into the leaf");
  checks.Expect(plan.find("HASH_PARTITION, v.drivetrain =") != std::string::npos,
                "final join v.drivetrain = d.self uses HASH_PARTITION");
  size_t first_hash = plan.find("HASH_PARTITION");
  size_t last_hash = plan.rfind("HASH_PARTITION");
  checks.Expect(first_hash != std::string::npos && first_hash != last_hash,
                "both implicit joins use HASH_PARTITION");
  checks.Expect(plan.find("FORWARD_TRAVERSAL") == std::string::npos,
                "no forward traversal at 20000 unselected roots");
  // The inner join (T1) must appear inside the left or right child of the final
  // join, pairing VehicleDriveTrain with the engine selection.
  size_t t1 = plan.find("JOIN(BIND(VehicleDriveTrain");
  checks.Expect(t1 != std::string::npos,
                "T1 = JOIN(BIND(VehicleDriveTrain, ...), SELECT(...engine...))");

  // Measured: run the same query on real data and verify result correctness.
  Banner("Measured execution (scale = 300)");
  {
    BenchDb scratch2("example82_measured");
    Database mdb;
    Check(mdb.Open(scratch2.Path("mood")), "open measured");
    Check(paperdb::CreatePaperSchema(&mdb), "schema measured");
    Check(paperdb::PopulatePaperData(&mdb, 300).status(), "populate");
    Check(mdb.CollectAllStatistics(), "collect");
    auto qr = CheckV(mdb.Query(paperdb::kExample82Query), "query");
    // Brute-force reference count.
    size_t expected = 0;
    Check(mdb.objects()->ScanExtent("Vehicle", false, {},
                                    [&](Oid oid, const MoodValue&) {
                                      return mdb.objects()->TraversePath(
                                          oid, {"drivetrain", "engine", "cylinders"},
                                          [&](const MoodValue& v) {
                                            if (v.AsInteger() == 2) expected++;
                                            return Status::OK();
                                          });
                                    }),
          "scan");
    std::printf("  optimizer plan rows = %zu, brute force = %zu\n", qr.rows.size(),
                expected);
    checks.Expect(qr.rows.size() == expected, "optimized plan returns exact result");
  }
  return checks.ExitCode();
}
