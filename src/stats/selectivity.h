#pragma once

#include "common/status.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "stats/statistics.h"

namespace mood {

/// Where a selectivity figure came from — surfaced by EXPLAIN VERBOSE as
/// `[sel: ...]` so mis-estimates are diagnosable at a glance.
enum class SelSource {
  kDefault,    ///< paper formulas (1/dist, (max-c)/(max-min)) or 1/3 fallback
  kHistogram,  ///< equi-depth histogram from a Collect() pass
  kFeedback,   ///< measured cardinality written back from a profiled run
};

const char* SelSourceName(SelSource s);

/// Implements the selectivity formulas of Section 4.1 under the uniformity
/// assumption, upgraded to equi-depth histograms when Collect() built one.
class SelectivityEstimator {
 public:
  explicit SelectivityEstimator(const StatisticsManager* stats) : stats_(stats) {}

  /// f_s for an atomic predicate "s.A theta c":
  ///   =        -> 1 / dist(A,C)
  ///   >, >=    -> (max - c) / (max - min)
  ///   <, <=    -> (c - min) / (max - min)
  ///   <>       -> 1 - 1/dist
  /// BETWEEN arrives as >= AND <= after parsing. Non-numeric attributes fall back
  /// to 1/dist for equality and 1/3 for ranges (the classic default). When the
  /// attribute carries a histogram and the constant is numeric, the histogram's
  /// bucket fractions replace the flat formulas (`source` reports which path
  /// ran; pass nullptr when not interested).
  Result<double> AtomicSelectivity(const std::string& cls, const std::string& attr,
                                   BinaryOp op, const MoodValue& constant,
                                   SelSource* source = nullptr) const;

  /// fref(p.A1...Ai, k): expected number of distinct objects of the class at the
  /// end of the reference prefix when starting from k objects of the root class.
  ///   fref(0) = k;  fref(i) = c(totlinks_i, totref_i, fref(i-1) * fan_i)
  /// `hops` limits the prefix (SIZE_MAX = all reference hops of the path).
  Result<double> Fref(const BoundPath& path, double k, size_t hops = SIZE_MAX) const;

  /// Selectivity of a full path-expression predicate "p.A1...Am theta c"
  /// (Section 4.1):
  ///   k_m  = |C_m| * f_s(A_m theta c)
  ///   f_s  = o(totref_{m-1}, fref(prefix, 1), max(1, k_m * hitprb_{m-1}))
  /// The max(1, .) clamp reproduces the paper's Table 16 value for P2 (see
  /// DESIGN.md's reverse-engineering note).
  Result<double> PathSelectivity(const BoundPath& path, BinaryOp op,
                                 const MoodValue& constant,
                                 SelSource* source = nullptr) const;

  /// Expected number of C_m objects selected by the terminal predicate: k_m.
  Result<double> TerminalK(const BoundPath& path, BinaryOp op,
                           const MoodValue& constant,
                           SelSource* source = nullptr) const;

  const StatisticsManager* stats() const { return stats_; }

 private:
  /// Reference-hop parameters for hop i (0-based): A_{i+1} from classes[i] to
  /// classes[i+1].
  struct Hop {
    double fan;
    double totref;
    double totlinks;
    double hitprb;
  };
  Result<Hop> HopParams(const BoundPath& path, size_t i) const;

  const StatisticsManager* stats_;
};

}  // namespace mood
