#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "catalog/catalog.h"
#include "sql/ast.h"

namespace mood {

/// Physical plan operators. The shapes follow the paper's access plans
/// (Examples 8.1 / 8.2): BIND leaves, SELECT filters, JOINs annotated with one of
/// the four implicit-join strategies, combined by UNION across AND-terms
/// (Figure 7.2's operator layering is enforced by construction).
enum class PlanOp : uint8_t {
  kBindClass,     ///< BIND(Class, var): extent scan leaf
  kIndexSelect,   ///< IndSel leaf: index probe producing the var's candidates
  kFilter,        ///< SELECT(child, p1 AND p2 ...): ordered residual predicates
  kPointerJoin,   ///< implicit join via ref chasing; method distinguishes strategy
  kNestedLoopJoin,///< general theta join
  kUnion,         ///< OR of AND-term subplans
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// One index probe: attribute index + comparison + constant. A kIndexSelect node
/// intersects the identifier sets of all its probes (Section 8.1 may choose more
/// than one index for an AND-term).
struct IndexProbe {
  IndexDesc index;
  BinaryOp cmp = BinaryOp::kEq;
  MoodValue constant;
  /// >= 0: probe key is the `?` parameter at this position, bound at execution
  /// (`constant` is then a placeholder Null).
  int param = -1;
};

struct PlanNode {
  PlanOp op = PlanOp::kBindClass;

  // kBindClass / kIndexSelect.
  FromEntry from;
  std::vector<IndexProbe> probes;  // kIndexSelect

  // kFilter.
  PlanPtr child;
  std::vector<ExprPtr> predicates;  // applied in order (selectivity-ascending)

  // Joins.
  PlanPtr left, right;
  JoinMethod method = JoinMethod::kForwardTraversal;
  std::string ref_var;                 ///< var on the referencing side
  std::vector<std::string> ref_path;   ///< attribute chain chased from ref_var
  std::string target_var;              ///< var bound on the referenced side
  ExprPtr join_pred;                   ///< nested-loop predicate

  // kUnion.
  std::vector<PlanPtr> children;

  // Optimizer estimates (ms / rows).
  double est_cost = 0;
  double est_rows = 0;

  /// Free-form annotation rendered by Explain (e.g. EXPLAIN VERBOSE's
  /// "exprs: compiled"). Deliberately not part of Describe(): profile labels
  /// must stay identical with and without annotations.
  std::string note;

  // Feedback-loop stamping (AbsorbProfile pairs these with profile nodes by
  // Describe() label; none of them is rendered, so plans print identically
  // with feedback on or off).
  std::string feedback_sig;       ///< signature this node's actuals feed
  double feedback_base_rows = 0;  ///< divisor for observed selectivity (0: rows_in)
  uint32_t feedback_pages = 0;    ///< extent pages (BIND leaves, calibration)
  uint16_t feedback_file = 0;     ///< extent file of the scanned class

  /// Range variables bound by this subtree.
  std::vector<std::string> BoundVars() const;

  /// Paper-style rendering, e.g.
  ///   JOIN(BIND(Vehicle, v), SELECT(BIND(Company, c), (c.name = 'BMW')),
  ///        HASH_PARTITION, v.company = c.self)
  std::string ToString() const;
  /// One-line label for this node alone (no estimates, no children) — the label
  /// EXPLAIN lines and QueryProfile nodes share, so plan and profile renderings
  /// pair up line for line.
  std::string Describe() const;
  /// Indented multi-line EXPLAIN rendering with estimates.
  std::string Explain(int indent = 0) const;

  static PlanPtr Bind(FromEntry from);
  static PlanPtr IndexSel(FromEntry from, std::vector<IndexProbe> probes);
  static PlanPtr Filter(PlanPtr child, std::vector<ExprPtr> preds);
  static PlanPtr PointerJoin(PlanPtr left, PlanPtr right, JoinMethod method,
                             std::string ref_var, std::vector<std::string> ref_path,
                             std::string target_var);
  static PlanPtr NestedLoop(PlanPtr left, PlanPtr right, ExprPtr pred);
  static PlanPtr Union(std::vector<PlanPtr> children);
};

}  // namespace mood
