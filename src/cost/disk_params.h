#pragma once

#include <cstdint>

namespace mood {

/// Physical disk parameters (paper Table 10, values from [Sal 88]-era disks).
/// All times in milliseconds. The paper leaves the concrete values unspecified;
/// these defaults are the classic Salzberg textbook numbers and every cost
/// formula takes the struct, so experiments can sweep them.
struct DiskParameters {
  double block_size = 4096;  ///< B
  double btt = 0.84;         ///< block transfer time
  double ebt = 1.0;          ///< effective block transfer time (sequential)
  double r = 8.3;            ///< average rotational latency
  double s = 16.0;           ///< average seek time
  /// CPU cost per predicate evaluation / comparison (used by backward traversal).
  double cpu_cost = 0.001;
  /// ESM stores files as B+-trees, so "the sequential access cost of a file is
  /// equal to its random access cost" (Section 5). When set, SEQCOST == RNDCOST.
  bool esm_btree_files = false;
};

/// Disk constants calibrated so the worked example of Section 8 reproduces the
/// paper's numbers *exactly*. The paper never states its Table 10 values, but
/// Table 16's traversal costs pin them down: with F = (s + r) +
/// RNDCOST(pages(k0)) + sum RNDCOST(fref_i * fan_i) and k0 = 10 root objects,
///   F(P2) = (s+r) + 20 * (s+r+btt) = 520.825
///   F(P1) = (s+r) + 30 * (s+r+btt) = 771.825
/// give s + r = 18.825 ms and s + r + btt = 25.1 ms. The cpu_cost of 5 ms per
/// interpreted comparison makes the backward-traversal estimates lose to
/// hash-partition exactly where Examples 8.1/8.2 pick HASH_PARTITION (a full
/// OperandDataType dispatch per comparison on 1994 hardware). bench_example81/82
/// run under this profile; bench_join_strategies sweeps both profiles.
inline DiskParameters PaperCalibratedDiskParameters() {
  DiskParameters p;
  p.s = 10.525;
  p.r = 8.3;
  p.btt = 6.275;
  p.ebt = 6.275;
  p.cpu_cost = 5.0;
  return p;
}

}  // namespace mood
