#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mood {

namespace {
Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for '" + path + "': " + std::strerror(errno));
}
}  // namespace

DiskManager::~DiskManager() {
  if (fd_ >= 0) Close();
}

Status DiskManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::InvalidArgument("DiskManager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path);
  num_pages_ = static_cast<uint32_t>(st.st_size / kPageSize);
  return Status::OK();
}

Status DiskManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  PageId id = num_pages_;
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  ssize_t n = ::pwrite(fd_, zeros, kPageSize,
                       static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) return Errno("pwrite", path_);
  num_pages_++;
  return id;
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  if (page_id >= num_pages_) {
    return Status::InvalidArgument("ReadPage: page " + std::to_string(page_id) +
                                   " out of range (" + std::to_string(num_pages_) + ")");
  }
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page_id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) return Errno("pread", path_);
  stats_.reads++;
  if (last_read_page_ != kInvalidPageId && page_id == last_read_page_ + 1) {
    stats_.sequential_reads++;
  } else {
    stats_.random_reads++;
  }
  last_read_page_ = page_id;
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  if (page_id >= num_pages_) {
    return Status::InvalidArgument("WritePage: page out of range");
  }
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(page_id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) return Errno("pwrite", path_);
  stats_.writes++;
  return Status::OK();
}

Status DiskManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

}  // namespace mood
