#pragma once

#include <map>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "exec/expr_compile.h"
#include "objects/object_manager.h"
#include "optimizer/optimizer.h"
#include "sql/evaluator.h"

namespace mood {

struct QueryProfile;
class MetricCounter;

/// Intermediate result: rows of range-variable bindings.
struct RowSet {
  std::vector<std::string> vars;
  std::vector<std::vector<Oid>> rows;

  int VarIndex(const std::string& var) const {
    for (size_t i = 0; i < vars.size(); i++) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Final query result: named columns of values.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<MoodValue>> rows;

  /// Aligned-table rendering (at most `limit` rows; 0 = all).
  std::string ToString(size_t limit = 0) const;
};

/// Per-call execution options. Every field defaults to "inherit the executor
/// default", so `ExecOptions{}` reproduces the configured behavior exactly;
/// callers override individual knobs per query without mutating shared state
/// (the Executor itself stays const and therefore safe for concurrent callers).
struct ExecOptions {
  /// Sentinel: use the executor's configured deref-cache capacity.
  static constexpr size_t kInheritCache = static_cast<size_t>(-1);

  /// Worker threads for this call; 0 = the executor default (set_threads).
  size_t threads = 0;
  /// Per-query Deref cache capacity in entries; kInheritCache = the executor
  /// default, 0 disables the cache for this call.
  size_t deref_cache_entries = kInheritCache;
  /// When non-null, per-operator actuals (rows in/out, morsels, wall time,
  /// buffer-pool deltas) are recorded as children of this node. Null (the
  /// default) skips every profiling hook behind a single inlined pointer test,
  /// so disabled profiling costs nothing measurable.
  QueryProfile* profile = nullptr;
  /// Lower WHERE/HAVING/SELECT-list expressions into bytecode programs once
  /// per operator instead of interpreting the Expr tree per row. Dynamic
  /// constructs keep the interpreted path regardless (see exec/expr_compile.h).
  bool compile_expressions = true;
};

/// Executes physical plans produced by the optimizer, then applies the clause
/// pipeline of Figure 7.1: FROM -> WHERE -> GROUP BY -> HAVING -> SELECT
/// (projection) -> ORDER BY.
///
/// With threads > 1 the operators use morsel-driven intra-query parallelism:
/// extent scans partition into extent pages, filters and join probe sides into
/// fixed-size row morsels, and index selections into per-probe tasks. Partial
/// results are merged in morsel order, so the produced RowSet is byte-identical
/// to serial execution (the determinism property parallel_exec_test asserts).
/// Only read paths run concurrently; the kernel structures underneath
/// (BufferPool, HeapFile/BpTree reads, FunctionManager invocation) are
/// concurrent-read safe, while Catalog/ObjectManager schema state must not be
/// mutated during a query (see DESIGN.md "Parallel query execution").
class Executor {
 public:
  Executor(ObjectManager* objects, Evaluator* evaluator, MoodAlgebra* algebra)
      : objects_(objects), evaluator_(evaluator), algebra_(algebra) {}

  /// Default worker-thread count for calls that do not pass ExecOptions;
  /// 1 reproduces the serial executor exactly, including its error behavior.
  /// Deprecated as a per-query knob: pass ExecOptions::threads instead of
  /// mutating this shared default mid-stream.
  void set_threads(size_t threads) { threads_ = threads == 0 ? 1 : threads; }
  size_t threads() const { return threads_; }

  /// Default capacity of the per-query Deref cache (entries); 0 disables it.
  /// One cache instance lives for the duration of each ExecutePlan /
  /// ExecuteSelect call and is shared by all of that query's morsel workers.
  /// Deprecated as a per-query knob: pass ExecOptions::deref_cache_entries.
  void set_deref_cache_capacity(size_t entries) { deref_cache_capacity_ = entries; }
  size_t deref_cache_capacity() const { return deref_cache_capacity_; }

  Result<RowSet> ExecutePlan(const PlanPtr& plan) const;
  Result<RowSet> ExecutePlan(const PlanPtr& plan, const ExecOptions& options) const;

  Result<QueryResult> ExecuteSelect(const QueryOptimizer::Optimized& optimized) const;
  Result<QueryResult> ExecuteSelect(const QueryOptimizer::Optimized& optimized,
                                    const ExecOptions& options) const;

  /// Evaluates the clause pipeline over an already-computed row set (used by the
  /// naive executor in bench_query_e2e).
  Result<QueryResult> FinishSelect(const SelectStmt& stmt, RowSet rows) const;

  /// Wires the exec.expr.* counters (registered by Database::Open): programs
  /// compiled, expressions left to / rows re-routed through the interpreter,
  /// and constant subtrees folded.
  void SetExprMetrics(MetricCounter* compiled, MetricCounter* fallback,
                      MetricCounter* folded) {
    expr_compiled_ = compiled;
    expr_fallback_ = fallback;
    expr_folded_ = folded;
  }

  /// EXPLAIN VERBOSE support: dry-run compiles each Filter/NestedLoop
  /// expression and stamps the node's `note` with "exprs: compiled" /
  /// "exprs: interpreted" (or "exprs: mixed").
  void AnnotateCompilation(PlanNode* plan,
                           const std::map<std::string, FromEntry>& range_vars) const;

 private:
  /// Per-call state threaded through the operator tree: resolved options plus
  /// the profile node operator children attach under (null = profiling off).
  struct Ctx {
    size_t threads = 1;
    DerefCache* cache = nullptr;
    QueryProfile* profile = nullptr;
    BufferPool* pool = nullptr;  ///< sampled for per-operator deltas when profiling
    bool compile = true;         ///< lower expressions to bytecode programs
    /// Range-variable declarations for plan-time slot/class binding (owned by
    /// the caller; null disables compilation for lack of static classes).
    const std::map<std::string, FromEntry>* range_vars = nullptr;
  };

  Result<RowSet> Exec(const PlanPtr& plan, Ctx& ctx) const;
  Result<RowSet> Dispatch(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecBind(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecIndexSelect(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecFilter(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecPointerJoin(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecNestedLoop(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecUnion(const PlanNode& node, Ctx& ctx) const;

  Result<QueryResult> Finish(const SelectStmt& stmt, RowSet rows, Ctx& ctx) const;

  /// Resolves ExecOptions inherit-sentinels (threads, profiling pool handle)
  /// against the executor defaults. The deref-cache capacity resolves at the
  /// call sites because the cache itself lives on their stack.
  Ctx MakeCtx(const ExecOptions& options) const;

  Evaluator::Env EnvOf(const RowSet& rs, const std::vector<Oid>& row,
                       DerefCache* cache) const;

  /// Slot/class bindings for compiling expressions over rows shaped `vars`.
  /// Uses the ACTUAL RowSet var order for slot indices (PlanNode::BoundVars is
  /// sorted and may disagree with runtime row layout).
  ExprCompileEnv CompileEnvOf(const std::vector<std::string>& vars,
                              const std::map<std::string, FromEntry>* range_vars) const;

  /// Compiles one expression against `vars`, bumping the exec.expr.* counters.
  /// Null when compilation is off, the expression is null, or it uses a
  /// dynamic construct (callers then evaluate through the interpreter).
  ExprProgramPtr CompileExpr(const ExprPtr& expr, const std::vector<std::string>& vars,
                             const Ctx& ctx) const;

  void CountRuntimeFallback() const;

  /// Chases a reference path from an object, invoking `fn` for every reached
  /// object identifier (fan-out through set/list-valued reference attributes).
  Status ChaseRefs(Oid from, const std::vector<std::string>& path, DerefCache* cache,
                   const std::function<Status(Oid)>& fn) const;

  ObjectManager* objects_;
  Evaluator* evaluator_;
  MoodAlgebra* algebra_;
  size_t threads_ = 1;
  size_t deref_cache_capacity_ = 4096;
  MetricCounter* expr_compiled_ = nullptr;
  MetricCounter* expr_fallback_ = nullptr;
  MetricCounter* expr_folded_ = nullptr;
};

}  // namespace mood
