#include "stats/selectivity.h"

#include <algorithm>
#include <cmath>

#include "stats/approx.h"

namespace mood {

const char* SelSourceName(SelSource s) {
  switch (s) {
    case SelSource::kHistogram:
      return "histogram";
    case SelSource::kFeedback:
      return "feedback";
    default:
      return "default";
  }
}

Result<double> SelectivityEstimator::AtomicSelectivity(const std::string& cls,
                                                       const std::string& attr,
                                                       BinaryOp op,
                                                       const MoodValue& constant,
                                                       SelSource* source) const {
  MOOD_ASSIGN_OR_RETURN(AttributeStats s, stats_->Attribute(cls, attr));
  auto clamp = [](double f) { return std::clamp(f, 0.0, 1.0); };
  if (source) *source = SelSource::kDefault;

  // Histogram path: bucket fractions instead of uniformity, when Collect()
  // built one and the constant is numeric.
  if (s.histogram && !s.histogram->empty()) {
    auto c = constant.ToDouble();
    if (c.ok()) {
      const EquiDepthHistogram& h = *s.histogram;
      double f = -1.0;
      switch (op) {
        case BinaryOp::kEq:
          f = h.FractionEq(c.value());
          break;
        case BinaryOp::kNe:
          f = 1.0 - h.FractionEq(c.value());
          break;
        case BinaryOp::kLe:
          f = h.FractionLE(c.value());
          break;
        case BinaryOp::kLt:
          f = h.FractionLE(c.value()) - h.FractionEq(c.value());
          break;
        case BinaryOp::kGe:
          f = 1.0 - h.FractionLE(c.value()) + h.FractionEq(c.value());
          break;
        case BinaryOp::kGt:
          f = 1.0 - h.FractionLE(c.value());
          break;
        default:
          return Status::InvalidArgument("not a comparison operator");
      }
      if (f >= 0) {
        if (source) *source = SelSource::kHistogram;
        // Scale by notnull: histogram fractions are over present values.
        return clamp(f * s.notnull);
      }
    }
  }

  const double dist = s.dist == 0 ? 1.0 : static_cast<double>(s.dist);
  switch (op) {
    case BinaryOp::kEq:
      return clamp(1.0 / dist);
    case BinaryOp::kNe:
      return clamp(1.0 - 1.0 / dist);
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (!s.has_range) return 1.0 / 3.0;
      auto c = constant.ToDouble();
      if (!c.ok()) return 1.0 / 3.0;
      double denom = s.max_val - s.min_val;
      if (denom <= 0) return clamp(1.0 / dist);
      return clamp((s.max_val - c.value()) / denom);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe: {
      if (!s.has_range) return 1.0 / 3.0;
      auto c = constant.ToDouble();
      if (!c.ok()) return 1.0 / 3.0;
      double denom = s.max_val - s.min_val;
      if (denom <= 0) return clamp(1.0 / dist);
      return clamp((c.value() - s.min_val) / denom);
    }
    default:
      return Status::InvalidArgument("not a comparison operator");
  }
}

Result<SelectivityEstimator::Hop> SelectivityEstimator::HopParams(
    const BoundPath& path, size_t i) const {
  const std::string& c = path.classes[i];
  const std::string& attr = path.steps[i].name;
  MOOD_ASSIGN_OR_RETURN(ReferenceStats ref, stats_->Reference(c, attr));
  MOOD_ASSIGN_OR_RETURN(ClassStats cs, stats_->Class(c));
  MOOD_ASSIGN_OR_RETURN(ClassStats ds, stats_->Class(path.classes[i + 1]));
  Hop hop;
  hop.fan = ref.fan;
  hop.totref = static_cast<double>(ref.totref);
  hop.totlinks = ref.fan * static_cast<double>(cs.cardinality);
  hop.hitprb = ds.cardinality == 0
                   ? 0.0
                   : static_cast<double>(ref.totref) / static_cast<double>(ds.cardinality);
  return hop;
}

Result<double> SelectivityEstimator::Fref(const BoundPath& path, double k,
                                          size_t hops) const {
  const size_t ref_hops = path.classes.size() - 1;
  const size_t limit = std::min(hops, ref_hops);
  double fref = k;
  for (size_t i = 0; i < limit; i++) {
    MOOD_ASSIGN_OR_RETURN(Hop hop, HopParams(path, i));
    fref = CApprox(hop.totlinks, hop.totref, fref * hop.fan);
  }
  return fref;
}

Result<double> SelectivityEstimator::TerminalK(const BoundPath& path, BinaryOp op,
                                               const MoodValue& constant,
                                               SelSource* source) const {
  if (!path.IsTerminalAtomic()) {
    return Status::InvalidArgument("path does not terminate in an atomic attribute");
  }
  const std::string& cm = path.TerminalClass();
  const std::string& am = path.steps.back().name;
  MOOD_ASSIGN_OR_RETURN(double fs, AtomicSelectivity(cm, am, op, constant, source));
  MOOD_ASSIGN_OR_RETURN(ClassStats cs, stats_->Class(cm));
  return static_cast<double>(cs.cardinality) * fs;
}

Result<double> SelectivityEstimator::PathSelectivity(const BoundPath& path, BinaryOp op,
                                                     const MoodValue& constant,
                                                     SelSource* source) const {
  if (path.steps.size() == 1) {
    // Immediate selection: plain atomic selectivity.
    return AtomicSelectivity(path.classes[0], path.steps[0].name, op, constant,
                             source);
  }
  const size_t ref_hops = path.classes.size() - 1;
  if (ref_hops == 0) {
    return Status::InvalidArgument("path selectivity needs at least one reference hop");
  }
  MOOD_ASSIGN_OR_RETURN(double k_m, TerminalK(path, op, constant, source));
  MOOD_ASSIGN_OR_RETURN(double fref_one, Fref(path, 1.0));
  MOOD_ASSIGN_OR_RETURN(Hop last, HopParams(path, ref_hops - 1));
  // The paper's Table 16 requires the expected matching set to contain at least
  // one object (see DESIGN.md): y = max(1, k_m * hitprb).
  double y = std::max(1.0, k_m * last.hitprb);
  return OverlapProbability(last.totref, fref_one, y);
}

}  // namespace mood
