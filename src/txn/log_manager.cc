#include "txn/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"

namespace mood {

namespace {
Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for '" + path + "': " + std::strerror(errno));
}
}  // namespace

LogManager::~LogManager() {
  if (fd_ >= 0) Close();
}

Status LogManager::Open(const std::string& path, const WalOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) return Status::InvalidArgument("LogManager already open");
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) return Errno("open", path);
    auto fail = [&](const char* op) {
      Status st = Errno(op, path);
      ::close(fd_);
      fd_ = -1;
      return st;
    };
    path_ = path;
    options_ = options;
    flusher_error_ = Status::OK();
    sticky_error_ = Status::OK();
    stop_flusher_ = false;
    // Recover next_lsn_ by scanning the existing log tail; a record whose CRC
    // fails marks the torn tail, beyond which nothing is trusted.
    struct stat st;
    if (::fstat(fd_, &st) != 0) return fail("fstat");
    std::string all(static_cast<size_t>(st.st_size), '\0');
    if (st.st_size > 0) {
      ssize_t n = ::pread(fd_, all.data(), all.size(), 0);
      if (n != st.st_size) return fail("pread");
    }
    size_t valid_end = 0;  // byte offset just past the last CRC-valid record
    Decoder dec(all);
    while (!dec.Empty()) {
      Slice payload;
      if (!dec.GetLengthPrefixedSlice(&payload).ok()) break;  // torn tail: stop
      if (payload.size() < 21) break;                         // crc + minimal body
      uint32_t crc = DecodeFixed32(payload.data());
      if (crc != Crc32c(payload.data() + 4, payload.size() - 4)) break;
      Lsn lsn = DecodeFixed64(payload.data() + 4);
      if (lsn >= next_lsn_) next_lsn_ = lsn + 1;
      valid_end = all.size() - dec.Remaining();
    }
    // Physically drop the torn tail so the valid prefix stays contiguous.
    // Merely skipping it logically would let post-recovery appends land
    // *after* the garbage, and the next recovery (which also stops at the
    // first bad CRC) would silently discard every one of them.
    if (valid_end < static_cast<size_t>(st.st_size)) {
      torn_tail_drops_.fetch_add(1, std::memory_order_relaxed);
      if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
        return fail("ftruncate");
      }
      if (::fsync(fd_) != 0) return fail("fsync");
    }
    if (::lseek(fd_, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
      return fail("lseek");
    }
    durable_lsn_.store(next_lsn_ - 1, std::memory_order_release);
    requested_lsn_ = next_lsn_ - 1;
  }
  if (options.fsync_mode == WalFsync::kGroup) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
  return Status::OK();
}

Status LogManager::Close() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_flusher_ = true;
    }
    work_cv_.notify_all();
    flusher_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  // After an indeterminate flush failure the on-disk suffix is unknown;
  // re-writing the buffer could duplicate partially written bytes mid-log.
  // The buffered records were never acknowledged durable, so drop them.
  if (!buffer_.empty() && sticky_error_.ok()) {
    ssize_t n = ::write(fd_, buffer_.data(), buffer_.size());
    if (n != static_cast<ssize_t>(buffer_.size())) return Errno("write", path_);
    buffer_.clear();
  }
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

Result<Lsn> LogManager::Append(LogRecordType type, uint64_t txn_id, PageId page,
                               Slice before, Slice after) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("LogManager not open");
  if (!sticky_error_.ok()) return sticky_error_;
  if (auto fp = CheckFailPoint("log.append")) {
    if (fp->crash()) std::abort();
    return fp->Error("log.append");
  }
  Lsn lsn = next_lsn_++;
  std::string body;
  PutFixed64(&body, lsn);
  PutFixed64(&body, txn_id);
  body.push_back(static_cast<char>(type));
  if (type == LogRecordType::kPageWrite) {
    PutFixed32(&body, page);
    PutLengthPrefixedSlice(&body, before);
    PutLengthPrefixedSlice(&body, after);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(body.size()) + 4);
  PutFixed32(&buffer_, Crc32c(body.data(), body.size()));
  buffer_.append(body);
  appends_.fetch_add(1, std::memory_order_relaxed);
  return lsn;
}

Result<Lsn> LogManager::AppendBegin(uint64_t txn_id) {
  return Append(LogRecordType::kBegin, txn_id, kInvalidPageId, {}, {});
}
Result<Lsn> LogManager::AppendCommit(uint64_t txn_id) {
  return Append(LogRecordType::kCommit, txn_id, kInvalidPageId, {}, {});
}
Result<Lsn> LogManager::AppendAbort(uint64_t txn_id) {
  return Append(LogRecordType::kAbort, txn_id, kInvalidPageId, {}, {});
}
Result<Lsn> LogManager::AppendPageWrite(uint64_t txn_id, PageId page, Slice before,
                                        Slice after) {
  return Append(LogRecordType::kPageWrite, txn_id, page, before, after);
}
Result<Lsn> LogManager::AppendCheckpoint() {
  return Append(LogRecordType::kCheckpoint, 0, kInvalidPageId, {}, {});
}

Status LogManager::FlushLocked() {
  if (fd_ < 0) return Status::IOError("LogManager not open");
  if (!sticky_error_.ok()) return sticky_error_;
  if (auto fp = CheckFailPoint("log.flush")) {
    if (fp->torn() && !buffer_.empty()) {
      // Persist only a prefix of the pending records — the shape of a crash
      // mid-write. The torn record's CRC won't verify on replay.
      (void)::write(fd_, buffer_.data(), buffer_.size() / 2);
      // Bytes of unknown extent reached the file: the log suffix is now
      // indeterminate, exactly like a real short write. Poison the log.
      sticky_error_ = fp->Error("log.flush");
      if (fp->crash()) std::abort();
      return sticky_error_;
    }
    if (fp->crash()) std::abort();
    // Plain error mode fires before any byte is written: the buffered
    // records are definitely NOT durable, so this failure is retryable
    // (not sticky) — unlike the write/fsync failures below.
    return fp->Error("log.flush");
  }
  Lsn flushed_up_to = next_lsn_ - 1;
  if (!buffer_.empty()) {
    ssize_t n = ::write(fd_, buffer_.data(), buffer_.size());
    if (n != static_cast<ssize_t>(buffer_.size())) {
      // A short or failed write leaves an unknown prefix of the buffer in
      // the file; a failed fsync below leaves fully written records in the
      // OS page cache where they may still become durable. Either way the
      // on-disk state is indeterminate: make the failure sticky so no later
      // append/flush can acknowledge durability on top of it (the database
      // must be reopened, letting recovery decide from what actually
      // persisted).
      sticky_error_ = Errno("write", path_);
      return sticky_error_;
    }
    buffer_.clear();
  }
  if (::fsync(fd_) != 0) {
    sticky_error_ = Errno("fsync", path_);
    return sticky_error_;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  durable_lsn_.store(flushed_up_to, std::memory_order_release);
  return Status::OK();
}

Status LogManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status LogManager::SyncCommit(Lsn lsn) {
  switch (options_.fsync_mode) {
    case WalFsync::kOff:
      return Status::OK();
    case WalFsync::kAlways:
      return Flush();
    case WalFsync::kGroup:
      break;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!flusher_error_.ok()) return flusher_error_;
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return Status::OK();
  if (requested_lsn_ < lsn) requested_lsn_ = lsn;
  commit_waiters_++;
  work_cv_.notify_one();
  durable_cv_.wait(lock, [&] {
    return !flusher_error_.ok() || stop_flusher_ ||
           durable_lsn_.load(std::memory_order_acquire) >= lsn;
  });
  commit_waiters_--;
  if (!flusher_error_.ok()) return flusher_error_;
  if (durable_lsn_.load(std::memory_order_acquire) < lsn) {
    return Status::IOError("log closed before commit became durable");
  }
  return Status::OK();
}

void LogManager::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_flusher_ ||
             requested_lsn_ > durable_lsn_.load(std::memory_order_acquire);
    });
    if (stop_flusher_) {
      durable_cv_.notify_all();
      return;
    }
    // Collect committers for the window so they share one fsync. The lock is
    // dropped while sleeping: arriving committers enqueue records and bump
    // requested_lsn_, all covered by the single flush below.
    if (options_.group_commit_window_us > 0) {
      lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.group_commit_window_us));
      lock.lock();
      if (stop_flusher_) {
        durable_cv_.notify_all();
        return;
      }
    }
    size_t batch = commit_waiters_;
    Status st = FlushLocked();
    if (!st.ok()) {
      flusher_error_ = st;
      durable_cv_.notify_all();
      return;
    }
    batch_hist_.Record(batch);
    durable_cv_.notify_all();
  }
}

Status LogManager::ReadAll(std::vector<LogRecord>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("LogManager not open");
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path_);
  std::string all(static_cast<size_t>(st.st_size), '\0');
  if (st.st_size > 0) {
    ssize_t n = ::pread(fd_, all.data(), all.size(), 0);
    if (n != st.st_size) return Errno("pread", path_);
  }
  all.append(buffer_);  // include unflushed tail for in-process readers
  Decoder dec(all);
  out->clear();
  while (!dec.Empty()) {
    Slice payload;
    Status st2 = dec.GetLengthPrefixedSlice(&payload);
    if (!st2.ok() || payload.size() < 4) {
      // Torn tail after crash: the interrupted write never completed, so
      // everything from here on is garbage. Prefix durability.
      torn_tail_drops_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    uint32_t crc = DecodeFixed32(payload.data());
    Slice body(payload.data() + 4, payload.size() - 4);
    if (crc != Crc32c(body.data(), body.size())) {
      torn_tail_drops_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    Decoder b(body);
    LogRecord rec;
    uint8_t type_byte = 0;
    MOOD_RETURN_IF_ERROR(b.GetFixed64(&rec.lsn));
    MOOD_RETURN_IF_ERROR(b.GetFixed64(&rec.txn_id));
    {
      Slice rest = b.rest();
      if (rest.empty()) return Status::Corruption("log record missing type");
      type_byte = static_cast<uint8_t>(rest[0]);
      Decoder b2(Slice(rest.data() + 1, rest.size() - 1));
      rec.type = static_cast<LogRecordType>(type_byte);
      if (rec.type == LogRecordType::kPageWrite) {
        MOOD_RETURN_IF_ERROR(b2.GetFixed32(&rec.page_id));
        MOOD_RETURN_IF_ERROR(b2.GetString(&rec.before));
        MOOD_RETURN_IF_ERROR(b2.GetString(&rec.after));
      }
    }
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

Status LogManager::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("LogManager not open");
  // A poisoned log may hold acknowledged commits whose data pages can no
  // longer be checkpointed (the pre-flush hook fails); dropping it here
  // would discard them. Recovery on reopen is the only way out.
  if (!sticky_error_.ok()) return sticky_error_;
  buffer_.clear();
  if (::ftruncate(fd_, 0) != 0) return Errno("ftruncate", path_);
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0) return Errno("lseek", path_);
  durable_lsn_.store(next_lsn_ - 1, std::memory_order_release);
  requested_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

void LogManager::RegisterMetrics(MetricsRegistry* registry) {
  registry->RegisterProbe(
      "wal", [this](std::vector<std::pair<std::string, double>>* out) {
        out->emplace_back("wal.appends",
                          static_cast<double>(appends_.load(std::memory_order_relaxed)));
        out->emplace_back("wal.flushes",
                          static_cast<double>(flushes_.load(std::memory_order_relaxed)));
        out->emplace_back("wal.fsyncs",
                          static_cast<double>(fsyncs_.load(std::memory_order_relaxed)));
        out->emplace_back(
            "wal.torn_tail_drops",
            static_cast<double>(torn_tail_drops_.load(std::memory_order_relaxed)));
        out->emplace_back("wal.group_commit_batch.count",
                          static_cast<double>(batch_hist_.count()));
        out->emplace_back("wal.group_commit_batch.sum",
                          static_cast<double>(batch_hist_.sum()));
        out->emplace_back("wal.group_commit_batch.p50",
                          static_cast<double>(batch_hist_.PercentileUpperBound(50)));
        out->emplace_back("wal.group_commit_batch.p99",
                          static_cast<double>(batch_hist_.PercentileUpperBound(99)));
      });
}

}  // namespace mood
