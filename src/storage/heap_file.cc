#include "storage/heap_file.h"

#include <cstring>

#include "common/coding.h"

namespace mood {

void EncodeRecordId(std::string* dst, RecordId rid) {
  PutFixed32(dst, rid.page);
  PutFixed16(dst, rid.slot);
}

Result<RecordId> DecodeRecordId(Slice in) {
  if (in.size() < 6) return Status::Corruption("short RecordId encoding");
  RecordId rid;
  rid.page = DecodeFixed32(in.data());
  rid.slot = DecodeFixed16(in.data() + 4);
  return rid;
}

HeapFile::HeapFile(BufferPool* pool, FileDirectory* directory, FileInfo info)
    : pool_(pool), directory_(directory), info_(info) {}

Status HeapFile::MutatePage(Page* page, PageWriteLogger* wal,
                            const std::function<Status(SlottedPage&)>& fn) {
  SlottedPage sp(page);
  if (wal == nullptr) {
    return fn(sp);
  }
  std::string before(page->data(), kPageSize);
  Status st = fn(sp);
  if (!st.ok()) return st;
  MOOD_ASSIGN_OR_RETURN(
      Lsn lsn, wal->LogPageWrite(page->page_id(), Slice(before.data(), kPageSize),
                                 Slice(page->data(), kPageSize)));
  sp.set_lsn(lsn);
  return Status::OK();
}

Result<Page*> HeapFile::AppendPage(PageWriteLogger* wal) {
  MOOD_ASSIGN_OR_RETURN(PageId new_id, directory_->AllocatePage());
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(new_id));
  {
    SlottedPage sp(page);
    sp.Init();
    page->set_dirty(true);
  }
  if (info_.first_page == kInvalidPageId) {
    info_.first_page = new_id;
    info_.last_page = new_id;
  } else {
    MOOD_ASSIGN_OR_RETURN(Page* tail, pool_->FetchPage(info_.last_page));
    Status st = MutatePage(tail, wal, [&](SlottedPage& sp) {
      sp.set_next_page(new_id);
      return Status::OK();
    });
    pool_->UnpinPage(tail->page_id(), true);
    if (!st.ok()) {
      pool_->UnpinPage(new_id, false);
      return st;
    }
    info_.last_page = new_id;
  }
  info_.page_count++;
  {
    // The chain grew: drop the readahead map so the next scan rebuilds it.
    std::lock_guard<std::mutex> lock(chain_mu_);
    chain_.reset();
  }
  Status st = PersistInfo(wal);
  if (!st.ok()) {
    pool_->UnpinPage(new_id, true);
    return st;
  }
  return page;
}

Result<RecordId> HeapFile::InsertWithFlags(Slice record, uint8_t flags,
                                           PageWriteLogger* wal) {
  // Try the tail page first; append a fresh page when it is full. (Holes from
  // deletes in interior pages are reclaimed only when records are reinserted via
  // forwarding; a full free-space map is unnecessary at MOOD's scale.)
  Page* page = nullptr;
  if (info_.last_page != kInvalidPageId) {
    MOOD_ASSIGN_OR_RETURN(page, pool_->FetchPage(info_.last_page));
    SlottedPage probe(page);
    if (probe.FreeSpace() < record.size() + 8) {
      pool_->UnpinPage(page->page_id(), false);
      page = nullptr;
    }
  }
  if (page == nullptr) {
    MOOD_ASSIGN_OR_RETURN(page, AppendPage(wal));
  }
  RecordId rid;
  rid.page = page->page_id();
  SlotId slot = kInvalidSlot;
  Status st = MutatePage(page, wal, [&](SlottedPage& sp) {
    MOOD_ASSIGN_OR_RETURN(slot, sp.Insert(record, flags));
    return Status::OK();
  });
  pool_->UnpinPage(page->page_id(), st.ok());
  MOOD_RETURN_IF_ERROR(st);
  rid.slot = slot;
  return rid;
}

Result<RecordId> HeapFile::Insert(Slice record, PageWriteLogger* wal) {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  MOOD_ASSIGN_OR_RETURN(RecordId rid, InsertWithFlags(record, kSlotNormal, wal));
  info_.record_count++;
  MOOD_RETURN_IF_ERROR(PersistInfo(wal));
  return rid;
}

Result<std::string> HeapFile::Get(RecordId rid) const {
  record_reads_.fetch_add(1, std::memory_order_relaxed);
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(rid.page));
  PageGuard guard(pool_, page);
  SlottedPage sp(page);
  MOOD_ASSIGN_OR_RETURN(uint8_t flags, sp.GetFlags(rid.slot));
  MOOD_ASSIGN_OR_RETURN(Slice data, sp.Get(rid.slot));
  if (flags & kSlotForward) {
    forward_chases_.fetch_add(1, std::memory_order_relaxed);
    MOOD_ASSIGN_OR_RETURN(RecordId target, DecodeRecordId(data));
    guard.Release();
    MOOD_ASSIGN_OR_RETURN(Page* tpage, pool_->FetchPage(target.page));
    PageGuard tguard(pool_, tpage);
    SlottedPage tsp(tpage);
    MOOD_ASSIGN_OR_RETURN(Slice tdata, tsp.Get(target.slot));
    return tdata.ToString();
  }
  return data.ToString();
}

Status HeapFile::Update(RecordId rid, Slice record, PageWriteLogger* wal) {
  updates_.fetch_add(1, std::memory_order_relaxed);
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(rid.page));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  SlottedPage sp(page);
  MOOD_ASSIGN_OR_RETURN(uint8_t flags, sp.GetFlags(rid.slot));

  if (flags & kSlotForward) {
    // Already forwarded: replace the body at (or move) the forwarding target.
    MOOD_ASSIGN_OR_RETURN(Slice stub, sp.Get(rid.slot));
    MOOD_ASSIGN_OR_RETURN(RecordId target, DecodeRecordId(stub));
    MOOD_ASSIGN_OR_RETURN(Page* tpage, pool_->FetchPage(target.page));
    PageGuard tguard(pool_, tpage);
    tguard.MarkDirty();
    Status st = MutatePage(tpage, wal, [&](SlottedPage& tsp) {
      return tsp.Update(target.slot, record);
    });
    if (st.ok()) return st;
    if (!st.IsInvalidArgument()) return st;
    // Target page full: move the body again and rewrite the stub.
    Status del = MutatePage(tpage, wal, [&](SlottedPage& tsp) {
      return tsp.Delete(target.slot);
    });
    MOOD_RETURN_IF_ERROR(del);
    tguard.Release();
    MOOD_ASSIGN_OR_RETURN(RecordId moved, InsertWithFlags(record, kSlotMovedIn, wal));
    std::string stub_bytes;
    EncodeRecordId(&stub_bytes, moved);
    return MutatePage(page, wal, [&](SlottedPage& hsp) {
      return hsp.Update(rid.slot, Slice(stub_bytes));
    });
  }

  Status st = MutatePage(page, wal, [&](SlottedPage& hsp) {
    return hsp.Update(rid.slot, record);
  });
  if (st.ok()) return st;
  if (!st.IsInvalidArgument()) return st;

  // Home page full: move the record elsewhere and leave a forwarding stub. The
  // 6-byte stub always fits because the old record occupied at least that much
  // space... except for tiny records; in that case compaction plus the freed body
  // still guarantees room since stub <= old size is not assured. Handle both by
  // deleting first.
  MOOD_ASSIGN_OR_RETURN(RecordId moved, InsertWithFlags(record, kSlotMovedIn, wal));
  std::string stub_bytes;
  EncodeRecordId(&stub_bytes, moved);
  Status st2 = MutatePage(page, wal, [&](SlottedPage& hsp) {
    MOOD_RETURN_IF_ERROR(hsp.Delete(rid.slot));
    return hsp.InsertAt(rid.slot, Slice(stub_bytes), kSlotForward);
  });
  return st2;
}

Status HeapFile::Delete(RecordId rid, PageWriteLogger* wal) {
  deletes_.fetch_add(1, std::memory_order_relaxed);
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(rid.page));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  SlottedPage sp(page);
  MOOD_ASSIGN_OR_RETURN(uint8_t flags, sp.GetFlags(rid.slot));
  if (flags & kSlotForward) {
    MOOD_ASSIGN_OR_RETURN(Slice stub, sp.Get(rid.slot));
    MOOD_ASSIGN_OR_RETURN(RecordId target, DecodeRecordId(stub));
    MOOD_ASSIGN_OR_RETURN(Page* tpage, pool_->FetchPage(target.page));
    PageGuard tguard(pool_, tpage);
    tguard.MarkDirty();
    MOOD_RETURN_IF_ERROR(MutatePage(tpage, wal, [&](SlottedPage& tsp) {
      return tsp.Delete(target.slot);
    }));
  }
  MOOD_RETURN_IF_ERROR(MutatePage(page, wal, [&](SlottedPage& hsp) {
    return hsp.Delete(rid.slot);
  }));
  info_.record_count--;
  return PersistInfo(wal);
}

Result<std::vector<PageId>> HeapFile::PageIds() const {
  std::vector<PageId> pages;
  pages.reserve(info_.page_count);
  PageId page = info_.first_page;
  while (page != kInvalidPageId) {
    pages.push_back(page);
    MOOD_ASSIGN_OR_RETURN(Page* p, pool_->FetchPage(page));
    PageGuard guard(pool_, p);
    SlottedPage sp(p);
    page = sp.next_page();
  }
  return pages;
}

Result<std::shared_ptr<const HeapFile::ChainMap>> HeapFile::Chain() const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  if (chain_ != nullptr) return chain_;
  auto map = std::make_shared<ChainMap>();
  MOOD_ASSIGN_OR_RETURN(map->pages, PageIds());
  map->index.reserve(map->pages.size());
  for (uint32_t i = 0; i < map->pages.size(); i++) map->index[map->pages[i]] = i;
  chain_ = std::move(map);
  return chain_;
}

void HeapFile::MaybeReadAhead(PageId page, ScanCursor* cursor) const {
  if (cursor == nullptr) return;
  size_t depth = pool_->readahead();
  if (depth == 0) return;
  auto chain_res = Chain();
  if (!chain_res.ok()) return;
  const ChainMap& chain = *chain_res.value();
  auto it = chain.index.find(page);
  if (it == chain.index.end()) return;
  uint32_t idx = it->second;

  // Advance last_index to max(last_index, idx); a touch below the current
  // watermark means this worker is behind the scan front — no readahead.
  uint32_t prev = cursor->last_index.load(std::memory_order_relaxed);
  while (prev == ScanCursor::kNoIndex || idx > prev) {
    if (cursor->last_index.compare_exchange_weak(prev, idx, std::memory_order_relaxed)) {
      break;
    }
  }
  if (prev != ScanCursor::kNoIndex && idx < prev) return;

  uint64_t want = static_cast<uint64_t>(idx) + 1 + depth;
  if (want > chain.pages.size()) want = chain.pages.size();
  uint32_t from = cursor->prefetched_to.load(std::memory_order_relaxed);
  if (from < idx + 1) from = idx + 1;
  for (uint32_t i = from; i < want; i++) {
    (void)pool_->Prefetch(chain.pages[i]);  // best-effort
  }
  uint32_t to = static_cast<uint32_t>(want);
  uint32_t pf = cursor->prefetched_to.load(std::memory_order_relaxed);
  while (to > pf &&
         !cursor->prefetched_to.compare_exchange_weak(pf, to, std::memory_order_relaxed)) {
  }
}

Status HeapFile::ScanPage(PageId page_id,
                          const std::function<Status(RecordId, const std::string&)>& fn) const {
  return ScanPage(page_id, nullptr, fn);
}

Status HeapFile::ScanPage(PageId page_id, ScanCursor* cursor,
                          const std::function<Status(RecordId, const std::string&)>& fn) const {
  scan_pages_.fetch_add(1, std::memory_order_relaxed);
  struct Item {
    RecordId rid;
    std::string record;
    bool forwarded;
  };
  std::vector<Item> items;
  {
    MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(page_id));
    PageGuard guard(pool_, page);
    SlottedPage sp(page);
    for (SlotId s = 0; s < sp.slot_count(); s++) {
      if (!sp.IsLive(s)) continue;
      MOOD_ASSIGN_OR_RETURN(uint8_t flags, sp.GetFlags(s));
      if (flags & kSlotMovedIn) continue;  // reached via its home slot
      Item item;
      item.rid = RecordId{page_id, s};
      item.forwarded = (flags & kSlotForward) != 0;
      if (!item.forwarded) {
        MOOD_ASSIGN_OR_RETURN(Slice data, sp.Get(s));
        item.record = data.ToString();
      }
      items.push_back(std::move(item));
    }
  }
  // Readahead after the demand page is read and released: disk access order
  // stays sequential and the prefetches cannot collide with this page's pin.
  MaybeReadAhead(page_id, cursor);
  // Chase forwarding stubs and run the callback with no page pinned, so deep
  // callbacks cannot exhaust a small pool.
  for (auto& item : items) {
    if (item.forwarded) {
      MOOD_ASSIGN_OR_RETURN(item.record, Get(item.rid));
    }
    MOOD_RETURN_IF_ERROR(fn(item.rid, item.record));
  }
  return Status::OK();
}

HeapFile::Iterator::Iterator(const HeapFile* file, PageId page) : file_(file) {
  if (file_->pool_->readahead() > 0) cursor_ = std::make_shared<ScanCursor>();
  LoadFrom(page, 0);
}

void HeapFile::Iterator::LoadFrom(PageId page, SlotId slot) {
  current_rid_ = RecordId{};
  while (page != kInvalidPageId) {
    auto page_res = file_->pool_->FetchPage(page);
    if (!page_res.ok()) {
      status_ = page_res.status();
      return;
    }
    // Trigger readahead once per page (slot 0 marks first entry onto it).
    if (slot == 0) file_->MaybeReadAhead(page, cursor_.get());
    PageGuard guard(file_->pool_, page_res.value());
    SlottedPage sp(page_res.value());
    for (SlotId s = slot; s < sp.slot_count(); s++) {
      if (!sp.IsLive(s)) continue;
      auto flags_res = sp.GetFlags(s);
      if (!flags_res.ok()) continue;
      if (flags_res.value() & kSlotMovedIn) continue;  // reached via home slot
      current_rid_ = RecordId{page, s};
      if (flags_res.value() & kSlotForward) {
        guard.Release();
        auto rec = file_->Get(current_rid_);
        if (!rec.ok()) {
          status_ = rec.status();
          current_rid_ = RecordId{};
          return;
        }
        current_record_ = std::move(rec).value();
      } else {
        auto data = sp.Get(s);
        if (!data.ok()) {
          status_ = data.status();
          current_rid_ = RecordId{};
          return;
        }
        current_record_ = data.value().ToString();
      }
      return;
    }
    PageId next = sp.next_page();
    page = next;
    slot = 0;
  }
}

void HeapFile::Iterator::Next() {
  if (!Valid()) return;
  PageId page = current_rid_.page;
  SlotId slot = current_rid_.slot;
  // Resume after the current slot; LoadFrom handles page-chain advancement.
  if (slot == 0xFFFE) {
    // Slot ids are bounded far below this in practice (page size / slot size).
    status_ = Status::Internal("slot id overflow");
    current_rid_ = RecordId{};
    return;
  }
  LoadFrom(page, static_cast<SlotId>(slot + 1));
}

}  // namespace mood
