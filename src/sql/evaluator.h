#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "funcman/function_manager.h"
#include "objects/object_manager.h"
#include "sql/ast.h"

namespace mood {

/// Interprets MOODSQL expressions at run time over bound range variables. This is
/// the kernel's interpreted half: arithmetic and Boolean expressions run through
/// OperandDataType (Section 2), while method steps dispatch into compiled bodies
/// through the Function Manager.
class Evaluator {
 public:
  Evaluator(ObjectManager* objects, FunctionManager* functions)
      : objects_(objects), functions_(functions) {}

  /// Bindings of range variables to objects for the current row, plus the
  /// query's Deref cache (null disables caching). Every dereference in a path
  /// step or method call goes through `deref`, so repeated hops over the same
  /// objects within one query hit memory.
  struct Env {
    std::map<std::string, Oid> vars;
    DerefCache* deref = nullptr;
    /// Bound values for `?` positional parameters, in placeholder order.
    const std::vector<MoodValue>* params = nullptr;
  };

  /// Evaluates an expression to a value. A path through a Set/List-valued
  /// reference attribute fans out and yields a Set of terminal values; a
  /// comparison against such a Set uses existential semantics (true if any
  /// element satisfies it).
  Result<MoodValue> Eval(const ExprPtr& expr, const Env& env) const;

  /// Evaluates a predicate to a Boolean (null/absent values make it false).
  Result<bool> EvalPredicate(const ExprPtr& expr, const Env& env) const;

  /// Evaluates a path expression rooted at a concrete object.
  Result<MoodValue> EvalPathFrom(Oid root, const std::vector<PathStep>& steps,
                                 const Env& env) const;

  /// Compares with existential fan-out semantics. Static and public so the
  /// compiled expression programs (exec/expr_compile) share the exact same
  /// comparison code path as the interpreter.
  static Result<bool> Compare(BinaryOp op, const MoodValue& lhs, const MoodValue& rhs);

  ObjectManager* objects() const { return objects_; }
  FunctionManager* functions() const { return functions_; }

 private:
  Result<MoodValue> EvalBinary(const Expr& e, const Env& env) const;
  Result<MoodValue> CallMethod(Oid receiver, const std::string& fname,
                               const std::vector<ExprPtr>& args, const Env& env) const;

  ObjectManager* objects_;
  FunctionManager* functions_;
};

}  // namespace mood
