#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace mood {

/// Placement of one DAG node: layer (row) and order within the layer.
struct DagPosition {
  int layer = 0;
  int order = 0;
};

/// Layered DAG placement with barycenter crossing minimization — the algorithm
/// behind MoodView's class-hierarchy browser ("a DAG placement algorithm that
/// minimizes crossovers", Section 9.2). Nodes are class names; edges point from
/// superclass to subclass.
class DagLayout {
 public:
  void AddNode(const std::string& name);
  void AddEdge(const std::string& from, const std::string& to);

  /// Computes layers (longest path from roots) and orders nodes within each
  /// layer by iterated barycenter sweeps.
  Status Compute();

  const std::map<std::string, DagPosition>& positions() const { return positions_; }
  int layer_count() const { return layer_count_; }

  /// Number of edge crossings in the current placement (minimization target;
  /// exposed for tests and the layout-quality bench).
  int CountCrossings() const;

  /// ASCII rendering: one row per layer, edges drawn as parent lists.
  std::string Render() const;

 private:
  std::vector<std::string> nodes_;
  std::vector<std::pair<std::string, std::string>> edges_;
  std::map<std::string, DagPosition> positions_;
  int layer_count_ = 0;
};

}  // namespace mood
