#include "exec/expr_compile.h"

#include <cstdio>

#include "sql/evaluator.h"
#include "types/operand.h"

namespace mood {

namespace {

/// Bottom-up constant evaluation with the interpreter's exact semantics.
/// Returns false for non-constant subtrees AND for constant subtrees whose
/// evaluation errors: an erroring subtree is left in bytecode form so the
/// identical error surfaces at run time.
bool TryConstEval(const Expr& e, MoodValue* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      *out = e.literal;
      return true;
    case ExprKind::kPath:
    case ExprKind::kParameter:
      return false;
    case ExprKind::kUnary: {
      MoodValue v;
      if (!TryConstEval(*e.operand, &v)) return false;
      OperandDataType o = OperandDataType::FromValue(v);
      auto r = e.uop == UnaryOp::kNeg ? (-o).ToValue() : (!o).ToValue();
      if (!r.ok()) return false;
      *out = std::move(r).value();
      return true;
    }
    case ExprKind::kBinary: {
      if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
        // Short-circuit is part of the semantics: a deciding lhs folds the
        // node even when the rhs is non-constant (the interpreter would never
        // evaluate it).
        MoodValue lv;
        if (!TryConstEval(*e.lhs, &lv)) return false;
        auto lb = OperandDataType::FromValue(lv).AsBool();
        if (!lb.ok()) return false;
        if (e.op == BinaryOp::kAnd && !lb.value()) {
          *out = MoodValue::Boolean(false);
          return true;
        }
        if (e.op == BinaryOp::kOr && lb.value()) {
          *out = MoodValue::Boolean(true);
          return true;
        }
        MoodValue rv;
        if (!TryConstEval(*e.rhs, &rv)) return false;
        auto rb = OperandDataType::FromValue(rv).AsBool();
        if (!rb.ok()) return false;
        *out = MoodValue::Boolean(rb.value());
        return true;
      }
      MoodValue lv, rv;
      if (!TryConstEval(*e.lhs, &lv) || !TryConstEval(*e.rhs, &rv)) return false;
      if (IsComparison(e.op)) {
        auto r = Evaluator::Compare(e.op, lv, rv);
        if (!r.ok()) return false;
        *out = MoodValue::Boolean(r.value());
        return true;
      }
      OperandDataType x = OperandDataType::FromValue(lv);
      OperandDataType y = OperandDataType::FromValue(rv);
      OperandDataType r(DataTypeCode::kInt32);
      switch (e.op) {
        case BinaryOp::kAdd: r = x + y; break;
        case BinaryOp::kSub: r = x - y; break;
        case BinaryOp::kMul: r = x * y; break;
        case BinaryOp::kDiv: r = x / y; break;
        case BinaryOp::kMod: r = x % y; break;
        default: return false;
      }
      auto v = r.ToValue();
      if (!v.ok()) return false;
      *out = std::move(v).value();
      return true;
    }
  }
  return false;
}

uint32_t AddConst(std::vector<MoodValue>* consts, MoodValue v) {
  consts->push_back(std::move(v));
  return static_cast<uint32_t>(consts->size() - 1);
}

}  // namespace

std::unique_ptr<ExprProgram> ExprCompiler::Compile(const ExprPtr& expr,
                                                   const ExprCompileEnv& env) const {
  if (expr == nullptr) return nullptr;
  auto prog = std::make_unique<ExprProgram>();
  prog->objects_ = objects_;
  if (!Emit(*expr, env, prog.get())) return nullptr;
  return prog;
}

bool ExprCompiler::Emit(const Expr& e, const ExprCompileEnv& env,
                        ExprProgram* prog) const {
  if (e.kind != ExprKind::kLiteral) {
    MoodValue folded;
    if (TryConstEval(e, &folded)) {
      prog->code_.push_back({ExprProgram::OpCode::kPushConst,
                             AddConst(&prog->consts_, std::move(folded)), 0});
      prog->const_folded_++;
      return true;
    }
  }
  switch (e.kind) {
    case ExprKind::kLiteral:
      prog->code_.push_back({ExprProgram::OpCode::kPushConst,
                             AddConst(&prog->consts_, e.literal), 0});
      return true;
    case ExprKind::kPath:
      return EmitPath(e, env, prog);
    case ExprKind::kParameter:
      prog->code_.push_back({ExprProgram::OpCode::kLoadParam, e.param_index, 0});
      return true;
    case ExprKind::kUnary:
      if (!Emit(*e.operand, env, prog)) return false;
      prog->code_.push_back(
          {ExprProgram::OpCode::kUnary, static_cast<uint32_t>(e.uop), 0});
      return true;
    case ExprKind::kBinary: {
      if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
        // A constant lhs that does not decide the result still disappears:
        // the node reduces to CoerceBool(rhs). (A deciding lhs was already
        // handled by the whole-node fold above.)
        MoodValue lv;
        if (TryConstEval(*e.lhs, &lv)) {
          auto lb = OperandDataType::FromValue(lv).AsBool();
          if (lb.ok()) {
            if (!Emit(*e.rhs, env, prog)) return false;
            prog->code_.push_back({ExprProgram::OpCode::kCoerceBool, 0, 0});
            if (e.lhs->kind != ExprKind::kLiteral) prog->const_folded_++;
            return true;
          }
        }
        if (!Emit(*e.lhs, env, prog)) return false;
        size_t jmp = prog->code_.size();
        prog->code_.push_back({e.op == BinaryOp::kAnd
                                   ? ExprProgram::OpCode::kJumpIfFalse
                                   : ExprProgram::OpCode::kJumpIfTrue,
                               0, 0});
        if (!Emit(*e.rhs, env, prog)) return false;
        prog->code_.push_back({ExprProgram::OpCode::kCoerceBool, 0, 0});
        prog->code_[jmp].a = static_cast<uint32_t>(prog->code_.size());
        return true;
      }
      if (!Emit(*e.lhs, env, prog) || !Emit(*e.rhs, env, prog)) return false;
      prog->code_.push_back({IsComparison(e.op) ? ExprProgram::OpCode::kCompare
                                                : ExprProgram::OpCode::kBinaryArith,
                             static_cast<uint32_t>(e.op), 0});
      return true;
    }
  }
  return false;
}

bool ExprCompiler::EmitPath(const Expr& e, const ExprCompileEnv& env,
                            ExprProgram* prog) const {
  auto it = env.vars.find(e.range_var);
  if (it == env.vars.end()) return false;  // unbound: the interpreter reports it
  const ExprCompileEnv::VarInfo& vi = it->second;
  // Leading `self` steps on the root are identities (the slot always holds a
  // valid reference), so they compile away.
  size_t first = 0;
  while (first < e.steps.size() && !e.steps[first].is_call &&
         e.steps[first].name == "self") {
    first++;
  }
  if (first == e.steps.size()) {
    prog->code_.push_back({ExprProgram::OpCode::kLoadSlot, vi.slot, 0});
    return true;
  }
  if (!vi.single_class || vi.class_name.empty()) return false;  // polymorphic root
  std::string cls = vi.class_name;
  for (size_t i = first; i < e.steps.size(); i++) {
    const PathStep& step = e.steps[i];
    if (step.is_call) return false;        // method dispatch stays interpreted
    if (step.name == "self") return false; // non-root self: rare, interpreter's
    auto layout_r = objects_->LayoutOf(cls);
    if (!layout_r.ok()) return false;
    AttributeLayoutPtr layout = std::move(layout_r).value();
    int ord = layout->OrdinalOf(step.name);
    if (ord < 0) return false;  // may resolve to a parameterless method
    const TypeDescPtr& type = layout->attrs[static_cast<size_t>(ord)].type;
    auto attr_idx = static_cast<uint32_t>(prog->attrs_.size());
    prog->attrs_.push_back({layout, static_cast<uint32_t>(ord), step.name});
    if (i == first) {
      prog->code_.push_back({ExprProgram::OpCode::kLoadAttr, vi.slot, attr_idx});
    } else {
      prog->code_.push_back({ExprProgram::OpCode::kDerefAttr, 0, attr_idx});
    }
    if (i + 1 < e.steps.size()) {
      // Non-terminal steps must be single-valued references: a Set/List here
      // would fan out mid-path (interpreter territory), anything else raises
      // the interpreter's type error — which kDerefAttr reproduces only for
      // values, not for the statically-knowable cases we can refuse now.
      if (type->kind() != ConstructorKind::kReference) return false;
      cls = type->referenced_class();
    }
  }
  return true;
}

Result<MoodValue> ExprProgram::Eval(const Oid* slots, size_t nslots, DerefCache* cache,
                                    Scratch* scratch, bool* need_fallback) const {
  (void)nslots;
  *need_fallback = false;
  auto& st = scratch->stack;
  st.clear();  // keeps capacity: no per-row allocation once warmed up
  size_t pc = 0;
  while (pc < code_.size()) {
    const Instr& ins = code_[pc];
    switch (ins.op) {
      case OpCode::kPushConst:
        st.push_back(consts_[ins.a]);
        break;
      case OpCode::kLoadParam: {
        const std::vector<MoodValue>* params = scratch->params;
        if (params == nullptr || ins.a >= params->size()) {
          return Status::InvalidArgument("parameter ?" + std::to_string(ins.a + 1) +
                                         " not bound");
        }
        st.push_back((*params)[ins.a]);
        break;
      }
      case OpCode::kLoadSlot:
        st.push_back(MoodValue::Reference(slots[ins.a]));
        break;
      case OpCode::kLoadAttr: {
        const AttrRef& ar = attrs_[ins.b];
        auto r = objects_->GetAttributeByOrdinal(slots[ins.a], *ar.layout, ar.ordinal,
                                                 cache);
        if (!r.ok()) {
          // NotFound: the instance's class lacks the attribute, so the name
          // may be a parameterless method — the interpreter decides.
          if (r.status().IsNotFound()) {
            *need_fallback = true;
            return MoodValue::Null();
          }
          return r.status();
        }
        st.push_back(std::move(r).value());
        break;
      }
      case OpCode::kDerefAttr: {
        const AttrRef& ar = attrs_[ins.b];
        MoodValue v = std::move(st.back());
        st.pop_back();
        if (v.is_null()) {
          // Null propagates through every remaining step of this path,
          // matching the interpreter's early Null() return.
          st.push_back(MoodValue::Null());
          break;
        }
        if (v.IsCollection()) {
          // Runtime fan-out the static type ruled out (shouldn't happen for
          // type-checked objects; be safe, not clever).
          *need_fallback = true;
          return MoodValue::Null();
        }
        if (v.kind() != ValueKind::kReference) {
          return Status::TypeError("path step '" + ar.name +
                                   "' applied to a non-reference value");
        }
        auto r = objects_->GetAttributeByOrdinal(v.AsReference(), *ar.layout,
                                                 ar.ordinal, cache);
        if (!r.ok()) {
          if (r.status().IsNotFound()) {
            *need_fallback = true;
            return MoodValue::Null();
          }
          return r.status();
        }
        st.push_back(std::move(r).value());
        break;
      }
      case OpCode::kBinaryArith: {
        MoodValue rv = std::move(st.back());
        st.pop_back();
        MoodValue lv = std::move(st.back());
        st.pop_back();
        OperandDataType x = OperandDataType::FromValue(lv);
        OperandDataType y = OperandDataType::FromValue(rv);
        OperandDataType r(DataTypeCode::kInt32);
        switch (static_cast<BinaryOp>(ins.a)) {
          case BinaryOp::kAdd: r = x + y; break;
          case BinaryOp::kSub: r = x - y; break;
          case BinaryOp::kMul: r = x * y; break;
          case BinaryOp::kDiv: r = x / y; break;
          case BinaryOp::kMod: r = x % y; break;
          default:
            return Status::Internal("unhandled binary operator");
        }
        MOOD_ASSIGN_OR_RETURN(MoodValue out, r.ToValue());
        st.push_back(std::move(out));
        break;
      }
      case OpCode::kCompare: {
        MoodValue rv = std::move(st.back());
        st.pop_back();
        MoodValue lv = std::move(st.back());
        st.pop_back();
        MOOD_ASSIGN_OR_RETURN(
            bool b, Evaluator::Compare(static_cast<BinaryOp>(ins.a), lv, rv));
        st.push_back(MoodValue::Boolean(b));
        break;
      }
      case OpCode::kUnary: {
        MoodValue v = std::move(st.back());
        st.pop_back();
        OperandDataType o = OperandDataType::FromValue(v);
        auto r = static_cast<UnaryOp>(ins.a) == UnaryOp::kNeg ? (-o).ToValue()
                                                              : (!o).ToValue();
        MOOD_RETURN_IF_ERROR(r.status());
        st.push_back(std::move(r).value());
        break;
      }
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue: {
        MoodValue v = std::move(st.back());
        st.pop_back();
        OperandDataType o = OperandDataType::FromValue(v);
        MOOD_ASSIGN_OR_RETURN(bool b, o.AsBool());
        bool jump = ins.op == OpCode::kJumpIfFalse ? !b : b;
        if (jump) {
          st.push_back(MoodValue::Boolean(b));
          pc = ins.a;
          continue;
        }
        break;
      }
      case OpCode::kCoerceBool: {
        MoodValue v = std::move(st.back());
        st.pop_back();
        OperandDataType o = OperandDataType::FromValue(v);
        MOOD_ASSIGN_OR_RETURN(bool b, o.AsBool());
        st.push_back(MoodValue::Boolean(b));
        break;
      }
    }
    pc++;
  }
  if (st.size() != 1) return Status::Internal("expression program stack imbalance");
  return std::move(st.back());
}

Result<bool> ExprProgram::EvalPredicate(const Oid* slots, size_t nslots,
                                        DerefCache* cache, Scratch* scratch,
                                        bool* need_fallback) const {
  MOOD_ASSIGN_OR_RETURN(MoodValue v, Eval(slots, nslots, cache, scratch, need_fallback));
  if (*need_fallback) return false;
  if (v.is_null()) return false;
  OperandDataType o = OperandDataType::FromValue(v);
  return o.AsBool();
}

bool ExprProgram::has_jumps() const {
  for (const Instr& ins : code_) {
    if (ins.op == OpCode::kJumpIfFalse || ins.op == OpCode::kJumpIfTrue) return true;
  }
  return false;
}

void ExprProgram::EvalBatch(const RowBatch& batch, DerefCache* cache,
                            BatchScratch* s) const {
  const size_t n = batch.ActiveRows();
  s->flags.assign(n, kRowOk);
  s->values.resize(n);
  s->errors.clear();
  s->errors.resize(n);
  if (n == 0) return;

  if (has_jumps()) {
    // Short-circuit jumps make control flow diverge per row; run the row
    // machine over a row-major slot gather. Dispatch is not amortized here,
    // but DNF splitting keeps jumps out of the hot filter predicates.
    s->row.params = s->params;
    s->rowbuf.resize(batch.nslots);
    for (size_t k = 0; k < n; k++) {
      batch.GatherRow(batch.RowAt(k), s->rowbuf.data());
      bool need_fallback = false;
      auto r = Eval(s->rowbuf.data(), batch.nslots, cache, &s->row, &need_fallback);
      if (!r.ok()) {
        s->flags[k] = kRowError;
        s->errors[k] = r.status();
      } else if (need_fallback) {
        s->flags[k] = kRowFallback;
      } else {
        s->values[k] = std::move(r).value();
      }
    }
    return;
  }

  // Columnar path: every opcode runs as one tight loop over the live rows.
  // The stack holds columns instead of scalars; `live` lists the rows still
  // executing (a row leaves the moment it errors or needs the interpreter).
  // The push/pop discipline is row-independent, so all rows agree on the
  // stack shape at every pc.
  auto& live = s->live;
  live.resize(n);
  for (size_t k = 0; k < n; k++) live[k] = static_cast<uint32_t>(k);
  s->top = 0;
  auto push = [&]() -> BatchScratch::Col& {
    if (s->stack.size() <= s->top) s->stack.emplace_back();
    BatchScratch::Col& c = s->stack[s->top++];
    c.is_const = false;
    if (c.v.size() < n) c.v.resize(n);
    return c;
  };
  auto val = [](const BatchScratch::Col& c, uint32_t k) -> const MoodValue& {
    return c.is_const ? c.cval : c.v[k];
  };
  auto fail = [&](uint32_t k, Status st) {
    s->flags[k] = kRowError;
    s->errors[k] = std::move(st);
  };

  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kPushConst: {
        BatchScratch::Col& c = push();
        c.is_const = true;
        c.cval = consts_[ins.a];
        break;
      }
      case OpCode::kLoadParam: {
        // One bound value per execution: a broadcast constant column.
        BatchScratch::Col& c = push();
        c.is_const = true;
        if (s->params == nullptr || ins.a >= s->params->size()) {
          Status st = Status::InvalidArgument(
              "parameter ?" + std::to_string(ins.a + 1) + " not bound");
          for (uint32_t k : live) fail(k, st);
          live.clear();
          c.cval = MoodValue::Null();
          break;
        }
        c.cval = (*s->params)[ins.a];
        break;
      }
      case OpCode::kLoadSlot: {
        BatchScratch::Col& c = push();
        const Oid* col = batch.col(ins.a);
        for (uint32_t k : live) c.v[k] = MoodValue::Reference(col[batch.RowAt(k)]);
        break;
      }
      case OpCode::kLoadAttr: {
        const AttrRef& ar = attrs_[ins.b];
        BatchScratch::Col& c = push();
        const Oid* col = batch.col(ins.a);
        size_t w = 0;
        for (uint32_t k : live) {
          auto r = objects_->GetAttributeByOrdinal(col[batch.RowAt(k)], *ar.layout,
                                                   ar.ordinal, cache);
          if (!r.ok()) {
            if (r.status().IsNotFound()) {
              s->flags[k] = kRowFallback;
            } else {
              fail(k, r.status());
            }
            continue;
          }
          c.v[k] = std::move(r).value();
          live[w++] = k;
        }
        live.resize(w);
        break;
      }
      case OpCode::kDerefAttr: {
        const AttrRef& ar = attrs_[ins.b];
        BatchScratch::Col& c = s->stack[s->top - 1];
        if (c.v.size() < n) c.v.resize(n);
        size_t w = 0;
        for (uint32_t k : live) {
          const MoodValue& v = val(c, k);
          if (v.is_null()) {
            c.v[k] = MoodValue::Null();
            live[w++] = k;
            continue;
          }
          if (v.IsCollection()) {
            s->flags[k] = kRowFallback;
            continue;
          }
          if (v.kind() != ValueKind::kReference) {
            fail(k, Status::TypeError("path step '" + ar.name +
                                      "' applied to a non-reference value"));
            continue;
          }
          auto r = objects_->GetAttributeByOrdinal(v.AsReference(), *ar.layout,
                                                   ar.ordinal, cache);
          if (!r.ok()) {
            if (r.status().IsNotFound()) {
              s->flags[k] = kRowFallback;
            } else {
              fail(k, r.status());
            }
            continue;
          }
          c.v[k] = std::move(r).value();
          live[w++] = k;
        }
        c.is_const = false;
        live.resize(w);
        break;
      }
      case OpCode::kBinaryArith: {
        BatchScratch::Col& rhs = s->stack[s->top - 1];
        BatchScratch::Col& lhs = s->stack[s->top - 2];
        if (lhs.v.size() < n) lhs.v.resize(n);
        size_t w = 0;
        for (uint32_t k : live) {
          OperandDataType x = OperandDataType::FromValue(val(lhs, k));
          OperandDataType y = OperandDataType::FromValue(val(rhs, k));
          OperandDataType r(DataTypeCode::kInt32);
          switch (static_cast<BinaryOp>(ins.a)) {
            case BinaryOp::kAdd: r = x + y; break;
            case BinaryOp::kSub: r = x - y; break;
            case BinaryOp::kMul: r = x * y; break;
            case BinaryOp::kDiv: r = x / y; break;
            case BinaryOp::kMod: r = x % y; break;
            default:
              fail(k, Status::Internal("unhandled binary operator"));
              continue;
          }
          auto out = r.ToValue();
          if (!out.ok()) {
            fail(k, out.status());
            continue;
          }
          lhs.v[k] = std::move(out).value();
          live[w++] = k;
        }
        lhs.is_const = false;
        live.resize(w);
        s->top--;
        break;
      }
      case OpCode::kCompare: {
        BatchScratch::Col& rhs = s->stack[s->top - 1];
        BatchScratch::Col& lhs = s->stack[s->top - 2];
        if (lhs.v.size() < n) lhs.v.resize(n);
        size_t w = 0;
        for (uint32_t k : live) {
          auto b = Evaluator::Compare(static_cast<BinaryOp>(ins.a), val(lhs, k),
                                      val(rhs, k));
          if (!b.ok()) {
            fail(k, b.status());
            continue;
          }
          lhs.v[k] = MoodValue::Boolean(b.value());
          live[w++] = k;
        }
        lhs.is_const = false;
        live.resize(w);
        s->top--;
        break;
      }
      case OpCode::kUnary: {
        BatchScratch::Col& c = s->stack[s->top - 1];
        if (c.v.size() < n) c.v.resize(n);
        size_t w = 0;
        for (uint32_t k : live) {
          OperandDataType o = OperandDataType::FromValue(val(c, k));
          auto r = static_cast<UnaryOp>(ins.a) == UnaryOp::kNeg ? (-o).ToValue()
                                                                : (!o).ToValue();
          if (!r.ok()) {
            fail(k, r.status());
            continue;
          }
          c.v[k] = std::move(r).value();
          live[w++] = k;
        }
        c.is_const = false;
        live.resize(w);
        break;
      }
      case OpCode::kCoerceBool: {
        BatchScratch::Col& c = s->stack[s->top - 1];
        if (c.v.size() < n) c.v.resize(n);
        size_t w = 0;
        for (uint32_t k : live) {
          OperandDataType o = OperandDataType::FromValue(val(c, k));
          auto b = o.AsBool();
          if (!b.ok()) {
            fail(k, b.status());
            continue;
          }
          c.v[k] = MoodValue::Boolean(b.value());
          live[w++] = k;
        }
        c.is_const = false;
        live.resize(w);
        break;
      }
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue:
        // Unreachable: has_jumps() routed jumpful programs to the row machine.
        break;
    }
  }

  if (s->top != 1) {
    Status st = Status::Internal("expression program stack imbalance");
    for (uint32_t k : live) fail(k, st);
    return;
  }
  BatchScratch::Col& res = s->stack[0];
  for (uint32_t k : live) {
    s->values[k] = res.is_const ? res.cval : std::move(res.v[k]);
  }
}

void ExprProgram::EvalPredicateBatch(const RowBatch& batch, DerefCache* cache,
                                     BatchScratch* s) const {
  EvalBatch(batch, cache, s);
  const size_t n = batch.ActiveRows();
  s->keep.assign(n, 0);
  for (size_t k = 0; k < n; k++) {
    if (s->flags[k] != kRowOk) continue;
    const MoodValue& v = s->values[k];
    if (v.is_null()) continue;  // null => false, as in EvalPredicate
    auto b = OperandDataType::FromValue(v).AsBool();
    if (!b.ok()) {
      s->flags[k] = kRowError;
      s->errors[k] = b.status();
      continue;
    }
    s->keep[k] = b.value() ? 1 : 0;
  }
}

std::string ExprProgram::ToString() const {
  std::string out;
  char buf[64];
  auto op_name = [](OpCode op) -> const char* {
    switch (op) {
      case OpCode::kPushConst: return "PushConst";
      case OpCode::kLoadSlot: return "LoadSlot";
      case OpCode::kLoadAttr: return "LoadAttr";
      case OpCode::kDerefAttr: return "DerefAttr";
      case OpCode::kBinaryArith: return "Arith";
      case OpCode::kCompare: return "Compare";
      case OpCode::kUnary: return "Unary";
      case OpCode::kJumpIfFalse: return "JumpIfFalse";
      case OpCode::kJumpIfTrue: return "JumpIfTrue";
      case OpCode::kCoerceBool: return "CoerceBool";
      case OpCode::kLoadParam: return "LoadParam";
    }
    return "?";
  };
  for (size_t i = 0; i < code_.size(); i++) {
    const Instr& ins = code_[i];
    std::snprintf(buf, sizeof(buf), "%04zu %-11s ", i, op_name(ins.op));
    out += buf;
    switch (ins.op) {
      case OpCode::kPushConst: {
        const MoodValue& c = consts_[ins.a];
        std::snprintf(buf, sizeof(buf), "c%u ", ins.a);
        out += buf;
        out += ValueKindName(c.kind());
        out += "(" + c.ToString() + ")";
        break;
      }
      case OpCode::kLoadSlot:
        std::snprintf(buf, sizeof(buf), "s%u", ins.a);
        out += buf;
        break;
      case OpCode::kLoadAttr: {
        const AttrRef& ar = attrs_[ins.b];
        std::snprintf(buf, sizeof(buf), "s%u a%u ", ins.a, ins.b);
        out += buf;
        out += "(" + ar.layout->class_name + "." + ar.name + ")";
        break;
      }
      case OpCode::kDerefAttr: {
        const AttrRef& ar = attrs_[ins.b];
        std::snprintf(buf, sizeof(buf), "a%u ", ins.b);
        out += buf;
        out += "(" + ar.layout->class_name + "." + ar.name + ")";
        break;
      }
      case OpCode::kBinaryArith:
      case OpCode::kCompare:
        out += BinaryOpName(static_cast<BinaryOp>(ins.a));
        break;
      case OpCode::kUnary:
        out += static_cast<UnaryOp>(ins.a) == UnaryOp::kNeg ? "-" : "NOT";
        break;
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue:
        std::snprintf(buf, sizeof(buf), "-> %04u", ins.a);
        out += buf;
        break;
      case OpCode::kLoadParam:
        std::snprintf(buf, sizeof(buf), "?%u", ins.a + 1);
        out += buf;
        break;
      case OpCode::kCoerceBool:
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace mood
