#include "storage/buffer_pool.h"

namespace mood {

BufferPool::BufferPool(DiskManager* disk, size_t pool_size)
    : disk_(disk), frames_(pool_size) {
  for (size_t i = 0; i < pool_size; i++) free_frames_.push_back(i);
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.front();
    free_frames_.pop_front();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all pages pinned");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  lru_pos_.erase(idx);
  Page& victim = frames_[idx];
  if (victim.dirty()) {
    if (pre_flush_hook_) MOOD_RETURN_IF_ERROR(pre_flush_hook_(victim));
    MOOD_RETURN_IF_ERROR(disk_->WritePage(victim.page_id(), victim.data()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  page_table_.erase(victim.page_id());
  return idx;
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    size_t idx = it->second;
    Page& page = frames_[idx];
    if (page.pin_count() == 0) {
      // Remove from the evictable LRU list while pinned.
      auto pos = lru_pos_.find(idx);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
    }
    page.Pin();
    return &page;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  MOOD_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Page& page = frames_[idx];
  page.Reset(page_id);
  MOOD_RETURN_IF_ERROR(disk_->ReadPage(page_id, page.data()));
  page.Pin();
  page_table_[page_id] = idx;
  return &page;
}

Result<Page*> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  MOOD_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  MOOD_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Page& page = frames_[idx];
  page.Reset(page_id);
  page.Pin();
  page.set_dirty(true);
  page_table_[page_id] = idx;
  return &page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::InvalidArgument("UnpinPage: page not resident");
  }
  size_t idx = it->second;
  Page& page = frames_[idx];
  if (page.pin_count() <= 0) {
    return Status::Internal("UnpinPage: pin count underflow");
  }
  if (dirty) page.set_dirty(true);
  page.Unpin();
  if (page.pin_count() == 0) {
    lru_.push_back(idx);
    lru_pos_[idx] = std::prev(lru_.end());
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page& page = frames_[it->second];
  if (page.dirty()) {
    if (pre_flush_hook_) MOOD_RETURN_IF_ERROR(pre_flush_hook_(page));
    MOOD_RETURN_IF_ERROR(disk_->WritePage(page.page_id(), page.data()));
    page.set_dirty(false);
  }
  return Status::OK();
}

size_t BufferPool::PinnedPageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pinned = 0;
  for (const auto& [page_id, idx] : page_table_) {
    if (frames_[idx].pin_count() > 0) pinned++;
  }
  return pinned;
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [page_id, idx] : page_table_) {
    Page& page = frames_[idx];
    if (page.dirty()) {
      if (pre_flush_hook_) MOOD_RETURN_IF_ERROR(pre_flush_hook_(page));
      MOOD_RETURN_IF_ERROR(disk_->WritePage(page.page_id(), page.data()));
      page.set_dirty(false);
    }
  }
  return Status::OK();
}

}  // namespace mood
