#include <gtest/gtest.h>

#include <functional>

#include "common/random.h"
#include "sql/dnf.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mood {
namespace {

TEST(LexerTest, TokenizesKeywordsIdentifiersLiterals) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto toks,
                            Lexer::Tokenize("SELECT v FROM Vehicle v WHERE v.id = 42"));
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].type, TokenType::kKeyword);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].text, "v");
  // Keywords are case-insensitive, identifiers keep case.
  MOOD_ASSERT_OK_AND_ASSIGN(auto toks2, Lexer::Tokenize("select Foo"));
  EXPECT_EQ(toks2[0].text, "SELECT");
  EXPECT_EQ(toks2[1].text, "Foo");
}

TEST(LexerTest, NumbersAndStrings) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto toks, Lexer::Tokenize("12 3.5 6.25e-2 'it''s'"));
  EXPECT_EQ(toks[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(toks[0].int_value, 12);
  EXPECT_EQ(toks[1].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 6.25e-2);
  EXPECT_EQ(toks[3].type, TokenType::kStringLiteral);
  EXPECT_EQ(toks[3].text, "it's");
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto toks, Lexer::Tokenize("<> <= >= < > = :: :"));
  EXPECT_EQ(toks[0].type, TokenType::kNe);
  EXPECT_EQ(toks[1].type, TokenType::kLe);
  EXPECT_EQ(toks[2].type, TokenType::kGe);
  EXPECT_EQ(toks[3].type, TokenType::kLAngle);
  EXPECT_EQ(toks[4].type, TokenType::kRAngle);
  EXPECT_EQ(toks[5].type, TokenType::kEq);
  EXPECT_EQ(toks[6].type, TokenType::kColonColon);
  EXPECT_EQ(toks[7].type, TokenType::kColon);
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Lexer::Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Lexer::Tokenize("price $ 5").status().IsParseError());
}

TEST(ParserTest, PaperQuerySection31) {
  // The paper's Section 3.1 example query.
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::Parse("SELECT c FROM EVERY Automobile - JapaneseAuto c, VehicleEngine v "
                    "WHERE c.drivetrain.transmission = 'AUTOMATIC' AND "
                    "c.drivetrain.engine = v AND v.cylinders > 4"));
  auto& select = std::get<SelectStmt>(stmt);
  ASSERT_EQ(select.from.size(), 2u);
  EXPECT_TRUE(select.from[0].every);
  EXPECT_EQ(select.from[0].class_name, "Automobile");
  EXPECT_EQ(select.from[0].excludes, std::vector<std::string>{"JapaneseAuto"});
  EXPECT_EQ(select.from[0].var, "c");
  EXPECT_FALSE(select.from[1].every);
  ASSERT_NE(select.where, nullptr);
  // Top is AND of three predicates (left-assoc).
  EXPECT_EQ(select.where->op, BinaryOp::kAnd);
}

TEST(ParserTest, PaperExample81Query) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::Parse("Select v From Vehicle v where v.company.name = 'BMW' and "
                    "v.drivetrain.engine.cylinders = 2"));
  auto& select = std::get<SelectStmt>(stmt);
  ASSERT_EQ(select.projection.size(), 1u);
  EXPECT_EQ(select.projection[0]->ToString(), "v");
  EXPECT_EQ(select.where->lhs->ToString(), "(v.company.name = 'BMW')");
}

TEST(ParserTest, GroupByBeforeWhereAsInPaperGrammar) {
  // The paper's grammar lists GROUP BY before WHERE.
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::Parse("SELECT v.weight FROM Vehicle v GROUP BY v.weight HAVING "
                    "v.weight > 10 WHERE v.id > 0 ORDER BY v.weight DESC"));
  auto& select = std::get<SelectStmt>(stmt);
  EXPECT_EQ(select.group_by.size(), 1u);
  ASSERT_NE(select.having, nullptr);
  ASSERT_NE(select.where, nullptr);
  ASSERT_EQ(select.order_by.size(), 1u);
  EXPECT_FALSE(select.order_by[0].ascending);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::Parse("SELECT v FROM Vehicle v WHERE v.weight BETWEEN 10 AND 20"));
  auto& select = std::get<SelectStmt>(stmt);
  EXPECT_EQ(select.where->ToString(), "((v.weight >= 10) AND (v.weight <= 20))");
}

TEST(ParserTest, ArithmeticPrecedence) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement stmt, Parser::Parse("SELECT v FROM V v WHERE v.a + v.b * 2 > -v.c"));
  auto& select = std::get<SelectStmt>(stmt);
  EXPECT_EQ(select.where->ToString(), "((v.a + (v.b * 2)) > -(v.c))");
}

TEST(ParserTest, MethodCallsInPaths) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::Parse("SELECT v.lbweight() FROM Vehicle v WHERE v.scale(2, v.id) > 5"));
  auto& select = std::get<SelectStmt>(stmt);
  EXPECT_EQ(select.projection[0]->ToString(), "v.lbweight()");
  EXPECT_EQ(select.where->lhs->ToString(), "v.scale(2, v.id)");
}

TEST(ParserTest, CreateClassFull) {
  MOOD_ASSERT_OK_AND_ASSIGN(Statement stmt, Parser::Parse(R"(
      CREATE CLASS Vehicle
        TUPLE (
          id Integer,
          weight Integer,
          drivetrain REFERENCE (VehicleDriveTrain),
          tags SET (String(8)),
          history LIST (REFERENCE (Event)),
        )
        METHODS:
          lbweight () Integer,
          rename (n String(32)) Boolean)"));
  auto& cc = std::get<CreateClassStmt>(stmt);
  EXPECT_EQ(cc.def.name, "Vehicle");
  ASSERT_EQ(cc.def.attributes.size(), 5u);
  EXPECT_EQ(cc.def.attributes[2].type->ToString(), "REFERENCE (VehicleDriveTrain)");
  EXPECT_EQ(cc.def.attributes[3].type->ToString(), "SET (String(8))");
  EXPECT_EQ(cc.def.attributes[4].type->ToString(), "LIST (REFERENCE (Event))");
  ASSERT_EQ(cc.def.methods.size(), 2u);
  EXPECT_EQ(cc.def.methods[0].name, "lbweight");
  EXPECT_TRUE(cc.def.methods[0].params.empty());
  ASSERT_EQ(cc.def.methods[1].params.size(), 1u);
  EXPECT_EQ(cc.def.methods[1].params[0].name, "n");
}

TEST(ParserTest, CreateClassInherits) {
  MOOD_ASSERT_OK_AND_ASSIGN(Statement stmt,
                            Parser::Parse("CREATE CLASS JapaneseAuto INHERITS FROM "
                                          "Automobile"));
  auto& cc = std::get<CreateClassStmt>(stmt);
  EXPECT_EQ(cc.def.supers, std::vector<std::string>{"Automobile"});
  EXPECT_TRUE(cc.def.attributes.empty());
}

TEST(ParserTest, NewObjectStatement) {
  // The MoodView protocol example from Section 9.4.
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::Parse("new Employee <'Budak Arpinar', 'Computer Engineer', 1969>"));
  auto& n = std::get<NewObjectStmt>(stmt);
  EXPECT_EQ(n.class_name, "Employee");
  ASSERT_EQ(n.values.size(), 3u);
  EXPECT_EQ(n.values[2]->literal.AsInteger(), 1969);
  // With a persistent name.
  MOOD_ASSERT_OK_AND_ASSIGN(Statement stmt2,
                            Parser::Parse("NEW Employee <'X', 'Y', 1> AS boss"));
  EXPECT_EQ(std::get<NewObjectStmt>(stmt2).bind_name, "boss");
}

TEST(ParserTest, UpdateDeleteCreateIndexDrop) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement u,
      Parser::Parse("UPDATE Vehicle v SET weight = v.weight + 1 WHERE v.id = 3"));
  EXPECT_EQ(std::get<UpdateStmt>(u).assignments.size(), 1u);

  MOOD_ASSERT_OK_AND_ASSIGN(Statement d,
                            Parser::Parse("DELETE FROM Vehicle v WHERE v.id = 3"));
  EXPECT_EQ(std::get<DeleteStmt>(d).class_name, "Vehicle");

  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement i, Parser::Parse("CREATE UNIQUE INDEX v_id ON Vehicle(id) USING BTREE"));
  auto& ci = std::get<CreateIndexStmt>(i);
  EXPECT_TRUE(ci.unique);
  EXPECT_EQ(ci.kind, IndexKind::kBTree);

  MOOD_ASSERT_OK_AND_ASSIGN(
      Statement p,
      Parser::Parse("CREATE INDEX p ON Vehicle(drivetrain.engine.cylinders)"));
  EXPECT_EQ(std::get<CreateIndexStmt>(p).kind, IndexKind::kPath);

  MOOD_ASSERT_OK_AND_ASSIGN(Statement j,
                            Parser::Parse("CREATE INDEX b ON Vehicle(company) USING JOININDEX"));
  EXPECT_EQ(std::get<CreateIndexStmt>(j).kind, IndexKind::kBinaryJoin);

  MOOD_ASSERT_OK_AND_ASSIGN(Statement dr, Parser::Parse("DROP CLASS Vehicle"));
  EXPECT_EQ(std::get<DropClassStmt>(dr).class_name, "Vehicle");
}

TEST(ParserTest, ScriptsAndErrors) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto stmts, Parser::ParseScript("CREATE CLASS A TUPLE (x Integer); "
                                      "SELECT a FROM A a;"));
  EXPECT_EQ(stmts.size(), 2u);
  EXPECT_TRUE(Parser::Parse("SELECT").status().IsParseError());
  EXPECT_TRUE(Parser::Parse("SELECT v FROM").status().IsParseError());
  EXPECT_TRUE(Parser::Parse("FOO BAR").status().IsParseError());
  EXPECT_TRUE(Parser::Parse("SELECT v FROM V v extra junk").status().IsParseError());
}

TEST(ParserTest, ParseExpression) {
  MOOD_ASSERT_OK_AND_ASSIGN(ExprPtr e, Parser::ParseExpression("weight * 2.2075"));
  EXPECT_EQ(e->ToString(), "(weight * 2.207500)");
  EXPECT_TRUE(Parser::ParseExpression("1 +").status().IsParseError());
}

// --- DNF ---------------------------------------------------------------------

ExprPtr PathExpr(const std::string& var, const std::string& attr) {
  return Expr::Path(var, {PathStep{attr, false, {}}});
}
ExprPtr Cmp(BinaryOp op, ExprPtr lhs, int32_t c) {
  return Expr::Binary(op, std::move(lhs), Expr::Literal(MoodValue::Integer(c)));
}

TEST(DnfTest, FoldsConstantSubtrees) {
  // (1 + 2) * 3 = 9.
  ExprPtr e = Expr::Binary(
      BinaryOp::kMul,
      Expr::Binary(BinaryOp::kAdd, Expr::Literal(MoodValue::Integer(1)),
                   Expr::Literal(MoodValue::Integer(2))),
      Expr::Literal(MoodValue::Integer(3)));
  MOOD_ASSERT_OK_AND_ASSIGN(ExprPtr folded, FoldConstants(e));
  ASSERT_EQ(folded->kind, ExprKind::kLiteral);
  EXPECT_EQ(folded->literal.AsInteger(), 9);
}

TEST(DnfTest, PushNotDownNegatesComparisons) {
  ExprPtr e = Expr::Unary(
      UnaryOp::kNot,
      Expr::Binary(BinaryOp::kAnd, Cmp(BinaryOp::kLt, PathExpr("v", "a"), 1),
                   Cmp(BinaryOp::kEq, PathExpr("v", "b"), 2)));
  ExprPtr out = PushNotDown(e);
  EXPECT_EQ(out->ToString(), "((v.a >= 1) OR (v.b <> 2))");
  // Double negation cancels.
  ExprPtr dbl = Expr::Unary(UnaryOp::kNot, Expr::Unary(UnaryOp::kNot,
                                                       Cmp(BinaryOp::kEq, PathExpr("v", "a"), 1)));
  EXPECT_EQ(PushNotDown(dbl)->ToString(), "(v.a = 1)");
}

TEST(DnfTest, DistributesAndOverOr) {
  // (a=1 OR b=2) AND (c=3 OR d=4) -> 4 AND-terms.
  ExprPtr e = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kOr, Cmp(BinaryOp::kEq, PathExpr("v", "a"), 1),
                   Cmp(BinaryOp::kEq, PathExpr("v", "b"), 2)),
      Expr::Binary(BinaryOp::kOr, Cmp(BinaryOp::kEq, PathExpr("v", "c"), 3),
                   Cmp(BinaryOp::kEq, PathExpr("v", "d"), 4)));
  auto terms = ToDnf(e);
  ASSERT_EQ(terms.size(), 4u);
  for (const auto& term : terms) EXPECT_EQ(term.size(), 2u);
}

TEST(DnfTest, SimpleConjunctionIsOneTerm) {
  ExprPtr e = Expr::Binary(BinaryOp::kAnd, Cmp(BinaryOp::kEq, PathExpr("v", "a"), 1),
                           Cmp(BinaryOp::kGt, PathExpr("v", "b"), 2));
  auto terms = ToDnf(e);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0].size(), 2u);
}

/// Property: DNF is logically equivalent to the original under random boolean
/// assignments of the leaf comparisons.
TEST(DnfTest, EquivalenceProperty) {
  Random rng(2024);
  const int kLeaves = 5;
  for (int trial = 0; trial < 60; trial++) {
    // Random boolean expression tree over leaves L0..L4 (encoded as v.a0=1...).
    std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
      if (depth == 0 || rng.OneIn(3)) {
        int leaf = static_cast<int>(rng.Uniform(kLeaves));
        return Cmp(BinaryOp::kEq, PathExpr("v", "a" + std::to_string(leaf)), 1);
      }
      switch (rng.Uniform(3)) {
        case 0: return Expr::Binary(BinaryOp::kAnd, gen(depth - 1), gen(depth - 1));
        case 1: return Expr::Binary(BinaryOp::kOr, gen(depth - 1), gen(depth - 1));
        default: return Expr::Unary(UnaryOp::kNot, gen(depth - 1));
      }
    };
    ExprPtr e = gen(3);
    auto dnf_res = NormalizePredicate(e);
    ASSERT_TRUE(dnf_res.ok());
    const auto& dnf = dnf_res.value();

    // Evaluate both forms under every assignment of 5 leaves.
    std::function<bool(const ExprPtr&, uint32_t)> eval = [&](const ExprPtr& x,
                                                             uint32_t bits) -> bool {
      switch (x->kind) {
        case ExprKind::kBinary:
          if (x->op == BinaryOp::kAnd) return eval(x->lhs, bits) && eval(x->rhs, bits);
          if (x->op == BinaryOp::kOr) return eval(x->lhs, bits) || eval(x->rhs, bits);
          if (x->op == BinaryOp::kEq || x->op == BinaryOp::kNe) {
            // Leaf comparison v.aK = 1 (or its negation <>).
            int leaf = x->lhs->steps[0].name[1] - '0';
            bool truth = (bits >> leaf) & 1;
            return x->op == BinaryOp::kEq ? truth : !truth;
          }
          ADD_FAILURE() << "unexpected op";
          return false;
        case ExprKind::kUnary:
          return !eval(x->operand, bits);
        default:
          ADD_FAILURE() << "unexpected kind";
          return false;
      }
    };
    for (uint32_t bits = 0; bits < (1u << kLeaves); bits++) {
      bool original = eval(e, bits);
      bool dnf_val = false;
      for (const auto& term : dnf) {
        bool all = true;
        for (const auto& p : term) all = all && eval(p, bits);
        if (all) {
          dnf_val = true;
          break;
        }
      }
      ASSERT_EQ(original, dnf_val) << "trial " << trial << " bits " << bits;
    }
  }
}

}  // namespace
}  // namespace mood
