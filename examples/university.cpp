// A second domain: a university schema with multiple inheritance (the
// TeachingAssistant diamond-free mixin case), set-valued reference attributes
// with fan-out queries, schema evolution through the catalog, and the C++
// bridge (the modified-cfront path of Figure 2.1): the schema below is defined
// from a C++ header, not DDL.

#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "moodview/cpp_bridge.h"

using namespace mood;

namespace {
void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto dir = std::filesystem::temp_directory_path() / "mood_university";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Database db;
  Die(db.Open((dir / "uni").string()), "open");

  // --- Data definition in C++ (Figure 9.1(b)): the header is parsed and its
  // --- declarations land in the catalog exactly like DDL.
  const char* header = R"cpp(
    class Course {
     public:
      char code[16];
      int credits;
      int workload();
    };
    int Course::workload() { return credits * 3; }

    class Person {
     public:
      char name[64];
      int age;
    };
    class Student : public Person {
     public:
      int year;
      Set<Course*> enrolled;
    };
    class Instructor : public Person {
     public:
      char department[32];
      List<Course*> teaches;
    };
  )cpp";
  auto defs = CppBridge::ParseHeader(header);
  Die(defs.status(), "parse header");
  for (const auto& def : defs.value()) {
    Die(db.catalog()->Define(def).status(), ("define " + def.name).c_str());
  }
  // Multiple inheritance: a TA is both a Student and an Instructor (attribute
  // sets are disjoint since Person comes in via Student only here — define the
  // mixin without re-inheriting Person).
  Die(db.ExecuteScript(R"SQL(
      CREATE CLASS Stipend TUPLE (monthly Integer);
  )SQL").status(), "stipend");

  std::printf("%s", db.schema_browser()->RenderHierarchy().value().c_str());
  std::printf("\n-- generated C++ for Student (round-trip through the catalog)\n%s",
              CppBridge::GenerateHeader(*db.catalog(), "Student").value().c_str());

  // --- Populate.
  std::vector<Oid> courses;
  const char* codes[] = {"CENG302", "CENG436", "MATH119", "PHYS105"};
  for (int i = 0; i < 4; i++) {
    courses.push_back(db.objects()
                          ->CreateObject("Course",
                                         MoodValue::Tuple({MoodValue::String(codes[i]),
                                                           MoodValue::Integer(3 + i % 2)}))
                          .value());
  }
  for (int i = 0; i < 12; i++) {
    MoodValue::ValueList enrolled;
    for (int c = 0; c <= i % 3; c++) {
      enrolled.push_back(MoodValue::Reference(courses[(i + c) % 4]));
    }
    Die(db.objects()
            ->CreateObject("Student",
                           MoodValue::Tuple({MoodValue::String("student" + std::to_string(i)),
                                             MoodValue::Integer(19 + i % 6),
                                             MoodValue::Integer(1 + i % 4),
                                             MoodValue::Set(std::move(enrolled))}))
            .status(),
        "student");
  }
  Die(db.objects()
          ->CreateObject("Instructor",
                         MoodValue::Tuple({MoodValue::String("Prof. Ozkarahan"),
                                           MoodValue::Integer(55),
                                           MoodValue::String("CENG"),
                                           MoodValue::List({MoodValue::Reference(courses[0]),
                                                            MoodValue::Reference(courses[1])})}))
          .status(),
      "instructor");
  Die(db.CollectAllStatistics(), "stats");

  // --- Fan-out path query: students enrolled in any 4-credit course. The
  // set-valued `enrolled` attribute gives the path existential semantics.
  auto q1 = db.Query(
      "SELECT s.name FROM Student s WHERE s.enrolled.credits = 4 ORDER BY s.name");
  Die(q1.status(), "fanout query");
  std::printf("\n-- students with a 4-credit course\n%s", q1.value().ToString().c_str());

  // Methods through the interpreted fallback (workload body came from C++).
  auto q2 = db.Query("SELECT c.code, c.workload() FROM Course c ORDER BY c.code");
  Die(q2.status(), "method query");
  std::printf("\n-- course workloads (interpreted C++ body)\n%s",
              q2.value().ToString().c_str());

  // EVERY over the Person hierarchy.
  auto q3 = db.Query("SELECT p.name FROM EVERY Person p WHERE p.age > 30");
  Die(q3.status(), "every query");
  std::printf("\n-- persons over 30 (EVERY Person): %zu\n", q3.value().rows.size());

  // --- Schema evolution (MoodView's class designer): add an attribute, old
  // objects read the default; rename it; show the updated designer table.
  Die(db.catalog()->AddAttribute("Student", {"gpa", TypeDesc::Basic(BasicType::kFloat)}),
      "add attribute");
  auto q4 = db.Query("SELECT s.name, s.gpa FROM Student s WHERE s.year = 1");
  Die(q4.status(), "evolved query");
  std::printf("\n-- after adding Student.gpa (defaults for old objects)\n%s",
              q4.value().ToString(3).c_str());
  Die(db.Execute("UPDATE Student s SET gpa = 3.5 WHERE s.year = 1").status(), "update");
  std::printf("\n%s", db.schema_browser()->RenderAttributeTable("Student").value().c_str());

  Die(db.Close(), "close");
  std::filesystem::remove_all(dir);
  std::printf("\nuniversity example finished.\n");
  return 0;
}
