#include "sql/binder.h"

#include <functional>

namespace mood {

std::string BoundPath::ToString() const {
  std::string out = range_var;
  for (const auto& s : steps) {
    out += "." + s.name;
    if (s.is_call) out += "()";
  }
  return out;
}

Result<BoundQuery> Binder::Bind(const SelectStmt& stmt) const {
  BoundQuery query;
  query.stmt = stmt;
  for (const auto& fe : stmt.from) {
    MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(fe.class_name));
    if (!type->is_class) {
      return Status::CatalogError("FROM requires a class with an extent, '" +
                                  fe.class_name + "' is a value type");
    }
    for (const auto& ex : fe.excludes) {
      if (!catalog_->IsSubclassOf(ex, fe.class_name)) {
        return Status::CatalogError("'" + ex + "' is not a subclass of '" +
                                    fe.class_name + "'");
      }
    }
    if (fe.var.empty()) return Status::ParseError("FROM entry missing range variable");
    if (query.range_vars.count(fe.var)) {
      return Status::ParseError("duplicate range variable '" + fe.var + "'");
    }
    query.range_vars[fe.var] = fe;
    query.var_order.push_back(fe.var);
  }

  // Validate that every path in the statement resolves.
  std::function<Status(const ExprPtr&)> check = [&](const ExprPtr& e) -> Status {
    if (e == nullptr) return Status::OK();
    switch (e->kind) {
      case ExprKind::kLiteral:
      case ExprKind::kParameter:
        return Status::OK();
      case ExprKind::kPath: {
        MOOD_RETURN_IF_ERROR(ResolvePath(query, *e).status());
        for (const auto& s : e->steps) {
          for (const auto& arg : s.args) MOOD_RETURN_IF_ERROR(check(arg));
        }
        return Status::OK();
      }
      case ExprKind::kUnary:
        return check(e->operand);
      case ExprKind::kBinary:
        MOOD_RETURN_IF_ERROR(check(e->lhs));
        return check(e->rhs);
    }
    return Status::OK();
  };
  for (const auto& p : stmt.projection) MOOD_RETURN_IF_ERROR(check(p));
  MOOD_RETURN_IF_ERROR(check(stmt.where));
  for (const auto& g : stmt.group_by) MOOD_RETURN_IF_ERROR(check(g));
  MOOD_RETURN_IF_ERROR(check(stmt.having));
  for (const auto& o : stmt.order_by) MOOD_RETURN_IF_ERROR(check(o.expr));

  if (stmt.where) {
    MOOD_ASSIGN_OR_RETURN(query.where_dnf, NormalizePredicate(stmt.where));
  }
  if (stmt.having) {
    MOOD_ASSIGN_OR_RETURN(query.having_dnf, NormalizePredicate(stmt.having));
  }
  return query;
}

Result<BoundPath> Binder::ResolvePath(const BoundQuery& query, const Expr& path) const {
  if (path.kind != ExprKind::kPath) {
    return Status::InvalidArgument("not a path expression");
  }
  auto it = query.range_vars.find(path.range_var);
  if (it == query.range_vars.end()) {
    return Status::CatalogError("unknown range variable '" + path.range_var + "'");
  }
  return ResolveSteps(path.range_var, it->second.class_name, path.steps);
}

Result<BoundPath> Binder::ResolvePathFromClass(
    const std::string& class_name, const std::vector<std::string>& steps) const {
  std::vector<PathStep> path_steps;
  for (const auto& s : steps) path_steps.push_back(PathStep{s, false, {}});
  return ResolveSteps("<" + class_name + ">", class_name, path_steps);
}

Result<BoundPath> Binder::ResolveSteps(const std::string& var,
                                       const std::string& root_class,
                                       const std::vector<PathStep>& steps) const {
  BoundPath bound;
  bound.range_var = var;
  bound.steps = steps;
  bound.classes.push_back(root_class);

  if (steps.empty()) {
    bound.is_self = true;
    bound.terminal_type = TypeDesc::Reference(root_class);
    return bound;
  }
  if (steps.size() == 1 && !steps[0].is_call && steps[0].name == "self") {
    bound.is_self = true;
    bound.step_is_method.push_back(false);
    bound.terminal_type = TypeDesc::Reference(root_class);
    return bound;
  }

  std::string ctx = root_class;
  for (size_t i = 0; i < steps.size(); i++) {
    const PathStep& step = steps[i];
    const bool last = (i + 1 == steps.size());
    if (step.name == "self" && !step.is_call) {
      if (!last) return Status::CatalogError("'.self' must terminate a path");
      bound.step_is_method.push_back(false);
      bound.terminal_type = TypeDesc::Reference(ctx);
      bound.is_self = (steps.size() == 1);
      return bound;
    }

    // Attribute first; fall back to a method.
    TypeDescPtr step_type;
    bool is_method = false;
    MOOD_ASSIGN_OR_RETURN(auto attrs, catalog_->AllAttributes(ctx));
    for (const auto& a : attrs) {
      if (a.name == step.name) {
        step_type = a.type;
        break;
      }
    }
    if (step_type == nullptr) {
      auto fn = catalog_->ResolveFunction(ctx, step.name);
      if (!fn.ok()) {
        return Status::CatalogError("class '" + ctx + "' has no attribute or method '" +
                                    step.name + "'");
      }
      is_method = true;
      step_type = fn.value().second->return_type;
      if (!step.is_call && !fn.value().second->params.empty()) {
        return Status::CatalogError("method '" + step.name +
                                    "' requires arguments; call it explicitly");
      }
    } else if (step.is_call) {
      return Status::CatalogError("'" + step.name + "' is an attribute, not a method");
    }
    bound.step_is_method.push_back(is_method);

    // Unwrap Set/List of references (fan-out).
    TypeDescPtr effective = step_type;
    if (effective->kind() == ConstructorKind::kSet ||
        effective->kind() == ConstructorKind::kList) {
      bound.fans_out = true;
      effective = effective->element();
    }

    if (last) {
      bound.terminal_type = effective;
      if (effective->kind() == ConstructorKind::kReference) {
        MOOD_RETURN_IF_ERROR(catalog_->Lookup(effective->referenced_class()).status());
        bound.classes.push_back(effective->referenced_class());
      }
      return bound;
    }
    if (effective->kind() != ConstructorKind::kReference) {
      return Status::CatalogError("path step '" + step.name +
                                  "' is not a reference but the path continues");
    }
    ctx = effective->referenced_class();
    MOOD_RETURN_IF_ERROR(catalog_->Lookup(ctx).status());
    bound.classes.push_back(ctx);
  }
  return bound;
}

}  // namespace mood
