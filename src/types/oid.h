#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mood {

/// Object identifier: physical address of an object — (extent file, page, slot).
/// MOOD follows ESM in using physical OIDs; record forwarding in the heap file
/// keeps them stable across updates.
struct Oid {
  uint16_t file = 0;
  uint32_t page = 0xFFFFFFFFu;
  uint16_t slot = 0xFFFF;

  bool valid() const { return page != 0xFFFFFFFFu && slot != 0xFFFF; }

  uint64_t Pack() const {
    return (static_cast<uint64_t>(file) << 48) | (static_cast<uint64_t>(page) << 16) |
           slot;
  }
  static Oid Unpack(uint64_t v) {
    Oid o;
    o.file = static_cast<uint16_t>(v >> 48);
    o.page = static_cast<uint32_t>((v >> 16) & 0xFFFFFFFFu);
    o.slot = static_cast<uint16_t>(v & 0xFFFF);
    return o;
  }

  std::string ToString() const {
    return "oid(" + std::to_string(file) + ":" + std::to_string(page) + ":" +
           std::to_string(slot) + ")";
  }

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid&, const Oid&) = default;
};

inline constexpr Oid kNullOid{};

}  // namespace mood

template <>
struct std::hash<mood::Oid> {
  size_t operator()(const mood::Oid& o) const noexcept {
    return std::hash<uint64_t>()(o.Pack());
  }
};
