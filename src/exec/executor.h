#pragma once

#include <map>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "exec/expr_compile.h"
#include "exec/parallel.h"
#include "exec/row_batch.h"
#include "objects/object_manager.h"
#include "optimizer/optimizer.h"
#include "sql/evaluator.h"

namespace mood {

struct QueryProfile;
class MetricCounter;

/// Intermediate result: rows of range-variable bindings.
struct RowSet {
  std::vector<std::string> vars;
  std::vector<std::vector<Oid>> rows;

  int VarIndex(const std::string& var) const {
    for (size_t i = 0; i < vars.size(); i++) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Final query result: named columns of values.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<MoodValue>> rows;

  /// Aligned-table rendering (at most `limit` rows; 0 = all).
  std::string ToString(size_t limit = 0) const;
};

/// Per-call execution options. Every field defaults to "inherit the executor
/// default", so `ExecOptions{}` reproduces the configured behavior exactly;
/// callers override individual knobs per query without mutating shared state
/// (the Executor itself stays const and therefore safe for concurrent callers).
struct ExecOptions {
  /// Sentinel: use the executor's configured deref-cache capacity.
  static constexpr size_t kInheritCache = static_cast<size_t>(-1);
  /// Sentinel: use the executor's configured batch size.
  static constexpr size_t kInheritBatch = static_cast<size_t>(-1);

  /// Worker threads for this call; 0 = the executor default (set_threads).
  size_t threads = 0;
  /// Per-query Deref cache capacity in entries; kInheritCache = the executor
  /// default, 0 disables the cache for this call.
  size_t deref_cache_entries = kInheritCache;
  /// Rows per execution batch; kInheritBatch = the executor default, 0 runs
  /// the row-at-a-time path (the differential-testing oracle and the exact
  /// pre-batching behavior). Values above kMaxBatchRows are clamped.
  size_t batch_size = kInheritBatch;
  /// When non-null, per-operator actuals (rows in/out, morsels, wall time,
  /// buffer-pool deltas) are recorded as children of this node. Null (the
  /// default) skips every profiling hook behind a single inlined pointer test,
  /// so disabled profiling costs nothing measurable.
  QueryProfile* profile = nullptr;
  /// Lower WHERE/HAVING/SELECT-list expressions into bytecode programs once
  /// per operator instead of interpreting the Expr tree per row. Dynamic
  /// constructs keep the interpreted path regardless (see exec/expr_compile.h).
  bool compile_expressions = true;
  /// Bound values for `?` positional parameters, in placeholder order (owned
  /// by the caller for the duration of the call; null = none bound).
  const std::vector<MoodValue>* params = nullptr;
  /// Cross-execution memo of compiled programs, owned by a cached plan.
  /// Null (the default) compiles fresh per call.
  ProgramMemo* program_memo = nullptr;
  /// Reader snapshot for multi-version reads: when active, scans, fetches and
  /// index probes reconstruct the state as of `snapshot.csn` (see
  /// VersionStore). Inactive (default) reads latest — the embedded behavior.
  SnapshotView snapshot;
  /// MV delta maintenance: when set, the kBindClass leaf for `*bind_var`
  /// emits exactly `*bind_oids` (in the given order) instead of scanning its
  /// extent — re-deriving a view's output rows for just the delta objects.
  const std::string* bind_var = nullptr;
  const std::vector<Oid>* bind_oids = nullptr;
};

/// Executes physical plans produced by the optimizer, then applies the clause
/// pipeline of Figure 7.1: FROM -> WHERE -> GROUP BY -> HAVING -> SELECT
/// (projection) -> ORDER BY.
///
/// Operators run batch-at-a-time by default: they exchange fixed-size
/// RowBatches (column-major Oid slots plus a selection vector), expressions
/// evaluate through ExprProgram::EvalBatch's columnar loops, and the morsel
/// scheduler hands workers whole batches. batch_size = 0 selects the original
/// row-at-a-time operators — kept intact as the differential-testing oracle
/// (tests/batch_exec_test.cc proves the two paths produce identical results
/// and error statuses).
///
/// With threads > 1 the operators use morsel-driven intra-query parallelism:
/// extent scans partition into extent pages, filters and join probe sides into
/// fixed-size row morsels (whole batches in batch mode), and index selections
/// into per-probe tasks. Partial results are merged in morsel order, so the
/// produced RowSet is byte-identical to serial execution (the determinism
/// property parallel_exec_test asserts).
/// Only read paths run concurrently; the kernel structures underneath
/// (BufferPool, HeapFile/BpTree reads, FunctionManager invocation) are
/// concurrent-read safe, while Catalog/ObjectManager schema state must not be
/// mutated during a query (see DESIGN.md "Parallel query execution").
class Executor {
 public:
  Executor(ObjectManager* objects, Evaluator* evaluator, MoodAlgebra* algebra)
      : objects_(objects), evaluator_(evaluator), algebra_(algebra) {}

  /// Default worker-thread count for calls that do not pass ExecOptions;
  /// 1 reproduces the serial executor exactly, including its error behavior.
  /// Deprecated as a per-query knob: pass ExecOptions::threads instead of
  /// mutating this shared default mid-stream.
  void set_threads(size_t threads) { threads_ = threads == 0 ? 1 : threads; }
  size_t threads() const { return threads_; }

  /// Default capacity of the per-query Deref cache (entries); 0 disables it.
  /// One cache instance lives for the duration of each ExecutePlan /
  /// ExecuteSelect call and is shared by all of that query's morsel workers.
  /// Deprecated as a per-query knob: pass ExecOptions::deref_cache_entries.
  void set_deref_cache_capacity(size_t entries) { deref_cache_capacity_ = entries; }
  size_t deref_cache_capacity() const { return deref_cache_capacity_; }

  /// Default rows per execution batch; 0 = row-at-a-time (oracle mode).
  /// Deprecated as a per-query knob: pass ExecOptions::batch_size.
  void set_batch_size(size_t rows) { batch_size_ = ClampBatchSize(rows); }
  size_t batch_size() const { return batch_size_; }

  Result<RowSet> ExecutePlan(const PlanPtr& plan) const;
  Result<RowSet> ExecutePlan(const PlanPtr& plan, const ExecOptions& options) const;

  Result<QueryResult> ExecuteSelect(const QueryOptimizer::Optimized& optimized) const;
  Result<QueryResult> ExecuteSelect(const QueryOptimizer::Optimized& optimized,
                                    const ExecOptions& options) const;

  /// Evaluates the clause pipeline over an already-computed row set (used by the
  /// naive executor in bench_query_e2e).
  Result<QueryResult> FinishSelect(const SelectStmt& stmt, RowSet rows) const;

  /// Wires the exec.expr.* counters (registered by Database::Open): programs
  /// compiled, expressions left to / rows re-routed through the interpreter,
  /// and constant subtrees folded.
  void SetExprMetrics(MetricCounter* compiled, MetricCounter* fallback,
                      MetricCounter* folded) {
    expr_compiled_ = compiled;
    expr_fallback_ = fallback;
    expr_folded_ = folded;
  }

  /// Wires the exec.batch.* counters (registered by Database::Open): RowBatches
  /// produced by batch-mode operators and the live rows they carried. Both stay
  /// flat in row-at-a-time (batch_size = 0) mode.
  void SetBatchMetrics(MetricCounter* batches, MetricCounter* rows) {
    batch_batches_ = batches;
    batch_rows_ = rows;
  }

  /// EXPLAIN VERBOSE support: dry-run compiles each Filter/NestedLoop
  /// expression and stamps the node's `note` with "exprs: compiled" /
  /// "exprs: interpreted" (or "exprs: mixed").
  void AnnotateCompilation(PlanNode* plan,
                           const std::map<std::string, FromEntry>& range_vars) const;

 private:
  /// Per-call state threaded through the operator tree: resolved options plus
  /// the profile node operator children attach under (null = profiling off).
  struct Ctx {
    size_t threads = 1;
    size_t batch = 0;            ///< rows per batch; 0 = row-at-a-time operators
    DerefCache* cache = nullptr;
    QueryProfile* profile = nullptr;
    BufferPool* pool = nullptr;  ///< sampled for per-operator deltas when profiling
    bool compile = true;         ///< lower expressions to bytecode programs
    /// Range-variable declarations for plan-time slot/class binding (owned by
    /// the caller; null disables compilation for lack of static classes).
    const std::map<std::string, FromEntry>* range_vars = nullptr;
    /// Bound `?` parameter values for this call (null = none bound).
    const std::vector<MoodValue>* params = nullptr;
    /// Compiled-program memo of the (cached) plan being executed; null
    /// compiles fresh per call.
    ProgramMemo* program_memo = nullptr;
    /// Reader snapshot threaded down from ExecOptions (also attached to the
    /// per-query DerefCache so every cached deref is snapshot-aware).
    SnapshotView snapshot;
    /// MV delta restriction threaded down from ExecOptions (see bind_var).
    const std::string* bind_var = nullptr;
    const std::vector<Oid>* bind_oids = nullptr;
  };

  Result<RowSet> Exec(const PlanPtr& plan, Ctx& ctx) const;
  Result<RowSet> Dispatch(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecBind(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecIndexSelect(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecFilter(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecPointerJoin(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecNestedLoop(const PlanNode& node, Ctx& ctx) const;
  Result<RowSet> ExecUnion(const PlanNode& node, Ctx& ctx) const;

  Result<QueryResult> Finish(const SelectStmt& stmt, RowSet rows, Ctx& ctx) const;

  // Batch-at-a-time operator path (ctx.batch > 0). Mirrors the row operators
  // one for one; the row path above is kept verbatim as the oracle.
  Result<BatchSet> ExecB(const PlanPtr& plan, Ctx& ctx) const;
  Result<BatchSet> DispatchB(const PlanNode& node, Ctx& ctx) const;
  Result<BatchSet> ExecBindB(const PlanNode& node, Ctx& ctx) const;
  Result<BatchSet> ExecIndexSelectB(const PlanNode& node, Ctx& ctx) const;
  Result<BatchSet> ExecFilterB(const PlanNode& node, Ctx& ctx) const;
  Result<BatchSet> ExecPointerJoinB(const PlanNode& node, Ctx& ctx) const;
  Result<BatchSet> ExecNestedLoopB(const PlanNode& node, Ctx& ctx) const;
  Result<BatchSet> ExecUnionB(const PlanNode& node, Ctx& ctx) const;

  Result<QueryResult> FinishB(const SelectStmt& stmt, BatchSet rows, Ctx& ctx) const;

  /// Applies one predicate chain to a batch, rewriting its selection vector in
  /// place. Reproduces the serial row loop exactly: predicates run in order
  /// with short-circuit, fallback rows re-evaluate through a per-batch hoisted
  /// interpreter env, and the returned status is the error of the smallest row
  /// index that fails (rows at or past it are dropped from the selection —
  /// the serial loop never reached them).
  Status FilterBatch(const std::vector<ExprPtr>& preds,
                     const std::vector<ExprProgramPtr>& programs,
                     const std::vector<std::string>& vars, RowBatch* batch,
                     Ctx& ctx) const;

  /// Evaluates one clause expression for every live row of `bs` (row order),
  /// appending into `out`. Rows at or past `limit` are skipped (a smaller-row
  /// error in an earlier column already decided the query). On a row error,
  /// records its row index and status instead of filling the value.
  void EvalColumn(const ExprPtr& e, const ExprProgramPtr& prog, const BatchSet& bs,
                  size_t limit, Ctx& ctx, ExprProgram::BatchScratch* scratch,
                  std::vector<MoodValue>* out, size_t* err_row, Status* err) const;

  /// Column-wise evaluation of a clause's expression list with the serial
  /// loop's error ordering: the surfaced error is the candidate with the
  /// smallest (row, expression-index) — exactly what the row-outer,
  /// expression-inner serial loop hits first.
  Status EvalColumns(const std::vector<ExprPtr>& exprs,
                     const std::vector<ExprProgramPtr>& progs, const BatchSet& bs,
                     Ctx& ctx, std::vector<std::vector<MoodValue>>* cols) const;

  /// Resolves ExecOptions inherit-sentinels (threads, profiling pool handle)
  /// against the executor defaults. The deref-cache capacity resolves at the
  /// call sites because the cache itself lives on their stack.
  Ctx MakeCtx(const ExecOptions& options) const;

  Evaluator::Env EnvOf(const RowSet& rs, const std::vector<Oid>& row,
                       DerefCache* cache,
                       const std::vector<MoodValue>* params) const;

  /// Slot/class bindings for compiling expressions over rows shaped `vars`.
  /// Uses the ACTUAL RowSet var order for slot indices (PlanNode::BoundVars is
  /// sorted and may disagree with runtime row layout).
  ExprCompileEnv CompileEnvOf(const std::vector<std::string>& vars,
                              const std::map<std::string, FromEntry>* range_vars) const;

  /// Compiles one expression against `vars`, bumping the exec.expr.* counters.
  /// Null when compilation is off, the expression is null, or it uses a
  /// dynamic construct (callers then evaluate through the interpreter).
  ExprProgramPtr CompileExpr(const ExprPtr& expr, const std::vector<std::string>& vars,
                             const Ctx& ctx) const;

  void CountRuntimeFallback() const;

  /// Chases a reference path from an object, invoking `fn` for every reached
  /// object identifier (fan-out through set/list-valued reference attributes).
  Status ChaseRefs(Oid from, const std::vector<std::string>& path, DerefCache* cache,
                   const std::function<Status(Oid)>& fn) const;

  /// Shared probe/intersect step of kIndexSelect (both execution modes).
  Result<std::vector<Oid>> RunIndexProbes(const PlanNode& node, Ctx& ctx) const;

  /// True when any extent file a scan over `from` visits currently has live
  /// version chains — the trigger for snapshot compensation of index-backed
  /// operators (indexes always reflect the latest state, not the snapshot).
  Result<bool> SnapshotScanHasVersions(const FromEntry& from,
                                       const SnapshotView& snap) const;

  /// Snapshot-mode kIndexSelect fallback: scans the snapshot-visible extent
  /// and applies the probe predicates through the index key codec (identical
  /// comparison semantics to MoodAlgebra::IndSel), instead of consulting the
  /// latest-state index. Row order is scan order, not index order.
  Result<std::vector<Oid>> SnapshotProbeScan(const PlanNode& node, Ctx& ctx) const;

  ObjectManager* objects_;
  Evaluator* evaluator_;
  MoodAlgebra* algebra_;
  size_t threads_ = 1;
  size_t deref_cache_capacity_ = 4096;
  size_t batch_size_ = kDefaultBatchRows;
  MetricCounter* expr_compiled_ = nullptr;
  MetricCounter* expr_fallback_ = nullptr;
  MetricCounter* expr_folded_ = nullptr;
  MetricCounter* batch_batches_ = nullptr;
  MetricCounter* batch_rows_ = nullptr;
};

}  // namespace mood
