#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace mood {

/// What an armed failpoint does once triggered.
///   kError     return an injected IOError from the instrumented call
///   kTorn      perform a deliberately partial (torn) write, then return IOError
///   kCrash     abort() the process at the injection point
///   kTornCrash perform the partial write, then abort()
/// Torn modes are only meaningful at write sites (DiskManager::WritePage,
/// LogManager flush); elsewhere they degrade to kError/kCrash.
enum class FailPointMode : uint8_t { kError, kTorn, kCrash, kTornCrash };

struct FailPointAction {
  FailPointMode mode = FailPointMode::kError;
  bool torn() const {
    return mode == FailPointMode::kTorn || mode == FailPointMode::kTornCrash;
  }
  bool crash() const {
    return mode == FailPointMode::kCrash || mode == FailPointMode::kTornCrash;
  }
  /// The Status an error-returning site should surface.
  Status Error(const char* site) const {
    return Status::IOError(std::string("failpoint triggered at ") + site);
  }
};

/// Process-wide registry of named fault-injection points (DESIGN.md §9 lists
/// the catalog). Instrumented sites call CheckFailPoint("name"); the fast path
/// for an empty registry is a single relaxed atomic load, so production code
/// pays nothing when no point is armed.
///
/// Arming, via API or the MOOD_FAILPOINTS environment variable
/// (`name=spec[,name=spec...]`, parsed once at first use):
///   spec := mode["@" N]      mode in {error, torn, crash, torn-crash}
/// The point triggers on every hit from the N-th on (N defaults to 1), which
/// makes crash points one-shot by construction and error points persistent —
/// exactly what the kill-and-recover harness and the error-path unit tests
/// need. Thread-safe.
class FailPoints {
 public:
  static FailPoints& Instance();

  /// Arms (or re-arms) `name`. InvalidArgument on a malformed spec.
  Status Arm(const std::string& name, const std::string& spec);
  void Disarm(const std::string& name);
  void DisarmAll();

  /// Counts a hit of `name`; returns the action to take when armed and
  /// triggered, nullopt otherwise. Hits are only counted while armed.
  std::optional<FailPointAction> Check(const std::string& name);

  /// Hits recorded against `name` since it was armed (0 when not armed).
  uint64_t Hits(const std::string& name) const;

  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Point {
    FailPointMode mode = FailPointMode::kError;
    uint64_t trigger_at = 1;  // fires once hits >= trigger_at
    uint64_t hits = 0;
  };

  FailPoints();  // loads MOOD_FAILPOINTS

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Point>> points_;
  static std::atomic<int> armed_count_;
};

/// The instrumented-site entry point. Near-free when nothing is armed.
inline std::optional<FailPointAction> CheckFailPoint(const char* name) {
  if (!FailPoints::AnyArmed()) return std::nullopt;
  return FailPoints::Instance().Check(name);
}

}  // namespace mood
