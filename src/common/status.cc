#include "common/status.h"

namespace mood {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kCatalogError: return "CatalogError";
    case StatusCode::kFunctionError: return "FunctionError";
    case StatusCode::kTxnAborted: return "TxnAborted";
    case StatusCode::kDeadlock: return "Deadlock";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mood
