#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "obs/metrics.h"

namespace mood::bench {

/// Scratch database directory for a bench binary; removed on destruction.
class BenchDb {
 public:
  explicit BenchDb(const std::string& name) {
    dir_ = std::filesystem::temp_directory_path() / ("mood_bench_" + name);
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~BenchDb() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& file) const { return (dir_ / file).string(); }

 private:
  std::filesystem::path dir_;
};

/// Minimal fixed-width table printer for regenerating the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); c++) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&] {
      std::string out = "+";
      for (size_t c = 0; c < width.size(); c++) {
        out += std::string(width[c] + 2, '-') + "+";
      }
      std::printf("%s\n", out.c_str());
    };
    auto print_row = [&](const std::vector<std::string>& row) {
      std::string out = "|";
      for (size_t c = 0; c < width.size(); c++) {
        std::string cell = c < row.size() ? row[c] : "";
        out += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
      }
      std::printf("%s\n", out.c_str());
    };
    line();
    print_row(headers_);
    line();
    for (const auto& row : rows_) print_row(row);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSci(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// True when `--json` (or `--json=<path>`) was passed to the bench binary.
inline bool WantJson(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0 ||
        std::strncmp(argv[i], "--json=", 7) == 0) {
      return true;
    }
  }
  return false;
}

/// Path from `--json=<path>` if given, else "" (meaning: print to stdout).
inline std::string JsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return "";
}

/// Machine-readable benchmark report (the --json mode): named metric groups in
/// insertion order, serialized as one JSON object so CI can track the perf
/// trajectory across PRs (see BENCH_baseline.json).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void Metric(const std::string& section, const std::string& name, double value) {
    for (auto& [sec, metrics] : sections_) {
      if (sec == section) {
        metrics.emplace_back(name, value);
        return;
      }
    }
    sections_.push_back({section, {{name, value}}});
  }

  std::string ToString() const {
    std::string out = "{\"bench\":\"" + Escape(bench_) + "\",\"metrics\":{";
    for (size_t s = 0; s < sections_.size(); s++) {
      if (s > 0) out += ",";
      out += "\"" + Escape(sections_[s].first) + "\":{";
      const auto& metrics = sections_[s].second;
      for (size_t m = 0; m < metrics.size(); m++) {
        if (m > 0) out += ",";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", metrics[m].second);
        out += "\"" + Escape(metrics[m].first) + "\":" + buf;
      }
      out += "}";
    }
    out += "}}";
    return out;
  }

  /// Writes to `path` ("" = stdout, as the final line of output).
  void Emit(const std::string& path) const {
    if (path.empty()) {
      std::printf("%s\n", ToString().c_str());
      return;
    }
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL cannot write %s\n", path.c_str());
      std::exit(2);
    }
    std::fprintf(f, "%s\n", ToString().c_str());
    std::fclose(f);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      sections_;
};

/// Folds a MetricsRegistry snapshot into `report` as an "engine_metrics"
/// section, so --json artifacts carry the engine's counters (buffer-pool
/// hit rates, record reads, deref-cache traffic, ...) alongside the timings
/// and BENCH_baseline.json can track both.
inline void AddMetricsSnapshot(JsonReport* report, MetricsRegistry* metrics) {
  if (report == nullptr || metrics == nullptr) return;
  for (const auto& [name, value] : metrics->Snapshot().values) {
    report->Metric("engine_metrics", name, value);
  }
}

/// Records pass/fail of shape assertions; returns a process exit code.
class Checks {
 public:
  void Expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) failures_++;
  }
  int ExitCode() const { return failures_ == 0 ? 0 : 1; }
  int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

/// Dies on a bad status (bench binaries prefer loud failures).
inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(2);
  }
}
template <typename T>
T CheckV(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, r.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(r).value();
}

}  // namespace mood::bench
