#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "types/oid.h"

namespace mood {

/// The six basic types of the MOOD data model (Section 2 / 3.1 of the paper).
enum class BasicType : uint8_t {
  kInteger = 0,      // 32-bit signed
  kFloat = 1,        // double precision
  kLongInteger = 2,  // 64-bit signed
  kString = 3,
  kChar = 4,
  kBoolean = 5,
};

std::string_view BasicTypeName(BasicType t);

/// Runtime value tag: the basic types plus the four type constructors
/// (Tuple, Set, List, Reference) and null.
enum class ValueKind : uint8_t {
  kNull = 0,
  kInteger = 1,
  kFloat = 2,
  kLongInteger = 3,
  kString = 4,
  kChar = 5,
  kBoolean = 6,
  kTuple = 7,
  kSet = 8,
  kList = 9,
  kReference = 10,
};

std::string_view ValueKindName(ValueKind k);

/// A runtime MOOD value. Complex values nest arbitrarily through the Tuple, Set,
/// List and Reference constructors (recursive application, Section 2). Values have
/// copy semantics; objects are values stored in an extent and addressed by Oid.
class MoodValue {
 public:
  using ValueList = std::vector<MoodValue>;

  MoodValue() : kind_(ValueKind::kNull) {}

  static MoodValue Null() { return MoodValue(); }
  static MoodValue Integer(int32_t v);
  static MoodValue Float(double v);
  static MoodValue LongInteger(int64_t v);
  static MoodValue String(std::string v);
  static MoodValue Char(char v);
  static MoodValue Boolean(bool v);
  static MoodValue Tuple(ValueList fields);
  static MoodValue Set(ValueList elems);   // deduplicates (structural equality)
  static MoodValue List(ValueList elems);
  static MoodValue Reference(Oid oid);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool IsCollection() const { return kind_ == ValueKind::kSet || kind_ == ValueKind::kList; }
  bool IsNumeric() const {
    return kind_ == ValueKind::kInteger || kind_ == ValueKind::kFloat ||
           kind_ == ValueKind::kLongInteger;
  }

  int32_t AsInteger() const { return std::get<int32_t>(scalar_); }
  double AsFloat() const { return std::get<double>(scalar_); }
  int64_t AsLongInteger() const { return std::get<int64_t>(scalar_); }
  const std::string& AsString() const { return *std::get<std::shared_ptr<std::string>>(scalar_); }
  char AsChar() const { return std::get<char>(scalar_); }
  bool AsBoolean() const { return std::get<bool>(scalar_); }
  Oid AsReference() const { return std::get<Oid>(scalar_); }

  /// Numeric value widened to double (Integer/LongInteger/Float only).
  Result<double> ToDouble() const;
  /// Numeric value as int64 (Integer/LongInteger only).
  Result<int64_t> ToInt64() const;

  const ValueList& elements() const { return *children_; }

  /// Mutable element access with copy-on-write so values keep copy semantics even
  /// though unmutated copies share structure.
  ValueList& mutable_elements() {
    if (!children_) children_ = std::make_shared<ValueList>();
    if (children_.use_count() > 1) children_ = std::make_shared<ValueList>(*children_);
    return *children_;
  }
  size_t size() const { return children_ ? children_->size() : 0; }

  /// Tuple field access by position.
  Result<const MoodValue*> Field(size_t idx) const;

  /// Structural (deep-by-value) equality; references compare by Oid.
  bool Equals(const MoodValue& other) const;

  /// Three-way comparison for scalars with numeric promotion. Collections compare
  /// lexicographically; errors on incomparable kinds (e.g. Set vs Integer).
  Result<int> Compare(const MoodValue& other) const;

  /// Stable hash consistent with Equals (used by hash joins / DupElim).
  uint64_t Hash() const;

  /// Binary serialization (storage format for objects and index keys).
  void EncodeTo(std::string* dst) const;
  static Result<MoodValue> Decode(Slice* input);
  static Result<MoodValue> DecodeAll(Slice input);

  /// Display form, e.g. <id: 3, refs: {oid(1:2:0)}>.
  std::string ToString() const;

 private:
  using Scalar =
      std::variant<std::monostate, int32_t, double, int64_t,
                   std::shared_ptr<std::string>, char, bool, Oid>;

  ValueKind kind_;
  Scalar scalar_;
  std::shared_ptr<ValueList> children_;  // tuple/set/list
};

}  // namespace mood
