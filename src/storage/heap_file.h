#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/slotted_page.h"
#include "storage/wal_interface.h"

namespace mood {

using FileId = uint32_t;
inline constexpr FileId kInvalidFileId = 0xFFFFFFFFu;

/// Physical address of a record: (page, slot). Stable across updates thanks to
/// forwarding, so it can serve as the physical component of an object identifier.
struct RecordId {
  PageId page = kInvalidPageId;
  SlotId slot = kInvalidSlot;

  bool valid() const { return page != kInvalidPageId && slot != kInvalidSlot; }
  friend bool operator==(const RecordId&, const RecordId&) = default;
  friend auto operator<=>(const RecordId&, const RecordId&) = default;
};

/// Metadata persisted in the storage manager's file directory.
struct FileInfo {
  FileId id = kInvalidFileId;
  PageId first_page = kInvalidPageId;
  PageId last_page = kInvalidPageId;
  uint32_t page_count = 0;
  uint64_t record_count = 0;
};

/// Persists FileInfo changes. Implemented by StorageManager.
class FileDirectory {
 public:
  virtual ~FileDirectory() = default;
  virtual Status UpdateFileInfo(const FileInfo& info, PageWriteLogger* wal) = 0;
  virtual Result<PageId> AllocatePage() = 0;
};

/// A heap file of variable-length records: the extent storage for one MOOD class
/// (or the catalog, or an index's backing structure). Pages form a forward-linked
/// chain. Records that outgrow their page are moved and a forwarding stub keeps
/// the original RecordId valid — object identifiers in MOOD are physical, so they
/// must never dangle after an update.
///
/// Thread safety: reads may run concurrently, but writers to the same file must
/// be serialized by the caller — Insert/Update/Delete probe free space and then
/// mutate the page without a latch, so two unserialized writers can race into
/// spurious "page full" errors or a torn page chain. The SQL layer provides this
/// serialization via its strict-2PL extent locks (ExecNew takes the extent lock
/// exclusively); code driving HeapFile directly must do its own.
class HeapFile {
 public:
  HeapFile(BufferPool* pool, FileDirectory* directory, FileInfo info);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  Result<RecordId> Insert(Slice record, PageWriteLogger* wal = nullptr);
  Result<std::string> Get(RecordId rid) const;
  Status Update(RecordId rid, Slice record, PageWriteLogger* wal = nullptr);
  Status Delete(RecordId rid, PageWriteLogger* wal = nullptr);

  /// Per-scan readahead state. One cursor tracks one logical scan (which may
  /// be driven by many morsel workers): the furthest chain position touched so
  /// far and the prefetch frontier already issued. All fields are atomics so
  /// workers sharing a cursor need no extra lock; a worker that jumps backward
  /// (out-of-order morsel pickup) simply doesn't trigger readahead.
  struct ScanCursor {
    static constexpr uint32_t kNoIndex = 0xFFFFFFFFu;
    /// Chain index of the furthest page this scan has touched.
    std::atomic<uint32_t> last_index{kNoIndex};
    /// Exclusive chain index up to which prefetches have been issued.
    std::atomic<uint32_t> prefetched_to{0};
  };

  /// Forward scan over live records in page-chain order. Skips tombstones and
  /// moved-in bodies (those are reached through their home slot).
  class Iterator {
   public:
    Iterator(const HeapFile* file, PageId page);

    bool Valid() const { return current_rid_.valid(); }
    const RecordId& rid() const { return current_rid_; }
    const std::string& record() const { return current_record_; }

    /// Advances to the next record; sets an error status on failure.
    void Next();
    const Status& status() const { return status_; }

   private:
    void LoadFrom(PageId page, SlotId slot);

    const HeapFile* file_;
    RecordId current_rid_;
    std::string current_record_;
    Status status_;
    /// Drives sequential readahead for this scan; shared across copies.
    std::shared_ptr<ScanCursor> cursor_;
  };

  Iterator Begin() const { return Iterator(this, info_.first_page); }

  /// Page ids of the chain in scan order. A page-granular partitioning of the
  /// file for the parallel executor: scanning the pages of this list in order
  /// visits exactly the records Begin()/Next() would, in the same order.
  Result<std::vector<PageId>> PageIds() const;

  /// Invokes `fn` for every live record whose home slot is on `page`, in slot
  /// order, with the same forwarding semantics as the Iterator (moved-in bodies
  /// are skipped, forwarding stubs are chased). Records are copied out before
  /// `fn` runs, so at most one page is pinned at a time and the callback may
  /// itself fetch pages. Concurrent-read safe: many threads may ScanPage/Get
  /// disjoint or identical pages while no writer mutates the file.
  Status ScanPage(PageId page, const std::function<Status(RecordId, const std::string&)>& fn) const;

  /// ScanPage with readahead: when `cursor` is non-null and the scan's page
  /// accesses are monotone forward along the chain, the next
  /// `pool->readahead()` chain pages are prefetched into the pool (unpinned)
  /// after this page's records are copied out. Readahead is best-effort and
  /// never changes which records `fn` sees.
  Status ScanPage(PageId page, ScanCursor* cursor,
                  const std::function<Status(RecordId, const std::string&)>& fn) const;

  const FileInfo& info() const { return info_; }
  FileId id() const { return info_.id; }
  uint32_t page_count() const { return info_.page_count; }
  uint64_t record_count() const { return info_.record_count; }

  /// Lock-free per-file operation counters (relaxed atomics, incremented on
  /// the respective entry points; sampled by the StorageManager's `storage.*`
  /// metrics probe). `forward_chases` counts Get() calls that followed a
  /// forwarding stub — the extra page fetch updates-in-place avoid.
  struct OpStats {
    uint64_t inserts = 0;
    uint64_t updates = 0;
    uint64_t deletes = 0;
    uint64_t record_reads = 0;
    uint64_t forward_chases = 0;
    uint64_t scan_pages = 0;
  };
  OpStats op_stats() const {
    OpStats s;
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.updates = updates_.load(std::memory_order_relaxed);
    s.deletes = deletes_.load(std::memory_order_relaxed);
    s.record_reads = record_reads_.load(std::memory_order_relaxed);
    s.forward_chases = forward_chases_.load(std::memory_order_relaxed);
    s.scan_pages = scan_pages_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class Iterator;

  /// Appends a fresh page to the chain and returns it pinned.
  Result<Page*> AppendPage(PageWriteLogger* wal);

  /// Raw insert honoring flags (used by the forwarding machinery).
  Result<RecordId> InsertWithFlags(Slice record, uint8_t flags, PageWriteLogger* wal);

  /// Wraps a page mutation with before/after-image logging.
  Status MutatePage(Page* page, PageWriteLogger* wal,
                    const std::function<Status(SlottedPage&)>& fn);

  Status PersistInfo(PageWriteLogger* wal) { return directory_->UpdateFileInfo(info_, wal); }

  /// Chain order and page→index map used only for readahead targeting.
  /// PageIds() deliberately does NOT use this cache: a transaction abort
  /// restores page images without refreshing in-memory file metadata, so
  /// correctness-critical chain walks must re-read the chain. A stale
  /// readahead target merely wastes one disk read.
  struct ChainMap {
    std::vector<PageId> pages;
    std::unordered_map<PageId, uint32_t> index;
  };

  /// Returns the cached chain map, (re)building it on first use after an
  /// AppendPage. Thread-safe.
  Result<std::shared_ptr<const ChainMap>> Chain() const;

  /// Issues up to pool_->readahead() prefetches past `page` when `cursor`
  /// shows a monotone forward scan. Never fails: readahead errors are dropped.
  void MaybeReadAhead(PageId page, ScanCursor* cursor) const;

  BufferPool* pool_;
  FileDirectory* directory_;
  FileInfo info_;
  mutable std::mutex chain_mu_;
  mutable std::shared_ptr<const ChainMap> chain_;
  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> updates_{0};
  mutable std::atomic<uint64_t> deletes_{0};
  mutable std::atomic<uint64_t> record_reads_{0};
  mutable std::atomic<uint64_t> forward_chases_{0};
  mutable std::atomic<uint64_t> scan_pages_{0};
};

/// Encodes a RecordId into 6 bytes (used by forwarding stubs and join indices).
void EncodeRecordId(std::string* dst, RecordId rid);
Result<RecordId> DecodeRecordId(Slice in);

}  // namespace mood
