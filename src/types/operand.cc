#include "types/operand.h"

#include <cmath>

namespace mood {

std::string_view DataTypeCodeName(DataTypeCode c) {
  switch (c) {
    case DataTypeCode::kInt16: return "INT16";
    case DataTypeCode::kInt32: return "INT32";
    case DataTypeCode::kInt64: return "INT64";
    case DataTypeCode::kFloat32: return "FLOAT32";
    case DataTypeCode::kDouble: return "DOUBLE";
    case DataTypeCode::kChar: return "CHAR";
    case DataTypeCode::kBool: return "BOOL";
    case DataTypeCode::kString: return "STRING";
  }
  return "?";
}

OperandDataType::OperandDataType(DataTypeCode code) : code_(code) {}

OperandDataType::OperandDataType(DataTypeCode code, const MoodValue& v) : code_(code) {
  switch (v.kind()) {
    case ValueKind::kInteger: *this = static_cast<int64_t>(v.AsInteger()); break;
    case ValueKind::kLongInteger: *this = v.AsLongInteger(); break;
    case ValueKind::kFloat: *this = v.AsFloat(); break;
    case ValueKind::kChar: *this = static_cast<int64_t>(v.AsChar()); break;
    case ValueKind::kBoolean: *this = v.AsBoolean(); break;
    case ValueKind::kString: *this = v.AsString(); break;
    case ValueKind::kNull: repr_ = Repr::kNone; break;
    default:
      status_ = Status::TypeError("OperandDataType cannot hold " +
                                  std::string(ValueKindName(v.kind())));
  }
}

OperandDataType OperandDataType::FromValue(const MoodValue& v) {
  switch (v.kind()) {
    case ValueKind::kInteger: return OperandDataType(DataTypeCode::kInt32, v);
    case ValueKind::kLongInteger: return OperandDataType(DataTypeCode::kInt64, v);
    case ValueKind::kFloat: return OperandDataType(DataTypeCode::kDouble, v);
    case ValueKind::kChar: return OperandDataType(DataTypeCode::kChar, v);
    case ValueKind::kBoolean: return OperandDataType(DataTypeCode::kBool, v);
    case ValueKind::kString: return OperandDataType(DataTypeCode::kString, v);
    case ValueKind::kNull: return OperandDataType(DataTypeCode::kInt32, v);
    default:
      return Poison(Status::TypeError("non-scalar value in expression: " +
                                      std::string(ValueKindName(v.kind()))));
  }
}

OperandDataType OperandDataType::Poison(Status st) {
  OperandDataType o(DataTypeCode::kInt32);
  o.status_ = std::move(st);
  return o;
}

int64_t OperandDataType::TruncateInt(DataTypeCode code, int64_t v) {
  switch (code) {
    case DataTypeCode::kInt16: return static_cast<int16_t>(v);
    case DataTypeCode::kInt32: return static_cast<int32_t>(v);
    case DataTypeCode::kChar: return static_cast<int8_t>(v);
    default: return v;
  }
}

DataTypeCode OperandDataType::Promote(DataTypeCode a, DataTypeCode b) {
  if (a == DataTypeCode::kDouble || b == DataTypeCode::kDouble) return DataTypeCode::kDouble;
  if (a == DataTypeCode::kFloat32 || b == DataTypeCode::kFloat32) return DataTypeCode::kDouble;
  if (a == DataTypeCode::kInt64 || b == DataTypeCode::kInt64) return DataTypeCode::kInt64;
  if (a == DataTypeCode::kInt32 || b == DataTypeCode::kInt32) return DataTypeCode::kInt32;
  return DataTypeCode::kInt16;
}

OperandDataType& OperandDataType::operator=(int64_t v) {
  status_ = Status::OK();
  if (IsIntCode(code_)) {
    repr_ = Repr::kInt;
    int_ = TruncateInt(code_, v);
  } else if (IsFloatCode(code_)) {
    repr_ = Repr::kFloat;
    float_ = static_cast<double>(v);
  } else if (code_ == DataTypeCode::kBool) {
    repr_ = Repr::kBool;
    bool_ = v != 0;
  } else {
    status_ = Status::TypeError("cannot assign integer to STRING operand");
  }
  return *this;
}

OperandDataType& OperandDataType::operator=(double v) {
  status_ = Status::OK();
  if (IsFloatCode(code_)) {
    repr_ = Repr::kFloat;
    float_ = v;
  } else if (IsIntCode(code_)) {
    repr_ = Repr::kInt;
    int_ = TruncateInt(code_, static_cast<int64_t>(v));  // run-time cast
  } else if (code_ == DataTypeCode::kBool) {
    repr_ = Repr::kBool;
    bool_ = v != 0.0;
  } else {
    status_ = Status::TypeError("cannot assign float to STRING operand");
  }
  return *this;
}

OperandDataType& OperandDataType::operator=(bool v) {
  status_ = Status::OK();
  if (code_ == DataTypeCode::kBool) {
    repr_ = Repr::kBool;
    bool_ = v;
  } else if (IsNumericCode(code_)) {
    return *this = static_cast<int64_t>(v ? 1 : 0);
  } else {
    status_ = Status::TypeError("cannot assign boolean to STRING operand");
  }
  return *this;
}

OperandDataType& OperandDataType::operator=(const std::string& v) {
  status_ = Status::OK();
  if (code_ == DataTypeCode::kString) {
    repr_ = Repr::kString;
    string_ = v;
  } else {
    status_ = Status::TypeError("cannot assign string to " +
                                std::string(DataTypeCodeName(code_)) + " operand");
  }
  return *this;
}

OperandDataType& OperandDataType::Assign(const OperandDataType& rhs) {
  if (!rhs.status_.ok()) {
    status_ = rhs.status_;
    return *this;
  }
  switch (rhs.repr_) {
    case Repr::kInt: return *this = rhs.int_;
    case Repr::kFloat: return *this = rhs.float_;
    case Repr::kBool: return *this = rhs.bool_;
    case Repr::kString: return *this = rhs.string_;
    case Repr::kNone:
      repr_ = Repr::kNone;
      status_ = Status::OK();
      return *this;
  }
  return *this;
}

namespace {

enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

}  // namespace

static OperandDataType Arith(const OperandDataType& a, const OperandDataType& b,
                             ArithOp op);

OperandDataType operator+(const OperandDataType& a, const OperandDataType& b) {
  // String + String concatenates (a convenience MoodView's query manager uses).
  if (a.ok() && b.ok() && a.code() == DataTypeCode::kString &&
      b.code() == DataTypeCode::kString) {
    auto sa = a.AsStringValue();
    if (!sa.ok()) return OperandDataType::Poison(sa.status());
    auto sb = b.AsStringValue();
    if (!sb.ok()) return OperandDataType::Poison(sb.status());
    OperandDataType out(DataTypeCode::kString);
    out = sa.value() + sb.value();
    return out;
  }
  return Arith(a, b, ArithOp::kAdd);
}
OperandDataType operator-(const OperandDataType& a, const OperandDataType& b) {
  return Arith(a, b, ArithOp::kSub);
}
OperandDataType operator*(const OperandDataType& a, const OperandDataType& b) {
  return Arith(a, b, ArithOp::kMul);
}
OperandDataType operator/(const OperandDataType& a, const OperandDataType& b) {
  return Arith(a, b, ArithOp::kDiv);
}
OperandDataType operator%(const OperandDataType& a, const OperandDataType& b) {
  return Arith(a, b, ArithOp::kMod);
}

static OperandDataType Arith(const OperandDataType& a, const OperandDataType& b,
                             ArithOp op) {
  if (!a.ok()) return a;
  if (!b.ok()) return b;
  if (!OperandDataType::IsNumericCode(a.code()) ||
      !OperandDataType::IsNumericCode(b.code())) {
    return OperandDataType::Poison(
        Status::TypeError(std::string("arithmetic on non-numeric operands (") +
                          std::string(DataTypeCodeName(a.code())) + ", " +
                          std::string(DataTypeCodeName(b.code())) + ")"));
  }
  DataTypeCode rc = OperandDataType::Promote(a.code(), b.code());
  OperandDataType out(rc);
  if (OperandDataType::IsFloatCode(rc)) {
    double x = a.AsDouble().value();
    double y = b.AsDouble().value();
    switch (op) {
      case ArithOp::kAdd: out = x + y; break;
      case ArithOp::kSub: out = x - y; break;
      case ArithOp::kMul: out = x * y; break;
      case ArithOp::kDiv:
        if (y == 0) return OperandDataType::Poison(Status::InvalidArgument("division by zero"));
        out = x / y;
        break;
      case ArithOp::kMod:
        return OperandDataType::Poison(
            Status::TypeError("% requires integer operands"));
    }
  } else {
    int64_t x = a.AsInt().value();
    int64_t y = b.AsInt().value();
    switch (op) {
      case ArithOp::kAdd: out = x + y; break;
      case ArithOp::kSub: out = x - y; break;
      case ArithOp::kMul: out = x * y; break;
      case ArithOp::kDiv:
        if (y == 0) return OperandDataType::Poison(Status::InvalidArgument("division by zero"));
        out = x / y;
        break;
      case ArithOp::kMod:
        if (y == 0) return OperandDataType::Poison(Status::InvalidArgument("modulo by zero"));
        out = x % y;
        break;
    }
  }
  return out;
}

OperandDataType OperandDataType::operator-() const {
  if (!ok()) return *this;
  OperandDataType zero(code_);
  zero = int64_t{0};
  return zero - *this;
}

static OperandDataType Cmp(const OperandDataType& a, const OperandDataType& b,
                           int lo, int hi) {
  // Returns bool operand true iff compare(a, b) in [lo, hi] where compare yields
  // -1/0/1.
  if (!a.ok()) return a;
  if (!b.ok()) return b;
  int c;
  if (OperandDataType::IsNumericCode(a.code()) &&
      OperandDataType::IsNumericCode(b.code())) {
    double x = a.AsDouble().value();
    double y = b.AsDouble().value();
    c = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.code() == DataTypeCode::kString && b.code() == DataTypeCode::kString) {
    int r = a.AsStringValue().value().compare(b.AsStringValue().value());
    c = r < 0 ? -1 : (r > 0 ? 1 : 0);
  } else if (a.code() == DataTypeCode::kBool && b.code() == DataTypeCode::kBool) {
    bool x = a.AsBool().value(), y = b.AsBool().value();
    c = x == y ? 0 : (x ? 1 : -1);
  } else {
    return OperandDataType::Poison(
        Status::TypeError(std::string("cannot compare ") +
                          std::string(DataTypeCodeName(a.code())) + " with " +
                          std::string(DataTypeCodeName(b.code()))));
  }
  OperandDataType out(DataTypeCode::kBool);
  out = (c >= lo && c <= hi);
  return out;
}

OperandDataType operator==(const OperandDataType& a, const OperandDataType& b) {
  return Cmp(a, b, 0, 0);
}
OperandDataType operator!=(const OperandDataType& a, const OperandDataType& b) {
  OperandDataType eq = Cmp(a, b, 0, 0);
  return eq.ok() ? !eq : eq;
}
OperandDataType operator<(const OperandDataType& a, const OperandDataType& b) {
  return Cmp(a, b, -1, -1);
}
OperandDataType operator<=(const OperandDataType& a, const OperandDataType& b) {
  return Cmp(a, b, -1, 0);
}
OperandDataType operator>(const OperandDataType& a, const OperandDataType& b) {
  return Cmp(a, b, 1, 1);
}
OperandDataType operator>=(const OperandDataType& a, const OperandDataType& b) {
  return Cmp(a, b, 0, 1);
}

OperandDataType operator&&(const OperandDataType& a, const OperandDataType& b) {
  if (!a.ok()) return a;
  if (!b.ok()) return b;
  auto x = a.AsBool();
  if (!x.ok()) return OperandDataType::Poison(x.status());
  auto y = b.AsBool();
  if (!y.ok()) return OperandDataType::Poison(y.status());
  OperandDataType out(DataTypeCode::kBool);
  out = (x.value() && y.value());
  return out;
}

OperandDataType operator||(const OperandDataType& a, const OperandDataType& b) {
  if (!a.ok()) return a;
  if (!b.ok()) return b;
  auto x = a.AsBool();
  if (!x.ok()) return OperandDataType::Poison(x.status());
  auto y = b.AsBool();
  if (!y.ok()) return OperandDataType::Poison(y.status());
  OperandDataType out(DataTypeCode::kBool);
  out = (x.value() || y.value());
  return out;
}

OperandDataType OperandDataType::operator!() const {
  if (!ok()) return *this;
  auto x = AsBool();
  if (!x.ok()) return Poison(x.status());
  OperandDataType out(DataTypeCode::kBool);
  out = !x.value();
  return out;
}

Result<int64_t> OperandDataType::AsInt() const {
  MOOD_RETURN_IF_ERROR(status_);
  switch (repr_) {
    case Repr::kInt: return int_;
    case Repr::kFloat: return static_cast<int64_t>(float_);
    case Repr::kBool: return bool_ ? int64_t{1} : int64_t{0};
    default: return Status::TypeError("operand has no integer value");
  }
}

Result<double> OperandDataType::AsDouble() const {
  MOOD_RETURN_IF_ERROR(status_);
  switch (repr_) {
    case Repr::kInt: return static_cast<double>(int_);
    case Repr::kFloat: return float_;
    case Repr::kBool: return bool_ ? 1.0 : 0.0;
    default: return Status::TypeError("operand has no numeric value");
  }
}

Result<bool> OperandDataType::AsBool() const {
  MOOD_RETURN_IF_ERROR(status_);
  switch (repr_) {
    case Repr::kBool: return bool_;
    case Repr::kInt: return int_ != 0;
    case Repr::kFloat: return float_ != 0.0;
    default: return Status::TypeError("operand has no boolean value");
  }
}

Result<std::string> OperandDataType::AsStringValue() const {
  MOOD_RETURN_IF_ERROR(status_);
  if (repr_ != Repr::kString) return Status::TypeError("operand has no string value");
  return string_;
}

Result<MoodValue> OperandDataType::ToValue() const {
  MOOD_RETURN_IF_ERROR(status_);
  switch (repr_) {
    case Repr::kNone: return MoodValue::Null();
    case Repr::kBool: return MoodValue::Boolean(bool_);
    case Repr::kString: return MoodValue::String(string_);
    case Repr::kFloat: return MoodValue::Float(float_);
    case Repr::kInt:
      switch (code_) {
        case DataTypeCode::kInt64: return MoodValue::LongInteger(int_);
        case DataTypeCode::kChar: return MoodValue::Char(static_cast<char>(int_));
        default: return MoodValue::Integer(static_cast<int32_t>(int_));
      }
  }
  return Status::Internal("unhandled operand representation");
}

std::string OperandDataType::ToString() const {
  if (!ok()) return "<error: " + status_.ToString() + ">";
  switch (repr_) {
    case Repr::kNone: return "null:" + std::string(DataTypeCodeName(code_));
    case Repr::kInt: return std::to_string(int_) + ":" + std::string(DataTypeCodeName(code_));
    case Repr::kFloat: return std::to_string(float_) + ":" + std::string(DataTypeCodeName(code_));
    case Repr::kBool: return std::string(bool_ ? "true" : "false") + ":BOOL";
    case Repr::kString: return "'" + string_ + "':STRING";
  }
  return "?";
}

}  // namespace mood
