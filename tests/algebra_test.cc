#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "core/database.h"
#include "core/paper_example.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

// --- The typing rules of Tables 1-7 as pure functions ---------------------------

TEST(AlgebraTypingTest, Table1SelectReturnTypes) {
  EXPECT_EQ(SelectReturnKind(CollKind::kExtent, false), CollKind::kExtent);
  EXPECT_EQ(SelectReturnKind(CollKind::kExtent, true), CollKind::kSet);
  EXPECT_EQ(SelectReturnKind(CollKind::kSet), CollKind::kSet);
  EXPECT_EQ(SelectReturnKind(CollKind::kList), CollKind::kList);
  EXPECT_EQ(SelectReturnKind(CollKind::kNamedObject), CollKind::kNamedObject);
}

TEST(AlgebraTypingTest, Table2JoinReturnTypes) {
  using K = CollKind;
  const K kinds[] = {K::kExtent, K::kSet, K::kList, K::kNamedObject};
  // Expected matrix from Table 2 (rows arg2, columns arg1).
  const K expected[4][4] = {
      // arg1:   Extent      Set       List      Named
      {K::kExtent, K::kExtent, K::kExtent, K::kExtent},  // arg2 = Extent
      {K::kExtent, K::kSet, K::kSet, K::kSet},           // arg2 = Set
      {K::kExtent, K::kSet, K::kList, K::kList},         // arg2 = List
      {K::kExtent, K::kSet, K::kList, K::kNamedObject},  // arg2 = Named Obj.
  };
  for (int r = 0; r < 4; r++) {
    for (int c = 0; c < 4; c++) {
      EXPECT_EQ(JoinReturnKind(kinds[c], kinds[r]), expected[r][c])
          << CollKindName(kinds[c]) << " x " << CollKindName(kinds[r]);
    }
  }
}

TEST(AlgebraTypingTest, Table3DupElim) {
  EXPECT_FALSE(DupElimReturn(CollKind::kSet).has_value());  // not applicable
  EXPECT_TRUE(DupElimReturn(CollKind::kList).has_value());
  EXPECT_NE(DupElimReturn(CollKind::kExtent)->find("deep equality"),
            std::string::npos);
}

TEST(AlgebraTypingTest, Table4SetOps) {
  MOOD_ASSERT_OK_AND_ASSIGN(CollKind ss, SetOpReturnKind(CollKind::kSet, CollKind::kSet));
  EXPECT_EQ(ss, CollKind::kSet);
  MOOD_ASSERT_OK_AND_ASSIGN(CollKind sl, SetOpReturnKind(CollKind::kSet, CollKind::kList));
  EXPECT_EQ(sl, CollKind::kSet);
  MOOD_ASSERT_OK_AND_ASSIGN(CollKind ls, SetOpReturnKind(CollKind::kList, CollKind::kSet));
  EXPECT_EQ(ls, CollKind::kSet);
  MOOD_ASSERT_OK_AND_ASSIGN(CollKind ll, SetOpReturnKind(CollKind::kList, CollKind::kList));
  EXPECT_EQ(ll, CollKind::kList);
  EXPECT_FALSE(SetOpReturnKind(CollKind::kExtent, CollKind::kSet).ok());
}

TEST(AlgebraTypingTest, Tables5To7Conversions) {
  EXPECT_NE(AsSetListElements(CollKind::kExtent).find("extent"), std::string::npos);
  MOOD_ASSERT_OK_AND_ASSIGN(std::string from_set, AsExtentReturn(CollKind::kSet));
  EXPECT_NE(from_set.find("dereferenced"), std::string::npos);
  EXPECT_FALSE(AsExtentReturn(CollKind::kExtent).ok());
  EXPECT_TRUE(UnnestAccepts(CollKind::kExtent, false));
  EXPECT_TRUE(UnnestAccepts(CollKind::kSet, false));
  EXPECT_TRUE(UnnestAccepts(CollKind::kList, false));
  EXPECT_TRUE(UnnestAccepts(CollKind::kNamedObject, true));
}

// --- Executable operators over real objects -------------------------------------

class AlgebraFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 60));
    algebra_ = db_.algebra();
  }

  ExprPtr Pred(const std::string& text) {
    auto e = Parser::ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return e.value();
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
  MoodAlgebra* algebra_ = nullptr;
};

TEST_F(AlgebraFixture, BindClassAndSelect) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  EXPECT_EQ(engines.kind(), CollKind::kExtent);
  EXPECT_EQ(engines.size(), report_.engines);
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection small, algebra_->Select(engines, Pred("e.cylinders <= 8"), "e"));
  EXPECT_EQ(small.kind(), CollKind::kExtent);
  EXPECT_LT(small.size(), engines.size());
  // Verify against direct evaluation.
  size_t expected = 0;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent(
      "VehicleEngine", false, {}, [&](Oid, const MoodValue& t) {
        if (t.elements()[1].AsInteger() <= 8) expected++;
        return Status::OK();
      }));
  EXPECT_EQ(small.size(), expected);
  // As identifiers (Table 1's Set column).
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection as_set, algebra_->Select(engines, Pred("e.cylinders <= 8"), "e", true));
  EXPECT_EQ(as_set.kind(), CollKind::kSet);
  EXPECT_EQ(as_set.size(), small.size());
}

TEST_F(AlgebraFixture, GeneralOperators) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection vehicles, algebra_->BindClass("Vehicle", false));
  ASSERT_FALSE(vehicles.empty());
  Oid first = vehicles.oids()[0];
  EXPECT_EQ(algebra_->ObjId(first), first);
  MOOD_ASSERT_OK_AND_ASSIGN(TypeId tid, algebra_->TypeIdOf(first));
  EXPECT_EQ(db_.catalog()->typeName(tid), "Vehicle");
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v, algebra_->Deref(first));
  EXPECT_EQ(v.kind(), ValueKind::kTuple);
  // isA: class of the last attribute in the path (the paper's example form).
  MOOD_ASSERT_OK_AND_ASSIGN(std::string cls, algebra_->IsA("Vehicle.drivetrain.engine"));
  EXPECT_EQ(cls, "VehicleEngine");
  MOOD_ASSERT_OK_AND_ASSIGN(std::string cls2, algebra_->IsA("Vehicle.drivetrain.engine.cylinders"));
  EXPECT_EQ(cls2, "VehicleEngine");
  // Bind/Named round trip.
  MOOD_ASSERT_OK(algebra_->Bind(vehicles, "all_vehicles"));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection named, algebra_->Named("all_vehicles"));
  EXPECT_EQ(named.size(), vehicles.size());
  EXPECT_TRUE(algebra_->Named("nothing").status().IsNotFound());
}

TEST_F(AlgebraFixture, ProjectDereferencesAndProjects) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection proj, algebra_->Project(engines, {"cylinders"}));
  EXPECT_EQ(proj.kind(), CollKind::kExtent);
  EXPECT_TRUE(proj.materialized());
  ASSERT_EQ(proj.size(), engines.size());
  for (const auto& row : proj.values()) {
    ASSERT_EQ(row.kind(), ValueKind::kTuple);
    ASSERT_EQ(row.size(), 1u);
    EXPECT_GE(row.elements()[0].AsInteger(), 2);
  }
}

TEST_F(AlgebraFixture, JoinMethodsProduceSamePairs) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection drivetrains,
                            algebra_->BindClass("VehicleDriveTrain", false));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection fwd, algebra_->Join(drivetrains, engines, JoinMethod::kForwardTraversal,
                                     nullptr, "d", "e", "engine"));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection hash, algebra_->Join(drivetrains, engines, JoinMethod::kHashPartition,
                                      nullptr, "d", "e", "engine"));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection bwd, algebra_->Join(drivetrains, engines, JoinMethod::kBackwardTraversal,
                                     nullptr, "d", "e", "engine"));
  EXPECT_EQ(fwd.size(), report_.drivetrains);  // every drivetrain has an engine
  EXPECT_EQ(hash.size(), fwd.size());
  EXPECT_EQ(bwd.size(), fwd.size());
  EXPECT_EQ(fwd.kind(), CollKind::kExtent);  // Table 2: Extent x Extent
}

TEST_F(AlgebraFixture, IndexedJoinViaBinaryJoinIndex) {
  MOOD_ASSERT_OK(db_.objects()->CreateBinaryJoinIndex("dt_engine", "VehicleDriveTrain",
                                                      "engine"));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection drivetrains,
                            algebra_->BindClass("VehicleDriveTrain", false));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection idx, algebra_->Join(drivetrains, engines, JoinMethod::kIndexed, nullptr,
                                     "d", "e", "engine"));
  EXPECT_EQ(idx.size(), report_.drivetrains);
}

TEST_F(AlgebraFixture, NestedLoopJoinWithPredicate) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  // Self-join on equal cylinder counts (theta join through the evaluator).
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection join,
      algebra_->Join(engines, engines, JoinMethod::kNestedLoop,
                     Pred("a.cylinders = b.cylinders"), "a", "b", ""));
  // At least the diagonal pairs.
  EXPECT_GE(join.size(), engines.size());
}

TEST_F(AlgebraFixture, PartitionGroupsByValue) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  MOOD_ASSERT_OK_AND_ASSIGN(auto groups, algebra_->Partition(engines, {"cylinders"}));
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, engines.size());
  EXPECT_GT(groups.size(), 1u);
  EXPECT_LE(groups.size(), 16u);  // at most 16 distinct cylinder values
}

TEST_F(AlgebraFixture, SortByAttribute) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection sorted, algebra_->Sort(engines, {"cylinders"}));
  EXPECT_EQ(sorted.kind(), CollKind::kExtent);
  int32_t prev = INT32_MIN;
  for (Oid oid : sorted.oids()) {
    MOOD_ASSERT_OK_AND_ASSIGN(MoodValue c, db_.objects()->GetAttribute(oid, "cylinders"));
    EXPECT_GE(c.AsInteger(), prev);
    prev = c.AsInteger();
  }
  // Descending.
  MOOD_ASSERT_OK_AND_ASSIGN(Collection desc, algebra_->Sort(engines, {"cylinders"}, false));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue first,
                            db_.objects()->GetAttribute(desc.oids()[0], "cylinders"));
  EXPECT_EQ(first.AsInteger(), prev);  // max comes first
}

TEST_F(AlgebraFixture, DupElimSemantics) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection vehicles, algebra_->BindClass("Vehicle", false));
  // Set: not applicable.
  MOOD_ASSERT_OK_AND_ASSIGN(Collection as_set, algebra_->AsSet(vehicles));
  EXPECT_FALSE(algebra_->DupElim(as_set).ok());
  // List with duplicates.
  std::vector<Oid> dup_oids = {vehicles.oids()[0], vehicles.oids()[1],
                               vehicles.oids()[0]};
  MOOD_ASSERT_OK_AND_ASSIGN(Collection deduped,
                            algebra_->DupElim(Collection::List(dup_oids)));
  EXPECT_EQ(deduped.kind(), CollKind::kList);
  EXPECT_EQ(deduped.size(), 2u);
}

TEST_F(AlgebraFixture, SetOperations) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection vehicles, algebra_->BindClass("Vehicle", false));
  ASSERT_GE(vehicles.size(), 4u);
  std::vector<Oid> a_oids(vehicles.oids().begin(), vehicles.oids().begin() + 3);
  std::vector<Oid> b_oids(vehicles.oids().begin() + 2, vehicles.oids().begin() + 4);
  Collection a = Collection::Set(a_oids);
  Collection b = Collection::Set(b_oids);
  MOOD_ASSERT_OK_AND_ASSIGN(Collection u, algebra_->Union(a, b));
  EXPECT_EQ(u.size(), 4u);
  MOOD_ASSERT_OK_AND_ASSIGN(Collection i, algebra_->Intersection(a, b));
  EXPECT_EQ(i.size(), 1u);
  MOOD_ASSERT_OK_AND_ASSIGN(Collection d, algebra_->Difference(a, b));
  EXPECT_EQ(d.size(), 2u);
  // Two lists: union is concatenation (Table 4).
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection cat, algebra_->Union(Collection::List(a_oids), Collection::List(b_oids)));
  EXPECT_EQ(cat.kind(), CollKind::kList);
  EXPECT_EQ(cat.size(), 5u);
}

TEST_F(AlgebraFixture, ConversionsRoundTrip) {
  MOOD_ASSERT_OK_AND_ASSIGN(Collection vehicles, algebra_->BindClass("Vehicle", false));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection as_set, algebra_->AsSet(vehicles));
  EXPECT_EQ(as_set.kind(), CollKind::kSet);
  MOOD_ASSERT_OK_AND_ASSIGN(Collection as_list, algebra_->AsList(as_set));
  EXPECT_EQ(as_list.kind(), CollKind::kList);
  MOOD_ASSERT_OK_AND_ASSIGN(Collection back, algebra_->AsExtent(as_list));
  EXPECT_EQ(back.kind(), CollKind::kExtent);
  EXPECT_EQ(back.size(), vehicles.size());
}

TEST_F(AlgebraFixture, UnnestMatchesPaperExample) {
  // e = {<o1, {o2, o3}>, <o4, {o5}>} -> {<o1,o2>, <o1,o3>, <o4,o5>}.
  Oid o1{1, 1, 1}, o2{1, 1, 2}, o3{1, 1, 3}, o4{1, 1, 4}, o5{1, 1, 5};
  std::vector<MoodValue> tuples = {
      MoodValue::Tuple({MoodValue::Reference(o1),
                        MoodValue::Set({MoodValue::Reference(o2), MoodValue::Reference(o3)})}),
      MoodValue::Tuple({MoodValue::Reference(o4),
                        MoodValue::Set({MoodValue::Reference(o5)})})};
  Collection e = Collection::ValueExtent(tuples);
  MOOD_ASSERT_OK_AND_ASSIGN(Collection unnested, algebra_->Unnest(e));
  ASSERT_EQ(unnested.size(), 3u);
  for (const auto& row : unnested.values()) {
    EXPECT_EQ(row.size(), 2u);
    EXPECT_EQ(row.elements()[1].kind(), ValueKind::kReference);
  }
  // Nest inverts it (same groups, set-valued second field).
  MOOD_ASSERT_OK_AND_ASSIGN(Collection nested, algebra_->Nest(unnested, 1));
  ASSERT_EQ(nested.size(), 2u);
  for (const auto& row : nested.values()) {
    EXPECT_EQ(row.elements()[1].kind(), ValueKind::kSet);
  }
}

TEST_F(AlgebraFixture, FlattenAlwaysYieldsSet) {
  Oid o1{1, 1, 1}, o2{1, 1, 2}, o3{1, 1, 3};
  std::vector<MoodValue> sets = {
      MoodValue::Set({MoodValue::Reference(o1), MoodValue::Reference(o2)}),
      MoodValue::Set({MoodValue::Reference(o3)}),
      MoodValue::Set({MoodValue::Reference(o1)})};  // o1 repeats
  Collection arg = Collection::ValueExtent(sets);
  MOOD_ASSERT_OK_AND_ASSIGN(Collection flat, algebra_->Flatten(arg));
  EXPECT_EQ(flat.kind(), CollKind::kSet);
  EXPECT_EQ(flat.size(), 3u);  // deduplicated
}

TEST_F(AlgebraFixture, IndSelUsesIndexes) {
  MOOD_ASSERT_OK(db_.objects()->CreateAttributeIndex("eng_cyl", "VehicleEngine",
                                                     "cylinders", IndexKind::kBTree));
  auto desc = db_.catalog()->FindIndex("VehicleEngine", "cylinders", IndexKind::kBTree);
  ASSERT_TRUE(desc.has_value());
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection eq, algebra_->IndSel("VehicleEngine", *desc, BinaryOp::kEq,
                                      MoodValue::Integer(4)));
  EXPECT_EQ(eq.kind(), CollKind::kSet);
  // Compare with a scan-based Select.
  MOOD_ASSERT_OK_AND_ASSIGN(Collection engines, algebra_->BindClass("VehicleEngine", false));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection scan,
                            algebra_->Select(engines, Pred("e.cylinders = 4"), "e"));
  EXPECT_EQ(eq.size(), scan.size());
  // Range through the index.
  MOOD_ASSERT_OK_AND_ASSIGN(
      Collection gt, algebra_->IndSel("VehicleEngine", *desc, BinaryOp::kGt,
                                      MoodValue::Integer(4)));
  MOOD_ASSERT_OK_AND_ASSIGN(Collection scan_gt,
                            algebra_->Select(engines, Pred("e.cylinders > 4"), "e"));
  EXPECT_EQ(gt.size(), scan_gt.size());
}

}  // namespace
}  // namespace mood
