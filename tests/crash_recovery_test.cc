// Crash-safety harness: kill-and-recover matrix over the failpoint framework,
// plus in-process tests of the failpoints and checksum machinery themselves.
//
// The matrix test forks a child per scenario. The child runs a scripted
// transactional workload with one failpoint armed in crash mode at a
// randomized trigger count, appending each id to an fsynced oracle file after
// its commit returns. The failpoint abort()s the child somewhere inside the
// storage or log stack; the parent reopens the database (running recovery)
// and asserts the crash-consistency contract:
//   - every oracle id is present with its committed value (durability),
//   - every present row satisfies the val == id invariant (no partial
//     transaction is ever visible),
//   - a fresh scan after recovery reports zero checksum failures (torn pages
//     were healed from logged full images),
//   - a second reopen sees the identical state (replay is idempotent).

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/database.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

constexpr int kTxns = 40;

/// Small pool (forces eviction traffic through the failpoints), serial
/// execution (no worker threads in the fork child), quiet slow-query log.
DatabaseOptions HarnessOptions(WalFsync mode = WalFsync::kAlways) {
  DatabaseOptions o;
  o.pool_pages = 16;
  o.exec_threads = 1;
  o.wal_fsync = mode;
  o.slow_query_ms = 0;
  return o;
}

size_t Count(Database& db, const std::string& sql) {
  auto r = db.Query(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value().rows.size() : 0;
}

/// ~1.8 KiB of padding per Account so the 40-transaction workload spans well
/// over the 16-frame pool: evictions, WAL-rule flushes and page allocations
/// all happen while the failpoint is armed.
std::string Pad() { return std::string(1800, 'x'); }

/// Child body for one crash scenario; never returns. Uses _exit so no parent
/// state (gtest, stdio buffers) is touched on the way out.
[[noreturn]] void RunChildWorkload(const std::string& db_prefix,
                                   const std::string& oracle_path,
                                   const std::string& site, const std::string& spec,
                                   WalFsync mode) {
  Database db;
  if (!db.Open(db_prefix, HarnessOptions(mode)).ok()) _exit(3);
  if (!db.Execute("CREATE CLASS Account TUPLE (id Integer, val Integer, "
                  "pad String(2000))")
           .ok()) {
    _exit(3);
  }
  // DDL outside a transaction is unlogged (DESIGN.md §9): checkpoint so the
  // schema is durable before the failpoint can kill the process.
  if (!db.Checkpoint().ok()) _exit(3);
  int oracle_fd = ::open(oracle_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (oracle_fd < 0) _exit(3);
  if (!FailPoints::Instance().Arm(site, spec).ok()) _exit(3);

  std::string pad = Pad();
  for (int i = 1; i <= kTxns; i++) {
    std::string id = std::to_string(i);
    auto begin = db.Begin();
    if (!begin.ok()) _exit(4);
    TxnHandle txn = std::move(begin).value();
    if (!db.Execute("NEW Account <" + id + ", 0, '" + pad + "'>").ok()) _exit(4);
    if (!db.Execute("UPDATE Account a SET val = " + id + " WHERE a.id = " + id)
             .ok()) {
      _exit(4);
    }
    if (!txn.Commit().ok()) _exit(4);
    // Commit returned: the transaction is durable. Record it in the oracle
    // (fsynced so the oracle itself survives the kill).
    std::string line = id + "\n";
    if (::write(oracle_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      _exit(3);
    }
    ::fsync(oracle_fd);
  }
  ::close(oracle_fd);
  // The failpoint never fired (trigger count above the workload's hit count):
  // clean completion, also a valid scenario.
  _exit(0);
}

std::set<int> ReadOracle(const std::string& path) {
  std::set<int> ids;
  std::ifstream in(path);
  int id = 0;
  while (in >> id) ids.insert(id);
  return ids;
}

/// Reopens the crashed database (recovery runs inside Open) and asserts the
/// crash-consistency contract against the oracle.
void VerifyRecovered(const std::string& db_prefix, const std::set<int>& oracle,
                     const std::string& label) {
  SCOPED_TRACE(label);
  Database db;
  MOOD_ASSERT_OK(db.Open(db_prefix, HarnessOptions()));
  size_t total = Count(db, "SELECT a FROM Account a");
  for (int i = 1; i <= kTxns; i++) {
    std::string id = std::to_string(i);
    size_t any = Count(db, "SELECT a FROM Account a WHERE a.id = " + id);
    size_t intact = Count(db, "SELECT a FROM Account a WHERE a.id = " + id +
                                  " AND a.val = " + id);
    ASSERT_LE(any, 1u) << "duplicate id " << i;
    EXPECT_EQ(any, intact) << "partial transaction visible for id " << i;
    if (oracle.count(i)) {
      EXPECT_EQ(any, 1u) << "committed id " << i << " lost after recovery";
    }
  }
  // Recovery healed any torn page from logged full images: a fresh scan of
  // everything must verify every checksum.
  db.storage()->disk()->ResetStats();
  EXPECT_EQ(Count(db, "SELECT a.val FROM Account a"), total);
  EXPECT_EQ(db.storage()->disk()->stats().checksum_failures, 0u);
  MOOD_ASSERT_OK(db.Close());

  // Idempotence: opening again (replaying whatever log remains) reaches the
  // same state.
  Database db2;
  MOOD_ASSERT_OK(db2.Open(db_prefix, HarnessOptions()));
  EXPECT_EQ(Count(db2, "SELECT a FROM Account a"), total);
  MOOD_ASSERT_OK(db2.Close());
}

TEST(CrashRecoveryMatrix, RandomizedKillPointsAllRecover) {
  TempDir dir;
  struct Combo {
    const char* site;
    const char* mode;
    int lo, hi;  // trigger-count range; sized so every draw fires mid-workload
  };
  const Combo combos[] = {
      {"disk.write_page", "crash", 1, 12},
      {"disk.write_page", "torn-crash", 1, 12},
      {"log.flush", "crash", 1, 40},
      {"log.flush", "torn-crash", 1, 40},
      {"pool.evict", "crash", 1, 25},
      {"log.append", "crash", 1, 120},
  };
  std::mt19937 rng(0xC0FFEE);  // fixed seed: the matrix is deterministic
  int scenario = 0;
  int crashed = 0;
  for (const Combo& c : combos) {
    for (int k = 0; k < 4; k++) {
      int trigger = std::uniform_int_distribution<int>(c.lo, c.hi)(rng);
      std::string spec = std::string(c.mode) + "@" + std::to_string(trigger);
      std::string label = std::string(c.site) + "=" + spec;
      std::string prefix = dir.Path("s" + std::to_string(scenario));
      std::string oracle_path = prefix + ".oracle";
      scenario++;

      pid_t pid = fork();
      ASSERT_GE(pid, 0) << "fork failed";
      if (pid == 0) {
        RunChildWorkload(prefix, oracle_path, c.site, spec, WalFsync::kAlways);
      }
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      if (WIFSIGNALED(status)) {
        EXPECT_EQ(WTERMSIG(status), SIGABRT) << label;
        crashed++;
      } else {
        ASSERT_TRUE(WIFEXITED(status)) << label;
        ASSERT_EQ(WEXITSTATUS(status), 0)
            << label << ": child failed before the failpoint fired";
      }
      VerifyRecovered(prefix, ReadOracle(oracle_path), label);
    }
  }
  // The ranges above are sized so every scenario's failpoint fires before the
  // workload completes; require at least the issue's 20 to guard the ranges.
  EXPECT_GE(crashed, 20) << "of " << scenario << " scenarios";
}

#ifndef MOOD_SANITIZE_THREAD
// Group commit adds the background flusher thread; fork with live threads is
// outside TSan's supported model, so these scenarios run unsanitized only.
TEST(CrashRecoveryMatrix, GroupCommitCrashRecovers) {
  TempDir dir;
  const char* specs[] = {"crash@3", "torn-crash@5", "crash@9", "torn-crash@13"};
  for (int k = 0; k < 4; k++) {
    std::string prefix = dir.Path("g" + std::to_string(k));
    std::string oracle_path = prefix + ".oracle";
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      RunChildWorkload(prefix, oracle_path, "log.flush", specs[k], WalFsync::kGroup);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT)
        << "log.flush=" << specs[k];
    VerifyRecovered(prefix, ReadOracle(oracle_path),
                    std::string("group-commit log.flush=") + specs[k]);
  }
}
#endif  // !MOOD_SANITIZE_THREAD

// ---------------------------------------------------------------------------
// In-process failpoint behavior (error mode, spec parsing, hit counting)
// ---------------------------------------------------------------------------

class FailPointFixture : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

TEST_F(FailPointFixture, SpecParsing) {
  auto& fps = FailPoints::Instance();
  MOOD_EXPECT_OK(fps.Arm("x", "error"));
  MOOD_EXPECT_OK(fps.Arm("x", "torn@7"));  // re-arm replaces
  MOOD_EXPECT_OK(fps.Arm("y", "crash@2"));
  MOOD_EXPECT_OK(fps.Arm("z", "torn-crash"));
  EXPECT_TRUE(fps.Arm("w", "explode").IsInvalidArgument());
  EXPECT_TRUE(fps.Arm("w", "error@0").IsInvalidArgument());
  EXPECT_TRUE(fps.Arm("w", "error@banana").IsInvalidArgument());
}

TEST_F(FailPointFixture, TriggerCountAndHits) {
  auto& fps = FailPoints::Instance();
  MOOD_EXPECT_OK(fps.Arm("p", "error@3"));
  EXPECT_FALSE(CheckFailPoint("p").has_value());
  EXPECT_FALSE(CheckFailPoint("p").has_value());
  auto third = CheckFailPoint("p");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->mode, FailPointMode::kError);
  EXPECT_FALSE(third->torn());
  EXPECT_FALSE(third->crash());
  EXPECT_EQ(fps.Hits("p"), 3u);
  EXPECT_FALSE(CheckFailPoint("unarmed").has_value());
  fps.Disarm("p");
  EXPECT_FALSE(CheckFailPoint("p").has_value());
}

TEST_F(FailPointFixture, ErrorModeSurfacesIoError) {
  TempDir dir;
  Database db;
  MOOD_ASSERT_OK(db.Open(dir.Path("db"), HarnessOptions()));
  MOOD_ASSERT_OK(db.Execute("CREATE CLASS T TUPLE (n Integer)").status());
  MOOD_ASSERT_OK(db.Checkpoint());
  MOOD_ASSERT_OK(FailPoints::Instance().Arm("log.flush", "error"));
  {
    MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db.Begin());
    MOOD_ASSERT_OK(db.Execute("NEW T <1>").status());
    Status st = txn.Commit();
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }
  FailPoints::Instance().DisarmAll();
  // The injected flush failure poisoned nothing permanent: after disarming,
  // a fresh transaction goes through.
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn2, db.Begin());
  MOOD_ASSERT_OK(db.Execute("NEW T <2>").status());
  MOOD_ASSERT_OK(txn2.Commit());
  EXPECT_EQ(Count(db, "SELECT t FROM T t WHERE t.n = 2"), 1u);
}

TEST_F(FailPointFixture, TornFlushFailureIsStickyUntilReopen) {
  TempDir dir;
  auto db = std::make_unique<Database>();
  MOOD_ASSERT_OK(db->Open(dir.Path("db"), HarnessOptions()));
  MOOD_ASSERT_OK(db->Execute("CREATE CLASS T TUPLE (n Integer)").status());
  MOOD_ASSERT_OK(db->Checkpoint());
  MOOD_ASSERT_OK(FailPoints::Instance().Arm("log.flush", "torn"));
  {
    MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db->Begin());
    MOOD_ASSERT_OK(db->Execute("NEW T <1>").status());
    Status st = txn.Commit();
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }
  FailPoints::Instance().DisarmAll();
  // Unlike plain error mode (nothing written, retry safe), the torn flush put
  // bytes of unknown extent into the log file: the commit record may yet
  // become durable. The failure is sticky — the engine refuses to build new
  // durability claims on the indeterminate suffix until a reopen lets
  // recovery re-derive the valid prefix.
  Status begin_st = db->Begin().status();
  EXPECT_TRUE(begin_st.IsIOError()) << begin_st.ToString();
  db.reset();  // Close() cannot checkpoint through the poisoned log; recovery heals
  Database db2;
  MOOD_ASSERT_OK(db2.Open(dir.Path("db"), HarnessOptions()));
  EXPECT_EQ(Count(db2, "SELECT t FROM T t WHERE t.n = 1"), 0u);  // loser undone
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db2.Begin());
  MOOD_ASSERT_OK(db2.Execute("NEW T <2>").status());
  MOOD_ASSERT_OK(txn.Commit());
  EXPECT_EQ(Count(db2, "SELECT t FROM T t WHERE t.n = 2"), 1u);
}

// ---------------------------------------------------------------------------
// On-disk format detection
// ---------------------------------------------------------------------------

TEST(FormatCheckTest, PreFrameFormatFileRejected) {
  TempDir dir;
  // A database file from before the checksummed-frame format: bare 4096-byte
  // pages, no 'MPG1' magic at any frame boundary.
  std::string raw = dir.Path("db") + ".mood";
  {
    std::ofstream f(raw, std::ios::binary);
    std::string page(kPageSize, '\x5a');
    f << page << page;
  }
  DiskManager disk;
  Status st = disk.Open(raw);
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  EXPECT_FALSE(disk.is_open());
  // Through the full stack the same file must be a clean error — never a
  // tolerated "all pages torn" open that reads as an empty database and gets
  // destroyed by the next checkpoint.
  Database db;
  Status open_st = db.Open(dir.Path("db"), HarnessOptions());
  EXPECT_FALSE(open_st.ok());
  EXPECT_TRUE(open_st.IsNotSupported()) << open_st.ToString();
  // The original bytes are untouched.
  std::ifstream f(raw, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  ASSERT_EQ(contents.size(), 2 * kPageSize);
  EXPECT_EQ(contents[0], '\x5a');
  EXPECT_EQ(contents[contents.size() - 1], '\x5a');
}

// ---------------------------------------------------------------------------
// TxnHandle lifetime
// ---------------------------------------------------------------------------

TEST(TxnHandleLifetime, HandleOutlivingDatabaseIsInert) {
  TempDir dir;
  TxnHandle handle;
  {
    Database db;
    MOOD_ASSERT_OK(db.Open(dir.Path("db"), HarnessOptions()));
    MOOD_ASSERT_OK(db.Execute("CREATE CLASS T TUPLE (n Integer)").status());
    MOOD_ASSERT_OK_AND_ASSIGN(handle, db.Begin());
    ASSERT_TRUE(handle.active());
    // The Database object dies here with the handle still active; its
    // destructor aborts the transaction and flips the shared liveness flag.
  }
  // The stale handle must not dereference the dead Database: explicit
  // finishes report InvalidArgument and its destructor is a no-op.
  Status st = handle.Commit();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  TxnHandle moved = std::move(handle);
  EXPECT_TRUE(moved.Abort().IsInvalidArgument());
}

TEST_F(FailPointFixture, DiskReadErrorModePropagates) {
  TempDir dir;
  Database db;
  DatabaseOptions opts = HarnessOptions();
  opts.pool_pages = 4;  // tiny pool: the scan below must actually hit disk
  MOOD_ASSERT_OK(db.Open(dir.Path("db"), opts));
  MOOD_ASSERT_OK(db.Execute("CREATE CLASS T TUPLE (n Integer, pad String(2000))")
                     .status());
  for (int i = 0; i < 12; i++) {
    MOOD_ASSERT_OK(
        db.Execute("NEW T <" + std::to_string(i) + ", '" + Pad() + "'>").status());
  }
  MOOD_ASSERT_OK(FailPoints::Instance().Arm("disk.read_page", "error"));
  Status st = db.Query("SELECT t FROM T t").status();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  FailPoints::Instance().DisarmAll();
  EXPECT_EQ(Count(db, "SELECT t FROM T t"), 12u);
}

// ---------------------------------------------------------------------------
// Checksum detection without a WAL to heal it
// ---------------------------------------------------------------------------

TEST(ChecksumTest, CorruptFrameDetectedOnRead) {
  TempDir dir;
  std::string path = dir.Path("raw.mood");
  {
    DiskManager disk;
    MOOD_ASSERT_OK(disk.Open(path));
    MOOD_ASSERT_OK(disk.AllocatePage().status());
    MOOD_ASSERT_OK(disk.AllocatePage().status());
    char page[kPageSize];
    std::memset(page, 0x5a, kPageSize);
    MOOD_ASSERT_OK(disk.WritePage(1, page));
    MOOD_ASSERT_OK(disk.Sync());
  }
  // Flip one payload byte of page 1 on disk.
  {
    int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    off_t off = static_cast<off_t>(kDiskFrameSize) +
                static_cast<off_t>(kPageFrameHeaderSize) + 100;
    char b = 0;
    ASSERT_EQ(::pread(fd, &b, 1, off), 1);
    b ^= 0x40;
    ASSERT_EQ(::pwrite(fd, &b, 1, off), 1);
    ::close(fd);
  }
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(path));
  char out[kPageSize];
  MOOD_ASSERT_OK(disk.ReadPage(0, out));  // untouched page still verifies
  Status st = disk.ReadPage(1, out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(disk.stats().checksum_failures, 1u);
}

TEST(ChecksumTest, MisdirectedWriteDetected) {
  // A frame written to the wrong slot carries the wrong page id in its CRC:
  // copying page 1's (valid) frame over page 2's slot must fail verification.
  TempDir dir;
  std::string path = dir.Path("raw.mood");
  {
    DiskManager disk;
    MOOD_ASSERT_OK(disk.Open(path));
    for (int i = 0; i < 3; i++) MOOD_ASSERT_OK(disk.AllocatePage().status());
    char page[kPageSize];
    std::memset(page, 0x11, kPageSize);
    MOOD_ASSERT_OK(disk.WritePage(1, page));
  }
  {
    int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    char frame[kDiskFrameSize];
    ASSERT_EQ(::pread(fd, frame, kDiskFrameSize, kDiskFrameSize),
              static_cast<ssize_t>(kDiskFrameSize));
    ASSERT_EQ(::pwrite(fd, frame, kDiskFrameSize, 2 * kDiskFrameSize),
              static_cast<ssize_t>(kDiskFrameSize));
    ::close(fd);
  }
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(path));
  char out[kPageSize];
  MOOD_ASSERT_OK(disk.ReadPage(1, out));
  EXPECT_TRUE(disk.ReadPage(2, out).IsCorruption());
}

TEST(ChecksumTest, TrailingPartialFrameDroppedAtOpen) {
  TempDir dir;
  std::string path = dir.Path("raw.mood");
  {
    DiskManager disk;
    MOOD_ASSERT_OK(disk.Open(path));
    for (int i = 0; i < 2; i++) MOOD_ASSERT_OK(disk.AllocatePage().status());
  }
  {
    // Append half a frame: a torn AllocatePage.
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    std::string half(kDiskFrameSize / 2, '\x7f');
    ASSERT_EQ(::write(fd, half.data(), half.size()),
              static_cast<ssize_t>(half.size()));
    ::close(fd);
  }
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(path));
  EXPECT_EQ(disk.num_pages(), 2u);
  // The next allocation reuses the torn slot and leaves a whole, valid frame.
  MOOD_ASSERT_OK_AND_ASSIGN(PageId id, disk.AllocatePage());
  EXPECT_EQ(id, 2u);
  char out[kPageSize];
  MOOD_ASSERT_OK(disk.ReadPage(2, out));
}

}  // namespace
}  // namespace mood
