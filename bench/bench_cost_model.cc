// Regenerates the cost-model parameter tables (paper Tables 8-10) and plots the
// Section 5 access-cost formulas (SEQCOST / RNDCOST / INDCOST / RNGXCOST),
// including the ESM regime where sequential access costs the same as random
// access because ESM stores files as B+-trees.

#include "bench/bench_util.h"
#include "cost/file_ops.h"
#include "index/bptree.h"
#include "index/key_codec.h"

using namespace mood;
using namespace mood::bench;

int main() {
  BenchDb scratch("cost_model");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  paperdb::InstallPaperStatistics(db.stats());

  Banner("Table 8: cost model parameters (live values for the example database)");
  {
    Table t({"Parameter", "Value", "Definition"});
    ClassStats v = CheckV(db.stats()->Class("Vehicle"), "v");
    t.AddRow({"|Vehicle|", std::to_string(v.cardinality), "total instances of C"});
    t.AddRow({"nbpages(Vehicle)", std::to_string(v.nbpages), "pages storing C"});
    t.AddRow({"size(Vehicle)", std::to_string(v.size), "bytes per instance"});
    AttributeStats cyl = CheckV(db.stats()->Attribute("VehicleEngine", "cylinders"), "a");
    t.AddRow({"dist(cylinders, VehicleEngine)", std::to_string(cyl.dist),
              "distinct values of atomic attribute"});
    t.AddRow({"max / min(cylinders)", Fmt(cyl.max_val, 0) + " / " + Fmt(cyl.min_val, 0),
              "value range"});
    ReferenceStats dt = CheckV(db.stats()->Reference("Vehicle", "drivetrain"), "r");
    t.AddRow({"fan(drivetrain, Vehicle, DriveTrain)", Fmt(dt.fan, 0),
              "avg referenced D instances per C instance"});
    t.AddRow({"totref(drivetrain, ...)", std::to_string(dt.totref),
              "distinct D objects referenced"});
    t.AddRow({"totlinks = fan * |C|", Fmt(CheckV(db.stats()->TotLinks("Vehicle", "drivetrain"), "tl"), 0),
              "total references C -> D"});
    t.AddRow({"hitprb = totref / |D|", Fmt(CheckV(db.stats()->HitPrb("Vehicle", "drivetrain"), "hp"), 2),
              "P(a D instance is referenced)"});
    t.Print();
  }

  Banner("Table 9: B+-tree parameters (from a live index over 20000 keys)");
  {
    // Build a real tree and print its Table 9 statistics.
    auto tree = CheckV(BPlusTree::Create(db.storage()->buffer_pool(), db.storage(),
                                         false),
                       "create tree");
    for (int i = 0; i < 20000; i++) {
      Check(tree->Insert(MakeIndexKey(MoodValue::Integer(i)),
                         static_cast<uint64_t>(i)),
            "insert");
    }
    BPlusTreeStats s = tree->stats();
    Table t({"Parameter", "Definition", "Value"});
    t.AddRow({"v(I)", "order of the B+ tree", std::to_string(s.order)});
    t.AddRow({"level(I)", "number of levels", std::to_string(s.levels)});
    t.AddRow({"leaves(I)", "number of the leaves", std::to_string(s.leaves)});
    t.AddRow({"keysize(I)", "size of the key value", std::to_string(s.keysize)});
    t.AddRow({"unique(I)", "unique flag", s.unique ? "true" : "false"});
    t.Print();
  }

  Banner("Table 10: physical disk parameters (both profiles, ms)");
  {
    DiskParameters def;
    DiskParameters cal = PaperCalibratedDiskParameters();
    Table t({"Parameter", "Definition", "salzberg-default", "paper-calibrated"});
    t.AddRow({"B", "block size", Fmt(def.block_size, 0), Fmt(cal.block_size, 0)});
    t.AddRow({"btt", "block transfer time", Fmt(def.btt), Fmt(cal.btt)});
    t.AddRow({"ebt", "effective block transfer time", Fmt(def.ebt), Fmt(cal.ebt)});
    t.AddRow({"r", "average rotational latency", Fmt(def.r), Fmt(cal.r)});
    t.AddRow({"s", "average seek time", Fmt(def.s), Fmt(cal.s)});
    t.AddRow({"CPUCOST", "per interpreted comparison", Fmt(def.cpu_cost), Fmt(cal.cpu_cost)});
    t.Print();
    std::printf(
        "the calibrated profile is pinned by Table 16: s+r = 18.825, s+r+btt = 25.1\n"
        "(see DESIGN.md, 'Reverse-engineering note').\n");
  }

  Banner("Section 5: access cost curves (calibrated profile, ms)");
  {
    DiskParameters p = PaperCalibratedDiskParameters();
    DiskParameters esm = p;
    esm.esm_btree_files = true;
    BTreeCostParams bt;
    bt.order = 100;
    bt.levels = 3;
    bt.leaves = 2000;
    Table t({"b / k / fract", "SEQCOST(b)", "SEQCOST(b) [ESM]", "RNDCOST(b)",
             "INDCOST(k)", "RNGXCOST(fract)"});
    for (double b : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
      double fract = b / 10000.0;
      t.AddRow({Fmt(b, 0) + " / " + Fmt(b, 0) + " / " + Fmt(fract, 4),
                Fmt(SeqCost(b, p), 1), Fmt(SeqCost(b, esm), 1), Fmt(RndCost(b, p), 1),
                Fmt(IndCost(b, bt, p), 1), Fmt(RngxCost(fract, bt, p), 1)});
    }
    t.Print();
  }

  Checks checks;
  Banner("Shape checks");
  {
    DiskParameters p = PaperCalibratedDiskParameters();
    DiskParameters esm = p;
    esm.esm_btree_files = true;
    checks.Expect(SeqCost(1000, p) < RndCost(1000, p),
                  "sequential is cheaper than random on a plain file");
    checks.Expect(SeqCost(1000, esm) == RndCost(1000, esm),
                  "ESM regime: sequential access cost equals random access cost");
    BTreeCostParams bt;
    bt.order = 100;
    bt.levels = 3;
    bt.leaves = 2000;
    checks.Expect(IndCost(1, bt, p) == 3 * RndCost(1, p),
                  "INDCOST(1) = level(I) random accesses");
    checks.Expect(IndCost(100, bt, p) < 100 * IndCost(1, bt, p),
                  "batched key lookups share upper-level pages");
  }
  return checks.ExitCode();
}
