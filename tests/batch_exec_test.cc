#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "exec/expr_compile.h"
#include "exec/parallel.h"
#include "exec/row_batch.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// Thread counts the differential sweep exercises. MOOD_TEST_THREADS=<n>
/// narrows the sweep the same way the sanitizer presets bound
/// parallel_exec_test (batch_exec_test_t2 / _t8 variants).
std::vector<size_t> TestThreadCounts() {
  const char* env = std::getenv("MOOD_TEST_THREADS");
  if (env != nullptr && std::atoi(env) > 0) {
    return {static_cast<size_t>(std::atoi(env))};
  }
  return {1, 2, 8};
}

// ---------------------------------------------------------------------------
// RowBatch / BatchAppender / ClampBatchSize unit properties
// ---------------------------------------------------------------------------

TEST(RowBatchTest, ColumnMajorLayoutAndSelection) {
  RowBatch b(2, 4);
  EXPECT_EQ(b.ActiveRows(), 0u);
  for (uint32_t i = 0; i < 3; i++) {
    Oid row[2] = {Oid{1, i}, Oid{2, i + 10}};
    b.PushRow(row, 2);
  }
  EXPECT_EQ(b.nrows, 3u);
  EXPECT_FALSE(b.Full());
  // Column-major: slot s of row i at cols[s * capacity + i].
  EXPECT_EQ(b.col(0)[1], (Oid{1, 1}));
  EXPECT_EQ(b.col(1)[2], (Oid{2, 12}));
  EXPECT_EQ(b.cols[1 * 4 + 2], (Oid{2, 12}));

  // With no selection, all rows are live in order.
  EXPECT_EQ(b.ActiveRows(), 3u);
  EXPECT_EQ(b.RowAt(2), 2u);

  // A selection vector narrows liveness without touching the columns.
  b.sel = {0, 2};
  b.sel_active = true;
  EXPECT_EQ(b.ActiveRows(), 2u);
  EXPECT_EQ(b.RowAt(1), 2u);
  Oid out[2];
  b.GatherRow(b.RowAt(1), out);
  EXPECT_EQ(out[0], (Oid{1, 2}));
  EXPECT_EQ(out[1], (Oid{2, 12}));

  b.Clear();
  EXPECT_EQ(b.nrows, 0u);
  EXPECT_FALSE(b.sel_active);
  EXPECT_EQ(b.ActiveRows(), 0u);
}

TEST(RowBatchTest, AppenderOpensNewBatchWhenFull) {
  BatchSet bs;
  bs.vars = {"v"};
  BatchAppender app(&bs, 1, 4);
  for (uint32_t i = 0; i < 10; i++) {
    Oid o{7, i};
    app.Push(&o, 1);
  }
  ASSERT_EQ(bs.batches.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(bs.batches[0].nrows, 4u);
  EXPECT_EQ(bs.batches[1].nrows, 4u);
  EXPECT_EQ(bs.batches[2].nrows, 2u);
  EXPECT_EQ(bs.ActiveRows(), 10u);
  // LiveIndex walks batches in order, rows in order.
  auto lidx = bs.LiveIndex();
  ASSERT_EQ(lidx.size(), 10u);
  EXPECT_EQ(lidx[5].first, 1u);
  EXPECT_EQ(lidx[5].second, 1u);
  EXPECT_EQ(bs.batches[lidx[9].first].col(0)[lidx[9].second], (Oid{7, 9}));
}

TEST(RowBatchTest, AppenderCoercesZeroCapacity) {
  BatchSet bs;
  BatchAppender app(&bs, 1, 0);  // capacity 0 must not loop or divide by zero
  Oid o{1, 1};
  app.Push(&o, 1);
  app.Push(&o, 1);
  EXPECT_EQ(bs.batches.size(), 2u);
}

TEST(ClampBatchSizeTest, ZeroMeansRowAtATime) {
  EXPECT_EQ(ClampBatchSize(0), 0u);
  EXPECT_EQ(ClampBatchSize(1), 1u);
  EXPECT_EQ(ClampBatchSize(kDefaultBatchRows), kDefaultBatchRows);
  EXPECT_EQ(ClampBatchSize(kMaxBatchRows + 1), kMaxBatchRows);
  EXPECT_EQ(ClampBatchSize(static_cast<size_t>(-2)), kMaxBatchRows);
}

// ---------------------------------------------------------------------------
// Differential harness: batched execution vs the row-at-a-time oracle
// ---------------------------------------------------------------------------

/// Paper database at a scale chosen so the Vehicle extent (120 objects) spans
/// several heap pages and the VehicleEngine extent holds exactly 60 objects —
/// the dividing/non-dividing batch-size cases below are exact.
class BatchExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 120));
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
  }

  /// The differential contract: for every batch size and thread count, batched
  /// execution returns byte-identical results — or the byte-identical error
  /// status — as the serial row-at-a-time oracle (batch_size = 0).
  void ExpectBatchMatch(const std::string& sql,
                        std::vector<size_t> batch_sizes = {1, 7, 1024}) {
    QueryOptions oracle_opts;
    oracle_opts.batch_size = 0;
    oracle_opts.exec_threads = 1;
    auto oracle = db_.Query(sql, oracle_opts);
    for (size_t batch : batch_sizes) {
      for (size_t threads : TestThreadCounts()) {
        QueryOptions opts;
        opts.batch_size = batch;
        opts.exec_threads = threads;
        auto batched = db_.Query(sql, opts);
        ASSERT_EQ(oracle.ok(), batched.ok())
            << sql << " batch=" << batch << " threads=" << threads
            << "\n oracle:  " << oracle.status().ToString()
            << "\n batched: " << batched.status().ToString();
        if (!oracle.ok()) {
          EXPECT_EQ(oracle.status().ToString(), batched.status().ToString())
              << sql << " batch=" << batch << " threads=" << threads;
          continue;
        }
        EXPECT_EQ(oracle.value().ToString(), batched.value().ToString())
            << sql << " batch=" << batch << " threads=" << threads;
      }
    }
  }

  uint64_t CounterValue(const std::string& name) {
    return db_.metrics()->Counter(name)->value();
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
};

TEST_F(BatchExecFixture, FilterScans) {
  ExpectBatchMatch("SELECT v FROM Vehicle v");
  ExpectBatchMatch("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4");
  ExpectBatchMatch("SELECT e FROM VehicleEngine e WHERE e.cylinders <= 8");
  ExpectBatchMatch(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR e.size >= 0");
  ExpectBatchMatch("SELECT e FROM VehicleEngine e WHERE NOT e.cylinders > 8");
  ExpectBatchMatch(
      "SELECT v FROM EVERY Vehicle v WHERE v.weight > 0 AND v.weight < 100000");
  ExpectBatchMatch("SELECT v FROM EVERY Automobile - JapaneseAuto v");
}

TEST_F(BatchExecFixture, PathExpressionsAndPointerJoins) {
  ExpectBatchMatch(paperdb::kExample81Query);
  ExpectBatchMatch(paperdb::kExample82Query);
  ExpectBatchMatch(paperdb::kSection31Query);
  ExpectBatchMatch(
      "SELECT d.transmission, d.engine.cylinders FROM VehicleDriveTrain d "
      "WHERE d.engine.cylinders > 8");
  ExpectBatchMatch(
      "SELECT v.drivetrain.engine.cylinders, v.weight FROM Vehicle v "
      "WHERE v.drivetrain.engine.cylinders = 4");
}

TEST_F(BatchExecFixture, ExplicitJoins) {
  ExpectBatchMatch(
      "SELECT v FROM Vehicle v, VehicleDriveTrain d WHERE v.drivetrain = d");
  ExpectBatchMatch(
      "SELECT v.weight, d.transmission FROM Vehicle v, VehicleDriveTrain d "
      "WHERE v.drivetrain = d AND d.transmission = 'MANUAL'");
}

TEST_F(BatchExecFixture, ProjectionsAndClausePipeline) {
  ExpectBatchMatch("SELECT e.cylinders, e.cylinders * 2 + 1 FROM VehicleEngine e");
  ExpectBatchMatch("SELECT e.size FROM VehicleEngine e ORDER BY e.size DESC");
  ExpectBatchMatch("SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders");
  ExpectBatchMatch(
      "SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders "
      "HAVING e.cylinders > 8");
  ExpectBatchMatch("SELECT DISTINCT e.cylinders FROM VehicleEngine e");
  ExpectBatchMatch(
      "SELECT DISTINCT e.cylinders FROM VehicleEngine e ORDER BY e.cylinders");
  // Method calls interpret per row inside the batch loop (compile refusal).
  ExpectBatchMatch("SELECT v.weight, v.lbweight() FROM Vehicle v");
}

TEST_F(BatchExecFixture, IndexedSelection) {
  MOOD_ASSERT_OK(
      db_.Execute("CREATE INDEX eng_cyl ON VehicleEngine(cylinders) USING BTREE")
          .status());
  MOOD_ASSERT_OK(db_.CollectAllStatistics());
  ExpectBatchMatch("SELECT e FROM VehicleEngine e WHERE e.cylinders = 6");
  ExpectBatchMatch(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 6 AND e.size > 0");
}

TEST_F(BatchExecFixture, ErrorStatusesMatch) {
  // Division by zero fires mid-extent (cylinders sweeps the even values of
  // [2,32], so some row has cylinders = 8); the batched path must surface the
  // same first-row error the serial oracle does.
  ExpectBatchMatch("SELECT e FROM VehicleEngine e WHERE 100 / (e.cylinders - 8) > 0");
  ExpectBatchMatch("SELECT e FROM VehicleEngine e WHERE e.cylinders = 'four'");
  ExpectBatchMatch(
      "SELECT e FROM VehicleEngine e WHERE e.size / (e.cylinders - e.cylinders) = 1");
  ExpectBatchMatch("SELECT v FROM Vehicle v WHERE v.id.cylinders = 2");
  // Error in a projection / ORDER BY column, after a passing filter.
  ExpectBatchMatch(
      "SELECT 100 / (e.cylinders - 8) FROM VehicleEngine e WHERE e.cylinders > 2");
  ExpectBatchMatch(
      "SELECT e FROM VehicleEngine e ORDER BY 100 / (e.cylinders - 8)");
}

TEST_F(BatchExecFixture, RandomizedExpressionsMatch) {
  std::mt19937 rng(20260809);  // fixed seed: failures must reproduce
  auto pick = [&](int n) { return static_cast<int>(rng() % static_cast<uint32_t>(n)); };
  const char* arith[] = {"+", "-", "*", "/", "%"};
  const char* cmp[] = {"=", "<>", "<", "<=", ">", ">="};

  std::function<std::string(int)> term = [&](int depth) -> std::string {
    int c = pick(depth > 0 ? 6 : 4);
    switch (c) {
      case 0: return "e.cylinders";
      case 1: return "e.size";
      case 2: return std::to_string(pick(40) - 5);
      case 3: return "'BMW'";  // type-error fodder
      case 4:
        return "(" + term(depth - 1) + " " + arith[pick(5)] + " " +
               term(depth - 1) + ")";
      default: return "(-" + term(depth - 1) + ")";
    }
  };
  std::function<std::string(int)> pred = [&](int depth) -> std::string {
    if (depth == 0 || pick(3) == 0) {
      return "(" + term(depth) + " " + cmp[pick(6)] + " " + term(depth) + ")";
    }
    switch (pick(3)) {
      case 0: return "(" + pred(depth - 1) + " AND " + pred(depth - 1) + ")";
      case 1: return "(" + pred(depth - 1) + " OR " + pred(depth - 1) + ")";
      default: return "NOT " + pred(depth - 1);
    }
  };

  for (int i = 0; i < 60; i++) {
    std::string sql = "SELECT e FROM VehicleEngine e WHERE " + pred(3);
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + sql);
    ExpectBatchMatch(sql, {7, 1024});
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Edge-case batch geometries
// ---------------------------------------------------------------------------

TEST_F(BatchExecFixture, BatchSizeEdgeGeometries) {
  ASSERT_EQ(report_.engines, 60u);
  // 1 (degenerate), 6 (divides 60 exactly), 7 (doesn't), 59/61 (one off),
  // 60 (equals cardinality), 1024 (single batch spanning every heap page).
  std::vector<size_t> sizes = {1, 6, 7, 59, 60, 61, 1024};
  ExpectBatchMatch("SELECT e FROM VehicleEngine e WHERE e.cylinders >= 2", sizes);
  ExpectBatchMatch("SELECT e.size FROM VehicleEngine e ORDER BY e.size", sizes);
  // Vehicle spans several pages at scale 120: sizes below the per-page row
  // count make batches straddle page boundaries in the parallel scan.
  ExpectBatchMatch("SELECT v.weight FROM Vehicle v WHERE v.weight > 0",
                   {1, 7, 40, 120, 1024});
}

TEST_F(BatchExecFixture, EmptyExtent) {
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Lonely TUPLE (x Integer)").status());
  ExpectBatchMatch("SELECT l FROM Lonely l");
  ExpectBatchMatch("SELECT l FROM Lonely l WHERE l.x > 0");
  ExpectBatchMatch("SELECT l.x FROM Lonely l ORDER BY l.x");
  // Join with an empty side.
  ExpectBatchMatch("SELECT v, l FROM Vehicle v, Lonely l WHERE v.weight = l.x");
}

TEST_F(BatchExecFixture, OversizedBatchRequestClamps) {
  QueryOptions opts;
  opts.batch_size = static_cast<size_t>(-2);  // beyond kMaxBatchRows, not the sentinel
  opts.exec_threads = 1;
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto res, db_.Query("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4", opts));
  QueryOptions oracle;
  oracle.batch_size = 0;
  oracle.exec_threads = 1;
  MOOD_ASSERT_OK_AND_ASSIGN(
      auto want,
      db_.Query("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4", oracle));
  EXPECT_EQ(res.ToString(), want.ToString());
}

// ---------------------------------------------------------------------------
// Fallback rows mid-batch (ExprProgram::EvalPredicateBatch unit level)
// ---------------------------------------------------------------------------

TEST_F(BatchExecFixture, FallbackRowMidBatch) {
  // Compile a predicate against VehicleEngine, then feed it a batch whose
  // middle row is an Employee: attribute re-resolution fails with NotFound,
  // which must flag kRowFallback for exactly that row — the surrounding rows
  // evaluate columnar as usual.
  auto stmt = Parser::Parse("SELECT e FROM VehicleEngine e WHERE e.cylinders > 8");
  MOOD_ASSERT_OK(stmt.status());
  ExprPtr where = std::get<SelectStmt>(stmt.value()).where;
  ExprCompileEnv env;
  env.vars["e"] = {0, "VehicleEngine", true};
  auto prog = ExprCompiler(db_.objects()).Compile(where, env);
  ASSERT_NE(prog, nullptr);

  std::vector<Oid> engines;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent("VehicleEngine", false, {},
                                           [&](Oid oid, const MoodValue&) {
                                             if (engines.size() < 6) engines.push_back(oid);
                                             return Status::OK();
                                           }));
  ASSERT_GE(engines.size(), 6u);
  Oid intruder{};
  MOOD_ASSERT_OK(db_.objects()->ScanExtent("Employee", false, {},
                                           [&](Oid oid, const MoodValue&) {
                                             intruder = oid;
                                             return Status::OK();
                                           }));

  RowBatch batch(1, 8);
  for (size_t i = 0; i < 3; i++) batch.PushRow(&engines[i], 1);
  batch.PushRow(&intruder, 1);
  for (size_t i = 3; i < 6; i++) batch.PushRow(&engines[i], 1);

  ExprProgram::BatchScratch scratch;
  prog->EvalPredicateBatch(batch, nullptr, &scratch);
  ASSERT_EQ(scratch.flags.size(), 7u);
  for (size_t k = 0; k < 7; k++) {
    if (k == 3) {
      EXPECT_EQ(scratch.flags[k], ExprProgram::kRowFallback) << "row " << k;
      continue;
    }
    EXPECT_EQ(scratch.flags[k], ExprProgram::kRowOk) << "row " << k;
    // Cross-check against the row-at-a-time program evaluation.
    ExprProgram::Scratch row_scratch;
    bool need_fallback = false;
    Oid row = batch.col(0)[batch.RowAt(k)];
    MOOD_ASSERT_OK_AND_ASSIGN(
        bool want, prog->EvalPredicate(&row, 1, nullptr, &row_scratch, &need_fallback));
    EXPECT_FALSE(need_fallback);
    EXPECT_EQ(scratch.keep[k] != 0, want) << "row " << k;
  }

  // With a selection vector the outputs are indexed by live position, and
  // deselected rows (including the intruder) are never touched.
  batch.sel = {0, 2, 4, 6};
  batch.sel_active = true;
  prog->EvalPredicateBatch(batch, nullptr, &scratch);
  ASSERT_EQ(scratch.flags.size(), 4u);
  for (size_t k = 0; k < 4; k++) {
    EXPECT_EQ(scratch.flags[k], ExprProgram::kRowOk) << "live " << k;
  }
}

// ---------------------------------------------------------------------------
// exec.batch.* metrics and knob wiring
// ---------------------------------------------------------------------------

TEST_F(BatchExecFixture, BatchCountersMoveOnlyInBatchMode) {
  const std::string sql = "SELECT e FROM VehicleEngine e WHERE e.cylinders >= 2";
  uint64_t batches0 = CounterValue("exec.batch.batches");
  uint64_t rows0 = CounterValue("exec.batch.rows");

  // This test asserts *execution* side effects, so the result cache (which
  // legitimately skips execution on a repeat) must stay out of the way.
  QueryOptions oracle;
  oracle.batch_size = 0;
  oracle.exec_threads = 1;
  oracle.use_cache = false;
  MOOD_ASSERT_OK(db_.Query(sql, oracle).status());
  EXPECT_EQ(CounterValue("exec.batch.batches"), batches0);
  EXPECT_EQ(CounterValue("exec.batch.rows"), rows0);

  QueryOptions batched;
  batched.batch_size = 7;
  batched.exec_threads = 1;
  batched.use_cache = false;
  MOOD_ASSERT_OK_AND_ASSIGN(auto res, db_.Query(sql, batched));
  uint64_t batches1 = CounterValue("exec.batch.batches");
  uint64_t rows1 = CounterValue("exec.batch.rows");
  // 60 engines at 7/batch: the scan alone emits 9 batches; the filter re-emits
  // them. Row tallies count rows entering operator boundaries.
  EXPECT_GE(batches1 - batches0, 9u);
  EXPECT_GE(rows1 - rows0, res.rows.size());
}

TEST(BatchExecOptions, BatchSizeKnobWiresThrough) {
  TempDir dir;
  {
    Database db;
    MOOD_ASSERT_OK(db.Open(dir.Path("mood-default")));
    EXPECT_EQ(db.executor()->batch_size(), kDefaultBatchRows);
  }
  {
    Database db;
    DatabaseOptions opts;
    opts.batch_size = 256;
    MOOD_ASSERT_OK(db.Open(dir.Path("mood-256"), opts));
    EXPECT_EQ(db.executor()->batch_size(), 256u);
  }
  {
    // 0 = row-at-a-time as the database-wide default.
    Database db;
    DatabaseOptions opts;
    opts.batch_size = 0;
    MOOD_ASSERT_OK(db.Open(dir.Path("mood-rows"), opts));
    EXPECT_EQ(db.executor()->batch_size(), 0u);
  }
  {
    // Oversized requests clamp to the allocation guard.
    Database db;
    DatabaseOptions opts;
    opts.batch_size = kMaxBatchRows * 4;
    MOOD_ASSERT_OK(db.Open(dir.Path("mood-clamp"), opts));
    EXPECT_EQ(db.executor()->batch_size(), kMaxBatchRows);
  }
}

}  // namespace
}  // namespace mood
