#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "core/session.h"
#include "net/wire.h"

namespace mood {
namespace net {

struct ServerOptions {
  /// Bind address; loopback by default (the server speaks an unauthenticated
  /// protocol — exposing it beyond localhost is the deployment's decision).
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back with MoodServer::port()).
  uint16_t port = 0;
  /// Worker threads executing statements; the epoll thread only moves bytes.
  size_t worker_threads = 4;
  /// Connections idle (no complete frame) longer than this are reaped: the
  /// socket closes and the session's transaction/snapshot is rolled back.
  /// 0 disables idle reaping.
  uint64_t idle_timeout_ms = 30000;
  /// Default per-request deadline when the frame carries 0; 0 = none.
  uint32_t default_deadline_ms = 0;
  /// Default result chunk: rows returned inline in kResultSet before the
  /// client must FETCH the rest. 0 = whole result inline.
  uint32_t default_chunk_rows = 0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// The MOOD wire server: one epoll I/O thread feeding a worker pool; each
/// accepted connection owns a Database Session (its transaction scope, its
/// snapshot pins, its default QueryOptions). Frames from one connection are
/// processed strictly in order (EPOLLONESHOT re-arm), so a session is only
/// ever touched by one worker at a time; different connections execute
/// concurrently — readers at MVCC snapshots, writers through 2PL.
///
/// Registers `net.*` metrics on the database's registry: connections,
/// disconnects, active gauge, frames, errors, timeouts, sessions_reaped and
/// the request_us latency histogram.
class MoodServer {
 public:
  MoodServer() = default;
  ~MoodServer();

  MoodServer(const MoodServer&) = delete;
  MoodServer& operator=(const MoodServer&) = delete;

  /// Starts listening. The database must be open with WAL enabled (server
  /// sessions expose transactions) and must outlive Stop().
  Status Start(Database* db, const ServerOptions& options = {});
  /// Stops accepting, closes every connection (open transactions abort,
  /// snapshots unpin) and joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (useful with port = 0).
  uint16_t port() const { return port_; }

 private:
  struct Cursor {
    std::vector<std::string> columns;
    std::vector<std::vector<MoodValue>> rows;
    size_t next = 0;
  };

  /// One connection: socket + session + protocol state. Owned by conns_;
  /// workers hold a shared_ptr while processing so a concurrent reap cannot
  /// free it mid-request.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::unique_ptr<Session> session;
    TxnHandle txn;
    std::string in;   ///< buffered unparsed bytes
    std::map<uint32_t, PreparedStatement> prepared;
    std::map<uint32_t, Cursor> cursors;
    uint32_t next_stmt_id = 1;
    uint32_t next_cursor_id = 1;
    uint32_t deadline_ms = 0;    ///< session default (kSetOption "deadline_ms")
    uint32_t chunk_rows = 0;     ///< session default (kSetOption "chunk_rows")
    bool hello_done = false;
    std::atomic<bool> busy{false};     ///< a worker is processing this conn
    std::atomic<bool> dead{false};     ///< marked for reap
    std::atomic<uint64_t> last_active_ms{0};
  };

  void IoLoop();
  void WorkerLoop();
  /// Reads, parses and answers every buffered frame on one connection, then
  /// re-arms it in epoll (or reaps it on EOF/IO error).
  void ServeConn(const std::shared_ptr<Conn>& conn);
  /// Dispatches one frame; appends response frame(s) to `out`. `enqueued_ms`
  /// is when the request's bytes arrived (deadline accounting).
  void HandleFrame(Conn& c, const Frame& f, uint64_t enqueued_ms, std::string* out);
  Status HandleExecuteResult(Conn& c, const Result<ExecResult>& result,
                             uint32_t chunk_rows, std::string* out);
  void CloseConn(const std::shared_ptr<Conn>& conn, bool reaped_idle);
  Status BlockingWrite(Conn& c, const std::string& bytes);
  static uint64_t NowMs();

  Database* db_ = nullptr;
  ServerOptions options_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd to interrupt epoll_wait on Stop
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Conn>> conns_;  ///< keyed by fd

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Conn>> ready_;

  // net.* metrics (owned by the database's registry; null when absent).
  MetricCounter* connections_ = nullptr;
  MetricCounter* disconnects_ = nullptr;
  MetricGauge* active_ = nullptr;
  MetricCounter* frames_ = nullptr;
  MetricCounter* errors_ = nullptr;
  MetricCounter* timeouts_ = nullptr;
  MetricCounter* reaped_ = nullptr;
  MetricHistogram* request_us_ = nullptr;
};

}  // namespace net
}  // namespace mood
