#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "catalog/catalog.h"
#include "exec/executor.h"
#include "exec/plan_cache.h"
#include "funcman/function_manager.h"
#include "moodview/object_browser.h"
#include "mv/matview.h"
#include "moodview/query_manager.h"
#include "moodview/schema_browser.h"
#include "objects/object_manager.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "stats/statistics.h"
#include "storage/storage_manager.h"
#include "txn/transaction.h"

namespace mood {

struct DatabaseOptions {
  size_t pool_pages = 1024;
  /// Buffer-pool shard count. 0 = auto (max(4, hardware threads), capped so
  /// each shard keeps a useful number of frames); rounded down to a power of
  /// two. Shards cut lock contention between parallel morsel workers.
  size_t pool_shards = 0;
  /// Sequential-scan readahead depth in pages (0 disables). Full scans detect
  /// monotone page access and prefetch this many chain pages ahead.
  size_t readahead_pages = 4;
  /// Per-query Deref-cache capacity in objects (0 disables). Repeated path-
  /// expression hops over the same objects within one query hit memory; any
  /// write to a class invalidates its cached objects (see DerefCache).
  size_t deref_cache_entries = 4096;
  /// Write-ahead logging + crash recovery (the ESM "backup and recovery"
  /// function). When off, no log file is kept and transactions are unavailable.
  bool enable_wal = true;
  /// Commit durability policy: kAlways = one fsync per commit, kGroup = a
  /// background flusher batches concurrent committers into shared fsyncs,
  /// kOff = no forcing (durability only at checkpoint/close). Ignored when
  /// enable_wal is false.
  WalFsync wal_fsync = WalFsync::kAlways;
  /// Group-commit collection window in microseconds (see WalOptions); only
  /// meaningful with wal_fsync = kGroup.
  uint32_t group_commit_window_us = 100;
  /// Worker threads for intra-query parallelism. 0 = hardware_concurrency,
  /// 1 = serial execution (the exact pre-parallelism behavior). This is the
  /// default; individual calls override it with QueryOptions::exec_threads.
  size_t exec_threads = 0;
  /// Rows per RowBatch in the batch-at-a-time executor. 0 = row-at-a-time
  /// execution (the pre-vectorization behavior, kept as the differential-
  /// testing oracle). Individual calls override with QueryOptions::batch_size.
  size_t batch_size = 1024;
  /// SELECT statements slower than this (wall milliseconds) land in the
  /// slow-query ring buffer (Database::SlowQueries). <= 0 disables recording.
  double slow_query_ms = 250;
  /// Capacity of the slow-query ring buffer; older entries fall out first.
  size_t slow_query_log_size = 64;
  /// Equi-depth histogram buckets built per numeric attribute by
  /// CollectStatistics / ANALYZE (0 disables histograms).
  size_t stats_histogram_buckets = 32;
  /// Capacity of the feedback store of measured selectivities written back
  /// from profiled executions (0 disables the feedback loop's store).
  size_t feedback_entries = 256;
  /// Write-epoch churn on a class's extent file beyond which feedback entries
  /// are invalidated and collected statistics auto-refresh.
  uint64_t stats_refresh_epoch_delta = 256;
  /// Capacity of the plan cache: optimized plans (with their compiled
  /// expression programs) keyed by normalized SQL + parameter-type signature,
  /// so hot queries skip parse/optimize/compile. 0 disables. Entries are
  /// validated lazily against the schema epoch, the statistics plans-version
  /// and extent write-epoch churn (stats_refresh_epoch_delta).
  size_t plan_cache_entries = 128;
  /// Byte budget of the result cache for read-only, method-free SELECTs keyed
  /// by plan-cache key + bound parameter values. A cached result is served
  /// only while every touched extent's write epoch is unchanged — never
  /// stale. 0 disables.
  size_t result_cache_bytes = 4u << 20;
  OptimizerOptions optimizer;
};

/// Per-call query options. Every field is an override-or-inherit optional: an
/// unset field falls back to the session defaults installed with
/// Database::SetDefaultQueryOptions, then to the behavior configured by the
/// DatabaseOptions the database was opened with — so `QueryOptions{}`
/// reproduces the plain Execute/Query behavior exactly. Replaces mutating
/// Executor::set_threads between queries.
struct QueryOptions {
  /// Worker threads for this call. 0 (and unset everywhere) = the database
  /// default (DatabaseOptions::exec_threads).
  std::optional<size_t> exec_threads;
  /// RowBatch capacity for this call; 0 = row-at-a-time execution (the
  /// differential-testing oracle).
  std::optional<size_t> batch_size;
  /// Deref-cache capacity for this call; 0 disables the cache.
  std::optional<size_t> deref_cache_entries;
  /// Record a per-operator QueryProfile into ExecResult::profile. Off by
  /// default: the disabled path costs one pointer test per operator.
  std::optional<bool> collect_profile;
  /// Lower WHERE/HAVING/SELECT-list expressions to plan-time bytecode programs
  /// (exec/expr_compile). Off forces the interpreted Evaluator everywhere —
  /// the differential-testing oracle and the paper's original behavior.
  std::optional<bool> compile_expressions;
  /// Let the optimizer use measured selectivities/costs written back from
  /// profiled executions, and write this execution's profile back when
  /// collect_profile is on. Off reproduces the paper's pure-model plans.
  std::optional<bool> feedback;
  /// Consult and populate the plan/result caches for this call. Off forces a
  /// fresh parse-optimize-compile (the uncached oracle).
  std::optional<bool> use_cache;
};

/// QueryOptions with every inherit chain resolved — what the execution layers
/// consume. Produced by Database::Resolve.
struct ResolvedQueryOptions {
  size_t exec_threads = 0;  ///< 0 = the executor's configured default
  size_t batch_size = ExecOptions::kInheritBatch;
  size_t deref_cache_entries = ExecOptions::kInheritCache;
  bool collect_profile = false;
  bool compile_expressions = true;
  bool feedback = true;
  bool use_cache = true;
};

/// Options for the consolidated Database::Explain entry point.
struct ExplainOptions {
  enum class Format { kText, kJson };

  /// Execute the query and annotate each operator with actual rows, wall time
  /// and buffer-pool deltas (EXPLAIN ANALYZE).
  bool analyze = false;
  /// Include the optimizer's selectivity/cost dictionaries (ImmSelInfo,
  /// PathSelInfo, per-AND-term plans) ahead of the plan.
  bool verbose = false;
  Format format = Format::kText;
  /// Per-call execution knobs for the ANALYZE run.
  QueryOptions query;
};

/// Structured result of Database::Explain. Render() produces the human-readable
/// (or JSON) form; callers wanting the raw plan or actuals read the fields.
struct ExplainResult {
  QueryOptimizer::Optimized optimized;
  /// Per-operator actuals; null unless analyze was requested.
  std::shared_ptr<QueryProfile> profile;
  /// Query output of the ANALYZE run (empty otherwise).
  QueryResult result;
  bool analyzed = false;
  ExplainOptions options;

  std::string Render() const;
};

class Database;
class Session;
class VersionStore;
struct ExecResult;

/// Move-only RAII handle for one transaction, returned by Session::Begin()
/// (Database::Begin() delegates to the implicit session). Commit() or Abort()
/// finish the transaction explicitly; a handle destroyed while still active
/// aborts it (so an early `return` on error can never leak an open transaction
/// holding locks). A handle outliving its Session (whose destruction aborted
/// the transaction), or a Close() that already aborted it, is inert: the
/// handle watches the session's liveness through a shared flag, so its
/// destructor does nothing and explicit Commit/Abort report InvalidArgument —
/// never a dangling dereference.
class TxnHandle {
 public:
  TxnHandle() = default;
  TxnHandle(TxnHandle&& other) noexcept { *this = std::move(other); }
  TxnHandle& operator=(TxnHandle&& other) noexcept;
  TxnHandle(const TxnHandle&) = delete;
  TxnHandle& operator=(const TxnHandle&) = delete;
  /// Aborts the transaction if still active (best effort; errors are dropped —
  /// finish explicitly when you need the status).
  ~TxnHandle();

  Status Commit();
  Status Abort();

  bool active() const { return txn_ != nullptr; }
  /// The underlying transaction, for lock calls or log inspection; null once
  /// finished. Ownership stays with the TransactionManager.
  Transaction* txn() const { return txn_; }

 private:
  friend class Database;
  friend class Session;
  TxnHandle(Session* session, Transaction* txn,
            std::shared_ptr<const bool> session_alive)
      : session_(session), txn_(txn), session_alive_(std::move(session_alive)) {}

  /// True while session_ is safe to dereference (the Session still exists).
  bool SessionAlive() const { return session_alive_ != nullptr && *session_alive_; }
  void Reset() {
    session_ = nullptr;
    txn_ = nullptr;
    session_alive_.reset();
  }

  Session* session_ = nullptr;
  Transaction* txn_ = nullptr;
  /// Set to false by ~Session; keeps stale handles from touching freed memory.
  std::shared_ptr<const bool> session_alive_;
};

/// A SELECT parsed and normalized once, executable many times with positional
/// `?` parameters bound per call. Obtained from Database::Prepare; move-only
/// in the TxnHandle style. Execution goes through the same plan/result caches
/// as Execute(sql), but skips re-parsing and normalizing the text. A handle
/// outliving its Database is inert: Execute reports InvalidArgument instead of
/// dereferencing freed memory.
class PreparedStatement {
 public:
  PreparedStatement() = default;
  PreparedStatement(PreparedStatement&& other) noexcept { *this = std::move(other); }
  PreparedStatement& operator=(PreparedStatement&& other) noexcept;
  PreparedStatement(const PreparedStatement&) = delete;
  PreparedStatement& operator=(const PreparedStatement&) = delete;

  /// Executes with `params` bound to `?1..?N` in order. params.size() must
  /// equal param_count().
  Result<ExecResult> Execute(const std::vector<MoodValue>& params = {},
                             const QueryOptions& options = {}) const;
  /// Convenience: Execute() unwrapped to the query result.
  Result<QueryResult> Query(const std::vector<MoodValue>& params = {},
                            const QueryOptions& options = {}) const;

  /// Number of `?` placeholders in the statement.
  uint32_t param_count() const { return param_count_; }
  /// The normalized statement text (also the plan-cache key base).
  const std::string& sql() const { return normalized_sql_; }
  bool valid() const { return stmt_ != nullptr; }

 private:
  friend class Database;
  friend class Session;
  PreparedStatement(Database* db, std::shared_ptr<const bool> db_alive,
                    std::shared_ptr<const SelectStmt> stmt,
                    std::string normalized_sql, uint32_t param_count)
      : db_(db),
        db_alive_(std::move(db_alive)),
        stmt_(std::move(stmt)),
        normalized_sql_(std::move(normalized_sql)),
        param_count_(param_count) {}

  /// True while db_ is safe to dereference (the Database object still exists).
  bool DbAlive() const { return db_alive_ != nullptr && *db_alive_; }

  Database* db_ = nullptr;
  /// Set to false by ~Database; keeps stale handles from touching freed memory.
  std::shared_ptr<const bool> db_alive_;
  std::shared_ptr<const SelectStmt> stmt_;
  std::string normalized_sql_;
  uint32_t param_count_ = 0;
};

/// One slow-query ring-buffer entry (see DatabaseOptions::slow_query_ms).
struct SlowQueryRecord {
  std::string sql;
  double elapsed_ms = 0;
  size_t rows = 0;
  size_t threads = 0;
};

/// Result of executing one MOODSQL statement. Which fields are meaningful is
/// determined by `kind`:
///   kQuery   -> query (and profile when QueryOptions::collect_profile is set)
///   kDdl     -> message
///   kDml     -> message, affected; created_oid is engaged for NEW statements
///   kExplain -> message holds the rendered plan (and actuals under ANALYZE)
struct ExecResult {
  enum class Kind { kQuery, kDdl, kDml, kExplain };
  Kind kind = Kind::kDdl;
  QueryResult query;                  ///< kQuery
  std::string message;                ///< DDL/DML summary, EXPLAIN rendering
  std::optional<Oid> created_oid;     ///< engaged only for NEW statements
  size_t affected = 0;                ///< UPDATE/DELETE row counts
  /// Per-operator actuals; non-null only when profiling was requested.
  std::shared_ptr<QueryProfile> profile;
  /// Catalog schema epoch after the statement ran; set for DDL (CREATE/DROP
  /// CLASS, CREATE INDEX, ANALYZE) so callers can observe the epoch the
  /// statement produced — the value that invalidates epoch-stamped caches.
  uint64_t schema_epoch = 0;
};

/// The MOOD database facade (Figure 2.1): the MOODSQL interpreter on top of the
/// kernel — catalog management, dynamic function linking, optimization and
/// interpretation of SQL statements — over the local storage substrate that
/// replaces the Exodus Storage Manager.
class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens (creating if needed) a database. `path` is a file-name prefix: the
  /// data file is `<path>.mood`, the WAL `<path>.wal`. Runs crash recovery when
  /// the log is non-empty.
  Status Open(const std::string& path, const DatabaseOptions& options = {});
  Status Close();
  bool is_open() const { return storage_ != nullptr && storage_->is_open(); }

  // --- Sessions ------------------------------------------------------------------

  /// Mints a new Session: its own default QueryOptions, its own transaction /
  /// snapshot scope. Concurrent statements must come from distinct sessions
  /// (the wire server gives each connection one). The Database must outlive
  /// uses of the returned session; destroying the session aborts its open
  /// transaction and releases its pinned snapshot.
  std::unique_ptr<Session> CreateSession();

  /// The implicit session behind Database::Execute/Query (tests and embedders
  /// that want Session semantics without minting one).
  Session* session() { return implicit_.get(); }

  // --- SQL surface ---------------------------------------------------------------
  // These delegate to an implicit built-in session, preserving the historical
  // single-connection behavior exactly (see Session for the multi-client API).

  /// Parses and executes one MOODSQL statement.
  Result<ExecResult> Execute(const std::string& sql);
  /// Same, with per-call options (threads, deref cache, profiling).
  Result<ExecResult> Execute(const std::string& sql, const QueryOptions& options);
  /// Executes a ';'-separated script; returns the last statement's result.
  Result<ExecResult> ExecuteScript(const std::string& sql);
  /// Convenience: SELECT statements only.
  Result<QueryResult> Query(const std::string& sql);
  Result<QueryResult> Query(const std::string& sql, const QueryOptions& options);

  /// Parses and normalizes a SELECT once, returning a handle that executes it
  /// repeatedly with positional `?` parameters (SELECT-only: other statements
  /// have no plan worth caching). The handle shares the database-wide plan and
  /// result caches with Execute(sql) — preparing is a convenience plus one
  /// saved parse, not a separate caching domain.
  Result<PreparedStatement> Prepare(const std::string& sql);

  /// Installs the implicit session's QueryOptions defaults. Deprecated in
  /// favor of Session::SetDefaultQueryOptions — defaults are a per-session
  /// property now; this only affects statements issued through the Database
  /// facade itself, never through explicitly created sessions.
  void SetDefaultQueryOptions(const QueryOptions& options);
  const QueryOptions& default_query_options() const;
  /// Resolves one call's options through the implicit session's inherit chain
  /// (call -> session defaults -> Open-time configuration).
  ResolvedQueryOptions Resolve(const QueryOptions& options) const;

  /// The consolidated EXPLAIN entry point: optimizes `sql` (a SELECT, or an
  /// EXPLAIN statement whose flags merge with `options`) and, when
  /// options.analyze is set, executes it recording per-operator actuals.
  /// Plan-only callers read `.optimized`; the historical "dictionaries +
  /// plan" text is Explain(sql, {.verbose = true}).Render().
  Result<ExplainResult> Explain(const std::string& sql, const ExplainOptions& options);

  /// Engine-wide metrics registry (buffer pool, heap files, object manager,
  /// function manager, lock manager, execution counters). Snapshot() is safe
  /// while queries run. Null before Open.
  MetricsRegistry* metrics() { return metrics_.get(); }

  /// Slow-query ring-buffer contents, oldest first (see
  /// DatabaseOptions::slow_query_ms).
  std::vector<SlowQueryRecord> SlowQueries() const;

  // --- Methods (Function Manager) --------------------------------------------------

  /// Registers a compiled method body; declares the method if absent.
  Status RegisterMethod(const std::string& class_name, const MoodsFunction& decl,
                        NativeFunction body);

  // --- Transactions ----------------------------------------------------------------

  /// Begins a transaction on the implicit session and returns its RAII
  /// handle. While the handle is active, DML through Execute() is logged and
  /// can be rolled back; the handle commits/aborts explicitly and auto-aborts
  /// on destruction. (One active transaction per session.)
  Result<TxnHandle> Begin();
  bool in_transaction() const;

  /// Flushes all pages and truncates the log.
  Status Checkpoint();

  // --- Statistics -------------------------------------------------------------------

  /// Scans a class extent and refreshes the optimizer statistics (Table 8).
  Status CollectStatistics(const std::string& class_name);
  Status CollectAllStatistics();

  // --- Component access ---------------------------------------------------------------

  Catalog* catalog() { return catalog_.get(); }
  ObjectManager* objects() { return objects_.get(); }
  FunctionManager* functions() { return functions_.get(); }
  StatisticsManager* stats() { return stats_.get(); }
  StorageManager* storage() { return storage_.get(); }
  Evaluator* evaluator() { return evaluator_.get(); }
  MoodAlgebra* algebra() { return algebra_.get(); }
  Executor* executor() { return executor_.get(); }
  QueryOptimizer* optimizer() { return optimizer_.get(); }
  SchemaBrowser* schema_browser() { return schema_browser_.get(); }
  ObjectBrowser* object_browser() { return object_browser_.get(); }
  PlanCache* plan_cache() { return plan_cache_.get(); }
  ResultCache* result_cache() { return result_cache_.get(); }
  /// Materialized-extent registry and maintenance engine (null before Open).
  MvManager* matviews() { return matviews_.get(); }
  LogManager* log() { return log_.get(); }
  TransactionManager* txn_manager() { return txn_manager_.get(); }
  /// The MVCC version store backing snapshot reads (null before Open).
  VersionStore* versions() { return versions_.get(); }

  /// MoodView-style query session bound to this database.
  std::unique_ptr<QueryManager> MakeQuerySession();

 private:
  friend class TxnHandle;
  friend class PreparedStatement;
  friend class Session;

  /// Resolves options against one session's defaults (Resolve() is the
  /// implicit-session shorthand).
  ResolvedQueryOptions ResolveFor(const Session& s, const QueryOptions& options) const;

  /// `cache_sql` is the normalized statement text for cache keying; "" means
  /// this call path (scripts, internal queries) bypasses the caches. `s` is
  /// the issuing session: its transaction scopes writes, its pinned snapshot
  /// (if any) scopes reads.
  Result<ExecResult> ExecuteStatement(Session& s, const Statement& stmt,
                                      const QueryOptions& options = {},
                                      const std::string& cache_sql = {});
  Result<ExecResult> ExecSelect(Session& s, const SelectStmt& stmt,
                                const QueryOptions& options,
                                const std::string& cache_sql = {});
  /// The caching SELECT core shared by Execute and PreparedStatement::Execute:
  /// plan-cache probe (optimize + compile-memo build on miss), result-cache
  /// probe for read-only method-free statements, then execution with `params`
  /// bound. Outside a write transaction the execution (and the result-cache
  /// window) runs at a consistent snapshot under the commit gate's shared
  /// side; inside one it reads latest so the transaction sees its own writes.
  Result<ExecResult> ExecSelectCached(Session& s, const SelectStmt& stmt,
                                      const ResolvedQueryOptions& r,
                                      const std::vector<MoodValue>& params,
                                      const std::string& cache_sql);
  /// PreparedStatement's entry point (adds statement accounting + slow log).
  Result<ExecResult> ExecPrepared(Session& s, const SelectStmt& stmt,
                                  const std::string& normalized_sql,
                                  const std::vector<MoodValue>& params,
                                  const QueryOptions& options);
  Result<ExecResult> ExecExplain(Session& s, const ExplainStmt& stmt,
                                 const QueryOptions& options,
                                 const std::string& cache_sql = {});
  /// Shared core of Explain()/EXPLAIN statements over an already-parsed SELECT.
  Result<ExplainResult> ExplainSelect(Session& s, const SelectStmt& stmt,
                                      const ExplainOptions& options,
                                      const std::string& cache_sql = {});
  /// Records a finished SELECT into the slow-query ring buffer.
  void NoteQuery(const std::string& sql, double elapsed_ms, size_t rows,
                 size_t threads);
  Result<ExecResult> ExecCreateClass(const CreateClassStmt& stmt);
  Result<ExecResult> ExecNew(Session& s, const NewObjectStmt& stmt);
  Result<ExecResult> ExecUpdate(Session& s, const UpdateStmt& stmt);
  Result<ExecResult> ExecDelete(Session& s, const DeleteStmt& stmt);
  Result<ExecResult> ExecCreateIndex(const CreateIndexStmt& stmt);
  Result<ExecResult> ExecDropClass(const DropClassStmt& stmt);
  Result<ExecResult> ExecAnalyze(const AnalyzeStmt& stmt);
  Result<ExecResult> ExecCreateMatView(const CreateMatViewStmt& stmt);
  Result<ExecResult> ExecDropMatView(const DropMatViewStmt& stmt);

  /// Evaluates the rows a WHERE clause selects for UPDATE/DELETE.
  Result<std::vector<Oid>> MatchingObjects(const std::string& class_name,
                                           const std::string& var, const ExprPtr& where);

  /// The interpreted fallback: evaluates `return <expr>;` method bodies with
  /// identifiers bound to receiver attributes and parameters.
  Result<MoodValue> InterpretMethodBody(const std::string& class_name,
                                        const MoodsFunction& decl,
                                        const MethodContext& ctx,
                                        const std::vector<MoodValue>& args);

  DatabaseOptions options_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TransactionManager> txn_manager_;
  /// MVCC pre-image version store + commit gate (always created by Open:
  /// snapshot reads do not require the WAL, only autocommit version batches).
  std::unique_ptr<VersionStore> versions_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<ObjectManager> objects_;
  std::unique_ptr<FunctionManager> functions_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<MoodAlgebra> algebra_;
  std::unique_ptr<StatisticsManager> stats_;
  std::unique_ptr<QueryOptimizer> optimizer_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<SchemaBrowser> schema_browser_;
  std::unique_ptr<ObjectBrowser> object_browser_;
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<ResultCache> result_cache_;
  /// Materialized extents: registry, dependency graph, delta maintenance.
  /// Holds executor/optimizer/catalog/objects pointers — destroyed first.
  std::unique_ptr<MvManager> matviews_;
  /// Liveness flag shared with sessions and prepared statements; flipped to
  /// false by the destructor so anything outliving the Database stays inert.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// The built-in session behind the Database facade's own SQL surface.
  std::unique_ptr<Session> implicit_;
  /// Every live session (including implicit_), so Close() can abort open
  /// transactions and release pinned snapshots. Guarded by sessions_mu_.
  std::vector<Session*> sessions_;
  mutable std::mutex sessions_mu_;

  /// Engine metrics. Destroyed before the components its probes point into.
  std::unique_ptr<MetricsRegistry> metrics_;
  MetricCounter* statements_counter_ = nullptr;  ///< exec.statements
  MetricCounter* queries_counter_ = nullptr;     ///< exec.queries
  MetricCounter* explains_counter_ = nullptr;    ///< exec.explains
  MetricCounter* slow_counter_ = nullptr;        ///< exec.slow_queries
  MetricHistogram* query_us_hist_ = nullptr;     ///< exec.query_us (microseconds)
  MetricCounter* feedback_absorbed_counter_ = nullptr;  ///< stats.feedback_absorbed

  mutable std::mutex slow_mu_;
  std::deque<SlowQueryRecord> slow_queries_;
};

}  // namespace mood
