#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace mood {

/// Distinct-value counter for Table 8's dist(A,C) column. Starts in *sparse*
/// mode — an exact hash set — and converts to an HLL-style register array only
/// past kSparseLimit distinct values. The split matters because dist feeds the
/// 1/dist equality selectivity directly: small extents (the common case for the
/// paper's schema) keep exact counts, while wide attributes (unique ids,
/// strings) get a fixed-memory estimate within a few percent instead of an
/// unbounded std::set of encoded values.
class DistinctSketch {
 public:
  static constexpr size_t kRegisterBits = 10;  ///< 2^10 registers, ~3.2% stderr
  static constexpr size_t kRegisters = size_t{1} << kRegisterBits;
  static constexpr size_t kSparseLimit = 4096;

  void Add(const std::string& encoded) { AddHash(Fnv1a(encoded)); }
  void AddHash(uint64_t hash);

  /// Distinct values added so far. Exact while sparse, estimated when dense.
  uint64_t Estimate() const;
  bool sparse() const { return dense_.empty(); }

 private:
  static uint64_t Fnv1a(const std::string& s);
  void Densify();
  void DenseAdd(uint64_t hash);

  std::unordered_set<uint64_t> sparse_;
  std::vector<uint8_t> dense_;  ///< empty until kSparseLimit is crossed
};

}  // namespace mood
