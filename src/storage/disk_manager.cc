#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"

namespace mood {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for '" + path + "': " + std::strerror(errno));
}

/// CRC over the payload, extended with the little-endian page id so a frame
/// written to the wrong offset fails verification too.
uint32_t FrameChecksum(PageId page_id, const char* payload) {
  char id_bytes[4];
  EncodeFixed32(id_bytes, page_id);
  return Crc32cExtend(Crc32c(payload, kPageSize), id_bytes, sizeof(id_bytes));
}

void EncodeFrame(PageId page_id, const char* payload, char* frame) {
  EncodeFixed32(frame, FrameChecksum(page_id, payload));
  EncodeFixed32(frame + 4, kPageFrameMagic);
  std::memcpy(frame + kPageFrameHeaderSize, payload, kPageSize);
}

}  // namespace

DiskManager::~DiskManager() {
  if (fd_ >= 0) Close();
}

Status DiskManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::InvalidArgument("DiskManager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path);
  // A trailing partial frame (torn AllocatePage) is dropped by the division;
  // EnsureAllocated / the next AllocatePage overwrite it in place.
  num_pages_ = static_cast<uint32_t>(st.st_size / kDiskFrameSize);
  // Format check: a non-empty file must carry the frame magic. A file written
  // before the checksummed-frame format (bare 4096-byte pages) has no magic at
  // any frame boundary; misparsing it as frames would fail every checksum and,
  // under torn-page tolerance, silently open the database as empty — so refuse
  // it outright. A single torn frame must NOT fail the whole file, so accept
  // if *any* of the first few frame headers verifies; only when none does is
  // the file considered foreign/pre-format.
  if (st.st_size > 0) {
    bool any_magic = false;
    uint32_t probe_frames = num_pages_ > 0 ? std::min<uint32_t>(num_pages_, 8) : 1;
    for (uint32_t i = 0; i < probe_frames; i++) {
      char header[kPageFrameHeaderSize];
      off_t off = static_cast<off_t>(i) * static_cast<off_t>(kDiskFrameSize);
      if (off + static_cast<off_t>(sizeof(header)) > st.st_size) break;
      ssize_t n = ::pread(fd_, header, sizeof(header), off);
      if (n != static_cast<ssize_t>(sizeof(header))) break;
      if (DecodeFixed32(header + 4) == kPageFrameMagic) {
        any_magic = true;
        break;
      }
    }
    if (!any_magic) {
      ::close(fd_);
      fd_ = -1;
      return Status::NotSupported(
          "'" + path + "' is not in the checksummed page-frame format (it "
          "predates the 'MPG1' frame header or is not a mood data file); "
          "refusing to open it as it would be misread as corrupt/empty");
    }
  }
  return Status::OK();
}

Status DiskManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

Status DiskManager::WriteFrameLocked(PageId page_id, const char* data) {
  char frame[kDiskFrameSize];
  EncodeFrame(page_id, data, frame);
  off_t off = static_cast<off_t>(page_id) * static_cast<off_t>(kDiskFrameSize);
  if (auto fp = CheckFailPoint("disk.write_page")) {
    if (fp->torn()) {
      // Persist only the first half of the frame: header plus a payload
      // prefix, exactly the shape of a sector-level torn write.
      (void)::pwrite(fd_, frame, kDiskFrameSize / 2, off);
    }
    if (fp->crash()) std::abort();
    return fp->Error("disk.write_page");
  }
  ssize_t n = ::pwrite(fd_, frame, kDiskFrameSize, off);
  if (n != static_cast<ssize_t>(kDiskFrameSize)) return Errno("pwrite", path_);
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  PageId id = num_pages_;
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  MOOD_RETURN_IF_ERROR(WriteFrameLocked(id, zeros));
  num_pages_++;
  return id;
}

Status DiskManager::EnsureAllocated(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  while (num_pages_ <= page_id) {
    MOOD_RETURN_IF_ERROR(WriteFrameLocked(num_pages_, zeros));
    num_pages_++;
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  if (page_id >= num_pages_) {
    return Status::InvalidArgument("ReadPage: page " + std::to_string(page_id) +
                                   " out of range (" + std::to_string(num_pages_) + ")");
  }
  if (auto fp = CheckFailPoint("disk.read_page")) {
    if (fp->crash()) std::abort();
    return fp->Error("disk.read_page");
  }
  char frame[kDiskFrameSize];
  ssize_t n = ::pread(fd_, frame, kDiskFrameSize,
                      static_cast<off_t>(page_id) * static_cast<off_t>(kDiskFrameSize));
  if (n != static_cast<ssize_t>(kDiskFrameSize)) return Errno("pread", path_);
  uint32_t stored_crc = DecodeFixed32(frame);
  uint32_t magic = DecodeFixed32(frame + 4);
  if (magic != kPageFrameMagic ||
      stored_crc != FrameChecksum(page_id, frame + kPageFrameHeaderSize)) {
    stats_.checksum_failures++;
    return Status::Corruption("page " + std::to_string(page_id) +
                              " failed checksum verification (torn or corrupt write)");
  }
  std::memcpy(out, frame + kPageFrameHeaderSize, kPageSize);
  stats_.reads++;
  if (last_read_page_ != kInvalidPageId && page_id == last_read_page_ + 1) {
    stats_.sequential_reads++;
  } else {
    stats_.random_reads++;
  }
  last_read_page_ = page_id;
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  if (page_id >= num_pages_) {
    return Status::InvalidArgument("WritePage: page out of range");
  }
  MOOD_RETURN_IF_ERROR(WriteFrameLocked(page_id, data));
  stats_.writes++;
  return Status::OK();
}

Status DiskManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("DiskManager not open");
  if (auto fp = CheckFailPoint("disk.sync")) {
    if (fp->crash()) std::abort();
    return fp->Error("disk.sync");
  }
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

}  // namespace mood
