#include "index/join_index.h"

namespace mood {

std::string BinaryJoinIndex::OidKey(Oid oid) {
  // Big-endian packed oid: memcmp order == numeric order (not semantically
  // required, but keeps scans deterministic).
  uint64_t v = oid.Pack();
  std::string key;
  for (int i = 7; i >= 0; i--) key.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  return key;
}

Result<std::unique_ptr<BinaryJoinIndex>> BinaryJoinIndex::Create(BufferPool* pool,
                                                                 FileDirectory* alloc) {
  MOOD_ASSIGN_OR_RETURN(auto fwd, BPlusTree::Create(pool, alloc, /*unique=*/false));
  MOOD_ASSIGN_OR_RETURN(auto bwd, BPlusTree::Create(pool, alloc, /*unique=*/false));
  return std::unique_ptr<BinaryJoinIndex>(
      new BinaryJoinIndex(std::move(fwd), std::move(bwd)));
}

Result<std::unique_ptr<BinaryJoinIndex>> BinaryJoinIndex::Open(BufferPool* pool,
                                                               FileDirectory* alloc,
                                                               PageId forward_meta,
                                                               PageId backward_meta) {
  MOOD_ASSIGN_OR_RETURN(auto fwd, BPlusTree::Open(pool, alloc, forward_meta));
  MOOD_ASSIGN_OR_RETURN(auto bwd, BPlusTree::Open(pool, alloc, backward_meta));
  return std::unique_ptr<BinaryJoinIndex>(
      new BinaryJoinIndex(std::move(fwd), std::move(bwd)));
}

Status BinaryJoinIndex::Add(Oid from, Oid to) {
  MOOD_RETURN_IF_ERROR(forward_->Insert(OidKey(from), to.Pack()));
  return backward_->Insert(OidKey(to), from.Pack());
}

Status BinaryJoinIndex::Remove(Oid from, Oid to) {
  MOOD_RETURN_IF_ERROR(forward_->Delete(OidKey(from), to.Pack()));
  return backward_->Delete(OidKey(to), from.Pack());
}

Result<std::vector<Oid>> BinaryJoinIndex::Targets(Oid from) const {
  MOOD_ASSIGN_OR_RETURN(auto raw, forward_->SearchEqual(OidKey(from)));
  std::vector<Oid> out;
  out.reserve(raw.size());
  for (uint64_t v : raw) out.push_back(Oid::Unpack(v));
  return out;
}

Result<std::vector<Oid>> BinaryJoinIndex::Sources(Oid to) const {
  MOOD_ASSIGN_OR_RETURN(auto raw, backward_->SearchEqual(OidKey(to)));
  std::vector<Oid> out;
  out.reserve(raw.size());
  for (uint64_t v : raw) out.push_back(Oid::Unpack(v));
  return out;
}

Result<std::unique_ptr<PathIndex>> PathIndex::Create(BufferPool* pool,
                                                     FileDirectory* alloc) {
  MOOD_ASSIGN_OR_RETURN(auto tree, BPlusTree::Create(pool, alloc, /*unique=*/false));
  return std::unique_ptr<PathIndex>(new PathIndex(std::move(tree)));
}

Result<std::unique_ptr<PathIndex>> PathIndex::Open(BufferPool* pool,
                                                   FileDirectory* alloc,
                                                   PageId meta_page) {
  MOOD_ASSIGN_OR_RETURN(auto tree, BPlusTree::Open(pool, alloc, meta_page));
  return std::unique_ptr<PathIndex>(new PathIndex(std::move(tree)));
}

Status PathIndex::Add(Slice key, Oid root) { return tree_->Insert(key, root.Pack()); }

Status PathIndex::Remove(Slice key, Oid root) {
  return tree_->Delete(key, root.Pack());
}

Result<std::vector<Oid>> PathIndex::Lookup(Slice key) const {
  MOOD_ASSIGN_OR_RETURN(auto raw, tree_->SearchEqual(key));
  std::vector<Oid> out;
  out.reserve(raw.size());
  for (uint64_t v : raw) out.push_back(Oid::Unpack(v));
  return out;
}

Result<std::vector<Oid>> PathIndex::LookupRange(const std::string* lo,
                                                const std::string* hi) const {
  std::vector<Oid> out;
  MOOD_RETURN_IF_ERROR(tree_->Scan(lo, hi, [&](Slice, uint64_t v) {
    out.push_back(Oid::Unpack(v));
    return Status::OK();
  }));
  return out;
}

}  // namespace mood
