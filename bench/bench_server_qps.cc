// bench_server_qps: wire-server throughput and reader-latency benchmark.
//
// Phases:
//   1. read QPS at 1 connection (hot SELECT, result-cache friendly),
//   2. read QPS at 8 connections (scaling = phase2 / phase1),
//   3. reader p50 with 8 pure readers,
//   4. reader p50 with 7 readers + 1 committing writer (MVCC: readers run at
//      snapshots and never wait on the writer's locks; pinned-snapshot readers
//      keep hitting the result cache while the writer creates versions).
//
// Shape checks: multi-connection scaling must not collapse, and the mixed
// reader p50 must stay within 1.3x of the reader-only p50. The 4x scaling
// floor from the issue is asserted only on hosts with >= 4 cores — scaling
// out of one connection comes from overlapping request latency with server
// work, which a single-core host cannot express.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"
#include "net/server.h"

namespace mood::bench {
namespace {

using net::MoodClient;
using net::MoodServer;
using net::ServerOptions;

uint64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr const char* kHotQuery = "SELECT a.id, a.val FROM Acc a WHERE a.val >= 0";

struct ReaderStats {
  uint64_t ops = 0;
  std::vector<uint64_t> lat_us;
};

/// Runs `conns` reader threads for `duration_ms`; each pins a snapshot, spins
/// the hot query, and re-pins every 64 reads so its view keeps advancing.
std::vector<ReaderStats> RunReaders(uint16_t port, size_t conns,
                                    uint64_t duration_ms) {
  std::vector<ReaderStats> stats(conns);
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (size_t t = 0; t < conns; t++) {
    threads.emplace_back([&, t] {
      MoodClient c;
      Check(c.Connect("127.0.0.1", port), "reader connect");
      Check(c.BeginSnapshot(), "pin snapshot");
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const uint64_t deadline = NowUs() + duration_ms * 1000;
      uint64_t reads = 0;
      while (NowUs() < deadline) {
        const uint64_t start = NowUs();
        auto qr = c.Execute(kHotQuery);
        Check(qr.status(), "reader execute");
        stats[t].lat_us.push_back(NowUs() - start);
        stats[t].ops++;
        if (++reads % 64 == 0) {
          Check(c.EndSnapshot(), "unpin");
          Check(c.BeginSnapshot(), "re-pin");
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return stats;
}

double TotalQps(const std::vector<ReaderStats>& stats, uint64_t duration_ms) {
  uint64_t ops = 0;
  for (const auto& s : stats) ops += s.ops;
  return static_cast<double>(ops) * 1000.0 / static_cast<double>(duration_ms);
}

double P50Us(const std::vector<ReaderStats>& stats) {
  std::vector<uint64_t> all;
  for (const auto& s : stats) all.insert(all.end(), s.lat_us.begin(), s.lat_us.end());
  if (all.empty()) return 0;
  std::nth_element(all.begin(), all.begin() + all.size() / 2, all.end());
  return static_cast<double>(all[all.size() / 2]);
}

}  // namespace
}  // namespace mood::bench

int main(int argc, char** argv) {
  using namespace mood;
  using namespace mood::bench;

  const bool json = WantJson(argc, argv);
  const uint64_t kDurationMs = 2000;

  BenchDb scratch("server_qps");
  Database db;
  DatabaseOptions dbopts;
  // The bench measures server concurrency and MVCC read behavior, not commit
  // durability (bench_wal_commit owns the fsync axis): don't let the writer's
  // fsync stretch its pending-version window artificially.
  dbopts.wal_fsync = WalFsync::kOff;
  Check(db.Open(scratch.Path("mood"), dbopts), "open");
  Check(db.ExecuteScript("CREATE CLASS Acc TUPLE (id Integer, val Integer);").status(),
        "schema");
  for (int i = 0; i < 64; i++) {
    Check(db.Execute("NEW Acc <" + std::to_string(i) + ", 0>").status(), "seed row");
  }
  // Point-probe index for the writer's UPDATE: the bench measures how much a
  // committing writer disturbs readers, so the writer's own scan cost should
  // be minimal.
  Check(db.Execute("CREATE INDEX acc_id ON Acc(id) USING BTREE").status(), "index");
  Check(db.CollectAllStatistics(), "stats");

  MoodServer server;
  ServerOptions opts;
  opts.worker_threads = std::max<size_t>(4, std::thread::hardware_concurrency());
  Check(server.Start(&db, opts), "server start");

  Banner("read QPS vs connection count");
  auto one = RunReaders(server.port(), 1, kDurationMs);
  const double qps1 = TotalQps(one, kDurationMs);
  auto eight = RunReaders(server.port(), 8, kDurationMs);
  const double qps8 = TotalQps(eight, kDurationMs);
  const double scaling = qps1 > 0 ? qps8 / qps1 : 0;
  const double p50_read_only = P50Us(eight);
  {
    Table t({"conns", "qps", "p50_us"});
    t.AddRow({"1", Fmt(qps1, 0), Fmt(P50Us(one), 1)});
    t.AddRow({"8", Fmt(qps8, 0), Fmt(p50_read_only, 1)});
    t.Print();
    std::printf("scaling 8/1: %.2fx\n", scaling);
  }

  Banner("mixed 7 readers + 1 writer");
  std::atomic<bool> stop_writer{false};
  std::atomic<uint64_t> commits{0};
  std::thread writer([&] {
    MoodClient w;
    Check(w.Connect("127.0.0.1", server.port()), "writer connect");
    while (!stop_writer.load(std::memory_order_acquire)) {
      if (!w.Begin().ok()) continue;
      if (w.Execute("UPDATE Acc a SET val = a.val + 1 WHERE a.id = 0").ok() &&
          w.Commit().ok()) {
        commits.fetch_add(1);
      } else {
        (void)w.Abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  auto mixed = RunReaders(server.port(), 7, kDurationMs);
  stop_writer.store(true, std::memory_order_release);
  writer.join();
  const double p50_mixed = P50Us(mixed);
  const double p50_ratio = p50_read_only > 0 ? p50_mixed / p50_read_only : 0;
  {
    Table t({"workload", "reader_p50_us", "reader_qps", "writer_commits"});
    t.AddRow({"8 readers", Fmt(p50_read_only, 1), Fmt(qps8, 0), "-"});
    t.AddRow({"7r + 1w", Fmt(p50_mixed, 1), Fmt(TotalQps(mixed, kDurationMs), 0),
              std::to_string(commits.load())});
    t.Print();
    std::printf("reader p50 mixed/read-only: %.2fx\n", p50_ratio);
  }

  server.Stop();

  Checks checks;
  checks.Expect(qps1 > 0 && qps8 > 0, "both phases completed requests");
  checks.Expect(commits.load() > 0, "writer committed under reader load");
  if (std::thread::hardware_concurrency() >= 4) {
    checks.Expect(scaling >= 4.0, "8-conn read QPS >= 4x 1-conn");
  } else {
    // One core cannot overlap client and server work; just require that
    // multi-connection traffic doesn't collapse the aggregate.
    checks.Expect(scaling >= 0.5, "8-conn read QPS >= 0.5x 1-conn (1-core host)");
  }
  if (std::thread::hardware_concurrency() >= 4) {
    checks.Expect(p50_ratio <= 1.3,
                  "mixed-workload reader p50 <= 1.3x read-only p50 (readers "
                  "never wait on the writer)");
  } else {
    // On one core the writer's own CPU (~25% of the core at this commit
    // cadence) inflates reader queueing no matter how reads are isolated;
    // the check degrades to "no lock convoy": S-lock readers blocking behind
    // writer transactions would push this past 10x, MVCC keeps it near 1.
    checks.Expect(p50_ratio <= 2.0,
                  "mixed-workload reader p50 <= 2.0x read-only p50 "
                  "(no reader-writer lock convoy; 1-core host)");
  }

  if (json) {
    JsonReport report("bench_server_qps");
    report.Metric("read_qps", "conns_1", qps1);
    report.Metric("read_qps", "conns_8", qps8);
    report.Metric("read_qps", "scaling_8_vs_1", scaling);
    report.Metric("reader_p50_us", "read_only_8r", p50_read_only);
    report.Metric("reader_p50_us", "mixed_7r_1w", p50_mixed);
    report.Metric("reader_p50_us", "mixed_over_read_only", p50_ratio);
    report.Metric("writer", "commits", static_cast<double>(commits.load()));
    AddMetricsSnapshot(&report, db.metrics());
    report.Emit(JsonPath(argc, argv));
  }
  Check(db.Close(), "close");
  return checks.ExitCode();
}
