// Commit-throughput sweep: committer threads x WAL fsync mode.
//
// Measures commits/sec through the full TransactionManager path (begin, one
// heap insert, commit) for wal_fsync = always | group | off at 1..8 committer
// threads. The point of the sweep is the group-commit win: with >= 4
// concurrent committers one fsync retires a whole batch of commits, so
// `group` should clearly beat `always` there while `off` bounds what the log
// write path costs without durability.

#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "storage/storage_manager.h"
#include "txn/lock_manager.h"
#include "txn/log_manager.h"
#include "txn/transaction.h"

using namespace mood;
using namespace mood::bench;

namespace {

constexpr int kCommitsPerThread = 200;

const char* ModeName(WalFsync mode) {
  switch (mode) {
    case WalFsync::kAlways: return "always";
    case WalFsync::kGroup: return "group";
    case WalFsync::kOff: return "off";
  }
  return "?";
}

struct RunResult {
  double commits_per_sec = 0;
  double fsyncs_per_commit = 0;
};

RunResult RunSweep(const BenchDb& scratch, WalFsync mode, int threads) {
  std::string tag = std::string(ModeName(mode)) + "_t" + std::to_string(threads);
  StorageManager storage;
  Check(storage.Open(scratch.Path(tag + ".mood")), "storage open");
  LogManager log;
  WalOptions wopts;
  wopts.fsync_mode = mode;
  wopts.group_commit_window_us = 100;
  Check(log.Open(scratch.Path(tag + ".wal"), wopts), "wal open");
  LockManager locks;
  TransactionManager txns(storage.buffer_pool(), &log, &locks);
  // One heap file per committer: HeapFile writers must be serialized per file
  // by the caller (the SQL layer does this with its strict-2PL extent locks,
  // which this bench bypasses). Separate files keep inserts race-free while
  // every commit still contends on the one shared log — the path under test.
  std::vector<HeapFile*> files(threads, nullptr);
  for (int t = 0; t < threads; t++) {
    auto fid = storage.CreateFile();
    Check(fid.status(), "create file");
    auto hf = storage.GetFile(fid.value());
    Check(hf.status(), "get file");
    files[t] = hf.value();
  }

  const int total = threads * kCommitsPerThread;
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; i++) {
        auto txn = txns.Begin();
        Check(txn.status(), "begin");
        std::string payload =
            "c" + std::to_string(t) + "-" + std::to_string(i) + std::string(64, 'p');
        Check(files[t]->Insert(payload, txn.value()).status(), "insert");
        Check(txns.Commit(txn.value()), "commit");
      }
    });
  }
  for (auto& w : workers) w.join();
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  RunResult r;
  r.commits_per_sec = total / secs;
  r.fsyncs_per_commit = static_cast<double>(log.fsyncs()) / total;
  // Storage first: its dirty-page flush still runs the WAL-rule pre-flush
  // hook, which needs the log open.
  Check(storage.Close(), "storage close");
  Check(log.Close(), "wal close");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchDb scratch("wal_commit");
  const WalFsync modes[] = {WalFsync::kAlways, WalFsync::kGroup, WalFsync::kOff};
  const int thread_counts[] = {1, 2, 4, 8};

  JsonReport report("wal_commit");
  Banner("Commit throughput: fsync mode x committer threads");
  Table table({"mode", "threads", "commits/s", "fsyncs/commit"});
  double always4 = 0, group4 = 0;
  for (WalFsync mode : modes) {
    for (int threads : thread_counts) {
      RunResult r = RunSweep(scratch, mode, threads);
      table.AddRow({ModeName(mode), std::to_string(threads),
                    Fmt(r.commits_per_sec, 0), Fmt(r.fsyncs_per_commit, 3)});
      std::string key = std::string(ModeName(mode)) + "_t" + std::to_string(threads);
      report.Metric("commits_per_sec", key, r.commits_per_sec);
      report.Metric("fsyncs_per_commit", key, r.fsyncs_per_commit);
      if (threads == 4 && mode == WalFsync::kAlways) always4 = r.commits_per_sec;
      if (threads == 4 && mode == WalFsync::kGroup) group4 = r.commits_per_sec;
    }
  }
  table.Print();
  std::printf("group/always speedup at 4 committers: %.2fx\n",
              always4 > 0 ? group4 / always4 : 0.0);
  report.Metric("speedup", "group_over_always_t4",
                always4 > 0 ? group4 / always4 : 0.0);

  if (WantJson(argc, argv)) report.Emit(JsonPath(argc, argv));
  return 0;
}
