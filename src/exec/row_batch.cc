#include "exec/row_batch.h"

namespace mood {

void RowBatch::Reset(size_t slots, size_t cap) {
  nslots = slots;
  capacity = cap;
  nrows = 0;
  cols.assign(slots * cap, Oid{});
  sel.clear();
  sel_active = false;
}

void RowBatch::Clear() {
  nrows = 0;
  sel.clear();
  sel_active = false;
}

void RowBatch::PushRow(const Oid* row, size_t n) {
  for (size_t s = 0; s < n; s++) cols[s * capacity + nrows] = row[s];
  nrows++;
}

void RowBatch::GatherRow(uint32_t row, Oid* out) const {
  for (size_t s = 0; s < nslots; s++) out[s] = cols[s * capacity + row];
}

size_t BatchSet::ActiveRows() const {
  size_t n = 0;
  for (const RowBatch& b : batches) n += b.ActiveRows();
  return n;
}

std::vector<std::pair<uint32_t, uint32_t>> BatchSet::LiveIndex() const {
  std::vector<std::pair<uint32_t, uint32_t>> idx;
  idx.reserve(ActiveRows());
  for (size_t b = 0; b < batches.size(); b++) {
    const RowBatch& batch = batches[b];
    for (size_t k = 0; k < batch.ActiveRows(); k++) {
      idx.emplace_back(static_cast<uint32_t>(b), batch.RowAt(k));
    }
  }
  return idx;
}

void BatchAppender::Push(const Oid* row, size_t n) {
  if (out_->batches.empty() || out_->batches.back().Full()) {
    out_->batches.emplace_back(nslots_, capacity_);
  }
  out_->batches.back().PushRow(row, n);
}

}  // namespace mood
