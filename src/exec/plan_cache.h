#pragma once

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "exec/expr_compile.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "sql/binder.h"

namespace mood {

/// Canonical cache-key form of one statement's SQL text: the token stream
/// re-rendered with single spaces, upper-cased keywords, requoted strings and
/// no trailing ';', with any leading EXPLAIN/ANALYZE/VERBOSE prefix stripped —
/// so `select  X.a from C x;` and `SELECT x.a FROM C x` share one entry, and
/// EXPLAIN can probe for the plan its SELECT would use. Returns "" for text
/// that does not lex (such statements simply bypass the caches).
std::string NormalizeSql(const std::string& sql);

/// Parameter-type signature of one execution's bound values, e.g.
/// "Integer,Float". Part of the plan-cache key: a plan is reused only across
/// executions whose parameters carry the same value kinds, so an `?`-probe
/// optimized under integer comparison semantics never serves float bindings.
std::string ParamTypeSignature(const std::vector<MoodValue>& params);

/// One extent file a query reads, with its write epoch at stamp time.
struct TouchedExtent {
  uint16_t file = 0;
  uint64_t write_epoch = 0;
};

/// Returns the current write epoch of an extent file (bound to
/// ObjectManager::WriteEpochOf by the database facade).
using WriteEpochFn = std::function<uint64_t(uint16_t)>;

/// One cached optimized plan plus everything needed to re-execute it without
/// parse/optimize/compile work: the bound query, the physical plan, and the
/// memo of compiled expression programs populated by the first execution.
struct CachedPlan {
  QueryOptimizer::Optimized optimized;
  /// Compiled ExprPrograms keyed by the plan's Expr nodes; shared by every
  /// execution of this entry, so steady-state runs skip expression lowering.
  ProgramMemoPtr programs;
  uint32_t param_count = 0;
  /// Catalog schema epoch and statistics plans-version at build time; a
  /// mismatch at lookup invalidates the entry (DDL or feedback-driven change).
  uint64_t schema_epoch = 0;
  uint64_t plans_version = 0;
  /// Extent files the plan reads, stamped with build-time write epochs.
  /// Plan validity tolerates churn up to the configured delta (stale stats
  /// cost optimality, not correctness); the result cache requires exactness.
  std::vector<TouchedExtent> extents;
  /// True when the statement is read-only and method-free, i.e. its output is
  /// a pure function of the touched extents and the bound parameters — the
  /// precondition for serving it from the result cache.
  bool result_cacheable = false;
};
using CachedPlanPtr = std::shared_ptr<const CachedPlan>;

/// Bounded LRU of optimized plans keyed by normalized SQL + parameter-type
/// signature (+ the feedback flag, which changes what the optimizer may use).
/// Entries are validated lazily at lookup against the current schema epoch,
/// statistics plans-version and extent write-epoch churn; invalid entries are
/// dropped and counted, so DDL and heavy writes cannot pin stale plans.
class PlanCache {
 public:
  /// `max_entries` = 0 disables the cache (Lookup always misses, Insert drops).
  /// `churn_delta`: write-epoch movement on any touched extent beyond which a
  /// plan re-optimizes (mirrors FeedbackOptions::refresh_epoch_delta).
  void Configure(size_t max_entries, uint64_t churn_delta);
  /// Counter hookup (nullptrs allowed; detach before registry teardown).
  void SetMetrics(MetricCounter* hits, MetricCounter* misses,
                  MetricCounter* evictions, MetricCounter* invalidations) {
    hits_ = hits;
    misses_ = misses;
    evictions_ = evictions;
    invalidations_ = invalidations;
  }

  /// Returns the cached plan for `key`, or nullptr on miss. A present entry
  /// whose schema epoch / plans-version moved, or whose extents churned past
  /// the configured delta, is erased (counted as invalidation + miss).
  CachedPlanPtr Lookup(const std::string& key, uint64_t cur_schema_epoch,
                       uint64_t cur_plans_version, const WriteEpochFn& epoch_of);

  void Insert(const std::string& key, CachedPlanPtr plan);

  /// True when any entry exists for this normalized SQL text, regardless of
  /// parameter signature. Read-only (no LRU touch, no validation): EXPLAIN
  /// uses it to annotate `[plan: cached]` without perturbing the cache.
  bool ContainsSql(const std::string& normalized_sql) const;

  void Clear();
  size_t size() const;
  size_t capacity() const { return max_entries_; }

 private:
  struct Node {
    std::string key;
    CachedPlanPtr plan;
  };

  mutable std::mutex mu_;
  size_t max_entries_ = 0;
  uint64_t churn_delta_ = 0;
  std::list<Node> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  MetricCounter* hits_ = nullptr;
  MetricCounter* misses_ = nullptr;
  MetricCounter* evictions_ = nullptr;
  MetricCounter* invalidations_ = nullptr;
};

/// Byte-bounded LRU of query results for read-only, method-free statements,
/// keyed by plan-cache key + the exact bound parameter values. An entry is
/// served only while the schema epoch and every touched extent's write epoch
/// still equal the values captured before the caching execution began — any
/// intervening write (even one racing that execution; see Insert) makes the
/// next lookup recompute, so a cached result is never stale.
class ResultCache {
 public:
  /// `max_bytes` = 0 disables the cache. A single result larger than
  /// max_bytes is never admitted.
  void Configure(size_t max_bytes);
  void SetMetrics(MetricCounter* hits, MetricCounter* misses,
                  MetricCounter* evictions, MetricCounter* invalidations) {
    hits_ = hits;
    misses_ = misses;
    evictions_ = evictions;
    invalidations_ = invalidations;
  }

  bool Lookup(const std::string& key, uint64_t cur_schema_epoch,
              const WriteEpochFn& epoch_of, QueryResult* out);

  /// Admits a result stamped with the epochs captured BEFORE its execution
  /// started. Re-reads each extent's current epoch through `epoch_of` first:
  /// if anything moved while the query ran, the result may reflect a torn
  /// read and is silently dropped instead of cached.
  void Insert(const std::string& key, const QueryResult& result,
              uint64_t schema_epoch, const std::vector<TouchedExtent>& extents,
              const WriteEpochFn& epoch_of);

  void Clear();
  size_t size() const;
  size_t bytes() const;
  size_t capacity_bytes() const { return max_bytes_; }

 private:
  struct Node {
    std::string key;
    QueryResult result;
    uint64_t schema_epoch = 0;
    std::vector<TouchedExtent> extents;
    size_t bytes = 0;
  };

  void EvictToFitLocked(size_t incoming);

  mutable std::mutex mu_;
  size_t max_bytes_ = 0;
  size_t used_bytes_ = 0;
  std::list<Node> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  MetricCounter* hits_ = nullptr;
  MetricCounter* misses_ = nullptr;
  MetricCounter* evictions_ = nullptr;
  MetricCounter* invalidations_ = nullptr;
};

/// Approximate in-memory footprint of a result, for the byte budget.
size_t ApproxResultBytes(const QueryResult& result);

/// Serialized bound-parameter values for the result-cache key (binary
/// encoding, so 2 and 2.0 key differently even though they compare equal).
std::string ParamValueKey(const std::vector<MoodValue>& params);

/// Computes the extent files a bound query can read — every FROM class (with
/// its subclass subtree: EVERY scans and references both reach subclass
/// extents) plus every class traversed by a path expression — each stamped
/// with its current write epoch. Sets *method_free to false when any path
/// step resolves to a method (whose body the epoch machinery cannot see).
Status CollectTouchedExtents(Catalog* catalog, ObjectManager* objects,
                             const BoundQuery& bound,
                             std::vector<TouchedExtent>* extents,
                             bool* method_free);

}  // namespace mood
