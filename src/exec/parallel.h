#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"

namespace mood {

/// Worker-thread count used when the caller asks for "as many as the hardware
/// allows" (std::thread::hardware_concurrency, never less than 1).
size_t DefaultExecThreads();

/// Half-open row range [begin, end): one unit of parallel work.
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Rows per morsel. Small enough that skewed predicates still load-balance,
/// large enough that the per-morsel dispatch cost is noise.
inline constexpr size_t kMorselRows = 256;

/// Partitions [0, n) into fixed-size morsels; the last one may be short.
std::vector<Morsel> MakeMorsels(size_t n, size_t morsel_size = kMorselRows);

/// Runs `task(i)` for every i in [0, num_tasks) on up to `threads` workers.
/// Workers pull indexes from a shared cursor (morsel-driven scheduling: work
/// distribution adapts to per-morsel cost skew instead of pre-partitioning).
///
/// Error semantics are deterministic: if any tasks fail, the returned status is
/// the failure with the *smallest* task index — exactly the error an in-order
/// serial run would surface first. Tasks with indexes above an already-recorded
/// failure may be skipped (their results would be discarded anyway).
///
/// With threads <= 1 or num_tasks <= 1 the tasks run inline on the calling
/// thread, in order, stopping at the first failure.
Status ParallelFor(size_t threads, size_t num_tasks,
                   const std::function<Status(size_t)>& task);

}  // namespace mood
