#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/storage_manager.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// Thread count for the torture tests below; MOOD_TEST_THREADS=<n> overrides
/// (the tsan/ubsan CTest presets run the suite at 2 and 8).
size_t TestThreads() {
  const char* env = std::getenv("MOOD_TEST_THREADS");
  if (env != nullptr && std::atoi(env) > 0) return static_cast<size_t>(std::atoi(env));
  return 8;
}
const size_t kThreads = TestThreads();

/// Deterministic per-thread pseudo-random stream (no shared RNG state).
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

// ---------------------------------------------------------------------------
// BufferPool under concurrent fetch/unpin pressure
// ---------------------------------------------------------------------------

/// N threads hammer FetchPage/UnpinPage over a pool far smaller than the
/// working set, so eviction races with fetches constantly. Invariants:
///  - every fetch observes the page bytes written at setup (no torn frames),
///  - hits + misses == total fetches (no lost or double-counted lookups),
///  - no pins leak (PinnedPageCount() drains to zero).
TEST(BufferPoolConcurrencyTest, HammerFetchUnpin) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  constexpr size_t kPages = 64;
  constexpr size_t kPoolFrames = 8;  // working set is 8x the pool
  constexpr size_t kFetchesPerThread = 400;
  {
    BufferPool setup(&disk, kPoolFrames);
    for (size_t i = 0; i < kPages; i++) {
      MOOD_ASSERT_OK_AND_ASSIGN(Page* p, setup.NewPage());
      std::memset(p->data(), static_cast<int>(i & 0xFF), kPageSize);
      MOOD_ASSERT_OK(setup.UnpinPage(p->page_id(), true));
    }
    MOOD_ASSERT_OK(setup.FlushAll());
  }

  BufferPool pool(&disk, kPoolFrames);
  std::atomic<size_t> content_errors{0};
  std::atomic<size_t> fetch_errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Lcg rng(t);
      for (size_t i = 0; i < kFetchesPerThread; i++) {
        PageId id = static_cast<PageId>(rng.Next() % kPages);
        auto r = pool.FetchPage(id);
        if (!r.ok()) {
          fetch_errors.fetch_add(1);
          continue;
        }
        Page* p = r.value();
        // Sample a few bytes: a frame mid-eviction or shared between two pages
        // would show foreign content.
        const char expect = static_cast<char>(id & 0xFF);
        if (p->data()[0] != expect || p->data()[kPageSize / 2] != expect ||
            p->data()[kPageSize - 1] != expect) {
          content_errors.fetch_add(1);
        }
        if (!pool.UnpinPage(id, false).ok()) fetch_errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(fetch_errors.load(), 0u);
  EXPECT_EQ(content_errors.load(), 0u);
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kFetchesPerThread);
  EXPECT_GE(s.misses, kPages - kPoolFrames);  // the working set cannot fit
  EXPECT_LE(s.evictions, s.misses);
  EXPECT_EQ(pool.PinnedPageCount(), 0u) << "leaked pins after hammer";
}

/// Pins held by one thread must survive other threads' eviction pressure: a
/// pinned page's frame may not be repurposed while the pin is held.
TEST(BufferPoolConcurrencyTest, PinnedFramesStableUnderPressure) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  constexpr size_t kPages = 32;
  {
    BufferPool setup(&disk, 4);
    for (size_t i = 0; i < kPages; i++) {
      MOOD_ASSERT_OK_AND_ASSIGN(Page* p, setup.NewPage());
      std::memset(p->data(), static_cast<int>(i & 0xFF), kPageSize);
      MOOD_ASSERT_OK(setup.UnpinPage(p->page_id(), true));
    }
    MOOD_ASSERT_OK(setup.FlushAll());
  }

  BufferPool pool(&disk, 4);
  MOOD_ASSERT_OK_AND_ASSIGN(Page* pinned, pool.FetchPage(0));
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      Lcg rng(100 + t);
      for (size_t i = 0; i < 300; i++) {
        PageId id = 1 + static_cast<PageId>(rng.Next() % (kPages - 1));
        auto r = pool.FetchPage(id);
        // With 4 frames, one pinned, and 4 concurrent readers the pool can
        // legitimately be exhausted — only successful fetches are checked.
        if (!r.ok()) continue;
        if (r.value()->data()[0] != static_cast<char>(id & 0xFF)) errors.fetch_add(1);
        if (!pool.UnpinPage(id, false).ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  // The pinned frame was never evicted out from under us.
  EXPECT_EQ(pinned->page_id(), 0u);
  EXPECT_EQ(pinned->data()[0], static_cast<char>(0));
  MOOD_ASSERT_OK(pool.UnpinPage(0, false));
  EXPECT_EQ(pool.PinnedPageCount(), 0u);
}

/// stats()/ResetStats() racing fetches must stay coherent: a snapshot never
/// tears, and the counters settle to exactly the post-reset fetch count.
TEST(BufferPoolConcurrencyTest, StatsSnapshotsCoherentUnderFetches) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  constexpr size_t kPages = 16;
  {
    BufferPool setup(&disk, 4);
    for (size_t i = 0; i < kPages; i++) {
      MOOD_ASSERT_OK_AND_ASSIGN(Page* p, setup.NewPage());
      MOOD_ASSERT_OK(setup.UnpinPage(p->page_id(), true));
    }
    MOOD_ASSERT_OK(setup.FlushAll());
  }

  BufferPool pool(&disk, 4);
  constexpr size_t kFetchesPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      Lcg rng(t);
      for (size_t i = 0; i < kFetchesPerThread; i++) {
        PageId id = static_cast<PageId>(rng.Next() % kPages);
        auto r = pool.FetchPage(id);
        ASSERT_TRUE(r.ok());
        ASSERT_TRUE(pool.UnpinPage(id, false).ok());
      }
    });
  }
  go = true;
  // Reader thread: snapshots may lag but must never exceed the upper bound of
  // all fetches issued, and evictions never exceed misses.
  for (int i = 0; i < 200; i++) {
    BufferPoolStats s = pool.stats();
    EXPECT_LE(s.hits + s.misses, 4 * kFetchesPerThread);
    EXPECT_LE(s.evictions, s.misses + 4);  // +pool_size: setup left residents
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, 4 * kFetchesPerThread);
  pool.ResetStats();
  s = pool.stats();
  EXPECT_EQ(s.hits + s.misses + s.evictions, 0u);
}

// ---------------------------------------------------------------------------
// HeapFile scans from many threads over a pool smaller than the file
// ---------------------------------------------------------------------------

class HeapFileConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions opts;
    opts.pool_pages = 8;  // file spans more pages than the pool holds
    MOOD_ASSERT_OK(storage_.Open(dir_.Path("db"), opts));
    MOOD_ASSERT_OK_AND_ASSIGN(FileId id, storage_.CreateFile());
    MOOD_ASSERT_OK_AND_ASSIGN(file_, storage_.GetFile(id));
    for (int i = 0; i < 600; i++) {
      MOOD_ASSERT_OK(
          file_->Insert("record-" + std::to_string(i) + std::string(50, 'x'))
              .status());
    }
    for (auto it = file_->Begin(); it.Valid(); it.Next()) {
      serial_records_.push_back(it.record());
    }
    ASSERT_EQ(serial_records_.size(), 600u);
  }

  TempDir dir_;
  StorageManager storage_;
  HeapFile* file_ = nullptr;
  std::vector<std::string> serial_records_;
};

TEST_F(HeapFileConcurrencyTest, ConcurrentFullScansAgree) {
  std::vector<std::vector<std::string>> scans(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (auto it = file_->Begin(); it.Valid(); it.Next()) {
        scans[t].push_back(it.record());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 0; t < kThreads; t++) {
    EXPECT_EQ(scans[t], serial_records_) << "thread " << t;
  }
  EXPECT_EQ(storage_.buffer_pool()->PinnedPageCount(), 0u);
}

TEST_F(HeapFileConcurrencyTest, PartitionedPageScansEqualIteratorOrder) {
  MOOD_ASSERT_OK_AND_ASSIGN(std::vector<PageId> pages, file_->PageIds());
  ASSERT_GT(pages.size(), 8u);  // really bigger than the pool

  // Scan every page from a different thread (round-robin), then merge in page
  // order — the partitioned scan must reproduce the iterator sequence exactly.
  std::vector<std::vector<std::string>> per_page(pages.size());
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = cursor.fetch_add(1);
        if (i >= pages.size()) return;
        Status st = file_->ScanPage(pages[i], [&](RecordId, const std::string& rec) {
          per_page[i].push_back(rec);
          return Status::OK();
        });
        if (!st.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  std::vector<std::string> merged;
  for (auto& page_records : per_page) {
    for (auto& r : page_records) merged.push_back(std::move(r));
  }
  EXPECT_EQ(merged, serial_records_);
  EXPECT_EQ(storage_.buffer_pool()->PinnedPageCount(), 0u);
}

// ---------------------------------------------------------------------------
// Object-level concurrent readers (extent scans + method invocation)
// ---------------------------------------------------------------------------

class ObjectConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.pool_pages = 32;  // pressure: paper data at scale 80 exceeds this
    opts.exec_threads = 1;
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood"), opts));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK(paperdb::PopulatePaperData(&db_, 80).status());
  }

  TempDir dir_;
  Database db_;
};

TEST_F(ObjectConcurrencyTest, ConcurrentExtentScansAgree) {
  std::vector<Oid> serial;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent("Vehicle", true, {},
                                           [&](Oid oid, const MoodValue&) {
                                             serial.push_back(oid);
                                             return Status::OK();
                                           }));
  ASSERT_FALSE(serial.empty());

  std::vector<std::vector<Oid>> scans(kThreads);
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Status st = db_.objects()->ScanExtent("Vehicle", true, {},
                                            [&](Oid oid, const MoodValue&) {
                                              scans[t].push_back(oid);
                                              return Status::OK();
                                            });
      if (!st.ok()) errors.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  for (size_t t = 0; t < kThreads; t++) {
    EXPECT_EQ(scans[t].size(), serial.size()) << "thread " << t;
    EXPECT_TRUE(scans[t] == serial) << "thread " << t << " diverged";
  }
  EXPECT_EQ(db_.storage()->buffer_pool()->PinnedPageCount(), 0u);
}

TEST_F(ObjectConcurrencyTest, ConcurrentMethodInvocationsKeepStatsCoherent) {
  // Collect receivers serially, then invoke lbweight() from many threads: the
  // FunctionManager's lazy load and counters must stay coherent.
  std::vector<Oid> vehicles;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent("Vehicle", false, {},
                                           [&](Oid oid, const MoodValue&) {
                                             vehicles.push_back(oid);
                                             return Status::OK();
                                           }));
  ASSERT_FALSE(vehicles.empty());
  db_.functions()->ResetStats();

  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (Oid v : vehicles) {
        auto val = db_.objects()->Fetch(v);
        if (!val.ok()) {
          errors.fetch_add(1);
          continue;
        }
        auto attrs = db_.objects()->catalog()->AllAttributes("Vehicle");
        if (!attrs.ok()) {
          errors.fetch_add(1);
          continue;
        }
        std::vector<std::string> names;
        for (const auto& a : attrs.value()) names.push_back(a.name);
        MethodContext ctx;
        ctx.self = v;
        ctx.self_value = &val.value();
        ctx.attr_names = &names;
        ctx.deref = [this](Oid o) { return db_.objects()->Fetch(o); };
        auto r = db_.functions()->Invoke("Vehicle", "lbweight", ctx, {});
        if (!r.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  FunctionManager::InvokeStats s = db_.functions()->stats();
  // Every invocation is counted exactly once, whichever path served it.
  EXPECT_EQ(s.cold_loads + s.warm_calls + s.fallback_calls,
            kThreads * vehicles.size());
  EXPECT_EQ(s.errors, 0u);
}

}  // namespace
}  // namespace mood
