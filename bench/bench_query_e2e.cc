// End-to-end value of the Section 7/8 optimizer: runs the paper's example
// queries through (a) the optimized plan and (b) a naive executor that scans
// the cross product of the FROM extents and evaluates the whole WHERE clause
// per row, and reports wall-clock times and result parity.

#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"
#include "exec/parallel.h"
#include "sql/parser.h"

using namespace mood;
using namespace mood::bench;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

/// Naive execution: cross product of FROM extents, full WHERE per row.
Result<size_t> NaiveCount(Database* db, const std::string& sql) {
  MOOD_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(sql));
  const auto& select = std::get<SelectStmt>(stmt);
  std::vector<std::vector<Oid>> extents;
  for (const auto& fe : select.from) {
    std::vector<Oid> oids;
    MOOD_RETURN_IF_ERROR(db->objects()->ScanExtent(fe.class_name, fe.every,
                                                   fe.excludes,
                                                   [&](Oid oid, const MoodValue&) {
                                                     oids.push_back(oid);
                                                     return Status::OK();
                                                   }));
    extents.push_back(std::move(oids));
  }
  size_t count = 0;
  std::vector<size_t> idx(extents.size(), 0);
  std::function<Result<size_t>(size_t, Evaluator::Env&)> rec =
      [&](size_t depth, Evaluator::Env& env) -> Result<size_t> {
    if (depth == extents.size()) {
      if (select.where == nullptr) return size_t{1};
      MOOD_ASSIGN_OR_RETURN(bool keep, db->evaluator()->EvalPredicate(select.where, env));
      return keep ? size_t{1} : size_t{0};
    }
    size_t sub = 0;
    for (Oid oid : extents[depth]) {
      env.vars[select.from[depth].var] = oid;
      MOOD_ASSIGN_OR_RETURN(size_t n, rec(depth + 1, env));
      sub += n;
    }
    return sub;
  };
  Evaluator::Env env;
  MOOD_ASSIGN_OR_RETURN(count, rec(0, env));
  return count;
}

/// Collects per-operator q-errors (max(actual/est, est/actual), 0.5 floors on
/// both sides) over every profiled operator that carries estimates.
void CollectQErrors(const QueryProfile& p, std::vector<double>* out) {
  if (p.has_estimates && p.est_rows > 0) {
    double actual = std::max<double>(p.rows_out, 0.5);
    double est = std::max(p.est_rows, 0.5);
    out->push_back(std::max(actual / est, est / actual));
  }
  for (const auto& c : p.children) CollectQErrors(*c, out);
}

struct QErrorSummary {
  double median = 1.0;
  double max = 1.0;
};

QErrorSummary SummarizeQErrors(const QueryProfile& p) {
  std::vector<double> q;
  CollectQErrors(p, &q);
  QErrorSummary s;
  if (q.empty()) return s;
  std::sort(q.begin(), q.end());
  s.median = q[q.size() / 2];
  s.max = q.back();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = WantJson(argc, argv);
  JsonReport report_json("bench_query_e2e");
  BenchDb scratch("query_e2e");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  auto report = CheckV(paperdb::PopulatePaperData(&db, 800), "populate");
  Check(db.CollectAllStatistics(), "collect");
  Check(db.Execute("CREATE INDEX eng_cyl ON VehicleEngine(cylinders) USING BTREE")
            .status(),
        "index");
  Check(db.CollectStatistics("VehicleEngine"), "recollect");
  // The timing sections below measure parse/optimize/execute work, so the
  // plan/result caches must stay out of the way; the repeated-query section
  // at the end opts back in per call to measure exactly the caches' effect.
  QueryOptions no_cache_default;
  no_cache_default.use_cache = false;
  db.SetDefaultQueryOptions(no_cache_default);

  std::printf("scale: %llu vehicles, %llu engines, %llu companies\n",
              (unsigned long long)report.vehicles, (unsigned long long)report.engines,
              (unsigned long long)report.companies);

  struct Query {
    const char* label;
    const char* key;  ///< short metric name for --json output
    std::string sql;
    bool run_naive;
  };
  std::vector<Query> queries = {
      {"Example 8.1 (two path predicates)", "example81", paperdb::kExample81Query, true},
      {"Example 8.2 (one path predicate)", "example82", paperdb::kExample82Query, true},
      {"Section 3.1 (explicit join, cross product for naive)", "section31",
       paperdb::kSection31Query, true},
      {"indexed immediate selection", "indexed_select",
       "SELECT e FROM VehicleEngine e WHERE e.cylinders = 4", true},
      {"filter scan (no index)", "filter_scan",
       "SELECT e FROM VehicleEngine e WHERE e.size % 7 < 3", true},
  };

  Checks checks;

  // --- Feedback warmup: one profiled run per query writes measured
  // selectivities and per-operation costs back into the statistics manager;
  // a second profiled run shows the q-errors after the loop closes. Every
  // later section runs against the warmed-up optimizer.
  Banner("Feedback warmup (profiled; q-error cold vs warm)");
  Table ft({"query", "cold ms", "cold qerr med/max", "warm qerr med/max"});
  for (const auto& q : queries) {
    ExplainOptions eo;
    eo.analyze = true;
    auto start = std::chrono::steady_clock::now();
    auto cold = CheckV(db.Explain(q.sql, eo), q.label);
    double cold_ms = MillisSince(start);
    report_json.Metric("optimized_cold_ms", q.key, cold_ms);
    QErrorSummary cold_q = SummarizeQErrors(*cold.profile);
    auto warm = CheckV(db.Explain(q.sql, eo), q.label);
    QErrorSummary warm_q = SummarizeQErrors(*warm.profile);
    report_json.Metric("qerror_median", q.key, warm_q.median);
    report_json.Metric("qerror_max", q.key, warm_q.max);
    ft.AddRow({q.label, Fmt(cold_ms, 1),
               Fmt(cold_q.median, 2) + " / " + Fmt(cold_q.max, 1),
               Fmt(warm_q.median, 2) + " / " + Fmt(warm_q.max, 1)});
  }
  ft.Print();
  std::printf(
      "the first profiled run executes on pure model estimates and records\n"
      "observed cardinalities keyed by predicate signature; the second run's\n"
      "estimates come from those measurements, so its q-errors sit near 1.\n");

  Banner("Optimized vs naive execution (post-warmup, min of 5/3)");
  Table t({"query", "optimized ms", "naive ms", "speedup", "rows", "naive rows"});
  for (const auto& q : queries) {
    double opt_ms = 1e300;
    QueryResult qr;
    for (int i = 0; i < 5; i++) {
      auto start = std::chrono::steady_clock::now();
      qr = CheckV(db.Query(q.sql), q.label);
      opt_ms = std::min(opt_ms, MillisSince(start));
    }
    report_json.Metric("optimized_ms", q.key, opt_ms);

    std::string naive_ms = "-", naive_rows = "-", speedup = "-";
    if (q.run_naive) {
      double ms = 1e300;
      size_t n = 0;
      for (int i = 0; i < 3; i++) {
        auto start = std::chrono::steady_clock::now();
        n = CheckV(NaiveCount(&db, q.sql), "naive");
        ms = std::min(ms, MillisSince(start));
      }
      report_json.Metric("naive_ms", q.key, ms);
      naive_ms = Fmt(ms, 1);
      naive_rows = std::to_string(n);
      speedup = Fmt(ms / std::max(opt_ms, 0.001), 1) + "x";
      checks.Expect(n == qr.rows.size(),
                    std::string(q.label) + ": naive and optimized agree");
      // The point of the feedback loop: after one profiled warmup the
      // optimizer must never lose to the naive cross-product evaluator
      // (pre-feedback, example81 ran ~20x slower optimized than naive).
      checks.Expect(opt_ms <= 1.1 * ms + 0.1,
                    std::string(q.label) + ": optimized <= 1.1x naive (" +
                        Fmt(opt_ms, 2) + " vs " + Fmt(ms, 2) + ")");
    }
    t.AddRow({q.label, Fmt(opt_ms, 1), naive_ms, speedup, std::to_string(qr.rows.size()),
              naive_rows});
  }
  t.Print();
  std::printf(
      "the optimizer's win shows on multi-variable queries, where the naive\n"
      "evaluator pays the cross product (Section 3.1's two range variables).\n"
      "On single-variable path queries the feedback loop is what keeps the\n"
      "optimized plan honest: measured selectivities and per-operation costs\n"
      "replace the paper's 1994 disk model, so chain expansion is only chosen\n"
      "when it actually beats a residual filter over the bound extent.\n");

  // --- Morsel-driven parallelism: the same optimized plans at 1/2/4/8 workers.
  Banner("Intra-query parallelism (threads axis)");
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  Table pt({"query", "t=1 ms", "t=2 ms", "t=4 ms", "t=8 ms", "rows"});
  for (const auto& q : queries) {
    QueryOptions serial_opts;
    serial_opts.exec_threads = 1;
    auto serial = CheckV(db.Query(q.sql, serial_opts), q.label);
    std::vector<std::string> cells = {q.label};
    for (size_t threads : thread_counts) {
      QueryOptions opts;
      opts.exec_threads = threads;
      auto start = std::chrono::steady_clock::now();
      auto qr = CheckV(db.Query(q.sql, opts), q.label);
      double par_ms = MillisSince(start);
      report_json.Metric(std::string("parallel_ms_t") + std::to_string(threads),
                         q.key, par_ms);
      cells.push_back(Fmt(par_ms, 2));
      // Parity is the hard assertion; wall-clock scaling depends on the host's
      // core count (this table is informative, not pass/fail).
      checks.Expect(qr.ToString() == serial.ToString(),
                    std::string(q.label) + ": identical at " +
                        std::to_string(threads) + " threads");
    }
    cells.push_back(std::to_string(serial.rows.size()));
    pt.AddRow(cells);
  }
  pt.Print();
  std::printf(
      "hardware_concurrency on this host: %zu. Results are merged in morsel\n"
      "order, so every thread count returns byte-identical rows; speedup needs\n"
      "real cores and working sets past the hot-cache regime.\n",
      DefaultExecThreads());
  // --- Batch-at-a-time execution: the same plans across the batch-size axis,
  // diffed against the row-at-a-time oracle (QueryOptions::batch_size = 0).
  Banner("Batched execution (batch-size axis, oracle parity, t=1)");
  const std::vector<size_t> batch_axis = {0, 256, 1024, 4096};
  MetricCounter* fallback_counter = db.metrics()->Counter("exec.expr.fallback");
  Table bt({"query", "b=0 ms", "b=256 ms", "b=1024 ms", "b=4096 ms", "b1024 t2 ms",
            "b1024 t8 ms", "rows"});
  for (const auto& q : queries) {
    QueryOptions oracle_opts;
    oracle_opts.exec_threads = 1;
    oracle_opts.batch_size = 0;
    auto oracle = CheckV(db.Query(q.sql, oracle_opts), q.label);
    std::vector<std::string> cells = {q.label};
    for (size_t batch : batch_axis) {
      QueryOptions opts;
      opts.exec_threads = 1;
      opts.batch_size = batch;
      uint64_t fb_before = fallback_counter->value();
      auto start = std::chrono::steady_clock::now();
      auto qr = CheckV(db.Query(q.sql, opts), q.label);
      double ms = MillisSince(start);
      report_json.Metric("batch_ms_b" + std::to_string(batch), q.key, ms);
      cells.push_back(Fmt(ms, 2));
      checks.Expect(qr.ToString() == oracle.ToString(),
                    std::string(q.label) + ": batch=" + std::to_string(batch) +
                        " matches row-at-a-time oracle");
      // The bench queries are type-clean, so batched evaluation must complete
      // without a single per-row interpreter fallback.
      checks.Expect(fallback_counter->value() == fb_before,
                    std::string(q.label) + ": batch=" + std::to_string(batch) +
                        " zero runtime fallbacks");
    }
    // Default batch size at 2 and 8 workers: whole batches are the morsel unit.
    for (size_t threads : {2u, 8u}) {
      QueryOptions opts;
      opts.exec_threads = threads;
      opts.batch_size = 1024;
      auto start = std::chrono::steady_clock::now();
      auto qr = CheckV(db.Query(q.sql, opts), q.label);
      double ms = MillisSince(start);
      report_json.Metric("batch_ms_b1024_t" + std::to_string(threads), q.key, ms);
      cells.push_back(Fmt(ms, 2));
      checks.Expect(qr.ToString() == oracle.ToString(),
                    std::string(q.label) + ": batch=1024 t=" +
                        std::to_string(threads) + " matches oracle");
    }
    cells.push_back(std::to_string(oracle.rows.size()));
    bt.AddRow(cells);
  }
  bt.Print();
  std::printf(
      "batch mode reuses the morsel merge contract with RowBatches as the work\n"
      "unit, so every (batch size, thread count) cell is byte-identical to the\n"
      "row-at-a-time oracle; timings separate dispatch overhead (small batches)\n"
      "from columnar evaluation (large batches).\n");

  // --- Compiled expression programs: the same plans with predicate/projection
  // compilation on vs off (QueryOptions::compile_expressions).
  Banner("Expression compilation (compiled vs interpreted, t=1, median of 9)");
  std::vector<Query> compile_queries = queries;
  // `size` has no index, so these stay full scans with per-row evaluation —
  // the regime predicate compilation targets.
  compile_queries.push_back({"filter-heavy scalar arithmetic", "filter_scalar",
                             "SELECT e FROM VehicleEngine e WHERE "
                             "(e.size * 3 + e.size / 2 - 7) % 1000 > 100 AND "
                             "e.size * 2 - e.size / 4 > 500",
                             false});
  compile_queries.push_back({"filter-heavy comparison chain", "filter_chain",
                             "SELECT e FROM VehicleEngine e WHERE "
                             "e.size >= 1100 AND e.size <= 1350 AND "
                             "NOT (e.size = 1200)",
                             false});
  const int kCompileIters = 9;
  auto median_ms = [&](const std::string& sql, bool compile) {
    QueryOptions opts;
    opts.exec_threads = 1;
    opts.compile_expressions = compile;
    std::vector<double> ms;
    for (int i = 0; i < kCompileIters; i++) {
      auto start = std::chrono::steady_clock::now();
      CheckV(db.Query(sql, opts), sql.c_str());
      ms.push_back(MillisSince(start));
    }
    std::sort(ms.begin(), ms.end());
    return ms[ms.size() / 2];
  };
  MetricCounter* expr_fallback = db.metrics()->Counter("exec.expr.fallback");
  Table ct({"query", "interpreted ms", "compiled ms", "speedup"});
  for (const auto& q : compile_queries) {
    QueryOptions off, on;
    off.compile_expressions = false;
    off.exec_threads = 1;
    on.exec_threads = 1;
    auto interp_res = CheckV(db.Query(q.sql, off), q.label);
    uint64_t fb_before = expr_fallback->value();
    auto comp_res = CheckV(db.Query(q.sql, on), q.label);
    checks.Expect(comp_res.ToString() == interp_res.ToString(),
                  std::string(q.label) + ": compiled matches interpreted");
    if (q.key == std::string("filter_scalar") || q.key == std::string("filter_chain")) {
      checks.Expect(expr_fallback->value() == fb_before,
                    std::string(q.label) + ": no runtime fallback (pure scalar)");
    }
    double interp_ms = median_ms(q.sql, false);
    double comp_ms = median_ms(q.sql, true);
    report_json.Metric("interpreted_ms", q.key, interp_ms);
    report_json.Metric("compiled_ms", q.key, comp_ms);
    report_json.Metric("compile_speedup", q.key, interp_ms / std::max(comp_ms, 0.001));
    ct.AddRow({q.label, Fmt(interp_ms, 2), Fmt(comp_ms, 2),
               Fmt(interp_ms / std::max(comp_ms, 0.001), 2) + "x"});
  }
  ct.Print();
  std::printf(
      "compilation pays off where per-row evaluation dominates (scalar\n"
      "filter-heavy queries); pointer-chasing queries spend their time in\n"
      "object fetches, which both evaluation paths share.\n");
  // --- Repeated-query traffic: the same statement issued over and over, as a
  // hot OLTP-ish workload would. Cold re-runs the whole lex/parse/optimize/
  // compile pipeline per call (use_cache = false); warm goes through
  // Execute(sql) with the plan + result caches on; prepared skips even the
  // re-parse via Database::Prepare.
  Banner("Repeated-query traffic (cold vs warm-cache vs prepared)");
  const int kRepeat = 200;
  QueryOptions cached_opts;
  cached_opts.use_cache = true;
  double speedup_min = 1e300;
  Table rt({"query", "cold q/s", "warm q/s", "prepared q/s", "warm x", "prepared x"});
  for (const auto& q : queries) {
    auto cold_ref = CheckV(db.Query(q.sql), q.label);  // session default: uncached
    auto time_qps = [&](auto&& body) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kRepeat; i++) body();
      double ms = MillisSince(start);
      return kRepeat / std::max(ms, 1e-6) * 1000.0;
    };
    double cold_qps = time_qps([&] { CheckV(db.Query(q.sql), q.label); });
    double warm_qps =
        time_qps([&] { CheckV(db.Query(q.sql, cached_opts), q.label); });
    auto ps = CheckV(db.Prepare(q.sql), q.label);
    double prep_qps = time_qps([&] { CheckV(ps.Query({}, cached_opts), q.label); });
    // Parity: the cached paths must return exactly the uncached rows.
    auto warm_res = CheckV(db.Query(q.sql, cached_opts), q.label);
    auto prep_res = CheckV(ps.Query({}, cached_opts), q.label);
    checks.Expect(warm_res.ToString() == cold_ref.ToString(),
                  std::string(q.label) + ": warm-cache rows identical to uncached");
    checks.Expect(prep_res.ToString() == cold_ref.ToString(),
                  std::string(q.label) + ": prepared rows identical to uncached");
    report_json.Metric("repeat_cold_qps", q.key, cold_qps);
    report_json.Metric("repeat_warm_qps", q.key, warm_qps);
    report_json.Metric("repeat_prepared_qps", q.key, prep_qps);
    const double warm_x = warm_qps / std::max(cold_qps, 0.001);
    const double prep_x = prep_qps / std::max(cold_qps, 0.001);
    report_json.Metric("repeat_prepared_speedup", q.key, prep_x);
    speedup_min = std::min(speedup_min, prep_x);
    rt.AddRow({q.label, Fmt(cold_qps, 0), Fmt(warm_qps, 0), Fmt(prep_qps, 0),
               Fmt(warm_x, 1) + "x", Fmt(prep_x, 1) + "x"});
  }
  rt.Print();
  checks.Expect(speedup_min >= 5.0,
                "warm-cache prepared execution >= 5x cold on every query (min " +
                    Fmt(speedup_min, 1) + "x)");
  std::printf(
      "cold pays lex+parse+optimize+compile per call; warm hits the plan cache\n"
      "(and, for these read-only statements, the result cache) through the\n"
      "same Execute(sql) the REPL uses; prepared also skips re-parsing.\n");

  if (json) {
    AddMetricsSnapshot(&report_json, db.metrics());
    report_json.Emit(JsonPath(argc, argv));
  }
  return checks.ExitCode();
}
