#include "core/database.h"

#include <algorithm>

#include "core/session.h"
#include "exec/parallel.h"
#include "optimizer/feedback.h"
#include "txn/version_store.h"
#include "types/operand.h"

namespace mood {

namespace {
/// Statement-scoped snapshot pin: releases the CSN pin on every exit path so
/// an error return can never leak a pin (a leaked pin wedges version GC).
struct SnapshotPin {
  VersionStore* store = nullptr;
  uint64_t snap = 0;
  ~SnapshotPin() {
    if (store != nullptr) store->UnpinSnapshot(snap);
  }
};
}  // namespace

Database::Database() {
  // The implicit session exists for the Database's whole lifetime (it backs
  // the facade's own SQL surface even before Open / after Close).
  implicit_ = std::unique_ptr<Session>(new Session(this, alive_));
  sessions_.push_back(implicit_.get());
}

Database::~Database() {
  // Outstanding TxnHandles and sessions check this flag before dereferencing
  // their back pointer; flip it first so anything destroyed after us is a
  // no-op.
  *alive_ = false;
  if (is_open()) Close();
}

std::unique_ptr<Session> Database::CreateSession() {
  auto session = std::unique_ptr<Session>(new Session(this, alive_));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.push_back(session.get());
  return session;
}

Status Database::Open(const std::string& path, const DatabaseOptions& options) {
  if (is_open()) return Status::InvalidArgument("database already open");
  options_ = options;
  storage_ = std::make_unique<StorageManager>();
  StorageOptions sopts;
  sopts.pool_pages = options.pool_pages;
  sopts.pool_shards = options.pool_shards;
  sopts.readahead_pages = options.readahead_pages;
  // With a WAL, torn data pages are healed from logged full images, so the
  // directory load may tolerate them; without one they stay hard errors.
  sopts.tolerate_torn_pages = options.enable_wal;
  MOOD_RETURN_IF_ERROR(storage_->Open(path + ".mood", sopts));

  if (options.enable_wal) {
    log_ = std::make_unique<LogManager>();
    WalOptions wopts;
    wopts.fsync_mode = options.wal_fsync;
    wopts.group_commit_window_us = options.group_commit_window_us;
    MOOD_RETURN_IF_ERROR(log_->Open(path + ".wal", wopts));
    locks_ = std::make_unique<LockManager>();
    txn_manager_ = std::make_unique<TransactionManager>(storage_->buffer_pool(),
                                                        log_.get(), locks_.get());
    // Crash recovery: replay any log left by an unclean shutdown.
    RecoveryManager recovery(storage_->buffer_pool(), log_.get());
    MOOD_ASSIGN_OR_RETURN(auto report, recovery.Recover());
    (void)report;
    // The directory was read before replay; re-read it from recovered pages.
    MOOD_RETURN_IF_ERROR(storage_->ReloadDirectory());
  }

  // MVCC version store: always present, WAL or not. Transactions stamp their
  // batches at durable commit; autocommit writes use self-committing
  // mini-batches inside ObjectManager.
  versions_ = std::make_unique<VersionStore>();
  if (txn_manager_ != nullptr) txn_manager_->SetVersionStore(versions_.get());

  catalog_ = std::make_unique<Catalog>();
  MOOD_RETURN_IF_ERROR(catalog_->Open(storage_.get()));
  objects_ = std::make_unique<ObjectManager>(storage_.get(), catalog_.get());
  objects_->SetVersionStore(versions_.get());
  functions_ = std::make_unique<FunctionManager>(catalog_.get());
  evaluator_ = std::make_unique<Evaluator>(objects_.get(), functions_.get());
  algebra_ = std::make_unique<MoodAlgebra>(objects_.get(), evaluator_.get());
  stats_ = std::make_unique<StatisticsManager>(objects_.get());
  FeedbackOptions fopts;
  fopts.max_entries = options.feedback_entries;
  fopts.refresh_epoch_delta = options.stats_refresh_epoch_delta;
  stats_->Configure(options.stats_histogram_buckets, fopts);
  optimizer_ = std::make_unique<QueryOptimizer>(catalog_.get(), objects_.get(),
                                                stats_.get(), options.optimizer);
  executor_ =
      std::make_unique<Executor>(objects_.get(), evaluator_.get(), algebra_.get());
  executor_->set_threads(options.exec_threads == 0 ? DefaultExecThreads()
                                                   : options.exec_threads);
  executor_->set_deref_cache_capacity(options.deref_cache_entries);
  executor_->set_batch_size(options.batch_size);
  schema_browser_ = std::make_unique<SchemaBrowser>(catalog_.get());
  object_browser_ = std::make_unique<ObjectBrowser>(objects_.get());
  plan_cache_ = std::make_unique<PlanCache>();
  plan_cache_->Configure(options.plan_cache_entries, options.stats_refresh_epoch_delta);
  result_cache_ = std::make_unique<ResultCache>();
  result_cache_->Configure(options.result_cache_bytes);
  matviews_ = std::make_unique<MvManager>(catalog_.get(), objects_.get(),
                                          optimizer_.get(), executor_.get());
  MOOD_RETURN_IF_ERROR(matviews_->Load(catalog_->AllViews()));
  // Delta capture: every object write (inside the exclusive gate, after the
  // write-epoch bump) routes through the view dependency graph.
  objects_->SetWriteObserver(
      [this](uint16_t file, Oid oid) { matviews_->OnWrite(file, oid); });
  implicit_->SetDefaultQueryOptions(QueryOptions{});

  // Engine metrics: every kernel component registers its probe; the facade
  // owns the execution counters. Probes hold component pointers, so Close()
  // tears the registry down first.
  metrics_ = std::make_unique<MetricsRegistry>();
  storage_->RegisterMetrics(metrics_.get());
  objects_->RegisterMetrics(metrics_.get());
  versions_->RegisterMetrics(metrics_.get());
  functions_->RegisterMetrics(metrics_.get());
  if (locks_ != nullptr) locks_->RegisterMetrics(metrics_.get());
  if (log_ != nullptr) log_->RegisterMetrics(metrics_.get());
  statements_counter_ = metrics_->Counter("exec.statements");
  queries_counter_ = metrics_->Counter("exec.queries");
  explains_counter_ = metrics_->Counter("exec.explains");
  slow_counter_ = metrics_->Counter("exec.slow_queries");
  query_us_hist_ = metrics_->Histogram("exec.query_us");
  executor_->SetExprMetrics(metrics_->Counter("exec.expr.compiled"),
                            metrics_->Counter("exec.expr.fallback"),
                            metrics_->Counter("exec.expr.const_folded"));
  executor_->SetBatchMetrics(metrics_->Counter("exec.batch.batches"),
                             metrics_->Counter("exec.batch.rows"));
  stats_->SetMetrics(metrics_->Counter("stats.feedback_hits"),
                     metrics_->Counter("stats.feedback_writes"),
                     metrics_->Counter("stats.feedback_invalidations"),
                     metrics_->Counter("stats.refreshes"));
  feedback_absorbed_counter_ = metrics_->Counter("stats.feedback_absorbed");
  plan_cache_->SetMetrics(metrics_->Counter("cache.plan.hits"),
                          metrics_->Counter("cache.plan.misses"),
                          metrics_->Counter("cache.plan.evictions"),
                          metrics_->Counter("cache.plan.invalidations"));
  result_cache_->SetMetrics(metrics_->Counter("cache.result.hits"),
                            metrics_->Counter("cache.result.misses"),
                            metrics_->Counter("cache.result.evictions"),
                            metrics_->Counter("cache.result.invalidations"));
  matviews_->SetMetrics(metrics_->Counter("mv.hits"),
                        metrics_->Counter("mv.maintenance_rows"),
                        metrics_->Counter("mv.full_refreshes"),
                        metrics_->Counter("mv.rebuilds"));

  // "The power of object oriented applications lies in the interpretation":
  // methods without a registered compiled body fall back to interpreting simple
  // `return <expr>;` bodies.
  functions_->SetInterpretedFallback(
      [this](const std::string& cls, const MoodsFunction& decl, const MethodContext& ctx,
             const std::vector<MoodValue>& args) {
        return InterpretMethodBody(cls, decl, ctx, args);
      });
  return Status::OK();
}

Status Database::Close() {
  if (!is_open()) return Status::OK();
  {
    // Abort every session's open transaction and release pinned snapshots.
    // Any TxnHandle still out there becomes inert: Session::FinishTxn rejects
    // it once the session's txn_ is cleared.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (Session* s : sessions_) {
      if (s->txn_ != nullptr && txn_manager_ != nullptr) {
        MOOD_RETURN_IF_ERROR(txn_manager_->Abort(s->txn_));
        s->txn_ = nullptr;
      }
      if (s->snapshot_pinned_ && versions_ != nullptr) {
        versions_->UnpinSnapshot(s->snap_csn_);
        s->snapshot_pinned_ = false;
      }
    }
  }
  if (txn_manager_ != nullptr) txn_manager_->PruneCompleted();
  MOOD_RETURN_IF_ERROR(Checkpoint());
  // Executor holds raw counter pointers into the registry; detach them first.
  executor_->SetExprMetrics(nullptr, nullptr, nullptr);
  executor_->SetBatchMetrics(nullptr, nullptr);
  stats_->SetMetrics(nullptr, nullptr, nullptr, nullptr);
  plan_cache_->SetMetrics(nullptr, nullptr, nullptr, nullptr);
  result_cache_->SetMetrics(nullptr, nullptr, nullptr, nullptr);
  objects_->SetWriteObserver(nullptr);
  matviews_->SetMetrics(nullptr, nullptr, nullptr, nullptr);
  metrics_.reset();
  statements_counter_ = queries_counter_ = explains_counter_ = slow_counter_ = nullptr;
  query_us_hist_ = nullptr;
  feedback_absorbed_counter_ = nullptr;
  schema_browser_.reset();
  object_browser_.reset();
  plan_cache_.reset();
  result_cache_.reset();
  matviews_.reset();
  executor_.reset();
  optimizer_.reset();
  stats_.reset();
  algebra_.reset();
  evaluator_.reset();
  functions_.reset();
  objects_.reset();
  catalog_.reset();
  txn_manager_.reset();
  locks_.reset();
  versions_.reset();
  if (log_) {
    MOOD_RETURN_IF_ERROR(log_->Close());
    log_.reset();
  }
  MOOD_RETURN_IF_ERROR(storage_->Close());
  storage_.reset();
  return Status::OK();
}

Result<TxnHandle> Database::Begin() { return implicit_->Begin(); }

bool Database::in_transaction() const { return implicit_->in_transaction(); }

TxnHandle& TxnHandle::operator=(TxnHandle&& other) noexcept {
  if (this == &other) return *this;
  if (txn_ != nullptr && SessionAlive()) {
    (void)session_->FinishTxn(txn_, /*commit=*/false);
  }
  session_ = other.session_;
  txn_ = other.txn_;
  session_alive_ = std::move(other.session_alive_);
  other.session_ = nullptr;
  other.txn_ = nullptr;
  return *this;
}

TxnHandle::~TxnHandle() {
  if (txn_ != nullptr && SessionAlive()) {
    (void)session_->FinishTxn(txn_, /*commit=*/false);
  }
}

Status TxnHandle::Commit() {
  if (txn_ == nullptr) return Status::InvalidArgument("transaction handle is empty");
  if (!SessionAlive()) {
    Reset();
    return Status::InvalidArgument("session no longer exists");
  }
  Status st = session_->FinishTxn(txn_, /*commit=*/true);
  Reset();
  return st;
}

Status TxnHandle::Abort() {
  if (txn_ == nullptr) return Status::InvalidArgument("transaction handle is empty");
  if (!SessionAlive()) {
    Reset();
    return Status::InvalidArgument("session no longer exists");
  }
  Status st = session_->FinishTxn(txn_, /*commit=*/false);
  Reset();
  return st;
}

Status Database::Checkpoint() {
  // Exclusive gate: page flushing must not observe a writer mid-mutation.
  CommitGate::ExclusiveGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  MOOD_RETURN_IF_ERROR(storage_->Checkpoint());
  if (log_ && (txn_manager_ == nullptr || !txn_manager_->HasActive())) {
    MOOD_RETURN_IF_ERROR(log_->Truncate());
  }
  return Status::OK();
}

Status Database::CollectStatistics(const std::string& class_name) {
  // Shared gate: the collection scan reads heap pages that concurrent writers
  // mutate only inside the gate's exclusive sections.
  CommitGate::SharedGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  return stats_->Collect(class_name);
}

Status Database::CollectAllStatistics() {
  for (const MoodsType* t : catalog_->AllTypes()) {
    if (t->is_class) MOOD_RETURN_IF_ERROR(CollectStatistics(t->name));
  }
  return Status::OK();
}

Status Database::RegisterMethod(const std::string& class_name,
                                const MoodsFunction& decl, NativeFunction body) {
  return functions_->Register(class_name, decl, std::move(body));
}

Result<ExecResult> Database::Execute(const std::string& sql) {
  return implicit_->Execute(sql, QueryOptions{});
}

ResolvedQueryOptions Database::ResolveFor(const Session& s,
                                          const QueryOptions& options) const {
  auto pick = [](const auto& call, const auto& session, auto fallback) {
    return call.has_value() ? *call
                            : (session.has_value() ? *session : fallback);
  };
  const QueryOptions& d = s.defaults_;
  ResolvedQueryOptions r;
  r.exec_threads = pick(options.exec_threads, d.exec_threads, size_t{0});
  r.batch_size = pick(options.batch_size, d.batch_size, ExecOptions::kInheritBatch);
  r.deref_cache_entries =
      pick(options.deref_cache_entries, d.deref_cache_entries, ExecOptions::kInheritCache);
  r.collect_profile = pick(options.collect_profile, d.collect_profile, false);
  r.compile_expressions = pick(options.compile_expressions, d.compile_expressions, true);
  r.feedback = pick(options.feedback, d.feedback, true);
  r.use_cache = pick(options.use_cache, d.use_cache, true);
  return r;
}

ResolvedQueryOptions Database::Resolve(const QueryOptions& options) const {
  return ResolveFor(*implicit_, options);
}

void Database::SetDefaultQueryOptions(const QueryOptions& options) {
  implicit_->SetDefaultQueryOptions(options);
}

const QueryOptions& Database::default_query_options() const {
  return implicit_->default_query_options();
}

Result<ExecResult> Database::Execute(const std::string& sql,
                                     const QueryOptions& options) {
  return implicit_->Execute(sql, options);
}

Result<PreparedStatement> Database::Prepare(const std::string& sql) {
  if (!is_open()) return Status::InvalidArgument("database is not open");
  MOOD_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(sql));
  auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) {
    return Status::InvalidArgument("Prepare supports SELECT statements only");
  }
  auto shared = std::make_shared<const SelectStmt>(std::move(*select));
  const uint32_t params = ParamCount(*shared);
  return PreparedStatement(this, alive_, std::move(shared), NormalizeSql(sql),
                           params);
}

PreparedStatement& PreparedStatement::operator=(PreparedStatement&& other) noexcept {
  if (this == &other) return *this;
  db_ = other.db_;
  db_alive_ = std::move(other.db_alive_);
  stmt_ = std::move(other.stmt_);
  normalized_sql_ = std::move(other.normalized_sql_);
  param_count_ = other.param_count_;
  other.db_ = nullptr;
  other.param_count_ = 0;
  return *this;
}

Result<ExecResult> PreparedStatement::Execute(const std::vector<MoodValue>& params,
                                              const QueryOptions& options) const {
  if (stmt_ == nullptr) return Status::InvalidArgument("prepared statement is empty");
  if (!DbAlive()) return Status::InvalidArgument("database no longer exists");
  if (params.size() != param_count_) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(param_count_) + " parameter(s), got " +
        std::to_string(params.size()));
  }
  return db_->ExecPrepared(*db_->implicit_, *stmt_, normalized_sql_, params, options);
}

Result<QueryResult> PreparedStatement::Query(const std::vector<MoodValue>& params,
                                             const QueryOptions& options) const {
  MOOD_ASSIGN_OR_RETURN(ExecResult res, Execute(params, options));
  return std::move(res.query);
}

Result<ExecResult> Database::ExecPrepared(Session& s, const SelectStmt& stmt,
                                          const std::string& normalized_sql,
                                          const std::vector<MoodValue>& params,
                                          const QueryOptions& options) {
  if (!is_open()) return Status::InvalidArgument("database is not open");
  if (statements_counter_ != nullptr) statements_counter_->Add(1);
  uint64_t start = ProfileNowNs();
  Result<ExecResult> res =
      ExecSelectCached(s, stmt, ResolveFor(s, options), params, normalized_sql);
  if (res.ok()) {
    double elapsed_ms = static_cast<double>(ProfileNowNs() - start) / 1e6;
    size_t threads = ResolveFor(s, options).exec_threads;
    if (threads == 0) threads = executor_->threads();
    NoteQuery(normalized_sql, elapsed_ms, res.value().query.rows.size(), threads);
  }
  return res;
}

Result<ExecResult> Database::ExecuteScript(const std::string& sql) {
  return implicit_->ExecuteScript(sql);
}

Result<QueryResult> Database::Query(const std::string& sql) {
  return implicit_->Query(sql, QueryOptions{});
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const QueryOptions& options) {
  return implicit_->Query(sql, options);
}

Result<ExplainResult> Database::Explain(const std::string& sql,
                                        const ExplainOptions& options) {
  MOOD_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(sql));
  if (const auto* ex = std::get_if<ExplainStmt>(&stmt)) {
    // `EXPLAIN [ANALYZE] SELECT ...` text passed through the API: statement
    // flags merge with (never cancel) the caller's options.
    ExplainOptions merged = options;
    merged.analyze = options.analyze || ex->analyze;
    merged.verbose = options.verbose || ex->verbose;
    return ExplainSelect(*implicit_, ex->select, merged, NormalizeSql(sql));
  }
  const auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) return Status::InvalidArgument("EXPLAIN requires SELECT");
  return ExplainSelect(*implicit_, *select, options, NormalizeSql(sql));
}

Result<ExplainResult> Database::ExplainSelect(Session& s, const SelectStmt& stmt,
                                              const ExplainOptions& options,
                                              const std::string& cache_sql) {
  if (explains_counter_ != nullptr) explains_counter_->Add(1);
  const ResolvedQueryOptions r = ResolveFor(s, options.query);
  ExplainResult out;
  out.options = options;
  // EXPLAIN always re-optimizes: its plan copy is annotated (notes below,
  // AnnotateCompilation) and must never alias a shared cached plan. The cache
  // is only *probed* to report whether execution would hit it.
  MOOD_ASSIGN_OR_RETURN(out.optimized, optimizer_->Optimize(stmt, r.feedback));
  if (options.verbose && r.compile_expressions) {
    // Annotate each predicate-bearing operator with compiled/interpreted so
    // EXPLAIN VERBOSE shows which evaluation path execution would take.
    executor_->AnnotateCompilation(out.optimized.plan.get(),
                                   out.optimized.bound.range_vars);
  }
  if (options.verbose && plan_cache_ != nullptr && !cache_sql.empty()) {
    const bool cached = plan_cache_->ContainsSql(cache_sql);
    std::string& note = out.optimized.plan->note;
    const std::string tag = cached ? "plan: cached" : "plan: fresh";
    // "] [" keeps existing annotations (e.g. "[exprs: compiled]") intact as
    // their own bracket group in the rendered plan line.
    note = note.empty() ? tag : note + "] [" + tag;
  }
  if (options.verbose && matviews_ != nullptr && !cache_sql.empty() &&
      s.txn_ == nullptr && matviews_->WouldServe(cache_sql)) {
    // Execution would serve this statement from a materialized extent instead
    // of the plan below (freshness permitting).
    std::string& note = out.optimized.plan->note;
    note = note.empty() ? std::string("mv: rewritten")
                        : note + "] [" + "mv: rewritten";
  }
  if (options.analyze) {
    out.analyzed = true;
    out.profile = std::make_shared<QueryProfile>();
    out.profile->label = "RESULT";
    ExecOptions exec;
    exec.threads = r.exec_threads;
    exec.deref_cache_entries = r.deref_cache_entries;
    exec.compile_expressions = r.compile_expressions;
    exec.batch_size = r.batch_size;
    exec.profile = out.profile.get();
    // Same read physics as ExecSelectCached: outside a write transaction the
    // ANALYZE run reads a consistent snapshot under the shared gate.
    const bool snapshot_read = versions_ != nullptr && s.txn_ == nullptr;
    CommitGate::SharedGuard gate(snapshot_read ? &versions_->gate() : nullptr);
    SnapshotPin pin;
    if (snapshot_read) {
      uint64_t snap = s.snapshot_pinned_ ? s.snap_csn_ : versions_->PinSnapshot();
      if (!s.snapshot_pinned_) {
        pin.store = versions_.get();
        pin.snap = snap;
      }
      exec.snapshot = SnapshotView{versions_.get(), snap};
    }
    uint64_t start = ProfileNowNs();
    MOOD_ASSIGN_OR_RETURN(out.result, executor_->ExecuteSelect(out.optimized, exec));
    out.profile->wall_ns = ProfileNowNs() - start;
    out.profile->rows_out = out.result.rows.size();
    if (!out.profile->children.empty()) {
      out.profile->rows_in = out.profile->children.front()->rows_out;
    }
    if (r.feedback) {
      size_t n = AbsorbProfile(out.optimized, *out.profile, stats_.get());
      if (n > 0 && feedback_absorbed_counter_ != nullptr) {
        feedback_absorbed_counter_->Add(n);
      }
    }
    if (queries_counter_ != nullptr) queries_counter_->Add(1);
  }
  return out;
}

namespace {
/// Mirrors a plan subtree into an unexecuted profile skeleton (estimates only),
/// so plan-only EXPLAIN shares the profile renderings.
void MirrorPlan(const PlanPtr& plan, QueryProfile* parent) {
  QueryProfile* p = parent->AddChild(plan->Describe());
  p->est_rows = plan->est_rows;
  p->est_cost = plan->est_cost;
  p->has_estimates = true;
  if (plan->child) MirrorPlan(plan->child, p);
  if (plan->left) MirrorPlan(plan->left, p);
  if (plan->right) MirrorPlan(plan->right, p);
  for (const auto& c : plan->children) MirrorPlan(c, p);
}
}  // namespace

std::string ExplainResult::Render() const {
  QueryProfile::RenderOptions render;
  if (options.format == ExplainOptions::Format::kJson) {
    if (analyzed && profile != nullptr) return profile->ToJson(render);
    QueryProfile skeleton;
    skeleton.label = "PLAN";
    MirrorPlan(optimized.plan, &skeleton);
    render.timing = false;
    render.buffer = false;
    return skeleton.ToJson(render);
  }
  std::string out;
  if (options.verbose) out += optimized.Explain();
  if (analyzed && profile != nullptr) {
    if (!out.empty()) out += "\n";
    out += "EXPLAIN ANALYZE:\n";
    out += profile->Render(render);
  } else if (!options.verbose) {
    out += "Plan:\n" + optimized.plan->Explain(1);
  }
  return out;
}

Result<ExecResult> Database::ExecuteStatement(Session& s, const Statement& stmt,
                                              const QueryOptions& options,
                                              const std::string& cache_sql) {
  if (statements_counter_ != nullptr) statements_counter_->Add(1);
  if (s.snapshot_pinned_ && !std::holds_alternative<SelectStmt>(stmt) &&
      !std::holds_alternative<ExplainStmt>(stmt)) {
    // A pinned snapshot makes the session read-only by construction: its own
    // writes could never become visible at the pinned CSN.
    return Status::InvalidArgument(
        "session has a pinned snapshot (read-only); EndSnapshot() before DML/DDL");
  }
  return std::visit(
      [this, &s, &options, &cache_sql](const auto& st) -> Result<ExecResult> {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, SelectStmt>) return ExecSelect(s, st, options, cache_sql);
        else if constexpr (std::is_same_v<T, ExplainStmt>) return ExecExplain(s, st, options, cache_sql);
        else if constexpr (std::is_same_v<T, CreateClassStmt>) return ExecCreateClass(st);
        else if constexpr (std::is_same_v<T, NewObjectStmt>) return ExecNew(s, st);
        else if constexpr (std::is_same_v<T, UpdateStmt>) return ExecUpdate(s, st);
        else if constexpr (std::is_same_v<T, DeleteStmt>) return ExecDelete(s, st);
        else if constexpr (std::is_same_v<T, CreateIndexStmt>) return ExecCreateIndex(st);
        else if constexpr (std::is_same_v<T, AnalyzeStmt>) return ExecAnalyze(st);
        else if constexpr (std::is_same_v<T, CreateMatViewStmt>) return ExecCreateMatView(st);
        else if constexpr (std::is_same_v<T, DropMatViewStmt>) return ExecDropMatView(st);
        else return ExecDropClass(st);
      },
      stmt);
}

Result<ExecResult> Database::ExecSelect(Session& s, const SelectStmt& stmt,
                                        const QueryOptions& options,
                                        const std::string& cache_sql) {
  return ExecSelectCached(s, stmt, ResolveFor(s, options), {}, cache_sql);
}

Result<ExecResult> Database::ExecSelectCached(Session& s, const SelectStmt& stmt,
                                              const ResolvedQueryOptions& r,
                                              const std::vector<MoodValue>& params,
                                              const std::string& cache_sql) {
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  WriteEpochFn epoch_of = [this](uint16_t file) {
    return objects_->WriteEpochOf(file);
  };

  // --- Materialized-view rewrite -------------------------------------------
  // Probed before the plan cache: a registered view whose normalized SQL
  // matches answers from its materialized extent (after catching up on
  // pending deltas) without optimizing or executing anything. Eligibility
  // mirrors the result cache: the normal cached path, outside a write
  // transaction (a transaction must see its own uncommitted writes). The
  // freshness callback vetoes the serve whenever a dependency extent's latest
  // state is not what this session's read would see: pending (uncommitted)
  // version chains for unpinned statements, any epoch drift since pin for
  // pinned sessions. use_cache=false bypasses — the differential oracle.
  if (r.use_cache && !cache_sql.empty() && matviews_ != nullptr &&
      versions_ != nullptr && s.txn_ == nullptr) {
    CommitGate::SharedGuard mv_gate(&versions_->gate());
    auto mv_fresh = [this, &s](const std::vector<uint16_t>& deps) {
      for (uint16_t f : deps) {
        if (s.snapshot_pinned_) {
          const size_t slot = f % ObjectManager::kEpochSlots;
          if (s.pinned_dirty_[slot] ||
              s.pinned_epochs_[slot] != objects_->WriteEpochOf(f)) {
            return false;
          }
        } else if (versions_->FileHasPendingVersions(f)) {
          return false;
        }
      }
      return true;
    };
    ExecResult hit;
    hit.kind = ExecResult::Kind::kQuery;
    MOOD_ASSIGN_OR_RETURN(MvManager::Outcome oc,
                          matviews_->TryServe(cache_sql, mv_fresh, &hit.query));
    if (oc == MvManager::Outcome::kServed) return hit;
  }

  const bool caching = r.use_cache && !cache_sql.empty() &&
                       plan_cache_ != nullptr && plan_cache_->capacity() > 0;

  // --- Plan-cache probe ---------------------------------------------------
  CachedPlanPtr entry;
  std::string key;
  uint64_t schema_epoch = 0;
  if (caching) {
    key = cache_sql;
    key += '\x1f';
    key += ParamTypeSignature(params);
    key += '\x1f';
    key += r.feedback ? 'F' : '-';
    schema_epoch = catalog_->schema_epoch();
    entry = plan_cache_->Lookup(key, schema_epoch, stats_->plans_version(), epoch_of);
    if (entry == nullptr) {
      auto built = std::make_shared<CachedPlan>();
      built->schema_epoch = schema_epoch;
      built->plans_version = stats_->plans_version();
      MOOD_ASSIGN_OR_RETURN(built->optimized, optimizer_->Optimize(stmt, r.feedback));
      built->programs = std::make_shared<ProgramMemo>();
      built->param_count = ParamCount(stmt);
      MOOD_RETURN_IF_ERROR(CollectTouchedExtents(catalog_.get(), objects_.get(),
                                                 built->optimized.bound,
                                                 &built->extents,
                                                 &built->result_cacheable));
      entry = std::move(built);
      plan_cache_->Insert(key, entry);
    }
  }

  const QueryOptimizer::Optimized* optimized;
  QueryOptimizer::Optimized fresh;
  if (entry != nullptr) {
    optimized = &entry->optimized;
  } else {
    MOOD_ASSIGN_OR_RETURN(fresh, optimizer_->Optimize(stmt, r.feedback));
    optimized = &fresh;
  }

  // --- Snapshot + gate scope ----------------------------------------------
  // Outside a write transaction a SELECT runs at a consistent snapshot under
  // the commit gate's shared side: writers' heap mutations never physically
  // race the scan, and logically the statement sees exactly the commits with
  // CSN <= its pin (the session's long pin, or a fresh statement pin).
  // Inside a write transaction the statement reads latest — its own writes
  // included — with 2PL providing its isolation.
  const bool snapshot_read = versions_ != nullptr && s.txn_ == nullptr;
  CommitGate::SharedGuard gate(snapshot_read ? &versions_->gate() : nullptr);
  SnapshotPin pin;
  uint64_t snap = 0;
  if (snapshot_read) {
    if (s.snapshot_pinned_) {
      snap = s.snap_csn_;
    } else {
      snap = versions_->PinSnapshot();
      pin.store = versions_.get();
      pin.snap = snap;
    }
  }

  // --- Result-cache probe -------------------------------------------------
  // Probed inside the gate, where touched extents are quiescent. The entry
  // key bakes in the write epochs of every touched extent (the session's
  // frozen pin-time view for pinned sessions, the live epochs otherwise), so
  // an entry is only ever found by a reader whose visible state is exactly
  // the state the entry was computed from. Reader cohorts pinned on either
  // side of a commit therefore coexist as separate epoch-stamped variants
  // instead of thrash-overwriting a single slot; superseded variants simply
  // age out of the LRU. ResultCache::Insert still re-validates epochs after
  // execution as a belt-and-braces staleness check.
  //
  // The one case where an epoch does NOT identify visible content is a
  // PENDING (uncommitted) mutation: the heap and epoch are already advanced
  // while every snapshot reader still sees the pre-image. Bypass the cache
  // for a touched extent in that state — for an unpinned statement when the
  // extent has pending chains now, and for a pinned session when it had
  // pending chains at pin time (its frozen epoch view is tainted for the
  // whole pin). Committed chains never bypass: the heap holds the latest
  // committed state and its epochs identify it.
  bool versioned_extent = false;
  if (entry != nullptr && snapshot_read) {
    for (const TouchedExtent& te : entry->extents) {
      const bool tainted =
          s.snapshot_pinned_
              ? s.pinned_dirty_[te.file % ObjectManager::kEpochSlots]
              : versions_->FileHasPendingVersions(te.file);
      if (tainted) {
        versioned_extent = true;
        break;
      }
    }
  }
  WriteEpochFn result_epoch_of = epoch_of;
  if (s.snapshot_pinned_) {
    const auto& view = s.pinned_epochs_;
    result_epoch_of = [&view](uint16_t file) {
      return view[file % ObjectManager::kEpochSlots];
    };
  }
  std::string result_key;
  std::vector<TouchedExtent> captured;
  bool fill_result = false;
  if (entry != nullptr && entry->result_cacheable && !r.collect_profile &&
      s.txn_ == nullptr && !versioned_extent && result_cache_ != nullptr &&
      result_cache_->capacity_bytes() > 0) {
    captured.reserve(entry->extents.size());
    result_key = key;
    result_key += '\x1e';
    result_key += ParamValueKey(params);
    result_key += '\x1d';
    for (const TouchedExtent& te : entry->extents) {
      const uint64_t epoch = result_epoch_of(te.file);
      captured.push_back(TouchedExtent{te.file, epoch});
      result_key.append(reinterpret_cast<const char*>(&te.file), sizeof(te.file));
      result_key.append(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
    }
    ExecResult hit;
    hit.kind = ExecResult::Kind::kQuery;
    if (result_cache_->Lookup(result_key, schema_epoch, result_epoch_of, &hit.query)) {
      return hit;
    }
    // Filling is safe for pinned sessions too: the rows are the state at the
    // session's frozen epoch view, and the key above stamps exactly that
    // view, so only readers seeing the same state can ever find the entry.
    fill_result = true;
  }

  // --- Execution ----------------------------------------------------------
  ExecResult res;
  res.kind = ExecResult::Kind::kQuery;
  ExecOptions exec;
  exec.threads = r.exec_threads;
  exec.deref_cache_entries = r.deref_cache_entries;
  exec.compile_expressions = r.compile_expressions;
  exec.batch_size = r.batch_size;
  if (snapshot_read) exec.snapshot = SnapshotView{versions_.get(), snap};
  if (!params.empty()) exec.params = &params;
  if (entry != nullptr && r.compile_expressions) {
    exec.program_memo = entry->programs.get();
  }
  if (r.collect_profile) {
    res.profile = std::make_shared<QueryProfile>();
    res.profile->label = "RESULT";
    exec.profile = res.profile.get();
  }
  uint64_t start = exec.profile != nullptr ? ProfileNowNs() : 0;
  MOOD_ASSIGN_OR_RETURN(QueryResult qr, executor_->ExecuteSelect(*optimized, exec));
  if (exec.profile != nullptr) {
    res.profile->wall_ns = ProfileNowNs() - start;
    res.profile->rows_out = qr.rows.size();
    if (!res.profile->children.empty()) {
      res.profile->rows_in = res.profile->children.front()->rows_out;
    }
    if (r.feedback) {
      // Close the loop: write observed cardinalities and measured operator
      // costs back into the statistics manager for the next optimization.
      // This bumps the statistics plans-version, so the entry this execution
      // used re-optimizes on its next lookup — profiled warmups keep
      // improving the plan while unprofiled hot loops stay cached.
      size_t n = AbsorbProfile(*optimized, *res.profile, stats_.get());
      if (n > 0 && feedback_absorbed_counter_ != nullptr) {
        feedback_absorbed_counter_->Add(n);
      }
    }
  }
  if (fill_result) {
    result_cache_->Insert(result_key, qr, schema_epoch, captured, result_epoch_of);
  }
  res.query = std::move(qr);
  return res;
}

Result<ExecResult> Database::ExecExplain(Session& s, const ExplainStmt& stmt,
                                         const QueryOptions& options,
                                         const std::string& cache_sql) {
  ExplainOptions eopts;
  eopts.analyze = stmt.analyze;
  eopts.verbose = stmt.verbose;
  eopts.query = options;
  MOOD_ASSIGN_OR_RETURN(ExplainResult er,
                        ExplainSelect(s, stmt.select, eopts, cache_sql));
  ExecResult res;
  res.kind = ExecResult::Kind::kExplain;
  res.message = er.Render();
  res.profile = er.profile;
  return res;
}

void Database::NoteQuery(const std::string& sql, double elapsed_ms, size_t rows,
                         size_t threads) {
  if (query_us_hist_ != nullptr) {
    query_us_hist_->Record(static_cast<uint64_t>(elapsed_ms * 1000.0));
  }
  if (options_.slow_query_ms <= 0 || elapsed_ms < options_.slow_query_ms ||
      options_.slow_query_log_size == 0) {
    return;
  }
  if (slow_counter_ != nullptr) slow_counter_->Add(1);
  std::lock_guard<std::mutex> lock(slow_mu_);
  while (slow_queries_.size() >= options_.slow_query_log_size) {
    slow_queries_.pop_front();
  }
  slow_queries_.push_back(SlowQueryRecord{sql, elapsed_ms, rows, threads});
}

std::vector<SlowQueryRecord> Database::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_queries_.begin(), slow_queries_.end()};
}

Result<ExecResult> Database::ExecCreateClass(const CreateClassStmt& stmt) {
  // DDL runs under the exclusive gate: no SELECT is mid-flight while catalog
  // pages mutate. (Concurrent DDL vs. optimization of other statements is
  // still the caller's to serialize; see DESIGN.md §14.)
  CommitGate::ExclusiveGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  MOOD_ASSIGN_OR_RETURN(TypeId id, catalog_->Define(stmt.def));
  ExecResult res;
  res.message = std::string(stmt.def.is_class ? "class '" : "type '") + stmt.def.name +
                "' created with type id " + std::to_string(id);
  res.schema_epoch = catalog_->schema_epoch();
  return res;
}

Result<ExecResult> Database::ExecNew(Session& s, const NewObjectStmt& stmt) {
  // Strict 2PL: inserts take an exclusive lock on the class extent. The lock
  // is acquired before any gate section — never inside one (lock-ordering
  // rule: the gate must not wait on the lock manager).
  if (s.txn_ != nullptr) {
    MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(stmt.class_name));
    MOOD_RETURN_IF_ERROR(s.txn_->Lock(
        LockKey{/*space=*/1, type->extent_file}, LockMode::kExclusive));
  }
  Evaluator::Env empty;
  MoodValue::ValueList values;
  for (const auto& e : stmt.values) {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, evaluator_->Eval(e, empty));
    values.push_back(std::move(v));
  }
  MOOD_ASSIGN_OR_RETURN(
      Oid oid, objects_->CreateObject(stmt.class_name, MoodValue::Tuple(std::move(values)),
                                      s.txn_));
  if (!stmt.bind_name.empty()) {
    MOOD_RETURN_IF_ERROR(catalog_->BindName(stmt.bind_name, oid));
  }
  ExecResult res;
  res.kind = ExecResult::Kind::kDml;
  res.created_oid = oid;
  res.affected = 1;
  res.message = "created " + stmt.class_name + " " + oid.ToString();
  return res;
}

Result<std::vector<Oid>> Database::MatchingObjects(const std::string& class_name,
                                                   const std::string& var,
                                                   const ExprPtr& where) {
  SelectStmt select;
  select.projection.push_back(Expr::Path(var, {}));
  FromEntry fe;
  fe.class_name = class_name;
  fe.var = var;
  select.from.push_back(fe);
  select.where = where;
  MOOD_ASSIGN_OR_RETURN(auto optimized, optimizer_->Optimize(select));
  // Shared gate for the row-selection scan: DML reads *latest* state (not a
  // snapshot — the writer must see current rows), but must still never
  // observe another writer mid-mutation.
  CommitGate::SharedGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  MOOD_ASSIGN_OR_RETURN(RowSet rows, executor_->ExecutePlan(optimized.plan));
  int idx = rows.VarIndex(var);
  if (idx < 0) return Status::Internal("range variable lost during optimization");
  std::vector<Oid> out;
  out.reserve(rows.rows.size());
  for (const auto& row : rows.rows) out.push_back(row[static_cast<size_t>(idx)]);
  // A row may repeat the var when joins fan out; deduplicate.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<ExecResult> Database::ExecUpdate(Session& s, const UpdateStmt& stmt) {
  // Strict 2PL: updates lock the class extent exclusively before selecting
  // rows, serializing transactional writers on the class — the row set a
  // writer updates cannot shift under it between selection and mutation.
  if (s.txn_ != nullptr) {
    MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(stmt.class_name));
    MOOD_RETURN_IF_ERROR(s.txn_->Lock(
        LockKey{/*space=*/1, type->extent_file}, LockMode::kExclusive));
  }
  MOOD_ASSIGN_OR_RETURN(auto oids, MatchingObjects(stmt.class_name, stmt.var, stmt.where));
  for (Oid oid : oids) {
    if (s.txn_ != nullptr) {
      MOOD_RETURN_IF_ERROR(s.txn_->Lock(LockKey{/*space=*/2, oid.Pack()},
                                        LockMode::kExclusive));
    }
    Evaluator::Env env;
    env.vars[stmt.var] = oid;
    for (const auto& [attr, expr] : stmt.assignments) {
      // Assignment expressions read heap objects; shared gate per evaluation
      // (released before SetAttribute's exclusive section — the gate never
      // nests on one thread).
      Result<MoodValue> v = [&]() -> Result<MoodValue> {
        CommitGate::SharedGuard eval_gate(versions_ != nullptr ? &versions_->gate()
                                                               : nullptr);
        return evaluator_->Eval(expr, env);
      }();
      if (!v.ok()) return v.status();
      MOOD_RETURN_IF_ERROR(
          objects_->SetAttribute(oid, attr, std::move(v.value()), s.txn_));
    }
  }
  ExecResult res;
  res.kind = ExecResult::Kind::kDml;
  res.affected = oids.size();
  res.message = "updated " + std::to_string(oids.size()) + " object(s)";
  return res;
}

Result<ExecResult> Database::ExecDelete(Session& s, const DeleteStmt& stmt) {
  // Same extent-level 2PL as ExecUpdate.
  if (s.txn_ != nullptr) {
    MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(stmt.class_name));
    MOOD_RETURN_IF_ERROR(s.txn_->Lock(
        LockKey{/*space=*/1, type->extent_file}, LockMode::kExclusive));
  }
  MOOD_ASSIGN_OR_RETURN(auto oids, MatchingObjects(stmt.class_name, stmt.var, stmt.where));
  for (Oid oid : oids) {
    if (s.txn_ != nullptr) {
      MOOD_RETURN_IF_ERROR(s.txn_->Lock(LockKey{/*space=*/2, oid.Pack()},
                                        LockMode::kExclusive));
    }
    MOOD_RETURN_IF_ERROR(objects_->DeleteObject(oid, s.txn_));
  }
  ExecResult res;
  res.kind = ExecResult::Kind::kDml;
  res.affected = oids.size();
  res.message = "deleted " + std::to_string(oids.size()) + " object(s)";
  return res;
}

Result<ExecResult> Database::ExecCreateIndex(const CreateIndexStmt& stmt) {
  // DDL under the exclusive gate (the build scan + inserts must not interleave
  // with readers probing half-built index pages).
  CommitGate::ExclusiveGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  switch (stmt.kind) {
    case IndexKind::kBTree:
    case IndexKind::kHash:
      MOOD_RETURN_IF_ERROR(objects_->CreateAttributeIndex(
          stmt.index_name, stmt.class_name, stmt.attribute, stmt.kind, stmt.unique));
      break;
    case IndexKind::kPath:
      MOOD_RETURN_IF_ERROR(
          objects_->CreatePathIndex(stmt.index_name, stmt.class_name, stmt.attribute));
      break;
    case IndexKind::kBinaryJoin:
      MOOD_RETURN_IF_ERROR(objects_->CreateBinaryJoinIndex(stmt.index_name,
                                                           stmt.class_name,
                                                           stmt.attribute));
      break;
    case IndexKind::kRTree:
      return Status::NotSupported(
          "R-tree indexes are created through the spatial API (see examples/spatial)");
  }
  ExecResult res;
  res.message = "index '" + stmt.index_name + "' created (" +
                std::string(IndexKindName(stmt.kind)) + ")";
  res.schema_epoch = catalog_->schema_epoch();
  return res;
}

Result<ExecResult> Database::ExecDropClass(const DropClassStmt& stmt) {
  CommitGate::ExclusiveGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  MOOD_RETURN_IF_ERROR(catalog_->Drop(stmt.class_name));
  ExecResult res;
  res.message = "class '" + stmt.class_name + "' dropped";
  res.schema_epoch = catalog_->schema_epoch();
  return res;
}

Result<ExecResult> Database::ExecCreateMatView(const CreateMatViewStmt& stmt) {
  if (matviews_ == nullptr) {
    return Status::InvalidArgument("database is not open");
  }
  if (stmt.select_sql.empty()) {
    return Status::InvalidArgument(
        "materialized view definition text unavailable (internal parse path)");
  }
  // DDL under the exclusive gate: the initial materialization scan must not
  // interleave with writers, and registration must not race serves.
  CommitGate::ExclusiveGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  // Catalog first: registration bumps the schema epoch, and Create() stamps
  // the post-bump epoch so the first serve doesn't waste a rebuild.
  MatViewDef def;
  def.name = stmt.name;
  def.select_sql = stmt.select_sql;
  MOOD_RETURN_IF_ERROR(catalog_->RegisterView(def));
  Status created = matviews_->Create(stmt.name, stmt.select_sql, stmt.select);
  if (!created.ok()) {
    (void)catalog_->UnregisterView(stmt.name);
    return created;
  }
  ExecResult res;
  res.message = "materialized view '" + stmt.name + "' created";
  res.schema_epoch = catalog_->schema_epoch();
  return res;
}

Result<ExecResult> Database::ExecDropMatView(const DropMatViewStmt& stmt) {
  if (matviews_ == nullptr) {
    return Status::InvalidArgument("database is not open");
  }
  CommitGate::ExclusiveGuard gate(versions_ != nullptr ? &versions_->gate() : nullptr);
  MOOD_RETURN_IF_ERROR(catalog_->UnregisterView(stmt.name));
  MOOD_RETURN_IF_ERROR(matviews_->Drop(stmt.name));
  ExecResult res;
  res.message = "materialized view '" + stmt.name + "' dropped";
  res.schema_epoch = catalog_->schema_epoch();
  return res;
}

Result<ExecResult> Database::ExecAnalyze(const AnalyzeStmt& stmt) {
  ExecResult res;
  if (!stmt.class_name.empty()) {
    MOOD_RETURN_IF_ERROR(CollectStatistics(stmt.class_name));
    res.message = "analyzed class '" + stmt.class_name + "'";
    res.schema_epoch = catalog_->schema_epoch();
    return res;
  }
  MOOD_RETURN_IF_ERROR(CollectAllStatistics());
  res.message = "analyzed all classes";
  res.schema_epoch = catalog_->schema_epoch();
  return res;
}

Result<MoodValue> Database::InterpretMethodBody(const std::string& class_name,
                                                const MoodsFunction& decl,
                                                const MethodContext& ctx,
                                                const std::vector<MoodValue>& args) {
  (void)class_name;
  // Accept bodies of the form `{ return <expr>; }` (whitespace tolerant).
  std::string body = decl.body_source;
  auto strip = [](std::string s) {
    size_t a = s.find_first_not_of(" \t\r\n");
    size_t b = s.find_last_not_of(" \t\r\n");
    if (a == std::string::npos) return std::string();
    return s.substr(a, b - a + 1);
  };
  body = strip(body);
  if (!body.empty() && body.front() == '{') body = strip(body.substr(1));
  if (!body.empty() && body.back() == '}') body = strip(body.substr(0, body.size() - 1));
  if (body.rfind("return", 0) != 0) {
    return Status::FunctionError("method '" + decl.name +
                                 "' has no compiled body and its source is not an "
                                 "interpretable `return <expr>;` form");
  }
  body = strip(body.substr(6));
  if (!body.empty() && body.back() == ';') body = strip(body.substr(0, body.size() - 1));
  MOOD_ASSIGN_OR_RETURN(ExprPtr expr, Parser::ParseExpression(body));

  // Identifier resolution: parameters shadow receiver attributes.
  std::function<Result<MoodValue>(const ExprPtr&)> eval =
      [&](const ExprPtr& e) -> Result<MoodValue> {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return e->literal;
      case ExprKind::kParameter:
        return Status::FunctionError(
            "interpreted method bodies cannot use `?` parameters");
      case ExprKind::kPath: {
        MoodValue base;
        bool found = false;
        for (size_t i = 0; i < decl.params.size(); i++) {
          if (decl.params[i].name == e->range_var && i < args.size()) {
            base = args[i];
            found = true;
            break;
          }
        }
        if (!found) {
          auto attr = ctx.Attr(e->range_var);
          if (!attr.ok()) return attr.status();
          base = attr.value();
          found = true;
        }
        // Navigate any further steps through references.
        for (const auto& step : e->steps) {
          if (base.kind() != ValueKind::kReference || !ctx.deref) {
            return Status::FunctionError("cannot navigate '" + step.name +
                                         "' in interpreted method body");
          }
          MOOD_ASSIGN_OR_RETURN(MoodValue obj, ctx.deref(base.AsReference()));
          (void)obj;
          return Status::FunctionError(
              "interpreted bodies support attribute and parameter identifiers only");
        }
        return base;
      }
      case ExprKind::kUnary: {
        MOOD_ASSIGN_OR_RETURN(MoodValue v, eval(e->operand));
        OperandDataType o = OperandDataType::FromValue(v);
        if (e->uop == UnaryOp::kNeg) return (-o).ToValue();
        return (!o).ToValue();
      }
      case ExprKind::kBinary: {
        MOOD_ASSIGN_OR_RETURN(MoodValue lv, eval(e->lhs));
        MOOD_ASSIGN_OR_RETURN(MoodValue rv, eval(e->rhs));
        OperandDataType x = OperandDataType::FromValue(lv);
        OperandDataType y = OperandDataType::FromValue(rv);
        OperandDataType r(DataTypeCode::kInt32);
        switch (e->op) {
          case BinaryOp::kAdd: r = x + y; break;
          case BinaryOp::kSub: r = x - y; break;
          case BinaryOp::kMul: r = x * y; break;
          case BinaryOp::kDiv: r = x / y; break;
          case BinaryOp::kMod: r = x % y; break;
          case BinaryOp::kEq: r = (x == y); break;
          case BinaryOp::kNe: r = (x != y); break;
          case BinaryOp::kLt: r = (x < y); break;
          case BinaryOp::kLe: r = (x <= y); break;
          case BinaryOp::kGt: r = (x > y); break;
          case BinaryOp::kGe: r = (x >= y); break;
          case BinaryOp::kAnd: r = (x && y); break;
          case BinaryOp::kOr: r = (x || y); break;
        }
        return r.ToValue();
      }
    }
    return Status::Internal("unhandled expression kind");
  };
  MOOD_ASSIGN_OR_RETURN(MoodValue raw, eval(expr));
  // Run-time cast to the declared return type (e.g. `int lbweight()` returning
  // weight * 2.2075 truncates, exactly like the compiled C++ would).
  if (decl.return_type->kind() == ConstructorKind::kBasic && raw.IsNumeric()) {
    switch (decl.return_type->basic()) {
      case BasicType::kInteger: {
        MOOD_ASSIGN_OR_RETURN(double d, raw.ToDouble());
        return MoodValue::Integer(static_cast<int32_t>(d));
      }
      case BasicType::kLongInteger: {
        MOOD_ASSIGN_OR_RETURN(double d, raw.ToDouble());
        return MoodValue::LongInteger(static_cast<int64_t>(d));
      }
      case BasicType::kFloat: {
        MOOD_ASSIGN_OR_RETURN(double d, raw.ToDouble());
        return MoodValue::Float(d);
      }
      default:
        break;
    }
  }
  return raw;
}

std::unique_ptr<QueryManager> Database::MakeQuerySession() {
  return std::make_unique<QueryManager>(
      [this](const std::string& sql) { return Query(sql); });
}

}  // namespace mood
