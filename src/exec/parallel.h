#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"

namespace mood {

/// Worker-thread count used when the caller asks for "as many as the hardware
/// allows" (std::thread::hardware_concurrency, never less than 1).
size_t DefaultExecThreads();

/// Half-open row range [begin, end): one unit of parallel work.
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Rows per morsel. Small enough that skewed predicates still load-balance,
/// large enough that the per-morsel dispatch cost is noise.
inline constexpr size_t kMorselRows = 256;

/// Rows per batch in batch-at-a-time execution (the default behind
/// QueryOptions::batch_size). In batch mode, whole batches are the morsel
/// unit: the scheduler hands workers batches, so per-task dispatch and
/// per-operator setup amortize over this many rows instead of one.
inline constexpr size_t kDefaultBatchRows = 1024;

/// Hard cap on a single batch's capacity: bounds the columnar scratch an
/// expression kernel pins per worker, and keeps pathological batch_size
/// requests from degenerating into one morsel per query.
inline constexpr size_t kMaxBatchRows = 1u << 16;

/// Normalizes a batch_size knob: 0 stays 0 (row-at-a-time oracle mode),
/// anything else is capped at kMaxBatchRows.
size_t ClampBatchSize(size_t requested);

/// Partitions [0, n) into fixed-size morsels; the last one may be short.
std::vector<Morsel> MakeMorsels(size_t n, size_t morsel_size = kMorselRows);

/// Runs `task(i)` for every i in [0, num_tasks) on up to `threads` workers.
/// Workers pull indexes from a shared cursor (morsel-driven scheduling: work
/// distribution adapts to per-morsel cost skew instead of pre-partitioning).
/// Row-at-a-time operators pass one task per kMorselRows-row morsel; batch
/// operators pass one task per RowBatch.
///
/// Error semantics are deterministic: if any tasks fail, the returned status is
/// the failure with the *smallest* task index — exactly the error an in-order
/// serial run would surface first. Tasks with indexes above an already-recorded
/// failure may be skipped (their results would be discarded anyway).
///
/// With threads <= 1 or num_tasks <= 1 the tasks run inline on the calling
/// thread, in order, stopping at the first failure.
Status ParallelFor(size_t threads, size_t num_tasks,
                   const std::function<Status(size_t)>& task);

}  // namespace mood
