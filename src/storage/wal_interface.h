#pragma once

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace mood {

/// Interface through which storage structures report page mutations for
/// write-ahead logging. Implemented by txn::Transaction; storage itself stays
/// independent of the transaction module. `before` and `after` are full page
/// images (physical logging keeps redo/undo simple and idempotent via page LSNs).
class PageWriteLogger {
 public:
  virtual ~PageWriteLogger() = default;

  /// Logs the mutation and returns the assigned LSN; the caller stamps it into the
  /// page header so recovery can decide whether the page already reflects the
  /// change.
  virtual Result<Lsn> LogPageWrite(PageId page, Slice before, Slice after) = 0;

  /// VersionStore batch the logger's writes group under for snapshot pre-image
  /// capture (0 = none). Implemented by txn::Transaction so object writes under
  /// a transaction stamp their version-chain entries at the transaction's
  /// commit; storage stays independent of the txn module.
  virtual uint64_t version_batch() const { return 0; }
};

}  // namespace mood
