#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "index/bptree.h"
#include "index/hash_index.h"
#include "index/join_index.h"
#include "storage/storage_manager.h"
#include "types/value.h"

namespace mood {

class VersionStore;

/// A reader's multi-version snapshot: reconstruct object state as of commit
/// sequence number `csn` using `versions` (see VersionStore's visibility
/// rule). Inactive (null `versions`) means read-latest — the legacy embedded
/// behavior. Carried by DerefCache so every cached read path is
/// snapshot-aware without new parameters on each call.
struct SnapshotView {
  const VersionStore* versions = nullptr;
  uint64_t csn = 0;

  bool active() const { return versions != nullptr; }
};

/// Per-query dereference cache: OID -> decoded object snapshot. Path
/// expressions (the paper's forward-traversal inner loop) dereference the same
/// objects repeatedly; this cache turns the second and later Deref(oid) of a
/// query into a memory lookup instead of a page pin + record decode.
///
/// Staleness contract: every entry carries the write epoch of the object's
/// extent file at fetch time (see ObjectManager::WriteEpochOf). Any write to
/// that file bumps the epoch, so a lookup after an update in the same query
/// sees an epoch mismatch and refetches — an update is always visible to the
/// next Deref. Tuples are held behind shared_ptr<const MoodValue> so hits from
/// parallel morsel workers share one immutable snapshot.
///
/// Thread safety: lock-striped; safe for concurrent Lookup/Insert from the
/// executor's workers.
class DerefCache {
 public:
  /// `capacity` bounds the total entry count (0 disables caching entirely).
  explicit DerefCache(size_t capacity) : capacity_(capacity) {}

  DerefCache(const DerefCache&) = delete;
  DerefCache& operator=(const DerefCache&) = delete;

  struct Snapshot {
    TypeId type_id = 0;
    std::shared_ptr<const MoodValue> tuple;
  };

  /// Returns true and fills `out` only when an entry for `oid` exists at
  /// exactly `epoch`. A stale entry is erased and reported as a miss.
  bool Lookup(Oid oid, uint64_t epoch, Snapshot* out);

  void Insert(Oid oid, uint64_t epoch, const Snapshot& snap);

  /// Attaches a reader snapshot: ObjectManager's cached read paths
  /// (FetchSnapshot and everything built on it) then serve the version visible
  /// at the snapshot instead of the latest heap state. The cache is per-query,
  /// so one snapshot per cache is exactly statement scope.
  void SetSnapshot(const SnapshotView& view) { snapshot_ = view; }
  const SnapshotView& snapshot() const { return snapshot_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    uint64_t epoch = 0;
    Snapshot snap;
  };
  struct Stripe {
    std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;  // key: Oid::Pack()
  };
  static constexpr size_t kStripes = 8;

  Stripe& StripeOf(uint64_t packed) {
    // Mix so oids differing only in low slot bits spread over stripes.
    packed ^= packed >> 33;
    packed *= 0xff51afd7ed558ccdull;
    return stripes_[(packed >> 33) % kStripes];
  }

  size_t capacity_;
  SnapshotView snapshot_;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// Immutable per-class attribute layout: the flattened AllAttributes view of
/// one class (supers first, duplicates merged) frozen at a schema epoch.
/// Compiled expression programs bind attribute accesses to `attrs` ordinals at
/// plan time; `names` feeds MethodContext::attr_names without re-walking the
/// IS-A DAG per method call. Handed out behind shared_ptr<const> so a layout
/// stays valid for the duration of a query even if DDL invalidates the cache.
struct AttributeLayout {
  TypeId type_id = kInvalidTypeId;
  std::string class_name;
  std::vector<MoodsAttribute> attrs;  ///< Catalog::AllAttributes order
  std::vector<std::string> names;     ///< attrs[i].name (method-context view)
  std::unordered_map<std::string, uint32_t> ordinal_by_name;

  /// Ordinal of `name`, or a negative value when the class lacks it.
  int OrdinalOf(const std::string& name) const {
    auto it = ordinal_by_name.find(name);
    return it == ordinal_by_name.end() ? -1 : static_cast<int>(it->second);
  }
};

using AttributeLayoutPtr = std::shared_ptr<const AttributeLayout>;

/// Object-level storage interface: creates, fetches, updates and deletes class
/// instances in their default extents, maintains registered secondary indexes,
/// and implements dereferencing and deep equality — the object layer the MOOD
/// kernel builds over the storage manager.
class ObjectManager {
 public:
  ObjectManager(StorageManager* storage, Catalog* catalog)
      : storage_(storage), catalog_(catalog) {}

  /// Wires up multi-version snapshot support (Database::Open does this). Once
  /// set, every object write runs under the store's exclusive CommitGate
  /// section and captures its pre-image into the store, and cached reads honor
  /// an attached SnapshotView. Null (the default) is the legacy read-latest
  /// embedded behavior with zero overhead.
  void SetVersionStore(VersionStore* versions) { versions_ = versions; }
  VersionStore* versions() const { return versions_; }

  /// Observer invoked after every object write (create/update/delete), inside
  /// the exclusive CommitGate section and after the write-epoch bump. The MV
  /// subsystem uses it for delta capture. Must not call back into
  /// ObjectManager write paths. Null disables (the default).
  using WriteObserver = std::function<void(uint16_t file, Oid oid)>;
  void SetWriteObserver(WriteObserver observer) { write_observer_ = std::move(observer); }

  /// Creates an instance of `class_name` from a tuple whose fields follow
  /// Catalog::AllAttributes order. Type-checks against the class schema, inserts
  /// into the class extent and maintains indexes. A tuple shorter than the schema
  /// is padded with attribute defaults (supports schema evolution via
  /// AddAttribute).
  ///
  /// `version_batch` on the write methods groups this write's pre-image
  /// capture under an existing VersionStore batch (a transaction's, or one
  /// autocommit statement's). 0 derives it: the wal's batch when given,
  /// otherwise a self-committing single-write batch.
  Result<Oid> CreateObject(const std::string& class_name, MoodValue tuple,
                           PageWriteLogger* wal = nullptr, uint64_t version_batch = 0);

  /// The algebra's Deref(oid) operator. The DerefCache overloads consult and
  /// fill `cache` (may be null); see DerefCache for the staleness contract.
  Result<MoodValue> Fetch(Oid oid) const { return Fetch(oid, nullptr); }
  Result<MoodValue> Fetch(Oid oid, DerefCache* cache) const;

  /// Class name of the object (the algebra's TypeId/isA support). Derived from
  /// the type id stored with every object.
  Result<std::string> ClassOf(Oid oid) const;
  Result<std::string> ClassOf(Oid oid, DerefCache* cache) const;

  /// Replaces the whole attribute tuple (type-checked; indexes maintained).
  Status UpdateObject(Oid oid, MoodValue tuple, PageWriteLogger* wal = nullptr,
                      uint64_t version_batch = 0);

  /// Sets one attribute by name.
  Status SetAttribute(Oid oid, const std::string& attr, MoodValue value,
                      PageWriteLogger* wal = nullptr, uint64_t version_batch = 0);

  Status DeleteObject(Oid oid, PageWriteLogger* wal = nullptr,
                      uint64_t version_batch = 0);

  /// Attribute of an object by name (inherited attributes included). The
  /// cached overload does one heap read per object per query instead of the
  /// two (ClassOf + Fetch) the uncached path needs.
  Result<MoodValue> GetAttribute(Oid oid, const std::string& attr) const {
    return GetAttribute(oid, attr, nullptr);
  }
  Result<MoodValue> GetAttribute(Oid oid, const std::string& attr,
                                 DerefCache* cache) const;

  // --- Attribute layouts (compiled expression support) -------------------------

  /// Memoized flattened attribute layout of a class. Entries are invalidated
  /// as a whole when Catalog::schema_epoch() moves (DDL), mirroring the
  /// write-epoch mechanism the DerefCache uses for object data.
  Result<AttributeLayoutPtr> LayoutOf(const std::string& class_name) const;
  Result<AttributeLayoutPtr> LayoutOf(TypeId type_id) const;

  /// Attribute of an object by plan-time ordinal. `expected` is the layout the
  /// ordinal was bound against; when the stored instance is of exactly that
  /// class the access is a direct tuple index (no name lookup). A subclass
  /// instance re-resolves by name through the instance's own layout; NotFound
  /// when that class lacks the attribute (callers fall back to interpretation).
  Result<MoodValue> GetAttributeByOrdinal(Oid oid, const AttributeLayout& expected,
                                          uint32_t ordinal, DerefCache* cache) const;

  /// Write-epoch slot count (files alias slots by `file % kEpochSlots`).
  /// Public so snapshot sessions can capture a full epoch view at pin time.
  static constexpr size_t kEpochSlots = 64;

  /// Write epoch of one extent file's slot (see DerefCache). Monotonically
  /// increases on every object write to files sharing the slot.
  uint64_t WriteEpochOf(uint16_t file) const {
    return write_epochs_[file % kEpochSlots].load(std::memory_order_acquire);
  }

  /// Scans a class extent. `include_subclasses` adds every transitive subclass
  /// extent (the EVERY form); `exclude` removes the subtrees of the listed
  /// subclasses (the `-` operator in FROM).
  Status ScanExtent(const std::string& class_name, bool include_subclasses,
                    const std::vector<std::string>& exclude,
                    const std::function<Status(Oid, const MoodValue&)>& fn) const {
    return ScanExtent(class_name, include_subclasses, exclude, SnapshotView{}, fn);
  }

  /// ScanExtent as of a snapshot: records born after the snapshot are skipped,
  /// records updated since serve their visible pre-image, and objects deleted
  /// from the heap but visible at the snapshot are appended per class via
  /// SnapshotLeftovers. The page-granular path (ScanExtentPage) omits the
  /// leftover pass — parallel scans must run SnapshotLeftovers per class after
  /// the page loop to match.
  Status ScanExtent(const std::string& class_name, bool include_subclasses,
                    const std::vector<std::string>& exclude, const SnapshotView& snap,
                    const std::function<Status(Oid, const MoodValue&)>& fn) const;

  /// The classes whose own extents a ScanExtent over the same arguments visits,
  /// in visit order (subtree expansion minus excluded subtrees).
  Result<std::vector<std::string>> ScanClasses(
      const std::string& class_name, bool include_subclasses,
      const std::vector<std::string>& exclude) const;

  /// Page ids of one class's own extent, in scan (chain) order. Together with
  /// ScanExtentPage this partitions ScanExtent into page-granular morsels:
  /// scanning the listed pages in order yields exactly ScanExtent's sequence.
  Result<std::vector<PageId>> ExtentPageIds(const std::string& class_name) const;

  /// Scans the records homed on one extent page (same decode and forwarding
  /// semantics as ScanExtent). Concurrent-read safe for distinct or identical
  /// pages while no writer mutates the extent.
  Status ScanExtentPage(const std::string& class_name, PageId page,
                        const std::function<Status(Oid, const MoodValue&)>& fn) const;

  /// ScanExtentPage with a readahead cursor (one cursor per logical scan of
  /// the class; see HeapFile::ScanCursor).
  Status ScanExtentPage(const std::string& class_name, PageId page,
                        HeapFile::ScanCursor* cursor,
                        const std::function<Status(Oid, const MoodValue&)>& fn) const {
    return ScanExtentPage(class_name, page, cursor, SnapshotView{}, fn);
  }

  /// Snapshot-aware page scan (same visibility semantics as the snapshot
  /// ScanExtent overload; leftovers likewise excluded).
  Status ScanExtentPage(const std::string& class_name, PageId page,
                        HeapFile::ScanCursor* cursor, const SnapshotView& snap,
                        const std::function<Status(Oid, const MoodValue&)>& fn) const;

  /// The completion pass for snapshot scans over `class_name`'s own extent:
  /// produces, in oid order, every object whose heap record is gone (deleted
  /// by a later or uncommitted writer) but which is still visible at the
  /// snapshot. A no-op for inactive snapshots or version-free files.
  Status SnapshotLeftovers(const std::string& class_name, const SnapshotView& snap,
                           const std::function<Status(Oid, const MoodValue&)>& fn) const;

  /// |C| for one class (own extent only or with subclasses).
  Result<uint64_t> ExtentCount(const std::string& class_name,
                               bool include_subclasses) const;
  /// nbpages(C) of the class's own extent.
  Result<uint32_t> ExtentPages(const std::string& class_name) const;

  /// Deep (value) equality following references, with cycle protection. Used by
  /// DupElim on extents ("deep equality check", Table 3).
  Result<bool> DeepEquals(const MoodValue& a, const MoodValue& b) const;

  // --- Index creation & access -------------------------------------------------

  /// Builds a B+-tree (or hash) index over `attribute` of `class_name`, bulk
  /// loading existing objects, and registers it in the catalog.
  Status CreateAttributeIndex(const std::string& index_name,
                              const std::string& class_name,
                              const std::string& attribute, IndexKind kind,
                              bool unique = false);

  /// Builds a binary join index over reference attribute `attribute`.
  Status CreateBinaryJoinIndex(const std::string& index_name,
                               const std::string& class_name,
                               const std::string& attribute);

  /// Builds a path index for `path` (dotted attribute chain from `class_name`
  /// ending in an atomic attribute).
  Status CreatePathIndex(const std::string& index_name, const std::string& class_name,
                         const std::string& path);

  /// Opens (cached) handles to registered indexes.
  Result<BPlusTree*> OpenBTree(const IndexDesc& desc);
  Result<HashIndex*> OpenHash(const IndexDesc& desc);
  Result<BinaryJoinIndex*> OpenJoinIndex(const IndexDesc& desc);
  Result<PathIndex*> OpenPathIndex(const IndexDesc& desc);

  /// Follows a dotted path from a root object to its terminal values. Set/list
  /// valued reference attributes fan out. The callback receives each terminal
  /// value reached.
  Status TraversePath(Oid root, const std::vector<std::string>& path,
                      const std::function<Status(const MoodValue&)>& fn) const {
    return TraversePath(root, path, nullptr, fn);
  }
  Status TraversePath(Oid root, const std::vector<std::string>& path, DerefCache* cache,
                      const std::function<Status(const MoodValue&)>& fn) const;

  Catalog* catalog() const { return catalog_; }
  StorageManager* storage() const { return storage_; }

  /// Folds one finished query's DerefCache hit/miss counts into the
  /// engine-wide totals (called by the Executor when the per-query cache
  /// dies); `objects.deref_cache.*` in the metrics registry.
  void AccumulateDerefStats(uint64_t hits, uint64_t misses) const {
    deref_hits_.fetch_add(hits, std::memory_order_relaxed);
    deref_misses_.fetch_add(misses, std::memory_order_relaxed);
  }

  /// Registers the `objects.*` probe: created/deleted counters, accumulated
  /// deref-cache totals, and the summed write epochs (total cache-invalidating
  /// writes across all extent-file slots).
  void RegisterMetrics(MetricsRegistry* registry) const;

 private:
  Result<HeapFile*> ExtentOf(const std::string& class_name) const;
  Result<MoodValue> PadToSchema(const std::string& class_name, MoodValue tuple) const;

  /// Reads + decodes an object, consulting `cache` when non-null. The epoch is
  /// sampled before the heap read, so a racing write can only make the cached
  /// entry look stale (a wasted refetch), never hide the new value.
  Result<DerefCache::Snapshot> FetchSnapshot(Oid oid, DerefCache* cache) const;

  /// Called after any committed object write to `file`; invalidates cached
  /// snapshots of every object in files sharing the epoch slot.
  void BumpWriteEpoch(uint16_t file) const {
    write_epochs_[file % kEpochSlots].fetch_add(1, std::memory_order_acq_rel);
  }

  /// Applies index maintenance for one object transition old -> new (either may
  /// be null for insert/delete).
  Status MaintainIndexes(const std::string& class_name, Oid oid,
                         const MoodValue* old_tuple, const MoodValue* new_tuple);

  Result<int> AttrIndex(const std::string& class_name, const std::string& attr) const;

  Result<bool> DeepEqualsRec(const MoodValue& a, const MoodValue& b,
                             std::vector<std::pair<uint64_t, uint64_t>>* visiting) const;

  StorageManager* storage_;
  Catalog* catalog_;
  /// Snapshot/versioning hook (null in plain embedded use; see SetVersionStore).
  VersionStore* versions_ = nullptr;
  /// Write observer (null in plain embedded use; see SetWriteObserver).
  WriteObserver write_observer_;
  /// Per-file-slot write epochs backing the DerefCache staleness contract.
  /// Slotted by file id so a write invalidates at class granularity (plus any
  /// class whose extent file aliases the slot — a false invalidation, never a
  /// false hit).
  mutable std::array<std::atomic<uint64_t>, kEpochSlots> write_epochs_{};
  /// Engine-wide observability counters (relaxed atomics; see RegisterMetrics).
  mutable std::atomic<uint64_t> objects_created_{0};
  mutable std::atomic<uint64_t> objects_deleted_{0};
  mutable std::atomic<uint64_t> deref_hits_{0};
  mutable std::atomic<uint64_t> deref_misses_{0};
  /// Guards the lazily-populated index-handle caches below: parallel workers
  /// may race to open the same index (e.g. concurrent IndSel probes). The
  /// handles themselves are concurrent-read safe once opened.
  mutable std::mutex index_cache_mu_;
  mutable std::unordered_map<std::string, std::unique_ptr<BPlusTree>> btrees_;
  mutable std::unordered_map<std::string, std::unique_ptr<HashIndex>> hashes_;
  mutable std::unordered_map<std::string, std::unique_ptr<BinaryJoinIndex>> bjis_;
  mutable std::unordered_map<std::string, std::unique_ptr<PathIndex>> path_indexes_;
  /// Memoized per-class attribute layouts (see LayoutOf), validated against
  /// Catalog::schema_epoch(): any DDL clears the whole map on next use.
  mutable std::mutex layout_mu_;
  mutable uint64_t layout_epoch_ = 0;
  mutable std::unordered_map<TypeId, AttributeLayoutPtr> layouts_;
};

/// Encodes an object record: [type_id u32][tuple value bytes].
void EncodeObjectRecord(TypeId type_id, const MoodValue& tuple, std::string* dst);
Result<std::pair<TypeId, MoodValue>> DecodeObjectRecord(Slice record);

}  // namespace mood
