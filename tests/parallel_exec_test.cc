#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "exec/parallel.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// Thread counts the determinism fixture exercises. MOOD_TEST_THREADS=<n>
/// narrows the sweep to one count — the tsan/ubsan CTest presets register
/// parallel_exec_test_t2 / _t8 variants that way to bound sanitizer runtime.
std::vector<size_t> TestThreadCounts() {
  const char* env = std::getenv("MOOD_TEST_THREADS");
  if (env != nullptr && std::atoi(env) > 0) {
    return {static_cast<size_t>(std::atoi(env))};
  }
  return {2, 8};
}

// ---------------------------------------------------------------------------
// ParallelFor / MakeMorsels unit properties
// ---------------------------------------------------------------------------

TEST(MakeMorselsTest, PartitionsExactly) {
  EXPECT_TRUE(MakeMorsels(0).empty());
  auto one = MakeMorsels(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 1u);

  // 1000 rows at 256/morsel -> 256, 256, 256, 232.
  auto ms = MakeMorsels(1000);
  ASSERT_EQ(ms.size(), 4u);
  size_t covered = 0;
  for (size_t i = 0; i < ms.size(); i++) {
    EXPECT_EQ(ms[i].begin, covered) << "morsel " << i;
    EXPECT_LE(ms[i].begin, ms[i].end);
    covered = ms[i].end;
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_EQ(ms.back().size(), 1000u % kMorselRows);
}

TEST(MakeMorselsTest, CustomSizeAndZeroGuard) {
  auto ms = MakeMorsels(10, 3);
  ASSERT_EQ(ms.size(), 4u);
  EXPECT_EQ(ms[3].size(), 1u);
  // morsel_size 0 must not loop forever.
  EXPECT_EQ(MakeMorsels(5, 0).size(), 5u);
}

TEST(ParallelForTest, RunsEveryTaskOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    MOOD_ASSERT_OK(ParallelFor(threads, hits.size(), [&](size_t i) {
      hits[i].fetch_add(1);
      return Status::OK();
    }));
    for (size_t i = 0; i < hits.size(); i++) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, ReturnsSmallestIndexError) {
  // Tasks 7 and 23 fail; whatever the scheduling, the reported error must be
  // task 7's — the one a serial in-order run surfaces first.
  for (int round = 0; round < 20; round++) {
    Status st = ParallelFor(4, 64, [&](size_t i) {
      if (i == 7) return Status::Internal("task 7");
      if (i == 23) return Status::Internal("task 23");
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("task 7"), std::string::npos) << st.ToString();
  }
}

TEST(ParallelForTest, SerialFallbackStopsAtFirstError) {
  size_t ran = 0;
  Status st = ParallelFor(1, 10, [&](size_t i) {
    ran++;
    if (i == 3) return Status::Internal("boom");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(ran, 4u);  // 0..3 inclusive, nothing after the failure
}

TEST(ParallelForTest, MoreThreadsThanTasks) {
  std::atomic<int> n{0};
  MOOD_ASSERT_OK(ParallelFor(16, 3, [&](size_t) {
    n.fetch_add(1);
    return Status::OK();
  }));
  EXPECT_EQ(n.load(), 3);
}

// ---------------------------------------------------------------------------
// Determinism: every query from the exec/regression suites, serial vs parallel
// ---------------------------------------------------------------------------

/// Runs the paper workload at several thread counts and asserts the rendered
/// result (columns, rows, and their order) is identical to serial execution.
class ParallelExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.exec_threads = 1;  // baseline; tests flip via set_threads
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood"), opts));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 120));
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
  }

  /// Expression-evaluation modes the sweep exercises. MOOD_TEST_COMPILE=on|off
  /// narrows it to one mode, the same way MOOD_TEST_THREADS bounds the thread
  /// axis for the sanitizer presets.
  static std::vector<bool> TestCompileModes() {
    const char* env = std::getenv("MOOD_TEST_COMPILE");
    if (env != nullptr && std::string(env) == "on") return {true};
    if (env != nullptr && std::string(env) == "off") return {false};
    return {false, true};
  }

  /// Batch sizes the sweep exercises: row-at-a-time (0), a small size that
  /// forces many partial batches, and the default. MOOD_TEST_BATCH=<n> narrows
  /// the axis the same way MOOD_TEST_THREADS does.
  static std::vector<size_t> TestBatchSizes() {
    const char* env = std::getenv("MOOD_TEST_BATCH");
    if (env != nullptr) return {static_cast<size_t>(std::atoi(env))};
    return {0, 7, 1024};
  }

  /// Oracle: serial, interpreted, row-at-a-time. Every (batch size, compile
  /// mode, thread count) combination must match it byte-for-byte.
  void ExpectDeterministic(const std::string& sql) {
    db_.executor()->set_threads(1);
    QueryOptions oracle_opts;
    oracle_opts.compile_expressions = false;
    oracle_opts.batch_size = 0;
    auto serial = db_.Query(sql, oracle_opts);
    for (size_t batch : TestBatchSizes()) {
      for (bool compile : TestCompileModes()) {
        QueryOptions opts;
        opts.compile_expressions = compile;
        opts.batch_size = batch;
        std::vector<size_t> counts = TestThreadCounts();
        // Compiled and batched modes also diff serially against the oracle.
        if (compile || batch > 0) counts.insert(counts.begin(), 1);
        for (size_t threads : counts) {
          db_.executor()->set_threads(threads);
          auto parallel = db_.Query(sql, opts);
          ASSERT_EQ(serial.ok(), parallel.ok())
              << sql << " @" << threads << " threads compile=" << compile
              << " batch=" << batch << ": serial=" << serial.status().ToString()
              << " parallel=" << parallel.status().ToString();
          if (!serial.ok()) continue;
          const QueryResult& s = serial.value();
          const QueryResult& p = parallel.value();
          EXPECT_EQ(s.columns, p.columns) << sql << " @" << threads;
          ASSERT_EQ(s.rows.size(), p.rows.size())
              << sql << " @" << threads << " compile=" << compile << " batch=" << batch;
          EXPECT_EQ(s.ToString(), p.ToString())
              << sql << " @" << threads << " compile=" << compile << " batch=" << batch;
        }
      }
    }
    db_.executor()->set_threads(1);
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
};

TEST_F(ParallelExecFixture, ExtentScans) {
  ExpectDeterministic("SELECT v FROM Vehicle v");
  ExpectDeterministic("SELECT v FROM EVERY Vehicle v");
  ExpectDeterministic("SELECT v FROM EVERY Vehicle - JapaneseAuto v");
  ExpectDeterministic("SELECT v FROM EVERY Automobile - JapaneseAuto v");
  ExpectDeterministic("SELECT e FROM Employee e");
}

TEST_F(ParallelExecFixture, Filters) {
  ExpectDeterministic("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4");
  ExpectDeterministic("SELECT e FROM VehicleEngine e WHERE e.cylinders <= 8");
  ExpectDeterministic("SELECT e FROM VehicleEngine e WHERE NOT e.cylinders > 8");
  ExpectDeterministic(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR e.cylinders = 4");
  ExpectDeterministic(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR e.size >= 0");
  ExpectDeterministic(
      "SELECT v FROM EVERY Vehicle v WHERE v.weight > 0 AND v.weight < 100000");
  ExpectDeterministic("SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 + 2");
  ExpectDeterministic("SELECT e FROM VehicleEngine e WHERE 8 < e.cylinders");
}

TEST_F(ParallelExecFixture, PathExpressionsAndPointerJoins) {
  ExpectDeterministic(paperdb::kExample81Query);
  ExpectDeterministic(paperdb::kExample82Query);
  ExpectDeterministic(paperdb::kSection31Query);
  ExpectDeterministic(
      "SELECT d.transmission, d.engine.cylinders FROM VehicleDriveTrain d "
      "WHERE d.engine.cylinders > 8");
  ExpectDeterministic(
      "SELECT v.drivetrain.engine.cylinders, v.weight FROM Vehicle v "
      "WHERE v.drivetrain.engine.cylinders = 4");
  ExpectDeterministic("SELECT v.drivetrain FROM Vehicle v");
}

TEST_F(ParallelExecFixture, ExplicitJoins) {
  ExpectDeterministic(
      "SELECT v FROM Vehicle v, VehicleDriveTrain d WHERE v.drivetrain = d");
  ExpectDeterministic(
      "SELECT v.weight, d.transmission FROM Vehicle v, VehicleDriveTrain d "
      "WHERE v.drivetrain = d AND d.transmission = 'MANUAL'");
}

TEST_F(ParallelExecFixture, ClausePipeline) {
  ExpectDeterministic("SELECT e.size FROM VehicleEngine e ORDER BY e.size");
  ExpectDeterministic("SELECT e.size FROM VehicleEngine e ORDER BY e.size DESC");
  ExpectDeterministic(
      "SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders");
  ExpectDeterministic(
      "SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders "
      "HAVING e.cylinders > 8");
  ExpectDeterministic("SELECT DISTINCT e.cylinders FROM VehicleEngine e");
  ExpectDeterministic("SELECT e.cylinders, e.cylinders * 2 + 1 FROM VehicleEngine e");
}

TEST_F(ParallelExecFixture, MethodInvocation) {
  // Method calls route through FunctionManager from parallel workers.
  ExpectDeterministic("SELECT v.weight, v.lbweight() FROM Vehicle v");
  ExpectDeterministic("SELECT v.lbweight() FROM Vehicle v");
}

TEST_F(ParallelExecFixture, IndexedSelection) {
  MOOD_ASSERT_OK(
      db_.Execute("CREATE INDEX eng_cyl ON VehicleEngine(cylinders) USING BTREE")
          .status());
  MOOD_ASSERT_OK(db_.CollectAllStatistics());
  ExpectDeterministic("SELECT e FROM VehicleEngine e WHERE e.cylinders = 6");
  ExpectDeterministic(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 6 AND e.size > 0");
}

TEST_F(ParallelExecFixture, ErrorsStayDeterministic) {
  // A failing query must fail identically (not hang, not succeed) in parallel.
  db_.executor()->set_threads(8);
  EXPECT_TRUE(db_.Query("SELECT x FROM Nowhere x").status().IsNotFound());
  EXPECT_EQ(db_.Query("SELECT v.nope FROM Vehicle v").status().code(),
            StatusCode::kCatalogError);
  db_.executor()->set_threads(1);
}

TEST(ParallelExecOptions, ExecThreadsOptionWiresThrough) {
  TempDir dir;
  {
    Database db;
    DatabaseOptions opts;
    opts.exec_threads = 4;
    MOOD_ASSERT_OK(db.Open(dir.Path("mood-t4"), opts));
    EXPECT_EQ(db.executor()->threads(), 4u);
  }
  {
    Database db;
    DatabaseOptions opts;
    opts.exec_threads = 0;  // resolve to hardware concurrency
    MOOD_ASSERT_OK(db.Open(dir.Path("mood-t0"), opts));
    EXPECT_EQ(db.executor()->threads(), DefaultExecThreads());
    EXPECT_GE(db.executor()->threads(), 1u);
  }
  {
    // set_threads(0) clamps to 1 rather than disabling execution.
    Database db;
    MOOD_ASSERT_OK(db.Open(dir.Path("mood-clamp")));
    db.executor()->set_threads(0);
    EXPECT_EQ(db.executor()->threads(), 1u);
  }
}

}  // namespace
}  // namespace mood
