#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/row_batch.h"
#include "objects/object_manager.h"
#include "sql/ast.h"

namespace mood {

/// A bound expression lowered into flat postfix bytecode. The program is
/// evaluated by a small non-recursive stack machine: operands live in a
/// caller-provided scratch stack (reused across rows, so scalar operands never
/// touch the heap), range variables are dense slot indices into the row's Oid
/// vector, and attribute steps are plan-time ordinals into per-class
/// AttributeLayouts (no string-map or catalog lookup per row).
///
/// Semantics contract: a program produces byte-identical MoodValues and
/// identical error statuses to the interpreted Evaluator for every expression
/// it accepts — arithmetic runs through the same OperandDataType operators,
/// comparisons through Evaluator::Compare, AND/OR keep short-circuit order.
/// Dynamic constructs the compiler cannot pin down statically (method calls,
/// mid-path collection fan-out, polymorphic roots) are rejected at compile
/// time; runtime surprises (a subclass instance lacking the bound attribute, a
/// value that fans out unexpectedly) raise `need_fallback` so the caller
/// re-evaluates that row with the interpreter.
class ExprProgram {
 public:
  enum class OpCode : uint8_t {
    kPushConst,    ///< a: consts index
    kLoadSlot,     ///< a: slot; push Reference(slots[a])
    kLoadAttr,     ///< a: slot, b: attrs index; push attribute of slots[a]
    kDerefAttr,    ///< b: attrs index; pop ref, push its attribute
    kBinaryArith,  ///< a: BinaryOp (+ - * / %); pop rhs, lhs, push result
    kCompare,      ///< a: BinaryOp (= <> < <= > >=); pop rhs, lhs, push Boolean
    kUnary,        ///< a: UnaryOp; pop v, push result
    kJumpIfFalse,  ///< a: target pc; AND: pop cond, if false push false + jump
    kJumpIfTrue,   ///< a: target pc; OR: pop cond, if true push true + jump
    kCoerceBool,   ///< pop v, push Boolean(AsBool(v))
    kLoadParam,    ///< a: `?` position; push scratch params[a] (broadcast const)
  };

  struct Instr {
    OpCode op;
    uint32_t a = 0;
    uint32_t b = 0;
  };

  /// One attribute access bound at compile time. `layout` pins the class the
  /// ordinal was resolved against (shared_ptr keeps it alive across DDL);
  /// `name` feeds interpreter-identical error messages.
  struct AttrRef {
    AttributeLayoutPtr layout;
    uint32_t ordinal = 0;
    std::string name;
  };

  /// Reusable per-worker evaluation state; clear()ed (capacity kept) per row.
  struct Scratch {
    std::vector<MoodValue> stack;
    /// Bound `?` parameter values for this execution (null: none bound).
    const std::vector<MoodValue>* params = nullptr;
  };

  /// Evaluates over a row of range-variable bindings. On a dynamic case the
  /// compiled form cannot express, sets *need_fallback and returns OK(Null);
  /// the caller must re-evaluate the row through the interpreter.
  Result<MoodValue> Eval(const Oid* slots, size_t nslots, DerefCache* cache,
                         Scratch* scratch, bool* need_fallback) const;

  /// Predicate wrapper with the interpreter's truth rules (null => false).
  Result<bool> EvalPredicate(const Oid* slots, size_t nslots, DerefCache* cache,
                             Scratch* scratch, bool* need_fallback) const;

  /// Per-row outcome of a batch evaluation.
  enum RowFlag : uint8_t {
    kRowOk = 0,        ///< values[k] (or keep[k]) holds the row's result
    kRowFallback = 1,  ///< re-evaluate this row through the interpreter
    kRowError = 2,     ///< errors[k] is the interpreter-identical status
  };

  /// Reusable columnar evaluation state for EvalBatch; one instance per worker,
  /// reused across batches so the column vectors never reallocate once warm.
  /// The output vectors are indexed by live-row position k in
  /// [0, batch.ActiveRows()), i.e. selection order, not raw row index.
  struct BatchScratch {
    std::vector<MoodValue> values;  ///< per-row results (kRowOk rows)
    std::vector<uint8_t> flags;     ///< per-row RowFlag
    std::vector<Status> errors;     ///< per-row statuses (kRowError rows)
    std::vector<uint8_t> keep;      ///< EvalPredicateBatch verdicts (kRowOk rows)

    // -- internals --
    /// One operand-stack column. A constant operand stays a single broadcast
    /// value (`is_const`), so PushConst never copies per row.
    struct Col {
      bool is_const = false;
      MoodValue cval;
      std::vector<MoodValue> v;
    };
    std::vector<Col> stack;
    size_t top = 0;
    std::vector<uint32_t> live;
    Scratch row;               ///< row machine state for programs with jumps
    std::vector<Oid> rowbuf;   ///< row-major slot gather for the row machine
    /// Bound `?` parameter values for this execution (null: none bound).
    const std::vector<MoodValue>* params = nullptr;
  };

  /// Evaluates the program once per live row of `batch`, amortizing opcode
  /// dispatch across the batch: jump-free programs (the common case after DNF
  /// splitting) run every opcode as one tight loop over a columnar operand
  /// stack; programs with short-circuit jumps diverge per row, so they run the
  /// row machine internally over a slot gather. A row stops executing the
  /// moment it errors or needs the interpreter — the other rows keep
  /// streaming. Never fails as a whole: per-row outcomes land in
  /// scratch->flags/values/errors, and the caller owns first-error ordering
  /// (walk the rows in selection order, exactly like the serial loop).
  void EvalBatch(const RowBatch& batch, DerefCache* cache, BatchScratch* scratch) const;

  /// Predicate form of EvalBatch: scratch->keep[k] is set for kRowOk rows with
  /// the interpreter's truth rules (null => false); a value AsBool() rejects
  /// turns the row into kRowError, matching EvalPredicate.
  void EvalPredicateBatch(const RowBatch& batch, DerefCache* cache,
                          BatchScratch* scratch) const;

  /// True when the program contains short-circuit jumps (per-row control
  /// flow); EvalBatch then runs rows through the row machine instead of the
  /// columnar loops.
  bool has_jumps() const;

  /// Deterministic bytecode dump (golden-tested), e.g.
  ///   0000 LoadAttr    s0 a0 (cylinders)
  ///   0001 PushConst   c0 (Integer 4)
  ///   0002 Compare     =
  std::string ToString() const;

  /// Number of maximal non-literal constant subtrees folded at compile time.
  size_t const_folded() const { return const_folded_; }

 private:
  friend class ExprCompiler;

  ObjectManager* objects_ = nullptr;
  std::vector<Instr> code_;
  std::vector<MoodValue> consts_;
  std::vector<AttrRef> attrs_;
  size_t const_folded_ = 0;
};

using ExprProgramPtr = std::shared_ptr<const ExprProgram>;

/// Thread-safe memo of compiled programs keyed by expression identity. A cached
/// plan owns one: repeated executions of the same plan reuse the lowered
/// bytecode — including negative ("keep the interpreter") outcomes — instead of
/// re-compiling per call. Keying by Expr pointer is sound because the memo
/// lives and dies with the plan that owns those expression nodes.
class ProgramMemo {
 public:
  /// True when `key` was compiled before; *out receives the program (may be
  /// null for expressions the compiler rejected).
  bool Lookup(const Expr* key, ExprProgramPtr* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it == memo_.end()) return false;
    *out = it->second;
    return true;
  }
  void Insert(const Expr* key, ExprProgramPtr prog) {
    std::lock_guard<std::mutex> lock(mu_);
    memo_.emplace(key, std::move(prog));
  }

 private:
  mutable std::mutex mu_;
  std::map<const Expr*, ExprProgramPtr> memo_;
};

using ProgramMemoPtr = std::shared_ptr<ProgramMemo>;

/// Plan-time compilation environment: which slot each range variable occupies
/// in the executor's row vectors, and the statically-known class of the
/// objects bound to it (empty / !single_class when the extent is polymorphic).
struct ExprCompileEnv {
  struct VarInfo {
    uint32_t slot = 0;
    std::string class_name;
    bool single_class = false;
  };
  std::map<std::string, VarInfo> vars;
};

/// Lowers Expr trees into ExprPrograms. Compile returns null (not an error)
/// when the expression uses a construct the bytecode cannot reproduce
/// faithfully — callers keep the interpreter for those:
///   - method-call steps, or attribute names that may resolve to methods;
///   - non-terminal Set/List-typed steps (mid-path fan-out);
///   - `self` steps anywhere but directly on the root variable;
///   - range variables absent from the env or without a single static class.
class ExprCompiler {
 public:
  explicit ExprCompiler(ObjectManager* objects) : objects_(objects) {}

  std::unique_ptr<ExprProgram> Compile(const ExprPtr& expr,
                                       const ExprCompileEnv& env) const;

 private:
  bool Emit(const Expr& e, const ExprCompileEnv& env, ExprProgram* prog) const;
  bool EmitPath(const Expr& e, const ExprCompileEnv& env, ExprProgram* prog) const;

  ObjectManager* objects_;
};

}  // namespace mood
