#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace mood {
namespace net {

struct ClientOptions {
  uint32_t connect_timeout_ms = 5000;
  /// Socket receive timeout per read; a stalled server surfaces as
  /// Status::Timeout instead of hanging the client forever. 0 = block.
  uint32_t recv_timeout_ms = 30000;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// One statement's outcome as seen over the wire (the client-side mirror of
/// ExecResult, minus server-only detail like the profile).
struct WireResult {
  uint8_t kind = 0;  ///< ExecResult::Kind as sent: 0 query, 1 ddl, 2 dml, 3 explain
  std::vector<std::string> columns;
  std::vector<std::vector<MoodValue>> rows;
  std::string message;
  uint64_t affected = 0;
  uint64_t schema_epoch = 0;
  std::optional<uint64_t> created_oid;  ///< packed Oid for NEW statements
  /// How many kFetch round trips the client folded to complete the result
  /// (0 when everything arrived inline) — observable chunking for tests.
  uint32_t fetch_round_trips = 0;
};

struct WirePrepared {
  uint32_t id = 0;
  uint32_t param_count = 0;
};

/// Blocking client for the MOOD wire protocol. Not thread-safe: one
/// MoodClient == one connection == one server-side Session; share nothing or
/// open more clients. Every call is a strict request/response exchange;
/// kError frames come back as the original Status via Status::FromCode.
class MoodClient {
 public:
  MoodClient() = default;
  ~MoodClient();

  MoodClient(const MoodClient&) = delete;
  MoodClient& operator=(const MoodClient&) = delete;

  /// Connects and runs the kHello handshake.
  Status Connect(const std::string& host, uint16_t port,
                 const ClientOptions& options = {});
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// Server-assigned session id from the handshake.
  uint64_t session_id() const { return session_id_; }

  /// Executes one statement. Results larger than the server's chunk are
  /// folded: the client keeps FETCHing until the cursor is exhausted.
  Result<WireResult> Execute(const std::string& sql, uint32_t deadline_ms = 0,
                             uint32_t chunk_rows = 0);

  Result<WirePrepared> Prepare(const std::string& sql);
  Result<WireResult> ExecutePrepared(const WirePrepared& stmt,
                                     const std::vector<MoodValue>& params,
                                     uint32_t deadline_ms = 0,
                                     uint32_t chunk_rows = 0);
  Status ClosePrepared(const WirePrepared& stmt);

  /// Sets a server-side session default ("exec_threads", "use_cache",
  /// "deadline_ms", "chunk_rows", ...). Booleans are 0/1.
  Status SetOption(const std::string& name, int64_t value);

  // Transaction / snapshot control, mapped 1:1 onto the server session.
  Status Begin();
  Status Commit();
  Status Abort();
  Status BeginSnapshot();
  Status EndSnapshot();

 private:
  Status SendFrame(FrameType type, const Slice& payload);
  Status ReadFrame(Frame* out);
  /// Sends a request and expects a bare kOk (or kError) back.
  Status SimpleCall(FrameType type, const Slice& payload = {});
  /// Parses kExecOk / kResultSet (folding kFetch rounds for the latter).
  Result<WireResult> ReadExecuteReply();

  int fd_ = -1;
  uint64_t session_id_ = 0;
  ClientOptions options_;
  std::string in_;  ///< buffered unparsed bytes
};

}  // namespace net
}  // namespace mood
