#pragma once

#include <cstdint>
#include <cstring>

#include "common/slice.h"

namespace mood {

/// 64-bit FNV-1a; used by the hash index, hash-partition join and catalog maps.
inline uint64_t Hash64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Hash64(Slice s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace mood
